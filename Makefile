# Development and CI entry points. CI (.github/workflows/ci.yml) runs these
# exact targets so local runs and the gate can never diverge.

GO ?= go

# Serving-path benchmarks tracked across PRs in BENCH_serving.json.
SERVING_BENCH = BenchmarkRecommendUncached|BenchmarkRecommendUncachedInterpreted|BenchmarkPredictCompiled|BenchmarkPredictQuantised|BenchmarkPredictCPS5|BenchmarkPredictHMM|BenchmarkRerankPairwise|BenchmarkProbCompiled|BenchmarkPredictMVMM|BenchmarkSuggestUncached|BenchmarkSuggestCached|BenchmarkServeHTTPCached|BenchmarkServeHTTPBatch|BenchmarkRouteAB|BenchmarkShardFanout64|BenchmarkShardFanout64R2|BenchmarkPredictBatch64|BenchmarkPredictBatch64Parallel|BenchmarkPredictSequential64|BenchmarkColdStartHeapV2|BenchmarkColdStartMmapV3|BenchmarkColdStartMmapV4|BenchmarkColdStartMmapV5|BenchmarkCompiledBlobSize|BenchmarkCompiledBlobSizeV5|BenchmarkIngestSegment|BenchmarkServeHTTPCachedTraced|BenchmarkHistogramRecord
# Override for quick smoke runs: make bench-json BENCHTIME=10x
BENCHTIME ?= 1s
# Regression gates applied by cmd/benchjson after recording: the cached HTTP
# serving path, the fleet A/B routing path and the per-family predict paths
# (quantised MVMM, HMM, pairwise rerank, compact-edge CPS5) must stay within
# their allocation budgets, the quantised CPS4 blob must stay >= 40% smaller
# than the exact CPS3 blob and the compact-edge CPS5 blob >= 20% smaller than
# CPS4 on the benchmark model, and the 3-shard batch fan-out must hold the
# pooled span-forwarding path (~25 allocs/batch today, dominated by the
# benchmark's own request construction; the 200 ceiling leaves headroom for
# JSON noise, not for a per-item allocation, which would cost >= 64). The
# replicated fan-out's allocation cost must stay within 1.5x the unreplicated
# path (it is 1.0x today: preference lists and attempt masks are pooled).
# The ingestion loop drains a fixed ~3000-record log per op (~4000 allocs
# today, ~1.3/record: segmenter growth + WAL frames + count-map inserts);
# the 6000 ceiling flags a per-record allocation regression, not JSON noise.
# The traced serving path and the histogram record primitive are gated at 0:
# the observability layer must stay free on the hot path.
BENCH_GATES = -gate BenchmarkServeHTTPCached=2 -gate BenchmarkRouteAB=0 -gate BenchmarkServeHTTPCachedTraced=0 -gate BenchmarkHistogramRecord=0 -gate BenchmarkShardFanout64=200 -gate BenchmarkShardFanout64R2:fanout-r2-over-r1=1.5 -gate BenchmarkPredictQuantised=0 -gate BenchmarkPredictCPS5=0 -gate BenchmarkPredictHMM=0 -gate BenchmarkRerankPairwise=0 -gate BenchmarkCompiledBlobSize:cps4-over-cps3=0.6 -gate BenchmarkCompiledBlobSizeV5:cps5-over-cps4=0.8 -gate BenchmarkIngestSegment=6000

.PHONY: all build test race bench bench-json chaos ingest-test obs-test fmt fmt-check vet check-docs check-api ci serve loadgen clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection harness: the replicated ring's chaos scenarios (shard
# killed mid-batch, reload storm during fan-out, flapping shard, hedged
# GETs) under the race detector — the availability claims, enforced.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestAntiEntropy|TestAdminState|TestRingLookupN' ./internal/fleet

# Closed-loop ingestion harness: the end-to-end stream → retrain → shadow →
# auto-ramp → promote loop, the exhaustive crash-replay cut-point table and
# the write-log recovery tests, under the race detector — the durability and
# freshness claims, enforced.
ingest-test:
	$(GO) test -race -count=1 -run 'TestLoop|TestCrashReplay|TestIngest|TestWAL' ./internal/stream ./internal/serve

# Observability harness: the histogram/trace/exposition unit tests plus the
# endpoint tests that hammer /v1/metrics and /v1/traces under concurrent
# traffic, reload storms and chaos faults — all under the race detector.
obs-test:
	$(GO) test -race -count=1 ./internal/obs
	$(GO) test -race -count=1 -run 'TestObs|TestPrometheus|TestTraces|TestRequestID|TestChaosTrace' ./internal/serve ./internal/fleet

# Benchmark smoke: one iteration of every benchmark, no test re-runs. Run
# twice — single-core and 4-core — so the parallel batch descent's worker
# fan-out and its sequential fallback both execute.
bench:
	GOMAXPROCS=1 $(GO) test -run=NONE -bench=. -benchtime=1x ./...
	GOMAXPROCS=4 $(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable serving benchmarks: appends a commit-stamped entry to the
# BENCH_serving.json trajectory so perf history (ns/op, B/op, allocs/op) is
# diffable across PRs, then applies the allocation regression gates. The
# bench run lands in a temp file first so a mid-run benchmark failure fails
# the target instead of vanishing into a pipe.
bench-json:
	$(GO) test -run=NONE -bench='$(SERVING_BENCH)' -benchmem -benchtime=$(BENCHTIME) . > BENCH_serving.tmp
	$(GO) run ./cmd/benchjson -out BENCH_serving.json $(BENCH_GATES) < BENCH_serving.tmp
	@rm -f BENCH_serving.tmp

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Documentation gate: every exported symbol in the serving-critical packages
# must carry a doc comment (see cmd/doccheck).
check-docs:
	$(GO) run ./cmd/doccheck ./internal/compiled ./internal/core ./internal/fleet ./internal/obs ./internal/stream

# API-surface gate: vet plus the apilint rule that recommendation entry
# points stay on core.Recommender (no new exported Recommend* outside
# internal/core and internal/cache).
check-api: vet
	$(GO) run ./cmd/apilint .

ci: check-api fmt-check check-docs build race chaos ingest-test obs-test bench

# Convenience: train a small model if absent, then serve it.
model.bin:
	$(GO) run ./cmd/loggen -sessions 20000 -out /tmp/repro-train.log
	$(GO) run ./cmd/train -log /tmp/repro-train.log -model model.bin -threshold 2

serve: model.bin
	$(GO) run ./cmd/serve -model model.bin

loadgen:
	$(GO) run ./cmd/loadgen -addr http://localhost:8080

clean:
	rm -f model.bin BENCH_serving.tmp
