# Development and CI entry points. CI (.github/workflows/ci.yml) runs these
# exact targets so local runs and the gate can never diverge.

GO ?= go

# Serving-path benchmarks tracked across PRs in BENCH_serving.json.
SERVING_BENCH = BenchmarkRecommendUncached|BenchmarkRecommendUncachedInterpreted|BenchmarkPredictCompiled|BenchmarkProbCompiled|BenchmarkPredictMVMM|BenchmarkSuggestUncached|BenchmarkSuggestCached|BenchmarkServeHTTPCached|BenchmarkServeHTTPBatch|BenchmarkPredictBatch64|BenchmarkPredictSequential64|BenchmarkColdStartHeapV2|BenchmarkColdStartMmapV3
# Override for quick smoke runs: make bench-json BENCHTIME=10x
BENCHTIME ?= 1s
# Regression gates applied by cmd/benchjson after recording: the cached HTTP
# serving path must stay within its allocation budget.
BENCH_GATES = -gate BenchmarkServeHTTPCached=2

.PHONY: all build test race bench bench-json fmt fmt-check vet ci serve loadgen clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no test re-runs.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Machine-readable serving benchmarks: appends a commit-stamped entry to the
# BENCH_serving.json trajectory so perf history (ns/op, B/op, allocs/op) is
# diffable across PRs, then applies the allocation regression gates. The
# bench run lands in a temp file first so a mid-run benchmark failure fails
# the target instead of vanishing into a pipe.
bench-json:
	$(GO) test -run=NONE -bench='$(SERVING_BENCH)' -benchmem -benchtime=$(BENCHTIME) . > BENCH_serving.tmp
	$(GO) run ./cmd/benchjson -out BENCH_serving.json $(BENCH_GATES) < BENCH_serving.tmp
	@rm -f BENCH_serving.tmp

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: vet fmt-check build race bench

# Convenience: train a small model if absent, then serve it.
model.bin:
	$(GO) run ./cmd/loggen -sessions 20000 -out /tmp/repro-train.log
	$(GO) run ./cmd/train -log /tmp/repro-train.log -model model.bin -threshold 2

serve: model.bin
	$(GO) run ./cmd/serve -model model.bin

loadgen:
	$(GO) run ./cmd/loadgen -addr http://localhost:8080

clean:
	rm -f model.bin BENCH_serving.tmp
