// Package jsonspan is the allocation-free slice of JSON handling the batch
// serving paths share: splitting a JSON document into raw byte spans that can
// be forwarded or echoed verbatim, and unescaping string tokens into recycled
// buffers. The serving layer's batch endpoint and the fleet shard router both
// parse with it instead of encoding/json, whose Unmarshal allocates for every
// decoded item — the difference between a batch fan-out at ~1200 allocs and
// one that holds a two-digit gate.
//
// The scanner validates only what span extraction needs (bracket and quote
// balance); full validation happens where items are actually decoded.
package jsonspan

import (
	"fmt"
	"unicode/utf16"
	"unicode/utf8"
)

// SkipSpace advances past insignificant whitespace.
func SkipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// SkipString advances past the string whose opening quote is at b[i] and
// returns the index after the closing quote.
func SkipString(b []byte, i int) (int, error) {
	for j := i + 1; j < len(b); j++ {
		switch b[j] {
		case '\\':
			j++
		case '"':
			return j + 1, nil
		}
	}
	return 0, fmt.Errorf("unterminated string at offset %d", i)
}

// SkipValue advances past one JSON value starting at b[i] (whitespace
// allowed) and returns the index just after it. Containers are skipped by
// depth counting with string awareness; scalars by delimiter scan.
func SkipValue(b []byte, i int) (int, error) {
	i = SkipSpace(b, i)
	if i >= len(b) {
		return 0, fmt.Errorf("missing value at offset %d", i)
	}
	switch b[i] {
	case '"':
		return SkipString(b, i)
	case '{', '[':
		depth := 0
		for j := i; j < len(b); j++ {
			switch b[j] {
			case '"':
				end, err := SkipString(b, j)
				if err != nil {
					return 0, err
				}
				j = end - 1
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					return j + 1, nil
				}
			}
		}
		return 0, fmt.Errorf("unbalanced value at offset %d", i)
	default:
		for j := i; j < len(b); j++ {
			switch b[j] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				return j, nil
			}
		}
		return len(b), nil
	}
}

// FindKey locates key's value inside the object whose '{' is at b[i] and
// returns the index where the value starts, or -1 when the object has no
// such top-level key. Keys with escapes cannot match (ours are plain ASCII).
func FindKey(b []byte, i int, key string) (int, error) {
	i = SkipSpace(b, i)
	if i >= len(b) || b[i] != '{' {
		return -1, fmt.Errorf("expected object at offset %d", i)
	}
	i++
	for {
		i = SkipSpace(b, i)
		if i >= len(b) {
			return -1, fmt.Errorf("unterminated object")
		}
		if b[i] == '}' {
			return -1, nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		if b[i] != '"' {
			return -1, fmt.Errorf("expected object key at offset %d", i)
		}
		end, err := SkipString(b, i)
		if err != nil {
			return -1, err
		}
		match := end-i == len(key)+2 && string(b[i+1:end-1]) == key
		i = SkipSpace(b, end)
		if i >= len(b) || b[i] != ':' {
			return -1, fmt.Errorf("expected ':' at offset %d", i)
		}
		i++
		if match {
			return SkipSpace(b, i), nil
		}
		if i, err = SkipValue(b, i); err != nil {
			return -1, err
		}
	}
}

// AppendArraySpans appends the [start, end) byte span of every top-level
// element of the array beginning at b[i] to dst and returns the extended
// slice. Spans are whitespace-trimmed and reference b — zero copies.
func AppendArraySpans(dst [][2]int, b []byte, i int) ([][2]int, error) {
	i = SkipSpace(b, i)
	if i >= len(b) || b[i] != '[' {
		return nil, fmt.Errorf("expected array at offset %d", i)
	}
	i++
	for {
		i = SkipSpace(b, i)
		if i >= len(b) {
			return nil, fmt.Errorf("unterminated array")
		}
		if b[i] == ']' {
			return dst, nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		end, err := SkipValue(b, i)
		if err != nil {
			return nil, err
		}
		dst = append(dst, [2]int{i, end})
		i = end
	}
}

// AppendUnescaped appends the unescaped bytes of a JSON string body (the
// token between, not including, its quotes) to dst. The escape-free fast
// path is a straight append; escapes are decoded rune by rune (invalid
// escapes decode to U+FFFD, like encoding/json).
func AppendUnescaped(dst, tok []byte) []byte {
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c != '\\' {
			dst = append(dst, c)
			continue
		}
		i++
		if i >= len(tok) {
			return append(dst, '\\')
		}
		switch tok[i] {
		case '"', '\\', '/':
			dst = append(dst, tok[i])
		case 'b':
			dst = append(dst, '\b')
		case 'f':
			dst = append(dst, '\f')
		case 'n':
			dst = append(dst, '\n')
		case 'r':
			dst = append(dst, '\r')
		case 't':
			dst = append(dst, '\t')
		case 'u':
			r := utf8.RuneError
			if i+4 < len(tok) {
				if v, ok := unhex4(tok[i+1 : i+5]); ok {
					r = rune(v)
					i += 4
					if utf16.IsSurrogate(r) {
						r = utf8.RuneError
						if i+6 < len(tok) && tok[i+1] == '\\' && tok[i+2] == 'u' {
							if lo, ok := unhex4(tok[i+3 : i+7]); ok {
								if dec := utf16.DecodeRune(rune(v), rune(lo)); dec != utf8.RuneError {
									r = dec
									i += 6
								}
							}
						}
					}
				}
			}
			dst = utf8.AppendRune(dst, r)
		default:
			dst = append(dst, tok[i]) // invalid escape: keep the literal byte
		}
	}
	return dst
}

// unhex4 decodes four hex digits.
func unhex4(b []byte) (uint16, bool) {
	var v uint16
	for _, c := range b[:4] {
		var d byte
		switch {
		case '0' <= c && c <= '9':
			d = c - '0'
		case 'a' <= c && c <= 'f':
			d = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0, false
		}
		v = v<<4 | uint16(d)
	}
	return v, true
}
