package logfmt

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 15, 0, 8, 41, 0, time.UTC)

func sample() Record {
	return Record{
		MachineID: "xxx",
		Query:     "q1",
		Time:      t0,
		Clicks: []Click{
			{URL: "aaa.com", Time: t0.Add(25 * time.Second)},
			{URL: "bbb.com", Time: t0.Add(40 * time.Second)},
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	r := sample()
	line, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.MachineID != r.MachineID || got.Query != r.Query || !got.Time.Equal(r.Time) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	if len(got.Clicks) != 2 || got.Clicks[0].URL != "aaa.com" || !got.Clicks[1].Time.Equal(r.Clicks[1].Time) {
		t.Fatalf("clicks mismatch: %+v", got.Clicks)
	}
}

func TestMarshalRejectsBadFields(t *testing.T) {
	for name, r := range map[string]Record{
		"empty machine": {Query: "q", Time: t0},
		"tab in query":  {MachineID: "m", Query: "a\tb", Time: t0},
		"tab in url":    {MachineID: "m", Query: "q", Time: t0, Clicks: []Click{{URL: "a\tb", Time: t0}}},
	} {
		if _, err := Marshal(r); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	good, _ := Marshal(sample())
	cases := map[string]string{
		"too few fields":     "a\tb\tc",
		"bad timestamp":      "m\tq\tnot-a-time\t0",
		"bad click count":    strings.Replace(good, "\t2\t", "\tx\t", 1),
		"negative clicks":    "m\tq\t" + t0.Format(time.RFC3339) + "\t-1",
		"click field miss":   strings.Replace(good, "\t2\t", "\t3\t", 1),
		"bad click time":     strings.Replace(good, t0.Add(25*time.Second).Format(time.RFC3339), "junk", 1),
		"extra click fields": good + "\textra",
	}
	for name, line := range cases {
		if _, err := Unmarshal(line); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestUnmarshalZeroClicks(t *testing.T) {
	r := Record{MachineID: "m", Query: "no clicks", Time: t0}
	line, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clicks) != 0 {
		t.Fatalf("expected no clicks, got %d", len(got.Clicks))
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	const n = 100
	for i := 0; i < n; i++ {
		r := sample()
		r.Time = t0.Add(time.Duration(i) * time.Minute)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Fatalf("Count = %d, want %d", w.Count(), n)
	}
	rd := NewReader(strings.NewReader(buf.String()))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		want := t0.Add(time.Duration(i) * time.Minute)
		if !r.Time.Equal(want) {
			t.Fatalf("record %d time = %v, want %v", i, r.Time, want)
		}
	}
}

func TestReaderSkipsBlankLinesAndCRLF(t *testing.T) {
	line, _ := Marshal(sample())
	input := "\n" + line + "\r\n\n" + line + "\n"
	recs, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	line, _ := Marshal(sample())
	input := line + "\ngarbage line\n"
	rd := NewReader(strings.NewReader(input))
	if _, err := rd.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := rd.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestReaderEOF(t *testing.T) {
	rd := NewReader(strings.NewReader(""))
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(io.Discard)
	bad := Record{Query: "q", Time: t0} // empty machine ID
	if err := w.Write(bad); err == nil {
		t.Fatal("expected error for bad record")
	}
	if err := w.Write(sample()); err == nil {
		t.Fatal("writer did not stick its error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(machine, q, url string, nclicks uint8, offset uint32) bool {
		clean := func(s string) string {
			s = strings.NewReplacer("\t", " ", "\n", " ", "\r", " ").Replace(s)
			return s
		}
		machine = clean(machine)
		if machine == "" {
			machine = "m"
		}
		r := Record{MachineID: machine, Query: clean(q), Time: t0.Add(time.Duration(offset) * time.Second)}
		for i := 0; i < int(nclicks%4); i++ {
			r.Clicks = append(r.Clicks, Click{URL: clean(url), Time: r.Time.Add(time.Duration(i) * time.Second)})
		}
		line, err := Marshal(r)
		if err != nil {
			return false
		}
		got, err := Unmarshal(line)
		if err != nil {
			return false
		}
		if got.MachineID != r.MachineID || got.Query != r.Query || !got.Time.Equal(r.Time) || len(got.Clicks) != len(r.Clicks) {
			return false
		}
		for i := range r.Clicks {
			if got.Clicks[i].URL != r.Clicks[i].URL || !got.Clicks[i].Time.Equal(r.Clicks[i].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
