// Package logfmt implements the raw search-log record layout of the paper's
// Table III and a streaming tab-separated encoding for it. A record is one
// query event: the machine that issued it, the query string, the submission
// timestamp, and zero or more clicked URLs each with its own click timestamp.
package logfmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Click is one clicked URL following a query, with its click timestamp.
type Click struct {
	URL  string
	Time time.Time
}

// Record is one raw search-log row in the format of Table III.
type Record struct {
	MachineID string
	Query     string
	Time      time.Time
	Clicks    []Click
}

// ErrMalformed is wrapped by all parse errors produced by this package.
var ErrMalformed = errors.New("logfmt: malformed record")

// Stream-state errors distinguishing "writer mid-line" from "log corrupt" —
// the distinction a tailer needs to decide between retrying and alarming.
var (
	// ErrTornLine reports that the stream ended mid-line: the final line has
	// no terminating newline, which for a live log usually means the writer's
	// append is still in flight. The error is retryable — the Reader keeps
	// the partial bytes, and a later Read continues accumulating from the
	// underlying reader (an *os.File that has grown returns the new bytes),
	// so a tailer simply polls Read until the line completes.
	ErrTornLine = errors.New("logfmt: torn final line (no trailing newline; partial write in progress?)")
	// ErrOversizedLine reports a line exceeding MaxLineBytes. Unlike a torn
	// tail this cannot heal — no valid record is that large — so the Reader
	// latches the error: the log is corrupt and every subsequent Read
	// returns it.
	ErrOversizedLine = errors.New("logfmt: oversized line (log corrupt)")
)

// MaxLineBytes bounds one record line. Lines beyond it fail with
// ErrOversizedLine instead of being buffered without limit.
const MaxLineBytes = 1 << 20

// timeLayout is the on-disk timestamp encoding: RFC3339 keeps records
// human-inspectable while remaining unambiguous across days, unlike the
// paper's clock-only "00:08:41" rendering.
const timeLayout = time.RFC3339

// Marshal encodes r as a single TSV line (without trailing newline):
//
//	machineID \t query \t timestamp \t nClicks [\t clickTime \t clickURL]...
func Marshal(r Record) (string, error) {
	if r.MachineID == "" {
		return "", fmt.Errorf("%w: empty machine ID", ErrMalformed)
	}
	if strings.ContainsAny(r.MachineID, "\t\n") || strings.ContainsAny(r.Query, "\t\n") {
		return "", fmt.Errorf("%w: field contains tab or newline", ErrMalformed)
	}
	var b strings.Builder
	b.WriteString(r.MachineID)
	b.WriteByte('\t')
	b.WriteString(r.Query)
	b.WriteByte('\t')
	b.WriteString(r.Time.Format(timeLayout))
	b.WriteByte('\t')
	b.WriteString(strconv.Itoa(len(r.Clicks)))
	for _, c := range r.Clicks {
		if strings.ContainsAny(c.URL, "\t\n") {
			return "", fmt.Errorf("%w: click URL contains tab or newline", ErrMalformed)
		}
		b.WriteByte('\t')
		b.WriteString(c.Time.Format(timeLayout))
		b.WriteByte('\t')
		b.WriteString(c.URL)
	}
	return b.String(), nil
}

// Unmarshal parses one TSV line produced by Marshal.
func Unmarshal(line string) (Record, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 4 {
		return Record{}, fmt.Errorf("%w: %d fields, need at least 4", ErrMalformed, len(fields))
	}
	ts, err := time.Parse(timeLayout, fields[2])
	if err != nil {
		return Record{}, fmt.Errorf("%w: bad timestamp %q: %v", ErrMalformed, fields[2], err)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return Record{}, fmt.Errorf("%w: bad click count %q", ErrMalformed, fields[3])
	}
	if len(fields) != 4+2*n {
		return Record{}, fmt.Errorf("%w: click count %d but %d trailing fields", ErrMalformed, n, len(fields)-4)
	}
	r := Record{MachineID: fields[0], Query: fields[1], Time: ts}
	if n > 0 {
		r.Clicks = make([]Click, n)
		for i := 0; i < n; i++ {
			ct, err := time.Parse(timeLayout, fields[4+2*i])
			if err != nil {
				return Record{}, fmt.Errorf("%w: bad click timestamp %q: %v", ErrMalformed, fields[4+2*i], err)
			}
			r.Clicks[i] = Click{Time: ct, URL: fields[5+2*i]}
		}
	}
	return r, nil
}

// Writer streams records to an underlying io.Writer, one TSV line each.
type Writer struct {
	bw  *bufio.Writer
	n   int
	err error
}

// NewWriter returns a buffered record writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record. After the first error all subsequent writes fail
// with the same error.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	line, err := Marshal(r)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.WriteString(line); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count reports the number of records successfully written.
func (w *Writer) Count() int { return w.n }

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Reader streams records from an underlying io.Reader. It is tail-capable:
// a final line without a newline fails with the retryable ErrTornLine while
// the partial bytes are retained, so re-calling Read after the underlying
// stream grows (e.g. an *os.File being appended to) resumes mid-line.
// Offset reports how many bytes of complete lines have been consumed — the
// resume point a crash-recovering tailer seeks back to.
type Reader struct {
	br      *bufio.Reader
	line    int
	off     int64  // bytes consumed through the end of the last complete line
	pending []byte // partial final line retained across ErrTornLine retries
	fatal   error  // latched unrecoverable stream error (oversized line)
}

// NewReader returns a record reader over r. Lines up to MaxLineBytes are
// accepted; longer lines fail with ErrOversizedLine.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Offset returns the number of bytes consumed through the end of the last
// complete line (returned record, skipped blank, or malformed line). Bytes of
// a pending torn final line are excluded: a reader reopened at Offset resumes
// exactly at the first unconsumed line.
func (r *Reader) Offset() int64 { return r.off }

// Read returns the next record, or io.EOF when the stream is exhausted.
// Blank lines are skipped. A stream ending mid-line returns ErrTornLine
// (retryable: call Read again once the underlying stream has grown); a line
// longer than MaxLineBytes returns ErrOversizedLine and poisons the reader.
func (r *Reader) Read() (Record, error) {
	if r.fatal != nil {
		return Record{}, r.fatal
	}
	for {
		frag, err := r.br.ReadSlice('\n')
		r.pending = append(r.pending, frag...)
		if len(r.pending) > MaxLineBytes {
			r.fatal = fmt.Errorf("line %d: %w (%d+ bytes)", r.line+1, ErrOversizedLine, len(r.pending))
			return Record{}, r.fatal
		}
		if err == bufio.ErrBufferFull {
			continue // long line split across buffer fills
		}
		if err != nil {
			if err == io.EOF {
				if len(r.pending) == 0 {
					return Record{}, io.EOF
				}
				return Record{}, fmt.Errorf("line %d: %w", r.line+1, ErrTornLine)
			}
			return Record{}, err
		}
		r.line++
		r.off += int64(len(r.pending))
		line := strings.TrimRight(string(r.pending), "\r\n")
		r.pending = r.pending[:0]
		if line == "" {
			continue
		}
		rec, err := Unmarshal(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return rec, nil
	}
}

// ReadAll drains the stream into a slice. Intended for tests and small logs;
// production paths should use Read in a loop.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
