// Package logfmt implements the raw search-log record layout of the paper's
// Table III and a streaming tab-separated encoding for it. A record is one
// query event: the machine that issued it, the query string, the submission
// timestamp, and zero or more clicked URLs each with its own click timestamp.
package logfmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Click is one clicked URL following a query, with its click timestamp.
type Click struct {
	URL  string
	Time time.Time
}

// Record is one raw search-log row in the format of Table III.
type Record struct {
	MachineID string
	Query     string
	Time      time.Time
	Clicks    []Click
}

// ErrMalformed is wrapped by all parse errors produced by this package.
var ErrMalformed = errors.New("logfmt: malformed record")

// timeLayout is the on-disk timestamp encoding: RFC3339 keeps records
// human-inspectable while remaining unambiguous across days, unlike the
// paper's clock-only "00:08:41" rendering.
const timeLayout = time.RFC3339

// Marshal encodes r as a single TSV line (without trailing newline):
//
//	machineID \t query \t timestamp \t nClicks [\t clickTime \t clickURL]...
func Marshal(r Record) (string, error) {
	if r.MachineID == "" {
		return "", fmt.Errorf("%w: empty machine ID", ErrMalformed)
	}
	if strings.ContainsAny(r.MachineID, "\t\n") || strings.ContainsAny(r.Query, "\t\n") {
		return "", fmt.Errorf("%w: field contains tab or newline", ErrMalformed)
	}
	var b strings.Builder
	b.WriteString(r.MachineID)
	b.WriteByte('\t')
	b.WriteString(r.Query)
	b.WriteByte('\t')
	b.WriteString(r.Time.Format(timeLayout))
	b.WriteByte('\t')
	b.WriteString(strconv.Itoa(len(r.Clicks)))
	for _, c := range r.Clicks {
		if strings.ContainsAny(c.URL, "\t\n") {
			return "", fmt.Errorf("%w: click URL contains tab or newline", ErrMalformed)
		}
		b.WriteByte('\t')
		b.WriteString(c.Time.Format(timeLayout))
		b.WriteByte('\t')
		b.WriteString(c.URL)
	}
	return b.String(), nil
}

// Unmarshal parses one TSV line produced by Marshal.
func Unmarshal(line string) (Record, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 4 {
		return Record{}, fmt.Errorf("%w: %d fields, need at least 4", ErrMalformed, len(fields))
	}
	ts, err := time.Parse(timeLayout, fields[2])
	if err != nil {
		return Record{}, fmt.Errorf("%w: bad timestamp %q: %v", ErrMalformed, fields[2], err)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return Record{}, fmt.Errorf("%w: bad click count %q", ErrMalformed, fields[3])
	}
	if len(fields) != 4+2*n {
		return Record{}, fmt.Errorf("%w: click count %d but %d trailing fields", ErrMalformed, n, len(fields)-4)
	}
	r := Record{MachineID: fields[0], Query: fields[1], Time: ts}
	if n > 0 {
		r.Clicks = make([]Click, n)
		for i := 0; i < n; i++ {
			ct, err := time.Parse(timeLayout, fields[4+2*i])
			if err != nil {
				return Record{}, fmt.Errorf("%w: bad click timestamp %q: %v", ErrMalformed, fields[4+2*i], err)
			}
			r.Clicks[i] = Click{Time: ct, URL: fields[5+2*i]}
		}
	}
	return r, nil
}

// Writer streams records to an underlying io.Writer, one TSV line each.
type Writer struct {
	bw  *bufio.Writer
	n   int
	err error
}

// NewWriter returns a buffered record writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record. After the first error all subsequent writes fail
// with the same error.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	line, err := Marshal(r)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.WriteString(line); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count reports the number of records successfully written.
func (w *Writer) Count() int { return w.n }

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Reader streams records from an underlying io.Reader.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a record reader over r. Lines up to 1 MiB are accepted.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next record, or io.EOF when the stream is exhausted.
// Blank lines are skipped.
func (r *Reader) Read() (Record, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r")
		if line == "" {
			continue
		}
		rec, err := Unmarshal(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the stream into a slice. Intended for tests and small logs;
// production paths should use Read in a loop.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
