package logfmt

import (
	"strings"
	"testing"
	"time"
)

// FuzzLogfmtRoundTrip checks that any record Marshal accepts survives an
// Unmarshal round trip exactly, and that Unmarshal never panics on arbitrary
// lines. Timestamps are built from unix seconds because the on-disk layout
// (RFC3339) has second precision.
func FuzzLogfmtRoundTrip(f *testing.F) {
	f.Add("machine-1", "free mp3 download", int64(1_200_000_000), uint8(2), "example.com/a")
	f.Add("m", "", int64(0), uint8(0), "")
	f.Add("x\ty", "tabbed", int64(1_700_000_000), uint8(1), "u\nrl")
	f.Fuzz(func(t *testing.T, machine, q string, sec int64, nclicks uint8, url string) {
		// Clamp to a non-negative range RFC3339 can encode (years stay < 2250);
		// Marshal does not validate years, so out-of-range times are a
		// formatting limitation, not a round-trip bug.
		sec = ((sec % (1 << 33)) + (1 << 33)) % (1 << 33)
		r := Record{MachineID: machine, Query: q, Time: time.Unix(sec, 0).UTC()}
		for i := 0; i < int(nclicks%5); i++ {
			r.Clicks = append(r.Clicks, Click{URL: url, Time: r.Time.Add(time.Duration(i) * time.Second)})
		}
		line, err := Marshal(r)
		if err != nil {
			// Marshal rejected it (empty machine, tab/newline in a field,
			// unencodable year, ...) — nothing to round-trip, but the raw
			// fields must still never panic Unmarshal below.
			line = machine + "\t" + q + "\t" + url
		} else {
			got, err := Unmarshal(line)
			if err != nil {
				t.Fatalf("Unmarshal(Marshal(r)) failed: %v\nline: %q", err, line)
			}
			if got.MachineID != r.MachineID || got.Query != r.Query || !got.Time.Equal(r.Time) {
				t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
			}
			if len(got.Clicks) != len(r.Clicks) {
				t.Fatalf("clicks count mismatch: %d vs %d", len(got.Clicks), len(r.Clicks))
			}
			for i := range r.Clicks {
				if got.Clicks[i].URL != r.Clicks[i].URL || !got.Clicks[i].Time.Equal(r.Clicks[i].Time) {
					t.Fatalf("click %d mismatch: %+v vs %+v", i, got.Clicks[i], r.Clicks[i])
				}
			}
		}
		// Arbitrary input must never panic the parser.
		_, _ = Unmarshal(line)
		_, _ = Unmarshal(strings.ToUpper(line))
	})
}
