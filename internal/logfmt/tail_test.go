package logfmt

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestReaderTornFinalLine covers the mid-line crash tail: a log whose last
// line was cut off by a crash (or is still being appended) must surface the
// retryable ErrTornLine, not silently report EOF, and the reader must resume
// mid-line once the missing bytes arrive.
func TestReaderTornFinalLine(t *testing.T) {
	line, err := Marshal(sample())
	if err != nil {
		t.Fatal(err)
	}
	full := line + "\n" + line + "\n"
	cut := len(full) - 7 // slice mid-way through the second record

	dir := t.TempDir()
	path := filepath.Join(dir, "torn.log")
	if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rd := NewReader(f)
	if _, err := rd.Read(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	wantOff := int64(len(line) + 1)
	if rd.Offset() != wantOff {
		t.Fatalf("Offset = %d, want %d", rd.Offset(), wantOff)
	}
	// The torn tail must be distinguishable from clean EOF and must not
	// advance Offset (those bytes are not durably consumed yet).
	for i := 0; i < 3; i++ {
		if _, err := rd.Read(); !errors.Is(err, ErrTornLine) {
			t.Fatalf("read %d on torn tail: err = %v, want ErrTornLine", i, err)
		}
	}
	if rd.Offset() != wantOff {
		t.Fatalf("Offset moved to %d on torn tail, want %d", rd.Offset(), wantOff)
	}

	// Writer finishes its append: the same reader must pick up mid-line.
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.WriteString(full[cut:]); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := rd.Read()
	if err != nil {
		t.Fatalf("read after append: %v", err)
	}
	if rec.MachineID != sample().MachineID {
		t.Fatalf("resumed record mismatch: %+v", rec)
	}
	if rd.Offset() != int64(len(full)) {
		t.Fatalf("final Offset = %d, want %d", rd.Offset(), len(full))
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("after full drain: err = %v, want io.EOF", err)
	}
}

// TestReaderOffsetResume proves the crash-recovery contract: reopening the
// stream at Offset() yields exactly the records not yet returned.
func TestReaderOffsetResume(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	for i := 0; i < 10; i++ {
		r := sample()
		r.Query = "q" + strings.Repeat("x", i)
		r.Time = t0.Add(time.Duration(i) * time.Minute)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := sb.String()

	rd := NewReader(strings.NewReader(data))
	for i := 0; i < 4; i++ {
		if _, err := rd.Read(); err != nil {
			t.Fatal(err)
		}
	}
	resumed := NewReader(strings.NewReader(data[rd.Offset():]))
	recs, err := resumed.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("resumed %d records, want 6", len(recs))
	}
	if want := t0.Add(4 * time.Minute); !recs[0].Time.Equal(want) {
		t.Fatalf("first resumed record time = %v, want %v", recs[0].Time, want)
	}
}

// TestReaderOversizedLine: a line beyond MaxLineBytes is unrecoverable
// corruption — the error latches so a tailer cannot spin on it.
func TestReaderOversizedLine(t *testing.T) {
	huge := strings.Repeat("a", MaxLineBytes+2)
	rd := NewReader(strings.NewReader(huge))
	_, err := rd.Read()
	if !errors.Is(err, ErrOversizedLine) {
		t.Fatalf("err = %v, want ErrOversizedLine", err)
	}
	if _, err2 := rd.Read(); !errors.Is(err2, ErrOversizedLine) {
		t.Fatalf("second read err = %v, want latched ErrOversizedLine", err2)
	}
}

// TestReaderTornLineIsNotEOF guards the error taxonomy the tailer relies on:
// the two stream-state errors must be distinguishable from each other and
// from clean EOF.
func TestReaderTornLineIsNotEOF(t *testing.T) {
	rd := NewReader(strings.NewReader("partial"))
	_, err := rd.Read()
	if !errors.Is(err, ErrTornLine) {
		t.Fatalf("err = %v, want ErrTornLine", err)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, ErrOversizedLine) {
		t.Fatalf("ErrTornLine must not alias EOF or ErrOversizedLine: %v", err)
	}
}
