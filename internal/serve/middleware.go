package serve

import (
	"net/http"
	"runtime/debug"
	"sync"
	"time"
)

// statusWriter captures the response status so the instrumentation
// middleware can count errors and log outcomes. Writers are pooled and carry
// the per-request instrumentation state, so a request adds no middleware
// allocations: the deferred finish is a plain method call (open-coded by the
// compiler), not a closure.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool

	h      *Handler
	method string
	path   string
	start  time.Time
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// finish runs deferred around every request: it recovers panics (a handler
// bug answers 500 instead of killing the connection and, under http.Server,
// the process's goroutine), counts errors, logs, and recycles the writer.
func (w *statusWriter) finish() {
	h := w.h
	if err := recover(); err != nil {
		h.m.panics.Add(1)
		if h.opts.Logger != nil {
			h.opts.Logger.Printf("panic serving %s %s: %v\n%s", w.method, w.path, err, debug.Stack())
		}
		if !w.wrote {
			writeError(w, http.StatusInternalServerError, "internal", "internal server error")
		}
	}
	if w.status() >= 400 {
		h.m.errors.Add(1)
	}
	if h.opts.Logger != nil {
		h.opts.Logger.Printf("%s %s -> %d (%s)", w.method, w.path, w.status(), time.Since(w.start))
	}
	w.ResponseWriter = nil
	w.h = nil
	statusWriterPool.Put(w)
}

// instrument wraps next with the serving middleware: request counting, panic
// recovery, error counting, and optional request logging.
func (h *Handler) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.m.requests.Add(1)
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter = w
		sw.code, sw.wrote = 0, false
		sw.h, sw.method, sw.path, sw.start = h, r.Method, r.URL.Path, time.Now()
		defer sw.finish()
		next.ServeHTTP(sw, r)
	})
}
