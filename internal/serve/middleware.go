package serve

import (
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// statusWriter captures the response status so the instrumentation
// middleware can count errors and log outcomes. Writers are pooled and carry
// the per-request instrumentation state — including the request's pooled
// trace and correlation ID — so a request adds no middleware allocations:
// the deferred finish is a plain method call (open-coded by the compiler),
// not a closure.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool

	h      *Handler
	method string
	path   string
	start  time.Time
	tr     *obs.Trace
	rid    string // X-Request-Id: client-supplied, or the trace ID
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// finish runs deferred around every request: it recovers panics (a handler
// bug answers 500 instead of killing the connection and, under http.Server,
// the process's goroutine), counts errors, records the per-route latency
// histograms, hands the trace to the tail-sampling tracer, logs with the
// request ID, and recycles the writer.
func (w *statusWriter) finish() {
	h := w.h
	errored := false
	if err := recover(); err != nil {
		h.m.panics.Add(1)
		errored = true
		if h.opts.Logger != nil {
			h.opts.Logger.Printf("panic serving %s %s rid=%s trace=%s: %v\n%s",
				w.method, w.path, w.rid, w.tr.ID(), err, debug.Stack())
		}
		if !w.wrote {
			writeError(w, http.StatusInternalServerError, "internal", "internal server error")
		}
	}
	if w.status() >= 400 {
		h.m.errors.Add(1)
		errored = true
	}
	took := time.Since(w.start).Microseconds()
	h.histHTTP.Record(took)
	switch w.path {
	case "/suggest":
		h.histRouteSuggest.Record(took)
	case "/suggest/batch", "/v1/suggest/batch":
		h.histRouteBatch.Record(took)
	default:
		h.histRouteAdmin.Record(took)
	}
	if h.opts.Logger != nil {
		// Log before Finish: the trace ID string aliases pooled storage that
		// Finish may recycle.
		h.opts.Logger.Printf("%s %s -> %d (%s) rid=%s trace=%s",
			w.method, w.path, w.status(), time.Since(w.start), w.rid, w.tr.ID())
	}
	h.tracer.Finish(w.tr, errored)
	w.tr = nil
	w.rid = ""
	w.ResponseWriter = nil
	w.h = nil
	statusWriterPool.Put(w)
}

// instrument wraps next with the serving middleware: request counting, trace
// start (adopting an inbound X-Trace-Id so shard-side traces share the
// router's ID), X-Trace-Id/X-Request-Id response headers, panic recovery,
// error counting, and optional request logging. Header propagation reuses
// pooled or inbound slices — the middleware allocates nothing at steady
// state.
func (h *Handler) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.m.requests.Add(1)
		sw := statusWriterPool.Get().(*statusWriter)
		sw.ResponseWriter = w
		sw.code, sw.wrote = 0, false
		sw.h, sw.method, sw.path, sw.start = h, r.Method, r.URL.Path, time.Now()
		tr := h.tracer.Start()
		if id := r.Header.Get("X-Trace-Id"); id != "" {
			tr.SetID(id)
		}
		sw.tr = tr
		hdr := w.Header()
		hdr["X-Trace-Id"] = tr.HeaderValue()
		if rid := r.Header["X-Request-Id"]; len(rid) > 0 && rid[0] != "" {
			// Echo the client's correlation ID back, reusing its slice.
			hdr["X-Request-Id"] = rid
			sw.rid = rid[0]
		} else {
			hdr["X-Request-Id"] = tr.HeaderValue()
			sw.rid = tr.ID()
		}
		defer sw.finish()
		next.ServeHTTP(sw, r)
	})
}
