package serve

import (
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter captures the response status so the instrumentation
// middleware can count errors and log outcomes.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps next with the serving middleware: request counting,
// panic recovery (a handler bug answers 500 instead of killing the
// connection and, under http.Server, the process's goroutine), error
// counting, and optional request logging.
func (h *Handler) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.m.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if err := recover(); err != nil {
				h.m.panics.Add(1)
				if h.opts.Logger != nil {
					h.opts.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, err, debug.Stack())
				}
				if !sw.wrote {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
			}
			if sw.status() >= 400 {
				h.m.errors.Add(1)
			}
			if h.opts.Logger != nil {
				h.opts.Logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.status(), time.Since(start))
			}
		}()
		next.ServeHTTP(sw, r)
	})
}
