package serve

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/fleet"
)

// ringSize bounds the latency sample window. 4096 recent samples give
// stable p50/p99 estimates at serving rates without unbounded memory.
const ringSize = 4096

// latencyRing is a fixed-size ring of recent request latencies in
// microseconds. Recording is O(1) under a short critical section;
// quantiles copy and sort on demand (the /metrics path is cold).
type latencyRing struct {
	mu  sync.Mutex
	buf [ringSize]int64
	n   uint64 // total samples ever recorded
}

func (r *latencyRing) record(us int64) {
	r.mu.Lock()
	r.buf[r.n%ringSize] = us
	r.n++
	r.mu.Unlock()
}

// snapshot returns a sorted copy of the currently held samples.
func (r *latencyRing) snapshot() []int64 {
	r.mu.Lock()
	n := r.n
	if n > ringSize {
		n = ringSize
	}
	out := make([]int64, n)
	copy(out, r.buf[:n])
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quantile reads the q-th quantile (0..1) from a sorted sample, 0 when
// empty.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// metrics aggregates the handler's serving counters.
type metrics struct {
	requests      atomic.Uint64 // every HTTP request
	suggests      atomic.Uint64 // GET /suggest requests served
	batches       atomic.Uint64 // POST /suggest/batch requests served
	batchContexts atomic.Uint64 // contexts answered across batch requests
	errors        atomic.Uint64 // responses with status >= 400
	panics        atomic.Uint64 // panics recovered by middleware
	reloads       atomic.Uint64 // successful model swaps
	lat           latencyRing   // suggest + per-batch-context latencies
}

// RuntimeStats is the allocation and GC slice of /metrics. Load generators
// diff two snapshots to attribute allocation and pause cost to a traffic
// window — the way serving-path allocation regressions surface in load tests
// rather than only in microbenchmarks.
type RuntimeStats struct {
	HeapAllocBytes     uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes    uint64 `json:"total_alloc_bytes"`
	Mallocs            uint64 `json:"mallocs"`
	NumGC              uint32 `json:"num_gc"`
	GCPauseTotalMicros uint64 `json:"gc_pause_total_us"`
	NumGoroutines      int    `json:"num_goroutines"`
}

// readRuntimeStats snapshots the process allocator and GC counters. The
// /metrics path is cold, so the brief ReadMemStats stop-the-world is fine.
func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		HeapAllocBytes:     ms.HeapAlloc,
		TotalAllocBytes:    ms.TotalAlloc,
		Mallocs:            ms.Mallocs,
		NumGC:              ms.NumGC,
		GCPauseTotalMicros: ms.PauseTotalNs / 1000,
		NumGoroutines:      runtime.NumGoroutine(),
	}
}

// MetricsResponse is the GET /metrics payload: request counters, cache
// effectiveness, latency quantiles over the recent sample window, and
// process allocation/GC counters.
type MetricsResponse struct {
	Requests        uint64        `json:"requests"`
	SuggestRequests uint64        `json:"suggest_requests"`
	BatchRequests   uint64        `json:"batch_requests"`
	BatchContexts   uint64        `json:"batch_contexts"`
	Errors          uint64        `json:"errors"`
	Panics          uint64        `json:"panics"`
	Reloads         uint64        `json:"reloads"`
	Cache           cache.Stats   `json:"cache"`
	CacheHitRate    float64       `json:"cache_hit_rate"`
	LatencySamples  int           `json:"latency_samples"`
	P50Micros       int64         `json:"latency_p50_us"`
	P90Micros       int64         `json:"latency_p90_us"`
	P99Micros       int64         `json:"latency_p99_us"`
	ModelGeneration uint64        `json:"model_generation"`
	KnownQueries    int           `json:"known_queries"`
	CompiledNodes   int           `json:"compiled_nodes"`
	Quantised       bool          `json:"compiled_quantised"`
	BlobFormat      string        `json:"model_blob_format,omitempty"`
	BlobBytes       int64         `json:"model_blob_bytes,omitempty"`
	Fleet           *FleetMetrics `json:"fleet,omitempty"`
	Ingest          any           `json:"ingest,omitempty"`
	UptimeSeconds   float64       `json:"uptime_seconds"`
	Runtime         RuntimeStats  `json:"runtime"`
}

// FleetMetrics is the fleet-mode slice of /metrics: per-arm traffic share,
// request counts and latency quantiles (the raw material for an offline
// NDCG-style comparison of logged answers per arm), plus shadow divergence.
type FleetMetrics struct {
	Arms    []fleet.ArmStats    `json:"arms"`
	Shadows []fleet.ShadowStats `json:"shadows,omitempty"`
}
