package serve

import (
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// quantile reads the q-th quantile (0..1) from a sorted sample, 0 when
// empty. The rank is ceil(q*n) (clamped), matching the histogram layer's
// convention: the estimator can only err high, never low. The previous
// int(q*(n-1)) form truncated toward the floor and under-reported high
// quantiles — for a 100-sample window it read p99 from index 98, reporting
// the 99th of 100 samples as if it were the worst-case tail.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// metrics aggregates the handler's serving counters. Latency moved out of
// the old 4096-sample mutex ring into lock-free obs.Histogram instruments
// on the Handler (full-range, mergeable, p999-capable).
type metrics struct {
	requests      atomic.Uint64 // every HTTP request
	suggests      atomic.Uint64 // GET /suggest requests served
	batches       atomic.Uint64 // POST /suggest/batch requests served
	batchContexts atomic.Uint64 // contexts answered across batch requests
	errors        atomic.Uint64 // responses with status >= 400
	panics        atomic.Uint64 // panics recovered by middleware
	reloads       atomic.Uint64 // successful model swaps
}

// RuntimeStats is the allocation and GC slice of /metrics. Load generators
// diff two snapshots to attribute allocation and pause cost to a traffic
// window — the way serving-path allocation regressions surface in load tests
// rather than only in microbenchmarks.
type RuntimeStats struct {
	HeapAllocBytes     uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes    uint64 `json:"total_alloc_bytes"`
	Mallocs            uint64 `json:"mallocs"`
	NumGC              uint32 `json:"num_gc"`
	GCPauseTotalMicros uint64 `json:"gc_pause_total_us"`
	NumGoroutines      int    `json:"num_goroutines"`
}

// readRuntimeStats snapshots the process allocator and GC counters. The
// /metrics path is cold, so the brief ReadMemStats stop-the-world is fine.
func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		HeapAllocBytes:     ms.HeapAlloc,
		TotalAllocBytes:    ms.TotalAlloc,
		Mallocs:            ms.Mallocs,
		NumGC:              ms.NumGC,
		GCPauseTotalMicros: ms.PauseTotalNs / 1000,
		NumGoroutines:      runtime.NumGoroutine(),
	}
}

// StageStats is one per-stage latency row in /v1/metrics: the latency of a
// single serving stage (queue, cache lookup, predict descent, rerank) read
// from its dedicated histogram.
type StageStats struct {
	Count      uint64 `json:"count"`
	P50Micros  int64  `json:"p50_us"`
	P99Micros  int64  `json:"p99_us"`
	P999Micros int64  `json:"p999_us"`
	MaxMicros  int64  `json:"max_us"`
}

// stageStats reads one histogram into a StageStats row.
func stageStats(h *obs.Histogram) StageStats {
	return StageStats{
		Count:      h.Count(),
		P50Micros:  h.Quantile(0.50),
		P99Micros:  h.Quantile(0.99),
		P999Micros: h.Quantile(0.999),
		MaxMicros:  h.Max(),
	}
}

// MetricsResponse is the GET /metrics payload: request counters, cache
// effectiveness, latency quantiles (suggest + per-batch-context, sourced
// from the full-history histogram, so the legacy latency_* fields keep their
// names while gaining p999/max headroom), per-stage latency breakdowns, and
// process allocation/GC counters.
type MetricsResponse struct {
	Requests        uint64                `json:"requests"`
	SuggestRequests uint64                `json:"suggest_requests"`
	BatchRequests   uint64                `json:"batch_requests"`
	BatchContexts   uint64                `json:"batch_contexts"`
	Errors          uint64                `json:"errors"`
	Panics          uint64                `json:"panics"`
	Reloads         uint64                `json:"reloads"`
	Cache           cache.Stats           `json:"cache"`
	CacheHitRate    float64               `json:"cache_hit_rate"`
	LatencySamples  int                   `json:"latency_samples"`
	P50Micros       int64                 `json:"latency_p50_us"`
	P90Micros       int64                 `json:"latency_p90_us"`
	P99Micros       int64                 `json:"latency_p99_us"`
	P999Micros      int64                 `json:"latency_p999_us"`
	MaxMicros       int64                 `json:"latency_max_us"`
	Stages          map[string]StageStats `json:"stages,omitempty"`
	ModelGeneration uint64                `json:"model_generation"`
	KnownQueries    int                   `json:"known_queries"`
	CompiledNodes   int                   `json:"compiled_nodes"`
	Quantised       bool                  `json:"compiled_quantised"`
	BlobFormat      string                `json:"model_blob_format,omitempty"`
	BlobBytes       int64                 `json:"model_blob_bytes,omitempty"`
	Fleet           *FleetMetrics         `json:"fleet,omitempty"`
	Ingest          any                   `json:"ingest,omitempty"`
	UptimeSeconds   float64               `json:"uptime_seconds"`
	Runtime         RuntimeStats          `json:"runtime"`
}

// FleetMetrics is the fleet-mode slice of /metrics: per-arm traffic share,
// request counts and latency quantiles (the raw material for an offline
// NDCG-style comparison of logged answers per arm), plus shadow divergence.
type FleetMetrics struct {
	Arms    []fleet.ArmStats    `json:"arms"`
	Shadows []fleet.ShadowStats `json:"shadows,omitempty"`
}
