package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// streamTookRE strips the timing member, the only nondeterministic bytes in
// a batch result item.
var streamTookRE = regexp.MustCompile(`"took_us":\d+`)

func stripStreamTook(b []byte) string {
	return streamTookRE.ReplaceAllString(string(b), `"took_us":X`)
}

// ndjsonLine is one streamed batch response line.
type ndjsonLine struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result"`
	Error  json.RawMessage `json:"error"`
}

// readNDJSON decodes an NDJSON body into per-index lines, failing on
// duplicate or missing indices against want items.
func readNDJSON(t *testing.T, rd io.Reader, want int) []ndjsonLine {
	t.Helper()
	lines := make([]ndjsonLine, want)
	seen := make([]bool, want)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var ln ndjsonLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("line %d: %v: %s", n, err, sc.Bytes())
		}
		if ln.Index < 0 || ln.Index >= want {
			t.Fatalf("line %d: index %d out of range [0,%d)", n, ln.Index, want)
		}
		if seen[ln.Index] {
			t.Fatalf("index %d emitted twice", ln.Index)
		}
		seen[ln.Index] = true
		lines[ln.Index] = ln
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("streamed %d lines, want %d", n, want)
	}
	return lines
}

// TestBatchStreamNDJSONParity: POST /v1/suggest/batch?stream=1 must answer
// one NDJSON line per item whose result object is byte-identical (modulo
// took_us) to the corresponding element of the buffered results array, and
// the Accept: application/x-ndjson header must select the same mode.
func TestBatchStreamNDJSONParity(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	body := `{"requests":[{"context":["o2"]},{"context":["o2","o2 mobile"],"n":1},{"context":["never seen"]},{"context":["o2"]}]}`
	resp := postBatch(t, srv.URL, body)
	defer resp.Body.Close()
	var buffered struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&buffered); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Results) != 4 {
		t.Fatalf("buffered results = %d, want 4", len(buffered.Results))
	}

	sresp, err := http.Post(srv.URL+"/v1/suggest/batch?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	for i, ln := range readNDJSON(t, sresp.Body, 4) {
		if ln.Error != nil {
			t.Fatalf("line %d carries an error: %s", i, ln.Error)
		}
		if got, want := stripStreamTook(ln.Result), stripStreamTook(buffered.Results[i]); got != want {
			t.Fatalf("item %d:\nstream:   %s\nbuffered: %s", i, got, want)
		}
	}

	// The Accept header is the no-query-string opt-in for the same mode.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/suggest/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	aresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if ct := aresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Accept-negotiated Content-Type = %q", ct)
	}
	readNDJSON(t, aresp.Body, 4)
}

// TestBatchV1Alias: /v1/suggest/batch without stream=1 behaves exactly like
// the unversioned path — buffered JSON.
func TestBatchV1Alias(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	body := `{"requests":[{"context":["o2"]}]}`
	resp, err := http.Post(srv.URL+"/v1/suggest/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Suggestions) == 0 {
		t.Fatalf("results = %+v", out.Results)
	}
}
