package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// getJSON GETs url and decodes the JSON body into out, failing the test on
// transport or decode errors.
func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s decode: %v", url, err)
	}
}

// TestRequestIDPropagation covers the correlation-ID contract: a
// client-supplied X-Request-Id is echoed verbatim, an absent one is filled
// with the generated trace ID, and every response carries an X-Trace-Id.
func TestRequestIDPropagation(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/suggest?q=o2", nil)
	req.Header.Set("X-Request-Id", "client-rid-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-rid-42" {
		t.Fatalf("X-Request-Id = %q, want the client's client-rid-42", got)
	}
	if tid := resp.Header.Get("X-Trace-Id"); len(tid) != 16 {
		t.Fatalf("X-Trace-Id = %q, want 16 hex chars", tid)
	}

	resp2, err := http.Get(srv.URL + "/suggest?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	rid, tid := resp2.Header.Get("X-Request-Id"), resp2.Header.Get("X-Trace-Id")
	if rid == "" || rid != tid {
		t.Fatalf("generated X-Request-Id = %q, want the trace ID %q", rid, tid)
	}
}

// TestPrometheusRoundTripHTTP scrapes the text exposition over HTTP, parses
// it back with obs.ParsePrometheus and cross-checks it against the JSON
// /v1/metrics view of the same counters.
func TestPrometheusRoundTripHTTP(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	const n = 7
	for i := 0; i < n; i++ {
		resp, err := http.Get(srv.URL + "/suggest?q=o2")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var m MetricsResponse
	getJSON(t, http.DefaultClient, srv.URL+"/v1/metrics", &m)

	for _, path := range []string{"/metrics", "/v1/metrics"} {
		resp, err := http.Get(srv.URL + path + "?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
			t.Fatalf("%s Content-Type = %q", path, ct)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fams, err := obs.ParsePrometheus(raw)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		hist, ok := fams["serve_http_request_us"]
		if !ok || hist.Type != "histogram" {
			t.Fatalf("%s: serve_http_request_us missing or not a histogram: %+v", path, hist)
		}
		var count, inf float64
		for _, s := range hist.Samples {
			switch {
			case s.Name == "serve_http_request_us_count":
				count = s.Value
			case s.Le == "+Inf":
				inf = s.Value
			}
		}
		if count < n {
			t.Fatalf("%s: http request histogram count = %v, want >= %d", path, count, n)
		}
		if inf != count {
			t.Fatalf("%s: +Inf bucket = %v, want the count %v", path, inf, count)
		}
		sugg, ok := fams["serve_suggest_requests_total"]
		if !ok || sugg.Type != "counter" || len(sugg.Samples) != 1 {
			t.Fatalf("%s: serve_suggest_requests_total missing: %+v", path, sugg)
		}
		// The exposition was scraped after the JSON snapshot, so it can only
		// have grown.
		if got := uint64(sugg.Samples[0].Value); got < m.SuggestRequests {
			t.Fatalf("%s: suggest counter = %d, want >= JSON view %d", path, got, m.SuggestRequests)
		}
	}
}

// TestTracesReturnStageSpans drives cache-miss and cache-hit requests, then
// asserts /v1/traces retains them with per-stage spans that stay inside the
// recorded total — the invariant the ISSUE's acceptance criterion names.
func TestTracesReturnStageSpans(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL + "/suggest?q=o2")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var tr TracesResponse
	getJSON(t, http.DefaultClient, srv.URL+"/v1/traces", &tr)
	if tr.Count == 0 || len(tr.Traces) != tr.Count {
		t.Fatalf("traces = %+v, want retained traces with count matching", tr)
	}
	sawStage := false
	for _, v := range tr.Traces {
		if len(v.ID) != 16 {
			t.Fatalf("trace ID = %q, want 16 hex chars", v.ID)
		}
		var sum int64
		for _, s := range v.Spans {
			if s.StartMicros < 0 || s.DurMicros < 0 {
				t.Fatalf("span %+v has negative offset or duration", s)
			}
			// Spans are recorded before Finish stamps the total; allow the
			// microsecond truncation of two independent clock reads.
			if end := s.StartMicros + s.DurMicros; end > v.TotalMicros+2 {
				t.Fatalf("span %+v ends at %dus, after trace total %dus", s, end, v.TotalMicros)
			}
			if s.Name == stageCache || s.Name == stageDescent || s.Name == stageRerank {
				sawStage = true
				sum += s.DurMicros
			}
		}
		if sum > v.TotalMicros+2 {
			t.Fatalf("stage spans sum to %dus, more than trace total %dus", sum, v.TotalMicros)
		}
	}
	if !sawStage {
		t.Fatal("no cache/descent/rerank stage spans in any retained trace")
	}

	// min_us above every total filters everything out; the threshold field
	// stays well-formed.
	var none TracesResponse
	getJSON(t, http.DefaultClient, srv.URL+"/v1/traces?min_us=999999999", &none)
	if none.Count != 0 || len(none.Traces) != 0 {
		t.Fatalf("min_us filter returned %d traces", none.Count)
	}
}

// TestObsEndpointsUnderReloadStorm hammers /suggest, /v1/metrics (JSON and
// Prometheus) and /v1/traces while POST /v1/reload swaps the model as fast
// as it can — the reload-storm race the observability layer must survive
// (run under -race via `make race`).
func TestObsEndpointsUnderReloadStorm(t *testing.T) {
	alt := altRecommender(t)
	h := New(testRecommender(t), Options{
		DefaultN:   5,
		ReloadFunc: func() (core.Recommender, error) { return alt, nil },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := srv.Client()

	const (
		workers = 4
		iters   = 40
	)
	var wg sync.WaitGroup
	fail := make(chan string, workers*4)
	run := func(fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fn(i); err != nil {
					select {
					case fail <- err.Error():
					default:
					}
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		run(func(i int) error { // suggest traffic
			resp, err := client.Get(srv.URL + "/suggest?q=o2&n=" + fmt.Sprint(1+i%5))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("suggest status %d", resp.StatusCode)
			}
			return nil
		})
	}
	run(func(i int) error { // reload storm
		resp, err := client.Post(srv.URL+"/v1/reload", "", nil)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("reload status %d", resp.StatusCode)
		}
		return nil
	})
	run(func(i int) error { // JSON metrics readers
		var m MetricsResponse
		resp, err := client.Get(srv.URL + "/v1/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&m)
	})
	run(func(i int) error { // Prometheus scrapers
		resp, err := client.Get(srv.URL + "/v1/metrics?format=prometheus")
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		_, err = obs.ParsePrometheus(raw)
		return err
	})
	run(func(i int) error { // trace readers
		var tr TracesResponse
		resp, err := client.Get(srv.URL + "/v1/traces?limit=8")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&tr)
	})
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	var m MetricsResponse
	getJSON(t, client, srv.URL+"/v1/metrics", &m)
	if m.Reloads == 0 {
		t.Fatal("no reloads landed during the storm")
	}
	if m.SuggestRequests < workers*iters {
		t.Fatalf("suggest requests = %d, want >= %d", m.SuggestRequests, workers*iters)
	}
	if m.Errors != 0 {
		t.Fatalf("errors = %d during the storm", m.Errors)
	}
}
