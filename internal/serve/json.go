package serve

import (
	"math"
	"net/http"
	"strconv"

	"repro/internal/core"
)

// Append-style JSON encoding for the hot serving paths. encoding/json's
// Marshal walks reflection metadata and allocates its output buffer on every
// call; the handlers below instead append the response bytes directly into a
// pooled buffer, so a cache-hit request performs no encoding allocations at
// all. Cold endpoints (/healthz, /metrics, /reload, errors) keep the stdlib
// encoder — clarity wins where latency does not matter.

// jsonContentType is assigned directly into the response header map.
// (http.Header.Set allocates a fresh []string per call; sharing one slice
// keeps the hot path clean. The key is already in canonical form.)
var jsonContentType = []string{"application/json"}

func setJSONContentType(w http.ResponseWriter) {
	w.Header()["Content-Type"] = jsonContentType
}

// appendJSONString appends s as a JSON string literal. Quotes, backslashes
// and control characters are escaped; valid UTF-8 passes through verbatim.
// (Unlike encoding/json it does not HTML-escape <, >, & or sanitise invalid
// UTF-8 — both re-encode the same JSON value, and query strings are data,
// not markup.)
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = appendEscapedByte(dst, c)
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONStringBytes is appendJSONString for byte slices (the /suggest
// context echo, which never materialises strings).
func appendJSONStringBytes(dst []byte, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = appendEscapedByte(dst, c)
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

const hexDigits = "0123456789abcdef"

func appendEscapedByte(dst []byte, c byte) []byte {
	switch c {
	case '"':
		return append(dst, '\\', '"')
	case '\\':
		return append(dst, '\\', '\\')
	case '\n':
		return append(dst, '\\', 'n')
	case '\r':
		return append(dst, '\\', 'r')
	case '\t':
		return append(dst, '\\', 't')
	default:
		return append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
	}
}

// appendJSONFloat appends f in encoding/json's float format (shortest
// round-trip, 'f' form within [1e-6, 1e21), cleaned-up 'e' form outside),
// so responses are byte-identical to the stdlib encoder's. Scores are finite
// by construction; NaN/Inf cannot reach here.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// 1e+07 -> 1e+7, matching encoding/json.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendSuggestions appends the `"suggestions":[...]` member.
func appendSuggestions(dst []byte, recs []core.Suggestion) []byte {
	dst = append(dst, `"suggestions":[`...)
	for i, s := range recs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"query":`...)
		dst = appendJSONString(dst, s.Query)
		dst = append(dst, `,"score":`...)
		dst = appendJSONFloat(dst, s.Score)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// appendSuggestResponseBytes encodes a SuggestResponse whose context is held
// as raw decoded bytes — the GET /suggest hot path.
func appendSuggestResponseBytes(dst []byte, context [][]byte, recs []core.Suggestion, tookMicros int64) []byte {
	dst = append(dst, `{"context":[`...)
	for i, q := range context {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONStringBytes(dst, q)
	}
	dst = append(dst, `],`...)
	dst = appendSuggestions(dst, recs)
	dst = append(dst, `,"took_us":`...)
	dst = strconv.AppendInt(dst, tookMicros, 10)
	return append(dst, '}')
}

// appendSuggestResponse encodes a SuggestResponse from string context — one
// element of the batch response.
func appendSuggestResponse(dst []byte, context []string, recs []core.Suggestion, tookMicros int64) []byte {
	dst = append(dst, `{"context":[`...)
	for i, q := range context {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, q)
	}
	dst = append(dst, `],`...)
	dst = appendSuggestions(dst, recs)
	dst = append(dst, `,"took_us":`...)
	dst = strconv.AppendInt(dst, tookMicros, 10)
	return append(dst, '}')
}
