package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jsonspan"
	"repro/internal/query"
)

// POST /suggest/batch without encoding/json on the hot path: the body is
// read into a pooled buffer, split into item spans with internal/jsonspan,
// and each item's context strings are unescaped into pooled flat storage and
// interned byte-wise — no Go string is ever materialised for a context. The
// response echoes each item's context array span verbatim from the request
// body (zero-copy) around the pooled append-style suggestion encoder. The
// shard fan-out drives 64-item batches through this path per sub-batch, so
// its allocation discipline is what BenchmarkShardFanout64 gates.

// batchItemSpan is one parsed batch item: where its context array lives in
// the body (for the verbatim echo), which decoded tokens are its context
// queries, and its requested n.
type batchItemSpan struct {
	ctxSpan      [2]int32 // raw "context" array value span in body
	tokLo, tokHi int32    // token range in spans/raw
	n            int
}

// batchScratch pools every per-batch buffer of suggestBatch.
type batchScratch struct {
	body  []byte
	items []batchItemSpan
	spans [][2]int32 // decoded token spans into flat
	flat  []byte     // decoded context tokens, back to back
	raw   [][]byte   // views into flat, one per token
	ids   query.Seq  // interned IDs, back to back
	idOff []int32    // per-item offsets into ids (len(items)+1)
	ctxs  []query.Seq
	ns    []int
	out   [][]core.Suggestion
	resp  []byte
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{
		body: make([]byte, 0, 4096),
		flat: make([]byte, 0, 1024),
		resp: make([]byte, 0, 4096),
	}
}}

func putBatchScratch(bb *batchScratch) {
	clear(bb.raw) // do not retain body-derived views in the pool
	clear(bb.out)
	clear(bb.ctxs)
	bb.body = bb.body[:0]
	bb.items = bb.items[:0]
	bb.spans = bb.spans[:0]
	bb.flat = bb.flat[:0]
	bb.raw = bb.raw[:0]
	bb.ids = bb.ids[:0]
	bb.idOff = bb.idOff[:0]
	bb.ctxs = bb.ctxs[:0]
	bb.ns = bb.ns[:0]
	bb.out = bb.out[:0]
	bb.resp = bb.resp[:0]
	batchScratchPool.Put(bb)
}

// appendReadAll reads rd to EOF, appending to buf — io.ReadAll with a
// recycled destination.
func appendReadAll(buf []byte, rd io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// parseBatchBody splits the request body into batch item spans, rejecting
// unknown fields like the previous encoding/json decoder did
// (DisallowUnknownFields). Only spans and token positions are recorded; no
// item bytes are copied except unescaped context tokens into flat.
func (bb *batchScratch) parseBatchBody() error {
	b := bb.body
	i := jsonspan.SkipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return fmt.Errorf("expected a JSON object")
	}
	i++
	sawRequests := false
	for {
		i = jsonspan.SkipSpace(b, i)
		if i >= len(b) {
			return fmt.Errorf("unterminated object")
		}
		if b[i] == '}' {
			break
		}
		if b[i] == ',' {
			i++
			continue
		}
		if b[i] != '"' {
			return fmt.Errorf("expected object key at offset %d", i)
		}
		keyEnd, err := jsonspan.SkipString(b, i)
		if err != nil {
			return err
		}
		key := b[i+1 : keyEnd-1]
		i = jsonspan.SkipSpace(b, keyEnd)
		if i >= len(b) || b[i] != ':' {
			return fmt.Errorf("expected ':' at offset %d", i)
		}
		i++
		if string(key) != "requests" {
			return fmt.Errorf("unknown field %q", key)
		}
		sawRequests = true
		if i, err = bb.parseItems(i); err != nil {
			return err
		}
	}
	if !sawRequests {
		return fmt.Errorf(`missing "requests" array`)
	}
	return nil
}

// parseItems parses the "requests" array starting at bb.body[i], returning
// the index after it.
func (bb *batchScratch) parseItems(i int) (int, error) {
	b := bb.body
	i = jsonspan.SkipSpace(b, i)
	if i >= len(b) || b[i] != '[' {
		return 0, fmt.Errorf(`"requests" must be an array`)
	}
	i++
	for {
		i = jsonspan.SkipSpace(b, i)
		if i >= len(b) {
			return 0, fmt.Errorf("unterminated requests array")
		}
		if b[i] == ']' {
			return i + 1, nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		var err error
		if i, err = bb.parseItem(i); err != nil {
			return 0, fmt.Errorf("requests[%d]: %w", len(bb.items)-1, err)
		}
	}
}

// parseItem parses one batch item object starting at bb.body[i]: its context
// array span is recorded for the verbatim echo, each context string is
// unescaped into flat, and n is parsed in place.
func (bb *batchScratch) parseItem(i int) (int, error) {
	bb.items = append(bb.items, batchItemSpan{tokLo: int32(len(bb.spans)), tokHi: int32(len(bb.spans))})
	item := &bb.items[len(bb.items)-1]
	b := bb.body
	i = jsonspan.SkipSpace(b, i)
	if i >= len(b) || b[i] != '{' {
		return 0, fmt.Errorf("expected an object")
	}
	i++
	for {
		i = jsonspan.SkipSpace(b, i)
		if i >= len(b) {
			return 0, fmt.Errorf("unterminated item object")
		}
		if b[i] == '}' {
			return i + 1, nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		if b[i] != '"' {
			return 0, fmt.Errorf("expected object key at offset %d", i)
		}
		keyEnd, err := jsonspan.SkipString(b, i)
		if err != nil {
			return 0, err
		}
		key := b[i+1 : keyEnd-1]
		i = jsonspan.SkipSpace(b, keyEnd)
		if i >= len(b) || b[i] != ':' {
			return 0, fmt.Errorf("expected ':' at offset %d", i)
		}
		i++
		switch string(key) {
		case "context":
			i = jsonspan.SkipSpace(b, i)
			start := i
			if i, err = bb.parseContext(i, item); err != nil {
				return 0, err
			}
			item.ctxSpan = [2]int32{int32(start), int32(i)}
		case "n":
			i = jsonspan.SkipSpace(b, i)
			numStart := i
			if i, err = jsonspan.SkipValue(b, i); err != nil {
				return 0, err
			}
			v, err := strconv.Atoi(string(b[numStart:i]))
			if err != nil {
				return 0, fmt.Errorf("n must be an integer")
			}
			item.n = v
		default:
			return 0, fmt.Errorf("unknown field %q", key)
		}
	}
}

// parseContext parses the item's context string array, unescaping each
// element into flat and recording its token span.
func (bb *batchScratch) parseContext(i int, item *batchItemSpan) (int, error) {
	b := bb.body
	if i >= len(b) || b[i] != '[' {
		return 0, fmt.Errorf("context must be an array of strings")
	}
	i++
	for {
		i = jsonspan.SkipSpace(b, i)
		if i >= len(b) {
			return 0, fmt.Errorf("unterminated context array")
		}
		if b[i] == ']' {
			return i + 1, nil
		}
		if b[i] == ',' {
			i++
			continue
		}
		if b[i] != '"' {
			return 0, fmt.Errorf("context must be an array of strings")
		}
		end, err := jsonspan.SkipString(b, i)
		if err != nil {
			return 0, err
		}
		start := len(bb.flat)
		bb.flat = jsonspan.AppendUnescaped(bb.flat, b[i+1:end-1])
		bb.spans = append(bb.spans, [2]int32{int32(start), int32(len(bb.flat))})
		item.tokHi = int32(len(bb.spans))
		i = end
	}
}

// suggestBatch scores a whole batch through one shared-scratch batched trie
// descent per arm (cache misses only; hits come straight from the LRU) and
// encodes the response with the pooled append encoder. See the file comment
// for the allocation discipline.
func (h *Handler) suggestBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	bb := batchScratchPool.Get().(*batchScratch)
	defer putBatchScratch(bb)
	var err error
	if bb.body, err = appendReadAll(bb.body, http.MaxBytesReader(w, r.Body, 1<<22)); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	if err := bb.parseBatchBody(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if len(bb.items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch: requests must contain at least one context")
		return
	}
	if len(bb.items) > h.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d exceeds limit %d", len(bb.items), h.opts.MaxBatch))
		return
	}
	for i := range bb.items {
		item := &bb.items[i]
		if item.tokHi == item.tokLo {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("requests[%d]: empty context", i))
			return
		}
		if item.n < 0 || item.n > h.opts.MaxN {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("requests[%d]: n must be in [1,%d] (or omitted)", i, h.opts.MaxN))
			return
		}
		n := item.n
		if n == 0 {
			n = h.opts.DefaultN
		}
		bb.ns = append(bb.ns, n)
	}
	// Materialise token views only now: flat has stopped growing, so the
	// subslices cannot dangle.
	for _, sp := range bb.spans {
		bb.raw = append(bb.raw, bb.flat[sp[0]:sp[1]])
	}
	// Intern every context against the serving dictionary (the router's base
	// dictionary in fleet mode), back to back; views follow once ids is
	// stable.
	st := h.state.Load()
	bb.idOff = append(bb.idOff, 0)
	for i := range bb.items {
		item := &bb.items[i]
		toks := bb.raw[item.tokLo:item.tokHi]
		if h.fleet != nil {
			bb.ids = h.fleet.AppendContextBytes(bb.ids, toks)
		} else {
			bb.ids = core.AppendContextBytes(st.rec.Dict(), bb.ids, toks)
		}
		bb.idOff = append(bb.idOff, int32(len(bb.ids)))
	}
	for i := range bb.items {
		bb.ctxs = append(bb.ctxs, bb.ids[bb.idOff[i]:bb.idOff[i+1]])
		bb.out = append(bb.out, nil)
	}
	batchStart := time.Now()
	if h.fleet != nil {
		h.recommendBatchFleet(bb)
	} else {
		h.cache.RecommendBatchSlot(0, st.gen, st.rec, bb.ctxs, bb.ns, bb.out)
	}
	elapsed := time.Since(batchStart).Microseconds()
	h.recordStage(traceOf(w), h.histBatchDescent, stageBatch, batchStart, elapsed, "ok")
	perCtx := elapsed / int64(len(bb.items))
	for range bb.items {
		h.histServe.Record(perCtx)
	}
	h.m.batches.Add(1)
	h.m.batchContexts.Add(uint64(len(bb.items)))
	if wantsNDJSONStream(r) {
		// NDJSON mode: one {"index":N,"result":{...}} line per item, the
		// item object byte-identical to its buffered counterpart. A single
		// handler scores the whole batch in one descent pass, so the lines
		// land together; the incremental flushing happens a layer up, where
		// the shard router emits each sub-batch as it completes.
		bb.resp = bb.resp[:0]
		for i := range bb.out {
			bb.resp = append(bb.resp, `{"index":`...)
			bb.resp = strconv.AppendInt(bb.resp, int64(i), 10)
			bb.resp = append(bb.resp, `,"result":`...)
			bb.resp = bb.appendBatchItem(bb.resp, i, perCtx)
			bb.resp = append(bb.resp, "}\n"...)
		}
		w.Header()["Content-Type"] = ndjsonHeaderValue
		w.Write(bb.resp)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		return
	}
	bb.resp = append(bb.resp[:0], `{"results":[`...)
	for i := range bb.out {
		if i > 0 {
			bb.resp = append(bb.resp, ',')
		}
		bb.resp = bb.appendBatchItem(bb.resp, i, perCtx)
	}
	bb.resp = append(bb.resp, `],"took_us":`...)
	bb.resp = strconv.AppendInt(bb.resp, elapsed, 10)
	bb.resp = append(bb.resp, '}')
	setJSONContentType(w)
	w.Write(bb.resp)
}

// appendBatchItem encodes one batch result object — the context echoed
// verbatim from the request body, the pooled suggestion encoding and the
// per-context latency — shared by the buffered array and the NDJSON lines
// so the two response modes carry identical item bytes.
func (bb *batchScratch) appendBatchItem(dst []byte, i int, perCtx int64) []byte {
	dst = append(dst, `{"context":`...)
	sp := bb.items[i].ctxSpan
	dst = append(dst, bb.body[sp[0]:sp[1]]...)
	dst = append(dst, ',')
	dst = appendSuggestions(dst, bb.out[i])
	dst = append(dst, `,"took_us":`...)
	dst = strconv.AppendInt(dst, perCtx, 10)
	dst = append(dst, '}')
	return dst
}

// wantsNDJSONStream reports whether the batch request opted into the
// streaming NDJSON response shape: ?stream=1 in the query string or an
// Accept header naming application/x-ndjson. The query string is scanned
// in place to keep the buffered hot path free of url.Query allocations.
func wantsNDJSONStream(r *http.Request) bool {
	raw := r.URL.RawQuery
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "stream=1" {
			return true
		}
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// ndjsonHeaderValue is the shared Content-Type slice for NDJSON batch
// responses.
var ndjsonHeaderValue = []string{"application/x-ndjson"}
