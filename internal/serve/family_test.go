package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hmm"
	"repro/internal/pairwise"
	"repro/internal/query"
)

// familyFixture trains the MVMM champion and the raw sessions behind it, so
// tests can build family arms over the exact same dictionary.
func familyFixture(t testing.TB) (*query.Dict, []query.Session, core.Recommender) {
	t.Helper()
	d := query.NewDict()
	a, b, c := d.Intern("o2"), d.Intern("o2 mobile"), d.Intern("o2 mobile phones")
	var raw []query.Seq
	for i := 0; i < 10; i++ {
		raw = append(raw, query.Seq{a, b, c})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	sessions := []query.Session{{Queries: query.Seq{a, b, c}, Count: 10}}
	return d, sessions, core.TrainFromSessions(d, raw, cfg)
}

// TestHMMShadowArmCrossFamilyMetrics is the tentpole acceptance test: an HMM
// arm lifted through core.FromPredictor rides as a weight-0 shadow next to
// the MVMM champion, and /v1/metrics reports its divergence tagged with the
// "hmm" family — the live cross-family comparison.
func TestHMMShadowArmCrossFamilyMetrics(t *testing.T) {
	d, sessions, champ := familyFixture(t)
	cfg := hmm.DefaultConfig(d.Len())
	cfg.States = 4
	m, err := hmm.Train(sessions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadowRec := core.FromPredictor(d, m, core.LoadInfo{})

	reg := fleet.NewRegistry(0)
	if _, err := reg.Add("champion", champ, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("hmm-shadow", shadowRec, nil); err != nil {
		t.Fatal(err)
	}
	rt, err := fleet.NewRouter(reg,
		fleet.ArmSpec{Name: "champion", Weight: 1},
		fleet.ArmSpec{Name: "hmm-shadow", Weight: 0})
	if err != nil {
		t.Fatal(err)
	}
	h := New(champ, Options{DefaultN: 5, Fleet: rt})
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 16; i++ {
		resp, err := http.Get(srv.URL + "/suggest?q=o2&q=o2+mobile")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var mr MetricsResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if mr.Fleet == nil || len(mr.Fleet.Shadows) != 1 {
			t.Fatalf("fleet metrics = %+v", mr.Fleet)
		}
		sh := mr.Fleet.Shadows[0]
		if sh.Samples+sh.Dropped >= 16 {
			if sh.Family != "hmm" {
				t.Fatalf("shadow family = %q, want hmm (stats %+v)", sh.Family, sh)
			}
			if sh.Samples > 0 && (sh.Coverage < 0 || sh.Coverage > 1) {
				t.Fatalf("shadow coverage %v outside [0,1]", sh.Coverage)
			}
			if sh.Top1MismatchRate < 0 || sh.MeanRankOverlap < 0 {
				t.Fatalf("divergence metrics missing: %+v", sh)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow scored only %+v of 16 requests", sh)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPairwiseRerankOnChampion wires the optional second-stage pairwise
// rerank onto the champion arm and checks both the serving path (valid,
// complete answers) and its /v1/models exposure.
func TestPairwiseRerankOnChampion(t *testing.T) {
	d, sessions, champ := familyFixture(t)
	adj := pairwise.NewAdjacency(sessions, d.Len())

	reg := fleet.NewRegistry(0)
	if _, err := reg.Add("champion", champ, nil); err != nil {
		t.Fatal(err)
	}
	rt, err := fleet.NewRouter(reg, fleet.ArmSpec{Name: "champion", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	rk, err := fleet.NewPairwiseReranker(adj, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRerank("champion", rk); err != nil {
		t.Fatal(err)
	}
	h := New(champ, Options{DefaultN: 5, Fleet: rt})
	srv := httptest.NewServer(h)
	defer srv.Close()

	baseline := core.Recommend(champ, []string{"o2"}, 5)
	if len(baseline) == 0 {
		t.Fatal("champion serves nothing")
	}
	resp, err := http.Get(srv.URL + "/suggest?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	var out SuggestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Suggestions) != len(baseline) {
		t.Fatalf("rerank changed answer size: %d vs %d", len(out.Suggestions), len(baseline))
	}
	// Reranking reorders; it must not invent or drop candidates.
	want := make(map[string]bool, len(baseline))
	for _, s := range baseline {
		want[s.Query] = true
	}
	for _, s := range out.Suggestions {
		if !want[s.Query] {
			t.Fatalf("reranked answer invented %q (baseline %+v)", s.Query, baseline)
		}
	}

	mresp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	found := false
	for _, mi := range models.Models {
		if mi.Name == "champion" {
			found = true
			if mi.Rerank != rk.Name() {
				t.Fatalf("models rerank = %q, want %q", mi.Rerank, rk.Name())
			}
			if mi.Family != "mvmm" {
				t.Fatalf("champion family = %q, want mvmm", mi.Family)
			}
		}
	}
	if !found {
		t.Fatal("champion row missing from /v1/models")
	}
}

// TestV1MigrationAndErrorEnvelope pins the /v1 mounting contract: legacy GET
// admin paths 301 to their /v1 twins, legacy POST /reload keeps working as
// an alias, and every non-2xx answer carries the JSON error envelope.
func TestV1MigrationAndErrorEnvelope(t *testing.T) {
	h := New(testRecommender(t), Options{DefaultN: 5})
	srv := httptest.NewServer(h)
	defer srv.Close()
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	for _, path := range []string{"/metrics", "/models", "/route?q=o2"} {
		resp, err := noRedirect.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMovedPermanently {
			t.Fatalf("GET %s = %d, want 301", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/") {
			t.Fatalf("GET %s redirects to %q, want /v1/ prefix", path, loc)
		}
	}
	// The redirect must preserve the query string.
	resp, err := noRedirect.Get(srv.URL + "/route?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != "/v1/route?q=o2" {
		t.Fatalf("legacy /route redirects to %q, want /v1/route?q=o2", loc)
	}

	// /healthz serves on both paths: liveness probes don't follow 301s.
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := noRedirect.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200 (first-class alias, not a redirect)", path, resp.StatusCode)
		}
	}

	// Legacy POST /reload stays an alias (a 301 would downgrade the POST).
	resp, err = http.Post(srv.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("legacy POST /reload = %d, want 501 (no ReloadFunc configured)", resp.StatusCode)
	}
	var envelope ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code == "" || envelope.Error.Message == "" {
		t.Fatalf("non-2xx answer missing error envelope: %+v", envelope)
	}

	// Every 4xx shape carries the envelope.
	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"GET", "/no-such-endpoint", http.StatusNotFound},
		{"GET", "/suggest", http.StatusBadRequest},
		{"POST", "/v1/metrics", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noRedirect.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorBody
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if err != nil || env.Error.Code == "" || env.Error.Message == "" {
			t.Fatalf("%s %s: malformed error envelope (err=%v, env=%+v)", tc.method, tc.path, err, env)
		}
	}
}
