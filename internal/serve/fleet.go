package serve

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/query"
)

// Fleet-mode request handling: the handler defers model choice to a
// fleet.Router. One interning against the router's base dictionary yields
// the sticky routing hash, the cache key and the prediction context; the
// chosen arm's slot supplies the (model, generation) pair and the registry's
// shared slot-keyed cache fronts them all. The arm that served is echoed in
// the X-Serve-Arm response header (pre-built slice: no allocation) so load
// generators and log pipelines can attribute latency and answer quality per
// arm. The whole path stays zero-allocation at steady state — the CI gate
// BenchmarkRouteAB pins it there.

// suggestFleet is the fleet twin of the single-model suggest fast path.
// When the serving arm carries a reranker, the cached answer is copied into
// the request scratch and reordered there — cache-owned slices are immutable
// — before encoding; the shadow scorer sees the reranked list (it is what
// the user was served).
func (h *Handler) suggestFleet(w http.ResponseWriter, b *reqScratch, n int) {
	rt := h.fleet
	tr := traceOf(w)
	start := time.Now()
	h.recordQueue(tr, start)
	b.ctx = rt.AppendContextBytes(b.ctx[:0], b.raw)
	armIdx := rt.Route(b.ctx)
	arm := rt.Arm(armIdx)
	slot := arm.Slot()
	st := slot.State()
	var recs []core.Suggestion
	hit := false
	if len(b.ctx) > 0 {
		recs, hit = h.cache.RecommendSlotHit(slot.ID(), st.Gen, st.Rec, b.ctx, n)
	}
	lookupTook := time.Since(start).Microseconds()
	if hit {
		h.recordStage(tr, h.histCache, stageCache, start, lookupTook, "hit")
	} else {
		h.recordStage(tr, h.histDescent, stageDescent, start, lookupTook, "miss")
	}
	if rk := arm.Reranker(); rk != nil && len(recs) > 1 {
		rerankStart := time.Now()
		b.rerank = rk.Rerank(b.ctx, recs, b.rerank[:0])
		recs = b.rerank
		h.recordStage(tr, h.histRerank, stageRerank, rerankStart,
			time.Since(rerankStart).Microseconds(), "ok")
	}
	took := time.Since(start).Microseconds()
	h.m.suggests.Add(1)
	h.histServe.Record(took)
	rt.RecordServe(armIdx, took)
	// Shadow-score only champion-served requests: divergence metrics mean
	// "challenger vs champion", and once a challenger ramps to live weight its
	// own answers must not pollute its comparison baseline.
	if len(b.ctx) > 0 && armIdx == 0 {
		rt.Shadow(b.ctx, n, recs)
	}
	w.Header()["X-Serve-Arm"] = arm.HeaderValue()
	b.body = appendSuggestResponseBytes(b.body[:0], b.raw, recs, took)
	setJSONContentType(w)
	w.Write(b.body)
}

// recommendBatchFleet resolves a batch in fleet mode: the contexts were
// already interned once against the router's base dictionary by the batch
// parser; here each is routed to its sticky arm and the per-arm groups are
// scored through the shared cache with one batched trie descent per arm.
// Batch items are not shadow-scored or reranked (shadow divergence and
// second-stage ranking sample the interactive path).
func (h *Handler) recommendBatchFleet(bb *batchScratch) {
	rt := h.fleet
	arms := rt.Arms()
	groups := make([]struct {
		idx  []int
		ctxs []query.Seq
		ns   []int
	}, len(arms))
	for i, ctx := range bb.ctxs {
		armIdx := rt.Route(ctx)
		g := &groups[armIdx]
		g.idx = append(g.idx, i)
		g.ctxs = append(g.ctxs, ctx)
		g.ns = append(g.ns, bb.ns[i])
	}
	for armIdx := range groups {
		g := &groups[armIdx]
		if len(g.idx) == 0 {
			continue
		}
		slot := arms[armIdx].Slot()
		st := slot.State()
		out := make([][]core.Suggestion, len(g.idx))
		h.cache.RecommendBatchSlot(slot.ID(), st.Gen, st.Rec, g.ctxs, g.ns, out)
		for j, i := range g.idx {
			bb.out[i] = out[j]
		}
	}
}

// reloadFleet serves POST /reload?model=<name>[&force=1] in fleet mode.
func (h *Handler) reloadFleet(w http.ResponseWriter, name string, force bool, start time.Time) {
	if name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "fleet serving reloads by name: POST /v1/reload?model=<name> (see /v1/models)")
		return
	}
	slot := h.fleet.Registry().Slot(name)
	if slot == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown model %q (see /v1/models)", name))
		return
	}
	gen, err := slot.Reload(force)
	if err != nil {
		writeReloadError(w, err)
		return
	}
	h.m.reloads.Add(1)
	// Advance the interning base so vocabulary added by a champion reload
	// becomes servable; a lagging arm keeps the old (still sound) base.
	if err := h.fleet.RefreshBase(); err != nil && h.opts.Logger != nil {
		h.opts.Logger.Printf("interning base not advanced after reload of %q: %v", name, err)
	}
	writeJSON(w, http.StatusOK, ReloadResponse{
		Model:        name,
		Generation:   gen,
		KnownQueries: slot.State().Rec.Dict().Len(),
		TookMicros:   time.Since(start).Microseconds(),
	})
}

// ModelInfo is one registry slot's row in the GET /v1/models payload.
// Family identifies the model family serving the slot (one of the
// compiled.Family* identifiers: "mvmm", "hmm", "cluster", "adjacency",
// "cooccurrence") and Label its human-readable form; Rerank names the arm's
// optional second-stage ranker ("" when off, the default).
type ModelInfo struct {
	Name          string `json:"name"`
	Role          string `json:"role"` // "champion", "arm", "shadow" or "default"
	Family        string `json:"family,omitempty"`
	Label         string `json:"family_label,omitempty"`
	Rerank        string `json:"rerank,omitempty"`
	Weight        uint32 `json:"weight"`
	Generation    uint64 `json:"generation"`
	DictHash      string `json:"dict_hash"`
	KnownQueries  int    `json:"known_queries"`
	Compiled      bool   `json:"compiled"`
	CompiledNodes int    `json:"compiled_nodes,omitempty"`
	Quantised     bool   `json:"compiled_quantised,omitempty"`
	BlobFormat    string `json:"model_blob_format,omitempty"`
	BlobBytes     int64  `json:"model_blob_bytes,omitempty"`
	Reloadable    bool   `json:"reloadable"`
}

// ModelsResponse is the GET /models payload: every registered model with its
// routing role, plus the live per-arm serving stats and shadow divergence.
// BaseDictHash fingerprints the dictionary contexts are interned against
// (advanced by champion reloads when every arm still extends it).
type ModelsResponse struct {
	Models       []ModelInfo         `json:"models"`
	BaseDictHash string              `json:"base_dict_hash,omitempty"`
	Arms         []fleet.ArmStats    `json:"arms,omitempty"`
	Shadows      []fleet.ShadowStats `json:"shadows,omitempty"`
}

// models serves GET /v1/models. In single-model mode it reports the one served
// model under the name "default", so tooling can treat every deployment
// uniformly.
func (h *Handler) models(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	if h.fleet == nil {
		st := h.state.Load()
		writeJSON(w, http.StatusOK, ModelsResponse{Models: []ModelInfo{
			modelInfo("default", "default", 1, st.gen, st.rec, h.opts.ReloadFunc != nil),
		}})
		return
	}
	rt := h.fleet
	roles := make(map[string]string)
	weights := make(map[string]uint32)
	reranks := make(map[string]string)
	for i, a := range rt.Arms() {
		// Roles follow the current (dynamic) weights: a declared-shadow arm
		// that the ramp has walked to positive weight reads as a live arm.
		role := "arm"
		switch {
		case i == 0:
			role = "champion"
		case a.Weight() == 0:
			role = "shadow"
		}
		roles[a.Slot().Name()] = role
		weights[a.Slot().Name()] = a.Weight()
		if rk := a.Reranker(); rk != nil {
			reranks[a.Slot().Name()] = rk.Name()
		}
	}
	for _, s := range rt.ShadowSlots() {
		if _, routed := roles[s.Name()]; !routed {
			roles[s.Name()] = "shadow"
		}
	}
	resp := ModelsResponse{
		BaseDictHash: fmt.Sprintf("%016x", rt.BaseDictHash()),
		Arms:         rt.ArmStats(),
		Shadows:      rt.ShadowStats(),
	}
	for _, slot := range rt.Registry().Slots() {
		st := slot.State()
		role := roles[slot.Name()]
		if role == "" {
			role = "unrouted"
		}
		mi := modelInfo(slot.Name(), role, weights[slot.Name()], st.Gen, st.Rec, true)
		mi.Rerank = reranks[slot.Name()]
		resp.Models = append(resp.Models, mi)
	}
	writeJSON(w, http.StatusOK, resp)
}

// modelInfo assembles one ModelInfo row.
func modelInfo(name, role string, weight uint32, gen uint64, rec core.Recommender, reloadable bool) ModelInfo {
	info := ModelInfo{
		Name:         name,
		Role:         role,
		Weight:       weight,
		Generation:   gen,
		DictHash:     fmt.Sprintf("%016x", rec.Dict().Hash()),
		KnownQueries: rec.Dict().Len(),
		Reloadable:   reloadable,
	}
	if p := rec.Predictor(); p != nil {
		shape := p.Shape()
		info.Family = shape.Family
		info.Label = shape.Label
	}
	if cm := rec.CompiledModel(); cm != nil {
		info.Compiled = true
		info.CompiledNodes = cm.Nodes()
		info.Quantised = cm.Quantised()
	}
	li := rec.LoadInfo()
	info.BlobFormat = li.Format
	info.BlobBytes = li.BlobBytes
	return info
}

// RouteInfo is the GET /route payload: where the given context would be
// served, without serving it.
type RouteInfo struct {
	Context     []string `json:"context"`
	InternedLen int      `json:"interned_len"`
	Hash        string   `json:"context_hash"`
	Arm         string   `json:"arm"`
	Generation  uint64   `json:"model_generation"`
}

// routeInfo serves GET /route?q=...&q=... — the admin view of the sticky
// assignment: which arm owns this context, under which routing hash. In
// single-model mode every context reports the one model.
func (h *Handler) routeInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	context := r.URL.Query()["q"]
	if len(context) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "missing q parameters (one per context query, oldest first)")
		return
	}
	if h.fleet == nil {
		st := h.state.Load()
		ctx := core.InternContext(st.rec.Dict(), context)
		writeJSON(w, http.StatusOK, RouteInfo{
			Context:     context,
			InternedLen: len(ctx),
			Hash:        fmt.Sprintf("%016x", fleet.HashSeq(ctx)),
			Arm:         "default",
			Generation:  st.gen,
		})
		return
	}
	rt := h.fleet
	ctx := rt.AppendContext(make(query.Seq, 0, len(context)), context)
	arm := rt.Arm(rt.Route(ctx))
	writeJSON(w, http.StatusOK, RouteInfo{
		Context:     context,
		InternedLen: len(ctx),
		Hash:        fmt.Sprintf("%016x", fleet.HashSeq(ctx)),
		Arm:         arm.Slot().Name(),
		Generation:  arm.Slot().State().Gen,
	})
}
