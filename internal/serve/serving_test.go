package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// altRecommender trains a second model whose dictionary extends the test
// recommender's (same base IDs, new vocabulary appended) but whose training
// data covers only the new vocabulary — a compatible retrain, used to
// observe hot reloads taking effect.
func altRecommender(t testing.TB) core.Recommender {
	t.Helper()
	d := query.NewDict()
	d.Intern("o2")
	d.Intern("o2 mobile")
	d.Intern("o2 mobile phones")
	a, b := d.Intern("smtp"), d.Intern("pop3")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

// incompatibleRecommender trains a model whose dictionary permutes the base
// IDs — the reload the compatibility check must refuse.
func incompatibleRecommender(t testing.TB) core.Recommender {
	t.Helper()
	d := query.NewDict()
	a, b := d.Intern("smtp"), d.Intern("pop3")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

func postBatch(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/suggest/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	body := `{"requests":[{"context":["o2"]},{"context":["o2","o2 mobile"],"n":1},{"context":["never seen"]}]}`
	resp := postBatch(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	if len(out.Results[0].Suggestions) == 0 || out.Results[0].Suggestions[0].Query != "o2 mobile" {
		t.Fatalf("results[0] = %+v", out.Results[0])
	}
	if len(out.Results[1].Suggestions) != 1 || out.Results[1].Suggestions[0].Query != "o2 mobile phones" {
		t.Fatalf("results[1] = %+v", out.Results[1])
	}
	if len(out.Results[2].Suggestions) != 0 {
		t.Fatalf("unknown context results[2] = %+v", out.Results[2])
	}
	if out.TookMicros < 0 {
		t.Fatalf("TookMicros = %d", out.TookMicros)
	}
}

func TestBatchValidation(t *testing.T) {
	srv := httptest.NewServer(New(testRecommender(t), Options{MaxBatch: 4}))
	defer srv.Close()

	cases := []struct {
		name, body string
	}{
		{"invalid JSON", `{"requests":`},
		{"empty body", ``},
		{"no requests", `{"requests":[]}`},
		{"null requests", `{}`},
		{"empty context item", `{"requests":[{"context":[]}]}`},
		{"negative n", `{"requests":[{"context":["o2"],"n":-1}]}`},
		{"oversized n", `{"requests":[{"context":["o2"],"n":1000}]}`},
		{"unknown field", `{"requests":[{"context":["o2"]}],"bogus":1}`},
		{"over MaxBatch", `{"requests":[{"context":["o2"]},{"context":["o2"]},{"context":["o2"]},{"context":["o2"]},{"context":["o2"]}]}`},
	}
	for _, tc := range cases {
		resp := postBatch(t, srv.URL, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/suggest/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status = %d, want 405", resp.StatusCode)
	}
}

// TestCacheHitEquivalence verifies the acceptance criterion that cached
// results are byte-identical to uncached ones: the first request computes,
// the second hits the LRU, and the serialized suggestions must match
// exactly.
func TestCacheHitEquivalence(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	fetch := func() []byte {
		resp, err := http.Get(srv.URL + "/suggest?q=o2&q=o2+mobile")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out SuggestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		// took_us legitimately varies per request; the recommendation
		// payload must not.
		raw, err := json.Marshal(struct {
			Context     []string
			Suggestions []Suggestion
		}{out.Context, out.Suggestions})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	miss := fetch()
	hit := fetch()
	if !bytes.Equal(miss, hit) {
		t.Fatalf("cached response diverged:\nmiss: %s\nhit:  %s", miss, hit)
	}

	var m MetricsResponse
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 hit / 1 miss", m.Cache)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/suggest?q=o2")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp := postBatch(t, srv.URL, `{"requests":[{"context":["o2"]},{"context":["o2 mobile"]}]}`)
	resp.Body.Close()
	resp, err := http.Get(srv.URL + "/suggest") // missing q -> 400
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SuggestRequests != 3 || m.BatchRequests != 1 || m.BatchContexts != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Errors != 1 {
		t.Fatalf("errors = %d, want 1", m.Errors)
	}
	if m.Requests != 6 { // 3 suggest + 1 batch + 1 bad + this /metrics... not yet counted? metrics GET runs after snapshot
		// The /metrics request itself increments the counter before the
		// handler snapshots, so 6 = 3 + 1 + 1 + 1.
		t.Fatalf("requests = %d, want 6", m.Requests)
	}
	if m.LatencySamples != 5 { // 3 single + 2 batch contexts
		t.Fatalf("latency samples = %d, want 5", m.LatencySamples)
	}
	if m.P50Micros < 0 || m.P99Micros < m.P50Micros {
		t.Fatalf("quantiles p50=%d p99=%d", m.P50Micros, m.P99Micros)
	}
	if m.ModelGeneration != 1 || m.KnownQueries != 3 {
		t.Fatalf("model metrics = %+v", m)
	}
}

func TestConcurrentSuggest(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	client := srv.Client()

	contexts := []string{"o2", "o2+mobile", "o2&q=o2+mobile", "unknown+thing"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := client.Get(srv.URL + "/suggest?q=" + contexts[(g+i)%len(contexts)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReloadSwapsWithoutDroppingRequests hammers /suggest while the model
// is hot-swapped via POST /reload; every request must succeed, and after
// the swap the new model's vocabulary must answer.
func TestReloadSwapsWithoutDroppingRequests(t *testing.T) {
	alt := altRecommender(t)
	h := New(testRecommender(t), Options{
		ReloadFunc: func() (core.Recommender, error) { return alt, nil },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := srv.Client()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.URL + "/suggest?q=o2")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("request dropped during reload: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	resp, err := client.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl.Generation != 2 || rl.KnownQueries != 5 {
		t.Fatalf("reload response = %d %+v", resp.StatusCode, rl)
	}
	close(stop)
	wg.Wait()

	// The swapped-in model must serve its own vocabulary...
	sresp, err := client.Get(srv.URL + "/suggest?q=smtp")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var out SuggestResponse
	if err := json.NewDecoder(sresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Suggestions) == 0 || out.Suggestions[0].Query != "pop3" {
		t.Fatalf("post-reload suggestions = %+v", out.Suggestions)
	}
	// ...and no stale cache entry may answer for the old vocabulary.
	oresp, err := client.Get(srv.URL + "/suggest?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	defer oresp.Body.Close()
	out = SuggestResponse{}
	if err := json.NewDecoder(oresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Suggestions) != 0 {
		t.Fatalf("old vocabulary answered after reload: %+v", out.Suggestions)
	}
	if got := h.Generation(); got != 2 {
		t.Fatalf("generation = %d, want 2", got)
	}
}

func TestReloadErrors(t *testing.T) {
	// Not configured -> 501.
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	resp, err := http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unconfigured reload status = %d, want 501", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload status = %d, want 405", resp.StatusCode)
	}
	srv.Close()

	// Failing ReloadFunc -> 500, old model keeps serving.
	h := New(testRecommender(t), Options{
		ReloadFunc: func() (core.Recommender, error) { return nil, fmt.Errorf("disk gone") },
	})
	srv = httptest.NewServer(h)
	defer srv.Close()
	resp, err = http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed reload status = %d, want 500", resp.StatusCode)
	}
	if h.Generation() != 1 {
		t.Fatalf("generation bumped on failed reload: %d", h.Generation())
	}
	resp, err = http.Get(srv.URL + "/suggest?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("old model stopped serving after failed reload: %d", resp.StatusCode)
	}
}

// TestPanicRecovery drives the instrumentation middleware with a panicking
// handler: the client must see a 500 and the panic counter must move.
func TestPanicRecovery(t *testing.T) {
	h := NewHandler(testRecommender(t), 5)
	boom := h.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rr := httptest.NewRecorder()
	boom.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/suggest", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("recovered status = %d, want 500", rr.Code)
	}
	if got := h.m.panics.Load(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
	if got := h.m.errors.Load(); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
}

func TestHealthGeneration(t *testing.T) {
	h := New(testRecommender(t), Options{
		ReloadFunc: func() (core.Recommender, error) { return altRecommender(t), nil },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := h.Reload(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hp Health
	if err := json.NewDecoder(resp.Body).Decode(&hp); err != nil {
		t.Fatal(err)
	}
	if hp.Generation != 2 || hp.KnownQueries != 5 {
		t.Fatalf("health after reload = %+v", hp)
	}
}

// TestHealthReportsBlobProvenance: a handler serving a V004 LoadPath'd
// model must surface the served blob's encoding, byte length and quantised
// flag through /healthz and /metrics — the observability contract for the
// quantised deployment.
func TestHealthReportsBlobProvenance(t *testing.T) {
	rec := testRecommender(t).(*core.Engine)
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	srv := httptest.NewServer(NewHandler(loaded, 5))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hp Health
	if err := json.NewDecoder(resp.Body).Decode(&hp); err != nil {
		t.Fatal(err)
	}
	if !hp.Compiled || !hp.Quantised || hp.BlobFormat != "CPS5" || hp.BlobBytes <= 0 {
		t.Fatalf("healthz blob provenance = %+v", hp)
	}
	if hp.LoadMode == "" || hp.LoadVersion != "QRECV005" {
		t.Fatalf("healthz load provenance = %+v", hp)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mp MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mp); err != nil {
		t.Fatal(err)
	}
	if !mp.Quantised || mp.BlobFormat != "CPS5" || mp.BlobBytes != hp.BlobBytes {
		t.Fatalf("metrics blob provenance = %+v", mp)
	}
}

func TestQuantileCeilRank(t *testing.T) {
	// 100 sorted samples 1..100: the q-quantile is the ceil(q*100)-th
	// smallest. The old int(q*(len-1)) form truncated down — p99 of 1..100
	// read 99 instead of 100 (and p90 read 90 only by accident) — which
	// systematically under-reported the tail.
	s := make([]int64, 100)
	for i := range s {
		s[i] = int64(i + 1)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {0.999, 100}, {1.0, 100},
		{0.001, 1}, {0.0, 1},
	}
	for _, c := range cases {
		if got := quantile(s, c.q); got != c.want {
			t.Fatalf("quantile(1..100, %v) = %d, want %d", c.q, got, c.want)
		}
	}
	// The regression case proper: two samples, p99 must report the worse one.
	if got := quantile([]int64{10, 1000}, 0.99); got != 1000 {
		t.Fatalf("p99 of {10,1000} = %d, want 1000 (truncation bias)", got)
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}
