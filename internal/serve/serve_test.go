package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

func testRecommender(t *testing.T) core.Recommender {
	t.Helper()
	d := query.NewDict()
	a, b, c := d.Intern("o2"), d.Intern("o2 mobile"), d.Intern("o2 mobile phones")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b, c})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

func TestSuggestEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/suggest?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SuggestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if out.Suggestions[0].Query != "o2 mobile" {
		t.Fatalf("top suggestion = %q", out.Suggestions[0].Query)
	}
	if out.TookMicros < 0 {
		t.Fatalf("TookMicros = %d", out.TookMicros)
	}
}

func TestSuggestMultiQueryContext(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/suggest?q=o2&q=o2+mobile&n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SuggestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Suggestions) != 1 || out.Suggestions[0].Query != "o2 mobile phones" {
		t.Fatalf("suggestions = %+v", out.Suggestions)
	}
	if len(out.Context) != 2 {
		t.Fatalf("context echoed %d queries", len(out.Context))
	}
}

func TestSuggestValidation(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	for _, path := range []string{"/suggest", "/suggest?q=o2&n=0", "/suggest?q=o2&n=abc", "/suggest?q=o2&n=1000"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/suggest?q=o2", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestSuggestUnknownContext(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/suggest?q=never+seen+before")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SuggestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Suggestions) != 0 {
		t.Fatalf("unknown context got suggestions: %+v", out.Suggestions)
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.KnownQueries != 3 || h.TrainSessions != 10 {
		t.Fatalf("health = %+v", h)
	}
}
