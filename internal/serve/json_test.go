package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/core"
)

// TestAppendEncoderMatchesStdlib is the property behind the hand-rolled
// encoder: for adversarial contexts, suggestion strings and scores, the
// appended bytes must decode to exactly the value encoding/json would have
// produced for the equivalent SuggestResponse.
func TestAppendEncoderMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nastyStrings := []string{
		"", "plain", "with space", `quote " inside`, `back\slash`,
		"tab\there", "new\nline", "control\x01char", "unicode héllo 日本語",
		"<script>&amp;</script>", "ends with \\",
	}
	randomScore := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return rng.Float64()
		case 1:
			return rng.Float64() * 1e-9 // forces the 'e' format
		case 2:
			return math.Float64frombits(rng.Uint64() & 0x7fefffffffffffff) // finite, any magnitude
		default:
			return 0
		}
	}
	for trial := 0; trial < 300; trial++ {
		ctx := make([]string, rng.Intn(4))
		for i := range ctx {
			ctx[i] = nastyStrings[rng.Intn(len(nastyStrings))]
		}
		recs := make([]core.Suggestion, rng.Intn(4))
		for i := range recs {
			recs[i] = core.Suggestion{Query: nastyStrings[rng.Intn(len(nastyStrings))], Score: randomScore()}
		}
		took := int64(rng.Intn(100000))

		want := SuggestResponse{Context: ctx, Suggestions: make([]Suggestion, len(recs)), TookMicros: took}
		for i, s := range recs {
			want.Suggestions[i] = Suggestion{Query: s.Query, Score: s.Score}
		}

		for _, enc := range []struct {
			name string
			out  []byte
		}{
			{"strings", appendSuggestResponse(nil, ctx, recs, took)},
			{"bytes", appendSuggestResponseBytes(nil, toBytes(ctx), recs, took)},
		} {
			var got SuggestResponse
			if err := json.Unmarshal(enc.out, &got); err != nil {
				t.Fatalf("trial %d (%s): invalid JSON %q: %v", trial, enc.name, enc.out, err)
			}
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("trial %d (%s):\n got %+v\nwant %+v\nraw %s", trial, enc.name, got, want, enc.out)
			}
			// Score bytes must match the stdlib float format exactly, so
			// cached and uncached responses stay byte-identical across
			// encoder changes.
			stdlib, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			var a, b map[string]any
			if err := json.Unmarshal(enc.out, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(stdlib, &b); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("trial %d (%s): decoded divergence\n got %v\nwant %v", trial, enc.name, a, b)
			}
		}
	}
}

func toBytes(ss []string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// TestAppendJSONFloatMatchesStdlib pins the float formatting byte-for-byte
// against encoding/json across magnitudes.
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := []float64{0, 1, -1, 0.5, 1e-6, 9.999e-7, 1e21, 9.999e20, 1e-300, 2.5e-7, 0.0026143187066974595}
	for i := 0; i < 500; i++ {
		vals = append(vals, math.Float64frombits(rng.Uint64()&0x7fefffffffffffff))
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, v); string(got) != string(want) {
			t.Fatalf("float %v: got %s, stdlib %s", v, got, want)
		}
	}
}

// TestParseSuggestQueryMatchesURLValues: the zero-alloc parser must agree
// with net/url's decoding on q values and n across escapes and edge cases.
func TestParseSuggestQueryMatchesURLValues(t *testing.T) {
	cases := []string{
		"q=o2",
		"q=o2&q=o2+mobile",
		"q=a%20b&q=%68%65%78",
		"q=&q=x",
		"q=100%",        // invalid escape: pair dropped
		"q=ok&q=bad%zz", // invalid escape on one pair only
		"n=3&q=x",
		"q=x&n=",
		"q=x&n=5&n=9",          // first n wins
		"q=%E6%97%A5%E6%9C%AC", // UTF-8
		"other=ignored&q=x",
		"",
		"&&q=x&&",
	}
	for _, raw := range cases {
		vals, _ := url.ParseQuery(raw)
		b := reqScratchPool.Get().(*reqScratch)
		n, badN := b.parseSuggestQuery(raw, 5, 100)
		if badN {
			t.Fatalf("raw %q: unexpected badN", raw)
		}
		wantQ := vals["q"]
		if len(b.raw) != len(wantQ) {
			t.Fatalf("raw %q: parsed %d q values, url.ParseQuery %d", raw, len(b.raw), len(wantQ))
		}
		for i := range wantQ {
			if string(b.raw[i]) != wantQ[i] {
				t.Fatalf("raw %q: q[%d] = %q, want %q", raw, i, b.raw[i], wantQ[i])
			}
		}
		wantN := 5
		if s := vals.Get("n"); s != "" {
			fmt.Sscanf(s, "%d", &wantN)
		}
		if n != wantN {
			t.Fatalf("raw %q: n = %d, want %d", raw, n, wantN)
		}
		putReqScratch(b)
	}
	// Explicitly bad n values must flag badN.
	for _, raw := range []string{"q=x&n=0", "q=x&n=-1", "q=x&n=abc", "q=x&n=1000"} {
		b := reqScratchPool.Get().(*reqScratch)
		if _, badN := b.parseSuggestQuery(raw, 5, 100); !badN {
			t.Fatalf("raw %q: badN not flagged", raw)
		}
		putReqScratch(b)
	}
}

// reusableRecorder is a minimal ResponseWriter that recycles its buffers, so
// handler allocation measurements are not polluted by the test harness.
type reusableRecorder struct {
	code   int
	header http.Header
	body   []byte
}

func newReusableRecorder() *reusableRecorder {
	return &reusableRecorder{header: make(http.Header, 4)}
}

func (r *reusableRecorder) Header() http.Header { return r.header }
func (r *reusableRecorder) WriteHeader(c int) {
	if r.code == 0 {
		r.code = c
	}
}
func (r *reusableRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.body = append(r.body, p...)
	return len(p), nil
}
func (r *reusableRecorder) reset() {
	r.code = 0
	r.body = r.body[:0]
}

// TestServeHTTPCachedAllocs pins the tentpole acceptance criterion at test
// time: a cache-hit GET /suggest through the full handler stack performs at
// most 2 allocations.
func TestServeHTTPCachedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	h := NewHandler(testRecommender(t), 5)
	req := httptest.NewRequest(http.MethodGet, "/suggest?q=o2&q=o2+mobile&n=5", nil)
	rr := newReusableRecorder()
	for i := 0; i < 8; i++ { // warm pools and the result cache
		rr.reset()
		h.ServeHTTP(rr, req)
	}
	allocs := testing.AllocsPerRun(300, func() {
		rr.reset()
		h.ServeHTTP(rr, req)
		if rr.code != http.StatusOK || len(rr.body) == 0 {
			t.Fatalf("status %d body %q", rr.code, rr.body)
		}
	})
	if allocs > 2 {
		t.Fatalf("cached /suggest allocates %.1f times per request, want <= 2", allocs)
	}
}
