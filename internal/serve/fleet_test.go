package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
)

// newFleetHandler builds a two-arm A/B handler over the test models:
// champion (base vocabulary) and challenger (altRecommender's extension),
// split champW/chalW, plus optional shadow slots.
func newFleetHandler(t *testing.T, champW, chalW uint32, shadow bool) (*Handler, *fleet.Router) {
	t.Helper()
	reg := fleet.NewRegistry(1 << 10)
	champ := testRecommender(t)
	if _, err := reg.Add("champion", champ, func() (core.Recommender, error) { return altRecommender(t), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("challenger", altRecommender(t), nil); err != nil {
		t.Fatal(err)
	}
	specs := []fleet.ArmSpec{
		{Name: "champion", Weight: champW},
		{Name: "challenger", Weight: chalW},
	}
	if shadow {
		if _, err := reg.Add("shadow", altRecommender(t), nil); err != nil {
			t.Fatal(err)
		}
		specs = append(specs, fleet.ArmSpec{Name: "shadow", Weight: 0})
	}
	rt, err := fleet.NewRouter(reg, specs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return New(champ, Options{Fleet: rt}), rt
}

// TestReloadDictIncompatible409 is the regression test for the reload
// compatibility fix: a replacement model whose dictionary permutes the
// served IDs must be refused with 409 Conflict carrying both dictionary
// hashes, leave the old model serving, and go through under force=1.
func TestReloadDictIncompatible409(t *testing.T) {
	h := New(testRecommender(t), Options{
		ReloadFunc: func() (core.Recommender, error) { return incompatibleRecommender(t), nil },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var conflict ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&conflict); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("incompatible reload status = %d, want 409", resp.StatusCode)
	}
	if conflict.Error.Code != "dict_incompatible" {
		t.Fatalf("conflict code = %q, want dict_incompatible", conflict.Error.Code)
	}
	if len(conflict.Error.OldDictHash) != 16 || len(conflict.Error.NewDictHash) != 16 ||
		conflict.Error.OldDictHash == conflict.Error.NewDictHash {
		t.Fatalf("conflict must carry distinct dictionary hashes: %+v", conflict)
	}
	if h.Generation() != 1 {
		t.Fatalf("generation moved on rejected reload: %d", h.Generation())
	}
	// The old model must keep serving its vocabulary.
	sresp, err := http.Get(srv.URL + "/suggest?q=o2")
	if err != nil {
		t.Fatal(err)
	}
	var out SuggestResponse
	if err := json.NewDecoder(sresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if len(out.Suggestions) == 0 || out.Suggestions[0].Query != "o2 mobile" {
		t.Fatalf("old model stopped answering after rejected reload: %+v", out)
	}
	// force=1 is the deliberate override.
	resp, err = http.Post(srv.URL+"/reload?force=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced reload status = %d", resp.StatusCode)
	}
	if h.Generation() != 2 {
		t.Fatalf("generation after forced reload = %d", h.Generation())
	}
}

// TestFleetABStickyAndLabelled: in fleet mode, every response must carry the
// serving arm in X-Serve-Arm, repeated requests for one context must always
// hit the same arm, both arms must see traffic under an even split, and
// /route must agree with what actually served.
func TestFleetABStickyAndLabelled(t *testing.T) {
	h, _ := newFleetHandler(t, 1, 1, false)
	srv := httptest.NewServer(h)
	defer srv.Close()

	seen := map[string]int{}
	for i := 0; i < 64; i++ {
		target := fmt.Sprintf("%s/suggest?q=o2&q=ctx%d", srv.URL, i)
		var arm string
		for rep := 0; rep < 3; rep++ {
			resp, err := http.Get(target)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			got := resp.Header.Get("X-Serve-Arm")
			if got == "" {
				t.Fatal("missing X-Serve-Arm header")
			}
			if rep == 0 {
				arm = got
			} else if got != arm {
				t.Fatalf("context %d flapped arms: %s then %s", i, arm, got)
			}
		}
		seen[arm]++

		// /route must report the same assignment that served.
		rresp, err := http.Get(fmt.Sprintf("%s/route?q=o2&q=ctx%d", srv.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		var ri RouteInfo
		if err := json.NewDecoder(rresp.Body).Decode(&ri); err != nil {
			t.Fatal(err)
		}
		rresp.Body.Close()
		if ri.Arm != arm {
			t.Fatalf("/route says %s but %s served context %d", ri.Arm, arm, i)
		}
	}
	// "ctx<i>" is unknown vocabulary, so every interned context is just
	// ["o2"]... which would be one sticky assignment. Use known two-query
	// contexts instead for the split assertion below.
	if len(seen) == 0 {
		t.Fatal("no arms observed")
	}

	// Distinct interned contexts: vary n to keep context constant but check
	// both arms see some of the o2-vocabulary contexts.
	armOf := func(qs string) string {
		resp, err := http.Get(srv.URL + "/suggest?" + qs)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Serve-Arm")
	}
	arms := map[string]bool{}
	for _, qs := range []string{
		"q=o2", "q=o2+mobile", "q=o2+mobile+phones",
		"q=o2&q=o2+mobile", "q=o2&q=o2+mobile+phones", "q=o2+mobile&q=o2",
		"q=o2+mobile&q=o2+mobile+phones", "q=o2+mobile+phones&q=o2",
	} {
		arms[armOf(qs)] = true
	}
	if len(arms) < 2 {
		t.Fatalf("even split served only %v across 8 distinct contexts", arms)
	}
}

// TestFleetBatchMatchesSingle: fleet-mode batch answers must equal the
// fleet-mode single answers for the same contexts (same sticky arm, same
// cache keyspace).
func TestFleetBatchMatchesSingle(t *testing.T) {
	h, _ := newFleetHandler(t, 3, 1, false)
	srv := httptest.NewServer(h)
	defer srv.Close()

	contexts := [][]string{{"o2"}, {"o2", "o2 mobile"}, {"smtp"}, {"never seen"}}
	var singles []SuggestResponse
	for _, ctx := range contexts {
		qs := make([]string, len(ctx))
		for i, q := range ctx {
			qs[i] = "q=" + strings.ReplaceAll(q, " ", "+")
		}
		resp, err := http.Get(srv.URL + "/suggest?" + strings.Join(qs, "&"))
		if err != nil {
			t.Fatal(err)
		}
		var out SuggestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		singles = append(singles, out)
	}

	body, _ := json.Marshal(BatchRequest{Requests: []BatchItem{
		{Context: contexts[0]}, {Context: contexts[1]}, {Context: contexts[2]}, {Context: contexts[3]},
	}})
	resp, err := http.Post(srv.URL+"/suggest/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != len(contexts) {
		t.Fatalf("batch answered %d of %d", len(batch.Results), len(contexts))
	}
	for i := range contexts {
		bs, ss := batch.Results[i].Suggestions, singles[i].Suggestions
		if len(bs) != len(ss) {
			t.Fatalf("context %d: batch %d suggestions vs single %d", i, len(bs), len(ss))
		}
		for j := range bs {
			if bs[j] != ss[j] {
				t.Fatalf("context %d suggestion %d: batch %+v vs single %+v", i, j, bs[j], ss[j])
			}
		}
	}
	// "smtp" is outside the champion's base dictionary (the router interns
	// against it), so it must answer empty in fleet mode.
	if len(singles[2].Suggestions) != 0 {
		t.Fatalf("out-of-base-vocabulary context answered %+v", singles[2].Suggestions)
	}
}

// TestFleetModelsReloadByName: /models lists every slot with roles and dict
// hashes; /reload?model=... reloads exactly that slot (champion's loader
// returns a compatible extension here) and unknown/missing names error.
func TestFleetModelsReloadByName(t *testing.T) {
	h, rt := newFleetHandler(t, 1, 1, true)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Arms now lists every declared arm (the weight-0 shadow arm included,
	// at weight 0) so ramp progress is observable per arm.
	if len(models.Models) != 3 || len(models.Arms) != 3 || len(models.Shadows) != 1 {
		t.Fatalf("models = %d arms = %d shadows = %d", len(models.Models), len(models.Arms), len(models.Shadows))
	}
	for _, a := range models.Arms {
		if a.Name == "shadow" && a.Weight != 0 {
			t.Fatalf("shadow arm weight = %d, want 0", a.Weight)
		}
	}
	roles := map[string]string{}
	for _, m := range models.Models {
		roles[m.Name] = m.Role
		if len(m.DictHash) != 16 {
			t.Fatalf("model %s dict hash %q", m.Name, m.DictHash)
		}
	}
	if roles["champion"] != "champion" || roles["challenger"] != "arm" || roles["shadow"] != "shadow" {
		t.Fatalf("roles = %v", roles)
	}

	// Reload-by-name: champion's loader yields a dictionary extension.
	resp, err = http.Post(srv.URL+"/reload?model=champion", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl.Model != "champion" || rl.Generation != 2 {
		t.Fatalf("reload-by-name = %d %+v", resp.StatusCode, rl)
	}
	if got := rt.Registry().Slot("champion").State().Gen; got != 2 {
		t.Fatalf("champion generation = %d", got)
	}
	if got := rt.Registry().Slot("challenger").State().Gen; got != 1 {
		t.Fatalf("challenger generation moved: %d", got)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/reload", http.StatusBadRequest},                           // fleet mode needs a name
		{"/reload?model=nope", http.StatusNotFound},                  // unknown slot
		{"/reload?model=challenger", http.StatusInternalServerError}, // no loader
	} {
		resp, err := http.Post(srv.URL+tc.path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("POST %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestFleetShadowScoresWithoutServing: shadow arms must never serve but must
// accumulate divergence samples from champion-served live traffic, visible in
// /metrics. (Challenger-served requests are deliberately not shadow-scored:
// divergence always means "versus the champion".)
func TestFleetShadowScoresWithoutServing(t *testing.T) {
	h, rt := newFleetHandler(t, 1, 1, true)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Pick a context the sticky hash assigns to the champion — only
	// champion-served requests feed the shadow scorer.
	championQuery := ""
	for _, q := range []string{"o2", "o2 mobile", "o2 mobile phones"} {
		if ctx := rt.AppendContext(nil, []string{q}); len(ctx) > 0 && rt.Route(ctx) == 0 {
			championQuery = q
			break
		}
	}
	if championQuery == "" {
		t.Fatal("no test query routes to the champion")
	}

	for i := 0; i < 16; i++ {
		resp, err := http.Get(srv.URL + "/suggest?q=" + strings.ReplaceAll(championQuery, " ", "+"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		if arm := resp.Header.Get("X-Serve-Arm"); arm != "champion" {
			t.Fatalf("served by %q, want champion", arm)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m MetricsResponse
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if m.Fleet == nil || len(m.Fleet.Shadows) != 1 {
			t.Fatalf("fleet metrics = %+v", m.Fleet)
		}
		sh := m.Fleet.Shadows[0]
		if sh.Samples+sh.Dropped >= 16 {
			if sh.Samples > 0 && sh.MeanRankOverlap < 0 {
				t.Fatalf("shadow stats = %+v", sh)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow scored only %+v of 16 requests", sh)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestModelsEndpointSingleMode: single-model deployments report one
// "default" row so tooling sees a uniform shape.
func TestModelsEndpointSingleMode(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models.Models) != 1 || models.Models[0].Name != "default" || models.Models[0].Reloadable {
		t.Fatalf("single-mode /models = %+v", models)
	}
	if models.Models[0].Generation != 1 || models.Models[0].KnownQueries != 3 {
		t.Fatalf("single-mode /models row = %+v", models.Models[0])
	}
}

// TestFleetReloadAdvancesBase: vocabulary added by a champion reload must
// become servable — the interning base advances when every arm extends the
// new dictionary (here both arms end up on altRecommender's vocabulary).
func TestFleetReloadAdvancesBase(t *testing.T) {
	reg := fleet.NewRegistry(1 << 10)
	champ := testRecommender(t)
	if _, err := reg.Add("champion", champ, func() (core.Recommender, error) { return altRecommender(t), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("challenger", altRecommender(t), nil); err != nil {
		t.Fatal(err)
	}
	rt, err := fleet.NewRouter(reg,
		fleet.ArmSpec{Name: "champion", Weight: 1},
		fleet.ArmSpec{Name: "challenger", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(New(champ, Options{Fleet: rt}))
	defer srv.Close()

	// Before the reload "smtp" is outside the champion's base dictionary.
	resp, err := http.Get(srv.URL + "/suggest?q=smtp")
	if err != nil {
		t.Fatal(err)
	}
	var out SuggestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Suggestions) != 0 {
		t.Fatalf("pre-reload out-of-base context answered %+v", out.Suggestions)
	}

	resp, err = http.Post(srv.URL+"/reload?model=champion", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}

	// The base advanced (both arms now extend altRecommender's dictionary),
	// so the new vocabulary serves.
	resp, err = http.Get(srv.URL + "/suggest?q=smtp")
	if err != nil {
		t.Fatal(err)
	}
	out = SuggestResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Suggestions) == 0 || out.Suggestions[0].Query != "pop3" {
		t.Fatalf("post-reload new vocabulary answered %+v", out.Suggestions)
	}
}
