package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Observability wiring for the HTTP handler: histogram instruments, the
// pooled request tracer, the Prometheus exposition and the tail-sampled
// trace endpoint. The hot-path contract is unchanged — recording into any
// of these is lock-free and allocation-free, gated by
// BenchmarkServeHTTPCachedTraced.

// Stage and span names are package-level constants so every span carries a
// static string (retained traces must not reference request state).
const (
	stageQueue   = "queue"
	stageCache   = "cache"
	stageDescent = "descent"
	stageRerank  = "rerank"
	stageBatch   = "batch-descent"
	stageShadow  = "shadow"
)

// initObs creates (or adopts, via Options) the handler's registry and
// tracer and resolves every instrument handle once, so the request path
// never takes the registry lock.
func (h *Handler) initObs() {
	h.obs = h.opts.Obs
	if h.obs == nil {
		h.obs = obs.NewRegistry()
	}
	h.histServe = h.obs.Histogram("serve_latency_us")
	h.histHTTP = h.obs.Histogram("serve_http_request_us")
	h.histRouteSuggest = h.obs.Histogram("serve_route_suggest_us")
	h.histRouteBatch = h.obs.Histogram("serve_route_batch_us")
	h.histRouteAdmin = h.obs.Histogram("serve_route_admin_us")
	h.histQueue = h.obs.Histogram("serve_stage_queue_us")
	h.histCache = h.obs.Histogram("serve_stage_cache_us")
	h.histDescent = h.obs.Histogram("serve_stage_descent_us")
	h.histRerank = h.obs.Histogram("serve_stage_rerank_us")
	h.histBatchDescent = h.obs.Histogram("serve_stage_batch_descent_us")
	h.tracer = h.opts.Tracer
	if h.tracer == nil {
		h.tracer = obs.NewTracer(256, h.histHTTP)
	}
	h.obs.CounterFunc("serve_requests_total", h.m.requests.Load)
	h.obs.CounterFunc("serve_suggest_requests_total", h.m.suggests.Load)
	h.obs.CounterFunc("serve_batch_requests_total", h.m.batches.Load)
	h.obs.CounterFunc("serve_batch_contexts_total", h.m.batchContexts.Load)
	h.obs.CounterFunc("serve_errors_total", h.m.errors.Load)
	h.obs.CounterFunc("serve_panics_total", h.m.panics.Load)
	h.obs.CounterFunc("serve_reloads_total", h.m.reloads.Load)
	h.obs.GaugeFunc("serve_cache_hit_rate", func() float64 { return h.cache.Stats().HitRate() })
}

// stageBreakdown assembles the per-stage latency map for /v1/metrics,
// omitting stages that have recorded nothing (rerank without a reranker,
// descent on an all-hit workload).
func (h *Handler) stageBreakdown() map[string]StageStats {
	out := make(map[string]StageStats, 5)
	for _, s := range [...]struct {
		name string
		hist *obs.Histogram
	}{
		{stageQueue, h.histQueue},
		{stageCache, h.histCache},
		{stageDescent, h.histDescent},
		{stageRerank, h.histRerank},
		{stageBatch, h.histBatchDescent},
	} {
		if s.hist.Count() > 0 {
			out[s.name] = stageStats(s.hist)
		}
	}
	return out
}

// Obs returns the handler's metric registry (for wiring shared subsystems
// and for tests).
func (h *Handler) Obs() *obs.Registry { return h.obs }

// Tracer returns the handler's request tracer.
func (h *Handler) Tracer() *obs.Tracer { return h.tracer }

// traceOf recovers the request's trace from the instrumented writer. It
// returns nil for writers that did not pass through the middleware (direct
// handler invocation in tests).
func traceOf(w http.ResponseWriter) *obs.Trace {
	if sw, ok := w.(*statusWriter); ok {
		return sw.tr
	}
	return nil
}

// recordQueue attributes the time between request arrival (the middleware
// timestamp, which under a loaded http.Server includes accept/read queueing)
// and stage start to the queue stage.
func (h *Handler) recordQueue(tr *obs.Trace, stageStart time.Time) {
	if tr == nil {
		return
	}
	qd := stageStart.Sub(tr.Start()).Microseconds()
	tr.Record(stageQueue, 0, qd, obs.NoShard, "ok")
	h.histQueue.Record(qd)
}

// recordStage records a completed serving stage into both the request trace
// (when present) and the stage histogram.
func (h *Handler) recordStage(tr *obs.Trace, hist *obs.Histogram, name string, start time.Time, durMicros int64, outcome string) {
	hist.Record(durMicros)
	if tr != nil {
		tr.Record(name, start.Sub(tr.Start()).Microseconds(), durMicros, obs.NoShard, outcome)
	}
}

// promContentType is the Prometheus text exposition content type.
var promContentType = []string{"text/plain; version=0.0.4; charset=utf-8"}

// prometheusHandler serves the text exposition of every registered
// instrument (GET /metrics?format=prometheus and
// /v1/metrics?format=prometheus).
func (h *Handler) prometheusHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	w.Header()["Content-Type"] = promContentType
	w.Write(h.obs.AppendPrometheus(nil))
}

// TracesResponse is the GET /v1/traces payload: the tail-sampled retained
// traces (newest first) and the live slow-retention threshold.
type TracesResponse struct {
	// SlowThresholdMicros is the current p99-based retention threshold;
	// traces at least this slow are always kept.
	SlowThresholdMicros int64 `json:"slow_threshold_us,omitempty"`
	// Count is the number of traces returned after filtering.
	Count int `json:"count"`
	// Traces holds the retained traces, newest first.
	Traces []obs.TraceView `json:"traces"`
}

// tracesHandler serves GET /v1/traces. Query parameters: min_us=<int>
// filters to traces at least that slow, error=1 to errored traces only,
// limit=<int> caps the result count.
func (h *Handler) tracesHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	q := r.URL.Query()
	minUS, err := parseOptInt(q.Get("min_us"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "min_us must be an integer")
		return
	}
	limit, err := parseOptInt(q.Get("limit"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "limit must be an integer")
		return
	}
	onlyErr := q.Get("error") == "1" || q.Get("error") == "true"
	views := h.tracer.Snapshot(minUS, onlyErr, int(limit))
	resp := TracesResponse{Count: len(views), Traces: views}
	if th := h.tracer.SlowThresholdMicros(); th < int64(1)<<62 {
		resp.SlowThresholdMicros = th
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseOptInt parses an optional integer query parameter ("" reads as 0).
func parseOptInt(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
