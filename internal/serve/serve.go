// Package serve exposes a trained recommender over HTTP — the "real-time
// search engine query recommendation" deployment the paper concludes the
// MVMM is suitable for (Sec. VI: constant-time online prediction).
//
// The handler is production-shaped: a sharded LRU result cache fronts the
// model (power-law traffic makes the head of the context distribution very
// hot — Fig. 6), every request is timed into a latency ring, panics are
// recovered, and the model itself sits behind an atomic pointer so it can
// be hot-reloaded without pausing traffic.
//
// Endpoints:
//
//	GET  /suggest?q=<query>&q=<query>...&n=5  ranked suggestions for a context
//	POST /suggest/batch                       many contexts in one request
//	GET  /v1/healthz                          liveness + model/blob provenance
//	                                          (also unversioned: probes don't
//	                                          follow redirects)
//	GET  /v1/metrics                          serving counters, latency quantiles,
//	                                          per-arm shadow divergence
//	POST /v1/reload                           hot-swap the model (?model=<name> in
//	                                          fleet mode, &force=1 to override the
//	                                          409 dictionary-compatibility check)
//	GET  /v1/models                           model registry, roles, families,
//	                                          rerankers, divergence
//	GET  /v1/route                            which arm/shard owns a context
//	GET  /v1/ingest                           streaming ingestion loop status
//	                                          (tail offset, write-log, ramp)
//
// The admin endpoints moved under /v1/ in this release; the legacy
// unversioned paths answer 301 (GETs) or serve as aliases (POST /reload,
// which cannot survive a redirect) for one release. Every non-2xx response
// carries the JSON error envelope {"error":{"code","message",...}}.
//
// With Options.Fleet set the handler serves a multi-model fleet
// (internal/fleet): suggestion traffic is split across registry slots by
// sticky weighted hash of the interned context, shadow arms are scored off
// the request path, and the serving arm is echoed in X-Serve-Arm. The fleet
// hot path carries the same zero-allocation guarantee (CI gates
// BenchmarkRouteAB at 0 allocs/op).
//
// Invariants: the GET /suggest hot path performs zero heap allocations at
// steady state — the query string is percent-decoded into pooled buffers
// (no url.Values), contexts are interned byte-wise against the dictionary,
// cache hits are byte-key lookups, and responses are built by an
// append-style JSON encoder property-tested byte-compatible with
// encoding/json (CI gates the whole stack at <= 2 allocs/op). Request
// handling never takes a lock: the recommender is immutable and swapped
// behind one atomic pointer, and every request observes a consistent
// (model, generation) pair. /healthz and /metrics additionally report the
// served compiled blob's encoding (CPS3/CPS4), byte length and quantised
// flag, so the memory/accuracy trade chosen at save time is observable.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/query"
)

// Suggestion is one recommendation in the JSON response.
type Suggestion struct {
	Query string  `json:"query"`
	Score float64 `json:"score"`
}

// SuggestResponse is the /suggest payload and one element of the batch
// response. In a batch response TookMicros is the context's amortised share
// of the batched descent (the whole batch is scored in one pass).
type SuggestResponse struct {
	Context     []string     `json:"context"`
	Suggestions []Suggestion `json:"suggestions"`
	TookMicros  int64        `json:"took_us"`
}

// BatchItem is one context in a POST /suggest/batch request. Omitting n
// (or sending 0) selects the handler's default suggestion count; negative
// values are rejected.
type BatchItem struct {
	Context []string `json:"context"`
	N       int      `json:"n,omitempty"`
}

// BatchRequest is the POST /suggest/batch body.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchResponse is the POST /suggest/batch payload. Results align 1:1 with
// the request's items.
type BatchResponse struct {
	Results    []SuggestResponse `json:"results"`
	TookMicros int64             `json:"took_us"`
}

// Health is the /healthz payload. Compiled reports whether requests are
// served from the flat single-PST form (the expected state; false means the
// interpreted-mixture fallback), CompiledNodes its merged trie size, and
// Quantised whether that form is the fixed-point CPS4 encoding (bounded
// probability error) rather than exact float64. LoadMode ("trained", "heap"
// or "mmap") and LoadMicros report how and how fast the current model
// materialised, and BlobFormat/BlobBytes what is actually mapped or decoded
// — the served memory footprint — so cold-start behaviour and memory cost
// are observable in production.
type Health struct {
	Status        string `json:"status"`
	KnownQueries  int    `json:"known_queries"`
	TrainSessions uint64 `json:"train_sessions"`
	Generation    uint64 `json:"model_generation"`
	Arms          int    `json:"fleet_arms,omitempty"`
	ShadowModels  int    `json:"fleet_shadow_models,omitempty"`
	Compiled      bool   `json:"compiled"`
	CompiledNodes int    `json:"compiled_nodes,omitempty"`
	Quantised     bool   `json:"compiled_quantised,omitempty"`
	LoadMode      string `json:"model_load_mode,omitempty"`
	LoadVersion   string `json:"model_load_version,omitempty"`
	BlobFormat    string `json:"model_blob_format,omitempty"`
	BlobBytes     int64  `json:"model_blob_bytes,omitempty"`
	MapAdvice     string `json:"model_map_advice,omitempty"`
	LoadMicros    int64  `json:"model_load_us,omitempty"`
}

// ReloadResponse is the POST /reload payload. Model names the reloaded
// registry slot in fleet mode and is empty in single-model mode.
type ReloadResponse struct {
	Model        string `json:"model,omitempty"`
	Generation   uint64 `json:"model_generation"`
	KnownQueries int    `json:"known_queries"`
	TookMicros   int64  `json:"took_us"`
}

// Options configures a Handler.
type Options struct {
	// DefaultN is the suggestion count when a request omits n (the paper's
	// N = 5). <= 0 selects 5.
	DefaultN int
	// MaxN bounds per-request n. <= 0 selects 100.
	MaxN int
	// MaxBatch bounds the number of contexts in one batch request. <= 0
	// selects 256.
	MaxBatch int
	// CacheCapacity sizes the result LRU; <= 0 selects
	// cache.DefaultCapacity.
	CacheCapacity int
	// Logger receives request logs and recovered panics. nil disables
	// request logging (panics are still recovered and counted).
	Logger *log.Logger
	// ReloadFunc, when set, enables POST /reload: it must return a freshly
	// loaded recommender. Handler serialises calls.
	ReloadFunc func() (core.Recommender, error)
	// Fleet, when set, routes every suggestion request through a multi-model
	// router (A/B split, shadow scoring) instead of the single-model state:
	// the handler serves from the router's registry slots and its shared
	// slot-keyed cache, /models and /route become live, and /reload reloads
	// by model name. The rec passed to New still answers /healthz provenance
	// until the champion slot swaps. See internal/fleet.
	Fleet *fleet.Router
	// IngestStatus, when set, enables GET /v1/ingest: the returned value is
	// serialised as the endpoint's JSON payload and embedded in /v1/metrics.
	// The indirection (a func, not a concrete type) keeps this package from
	// importing the ingestion loop — internal/stream wires its own status
	// snapshot in, and its tests can import serve for loopback fleets.
	IngestStatus func() any
	// Obs, when set, is the metric registry the handler records into; nil
	// creates a private one. Sharing a registry lets the process's other
	// subsystems (ingest loop, ramp) expose their instruments through this
	// handler's /metrics exposition.
	Obs *obs.Registry
	// Tracer, when set, is the request tracer; nil creates a private one
	// retaining 256 tail-sampled traces.
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.DefaultN <= 0 {
		o.DefaultN = 5
	}
	if o.MaxN <= 0 {
		o.MaxN = 100
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	return o
}

// modelState bundles the recommender with its generation so a request
// observes one consistent (model, generation) pair: the generation is part
// of every cache key, which keeps results computed against an old model
// from answering for a new one across a hot reload.
type modelState struct {
	rec core.Recommender
	gen uint64
}

// Handler routes recommendation traffic to a hot-swappable
// core.Recommender. The recommender is immutable after training, so request
// handling never locks; reloads swap an atomic pointer.
type Handler struct {
	opts     Options
	state    atomic.Pointer[modelState]
	cache    *cache.SuggestCache
	fleet    *fleet.Router // nil in single-model mode
	chain    http.Handler
	m        metrics
	reloadMu sync.Mutex
	start    time.Time

	// Observability (see obs.go): instrument handles are resolved once at
	// construction so the hot path never touches the registry map.
	obs              *obs.Registry
	tracer           *obs.Tracer
	histServe        *obs.Histogram // legacy latency window: suggest + per-batch-context
	histHTTP         *obs.Histogram // every HTTP request, wall-clock
	histRouteSuggest *obs.Histogram
	histRouteBatch   *obs.Histogram
	histRouteAdmin   *obs.Histogram
	histQueue        *obs.Histogram
	histCache        *obs.Histogram
	histDescent      *obs.Histogram
	histRerank       *obs.Histogram
	histBatchDescent *obs.Histogram
}

// New builds a Handler serving rec with the given options. With Options.Fleet
// set, rec should be the router's champion model (it answers the single-model
// accessors); suggestion traffic is then routed across the fleet's registry
// slots and cached in the registry's shared slot-keyed cache.
func New(rec core.Recommender, opts Options) *Handler {
	h := &Handler{
		opts:  opts.withDefaults(),
		fleet: opts.Fleet,
		start: time.Now(),
	}
	if h.fleet != nil {
		h.cache = h.fleet.Registry().Cache()
	} else {
		h.cache = cache.NewSuggestCache(opts.CacheCapacity)
	}
	h.state.Store(&modelState{rec: rec, gen: 1})
	h.initObs()
	h.chain = h.instrument(http.HandlerFunc(h.route))
	return h
}

// route dispatches by exact path. A switch instead of http.ServeMux keeps
// the hot path free of the mux's per-request pattern-matching allocations.
func (h *Handler) route(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/suggest":
		h.suggest(w, r)
	case "/suggest/batch", "/v1/suggest/batch":
		h.suggestBatch(w, r)
	case "/healthz", "/v1/healthz":
		// Both paths serve directly: liveness probes do not follow 301s,
		// so the legacy path stays a first-class alias, not a redirect.
		h.health(w, r)
	case "/v1/metrics":
		if wantsPrometheus(r) {
			h.prometheusHandler(w, r)
			return
		}
		h.metricsHandler(w, r)
	case "/v1/traces":
		h.tracesHandler(w, r)
	case "/v1/reload":
		h.reload(w, r)
	case "/v1/models":
		h.models(w, r)
	case "/v1/route":
		h.routeInfo(w, r)
	case "/v1/ingest":
		h.ingestStatus(w, r)
	case "/metrics":
		// The Prometheus exposition serves directly on the legacy path too:
		// scrape configs are static and should not depend on redirect
		// following.
		if wantsPrometheus(r) {
			h.prometheusHandler(w, r)
			return
		}
		redirectV1(w, r)
	case "/models", "/route":
		// Legacy admin GETs answer a 301 to their /v1/ home for one release.
		redirectV1(w, r)
	case "/reload":
		// POST bodies and semantics do not survive a 301: alias for one release.
		h.reload(w, r)
	default:
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint")
	}
}

// wantsPrometheus reports whether the request selects the Prometheus text
// exposition (?format=prometheus).
func wantsPrometheus(r *http.Request) bool {
	return strings.Contains(r.URL.RawQuery, "format=prometheus")
}

// redirectV1 301s a legacy unversioned admin path to its /v1/ home.
func redirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusMovedPermanently)
}

// NewHandler wraps a trained recommender with default options. defaultN is
// the suggestion count when the request omits n (the paper's N = 5).
func NewHandler(rec core.Recommender, defaultN int) *Handler {
	return New(rec, Options{DefaultN: defaultN})
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.chain.ServeHTTP(w, r)
}

// Swap atomically replaces the served model, bumps the generation and purges
// the result cache. In-flight requests finish against the model they loaded;
// no traffic is dropped. Returns the new generation. Unlike Reload, Swap
// performs no dictionary compatibility check: the caller owns the model and
// has decided.
func (h *Handler) Swap(rec core.Recommender) uint64 {
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	return h.swapLocked(rec)
}

func (h *Handler) swapLocked(rec core.Recommender) uint64 {
	old := h.state.Load()
	next := &modelState{rec: rec, gen: old.gen + 1}
	h.state.Store(next)
	// Purge releases the old generation's entries; stale Puts that race the
	// swap are keyed by the old generation and can never answer new-model
	// lookups — they just age out of the LRU.
	h.cache.Purge()
	h.m.reloads.Add(1)
	return next.gen
}

// Reload invokes the configured ReloadFunc and swaps the result in. It is
// the shared implementation of POST /reload and cmd/serve's SIGHUP path.
// The replacement model's dictionary must be an ID-preserving extension of
// the served one (query.Dict.Extends) — a permuted or unrelated dictionary
// would let ID-keyed state built against the old model silently misroute, so
// it is rejected with fleet.ErrDictIncompatible (HTTP 409 on the /reload
// endpoint). ReloadForce(true) is the operator override for deliberate full
// vocabulary replacements.
func (h *Handler) Reload() (uint64, error) { return h.ReloadForce(false) }

// ReloadForce is Reload with an explicit escape hatch: force true skips the
// dictionary compatibility check.
func (h *Handler) ReloadForce(force bool) (uint64, error) {
	if h.opts.ReloadFunc == nil {
		return 0, errors.New("serve: no ReloadFunc configured")
	}
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	rec, err := h.opts.ReloadFunc()
	if err != nil {
		return 0, err
	}
	if old := h.state.Load(); !force && !rec.Dict().Extends(old.rec.Dict()) {
		return 0, &fleet.ErrDictIncompatible{
			Slot:    "default",
			OldHash: old.rec.Dict().Hash(),
			NewHash: rec.Dict().Hash(),
		}
	}
	return h.swapLocked(rec), nil
}

// Generation returns the current model generation (1 for the initial
// model, +1 per successful reload).
func (h *Handler) Generation() uint64 { return h.state.Load().gen }

// reqScratch pools every per-request buffer of the hot /suggest path:
// decoded q values (flat storage + per-value views), the interned context,
// and the response body under construction.
type reqScratch struct {
	flat   []byte     // decoded q values, back to back
	spans  [][2]int32 // [start, end) of each q value within flat
	raw    [][]byte   // views into flat, one per q value
	ctx    query.Seq
	rerank []core.Suggestion // reranked copy of a cached answer (fleet mode)
	body   []byte
}

var reqScratchPool = sync.Pool{New: func() any {
	return &reqScratch{
		flat:  make([]byte, 0, 256),
		spans: make([][2]int32, 0, 8),
		raw:   make([][]byte, 0, 8),
		ctx:   make(query.Seq, 0, 8),
		body:  make([]byte, 0, 1024),
	}
}}

func putReqScratch(b *reqScratch) {
	b.flat = b.flat[:0]
	b.spans = b.spans[:0]
	b.raw = b.raw[:0]
	b.ctx = b.ctx[:0]
	clear(b.rerank) // do not retain suggestion strings in the pool
	b.rerank = b.rerank[:0]
	b.body = b.body[:0]
	reqScratchPool.Put(b)
}

// parseSuggestQuery decodes the /suggest query string in place: q values are
// percent-decoded into the pooled flat buffer (no strings are created) and n
// is parsed from its raw substring. Malformed pairs are dropped, matching
// url.ParseQuery, and badN reports an explicit out-of-range or non-numeric n
// (a 400, as before).
func (b *reqScratch) parseSuggestQuery(raw string, defaultN, maxN int) (n int, badN bool) {
	n = defaultN
	sawN := false
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		key, val := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			key, val = seg[:i], seg[i+1:]
		}
		switch key {
		case "q":
			start := len(b.flat)
			flat, ok := appendQueryUnescaped(b.flat, val)
			if !ok {
				continue // bad escape: drop the pair, like url.ParseQuery
			}
			b.flat = flat
			b.spans = append(b.spans, [2]int32{int32(start), int32(len(b.flat))})
		case "n":
			if sawN { // first n wins, like url.Values.Get
				continue
			}
			dec := val
			if strings.ContainsAny(val, "%+") {
				d, err := url.QueryUnescape(val)
				if err != nil {
					continue
				}
				dec = d
			}
			if dec == "" {
				continue
			}
			sawN = true
			v, err := strconv.Atoi(dec)
			if err != nil || v < 1 || v > maxN {
				return 0, true
			}
			n = v
		}
	}
	// Materialise the per-value views only now: appending to flat may have
	// reallocated it, so earlier subslices would dangle.
	for _, sp := range b.spans {
		b.raw = append(b.raw, b.flat[sp[0]:sp[1]])
	}
	return n, false
}

// appendQueryUnescaped appends the query-component unescaping of s ('+' is
// space, %XX is a byte) to dst, reporting false on an invalid escape.
func appendQueryUnescaped(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+':
			dst = append(dst, ' ')
		case '%':
			if i+2 >= len(s) {
				return dst, false
			}
			hi, okHi := unhex(s[i+1])
			lo, okLo := unhex(s[i+2])
			if !okHi || !okLo {
				return dst, false
			}
			dst = append(dst, hi<<4|lo)
			i += 2
		default:
			dst = append(dst, c)
		}
	}
	return dst, true
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// suggest is the zero-allocation single-context path: pooled parse buffers,
// byte-level interning, an allocation-free cache hit, and an append-style
// JSON encoder into a pooled body. Steady-state cache hits allocate nothing
// in the handler itself.
func (h *Handler) suggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	b := reqScratchPool.Get().(*reqScratch)
	defer putReqScratch(b)
	n, badN := b.parseSuggestQuery(r.URL.RawQuery, h.opts.DefaultN, h.opts.MaxN)
	if badN {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("n must be an integer in [1,%d]", h.opts.MaxN))
		return
	}
	if len(b.raw) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "missing q parameters (one per context query, oldest first)")
		return
	}
	if h.fleet != nil {
		h.suggestFleet(w, b, n)
		return
	}
	st := h.state.Load()
	tr := traceOf(w)
	start := time.Now()
	h.recordQueue(tr, start)
	b.ctx = core.AppendContextBytes(st.rec.Dict(), b.ctx[:0], b.raw)
	var recs []core.Suggestion
	hit := false
	if len(b.ctx) > 0 {
		recs, hit = h.cache.RecommendInternedHit(st.gen, st.rec, b.ctx, n)
	}
	took := time.Since(start).Microseconds()
	// The timed interval covers interning + lookup (+ descent on a miss);
	// attribute it to the cache stage on a hit and the descent stage on a
	// miss — the failed probe's share of a miss is negligible.
	if hit {
		h.recordStage(tr, h.histCache, stageCache, start, took, "hit")
	} else {
		h.recordStage(tr, h.histDescent, stageDescent, start, took, "miss")
	}
	h.m.suggests.Add(1)
	h.histServe.Record(took)
	b.body = appendSuggestResponseBytes(b.body[:0], b.raw, recs, took)
	setJSONContentType(w)
	w.Write(b.body)
}

// servingState returns the request-path (model, generation) pair health and
// metrics should describe: the champion slot in fleet mode, the single-model
// state otherwise.
func (h *Handler) servingState() (core.Recommender, uint64) {
	if h.fleet != nil {
		st := h.fleet.Arm(0).Slot().State()
		return st.Rec, st.Gen
	}
	st := h.state.Load()
	return st.rec, st.gen
}

func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	rec, gen := h.servingState()
	resp := Health{
		Status:        "ok",
		KnownQueries:  rec.Dict().Len(),
		TrainSessions: rec.Stats().Sessions,
		Generation:    gen,
	}
	if h.fleet != nil {
		// Arms counts arms currently taking traffic: a challenger mid-ramp
		// raises it, a freeze drops it back — liveness probes see the split.
		resp.Arms = h.fleet.LiveArms()
		resp.ShadowModels = len(h.fleet.ShadowSlots())
	}
	if cm := rec.CompiledModel(); cm != nil {
		resp.Compiled = true
		resp.CompiledNodes = cm.Nodes()
		resp.Quantised = cm.Quantised()
	}
	li := rec.LoadInfo()
	resp.LoadMode = li.Mode
	resp.LoadVersion = li.Version
	resp.BlobFormat = li.Format
	resp.BlobBytes = li.BlobBytes
	resp.MapAdvice = li.MapAdvice
	resp.LoadMicros = li.Duration.Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) metricsHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	rec, gen := h.servingState()
	cs := h.cache.Stats()
	compiledNodes := 0
	quantised := false
	if cm := rec.CompiledModel(); cm != nil {
		compiledNodes = cm.Nodes()
		quantised = cm.Quantised()
	}
	var fm *FleetMetrics
	if h.fleet != nil {
		fm = &FleetMetrics{Arms: h.fleet.ArmStats(), Shadows: h.fleet.ShadowStats()}
	}
	li := rec.LoadInfo()
	writeJSON(w, http.StatusOK, MetricsResponse{
		Requests:        h.m.requests.Load(),
		SuggestRequests: h.m.suggests.Load(),
		BatchRequests:   h.m.batches.Load(),
		BatchContexts:   h.m.batchContexts.Load(),
		Errors:          h.m.errors.Load(),
		Panics:          h.m.panics.Load(),
		Reloads:         h.m.reloads.Load(),
		Cache:           cs,
		CacheHitRate:    cs.HitRate(),
		LatencySamples:  int(h.histServe.Count()),
		P50Micros:       h.histServe.Quantile(0.50),
		P90Micros:       h.histServe.Quantile(0.90),
		P99Micros:       h.histServe.Quantile(0.99),
		P999Micros:      h.histServe.Quantile(0.999),
		MaxMicros:       h.histServe.Max(),
		Stages:          h.stageBreakdown(),
		ModelGeneration: gen,
		KnownQueries:    rec.Dict().Len(),
		CompiledNodes:   compiledNodes,
		Quantised:       quantised,
		BlobFormat:      li.Format,
		BlobBytes:       li.BlobBytes,
		Fleet:           fm,
		Ingest:          h.ingestSnapshot(),
		UptimeSeconds:   time.Since(h.start).Seconds(),
		Runtime:         readRuntimeStats(),
	})
}

// ingestSnapshot returns the ingestion loop's status value, or nil when no
// ingestion loop is wired in.
func (h *Handler) ingestSnapshot() any {
	if h.opts.IngestStatus == nil {
		return nil
	}
	return h.opts.IngestStatus()
}

// ingestStatus serves GET /v1/ingest: the streaming ingestion loop's state —
// tail offset, write-log position, sessions counted, last recompile, ramp
// step and freeze reason. 404 when the process runs no ingestion loop.
func (h *Handler) ingestStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	st := h.ingestSnapshot()
	if st == nil {
		writeError(w, http.StatusNotFound, "not_found", "no ingestion loop running in this process")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// reload serves POST /reload. Query parameters: model=<name> selects a fleet
// registry slot (required in fleet mode), force=1 skips the dictionary
// compatibility check. An incompatible dictionary answers 409 Conflict with
// both dictionary hashes so the operator can decide whether to force.
func (h *Handler) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	q := r.URL.Query()
	force := q.Get("force") == "1" || q.Get("force") == "true"
	start := time.Now()
	if h.fleet != nil {
		h.reloadFleet(w, q.Get("model"), force, start)
		return
	}
	if h.opts.ReloadFunc == nil {
		writeError(w, http.StatusNotImplemented, "not_implemented", "reload not configured")
		return
	}
	gen, err := h.ReloadForce(force)
	if err != nil {
		writeReloadError(w, err)
		return
	}
	st := h.state.Load()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Generation:   gen,
		KnownQueries: st.rec.Dict().Len(),
		TookMicros:   time.Since(start).Microseconds(),
	})
}

// ErrorBody is the JSON error envelope every non-2xx response carries:
// {"error":{"code","message",...}}. Code is a stable machine-readable slug;
// Message is human-readable. Dictionary conflicts extend the envelope with
// the structured DictConflict fields.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the envelope's error object.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Dictionary-conflict details (code "dict_incompatible" only).
	Model       string `json:"model,omitempty"`
	OldDictHash string `json:"old_dict_hash,omitempty"`
	NewDictHash string `json:"new_dict_hash,omitempty"`
	Hint        string `json:"hint,omitempty"`
}

// writeError answers a non-2xx with the consistent error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

// writeReloadError maps reload failures to statuses: dictionary conflicts
// are 409 with both hashes in the envelope, everything else 500.
func writeReloadError(w http.ResponseWriter, err error) {
	var dictErr *fleet.ErrDictIncompatible
	if errors.As(err, &dictErr) {
		writeJSON(w, http.StatusConflict, ErrorBody{Error: ErrorDetail{
			Code:        "dict_incompatible",
			Message:     "incompatible dictionary: interned contexts would be misrouted",
			Model:       dictErr.Slot,
			OldDictHash: fmt.Sprintf("%016x", dictErr.OldHash),
			NewDictHash: fmt.Sprintf("%016x", dictErr.NewHash),
			Hint:        "retrain with the served dictionary as a prefix, or POST /reload?force=1 to replace the vocabulary deliberately",
		}})
		return
	}
	writeError(w, http.StatusInternalServerError, "reload_failed", "reload failed: "+err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
