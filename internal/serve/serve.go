// Package serve exposes a trained recommender over HTTP — the "real-time
// search engine query recommendation" deployment the paper concludes the
// MVMM is suitable for (Sec. VI: constant-time online prediction).
//
// Endpoints:
//
//	GET /suggest?q=<query>&q=<query>...&n=5   ranked suggestions for a context
//	GET /healthz                              liveness + model stats
package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
)

// Suggestion is one recommendation in the JSON response.
type Suggestion struct {
	Query string  `json:"query"`
	Score float64 `json:"score"`
}

// SuggestResponse is the /suggest payload.
type SuggestResponse struct {
	Context     []string     `json:"context"`
	Suggestions []Suggestion `json:"suggestions"`
	TookMicros  int64        `json:"took_us"`
}

// Health is the /healthz payload.
type Health struct {
	Status        string `json:"status"`
	KnownQueries  int    `json:"known_queries"`
	TrainSessions uint64 `json:"train_sessions"`
}

// Handler routes recommendation traffic to a trained core.Recommender.
// The recommender is read-only after training, so one Handler serves
// concurrent requests without locking.
type Handler struct {
	rec  *core.Recommender
	topN int
	mux  *http.ServeMux
}

// NewHandler wraps a trained recommender. defaultN is the suggestion count
// when the request omits n (the paper's N = 5).
func NewHandler(rec *core.Recommender, defaultN int) *Handler {
	if defaultN <= 0 {
		defaultN = 5
	}
	h := &Handler{rec: rec, topN: defaultN, mux: http.NewServeMux()}
	h.mux.HandleFunc("/suggest", h.suggest)
	h.mux.HandleFunc("/healthz", h.health)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) suggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	context := q["q"]
	if len(context) == 0 {
		http.Error(w, "missing q parameters (one per context query, oldest first)", http.StatusBadRequest)
		return
	}
	n := h.topN
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 100 {
			http.Error(w, "n must be an integer in [1,100]", http.StatusBadRequest)
			return
		}
		n = v
	}
	start := time.Now()
	recs := h.rec.Recommend(context, n)
	resp := SuggestResponse{
		Context:     context,
		Suggestions: make([]Suggestion, len(recs)),
		TookMicros:  time.Since(start).Microseconds(),
	}
	for i, s := range recs {
		resp.Suggestions[i] = Suggestion{Query: s.Query, Score: s.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		KnownQueries:  h.rec.Dict().Len(),
		TrainSessions: h.rec.Stats().Sessions,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
