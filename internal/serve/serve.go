// Package serve exposes a trained recommender over HTTP — the "real-time
// search engine query recommendation" deployment the paper concludes the
// MVMM is suitable for (Sec. VI: constant-time online prediction).
//
// The handler is production-shaped: a sharded LRU result cache fronts the
// model (power-law traffic makes the head of the context distribution very
// hot — Fig. 6), every request is timed into a latency ring, panics are
// recovered, and the model itself sits behind an atomic pointer so it can
// be hot-reloaded without pausing traffic.
//
// Endpoints:
//
//	GET  /suggest?q=<query>&q=<query>...&n=5  ranked suggestions for a context
//	POST /suggest/batch                       many contexts in one request
//	GET  /healthz                             liveness + model stats
//	GET  /metrics                             serving counters and latency quantiles
//	POST /reload                              hot-swap the model (when configured)
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

// Suggestion is one recommendation in the JSON response.
type Suggestion struct {
	Query string  `json:"query"`
	Score float64 `json:"score"`
}

// SuggestResponse is the /suggest payload and one element of the batch
// response.
type SuggestResponse struct {
	Context     []string     `json:"context"`
	Suggestions []Suggestion `json:"suggestions"`
	TookMicros  int64        `json:"took_us"`
}

// BatchItem is one context in a POST /suggest/batch request. Omitting n
// (or sending 0) selects the handler's default suggestion count; negative
// values are rejected.
type BatchItem struct {
	Context []string `json:"context"`
	N       int      `json:"n,omitempty"`
}

// BatchRequest is the POST /suggest/batch body.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// BatchResponse is the POST /suggest/batch payload. Results align 1:1 with
// the request's items.
type BatchResponse struct {
	Results    []SuggestResponse `json:"results"`
	TookMicros int64             `json:"took_us"`
}

// Health is the /healthz payload. Compiled reports whether requests are
// served from the flat single-PST form (the expected state; false means the
// interpreted-mixture fallback) and CompiledNodes its merged trie size.
type Health struct {
	Status        string `json:"status"`
	KnownQueries  int    `json:"known_queries"`
	TrainSessions uint64 `json:"train_sessions"`
	Generation    uint64 `json:"model_generation"`
	Compiled      bool   `json:"compiled"`
	CompiledNodes int    `json:"compiled_nodes,omitempty"`
}

// ReloadResponse is the POST /reload payload.
type ReloadResponse struct {
	Generation   uint64 `json:"model_generation"`
	KnownQueries int    `json:"known_queries"`
	TookMicros   int64  `json:"took_us"`
}

// Options configures a Handler.
type Options struct {
	// DefaultN is the suggestion count when a request omits n (the paper's
	// N = 5). <= 0 selects 5.
	DefaultN int
	// MaxN bounds per-request n. <= 0 selects 100.
	MaxN int
	// MaxBatch bounds the number of contexts in one batch request. <= 0
	// selects 256.
	MaxBatch int
	// CacheCapacity sizes the result LRU; <= 0 selects
	// cache.DefaultCapacity.
	CacheCapacity int
	// Logger receives request logs and recovered panics. nil disables
	// request logging (panics are still recovered and counted).
	Logger *log.Logger
	// ReloadFunc, when set, enables POST /reload: it must return a freshly
	// loaded recommender. Handler serialises calls.
	ReloadFunc func() (*core.Recommender, error)
}

func (o Options) withDefaults() Options {
	if o.DefaultN <= 0 {
		o.DefaultN = 5
	}
	if o.MaxN <= 0 {
		o.MaxN = 100
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	return o
}

// modelState bundles the recommender with its generation so a request
// observes one consistent (model, generation) pair: the generation is part
// of every cache key, which keeps results computed against an old model
// from answering for a new one across a hot reload.
type modelState struct {
	rec *core.Recommender
	gen uint64
}

// Handler routes recommendation traffic to a hot-swappable
// core.Recommender. The recommender is immutable after training, so request
// handling never locks; reloads swap an atomic pointer.
type Handler struct {
	opts     Options
	state    atomic.Pointer[modelState]
	cache    *cache.SuggestCache
	mux      *http.ServeMux
	chain    http.Handler
	m        metrics
	reloadMu sync.Mutex
	start    time.Time
}

// New builds a Handler serving rec with the given options.
func New(rec *core.Recommender, opts Options) *Handler {
	h := &Handler{
		opts:  opts.withDefaults(),
		cache: cache.NewSuggestCache(opts.CacheCapacity),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	h.state.Store(&modelState{rec: rec, gen: 1})
	h.mux.HandleFunc("/suggest", h.suggest)
	h.mux.HandleFunc("/suggest/batch", h.suggestBatch)
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/metrics", h.metricsHandler)
	h.mux.HandleFunc("/reload", h.reload)
	h.chain = h.instrument(h.mux)
	return h
}

// NewHandler wraps a trained recommender with default options. defaultN is
// the suggestion count when the request omits n (the paper's N = 5).
func NewHandler(rec *core.Recommender, defaultN int) *Handler {
	return New(rec, Options{DefaultN: defaultN})
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.chain.ServeHTTP(w, r)
}

// Swap atomically replaces the served model, bumps the generation and purges
// the result cache. In-flight requests finish against the model they loaded;
// no traffic is dropped. Returns the new generation.
func (h *Handler) Swap(rec *core.Recommender) uint64 {
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	return h.swapLocked(rec)
}

func (h *Handler) swapLocked(rec *core.Recommender) uint64 {
	old := h.state.Load()
	next := &modelState{rec: rec, gen: old.gen + 1}
	h.state.Store(next)
	// Purge releases the old generation's entries; stale Puts that race the
	// swap are keyed by the old generation and can never answer new-model
	// lookups — they just age out of the LRU.
	h.cache.Purge()
	h.m.reloads.Add(1)
	return next.gen
}

// Reload invokes the configured ReloadFunc and swaps the result in. It is
// the shared implementation of POST /reload and cmd/serve's SIGHUP path.
func (h *Handler) Reload() (uint64, error) {
	if h.opts.ReloadFunc == nil {
		return 0, errors.New("serve: no ReloadFunc configured")
	}
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	rec, err := h.opts.ReloadFunc()
	if err != nil {
		return 0, err
	}
	return h.swapLocked(rec), nil
}

// Generation returns the current model generation (1 for the initial
// model, +1 per successful reload).
func (h *Handler) Generation() uint64 { return h.state.Load().gen }

func (h *Handler) suggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	context := q["q"]
	if len(context) == 0 {
		http.Error(w, "missing q parameters (one per context query, oldest first)", http.StatusBadRequest)
		return
	}
	n := h.opts.DefaultN
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > h.opts.MaxN {
			http.Error(w, fmt.Sprintf("n must be an integer in [1,%d]", h.opts.MaxN), http.StatusBadRequest)
			return
		}
		n = v
	}
	st := h.state.Load()
	start := time.Now()
	recs := h.cache.Recommend(st.gen, st.rec, context, n)
	took := time.Since(start).Microseconds()
	h.m.suggests.Add(1)
	h.m.lat.record(took)
	writeJSON(w, http.StatusOK, h.suggestResponse(context, recs, took))
}

func (h *Handler) suggestResponse(context []string, recs []core.Suggestion, tookMicros int64) SuggestResponse {
	resp := SuggestResponse{
		Context:     context,
		Suggestions: make([]Suggestion, len(recs)),
		TookMicros:  tookMicros,
	}
	for i, s := range recs {
		resp.Suggestions[i] = Suggestion{Query: s.Query, Score: s.Score}
	}
	return resp
}

func (h *Handler) suggestBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Requests) == 0 {
		http.Error(w, "empty batch: requests must contain at least one context", http.StatusBadRequest)
		return
	}
	if len(req.Requests) > h.opts.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), h.opts.MaxBatch), http.StatusBadRequest)
		return
	}
	for i, item := range req.Requests {
		if len(item.Context) == 0 {
			http.Error(w, fmt.Sprintf("requests[%d]: empty context", i), http.StatusBadRequest)
			return
		}
		if item.N < 0 || item.N > h.opts.MaxN {
			http.Error(w, fmt.Sprintf("requests[%d]: n must be in [1,%d] (or omitted)", i, h.opts.MaxN), http.StatusBadRequest)
			return
		}
	}
	st := h.state.Load()
	resp := BatchResponse{Results: make([]SuggestResponse, len(req.Requests))}
	batchStart := time.Now()
	for i, item := range req.Requests {
		n := item.N
		if n == 0 {
			n = h.opts.DefaultN
		}
		start := time.Now()
		recs := h.cache.Recommend(st.gen, st.rec, item.Context, n)
		took := time.Since(start).Microseconds()
		h.m.lat.record(took)
		resp.Results[i] = h.suggestResponse(item.Context, recs, took)
	}
	resp.TookMicros = time.Since(batchStart).Microseconds()
	h.m.batches.Add(1)
	h.m.batchContexts.Add(uint64(len(req.Requests)))
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	st := h.state.Load()
	resp := Health{
		Status:        "ok",
		KnownQueries:  st.rec.Dict().Len(),
		TrainSessions: st.rec.Stats().Sessions,
		Generation:    st.gen,
	}
	if cm := st.rec.CompiledModel(); cm != nil {
		resp.Compiled = true
		resp.CompiledNodes = cm.Nodes()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) metricsHandler(w http.ResponseWriter, r *http.Request) {
	st := h.state.Load()
	cs := h.cache.Stats()
	sorted := h.m.lat.snapshot()
	compiledNodes := 0
	if cm := st.rec.CompiledModel(); cm != nil {
		compiledNodes = cm.Nodes()
	}
	writeJSON(w, http.StatusOK, MetricsResponse{
		Requests:        h.m.requests.Load(),
		SuggestRequests: h.m.suggests.Load(),
		BatchRequests:   h.m.batches.Load(),
		BatchContexts:   h.m.batchContexts.Load(),
		Errors:          h.m.errors.Load(),
		Panics:          h.m.panics.Load(),
		Reloads:         h.m.reloads.Load(),
		Cache:           cs,
		CacheHitRate:    cs.HitRate(),
		LatencySamples:  len(sorted),
		P50Micros:       quantile(sorted, 0.50),
		P90Micros:       quantile(sorted, 0.90),
		P99Micros:       quantile(sorted, 0.99),
		ModelGeneration: st.gen,
		KnownQueries:    st.rec.Dict().Len(),
		CompiledNodes:   compiledNodes,
		UptimeSeconds:   time.Since(h.start).Seconds(),
		Runtime:         readRuntimeStats(),
	})
}

func (h *Handler) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if h.opts.ReloadFunc == nil {
		http.Error(w, "reload not configured", http.StatusNotImplemented)
		return
	}
	start := time.Now()
	gen, err := h.Reload()
	if err != nil {
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	st := h.state.Load()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Generation:   gen,
		KnownQueries: st.rec.Dict().Len(),
		TookMicros:   time.Since(start).Microseconds(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
