package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestIngestEndpoint: /v1/ingest serves the wired-in status snapshot as JSON
// and the same value rides along in /v1/metrics under "ingest"; processes
// without an ingestion loop answer 404.
func TestIngestEndpoint(t *testing.T) {
	type status struct {
		Sessions uint64 `json:"sessions"`
		Offset   int64  `json:"offset"`
	}
	h := New(testRecommender(t), Options{
		IngestStatus: func() any { return status{Sessions: 42, Offset: 1024} },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	var got status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Sessions != 42 || got.Offset != 1024 {
		t.Fatalf("GET /v1/ingest = %d %+v", resp.StatusCode, got)
	}

	resp, err = http.Post(srv.URL+"/v1/ingest", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/ingest = %d, want 405", resp.StatusCode)
	}

	var m struct {
		Ingest *status `json:"ingest"`
	}
	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Ingest == nil || m.Ingest.Sessions != 42 {
		t.Fatalf("metrics ingest block = %+v", m.Ingest)
	}
}

// TestIngestEndpointAbsent: no IngestStatus hook → 404 with the JSON error
// envelope, and no "ingest" key in metrics.
func TestIngestEndpointAbsent(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRecommender(t), 5))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || eb.Error.Code != "not_found" {
		t.Fatalf("no-loop /v1/ingest = %d %+v", resp.StatusCode, eb)
	}

	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, present := raw["ingest"]; present {
		t.Fatal("metrics carries ingest block without an ingestion loop")
	}
}
