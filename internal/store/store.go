// Package store provides the low-level binary encoding used to persist
// trained models (cmd/train writes them, cmd/recommend loads them) and the
// serialized-size accounting behind Table VII's interpreted-model rows (the
// compiled-model rows are measured directly as CPS3/CPS4 blob bytes in
// internal/experiments). The format is a simple length-prefixed varint
// encoding with a magic header and CRC32 trailer per section — stdlib only,
// no gob, so the on-disk size is an honest proxy for the in-memory model
// size.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt is wrapped by all decoding failures.
var ErrCorrupt = errors.New("store: corrupt stream")

// Writer encodes primitives to an underlying stream with a running CRC.
type Writer struct {
	bw  *bufio.Writer
	crc uint32
	n   int64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// BytesWritten reports the total bytes emitted so far (including headers).
func (w *Writer) BytesWritten() int64 { return w.n }

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	nn, err := w.bw.Write(p)
	w.n += int64(nn)
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p[:nn])
	w.err = err
}

// Magic writes a fixed 4-byte section tag (not checksummed restart; the CRC
// keeps running).
func (w *Writer) Magic(tag string) {
	if len(tag) != 4 {
		w.err = fmt.Errorf("store: magic %q must be 4 bytes", tag)
		return
	}
	w.write([]byte(tag))
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.write(buf[:n])
}

// Int writes a non-negative int as a uvarint.
func (w *Writer) Int(v int) {
	if v < 0 {
		w.err = fmt.Errorf("store: negative int %d", v)
		return
	}
	w.Uvarint(uint64(v))
}

// Float64 writes an IEEE-754 double, little-endian.
func (w *Writer) Float64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	w.write(buf[:])
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Close flushes the buffer and appends the CRC32 trailer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.crc)
	if _, err := w.bw.Write(buf[:]); err != nil {
		return err
	}
	w.n += 4
	return w.bw.Flush()
}

// Reader decodes primitives written by Writer, verifying the CRC on Close.
type Reader struct {
	br  *bufio.Reader
	crc uint32
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.br, p); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, p)
}

// Magic consumes and verifies a 4-byte section tag.
func (r *Reader) Magic(tag string) {
	var buf [4]byte
	r.read(buf[:])
	if r.err == nil && string(buf[:]) != tag {
		r.err = fmt.Errorf("%w: magic %q, want %q", ErrCorrupt, buf[:], tag)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(crcByteReader{r})
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	return v
}

type crcByteReader struct{ r *Reader }

func (c crcByteReader) ReadByte() (byte, error) {
	b, err := c.r.br.ReadByte()
	if err == nil {
		c.r.crc = crc32.Update(c.r.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// Int reads a non-negative int with an overflow guard.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > math.MaxInt32 {
		r.err = fmt.Errorf("%w: int overflow %d", ErrCorrupt, v)
		return 0
	}
	return int(v)
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	var buf [8]byte
	r.read(buf[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// Bytes reads a length-prefixed byte slice with a sanity cap.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > 1<<30 {
		r.err = fmt.Errorf("%w: blob of %d bytes", ErrCorrupt, n)
		return nil
	}
	p := make([]byte, n)
	r.read(p)
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Close verifies the CRC32 trailer.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc // trailer itself is not part of the checksum
	var buf [4]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		return fmt.Errorf("%w: missing CRC trailer: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return fmt.Errorf("%w: CRC mismatch %08x != %08x", ErrCorrupt, got, want)
	}
	return nil
}

// Footprint measures the serialized size of a model in bytes — the
// repository's Table VII memory proxy (the encoding is packed, so this
// slightly understates live-heap size but preserves relative ordering).
func Footprint(wt io.WriterTo) (int64, error) {
	var cw countingWriter
	if _, err := wt.WriteTo(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
