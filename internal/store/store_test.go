package store

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("TEST")
	w.Uvarint(12345)
	w.Int(7)
	w.Float64(math.Pi)
	w.String("hello world")
	w.Bytes([]byte{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Magic("TEST")
	if v := r.Uvarint(); v != 12345 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Int(); v != 7 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.Float64(); v != math.Pi {
		t.Fatalf("Float64 = %v", v)
	}
	if v := r.String(); v != "hello world" {
		t.Fatalf("String = %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", v)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("TEST")
	w.String("payload payload payload")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[6] ^= 0xFF // flip a payload byte

	r := NewReader(bytes.NewReader(data))
	r.Magic("TEST")
	_ = r.String()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestReaderDetectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("AAAA")
	w.Close()
	r := NewReader(&buf)
	r.Magic("BBBB")
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("wrong magic not detected: %v", r.Err())
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("TEST")
	w.String("some content")
	w.Close()
	data := buf.Bytes()[:buf.Len()-6]

	r := NewReader(bytes.NewReader(data))
	r.Magic("TEST")
	_ = r.String()
	err := r.Err()
	if err == nil {
		err = r.Close()
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestWriterRejectsNegativeInt(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	w.Int(-1)
	if w.Err() == nil {
		t.Fatal("negative int accepted")
	}
}

func TestWriterRejectsBadMagic(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	w.Magic("TOOLONG")
	if w.Err() == nil {
		t.Fatal("oversized magic accepted")
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Uvarint(v)
		}
		if w.Close() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			if r.Uvarint() != v {
				return false
			}
		}
		return r.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, v := range vals {
			w.Float64(v)
		}
		if w.Close() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, v := range vals {
			got := r.Float64()
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return r.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintCountsBytes(t *testing.T) {
	wt := writerToFunc(func(w io.Writer) (int64, error) {
		n, err := w.Write(make([]byte, 1234))
		return int64(n), err
	})
	n, err := Footprint(wt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1234 {
		t.Fatalf("Footprint = %d, want 1234", n)
	}
}

type writerToFunc func(w io.Writer) (int64, error)

func (f writerToFunc) WriteTo(w io.Writer) (int64, error) { return f(w) }
