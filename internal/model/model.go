// Package model defines the common interface implemented by every query
// prediction approach in the repository — the two pair-wise baselines
// (Adjacency, Co-occurrence) and the three sequential models (variable-length
// N-gram, VMM, MVMM) — so the evaluation harness can benchmark them
// uniformly.
package model

import "repro/internal/query"

// Prediction is one ranked next-query recommendation with its model score.
// Scores are comparable within a single Predict call only.
type Prediction struct {
	Query query.ID
	Score float64
}

// Predictor is the contract of a trained query prediction model.
type Predictor interface {
	// Name returns the display name used in tables ("Adjacency", "MVMM", ...).
	Name() string
	// Predict returns up to topN ranked predictions of the user's next
	// query given the context (the paper's s = [q1, ..., qi-1]).
	// It returns nil when the model does not cover the context.
	Predict(ctx query.Seq, topN int) []Prediction
	// Prob returns the model's estimate of P̂(q | ctx), used for the
	// log-loss / entropy analyses. Models return 0 for uncovered contexts.
	Prob(ctx query.Seq, q query.ID) float64
	// Covers reports whether the model can make any prediction for ctx.
	Covers(ctx query.Seq) bool
}

// TopQueries extracts just the query IDs from a prediction list, preserving
// rank order.
func TopQueries(ps []Prediction) []query.ID {
	out := make([]query.ID, len(ps))
	for i, p := range ps {
		out[i] = p.Query
	}
	return out
}
