package loggen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/logfmt"
)

// Pattern labels one of the seven session pattern types of the paper's
// Fig. 1 / Table I.
type Pattern uint8

// The seven session-pattern types.
const (
	PatSpelling Pattern = iota
	PatParallel
	PatGeneralization
	PatSpecialization
	PatSynonym
	PatRepeated
	PatOther
	numPatterns
)

// PatternNames gives the paper's display names in Pattern order.
var PatternNames = [...]string{
	"Spelling change",
	"Parallel movement",
	"Generalization",
	"Specialization",
	"Synonym substitution",
	"Repeated query",
	"Others",
}

func (p Pattern) String() string {
	if int(p) < len(PatternNames) {
		return PatternNames[p]
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// DefaultPatternMix is the generator's default pattern distribution. Fig. 1
// is only reported numerically via its order-sensitive total (spelling +
// generalization + specialization = 34.34%); the remaining shares are read
// off the figure approximately. See DESIGN.md §1.
var DefaultPatternMix = [numPatterns]float64{
	PatSpelling:       0.10,
	PatParallel:       0.16,
	PatGeneralization: 0.10,
	PatSpecialization: 0.1434,
	PatSynonym:        0.08,
	PatRepeated:       0.14,
	PatOther:          0.2766,
}

// Config controls session-stream generation on top of a Universe.
type Config struct {
	Universe   UniverseConfig
	Machines   int                  // distinct machine IDs (users)
	PatternMix [numPatterns]float64 // must sum to ~1
	// ZipfS and ZipfV shape query popularity: topics and roots are drawn
	// from Zipf(s, v) so aggregated session frequencies follow a power law
	// (Fig. 6). s must be > 1.
	ZipfS float64
	ZipfV float64
	// MeanGapSec is the mean think-time between queries within a session;
	// drawn exponentially, always < 30 min so sessions never self-split.
	MeanGapSec float64
	// ShortBreakProb is the chance two generated intent units of one machine
	// are separated by less than 30 minutes, fusing them into one observed
	// session (realistic segmentation noise).
	ShortBreakProb float64
	ClickProb      float64 // probability a query receives >= 1 click
	// NoiseProb injects a universal navigational query ("www foo") at the
	// start or end of a session — the topic-agnostic noise that pollutes
	// co-occurrence statistics in real logs.
	NoiseProb float64
	// LateTopicEvery marks every k-th topic (k = LateTopicEvery, offset 1)
	// as emerging only after EnterTestPhase is called, creating the
	// train/test vocabulary drift of real multi-month logs. 0 disables.
	LateTopicEvery int
	Start          time.Time
	Seed           int64
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Universe:       DefaultUniverseConfig(),
		Machines:       4000,
		PatternMix:     DefaultPatternMix,
		ZipfS:          1.3,
		ZipfV:          2.0,
		MeanGapSec:     75,
		ShortBreakProb: 0.12,
		ClickProb:      0.7,
		NoiseProb:      0.25,
		LateTopicEvery: 9,
		Start:          time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		Seed:           42,
	}
}

// LabeledSession is one generated intent unit with its ground-truth pattern
// label, used to reproduce Fig. 1 and to drive the user-study oracle.
type LabeledSession struct {
	Machine string
	Start   time.Time
	Queries []string
	Pattern Pattern
	Topic   int
}

// Generator produces a deterministic stream of labeled sessions and raw log
// records over a synthetic universe.
type Generator struct {
	cfg       Config
	universe  *Universe
	rng       *rand.Rand
	topicZ    *rand.Zipf
	rootZ     *rand.Zipf
	noiseZ    *rand.Zipf
	patCDF    [numPatterns]float64
	clock     []time.Time // per-machine current time
	testPhase bool
}

// New constructs a Generator. The same (Config, Seed) always yields the same
// stream.
func New(cfg Config) (*Generator, error) {
	u, err := NewUniverse(cfg.Universe)
	if err != nil {
		return nil, err
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("loggen: Machines must be positive, got %d", cfg.Machines)
	}
	if cfg.ZipfS <= 1 || cfg.ZipfV < 1 {
		return nil, fmt.Errorf("loggen: Zipf parameters s=%v v=%v invalid (need s>1, v>=1)", cfg.ZipfS, cfg.ZipfV)
	}
	var sum float64
	for _, p := range cfg.PatternMix {
		if p < 0 {
			return nil, fmt.Errorf("loggen: negative pattern probability")
		}
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		return nil, fmt.Errorf("loggen: pattern mix sums to %v, want 1", sum)
	}
	g := &Generator{cfg: cfg, universe: u, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.topicZ = rand.NewZipf(g.rng, cfg.ZipfS, cfg.ZipfV, uint64(len(u.Topics)-1))
	g.rootZ = rand.NewZipf(g.rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Universe.RootsPerTopic-1))
	if len(u.Universal) > 0 {
		g.noiseZ = rand.NewZipf(g.rng, cfg.ZipfS, cfg.ZipfV, uint64(len(u.Universal)-1))
	}
	acc := 0.0
	for i, p := range cfg.PatternMix {
		acc += p / sum
		g.patCDF[i] = acc
	}
	g.clock = make([]time.Time, cfg.Machines)
	for i := range g.clock {
		g.clock[i] = cfg.Start.Add(time.Duration(g.rng.Int63n(int64(24 * time.Hour))))
	}
	return g, nil
}

// Universe exposes the underlying synthetic vocabulary (for the oracle).
func (g *Generator) Universe() *Universe { return g.universe }

func (g *Generator) pickPattern() Pattern {
	x := g.rng.Float64()
	for i, c := range g.patCDF {
		if x <= c {
			return Pattern(i)
		}
	}
	return PatOther
}

// EnterTestPhase unlocks late-onset topics, simulating the query-trend
// drift between the paper's 120-day training window and 30-day test window.
func (g *Generator) EnterTestPhase() { g.testPhase = true }

func (g *Generator) isLate(t int) bool {
	return g.cfg.LateTopicEvery > 0 && t%g.cfg.LateTopicEvery == 1
}

func (g *Generator) pickTopic() int {
	t := int(g.topicZ.Uint64())
	for !g.testPhase && g.isLate(t) {
		t = (t + 1) % len(g.universe.Topics)
	}
	return t
}

func (g *Generator) pickRoot(t *Topic) int {
	return t.Roots[int(g.rootZ.Uint64())%len(t.Roots)]
}

// Session generates the next labeled session (intent unit).
func (g *Generator) Session() LabeledSession {
	m := g.rng.Intn(g.cfg.Machines)
	pat := g.pickPattern()
	ti := g.pickTopic()
	topic := &g.universe.Topics[ti]
	qs := g.walk(pat, topic)

	// Navigational noise: a topic-less query tacked onto the session,
	// mostly before the real intent ("check webmail, then search"). The
	// asymmetry matters: prepended noise creates symmetric co-occurrence
	// pairs with every query in the session but pollutes the forward
	// conditional of the noise query only — which is how navigational
	// queries poison co-occurrence statistics in real logs while leaving
	// context-conditional models largely untouched.
	if g.noiseZ != nil && g.rng.Float64() < g.cfg.NoiseProb {
		nq := g.universe.Universal[int(g.noiseZ.Uint64())%len(g.universe.Universal)]
		if g.rng.Float64() < 0.8 {
			qs = append([]string{nq}, qs...)
		} else {
			qs = append(qs, nq)
		}
	}

	// Advance this machine's clock by a break. Long breaks (>30 min) make
	// the segmenter start a new session; short breaks deliberately fuse
	// consecutive intents.
	var gap time.Duration
	if g.rng.Float64() < g.cfg.ShortBreakProb {
		gap = time.Duration(5+g.rng.Intn(20)) * time.Minute
	} else {
		gap = time.Duration(45+g.rng.Intn(600)) * time.Minute
	}
	g.clock[m] = g.clock[m].Add(gap)
	return LabeledSession{
		Machine: fmt.Sprintf("m%05d", m),
		Start:   g.clock[m],
		Queries: qs,
		Pattern: pat,
		Topic:   ti,
	}
}

// walk realises one session query sequence for the given pattern. Sequences
// are built from the topic's deterministic variants so that identical
// sessions recur across users, producing the power-law aggregation of
// Fig. 6.
func (g *Generator) walk(pat Pattern, topic *Topic) []string {
	ri := g.pickRoot(topic)
	root := &topic.Concepts[ri]
	switch pat {
	case PatSpelling:
		qs := []string{root.Typo, root.Query}
		return g.maybeExtend(qs, topic, ri)
	case PatParallel:
		// Move between two roots of the same topic (smtp => pop3).
		other := topic.Roots[(indexOf(topic.Roots, ri)+1)%len(topic.Roots)]
		qs := []string{root.Query, topic.Concepts[other].Query}
		if g.rng.Float64() < 0.3 && len(topic.Roots) > 2 {
			third := topic.Roots[(indexOf(topic.Roots, ri)+2)%len(topic.Roots)]
			qs = append(qs, topic.Concepts[third].Query)
		}
		return qs
	case PatGeneralization:
		// child => parent. Pick the deepest concept under the root.
		ci := deepest(topic, ri)
		if ci == ri {
			return []string{root.Query, root.Query} // degenerate: repeat
		}
		child := topic.Concepts[ci]
		return []string{child.Query, topic.Concepts[child.Parent].Query}
	case PatSpecialization:
		// Walk down the lattice: root => refinement => shared node =>
		// deep refinement (Table V style, up to 5 queries with the typo
		// prefix). The branch variant is chosen once per session and used
		// at every fork, so the deep continuation after the shared node is
		// determined by the session's entry branch — history the last
		// query alone cannot reveal.
		variant := g.rng.Intn(2)
		qs := []string{root.Query}
		if g.rng.Float64() < 0.3 && root.Typo != "" {
			qs = []string{root.Typo, root.Query}
		}
		ci := ri
		depth := 0
		for len(topic.Concepts[ci].Children) > 0 {
			ch := topic.Concepts[ci].Children
			next := ch[0]
			if len(ch) > 1 && variant == 1 {
				next = ch[1]
			}
			ci = next
			qs = append(qs, topic.Concepts[ci].Query)
			depth++
			if depth >= 2 && g.rng.Float64() < 0.4 {
				break
			}
		}
		return qs
	case PatSynonym:
		if root.Synonym != "" {
			return []string{root.Synonym, root.Query}
		}
		// Root without a synonym: fall back to a typo pair.
		return []string{root.Typo, root.Query}
	case PatRepeated:
		// aim => myspace => myspace => photobucket style: a repeat embedded
		// in topic navigation.
		other := topic.Roots[(indexOf(topic.Roots, ri)+1)%len(topic.Roots)]
		oq := topic.Concepts[other].Query
		if g.rng.Float64() < 0.5 {
			return []string{root.Query, oq, oq}
		}
		return []string{root.Query, root.Query}
	default: // PatOther: unrelated hops across topics (multi-tasking)
		qs := []string{root.Query}
		if g.rng.Float64() < 0.25 {
			return qs // single-query session (Table VI reason 2)
		}
		// Unrelated hops land on Zipf-random topics ("muzzle brake =>
		// shared calenders"): individually rare, so this junk stays diffuse
		// in every conditional distribution, exactly like real logs. A
		// third hop adds co-occurrence distance-2 pairs adjacency never
		// sees.
		t2 := g.partnerTopic(topic.Index)
		qs = append(qs, t2.Concepts[g.pickRoot(t2)].Query)
		if g.rng.Float64() < 0.5 {
			t3 := g.partnerTopic(topic.Index)
			qs = append(qs, t3.Concepts[g.pickRoot(t3)].Query)
		}
		return qs
	}
}

// maybeExtend occasionally appends a specialisation after a correction,
// producing longer mixed sessions.
func (g *Generator) maybeExtend(qs []string, topic *Topic, ri int) []string {
	if g.rng.Float64() < 0.3 && len(topic.Concepts[ri].Children) > 0 {
		ci := topic.Concepts[ri].Children[0]
		qs = append(qs, topic.Concepts[ci].Query)
	}
	return qs
}

// partnerTopic returns a Zipf-random multi-tasking partner topic distinct
// from ti.
func (g *Generator) partnerTopic(ti int) *Topic {
	n := len(g.universe.Topics)
	p := g.pickTopic()
	for p == ti {
		p = (p + 1) % n
	}
	return &g.universe.Topics[p]
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}

func deepest(topic *Topic, ri int) int {
	ci := ri
	for len(topic.Concepts[ci].Children) > 0 {
		ci = topic.Concepts[ci].Children[0]
	}
	return ci
}

// Records expands a labeled session into raw log records with simulated
// intra-session think times and clicks.
func (g *Generator) Records(ls LabeledSession) []logfmt.Record {
	recs := make([]logfmt.Record, 0, len(ls.Queries))
	t := ls.Start
	for i, q := range ls.Queries {
		if i > 0 {
			gap := time.Duration(g.rng.ExpFloat64() * g.cfg.MeanGapSec * float64(time.Second))
			if gap >= 29*time.Minute {
				gap = 29 * time.Minute
			}
			if gap < time.Second {
				gap = time.Second
			}
			t = t.Add(gap)
		}
		rec := logfmt.Record{MachineID: ls.Machine, Query: q, Time: t}
		if g.rng.Float64() < g.cfg.ClickProb {
			n := 1 + g.rng.Intn(2)
			for c := 0; c < n; c++ {
				rec.Clicks = append(rec.Clicks, logfmt.Click{
					URL:  fmt.Sprintf("www.%s.example.com/r%d", firstWord(q), c),
					Time: t.Add(time.Duration(10+g.rng.Intn(50)) * time.Second),
				})
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

// GenerateSessions produces n labeled sessions.
func (g *Generator) GenerateSessions(n int) []LabeledSession {
	out := make([]LabeledSession, n)
	for i := range out {
		out[i] = g.Session()
	}
	return out
}

// GenerateRecords produces the raw-record expansion of n sessions, calling
// emit for every record. It also returns the labeled sessions for callers
// that need ground truth.
func (g *Generator) GenerateRecords(n int, emit func(logfmt.Record) error) ([]LabeledSession, error) {
	sessions := make([]LabeledSession, 0, n)
	for i := 0; i < n; i++ {
		ls := g.Session()
		sessions = append(sessions, ls)
		for _, rec := range g.Records(ls) {
			if err := emit(rec); err != nil {
				return sessions, err
			}
		}
	}
	return sessions, nil
}

func firstWord(q string) string {
	for i := 0; i < len(q); i++ {
		if q[i] == ' ' {
			return q[:i]
		}
	}
	return q
}
