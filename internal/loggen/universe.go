// Package loggen simulates a commercial search engine's query log. The paper
// evaluated on 150 days of proprietary logs; this package is the documented
// substitution (see DESIGN.md §1): a generative model producing raw log
// records with the same distributional shape — Zipf query popularity,
// topic-clustered vocabulary, the seven session-pattern types of Fig. 1,
// short geometric session lengths, and inter-query gaps that exercise the
// 30-minute session segmentation rule.
package loggen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Relation labels a directed semantic edge between two queries in the
// synthetic universe. The user-study oracle (Sec. V.H substitution) approves
// a predicted query when it is reachable from the context via these edges or
// shares the context's topic.
type Relation uint8

// Relation kinds mirror the paper's Table I search-pattern taxonomy.
const (
	RelNone       Relation = iota
	RelSpelling            // goggle -> google
	RelSynonym             // BAMC -> Brooke Army Medical Center
	RelSpecialize          // o2 -> o2 mobile
	RelGeneralize          // washington mutual home loans -> home loans
	RelParallel            // smtp -> pop3
	RelTopic               // same latent topic, no explicit edge
)

func (r Relation) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelSpelling:
		return "spelling"
	case RelSynonym:
		return "synonym"
	case RelSpecialize:
		return "specialize"
	case RelGeneralize:
		return "generalize"
	case RelParallel:
		return "parallel"
	case RelTopic:
		return "topic"
	}
	return fmt.Sprintf("Relation(%d)", uint8(r))
}

// Concept is one node in a topic's refinement lattice: a canonical query
// string plus its deterministic variants (one typo form, optionally one
// synonym) and its specialisation children.
type Concept struct {
	Query    string
	Typo     string // deterministic misspelling of Query ("" if none)
	Synonym  string // alternative surface form ("" if none)
	Children []int  // indices into Topic.Concepts of specialisations
	Parent   int    // index of the generalisation, -1 for roots
	Depth    int    // 0 for roots
	Topic    int    // owning topic index
}

// Topic is a cluster of semantically related concepts. Sessions mostly stay
// within one topic, which is what gives context its disambiguation power
// (the paper's "Indonesia => Java" example).
type Topic struct {
	Index    int
	Concepts []Concept
	Roots    []int // indices of depth-0 concepts
}

// Universe is the complete synthetic query vocabulary with its relation
// graph. It is deterministic given a seed, so train and test windows share
// the same semantics.
type Universe struct {
	Topics []Topic
	// Universal holds navigational noise queries ("myspace"-style) that
	// belong to no topic: they are injected into sessions across all
	// topics, co-occur with everything, and are semantically related to
	// nothing — the pollution real pair-wise recommenders suffer from.
	Universal []string
	byQuery   map[string]conceptRef // canonical, typo and synonym forms all resolve
	universal map[string]bool
	generic   map[string]bool
}

type conceptRef struct {
	topic, concept int
	form           Relation // RelNone canonical, RelSpelling typo, RelSynonym synonym
}

// UniverseConfig controls the size and shape of the generated vocabulary.
type UniverseConfig struct {
	Topics        int // number of latent topics
	RootsPerTopic int // depth-0 concepts per topic
	ChainDepth    int // specialisation depth below each root (>=0)
	SynonymFrac   float64
	// Universals is the number of topic-less navigational noise queries.
	Universals int
	// Generics is the pool size of ambiguous generic refinement queries
	// ("free download"-style) shared as diamond mid-nodes across topics —
	// the paper's "Java" ambiguity: the same query string funnels many
	// unrelated intents, and only the surrounding context disambiguates.
	Generics int
	Seed     int64
}

// DefaultUniverseConfig yields a vocabulary of roughly 10k queries — large
// enough relative to the default session counts that the Zipf tail stays
// unseen in training, reproducing the paper's ~60% test coverage ceiling.
func DefaultUniverseConfig() UniverseConfig {
	return UniverseConfig{
		Topics:        220,
		RootsPerTopic: 8,
		ChainDepth:    3,
		SynonymFrac:   0.3,
		Universals:    24,
		Generics:      8,
		Seed:          1,
	}
}

var syllables = []string{
	"ka", "ro", "mi", "ta", "lu", "ve", "no", "si", "da", "pe",
	"zu", "ha", "bel", "cor", "dun", "fal", "gor", "hin", "jas", "kel",
	"mar", "nov", "ost", "pra", "quil", "ras", "sol", "tur", "urn", "vex",
}

var modifiers = []string{
	"free", "download", "online", "reviews", "symptoms", "themes", "games",
	"for kids", "prices", "2008", "manual", "lyrics", "pictures", "jobs",
	"near me", "schedule", "parts", "login", "tickets", "recipes",
}

// word derives a deterministic pseudo-word from rng with 2–4 syllables.
func word(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllables[rng.Intn(len(syllables))])
	}
	return b.String()
}

// typoOf derives a deterministic misspelling of q: swap two adjacent letters
// in the first word (or drop one letter for very short queries), mimicking
// the paper's "goggle => google" example.
func typoOf(q string, rng *rand.Rand) string {
	w := q
	if i := strings.IndexByte(q, ' '); i > 0 {
		w = q[:i]
	}
	b := []byte(w)
	if len(b) < 3 {
		return w + w[len(w)-1:] + q[len(w):]
	}
	i := 1 + rng.Intn(len(b)-2)
	b[i], b[i+1] = b[i+1], b[i]
	t := string(b) + q[len(w):]
	if t == q { // adjacent equal letters: drop one instead
		t = w[:i] + w[i+1:] + q[len(w):]
	}
	return t
}

// synonymOf derives an acronym-style alias: initials of a multi-word query
// ("brooke army medical center" -> "bamc") or a reversed-syllable alias for
// single words.
func synonymOf(q string) string {
	fields := strings.Fields(q)
	if len(fields) >= 2 {
		var b strings.Builder
		for _, f := range fields {
			b.WriteByte(f[0])
		}
		return b.String()
	}
	if len(q) >= 4 {
		mid := len(q) / 2
		return q[mid:] + q[:mid]
	}
	return q + "x"
}

// NewUniverse builds a deterministic synthetic query universe.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	if cfg.Topics <= 0 || cfg.RootsPerTopic <= 0 || cfg.ChainDepth < 0 {
		return nil, fmt.Errorf("loggen: invalid universe config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := &Universe{byQuery: make(map[string]conceptRef)}
	seen := make(map[string]bool)

	// Ambiguous generic refinement queries, deliberately shared across
	// topics as diamond mid-nodes.
	u.generic = make(map[string]bool)
	var generics []string
	for len(generics) < cfg.Generics {
		g := modifiers[rng.Intn(len(modifiers))] + " " + modifiers[rng.Intn(len(modifiers))]
		if seen[g] {
			continue
		}
		seen[g] = true
		u.generic[g] = true
		generics = append(generics, g)
	}
	for t := 0; t < cfg.Topics; t++ {
		topic := Topic{Index: t}
		// A topic-specific noun shared by its roots keeps roots related.
		topicWord := word(rng)
		for r := 0; r < cfg.RootsPerTopic; r++ {
			var root string
			for {
				if rng.Float64() < 0.5 {
					root = word(rng) + " " + topicWord
				} else {
					root = word(rng)
				}
				if !seen[root] {
					break
				}
			}
			seen[root] = true
			idx := len(topic.Concepts)
			c := Concept{Query: root, Parent: -1, Depth: 0, Topic: t}
			c.Typo = typoOf(root, rng)
			if rng.Float64() < cfg.SynonymFrac {
				c.Synonym = synonymOf(root)
			}
			topic.Concepts = append(topic.Concepts, c)
			topic.Roots = append(topic.Roots, idx)

			addChild := func(parent int, q string, depth int) int {
				if seen[q] {
					return -1
				}
				seen[q] = true
				ci := len(topic.Concepts)
				child := Concept{Query: q, Parent: parent, Depth: depth, Topic: t}
				if depth == 1 {
					child.Typo = typoOf(q, rng)
				}
				topic.Concepts = append(topic.Concepts, child)
				topic.Concepts[parent].Children = append(topic.Concepts[parent].Children, ci)
				return ci
			}
			pickMod := func(avoid ...string) string {
			retry:
				for {
					m := modifiers[rng.Intn(len(modifiers))]
					for _, a := range avoid {
						if m == a {
							continue retry
						}
					}
					return m
				}
			}

			if cfg.ChainDepth >= 3 {
				// Diamond lattice: two depth-1 refinements reconverge on a
				// shared depth-2 query and diverge again at depth 3
				//
				//	root -> {root A, root B} -> M -> {root M X, root M Y}
				//
				// Sessions entering via A continue to X, via B to Y, so the
				// correct deep suggestion after M depends on history the
				// last query alone cannot reveal — the paper's "Indonesia
				// => Java" ambiguity, by construction. M is usually an
				// ambiguous generic query shared with other topics, so its
				// marginal follower distribution mixes many intents.
				modA := pickMod()
				modB := pickMod(modA)
				c1a := addChild(idx, root+" "+modA, 1)
				c1b := addChild(idx, root+" "+modB, 1)
				if c1a >= 0 {
					var mq string
					if len(generics) > 0 && rng.Float64() < 0.6 {
						mq = generics[rng.Intn(len(generics))]
					} else {
						mq = root + " " + pickMod(modA, modB)
					}
					// Force-add: generic mid-nodes deliberately recur
					// across topics.
					seen[mq] = true
					m := len(topic.Concepts)
					topic.Concepts = append(topic.Concepts, Concept{Query: mq, Parent: c1a, Depth: 2, Topic: t})
					topic.Concepts[c1a].Children = append(topic.Concepts[c1a].Children, m)
					if c1b >= 0 {
						// The shared node is reachable from both branches.
						topic.Concepts[c1b].Children = append(topic.Concepts[c1b].Children, m)
					}
					modX := pickMod()
					modY := pickMod(modX)
					addChild(m, root+" "+mq+" "+modX, 3)
					addChild(m, root+" "+mq+" "+modY, 3)
				}
			} else {
				// Shallow linear chain: root -> root X -> root X Y ...
				parent := idx
				q := root
				for d := 1; d <= cfg.ChainDepth; d++ {
					q = q + " " + modifiers[rng.Intn(len(modifiers))]
					ci := addChild(parent, q, d)
					if ci < 0 {
						break
					}
					parent = ci
				}
			}
		}
		u.Topics = append(u.Topics, topic)
	}
	// Topic-less navigational noise queries.
	u.universal = make(map[string]bool)
	for i := 0; i < cfg.Universals; i++ {
		q := "www " + word(rng)
		if seen[q] {
			continue
		}
		seen[q] = true
		u.Universal = append(u.Universal, q)
		u.universal[q] = true
	}
	// Index every surface form.
	for ti := range u.Topics {
		for ci := range u.Topics[ti].Concepts {
			c := &u.Topics[ti].Concepts[ci]
			u.index(c.Query, conceptRef{ti, ci, RelNone})
			if c.Typo != "" && c.Typo != c.Query {
				u.index(c.Typo, conceptRef{ti, ci, RelSpelling})
			}
			if c.Synonym != "" && c.Synonym != c.Query {
				u.index(c.Synonym, conceptRef{ti, ci, RelSynonym})
			}
		}
	}
	return u, nil
}

// index records a surface form, keeping the first binding when typo/synonym
// collisions occur across concepts (rare but possible).
func (u *Universe) index(q string, ref conceptRef) {
	if _, ok := u.byQuery[q]; !ok {
		u.byQuery[q] = ref
	}
}

// NumQueries reports the number of distinct surface forms in the universe.
func (u *Universe) NumQueries() int { return len(u.byQuery) + len(u.Universal) }

// IsUniversal reports whether q is one of the topic-less noise queries.
func (u *Universe) IsUniversal(q string) bool { return u.universal[q] }

// IsGeneric reports whether q is one of the ambiguous generic refinement
// queries shared across topics.
func (u *Universe) IsGeneric(q string) bool { return u.generic[q] }

// TopicOf returns the topic index of q's concept, or -1 if q is unknown.
func (u *Universe) TopicOf(q string) int {
	if ref, ok := u.byQuery[q]; ok {
		return ref.topic
	}
	return -1
}

// Relate classifies the semantic relation from query a to query b:
// an explicit edge kind when one exists, RelTopic when they merely share a
// topic, and RelNone otherwise. This powers the simulated user study.
func (u *Universe) Relate(a, b string) Relation {
	ra, oka := u.byQuery[a]
	rb, okb := u.byQuery[b]
	if !oka || !okb {
		return RelNone
	}
	if ra.topic == rb.topic && ra.concept == rb.concept {
		// Same concept, different surface forms.
		switch {
		case ra.form == RelSpelling || rb.form == RelSpelling:
			return RelSpelling
		case ra.form == RelSynonym || rb.form == RelSynonym:
			return RelSynonym
		default:
			return RelTopic // identical canonical query (repeat)
		}
	}
	if ra.topic != rb.topic {
		return RelNone
	}
	ca := u.Topics[ra.topic].Concepts[ra.concept]
	cb := u.Topics[rb.topic].Concepts[rb.concept]
	switch {
	case ca.Parent == rb.concept:
		return RelGeneralize
	case cb.Parent == ra.concept:
		return RelSpecialize
	case ca.Parent == cb.Parent && ca.Depth == cb.Depth:
		return RelParallel
	default:
		return RelTopic
	}
}

// Related reports whether b is an appropriate recommendation after query a
// under the user-study oracle's criteria, mirroring the judgements the
// paper's labelers were asked to make: clear reformulation relationships
// (spelling fix, synonym, specialisation, generalisation, parallel move —
// the Table I taxonomy), exact repeats, and refinements along the same
// lineage are approved; vague same-topic associations across lineages,
// cross-topic hops and navigational noise are rejected.
func (u *Universe) Related(a, b string) bool {
	switch u.Relate(a, b) {
	case RelSpelling:
		// Direction matters: correcting a typo is approved, recommending a
		// misspelling is not. Symmetric statistics (co-occurrence) suggest
		// both directions; labelers only accept the canonical form.
		return !u.isTypoForm(b)
	case RelSynonym, RelSpecialize, RelGeneralize, RelParallel:
		return true
	case RelTopic:
		ra := u.byQuery[a]
		rb := u.byQuery[b]
		if ra.concept == rb.concept {
			return true // repeat / surface-form variant
		}
		topic := &u.Topics[ra.topic]
		return reachable(topic, ra.concept, rb.concept) || reachable(topic, rb.concept, ra.concept)
	default:
		return false
	}
}

// isTypoForm reports whether q is a misspelled surface form.
func (u *Universe) isTypoForm(q string) bool {
	ref, ok := u.byQuery[q]
	return ok && ref.form == RelSpelling
}

// reachable reports whether concept 'to' is a (transitive) refinement of
// concept 'from', following Children edges — which include the diamond's
// reconvergence edge, so both entry branches count as lineage of the shared
// node.
func reachable(t *Topic, from, to int) bool {
	stack := []int{from}
	seenC := map[int]bool{from: true}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range t.Concepts[c].Children {
			if ch == to {
				return true
			}
			if !seenC[ch] {
				seenC[ch] = true
				stack = append(stack, ch)
			}
		}
	}
	return false
}

// Queries returns all canonical queries (not typos/synonyms) in a stable
// order, used by tests to iterate the vocabulary.
func (u *Universe) Queries() []string {
	var out []string
	for _, t := range u.Topics {
		for _, c := range t.Concepts {
			out = append(out, c.Query)
		}
	}
	return out
}
