package loggen

import (
	"math"
	"testing"
	"time"

	"repro/internal/logfmt"
)

func smallUniverse(t *testing.T) *Universe {
	t.Helper()
	u, err := NewUniverse(UniverseConfig{Topics: 5, RootsPerTopic: 4, ChainDepth: 2, SynonymFrac: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewUniverseValidation(t *testing.T) {
	bad := []UniverseConfig{
		{Topics: 0, RootsPerTopic: 1},
		{Topics: 1, RootsPerTopic: 0},
		{Topics: 1, RootsPerTopic: 1, ChainDepth: -1},
	}
	for _, cfg := range bad {
		if _, err := NewUniverse(cfg); err == nil {
			t.Errorf("NewUniverse(%+v) accepted invalid config", cfg)
		}
	}
}

func TestUniverseDeterministic(t *testing.T) {
	cfg := UniverseConfig{Topics: 3, RootsPerTopic: 3, ChainDepth: 1, SynonymFrac: 0.5, Seed: 11}
	a, _ := NewUniverse(cfg)
	b, _ := NewUniverse(cfg)
	qa, qb := a.Queries(), b.Queries()
	if len(qa) != len(qb) {
		t.Fatalf("sizes differ: %d vs %d", len(qa), len(qb))
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("query %d differs: %q vs %q", i, qa[i], qb[i])
		}
	}
}

func TestUniverseStructure(t *testing.T) {
	u := smallUniverse(t)
	if len(u.Topics) != 5 {
		t.Fatalf("topics = %d, want 5", len(u.Topics))
	}
	for ti, topic := range u.Topics {
		if len(topic.Roots) != 4 {
			t.Fatalf("topic %d roots = %d, want 4", ti, len(topic.Roots))
		}
		for ci, c := range topic.Concepts {
			if c.Topic != ti {
				t.Fatalf("concept %d/%d wrong topic %d", ti, ci, c.Topic)
			}
			if c.Depth == 0 && c.Parent != -1 {
				t.Fatalf("root %q has parent %d", c.Query, c.Parent)
			}
			if c.Depth > 0 {
				parent := topic.Concepts[c.Parent]
				if parent.Depth != c.Depth-1 {
					t.Fatalf("depth chain broken at %q", c.Query)
				}
			}
			for _, child := range c.Children {
				if topic.Concepts[child].Parent != ci {
					t.Fatalf("child/parent links inconsistent at %q", c.Query)
				}
			}
		}
	}
}

func TestRelateClassifiesEdges(t *testing.T) {
	u := smallUniverse(t)
	topic := u.Topics[0]
	root := topic.Concepts[topic.Roots[0]]
	if len(root.Children) == 0 {
		t.Fatal("root has no specialisation chain")
	}
	child := topic.Concepts[root.Children[0]]

	if got := u.Relate(root.Query, child.Query); got != RelSpecialize {
		t.Errorf("root->child = %v, want specialize", got)
	}
	if got := u.Relate(child.Query, root.Query); got != RelGeneralize {
		t.Errorf("child->root = %v, want generalize", got)
	}
	if got := u.Relate(root.Typo, root.Query); got != RelSpelling {
		t.Errorf("typo->canonical = %v, want spelling", got)
	}
	if root.Synonym != "" {
		if got := u.Relate(root.Synonym, root.Query); got != RelSynonym {
			t.Errorf("synonym->canonical = %v, want synonym", got)
		}
	}
	other := topic.Concepts[topic.Roots[1]]
	if got := u.Relate(root.Query, other.Query); got != RelParallel {
		t.Errorf("sibling roots = %v, want parallel", got)
	}
	cross := u.Topics[1].Concepts[u.Topics[1].Roots[0]]
	if got := u.Relate(root.Query, cross.Query); got != RelNone {
		t.Errorf("cross-topic = %v, want none", got)
	}
	if got := u.Relate("never seen", root.Query); got != RelNone {
		t.Errorf("unknown query = %v, want none", got)
	}
}

func TestRelatedLineageApprovedCrossLineageRejected(t *testing.T) {
	u := smallUniverse(t)
	topic := u.Topics[0]
	root := topic.Concepts[topic.Roots[0]]
	// Deep refinement of the SAME root: lineage, approved even without a
	// direct parent edge.
	deepIdx := deepest(&u.Topics[0], topic.Roots[0])
	deep := topic.Concepts[deepIdx]
	if deepIdx != topic.Roots[0] && !u.Related(root.Query, deep.Query) {
		t.Fatal("deep refinement of the same root should be approved")
	}
	// Deep refinement of a DIFFERENT root: vague same-topic association,
	// rejected by the oracle.
	otherDeep := topic.Concepts[deepest(&u.Topics[0], topic.Roots[1])]
	if otherDeep.Depth > 0 && u.Related(root.Query, otherDeep.Query) {
		t.Fatal("cross-lineage same-topic suggestion should be rejected")
	}
	// Sibling roots remain approved (parallel movement).
	sib := topic.Concepts[topic.Roots[1]]
	if !u.Related(root.Query, sib.Query) {
		t.Fatal("sibling roots should be approved (parallel move)")
	}
}

func TestTypoOfDiffersFromOriginal(t *testing.T) {
	u := smallUniverse(t)
	for _, topic := range u.Topics {
		for _, c := range topic.Concepts {
			if c.Typo != "" && c.Typo == c.Query {
				t.Fatalf("typo identical to query: %q", c.Query)
			}
		}
	}
}

func TestSynonymOf(t *testing.T) {
	if got := synonymOf("brooke army medical center"); got != "bamc" {
		t.Fatalf("acronym = %q, want bamc", got)
	}
	if got := synonymOf("google"); got == "google" || got == "" {
		t.Fatalf("single-word synonym = %q", got)
	}
}

func TestGeneratorValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 0
	if _, err := New(cfg); err == nil {
		t.Error("accepted zero machines")
	}
	cfg = DefaultConfig()
	cfg.ZipfS = 1.0
	if _, err := New(cfg); err == nil {
		t.Error("accepted Zipf s = 1")
	}
	cfg = DefaultConfig()
	cfg.PatternMix = [numPatterns]float64{}
	if _, err := New(cfg); err == nil {
		t.Error("accepted zero pattern mix")
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Universe = UniverseConfig{Topics: 20, RootsPerTopic: 5, ChainDepth: 2, SynonymFrac: 0.5, Seed: 3}
	cfg.Machines = 50
	cfg.Seed = 99
	return cfg
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := New(testConfig())
	for i := 0; i < 200; i++ {
		a, b := g1.Session(), g2.Session()
		if a.Machine != b.Machine || a.Pattern != b.Pattern || len(a.Queries) != len(b.Queries) {
			t.Fatalf("session %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Queries {
			if a.Queries[j] != b.Queries[j] {
				t.Fatalf("session %d query %d: %q vs %q", i, j, a.Queries[j], b.Queries[j])
			}
		}
	}
}

func TestSessionPatternsMatchLabels(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	u := g.Universe()
	// strip removes injected universal noise queries from either end so the
	// pattern invariants can be checked on the intent core.
	strip := func(qs []string) []string {
		for len(qs) > 0 && u.IsUniversal(qs[0]) {
			qs = qs[1:]
		}
		for len(qs) > 0 && u.IsUniversal(qs[len(qs)-1]) {
			qs = qs[:len(qs)-1]
		}
		return qs
	}
	for i := 0; i < 2000; i++ {
		ls := g.Session()
		if len(ls.Queries) == 0 {
			t.Fatal("empty session")
		}
		qs := strip(ls.Queries)
		if len(qs) < 2 {
			continue
		}
		switch ls.Pattern {
		case PatSpelling:
			rel := u.Relate(qs[0], qs[1])
			if rel != RelSpelling {
				t.Fatalf("spelling session %v has relation %v", qs, rel)
			}
		case PatGeneralization:
			if u.IsGeneric(qs[0]) || u.IsGeneric(qs[1]) {
				continue
			}
			rel := u.Relate(qs[0], qs[1])
			if rel != RelGeneralize && qs[0] != qs[1] {
				t.Fatalf("generalization session %v has relation %v", qs, rel)
			}
		case PatSpecialization:
			for j := 1; j < len(qs); j++ {
				// Generic mid-nodes are shared across topics, so their
				// relation to this topic's queries is not well-defined.
				if u.IsGeneric(qs[j-1]) || u.IsGeneric(qs[j]) {
					continue
				}
				rel := u.Relate(qs[j-1], qs[j])
				// These sessions may open with a typo correction, and the
				// reconverging step onto the shared diamond node registers
				// as a same-topic move rather than a parent edge.
				if rel != RelSpecialize && rel != RelTopic && !(j == 1 && rel == RelSpelling) {
					t.Fatalf("specialization step %v has relation %v", qs, rel)
				}
			}
		case PatRepeated:
			found := false
			for j := 1; j < len(qs); j++ {
				if qs[j] == qs[j-1] {
					found = true
				}
			}
			if !found {
				t.Fatalf("repeated session %v has no adjacent repeat", qs)
			}
		}
	}
}

func TestPatternMixConvergesToConfig(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var counts [numPatterns]int
	for i := 0; i < n; i++ {
		counts[g.Session().Pattern]++
	}
	for p, want := range DefaultPatternMix {
		got := float64(counts[p]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("pattern %v frequency %.4f, want ~%.4f", Pattern(p), got, want)
		}
	}
}

func TestSessionLengthsShort(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	total, n := 0, 5000
	for i := 0; i < n; i++ {
		ls := g.Session()
		total += len(ls.Queries)
		if len(ls.Queries) > 8 {
			t.Fatalf("implausibly long session: %d queries", len(ls.Queries))
		}
	}
	mean := float64(total) / float64(n)
	if mean < 1.5 || mean > 3.5 {
		t.Fatalf("mean session length %.2f outside the paper's 2-3 band", mean)
	}
}

func TestRecordsExpansion(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ls := g.Session()
	recs := g.Records(ls)
	if len(recs) != len(ls.Queries) {
		t.Fatalf("records = %d, queries = %d", len(recs), len(ls.Queries))
	}
	for i, r := range recs {
		if r.MachineID != ls.Machine {
			t.Fatalf("record %d machine %q, want %q", i, r.MachineID, ls.Machine)
		}
		if r.Query != ls.Queries[i] {
			t.Fatalf("record %d query %q, want %q", i, r.Query, ls.Queries[i])
		}
		if i > 0 {
			gap := r.Time.Sub(recs[i-1].Time)
			if gap <= 0 || gap >= 30*time.Minute {
				t.Fatalf("intra-session gap %v violates segmentation invariant", gap)
			}
		}
		for _, c := range r.Clicks {
			if c.Time.Before(r.Time) {
				t.Fatalf("click before query: %v < %v", c.Time, r.Time)
			}
		}
	}
}

func TestGenerateRecordsEmitsAll(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []logfmt.Record
	sessions, err := g.GenerateRecords(100, func(r logfmt.Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range sessions {
		want += len(s.Queries)
	}
	if len(got) != want {
		t.Fatalf("emitted %d records, want %d", len(got), want)
	}
}

func TestQueryPopularityIsSkewed(t *testing.T) {
	g, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	total := 0
	for i := 0; i < 5000; i++ {
		for _, q := range g.Session().Queries {
			counts[q]++
			total++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Under a Zipf head, the most popular query should dwarf the mean.
	mean := float64(total) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Fatalf("popularity not skewed: max=%d mean=%.1f", max, mean)
	}
}

func TestLateTopicsAbsentFromTrainingPhase(t *testing.T) {
	cfg := testConfig()
	cfg.LateTopicEvery = 5
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late := map[int]bool{}
	for ti := range g.Universe().Topics {
		if ti%5 == 1 {
			late[ti] = true
		}
	}
	for i := 0; i < 3000; i++ {
		if ls := g.Session(); late[ls.Topic] {
			t.Fatalf("late topic %d emitted during training phase", ls.Topic)
		}
	}
	g.EnterTestPhase()
	seenLate := false
	for i := 0; i < 6000 && !seenLate; i++ {
		if late[g.Session().Topic] {
			seenLate = true
		}
	}
	if !seenLate {
		t.Fatal("late topics never emitted after EnterTestPhase")
	}
}

func TestNoiseInjectionRate(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseProb = 0.3
	cfg.Universe.Universals = 10
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Universe()
	const n = 8000
	noisy := 0
	for i := 0; i < n; i++ {
		ls := g.Session()
		if u.IsUniversal(ls.Queries[0]) || u.IsUniversal(ls.Queries[len(ls.Queries)-1]) {
			noisy++
		}
	}
	got := float64(noisy) / n
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("noise rate = %.3f, want ~0.30", got)
	}
}

func TestNoiseDisabledWithZeroUniversals(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseProb = 1.0
	cfg.Universe.Universals = 0
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := g.Universe()
	for i := 0; i < 500; i++ {
		for _, q := range g.Session().Queries {
			if u.IsUniversal(q) {
				t.Fatal("universal query emitted with empty pool")
			}
		}
	}
}

func TestUniversalQueriesRelatedToNothing(t *testing.T) {
	cfg := DefaultUniverseConfig()
	cfg.Topics = 10
	u, err := NewUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Universal) == 0 {
		t.Fatal("no universal queries generated")
	}
	root := u.Topics[0].Concepts[u.Topics[0].Roots[0]]
	for _, uq := range u.Universal {
		if !u.IsUniversal(uq) {
			t.Fatalf("IsUniversal(%q) = false", uq)
		}
		if u.Related(root.Query, uq) || u.Related(uq, root.Query) {
			t.Fatalf("universal %q related to topical query", uq)
		}
	}
}

func TestDiamondLatticeStructure(t *testing.T) {
	cfg := DefaultUniverseConfig()
	cfg.Topics = 8
	u, err := NewUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a root with the full diamond: two depth-1 children both pointing
	// to a shared depth-2 node with two depth-3 children.
	found := false
	for _, topic := range u.Topics {
		for _, ri := range topic.Roots {
			root := topic.Concepts[ri]
			if len(root.Children) < 2 {
				continue
			}
			c1a := topic.Concepts[root.Children[0]]
			c1b := topic.Concepts[root.Children[1]]
			if len(c1a.Children) == 0 || len(c1b.Children) == 0 {
				continue
			}
			if c1a.Children[0] != c1b.Children[0] {
				continue // not reconverging
			}
			m := topic.Concepts[c1a.Children[0]]
			if m.Depth != 2 || len(m.Children) < 2 {
				continue
			}
			found = true
			// Deep children are lineage of the root under the oracle.
			deep := topic.Concepts[m.Children[0]]
			if !u.Related(root.Query, deep.Query) {
				t.Fatalf("diamond leaf %q not lineage of root %q", deep.Query, root.Query)
			}
		}
	}
	if !found {
		t.Fatal("no complete diamond lattice found in universe")
	}
}

func TestGenericMidNodesShared(t *testing.T) {
	cfg := DefaultUniverseConfig()
	cfg.Topics = 40
	u, err := NewUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count how many topics use each generic string as a mid-node.
	uses := map[string]int{}
	for _, topic := range u.Topics {
		for _, c := range topic.Concepts {
			if c.Depth == 2 && u.IsGeneric(c.Query) {
				uses[c.Query]++
			}
		}
	}
	shared := 0
	for _, n := range uses {
		if n >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no generic query shared across topics — the ambiguity mechanism is dead")
	}
}

func TestRelatedRejectsTypoCandidates(t *testing.T) {
	u := smallUniverse(t)
	topic := u.Topics[0]
	root := topic.Concepts[topic.Roots[0]]
	if !u.Related(root.Typo, root.Query) {
		t.Fatal("typo -> canonical correction should be approved")
	}
	if u.Related(root.Query, root.Typo) {
		t.Fatal("recommending a misspelling should be rejected")
	}
}
