// Package obs is the serving-grade observability layer: lock-free log-linear
// latency histograms with bounded-error quantiles, pooled zero-allocation
// request traces with tail-sampled retention, and a Prometheus text
// exposition over both. Every primitive is safe for concurrent use from the
// serving hot path and allocates nothing per operation after warm-up.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout. Values below subCount land in a direct region of
// one bucket per value (exact). Above that, each power-of-two range
// [2^e, 2^(e+1)) is split into subCount equal sub-buckets, so a recorded
// value is attributed to a bucket whose width is at most value/subCount:
// quantiles read from bucket upper bounds over-report by at most
// 1/subCount = 3.125% and never under-report.
const (
	// subBits is log2 of the number of sub-buckets per power-of-two range.
	subBits = 5
	// subCount is the number of sub-buckets per power-of-two range (and the
	// width of the exact direct region for small values).
	subCount = 1 << subBits
	// maxExp is the largest power-of-two exponent a non-negative int64 value
	// can occupy (bits.Len64 of math.MaxInt64 is 63, so the top exponent
	// is 62).
	maxExp = 62
	// numBuckets is the total bucket count: the direct region plus one
	// subCount-wide block per exponent in [subBits, maxExp].
	numBuckets = (maxExp-subBits+1)*subCount + subCount
)

// Histogram is a fixed-size, lock-free log-linear histogram of non-negative
// int64 samples (the codebase records microseconds). Recording is a handful
// of atomic adds — no locks, no allocation — and histograms with the same
// layout merge by bucket-wise addition, which makes per-shard and per-arm
// instances aggregable. Quantiles are exact for values below subCount and
// over-report by at most 1/subCount above it.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1
	sub := (v >> (uint(exp) - subBits)) & (subCount - 1)
	return (exp-subBits+1)*subCount + int(sub)
}

// bucketUpper returns the largest value that maps to bucket idx; quantiles
// report this bound so they can only err high, never low.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	block := idx >> subBits
	sub := idx & (subCount - 1)
	exp := uint(block + subBits - 1)
	lo := int64(1)<<exp | int64(sub)<<(exp-subBits)
	return lo + int64(1)<<(exp-subBits) - 1
}

// Record adds one sample. Negative samples are clamped to zero so clock
// skew can never corrupt the bucket array. Safe for concurrent use and
// allocation-free.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded samples (post-clamp).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded sample, exact (not bucket-rounded).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// recorded samples: the upper edge of the bucket holding the ceil(q*count)-th
// smallest sample. It returns 0 when the histogram is empty. The bound is
// exact below subCount and within 1/subCount relative error above it, and it
// never under-reports — the truncation bias of index-into-sorted-samples
// estimators cannot occur here.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// Merge adds other's samples into h bucket-wise. Both histograms may be
// concurrently recorded into during the merge; the result is a consistent
// point-in-time superset of h plus some prefix of other's updates.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
	for i := range h.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}
