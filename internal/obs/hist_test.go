package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketIndexDirectRegion(t *testing.T) {
	for v := uint64(0); v < subCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if up := bucketUpper(int(v)); up != int64(v) {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<62 + 12345, math.MaxInt64}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range %d", v, idx, numBuckets)
		}
		up := bucketUpper(idx)
		if up < int64(v) {
			t.Fatalf("bucketUpper(%d)=%d below value %d", idx, up, v)
		}
		// Relative error bound: upper exceeds the value by < value/subCount
		// outside the direct region.
		if v >= subCount && float64(up-int64(v)) >= float64(v)/subCount {
			t.Fatalf("bucket width too wide at %d: upper %d", v, up)
		}
		prev = idx
	}
}

func TestBucketRoundTripExhaustiveEdges(t *testing.T) {
	// Every bucket's upper bound must map back into the same bucket, and
	// upper+1 into the next occupied bucket.
	for idx := 0; idx < numBuckets; idx++ {
		up := bucketUpper(idx)
		if got := bucketIndex(uint64(up)); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, up, got)
		}
		if up < math.MaxInt64 && idx+1 < numBuckets {
			if got := bucketIndex(uint64(up + 1)); got != idx+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", up+1, got, idx+1)
			}
		}
	}
}

func TestHistogramQuantileNeverUnderReports(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 800) // latency-shaped
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		exact := samples[rank]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q=%v under-reported: got %d, exact %d", q, got, exact)
		}
		bound := float64(exact) + float64(exact)/subCount + 1
		if float64(got) > bound {
			t.Fatalf("q=%v over bound: got %d, exact %d (bound %.1f)", q, got, exact, bound)
		}
	}
	if h.Max() != samples[len(samples)-1] {
		t.Fatalf("max: got %d want %d", h.Max(), samples[len(samples)-1])
	}
}

func TestHistogramQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	h.Record(7)
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-sample q=%v = %d, want 7", q, got)
		}
	}
	if h.Count() != 1 || h.Sum() != 7 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative sample not clamped: count=%d sum=%d q=%d", h.Count(), h.Sum(), h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		both.Record(i)
	}
	for i := int64(5000); i < 6000; i++ {
		b.Record(i)
		both.Record(i)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() {
		t.Fatalf("merge scalars: %d/%d/%d vs %d/%d/%d",
			a.Count(), a.Sum(), a.Max(), both.Count(), both.Sum(), both.Max())
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merge q=%v: %d vs %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
	a.Merge(nil) // must be a no-op
	if a.Count() != both.Count() {
		t.Fatalf("nil merge changed count")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
	}
	if cum != workers*per {
		t.Fatalf("bucket total = %d, want %d", cum, workers*per)
	}
}
