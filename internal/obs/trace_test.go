package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceIDsUniqueAndHex(t *testing.T) {
	tr := NewTracer(16, nil)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		x := tr.Start()
		id := string(x.idBuf[:]) // owned copy before recycling
		if len(id) != traceIDLen {
			t.Fatalf("id length %d", len(id))
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("non-hex id %q", id)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d traces", id, i)
		}
		seen[id] = true
		if x.ID() != id || x.HeaderValue()[0] != id {
			t.Fatalf("ID/HeaderValue disagree with buffer")
		}
		tr.Abandon(x)
	}
}

func TestTraceSetIDAdoptsInbound(t *testing.T) {
	tr := NewTracer(16, nil)
	x := tr.Start()
	x.SetID("0123456789abcdef")
	if x.ID() != "0123456789abcdef" {
		t.Fatalf("SetID not adopted: %q", x.ID())
	}
	before := x.ID()
	x.SetID("short") // wrong length: ignored
	if x.ID() != before {
		t.Fatalf("bad-length SetID mutated id")
	}
	tr.Abandon(x)
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	tr := NewTracer(16, nil)
	x := tr.Start()
	i := x.Begin("cache")
	x.End(i, "miss")
	j := x.Begin("descent")
	x.SetShard(j, 3)
	time.Sleep(2 * time.Millisecond)
	x.End(j, "ok")
	x.Event("breaker-skip", 1, "open")
	tr.Finish(x, false)

	views := tr.Snapshot(0, false, 0)
	if len(views) != 1 {
		t.Fatalf("snapshot size %d", len(views))
	}
	v := views[0]
	if len(v.Spans) != 3 {
		t.Fatalf("spans %d", len(v.Spans))
	}
	if v.Spans[0].Name != "cache" || v.Spans[0].Outcome != "miss" {
		t.Fatalf("span 0: %+v", v.Spans[0])
	}
	d := v.Spans[1]
	if d.Name != "descent" || d.Shard != 3 || d.Outcome != "ok" || d.DurMicros < 1500 {
		t.Fatalf("span 1: %+v", d)
	}
	if e := v.Spans[2]; e.Name != "breaker-skip" || e.Shard != 1 || e.DurMicros != 0 {
		t.Fatalf("event span: %+v", e)
	}
	if v.TotalMicros < d.StartMicros+d.DurMicros {
		t.Fatalf("total %d below span end %d", v.TotalMicros, d.StartMicros+d.DurMicros)
	}
	// Span end offsets can never exceed the finished total.
	for _, sp := range v.Spans {
		if sp.StartMicros+sp.DurMicros > v.TotalMicros {
			t.Fatalf("span %q overruns total: %+v vs %d", sp.Name, sp, v.TotalMicros)
		}
	}
}

func TestTraceSpanOverflowCounted(t *testing.T) {
	tr := NewTracer(16, nil)
	x := tr.Start()
	for k := 0; k < MaxSpans+5; k++ {
		i := x.Begin("s")
		x.End(i, "ok")
	}
	if x.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", x.Dropped)
	}
	tr.Finish(x, false)
	if v := tr.Snapshot(0, false, 0); len(v) != 1 || v[0].Dropped != 5 || len(v[0].Spans) != MaxSpans {
		t.Fatalf("overflow view: %+v", v)
	}
}

func TestTailSamplingRetainsErroredAndSlow(t *testing.T) {
	slow := &Histogram{}
	tr := NewTracer(16, slow)
	// Fill the ring (everything retained while not full), then establish a
	// low p99 threshold and verify fast-clean traces are dropped while
	// errored ones are retained.
	for i := 0; i < 16; i++ {
		tr.Finish(tr.Start(), false)
	}
	for i := 0; i < 300; i++ {
		slow.Record(10)
	}
	// Drive threshold refresh past the 256-finish boundary.
	for i := 0; i < 300; i++ {
		tr.Finish(tr.Start(), false)
	}
	if th := tr.SlowThresholdMicros(); th <= 0 || th > 1000 {
		t.Fatalf("threshold = %d, want small positive", th)
	}
	errTrace := tr.Start()
	tr.Finish(errTrace, true)
	views := tr.Snapshot(0, true, 0)
	if len(views) != 1 || !views[0].Err {
		t.Fatalf("errored trace not retained: %+v", views)
	}
	forced := tr.Start()
	forced.Force()
	id := string(forced.idBuf[:])
	tr.Finish(forced, false)
	found := false
	for _, v := range tr.Snapshot(0, false, 0) {
		if v.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("forced trace not retained")
	}
}

func TestSnapshotFilters(t *testing.T) {
	tr := NewTracer(16, nil)
	a := tr.Start()
	time.Sleep(3 * time.Millisecond)
	tr.Finish(a, false)
	b := tr.Start()
	tr.Finish(b, true)
	if got := tr.Snapshot(2000, false, 0); len(got) != 1 || got[0].TotalMicros < 2000 {
		t.Fatalf("min_us filter: %+v", got)
	}
	if got := tr.Snapshot(0, true, 0); len(got) != 1 || !got[0].Err {
		t.Fatalf("error filter: %+v", got)
	}
	if got := tr.Snapshot(0, false, 1); len(got) != 1 {
		t.Fatalf("limit: %+v", got)
	}
	// Newest first.
	if got := tr.Snapshot(0, false, 0); len(got) != 2 || !got[0].Err || got[1].Err {
		t.Fatalf("ordering: %+v", got)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(16, nil)
	x := tr.Start()
	ctx := ContextWithTrace(context.Background(), x)
	if got := TraceFromContext(ctx); got != x {
		t.Fatalf("trace not carried")
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatalf("empty context returned %v", got)
	}
	tr.Abandon(x)
}

func TestTracerConcurrentFinishSnapshot(t *testing.T) {
	slow := &Histogram{}
	tr := NewTracer(64, slow)
	var producers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		producers.Add(1)
		go func() {
			defer producers.Done()
			for i := 0; i < 2000; i++ {
				x := tr.Start()
				s := x.Begin("stage")
				x.End(s, "ok")
				slow.Record(5)
				tr.Finish(x, i%17 == 0)
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot(0, false, 10)
			}
		}
	}()
	producers.Wait()
	close(stop)
	readers.Wait()
}
