package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_us")
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	h.Record(1 << 22)
	r.Counter("test_requests_total").Add(41)
	r.Counter("test_requests_total").Inc()
	r.CounterFunc("test_errors_total", func() uint64 { return 7 })
	r.GaugeFunc("test_weight", func() float64 { return 0.25 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	fams, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}

	lat := fams["test_latency_us"]
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("latency family missing or wrong type: %+v", lat)
	}
	var infCount, count, sum float64
	var prev float64 = -1
	for _, s := range lat.Samples {
		switch {
		case s.Name == "test_latency_us_bucket":
			if s.Value < prev {
				t.Fatalf("bucket counts not cumulative: le=%s %v after %v", s.Le, s.Value, prev)
			}
			prev = s.Value
			if s.Le == "+Inf" {
				infCount = s.Value
			} else if le, err := strconv.ParseFloat(s.Le, 64); err != nil {
				t.Fatalf("bad le %q: %v", s.Le, err)
			} else if math.Log2(le) != math.Trunc(math.Log2(le)) {
				t.Fatalf("le %q not a power of two", s.Le)
			}
		case s.Name == "test_latency_us_count":
			count = s.Value
		case s.Name == "test_latency_us_sum":
			sum = s.Value
		}
	}
	if count != 1001 || infCount != 1001 {
		t.Fatalf("count=%v +Inf=%v, want 1001", count, infCount)
	}
	if want := float64(1000*1001/2 + 1<<22); sum != want {
		t.Fatalf("sum=%v want %v", sum, want)
	}

	if f := fams["test_requests_total"]; f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("requests counter: %+v", f)
	}
	if f := fams["test_errors_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 7 {
		t.Fatalf("errors counterfunc: %+v", f)
	}
	if f := fams["test_weight"]; f == nil || f.Type != "gauge" || f.Samples[0].Value != 0.25 {
		t.Fatalf("weight gauge: %+v", f)
	}
}

func TestPrometheusBucketBoundaryConservative(t *testing.T) {
	// Coarsening attributes each internal bucket to the smallest power-of-two
	// boundary >= its UPPER bound. A sample exactly at a power of two sits in
	// an internal bucket whose upper bound is just past it (64 lands in
	// [64,65]), so it coarsens into le=128 — quantiles read from the
	// exposition err high, never low, matching Histogram.Quantile.
	r := NewRegistry()
	h := r.Histogram("edge_us")
	h.Record(63) // internal bucket [63,63] -> le=64
	h.Record(64) // internal bucket [64,65] -> le=128
	h.Record(65) // internal bucket [64,65] -> le=128
	out := r.AppendPrometheus(nil)
	fams, err := ParsePrometheus(out)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := map[string]float64{}
	for _, s := range fams["edge_us"].Samples {
		if s.Name == "edge_us_bucket" {
			got[s.Le] = s.Value
		}
	}
	if got["64"] != 1 {
		t.Fatalf("le=64 holds %v, want 1 (the 63 sample)", got["64"])
	}
	if got["128"] != 3 {
		t.Fatalf("le=128 holds %v, want 3 (cumulative)", got["128"])
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b_us").Record(1)
	r.Histogram("a_us").Record(1)
	r.Counter("z_total").Inc()
	r.Counter("a_total").Inc()
	one := string(r.AppendPrometheus(nil))
	two := string(r.AppendPrometheus(nil))
	if one != two {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", one, two)
	}
	if strings.Index(one, "a_us") > strings.Index(one, "b_us") {
		t.Fatalf("histograms not name-sorted:\n%s", one)
	}
	if strings.Index(one, "a_total") > strings.Index(one, "z_total") {
		t.Fatalf("counters not name-sorted:\n%s", one)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	cases := []string{
		"no_type_line 5\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx{le=\"1\" 5\n",
	}
	for _, c := range cases {
		if _, err := ParsePrometheus([]byte(c)); err == nil {
			t.Fatalf("parse accepted %q", c)
		}
	}
}
