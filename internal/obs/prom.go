package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promBounds is the number of finite `le` boundaries in the exposition:
// powers of two from 2^0 through 2^30 microseconds (~17.9 minutes), after
// which samples fall into +Inf. Each internal bucket is attributed to the
// smallest boundary >= its upper bound, so coarsening is conservative:
// cumulative counts at a boundary may omit samples sitting exactly on it,
// which means quantiles read from the exposition err high, never low —
// the same direction as Histogram.Quantile.
const promBounds = 31

// AppendPrometheus appends the Prometheus text exposition (version 0.0.4)
// of every registered instrument to dst and returns the extended slice.
// Families render in sorted name order so output is deterministic for a
// fixed set of values. Histograms coarsen to power-of-two `le` boundaries;
// counters and gauges render as single samples.
func (r *Registry) AppendPrometheus(dst []byte) []byte {
	counters, gauges := r.scalarSnapshot()
	for _, c := range counters {
		dst = append(dst, "# TYPE "...)
		dst = append(dst, c.name...)
		dst = append(dst, " counter\n"...)
		dst = append(dst, c.name...)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, c.u, 10)
		dst = append(dst, '\n')
	}
	for _, g := range gauges {
		dst = append(dst, "# TYPE "...)
		dst = append(dst, g.name...)
		dst = append(dst, " gauge\n"...)
		dst = append(dst, g.name...)
		dst = append(dst, ' ')
		dst = strconv.AppendFloat(dst, g.f, 'g', -1, 64)
		dst = append(dst, '\n')
	}
	names, hists := r.histSnapshot()
	for i, name := range names {
		dst = appendPromHistogram(dst, name, hists[i])
	}
	return dst
}

// WritePrometheus renders the exposition to w in one write.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := w.Write(r.AppendPrometheus(nil))
	return err
}

// appendPromHistogram renders one histogram family: cumulative _bucket
// lines at power-of-two boundaries plus _sum and _count. The +Inf bucket
// and _count are both derived from the same bucket traversal so the family
// is internally consistent even under concurrent recording.
func appendPromHistogram(dst []byte, name string, h *Histogram) []byte {
	var coarse [promBounds + 1]uint64 // last slot is +Inf
	var total uint64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		total += n
		upper := bucketUpper(i)
		slot := promBounds
		for k := 0; k < promBounds; k++ {
			if upper <= int64(1)<<uint(k) {
				slot = k
				break
			}
		}
		coarse[slot] += n
	}
	dst = append(dst, "# TYPE "...)
	dst = append(dst, name...)
	dst = append(dst, " histogram\n"...)
	var cum uint64
	for k := 0; k < promBounds; k++ {
		cum += coarse[k]
		dst = append(dst, name...)
		dst = append(dst, `_bucket{le="`...)
		dst = strconv.AppendUint(dst, 1<<uint(k), 10)
		dst = append(dst, `"} `...)
		dst = strconv.AppendUint(dst, cum, 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, name...)
	dst = append(dst, `_bucket{le="+Inf"} `...)
	dst = strconv.AppendUint(dst, total, 10)
	dst = append(dst, '\n')
	dst = append(dst, name...)
	dst = append(dst, "_sum "...)
	dst = strconv.AppendInt(dst, h.Sum(), 10)
	dst = append(dst, '\n')
	dst = append(dst, name...)
	dst = append(dst, "_count "...)
	dst = strconv.AppendUint(dst, total, 10)
	dst = append(dst, '\n')
	return dst
}

// PromSample is one parsed sample line of a Prometheus exposition.
type PromSample struct {
	// Name is the full sample name including any _bucket/_sum/_count suffix.
	Name string
	// Le is the value of the `le` label for histogram bucket samples,
	// empty otherwise.
	Le string
	// Value is the sample value.
	Value float64
}

// PromFamily is one parsed metric family: its declared TYPE and its samples
// in file order.
type PromFamily struct {
	// Type is the declared metric type: "counter", "gauge" or "histogram".
	Type string
	// Samples holds the family's sample lines in exposition order.
	Samples []PromSample
}

// ParsePrometheus parses a Prometheus text exposition (the subset this
// package emits: TYPE comments, optional single `le` label, float values)
// into families keyed by base metric name. Histogram _bucket/_sum/_count
// samples attach to their base family. It exists so tests can round-trip
// the exposition instead of string-matching it.
func ParsePrometheus(data []byte) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				fams[fields[2]] = &PromFamily{Type: fields[3]}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("prom parse: line %d: no value separator in %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("prom parse: line %d: bad value: %v", ln+1, err)
		}
		nameAndLabels := line[:sp]
		var s PromSample
		if br := strings.IndexByte(nameAndLabels, '{'); br >= 0 {
			s.Name = nameAndLabels[:br]
			labels := nameAndLabels[br:]
			if !strings.HasSuffix(labels, "}") {
				return nil, fmt.Errorf("prom parse: line %d: unterminated labels in %q", ln+1, line)
			}
			inner := labels[1 : len(labels)-1]
			const lePrefix = `le="`
			if !strings.HasPrefix(inner, lePrefix) || !strings.HasSuffix(inner, `"`) {
				return nil, fmt.Errorf("prom parse: line %d: unsupported labels %q", ln+1, inner)
			}
			s.Le = inner[len(lePrefix) : len(inner)-1]
		} else {
			s.Name = nameAndLabels
		}
		s.Value = val
		fam := fams[familyName(fams, s.Name)]
		if fam == nil {
			return nil, fmt.Errorf("prom parse: line %d: sample %q has no TYPE declaration", ln+1, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	return fams, nil
}

// familyName resolves a sample name to its declared family, stripping
// histogram suffixes when the base name is a registered histogram family.
func familyName(fams map[string]*PromFamily, sample string) string {
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if f := fams[base]; f != nil && f.Type == "histogram" {
			return base
		}
	}
	return sample
}
