package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter registered with a
// Registry for Prometheus exposition.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current counter value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry is a named collection of histograms, counters and read-through
// metric functions. Lookups are get-or-create and idempotent by name, so
// independently wired subsystems (the HTTP handler, the ingest loop, the
// shard router) sharing one Registry converge on the same underlying
// instruments. All methods are safe for concurrent use; instrument handles
// obtained from a Registry are used lock-free afterwards.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]*Counter
	cfuncs   map[string]func() uint64
	gfuncs   map[string]func() float64
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: make(map[string]*Counter),
		cfuncs:   make(map[string]func() uint64),
		gfuncs:   make(map[string]func() float64),
	}
}

// Histogram returns the histogram registered under name, creating it on
// first use. The returned pointer is stable for the life of the Registry.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterHistogram adopts an externally owned histogram under name so it
// appears in the exposition (per-arm and per-shard histograms are embedded
// in their owners' structs, not allocated by the registry). Re-registering
// a name replaces the previous instrument.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// Counter returns the counter registered under name, creating it on first
// use. The returned pointer is stable for the life of the Registry.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterFunc registers fn as a counter read at exposition time. It lets
// pre-existing atomic counters (request totals, error totals) surface in
// the Prometheus output without double-counting into a second variable.
// Re-registering a name replaces the previous function.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfuncs[name] = fn
}

// GaugeFunc registers fn as a gauge read at exposition time (heap size,
// ring occupancy, current weight — values that move both ways).
// Re-registering a name replaces the previous function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfuncs[name] = fn
}

// histSnapshot returns name-sorted histogram instruments for rendering.
func (r *Registry) histSnapshot() ([]string, []*Histogram) {
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	hs := make([]*Histogram, len(names))
	for i, n := range names {
		hs[i] = r.hists[n]
	}
	r.mu.Unlock()
	return names, hs
}

// scalarSample is one rendered counter or gauge value.
type scalarSample struct {
	name string
	u    uint64
	f    float64
}

// scalarSnapshot returns name-sorted counter and gauge samples, folding
// Counter instruments and CounterFuncs into one counter namespace.
func (r *Registry) scalarSnapshot() (counters, gauges []scalarSample) {
	r.mu.Lock()
	for n, c := range r.counters {
		counters = append(counters, scalarSample{name: n, u: c.Value()})
	}
	for n, fn := range r.cfuncs {
		counters = append(counters, scalarSample{name: n, u: fn()})
	}
	for n, fn := range r.gfuncs {
		gauges = append(gauges, scalarSample{name: n, f: fn()})
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	return counters, gauges
}
