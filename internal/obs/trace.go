package obs

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// MaxSpans is the fixed per-trace span capacity. A hedged, failed-over
// request across an 8-replica preference list plus per-stage serving spans
// fits comfortably; once full, further Begin calls are counted in Dropped
// and otherwise ignored, never reallocated.
const MaxSpans = 48

// NoShard marks a span that is not attributed to any shard or step index.
const NoShard = -1

// traceIDLen is the length of the hex trace ID carried in X-Trace-Id.
const traceIDLen = 16

// Span is one timed operation inside a Trace. All fields are offsets and
// static strings so a retained trace holds no references into request
// state.
type Span struct {
	// Name is the static stage name ("cache", "descent", "shard", ...).
	Name string
	// StartMicros is the span start as microseconds since the trace start.
	StartMicros int64
	// DurMicros is the span duration in microseconds; zero for point events
	// and for spans still open when the trace finished.
	DurMicros int64
	// Shard is the shard or step index the span is attributed to, or
	// NoShard.
	Shard int
	// Outcome is the static result label ("ok", "error", "hedge-won",
	// "breaker-skip", "cancelled", ...); empty while the span is open.
	Outcome string
}

// Trace is a pooled, fixed-size span recorder for one request (or one
// ingest step / ramp transition). All mutating methods MUST be called from
// a single goroutine — the request goroutine — which is what makes the
// recorder lock-free; concurrent shard attempts report their outcomes back
// over the request goroutine's result channel and are recorded there. The
// trace ID lives in a pool-owned buffer whose header slice is built once,
// so propagating it via HTTP headers allocates nothing.
type Trace struct {
	tracer *Tracer
	start  time.Time
	// idBuf backs the trace ID; hv aliases it via unsafe.String, built once
	// when the Trace is allocated. Regenerating the ID rewrites idBuf in
	// place, so callers must treat HeaderValue/ID as valid only until the
	// trace is recycled.
	idBuf [traceIDLen]byte
	hv    [1]string

	spans [MaxSpans]Span
	n     int
	// Dropped counts Begin calls rejected because the span array was full.
	Dropped int

	total  int64
	err    bool
	forced bool
}

// newTrace allocates a Trace with its aliased header value wired up.
func newTrace(t *Tracer) *Trace {
	tr := &Trace{tracer: t}
	tr.hv[0] = unsafe.String(&tr.idBuf[0], traceIDLen)
	return tr
}

// ID returns the 16-hex-character trace ID. The string aliases pooled
// storage: it is stable until the trace is finished or abandoned.
func (tr *Trace) ID() string { return tr.hv[0] }

// HeaderValue returns a single-element header value slice carrying the
// trace ID, suitable for direct assignment into an http.Header without
// allocating. The same aliasing caveat as ID applies.
func (tr *Trace) HeaderValue() []string { return tr.hv[:] }

// SetID adopts an inbound trace ID (from X-Trace-Id) by copying it into
// the pooled buffer. IDs that are not exactly 16 bytes are ignored and the
// generated ID is kept.
func (tr *Trace) SetID(id string) {
	if len(id) == traceIDLen {
		copy(tr.idBuf[:], id)
	}
}

// Start returns the wall-clock instant the trace began.
func (tr *Trace) Start() time.Time { return tr.start }

// Begin opens a span and returns its index for the matching End call.
// It returns NoShard when the span array is full; End and SetShard accept
// that sentinel and do nothing.
func (tr *Trace) Begin(name string) int {
	if tr.n >= MaxSpans {
		tr.Dropped++
		return NoShard
	}
	i := tr.n
	tr.n++
	tr.spans[i] = Span{
		Name:        name,
		StartMicros: time.Since(tr.start).Microseconds(),
		Shard:       NoShard,
	}
	return i
}

// SetShard attributes the span at index i to a shard (or step) index.
func (tr *Trace) SetShard(i, shard int) {
	if i >= 0 && i < tr.n {
		tr.spans[i].Shard = shard
	}
}

// End closes the span at index i with a static outcome label.
func (tr *Trace) End(i int, outcome string) {
	if i < 0 || i >= tr.n {
		return
	}
	sp := &tr.spans[i]
	sp.DurMicros = time.Since(tr.start).Microseconds() - sp.StartMicros
	sp.Outcome = outcome
}

// Outcome returns the recorded outcome of span i, or "" if out of range.
// It lets the request goroutine check whether an attempt span was already
// closed without re-deriving attempt state.
func (tr *Trace) Outcome(i int) string {
	if i < 0 || i >= tr.n {
		return ""
	}
	return tr.spans[i].Outcome
}

// Record appends a fully-formed closed span. It is the retroactive twin of
// Begin/End, used when a stage's name or outcome is only known after the
// timed interval completes (cache hit vs predict-descent miss share one
// measurement).
func (tr *Trace) Record(name string, startMicros, durMicros int64, shard int, outcome string) {
	if tr.n >= MaxSpans {
		tr.Dropped++
		return
	}
	tr.spans[tr.n] = Span{
		Name:        name,
		StartMicros: startMicros,
		DurMicros:   durMicros,
		Shard:       shard,
		Outcome:     outcome,
	}
	tr.n++
}

// Event records a closed zero-duration span (a point annotation such as a
// breaker skip) attributed to shard with the given outcome.
func (tr *Trace) Event(name string, shard int, outcome string) {
	i := tr.Begin(name)
	if i >= 0 {
		tr.spans[i].Shard = shard
		tr.spans[i].Outcome = outcome
	}
}

// Force marks the trace for retention regardless of latency or error
// status (used for ingest steps and ramp transitions, which are rare and
// always interesting).
func (tr *Trace) Force() { tr.forced = true }

// Err marks the trace as errored; Finish also accepts the flag directly.
func (tr *Trace) Err() { tr.err = true }

// Tracer hands out pooled Traces and tail-samples completed ones into a
// fixed retention ring. Retention keeps every errored or forced trace and
// every trace slower than the cached p99 of the slow-source histogram
// (refreshed every 256 finishes so the hot path never scans buckets);
// while the ring is not yet full every trace is retained, so fresh
// processes are immediately inspectable.
type Tracer struct {
	pool sync.Pool
	slow *Histogram

	seq      atomic.Uint64
	seed     uint64
	finishes atomic.Uint64
	thresh   atomic.Int64

	mu   sync.Mutex
	ring []*Trace
	next int
	size int
}

// NewTracer returns a Tracer retaining up to capacity completed traces
// (clamped to at least 16). slow, if non-nil, is the histogram whose p99
// defines "slow" for tail sampling — typically the overall request-latency
// histogram.
func NewTracer(capacity int, slow *Histogram) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	t := &Tracer{
		slow: slow,
		ring: make([]*Trace, capacity),
		seed: uint64(time.Now().UnixNano()),
	}
	t.thresh.Store(math.MaxInt64)
	t.pool.New = func() any { return newTrace(t) }
	return t
}

// hexDigits encodes trace IDs.
const hexDigits = "0123456789abcdef"

// mix64 is a splitmix64-style finalizer over the sequence counter; IDs are
// unique per tracer and well spread without math/rand or allocation.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Start returns a reset Trace with a fresh ID. The caller must eventually
// hand it back via Finish or Abandon.
func (t *Tracer) Start() *Trace {
	tr := t.pool.Get().(*Trace)
	tr.start = time.Now()
	tr.n = 0
	tr.Dropped = 0
	tr.total = 0
	tr.err = false
	tr.forced = false
	id := mix64(t.seed + t.seq.Add(1))
	for i := 0; i < traceIDLen; i++ {
		tr.idBuf[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return tr
}

// Finish stamps the trace's total duration, applies the tail-sampling
// decision and either retains the trace in the ring (recycling whatever it
// evicts) or returns it to the pool. The caller must not touch tr
// afterwards.
func (t *Tracer) Finish(tr *Trace, errored bool) {
	tr.total = time.Since(tr.start).Microseconds()
	if errored {
		tr.err = true
	}
	if t.slow != nil && t.finishes.Add(1)&255 == 0 {
		if p99 := t.slow.Quantile(0.99); p99 > 0 {
			t.thresh.Store(p99)
		}
	}
	t.mu.Lock()
	retain := tr.err || tr.forced || tr.total >= t.thresh.Load() || t.size < len(t.ring)
	if !retain {
		t.mu.Unlock()
		t.pool.Put(tr)
		return
	}
	evicted := t.ring[t.next]
	t.ring[t.next] = tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()
	if evicted != nil {
		t.pool.Put(evicted)
	}
}

// Abandon returns a started trace to the pool without retaining it (an
// ingest step that read nothing, for example). The caller must not touch
// tr afterwards.
func (t *Tracer) Abandon(tr *Trace) { t.pool.Put(tr) }

// SlowThresholdMicros returns the current tail-sampling latency threshold
// (math.MaxInt64 until the slow-source histogram has enough data).
func (t *Tracer) SlowThresholdMicros() int64 { return t.thresh.Load() }

// SpanView is a copied, immutable span for rendering a retained trace.
type SpanView struct {
	// Name is the stage name.
	Name string `json:"name"`
	// StartMicros is the start offset from the trace start in microseconds.
	StartMicros int64 `json:"start_us"`
	// DurMicros is the span duration in microseconds.
	DurMicros int64 `json:"dur_us"`
	// Shard is the attributed shard/step index, or NoShard.
	Shard int `json:"shard"`
	// Outcome is the span's result label.
	Outcome string `json:"outcome"`
}

// TraceView is a copied, immutable retained trace for rendering; it shares
// no storage with the pooled Trace it was copied from.
type TraceView struct {
	// ID is the 16-hex-character trace ID.
	ID string `json:"id"`
	// TotalMicros is the end-to-end duration in microseconds.
	TotalMicros int64 `json:"total_us"`
	// Err reports whether the request errored or panicked.
	Err bool `json:"error"`
	// Dropped counts spans rejected because the recorder was full.
	Dropped int `json:"dropped,omitempty"`
	// Spans holds the recorded spans in Begin order.
	Spans []SpanView `json:"spans"`
}

// Snapshot copies retained traces, newest first, filtered to those with
// TotalMicros >= minMicros and (when onlyErrors is set) an error flag. At
// most limit traces are returned; limit <= 0 means no cap.
func (t *Tracer) Snapshot(minMicros int64, onlyErrors bool, limit int) []TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceView, 0, t.size)
	for k := 0; k < t.size; k++ {
		idx := t.next - 1 - k
		for idx < 0 {
			idx += len(t.ring)
		}
		tr := t.ring[idx]
		if tr == nil || tr.total < minMicros || (onlyErrors && !tr.err) {
			continue
		}
		tv := TraceView{
			// Copy the ID out of pooled storage: string(...) of the byte
			// array makes an owned copy.
			ID:          string(tr.idBuf[:]),
			TotalMicros: tr.total,
			Err:         tr.err,
			Dropped:     tr.Dropped,
			Spans:       make([]SpanView, tr.n),
		}
		for i := 0; i < tr.n; i++ {
			sp := &tr.spans[i]
			tv.Spans[i] = SpanView{
				Name:        sp.Name,
				StartMicros: sp.StartMicros,
				DurMicros:   sp.DurMicros,
				Shard:       sp.Shard,
				Outcome:     sp.Outcome,
			}
		}
		out = append(out, tv)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// traceKey keys the context value carrying a *Trace across layer
// boundaries (router to transport).
type traceKey struct{}

// ContextWithTrace returns a context carrying tr so transports can
// propagate its ID to downstream shards. This is the one deliberate
// allocation on the fan-out path; the shard-local serving path never calls
// it.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// headerKey keys the context value carrying a pre-cloned X-Trace-Id header
// value (see ContextWithTraceHeader).
type headerKey struct{}

// ContextWithTraceHeader returns a context carrying hv, a single-element
// X-Trace-Id header value. Unlike Trace.HeaderValue, hv must be built from
// an owned copy of the ID (strings.Clone) by the caller: hedge losers and
// drained failover attempts can still be inside a transport after the
// originating trace has been finished and recycled, so the propagated value
// must not alias pooled trace storage.
func ContextWithTraceHeader(ctx context.Context, hv []string) context.Context {
	return context.WithValue(ctx, headerKey{}, hv)
}

// TraceHeaderFromContext returns the propagated X-Trace-Id header value, or
// nil when the context carries none.
func TraceHeaderFromContext(ctx context.Context) []string {
	hv, _ := ctx.Value(headerKey{}).([]string)
	return hv
}
