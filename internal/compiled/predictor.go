package compiled

import (
	"repro/internal/model"
	"repro/internal/query"
)

// Stable family identifiers reported by Shape.Family and used as the
// `-arms family=path` syntax in cmd/serve, the `/v1/models` payload and the
// X-Serve-Arm response header. They are part of the serving API: renaming
// one is a breaking change for fleet operators.
const (
	FamilyMVMM         = "mvmm"         // compiled mixture-of-VMMs trie (this package)
	FamilyHMM          = "hmm"          // hidden Markov model (internal/hmm)
	FamilyCluster      = "cluster"      // cluster-conditioned popularity (internal/cluster)
	FamilyAdjacency    = "adjacency"    // pairwise adjacency baseline (internal/pairwise)
	FamilyCooccurrence = "cooccurrence" // pairwise co-occurrence baseline (internal/pairwise)
)

// Shape describes a Predictor's serving-relevant geometry: which paper model
// family it belongs to, how big it is, and whether its hot path honours the
// zero-allocation contract. It is surfaced through /v1/models so operators
// can see what each fleet arm actually is.
type Shape struct {
	// Family is the stable family identifier (one of the Family* constants).
	Family string
	// Label is the human-readable display name, e.g. "MVMM" or
	// "HMM (16 states)" — the table row label in the paper's terms.
	Label string
	// Vocab is the query vocabulary size the model was trained over.
	Vocab int
	// States counts the model's conditioning states: trie nodes for the
	// compiled mixture, hidden states for the HMM, clusters for the
	// cluster model, adjacency sources for the pairwise baselines.
	States int
	// Depth is the longest context suffix the model conditions on;
	// 0 means the model consumes the entire context (the HMM forward
	// pass has no fixed horizon).
	Depth int
	// Quantised reports fixed-point (CPS4-style) probability storage.
	Quantised bool
	// ZeroAlloc reports that PredictInto performs no per-call heap
	// allocations in steady state (scratch is pooled or caller-supplied).
	// Arms advertising it are benchmark-gated in CI.
	ZeroAlloc bool
}

// Predictor is the single serving seam every model family implements: one
// ranked-prediction primitive, one probability query, one shape descriptor.
// The serving stack (core.Recommender, cache, fleet, serve) is expressed
// entirely over this interface, so wiring a new paper model into the fleet
// means implementing these three methods and nothing else.
//
// Contract:
//
//   - PredictInto appends up to topN ranked predictions for ctx to dst and
//     returns the extended slice; dst is the caller's scratch and may be a
//     recycled buffer (pass dst[:0] to reuse). Implementations must not
//     retain ctx or dst. An empty, uncovered or unknown context appends
//     nothing. Scores are descending, comparable within one call only.
//   - Prob estimates P̂(q | ctx), 0 for uncovered contexts.
//   - Implementations must be immutable after construction: both methods
//     are safe for unbounded concurrent callers without locking.
//   - A Shape with ZeroAlloc set promises PredictInto allocates nothing in
//     steady state when dst has capacity; internal scratch must be pooled.
type Predictor interface {
	PredictInto(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction
	Prob(ctx query.Seq, q query.ID) float64
	Shape() Shape
}

// PredictInto implements Predictor for the compiled trie: it is
// AppendPredictions under the interface's name, one trie descent with pooled
// scratch and zero steady-state allocations.
func (c *Model) PredictInto(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction {
	return c.AppendPredictions(dst, ctx, topN)
}

// Shape reports the compiled model's family and geometry.
func (c *Model) Shape() Shape {
	return Shape{
		Family:    FamilyMVMM,
		Label:     c.Name(),
		Vocab:     c.Vocab(),
		States:    c.Nodes(),
		Depth:     c.Depth(),
		Quantised: c.Quantised(),
		ZeroAlloc: true,
	}
}

var _ Predictor = (*Model)(nil)
