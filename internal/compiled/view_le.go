//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

// Zero-copy CPS3 array views for little-endian platforms: the on-disk and
// in-memory representations coincide, so a flat blob's arrays are aliased
// with unsafe.Slice instead of decoded. Big-endian (or otherwise excluded)
// platforms build view_portable.go and always take the decode-copy path.

package compiled

import "unsafe"

// canZeroCopy reports whether blobs may be viewed in place: the platform
// qualifies and the blob base is 8-byte aligned (mmap'd data always is;
// heap slices practically always are, but the layout cannot assume it).
func canZeroCopy(data []byte) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 == 0
}

func viewU16(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/2)
}

func viewF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func viewI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func viewU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func viewU64(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

func viewF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}
