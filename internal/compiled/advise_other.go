//go:build !linux

package compiled

import "errors"

// errAdviceUnsupported reports that this platform exposes no madvise/mlock —
// the hints degrade to plain demand paging.
var errAdviceUnsupported = errors.New("unsupported on this platform")

func madviseWillNeed([]byte) error { return errAdviceUnsupported }

func mlockRange([]byte) error { return errAdviceUnsupported }
