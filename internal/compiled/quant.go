package compiled

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"repro/internal/store"
)

// Quantised flat (CPS4) encoding — the footprint-optimised sibling of CPS3.
//
// The paper's Table VII argues the merged single-PST stays small enough to
// deploy; CPS4 makes the serving blob itself small. It keeps CPS3's
// contract — fixed-width little-endian arrays at 8-byte-aligned offsets, so
// the blob is mmap-able and zero-copy on little-endian platforms — but
// stores follower probabilities as fixed-point uint16 against a per-node
// step instead of float64, and narrows every per-node array to the width
// the data actually needs:
//
//   - smoothed probabilities: p ≈ qstep[v]·q with q = round(p/qstep[v]),
//     qstep[v] = maxP(v)/65535 stored as float32. The dequantisation
//     p̂ = float64(qstep)·float64(q) is exact IEEE arithmetic, so encode →
//     decode → re-encode is byte-stable and every platform reads identical
//     probabilities. The absolute error per node is bounded by qstep[v]/2
//     (≤ 1/131070 ≈ 7.7e-6), and since mixture weights and escape chains
//     multiply to ≤ 1, a candidate's final score is within that same bound
//     of the float64 CPS3 score. Quantisation is monotone per node, so
//     follower order within a node is preserved; only cross-candidate
//     near-ties (scores within the bound) may swap rank — the parity test
//     in quant_test.go enforces exactly that.
//   - the ranked (TopN candidate-pool) view: uint16 indices into the node's
//     ID-sorted follower range instead of repeating the uint32 IDs.
//   - unobserved-follower floors: float32 (relative error 2^-24, far below
//     the quantisation bound).
//   - component presence bitmasks: uint16 when the mixture has <= 16
//     components (the paper's has 11), uint64 otherwise.
//   - escape-window occurrence counts: uint32 when every count fits (any
//     realistic log), uint64 otherwise.
//
// Raw follower counts and float64 probabilities are not stored: a model
// loaded from CPS4 serves with bounded error and cannot be re-encoded to
// the exact CPS1/CPS3 layouts (core.SaveAs recompiles from the interpreted
// mixture when asked for those). On the benchmark serving model the CPS4
// blob is ~46% smaller than CPS3 (gated in BENCH_serving.json).
//
// Layout (all integers little-endian):
//
//	  0  "CPS4" magic
//	  4  uint32 layout version (1)
//	  8  uint64 blob length (including this header)
//	 16  uint32 k, uint32 vocab
//	 24  uint32 depth, uint32 node count n (root included)
//	 32  uint64 edge count, uint64 follower count
//	 48  uint32 CRC-32 (IEEE) of blob[64:]
//	 52  uint8 evidence element width (2 or 8)
//	 53  uint8 occurrence element width (4 or 8)
//	 54  10 reserved zero bytes
//	 64  array table: 13 x { uint64 byte offset, uint64 element count }
//	272  the arrays, each 8-byte aligned
//
// As with CPS3, ViewCopy loads verify the CRC; ViewAuto zero-copy loads
// skip it (checksumming would fault in every page) and rely on structural
// validation plus defensive clamping in the descent and candidate pooling —
// a corrupted payload can misrank but cannot panic or index out of bounds.
const (
	quantMagic       = "CPS4"
	quantVersion     = 1
	quantArrayCount  = 13
	quantArraysStart = flatHeaderSize + quantArrayCount*16 // 272, 8-byte aligned
)

// Array-table indices of the CPS4 layout, in on-disk order.
const (
	qaSigma = iota
	qaMaxLen
	qaChildStart
	qaChildKey
	qaEvidence
	qaOcc
	qaStartOcc
	qaFloor
	qaStep
	qaFolStart
	qaFolID
	qaFolQ
	qaFolRank
)

// quantSteps is the fixed-point resolution: probabilities are stored on the
// grid {0, qstep, 2·qstep, ..., 65535·qstep} with qstep = maxP/quantSteps.
const quantSteps = 65535

// ErrUnquantisable reports a model whose statistics do not fit the CPS4
// narrow layout (a node with more than 65535 followers, or a probability
// too small for a float32 step). Callers keep the exact CPS3 encoding.
var ErrUnquantisable = errors.New("compiled: model does not fit the CPS4 quantised layout")

func quantCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: CPS4 %s", store.ErrCorrupt, fmt.Sprintf(format, args...))
}

// quantWidths picks the narrow-array element widths for this model's data:
// evidence masks shrink to uint16 when the mixture fits, occurrence counts
// to uint32 when every count fits. The choice is a pure function of the
// model's statistics, which keeps re-encoding byte-stable.
func (c *Model) quantWidths() (evW, occW int) {
	evW = 8
	if c.k <= 16 {
		evW = 2
	}
	occW = 4
	for v := int32(0); v < int32(c.nodes); v++ {
		if c.occAt(v) > math.MaxUint32 || c.startOccAt(v) > math.MaxUint32 {
			occW = 8
			break
		}
	}
	return evW, occW
}

// quantCounts returns the element count and on-disk element width of every
// CPS4 array.
func (c *Model) quantCounts() (counts, sizes [quantArrayCount]int) {
	n := c.nodes
	f := len(c.folIDSorted)
	evW, occW := c.quantWidths()
	counts = [quantArrayCount]int{
		c.k, c.k, n + 1, len(c.childKey),
		n, n, n, n, n,
		n + 1, f, f, f,
	}
	sizes = [quantArrayCount]int{8, 8, 4, 4, evW, occW, occW, 4, 4, 4, 4, 2, 2}
	return counts, sizes
}

// quantLayout assigns each array its 8-byte-aligned offset and returns the
// total blob size.
func quantLayout(counts, sizes [quantArrayCount]int) (offs [quantArrayCount]uint64, total uint64) {
	off := uint64(quantArraysStart)
	for i := range counts {
		off = (off + 7) &^ 7
		offs[i] = off
		off += uint64(counts[i]) * uint64(sizes[i])
	}
	return offs, (off + 7) &^ 7
}

// Flat4Size returns the exact byte length of the model's CPS4 encoding.
func (c *Model) Flat4Size() int64 {
	counts, sizes := c.quantCounts()
	_, total := quantLayout(counts, sizes)
	return int64(total)
}

// AppendFlat4 appends the model's CPS4 quantised encoding to dst and
// returns the extended slice. Exact models are quantised on the fly;
// already-quantised models re-emit their stored fixed-point values, so
// load → save round trips are byte-identical. Fails with ErrUnquantisable
// when the model's statistics do not fit the narrow layout (callers then
// keep CPS3).
func (c *Model) AppendFlat4(dst []byte) ([]byte, error) {
	if c.folIDVar != nil {
		// CPS5-loaded models carry varint-packed follower IDs (and possibly
		// the uint8 probability tier) instead of the fixed-width arrays the
		// CPS4 writer reads; re-encode with AppendFlat5.
		return dst, fmt.Errorf("%w: CPS5-loaded model (re-encode with AppendFlat5)", ErrUnquantisable)
	}
	counts, sizes := c.quantCounts()
	offs, total := quantLayout(counts, sizes)
	evW, occW := sizes[qaEvidence], sizes[qaOcc]
	base := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[base:]
	le := binary.LittleEndian

	copy(b, quantMagic)
	le.PutUint32(b[4:], quantVersion)
	le.PutUint64(b[8:], total)
	le.PutUint32(b[16:], uint32(c.k))
	le.PutUint32(b[20:], uint32(c.vocab))
	le.PutUint32(b[24:], uint32(c.depth))
	le.PutUint32(b[28:], uint32(c.nodes))
	le.PutUint64(b[32:], uint64(len(c.childKey)))
	le.PutUint64(b[40:], uint64(len(c.folIDSorted)))
	b[52] = byte(evW)
	b[53] = byte(occW)
	for i := range offs {
		le.PutUint64(b[flatHeaderSize+16*i:], offs[i])
		le.PutUint64(b[flatHeaderSize+16*i+8:], uint64(counts[i]))
	}

	for i, v := range c.sigma {
		le.PutUint64(b[offs[qaSigma]+8*uint64(i):], math.Float64bits(v))
	}
	for i, v := range c.maxLen {
		le.PutUint64(b[offs[qaMaxLen]+8*uint64(i):], uint64(v))
	}
	for i, v := range c.childStart {
		le.PutUint32(b[offs[qaChildStart]+4*uint64(i):], uint32(v))
	}
	for i, v := range c.childKey {
		le.PutUint32(b[offs[qaChildKey]+4*uint64(i):], v)
	}
	for v := 0; v < c.nodes; v++ {
		ev := c.evidenceAt(int32(v))
		if evW == 2 {
			le.PutUint16(b[offs[qaEvidence]+2*uint64(v):], uint16(ev))
		} else {
			le.PutUint64(b[offs[qaEvidence]+8*uint64(v):], ev)
		}
		occ, start := c.occAt(int32(v)), c.startOccAt(int32(v))
		if occW == 4 {
			le.PutUint32(b[offs[qaOcc]+4*uint64(v):], uint32(occ))
			le.PutUint32(b[offs[qaStartOcc]+4*uint64(v):], uint32(start))
		} else {
			le.PutUint64(b[offs[qaOcc]+8*uint64(v):], occ)
			le.PutUint64(b[offs[qaStartOcc]+8*uint64(v):], start)
		}
		le.PutUint32(b[offs[qaFloor]+4*uint64(v):], math.Float32bits(float32(c.floorAt(int32(v)))))
	}
	for i, v := range c.folStart {
		le.PutUint32(b[offs[qaFolStart]+4*uint64(i):], uint32(v))
	}
	for i, v := range c.folIDSorted {
		le.PutUint32(b[offs[qaFolID]+4*uint64(i):], v)
	}
	if err := c.putQuantised(b, offs); err != nil {
		return dst[:base], err
	}

	le.PutUint32(b[48:], crc32.ChecksumIEEE(b[flatHeaderSize:]))
	return dst, nil
}

// putQuantised fills the qstep, folQ and folRank arrays: copied verbatim
// from an already-quantised model, computed from the float64 probabilities
// and the frozen ranked order otherwise.
func (c *Model) putQuantised(b []byte, offs [quantArrayCount]uint64) error {
	le := binary.LittleEndian
	if c.quantised {
		for v := 0; v < c.nodes; v++ {
			le.PutUint32(b[offs[qaStep]+4*uint64(v):], math.Float32bits(c.qstep[v]))
		}
		for i, q := range c.folQSorted {
			le.PutUint16(b[offs[qaFolQ]+2*uint64(i):], q)
		}
		for i, r := range c.folRankIdx {
			le.PutUint16(b[offs[qaFolRank]+2*uint64(i):], r)
		}
		return nil
	}
	for v := 0; v < c.nodes; v++ {
		lo, hi := c.folStart[v], c.folStart[v+1]
		support := int(hi - lo)
		if support == 0 {
			continue // step stays 0.0
		}
		if support > quantSteps {
			return fmt.Errorf("%w: node %d has %d followers, rank indices are 16-bit", ErrUnquantisable, v, support)
		}
		maxP := 0.0
		for _, p := range c.folPSorted[lo:hi] {
			if p > maxP {
				maxP = p
			}
		}
		step := float32(maxP / quantSteps)
		if step == 0 && maxP > 0 {
			return fmt.Errorf("%w: node %d max probability %g underflows the float32 step", ErrUnquantisable, v, maxP)
		}
		le.PutUint32(b[offs[qaStep]+4*uint64(v):], math.Float32bits(step))
		for j := lo; j < hi; j++ {
			q := math.Round(c.folPSorted[j] / float64(step))
			if q > quantSteps {
				q = quantSteps
			}
			le.PutUint16(b[offs[qaFolQ]+2*uint64(j):], uint16(q))
		}
		// Ranked view as local indices: folIDRanked[lo+r] is the r-th best
		// follower; find it in the node's ID-sorted range.
		ids := c.folIDSorted[lo:hi]
		for r := int32(0); r < int32(support); r++ {
			id := c.folIDRanked[lo+r]
			idx := sort.Search(support, func(i int) bool { return ids[i] >= id })
			le.PutUint16(b[offs[qaFolRank]+2*uint64(lo+r):], uint16(idx))
		}
	}
	return nil
}

// WriteFlat4 writes the CPS4 encoding to w.
func (c *Model) WriteFlat4(w io.Writer) (int64, error) {
	blob, err := c.AppendFlat4(nil)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(blob)
	return int64(n), err
}

// fromBytes4 materialises a quantised Model from a CPS4 blob. The caller
// (fromBytes) has already matched the magic.
func fromBytes4(data []byte, mode ViewMode) (*Model, bool, error) {
	if len(data) < quantArraysStart {
		return nil, false, quantCorrupt("blob of %d bytes is shorter than the header", len(data))
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[4:]); v != quantVersion {
		return nil, false, quantCorrupt("unsupported layout version %d", v)
	}
	if bl := le.Uint64(data[8:]); bl != uint64(len(data)) {
		return nil, false, quantCorrupt("header claims %d bytes, blob has %d (truncated?)", bl, len(data))
	}
	c := &Model{
		k:         int(le.Uint32(data[16:])),
		vocab:     int(le.Uint32(data[20:])),
		depth:     int(le.Uint32(data[24:])),
		quantised: true,
	}
	n := int(le.Uint32(data[28:]))
	edges := le.Uint64(data[32:])
	fols := le.Uint64(data[40:])
	evW, occW := int(data[52]), int(data[53])
	if c.k <= 0 || c.k > maxComponents {
		return nil, false, quantCorrupt("implausible component count %d", c.k)
	}
	if c.vocab <= 0 {
		return nil, false, quantCorrupt("implausible vocab %d", c.vocab)
	}
	if n <= 0 || uint64(n-1) != edges {
		return nil, false, quantCorrupt("%d edges for %d nodes", edges, n)
	}
	if fols > uint64(len(data)) { // each follower entry occupies >= 2 bytes
		return nil, false, quantCorrupt("implausible follower count %d", fols)
	}
	if (evW != 2 && evW != 8) || (evW == 2 && c.k > 16) {
		return nil, false, quantCorrupt("evidence width %d for %d components", evW, c.k)
	}
	if occW != 4 && occW != 8 {
		return nil, false, quantCorrupt("occurrence width %d", occW)
	}
	c.nodes = n

	want := [quantArrayCount]uint64{
		uint64(c.k), uint64(c.k), uint64(n + 1), edges,
		uint64(n), uint64(n), uint64(n), uint64(n), uint64(n),
		uint64(n + 1), fols, fols, fols,
	}
	sizes := [quantArrayCount]int{8, 8, 4, 4, evW, occW, occW, 4, 4, 4, 4, 2, 2}
	var arr [quantArrayCount][]byte
	for i := 0; i < quantArrayCount; i++ {
		off := le.Uint64(data[flatHeaderSize+16*i:])
		cnt := le.Uint64(data[flatHeaderSize+16*i+8:])
		if cnt != want[i] {
			return nil, false, quantCorrupt("array %d holds %d elements, header implies %d", i, cnt, want[i])
		}
		bytes := cnt * uint64(sizes[i])
		if off%8 != 0 || off < quantArraysStart || off > uint64(len(data)) || bytes > uint64(len(data))-off {
			return nil, false, quantCorrupt("array %d at [%d, %d+%d) escapes the %d-byte blob", i, off, off, bytes, len(data))
		}
		arr[i] = data[off : off+bytes]
	}

	viewed := mode == ViewAuto && canZeroCopy(data)
	if !viewed {
		if got, wantCRC := crc32.ChecksumIEEE(data[flatHeaderSize:]), le.Uint32(data[48:]); got != wantCRC {
			return nil, false, quantCorrupt("CRC mismatch %08x != %08x", got, wantCRC)
		}
	}

	c.sigma = decodeF64(arr[qaSigma])
	c.maxLen = make([]int, c.k)
	for i := range c.maxLen {
		v := le.Uint64(arr[qaMaxLen][8*i:])
		if v > math.MaxInt32 {
			return nil, false, quantCorrupt("component %d window bound %d overflows", i, v)
		}
		c.maxLen[i] = int(v)
	}
	for i, s := range c.sigma {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, false, quantCorrupt("component %d sigma is not finite", i)
		}
	}

	if viewed {
		c.childStart = viewI32(arr[qaChildStart])
		c.childKey = viewU32(arr[qaChildKey])
		c.floor32 = viewF32(arr[qaFloor])
		c.qstep = viewF32(arr[qaStep])
		c.folStart = viewI32(arr[qaFolStart])
		c.folIDSorted = viewU32(arr[qaFolID])
		c.folQSorted = viewU16(arr[qaFolQ])
		c.folRankIdx = viewU16(arr[qaFolRank])
		if evW == 2 {
			c.evidence16 = viewU16(arr[qaEvidence])
		} else {
			c.evidence = viewU64(arr[qaEvidence])
		}
		if occW == 4 {
			c.occ32 = viewU32(arr[qaOcc])
			c.startOcc32 = viewU32(arr[qaStartOcc])
		} else {
			c.occ = viewU64(arr[qaOcc])
			c.startOcc = viewU64(arr[qaStartOcc])
		}
	} else {
		c.childStart = decodeI32(arr[qaChildStart])
		c.childKey = decodeU32(arr[qaChildKey])
		c.floor32 = decodeF32(arr[qaFloor])
		c.qstep = decodeF32(arr[qaStep])
		c.folStart = decodeI32(arr[qaFolStart])
		c.folIDSorted = decodeU32(arr[qaFolID])
		c.folQSorted = decodeU16(arr[qaFolQ])
		c.folRankIdx = decodeU16(arr[qaFolRank])
		if evW == 2 {
			c.evidence16 = decodeU16(arr[qaEvidence])
		} else {
			c.evidence = decodeU64(arr[qaEvidence])
		}
		if occW == 4 {
			c.occ32 = decodeU32(arr[qaOcc])
			c.startOcc32 = decodeU32(arr[qaStartOcc])
		} else {
			c.occ = decodeU64(arr[qaOcc])
			c.startOcc = decodeU64(arr[qaStartOcc])
		}
	}

	// Structural invariants the descent indexes through; with these checked
	// (and rank indices clamped at use), arbitrary payload corruption can
	// misrank but cannot index out of range.
	if err := c.validateStructure(edges, fols); err != nil {
		return nil, false, err
	}
	c.initScratch()
	return c, viewed, nil
}
