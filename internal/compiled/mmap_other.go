//go:build !unix

package compiled

import "os"

const mmapSupported = false

func mmapRange(*os.File, int64, int64) (window, mapping []byte, err error) {
	return nil, nil, ErrMmapUnsupported
}

func munmapRange([]byte) error { return nil }
