//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

// Fallback for platforms where the CPS3 on-disk layout does not match the
// in-memory one (big-endian): zero-copy views are disabled and FromBytes
// always decodes portably — no unsafe anywhere on this path.

package compiled

func canZeroCopy([]byte) bool { return false }

// The view functions are never reached when canZeroCopy is false.

func viewU16([]byte) []uint16  { panic("compiled: zero-copy view on non-little-endian platform") }
func viewF32([]byte) []float32 { panic("compiled: zero-copy view on non-little-endian platform") }
func viewI32([]byte) []int32   { panic("compiled: zero-copy view on non-little-endian platform") }
func viewU32([]byte) []uint32  { panic("compiled: zero-copy view on non-little-endian platform") }
func viewU64([]byte) []uint64  { panic("compiled: zero-copy view on non-little-endian platform") }
func viewF64([]byte) []float64 { panic("compiled: zero-copy view on non-little-endian platform") }
