package compiled

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/query"
)

// ctxSorter orders a batch's context indices by the reversed (newest-first)
// lexicographic order of the contexts — the order the trie is descended in —
// so consecutive contexts share the longest possible descent prefix. It
// lives inside the pooled scratch so sorting allocates nothing.
type ctxSorter struct {
	order []int32
	ctxs  []query.Seq
}

func (cs *ctxSorter) Len() int { return len(cs.order) }
func (cs *ctxSorter) Swap(i, j int) {
	cs.order[i], cs.order[j] = cs.order[j], cs.order[i]
}
func (cs *ctxSorter) Less(i, j int) bool {
	return revLess(cs.ctxs[cs.order[i]], cs.ctxs[cs.order[j]])
}

// revLess compares two sequences in reversed (newest query first) order.
func revLess(a, b query.Seq) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for j := 1; j <= n; j++ {
		qa, qb := a[len(a)-j], b[len(b)-j]
		if qa != qb {
			return qa < qb
		}
	}
	return len(a) < len(b)
}

// revCommon returns the number of leading symbols the reversed forms of a
// and b share — the descent-path depth the two contexts have in common.
func revCommon(a, b query.Seq) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for j := 1; j <= n; j++ {
		if a[len(a)-j] != b[len(b)-j] {
			return j - 1
		}
	}
	return n
}

// PredictBatch ranks up to ns[i] predictions for every ctxs[i] in one pass
// over shared scratch. Contexts are processed in descent order (sorted by
// their reversed form), so sibling contexts — "the same session one query
// later", near-duplicate heads of power-law traffic — reuse the descent path
// and the cache lines of the shared trie levels instead of re-walking them
// from the root. This is the serving engine behind POST /suggest/batch.
//
// emit is invoked exactly once per context index, in an implementation-
// chosen order. preds is only valid for the duration of the call (the buffer
// is recycled for the next context): consume or copy it before returning.
// Contexts that are empty, have ns[i] <= 0, or are uncovered emit nil.
// Predictions are identical to per-context AppendPredictions calls.
func (c *Model) PredictBatch(ctxs []query.Seq, ns []int, emit func(i int, preds []model.Prediction)) {
	if len(ctxs) == 0 {
		return
	}
	if len(ns) != len(ctxs) {
		panic("compiled: PredictBatch ns and ctxs lengths differ")
	}
	s := c.scratch.p.Get().(*scratch)
	defer c.scratch.p.Put(s)

	s.sorter.order = s.sorter.order[:0]
	for i := range ctxs {
		s.sorter.order = append(s.sorter.order, int32(i))
	}
	s.sorter.ctxs = ctxs
	sort.Sort(&s.sorter)

	c.walkSpan(s, ctxs, ns, s.sorter.order, emit)
	s.sorter.ctxs = nil // do not retain caller slices in the pool
}

// walkSpan scores one contiguous span of a descent-ordered batch: each
// context redescends from the previous one's shared prefix, identical
// adjacent (context, n) pairs re-emit the previous answer. Shared by the
// sequential PredictBatch (the whole order) and each PredictBatchParallel
// worker (its chunk), so the two paths are one code path and bit-identical
// by construction.
func (c *Model) walkSpan(s *scratch, ctxs []query.Seq, ns []int, order []int32, emit func(i int, preds []model.Prediction)) {
	var prev query.Seq
	prevN := -1
	s.path = s.path[:0]
	for _, oi := range order {
		i := int(oi)
		ctx := ctxs[i]
		if len(ctx) == 0 || ns[i] <= 0 {
			emit(i, nil)
			continue
		}
		shared := revCommon(prev, ctx)
		// In-batch dedup: sorting made identical contexts adjacent, and
		// power-law traffic makes them common inside real batches (the result
		// cache only catches repeats across batches — inserts happen after
		// the whole batch is scored). Re-emit instead of re-scoring.
		if shared == len(ctx) && shared == len(prev) && ns[i] == prevN {
			if len(s.bpreds) == 0 {
				emit(i, nil)
			} else {
				emit(i, s.bpreds)
			}
			continue
		}
		c.redescend(s, ctx, shared)
		prev, prevN = ctx, ns[i]
		s.bpreds = c.appendRanked(s, s.bpreds[:0], len(ctx), ns[i])
		if len(s.bpreds) == 0 {
			emit(i, nil)
			continue
		}
		emit(i, s.bpreds)
	}
}

// parallelBatchMin is the batch size below which PredictBatchParallel takes
// the sequential path: goroutine fan-out costs more than it saves on a
// handful of descents.
const parallelBatchMin = 16

// PredictBatchParallel is PredictBatch with the descent-ordered batch split
// across workers goroutines (workers <= 0 means GOMAXPROCS), each walking a
// contiguous chunk of the sorted order with its own pooled scratch. Because
// every prediction depends only on its (context, n) pair, the answers are
// bit-identical to the sequential path — the parity test enforces it — and
// chunk boundaries only forgo some prefix sharing.
//
// Unlike PredictBatch, emit may be invoked concurrently from different
// workers (still exactly once per index, with distinct i); preds remains
// valid only for the duration of the call. Batches smaller than the fan-out
// is worth (or workers == 1) fall back to the sequential path, so callers
// can use this form unconditionally.
func (c *Model) PredictBatchParallel(ctxs []query.Seq, ns []int, workers int, emit func(i int, preds []model.Prediction)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(ctxs) < parallelBatchMin || len(ctxs) < 2*workers {
		c.PredictBatch(ctxs, ns, emit)
		return
	}
	if len(ns) != len(ctxs) {
		panic("compiled: PredictBatchParallel ns and ctxs lengths differ")
	}
	s := c.scratch.p.Get().(*scratch)
	defer c.scratch.p.Put(s)

	s.sorter.order = s.sorter.order[:0]
	for i := range ctxs {
		s.sorter.order = append(s.sorter.order, int32(i))
	}
	s.sorter.ctxs = ctxs
	sort.Sort(&s.sorter)

	order := s.sorter.order
	chunk := (len(order) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(order); lo += chunk {
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		wg.Add(1)
		go func(span []int32) {
			defer wg.Done()
			ws := c.scratch.p.Get().(*scratch)
			defer c.scratch.p.Put(ws)
			c.walkSpan(ws, ctxs, ns, span, emit)
		}(order[lo:hi])
	}
	wg.Wait()
	s.sorter.ctxs = nil // do not retain caller slices in the pool
}

// redescend updates s.path — currently the descent of the previous context —
// to the descent of ctx, whose reversed form shares its first `shared`
// symbols with the previous one.
func (c *Model) redescend(s *scratch, ctx query.Seq, shared int) {
	if shared > len(s.path) {
		// The previous descent already fell out of the trie before reaching
		// depth `shared`, failing on a symbol ctx shares. ctx's descent stops
		// at the same node, so the (truncated) path is already complete.
		return
	}
	s.path = s.path[:shared]
	v := int32(0)
	if shared > 0 {
		v = s.path[shared-1]
	}
	for j := len(ctx) - 1 - shared; j >= 0; j-- {
		nxt := c.child(v, uint32(ctx[j]))
		if nxt < 0 {
			return
		}
		s.path = append(s.path, nxt)
		v = nxt
	}
}
