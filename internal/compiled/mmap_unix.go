//go:build unix

package compiled

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapRange maps [offset, offset+length) of f read-only. The kernel demands
// a page-aligned file offset, so the mapping starts at the enclosing page
// boundary; window is the caller's requested byte range inside it and
// mapping is what munmapRange must eventually be handed.
func mmapRange(f *os.File, offset, length int64) (window, mapping []byte, err error) {
	page := int64(os.Getpagesize())
	mapOff := offset &^ (page - 1)
	delta := offset - mapOff
	mapping, err = syscall.Mmap(int(f.Fd()), mapOff, int(delta+length), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return mapping[delta : delta+length], mapping, nil
}

func munmapRange(mapping []byte) error {
	if mapping == nil {
		return nil
	}
	return syscall.Munmap(mapping)
}
