package compiled

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/markov"
	"repro/internal/query"
)

func flatTestModel(t testing.TB, seed int64) (*Model, []query.Session, int, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := 25 + rng.Intn(30)
	sessions := randomCorpus(rng, vocab, 500+rng.Intn(600))
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.02, 0.08}, vocab,
		markov.MVMMOptions{TrainSample: 120, NewtonIters: 5})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c, sessions, vocab, rng
}

// assertBitIdentical checks two compiled models agree bit-for-bit on
// predictions and probabilities across the given contexts.
func assertBitIdentical(t *testing.T, label string, want, got *Model, ctxs []query.Seq, vocab int, rng *rand.Rand) {
	t.Helper()
	if want.Nodes() != got.Nodes() || want.Followers() != got.Followers() ||
		want.Depth() != got.Depth() || want.Components() != got.Components() || want.Vocab() != got.Vocab() {
		t.Fatalf("%s: shape differs: nodes %d/%d followers %d/%d", label,
			want.Nodes(), got.Nodes(), want.Followers(), got.Followers())
	}
	for _, ctx := range ctxs {
		a, b := want.Predict(ctx, 5), got.Predict(ctx, 5)
		if len(a) != len(b) {
			t.Fatalf("%s: ctx %v: %d vs %d predictions", label, ctx, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: ctx %v rank %d: %v vs %v", label, ctx, i, a[i], b[i])
			}
		}
		q := query.ID(rng.Intn(vocab + 2))
		if pa, pb := want.Prob(ctx, q), got.Prob(ctx, q); pa != pb {
			t.Fatalf("%s: ctx %v q=%d: prob %v vs %v", label, ctx, q, pa, pb)
		}
	}
}

// TestFlatRoundTrip: the CPS3 encoding must reproduce the model bit-exactly
// through both the zero-copy view and the portable decode-copy path.
func TestFlatRoundTrip(t *testing.T) {
	for seed := int64(31); seed <= 33; seed++ {
		c, sessions, vocab, rng := flatTestModel(t, seed)
		blob := c.AppendFlat(nil)
		if int64(len(blob)) != c.FlatSize() {
			t.Fatalf("FlatSize = %d, blob is %d bytes", c.FlatSize(), len(blob))
		}
		ctxs := parityContexts(rng, sessions, vocab)
		viewed, err := FromBytes(blob, ViewAuto)
		if err != nil {
			t.Fatalf("seed %d: ViewAuto: %v", seed, err)
		}
		assertBitIdentical(t, "view", c, viewed, ctxs, vocab, rng)
		copied, err := FromBytes(blob, ViewCopy)
		if err != nil {
			t.Fatalf("seed %d: ViewCopy: %v", seed, err)
		}
		assertBitIdentical(t, "copy", c, copied, ctxs, vocab, rng)
	}
}

// TestFlatWriteFlatMatchesAppendFlat: the two writers must emit identical
// bytes (core.Save streams through WriteFlat-equivalent framing).
func TestFlatWriteFlatMatchesAppendFlat(t *testing.T) {
	c, _, _, _ := flatTestModel(t, 41)
	var buf bytes.Buffer
	if _, err := c.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), c.AppendFlat(nil)) {
		t.Fatal("WriteFlat and AppendFlat diverge")
	}
}

// TestFlatRejectsCorruption is the format-robustness table test: truncations
// must fail in both view modes, arbitrary byte flips must fail under
// ViewCopy (CRC), and structural corruption that survives ViewAuto's lighter
// validation must never panic when the model is exercised.
func TestFlatRejectsCorruption(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 57)
	good := c.AppendFlat(nil)

	// Truncation at every region boundary and a few arbitrary points.
	for _, n := range []int{0, 3, flatHeaderSize - 1, flatArraysStart - 1, len(good) / 3, len(good) - 1} {
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			if _, err := FromBytes(good[:n], mode); err == nil {
				t.Fatalf("truncation to %d bytes (mode %d) went undetected", n, mode)
			}
		}
	}

	// Every random single-byte flip must be caught by the ViewCopy CRC.
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		if _, err := FromBytes(bad, ViewCopy); err == nil {
			t.Fatalf("trial %d: corrupted blob passed ViewCopy", trial)
		}
	}

	// ViewAuto skips the CRC by design; corrupted-but-structurally-plausible
	// blobs may load, but exercising them must never panic or index out of
	// range (the structural validation plus descent-time masking guarantee).
	ctxs := parityContexts(rng, sessions, vocab)
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		m, err := FromBytes(bad, ViewAuto)
		if err != nil {
			continue
		}
		for _, ctx := range ctxs[:10] {
			m.Predict(ctx, 5)
			if len(ctx) > 0 {
				m.Prob(ctx, ctx[len(ctx)-1])
			}
		}
	}
}

// FuzzFromBytes drives the CPS3 and CPS4 decoders with arbitrary bytes: any
// input must either decode or error — never panic.
func FuzzFromBytes(f *testing.F) {
	c, _, _, _ := flatTestModel(f, 71)
	good := c.AppendFlat(nil)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("CPS3 but nonsense"))
	good4, err := c.AppendFlat4(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good4)
	f.Add(good4[:len(good4)/2])
	f.Add([]byte("CPS4 but nonsense"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			m, err := FromBytes(data, mode)
			if err != nil {
				continue
			}
			m.Predict(query.Seq{1, 2}, 5)
		}
	})
}

// TestOpenMmap maps a blob stored at an arbitrary (page-aligned) offset
// inside a file, checks bit-identical predictions, and releases the mapping.
func TestOpenMmap(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	c, sessions, vocab, rng := flatTestModel(t, 83)
	blob := c.AppendFlat(nil)
	path := filepath.Join(t.TempDir(), "model.cps3")
	const off = 8192
	file := make([]byte, off, off+len(blob))
	file = append(file, blob...)
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMmap(path, off, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "mmap", c, m, parityContexts(rng, sessions, vocab), vocab, rng)
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(); err != nil { // idempotent
		t.Fatal(err)
	}

	// A window that overruns the file must fail cleanly, not SIGBUS later.
	if _, err := OpenMmap(path, off, int64(len(blob))+4096); err == nil {
		t.Fatal("oversized mmap window went undetected")
	}
}

// TestOpenMmapUnalignedOffset: offsets that are not page-aligned are handled
// by mapping from the enclosing page boundary.
func TestOpenMmapUnalignedOffset(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	c, sessions, vocab, rng := flatTestModel(t, 89)
	blob := c.AppendFlat(nil)
	path := filepath.Join(t.TempDir(), "model.cps3")
	const off = 4096 + 512 // 8-byte aligned, not page-aligned
	file := make([]byte, off, off+len(blob))
	file = append(file, blob...)
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMmap(path, off, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	assertBitIdentical(t, "mmap-unaligned", c, m, parityContexts(rng, sessions, vocab)[:50], vocab, rng)
}

// TestOpenMmapAdvised: paging hints must apply (or degrade, recorded) while
// leaving predictions bit-identical, and plain OpenMmap must report no
// advice.
func TestOpenMmapAdvised(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	c, sessions, vocab, rng := flatTestModel(t, 97)
	blob := c.AppendFlat(nil)
	path := filepath.Join(t.TempDir(), "model.cps3")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	plain, err := OpenMmap(path, 0, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.MapAdvice(); got != "" {
		t.Fatalf("unadvised mapping reports %q", got)
	}
	plain.Release()

	m, err := OpenMmapAdvised(path, 0, int64(len(blob)), MapAdvice{WillNeed: true, Lock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	advice := m.MapAdvice()
	// Both hints must be accounted for — applied cleanly or recorded with
	// their error — in request order.
	if !strings.HasPrefix(advice, "willneed") || !strings.Contains(advice, "mlock") {
		t.Fatalf("advice = %q, want willneed and mlock accounted for", advice)
	}
	assertBitIdentical(t, "mmap-advised", c, m, parityContexts(rng, sessions, vocab)[:50], vocab, rng)
}
