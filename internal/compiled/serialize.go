package compiled

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/store"
)

// magic tags the compiled-PST section of a model file.
const magic = "CPS1"

// WriteTo serializes the compiled model. The trie structure is stored as the
// BFS child-count/edge-symbol arrays — exactly the in-memory CSR layout — so
// loading rebuilds the servable form with no map construction, no key
// decoding and no tree traversal: a cold start is a handful of array reads.
// Follower probabilities and floors are not stored; Read recomputes them
// from the raw counts through the same appendFollowers path Compile uses,
// which keeps a reloaded model bit-identical to a freshly compiled one.
func (c *Model) WriteTo(w io.Writer) (int64, error) {
	if c.Quantised() {
		return 0, errors.New("compiled: quantised model has no raw counts; CPS1 requires an exact model (recompile from the mixture)")
	}
	sw := store.NewWriter(w)
	sw.Magic(magic)
	sw.Int(c.k)
	sw.Int(c.vocab)
	sw.Int(c.depth)
	for _, s := range c.sigma {
		sw.Float64(s)
	}
	for _, ml := range c.maxLen {
		sw.Int(ml)
	}
	n := len(c.evidence)
	sw.Int(n)
	for v := 0; v < n; v++ {
		sw.Int(int(c.childStart[v+1] - c.childStart[v]))
	}
	for _, sym := range c.childKey {
		sw.Uvarint(uint64(sym))
	}
	for v := 0; v < n; v++ {
		sw.Uvarint(c.evidence[v])
		sw.Uvarint(c.occ[v])
		sw.Uvarint(c.startOcc[v])
	}
	for v := 0; v < n; v++ {
		lo, hi := c.folStart[v], c.folStart[v+1]
		sw.Int(int(hi - lo))
		for j := lo; j < hi; j++ {
			sw.Uvarint(uint64(c.folIDSorted[j]))
			sw.Uvarint(c.folCount[j])
		}
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// Read decodes a model written by WriteTo.
func Read(r io.Reader) (*Model, error) {
	sr := store.NewReader(r)
	sr.Magic(magic)
	c := &Model{}
	c.k = sr.Int()
	c.vocab = sr.Int()
	c.depth = sr.Int()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if c.k <= 0 || c.k > maxComponents {
		return nil, fmt.Errorf("%w: implausible component count %d", store.ErrCorrupt, c.k)
	}
	if c.vocab <= 0 {
		return nil, fmt.Errorf("%w: implausible vocab %d", store.ErrCorrupt, c.vocab)
	}
	c.sigma = make([]float64, c.k)
	for i := range c.sigma {
		c.sigma[i] = sr.Float64()
	}
	c.maxLen = make([]int, c.k)
	for i := range c.maxLen {
		c.maxLen[i] = sr.Int()
	}
	n := sr.Int()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: empty compiled trie", store.ErrCorrupt)
	}
	c.nodes = n
	c.childStart = make([]int32, n+1)
	for v := 0; v < n; v++ {
		c.childStart[v+1] = c.childStart[v] + int32(sr.Int())
	}
	edges := int(c.childStart[n])
	if edges != n-1 {
		return nil, fmt.Errorf("%w: %d edges for %d nodes", store.ErrCorrupt, edges, n)
	}
	c.childKey = make([]uint32, edges)
	for e := range c.childKey {
		c.childKey[e] = uint32(sr.Uvarint())
	}
	c.evidence = make([]uint64, n)
	c.occ = make([]uint64, n)
	c.startOcc = make([]uint64, n)
	for v := 0; v < n; v++ {
		c.evidence[v] = sr.Uvarint()
		c.occ[v] = sr.Uvarint()
		c.startOcc[v] = sr.Uvarint()
	}
	c.floor = make([]float64, n)
	c.folStart = make([]int32, 1, n+1)
	if f := sr.Int(); sr.Err() == nil && f != 0 { // root's follower record is always empty
		return nil, fmt.Errorf("%w: root carries %d followers", store.ErrCorrupt, f)
	}
	var ids []uint32
	var counts []uint64
	for v := 1; v < n && sr.Err() == nil; v++ {
		f := sr.Int()
		if f < 0 || f > c.vocab {
			return nil, fmt.Errorf("%w: node %d claims %d followers", store.ErrCorrupt, v, f)
		}
		ids = ids[:0]
		counts = counts[:0]
		prev := int64(-1)
		for j := 0; j < f; j++ {
			id := sr.Uvarint()
			cnt := sr.Uvarint()
			if sr.Err() != nil {
				return nil, sr.Err()
			}
			if id > 1<<32-1 || int64(id) <= prev || cnt == 0 {
				return nil, fmt.Errorf("%w: node %d follower list malformed", store.ErrCorrupt, v)
			}
			prev = int64(id)
			ids = append(ids, uint32(id))
			counts = append(counts, cnt)
		}
		c.appendFollowers(v, ids, counts)
	}
	c.folStart = append(c.folStart, int32(len(c.folIDSorted)))
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	c.initScratch()
	return c, nil
}
