// Package compiled turns a trained markov.MVMM mixture into a single flat
// Prediction Suffix Tree optimised for serving.
//
// The paper's deployment note (Table VII) observes that the mixture's K VMM
// components "can actually combine all into a single PST": every component is
// grown from the same candidate statistics, so whenever two components store
// the same suffix state they store the *same* follower distribution — the
// components differ only in which states they kept. Compile exploits that:
// it merges all component trees and escape tables into one suffix trie whose
// nodes live in flat slices (CSR child arrays indexed by dense node IDs, not
// string map keys), with
//
//   - a per-node K-bit presence bitmask recording which components hold the
//     node with prediction evidence,
//   - the escape-window occurrence counts of Eq. (6) stored on the node, so
//     the whole escape chain of a context is read off the descent path,
//   - followers precomputed twice per node: ranked (count-descending, the
//     frozen TopN order) for candidate pooling and ID-sorted with smoothed
//     probabilities for O(log f) score lookups.
//
// One trie descent then answers everything Predict needs — every component's
// matched state (deepest path node with the component's bit), the Eq. (4)
// mixture weights, the Eq. (5) escape-chain factors and the candidate
// scores — with zero heap allocations: scratch comes from a sync.Pool and
// top-N selection uses a bounded heap instead of sorting all candidates.
//
// The build phase (training, σ learning, KL pruning) keeps the mutable
// map-based representation; Compile freezes it into this read-optimised form,
// the same build-vs-serve split log-structured systems use. Predictions are
// numerically within 1e-12 of the interpreted mixture (the escape-chain and
// scoring sums are re-associated) and rank-identical on non-degenerate ties;
// the parity property test in this package enforces both.
//
// The compiled form has three persistent encodings, all little-endian:
//
//   - CPS1 (WriteTo/Read): a varint stream, compact but decoded node by
//     node into heap slices.
//   - CPS3 (AppendFlat/FromBytes/OpenMmap): exact fixed-width arrays at
//     8-byte-aligned offsets — mmap-able, aliased zero-copy on
//     little-endian platforms, decoded portably (no unsafe) elsewhere.
//   - CPS4 (AppendFlat4/FromBytes/OpenMmap): the quantised flat layout —
//     follower probabilities as fixed-point uint16 against per-node
//     float32 steps, ranked views as uint16 indices, node arrays narrowed
//     to their needed width. Roughly half the CPS3 size at a bounded
//     (≤ qstep/2 per node, ≤ ~2e-5 absolute) probability error. Models
//     loaded from CPS4 report Quantised() == true and cannot be
//     re-encoded to the exact forms (raw counts are not stored).
//   - CPS5 (AppendFlat5/FromBytes/OpenMmap): the compact-edge tier below
//     CPS4 — follower-ID lists delta-encoded and varint-packed per node,
//     CSR offsets as varint count streams, child keys as first+deltas,
//     plus an opt-in uint8 probability grade (refused via ErrUnquantisable
//     when it would perturb ranked order beyond the CPS4 error bound).
//     The packed follower-ID region is decoded per matched node at serve
//     time into pooled scratch, so prediction stays allocation-free.
//
// Serving invariants, whatever the source encoding: prediction is
// allocation-free at steady state (pooled scratch, bounded top-N heap),
// models are immutable and safe for unbounded concurrent readers, and a
// corrupted flat blob loaded without its CRC check (the zero-copy path,
// which must not fault every page in) can misrank but can never panic or
// index out of bounds.
package compiled

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/markov"
	"repro/internal/query"
)

// maxComponents bounds the mixture size representable in the per-node
// presence bitmask. The paper's mixture uses 11 components.
const maxComponents = 64

// Model is the compiled single-PST form of an MVMM. It is immutable after
// Compile/Read and safe for any number of concurrent predictors.
type Model struct {
	k     int // mixture components
	vocab int // |Q| for the stage-(c) smoothing
	depth int // deepest stored suffix length

	sigma  []float64 // per-component Gaussian widths (Eq. 4)
	maxLen []int     // per-component escape-window bound (0 / huge = unbounded)

	// Trie in CSR form. Node 0 is the root (empty context); an edge carries
	// the query ID that *prepends* the parent's suffix (descent consumes the
	// context newest-to-oldest). Children of node v occupy edge indices
	// childStart[v]..childStart[v+1], sorted by childKey; the nodes are laid
	// out in breadth-first edge order, so edge e always leads to node e+1 and
	// no child-node array is needed.
	childStart []int32
	childKey   []uint32

	// Per-node payload, indexed by node ID. Exactly one representation is
	// populated per array: the wide float64/uint64 slices for models built by
	// Compile or loaded from CPS1/CPS3, or the narrow slices for models
	// loaded from the quantised CPS4 layout (evidence16 when the component
	// count fits 16 bits, occ32/startOcc32/floor32 always). The accessor
	// methods (evidenceAt, occAt, startOccAt, floorAt) pick the live one.
	evidence   []uint64  // bit i set ⇔ component i stores this state with followers
	evidence16 []uint16  // CPS4 narrow form of evidence (k <= 16)
	occ        []uint64  // Eq. (6) window occurrences |[·,s]| of the node's suffix
	occ32      []uint32  // CPS4 narrow form of occ
	startOcc   []uint64  // session-start occurrences |[e,s]|
	startOcc32 []uint32  // CPS4 narrow form of startOcc
	floor      []float64 // smoothed probability of an unobserved follower
	floor32    []float32 // CPS4 narrow form of floor

	// Followers, one CSR range per node. Ranked order is the frozen TopN
	// ranking (count descending, ID ascending); sorted order is ID-ascending
	// for binary-search probability lookups. folCount holds the raw counts in
	// sorted order for serialisation and introspection.
	//
	// Exact models carry folIDRanked/folPRanked/folPSorted/folCount in
	// float64/uint64. Quantised (CPS4-loaded) models instead carry folQSorted
	// (fixed-point uint16 probabilities dequantised via the per-node qstep)
	// and folRankIdx (the ranked view as uint16 indices into the node's
	// ID-sorted range); raw counts are not preserved, so quantised models
	// cannot be re-encoded to the exact CPS1/CPS3 layouts.
	folStart    []int32
	folIDRanked []uint32
	folPRanked  []float64
	folIDSorted []uint32
	folPSorted  []float64
	folCount    []uint64
	folQSorted  []uint16
	folRankIdx  []uint16
	qstep       []float32 // per-node dequantisation step: p = qstep[v] * q

	// CPS5-loaded models keep follower IDs varint-packed (folIDVar non-nil
	// is the discriminator): folOff[v]..folOff[v+1] bounds node v's packed
	// group, decoded into pooled scratch per matched node at serve time.
	// folQ8 is the opt-in uint8 probability tier (nil ⇒ folQSorted's uint16
	// tier); folIDSorted stays nil.
	folIDVar []byte
	folOff   []int32
	folQ8    []uint8

	nodes     int  // node count including the root (len of the per-node arrays)
	quantised bool // true ⇔ loaded from CPS4/CPS5 (narrow arrays populated)

	scratch scratchPool

	// Mmap backing (models returned by OpenMmap only): the full mapping the
	// arrays alias, unmapped by Release or by the GC cleanup once the model
	// becomes unreachable. mapAdvice records the kernel paging hints applied
	// to the mapping (OpenMmapAdvised), "" when none were requested.
	release     []byte
	cleanup     runtime.Cleanup
	releaseOnce sync.Once
	releaseErr  error
	mapAdvice   string
}

// Compile flattens a trained mixture into its serving form. It fails — and
// the caller should keep serving the interpreted mixture — when the mixture
// violates the shared-statistics invariants the flat form relies on: more
// than 64 components, differing smoothing vocabularies, components whose
// escape tables disagree, or a shared state stored with diverging follower
// counts. Mixtures trained (or loaded) through this repository's pipeline
// always compile.
func Compile(m *markov.MVMM) (*Model, error) {
	comps := m.Components()
	k := len(comps)
	if k == 0 {
		return nil, errors.New("compiled: mixture has no components")
	}
	if k > maxComponents {
		return nil, fmt.Errorf("compiled: %d components exceed the %d-bit presence mask", k, maxComponents)
	}
	vocab := comps[0].Config().Vocab
	for i, cmp := range comps {
		if v := cmp.Config().Vocab; v != vocab {
			return nil, fmt.Errorf("compiled: component %d smoothing vocab %d != %d", i, v, vocab)
		}
	}
	if vocab <= 0 {
		return nil, fmt.Errorf("compiled: non-positive smoothing vocab %d", vocab)
	}

	c := &Model{k: k, vocab: vocab, sigma: m.Sigmas(), maxLen: make([]int, k)}

	merged, err := c.mergeEscapes(comps)
	if err != nil {
		return nil, err
	}
	nodes, err := unionNodes(comps, merged)
	if err != nil {
		return nil, err
	}
	c.layout(nodes)
	return c, nil
}

// window is one merged escape-table entry.
type window struct {
	occ, start uint64
}

// mergeEscapes merges the per-component escape tables into one window map,
// verifying that the tables are projections of the same statistics: shared
// windows must carry identical counts, and each component's table must hold
// exactly the merged windows within its length bound (a mismatch means the
// components were not trained from the same sessions, and per-component
// escape chains cannot be answered from one merged table).
func (c *Model) mergeEscapes(comps []*markov.VMM) (map[string]window, error) {
	merged := make(map[string]window)
	seen := make(map[*markov.EscapeTable]bool, len(comps))
	var conflict string
	for i, cmp := range comps {
		t := cmp.Escape()
		c.maxLen[i] = t.MaxLen()
		if seen[t] { // training shares one table across equal-D components
			continue
		}
		seen[t] = true
		t.ForEachWindow(func(key string, occ, start uint64) {
			if w, ok := merged[key]; ok {
				if w.occ != occ || w.start != start {
					conflict = key
				}
				return
			}
			merged[key] = window{occ: occ, start: start}
		})
		if conflict != "" {
			return nil, fmt.Errorf("compiled: component %d escape counts diverge on window %v",
				i, query.SeqFromKey(conflict))
		}
	}
	// Coverage: component i must contain every merged window of length
	// <= maxLen[i] (and nothing else — the value check above covered those).
	maxWin := 0
	for key := range merged {
		if l := len(key) / 4; l > maxWin {
			maxWin = l
		}
	}
	cum := make([]int, maxWin+1) // cum[l] = merged windows of length <= l
	for key := range merged {
		cum[len(key)/4]++
	}
	for l := 1; l <= maxWin; l++ {
		cum[l] += cum[l-1]
	}
	for i, cmp := range comps {
		want := len(merged)
		if ml := c.maxLen[i]; ml > 0 && ml < maxWin {
			want = cum[ml]
		}
		if got := cmp.Escape().Len(); got != want {
			return nil, fmt.Errorf("compiled: component %d escape table holds %d windows, merged form implies %d",
				i, got, want)
		}
	}
	return merged, nil
}

// nodeInfo is the pre-layout view of one merged trie node.
type nodeInfo struct {
	dist  *markov.Dist // canonical follower distribution (nil: escape-only node)
	mask  uint64       // components storing this state with evidence
	occ   uint64
	start uint64
	id    int32 // assigned by layout
}

// unionNodes unions every component's evidence states with every escape
// window and suffix-closes the result so the merged structure is a valid
// trie. Components sharing a state must agree on its follower counts.
func unionNodes(comps []*markov.VMM, merged map[string]window) (map[string]*nodeInfo, error) {
	nodes := make(map[string]*nodeInfo, len(merged))
	get := func(key string) *nodeInfo {
		ni := nodes[key]
		if ni == nil {
			ni = &nodeInfo{}
			nodes[key] = ni
		}
		return ni
	}
	for i, cmp := range comps {
		var conflict string
		cmp.ForEachNode(func(key string, d *markov.Dist) {
			if d.Total() == 0 {
				return // suffix-closure filler states carry no evidence
			}
			ni := get(key)
			switch {
			case ni.dist == nil:
				ni.dist = d
			case ni.dist != d && !distEqual(ni.dist, d):
				conflict = key
			}
			ni.mask |= 1 << uint(i)
		})
		if conflict != "" {
			return nil, fmt.Errorf("compiled: components disagree on followers of state %v",
				query.SeqFromKey(conflict))
		}
	}
	for key, w := range merged {
		ni := get(key)
		ni.occ, ni.start = w.occ, w.start
	}
	// Suffix closure: every trailing sub-sequence of a stored key must be a
	// node so descent paths are connected.
	keys := make([]string, 0, len(nodes))
	for key := range nodes {
		keys = append(keys, key)
	}
	for _, key := range keys {
		for s := key[4:]; len(s) > 0; s = s[4:] {
			if _, ok := nodes[s]; !ok {
				nodes[s] = &nodeInfo{}
			}
		}
	}
	return nodes, nil
}

// distEqual reports whether two follower distributions carry identical
// counts. Components trained from shared statistics reference the same Dist
// (caught by the pointer check before this is called); deserialized mixtures
// hold structurally equal copies.
func distEqual(a, b *markov.Dist) bool {
	if a.Total() != b.Total() || a.Support() != b.Support() {
		return false
	}
	equal := true
	b.ForEachCount(func(q query.ID, c uint64) {
		if a.Count(q) != c {
			equal = false
		}
	})
	return equal
}

// layout assigns dense node IDs level by level — children of lower-ID
// parents first, siblings sorted by edge symbol — which makes the edge list
// globally parent-ordered so that edge e leads to node e+1, then fills every
// flat array.
func (c *Model) layout(nodes map[string]*nodeInfo) {
	byLen := make(map[int][]string)
	maxDepth := 0
	for key := range nodes {
		l := len(key) / 4
		byLen[l] = append(byLen[l], key)
		if l > maxDepth {
			maxDepth = l
		}
	}
	c.depth = maxDepth

	n := len(nodes) + 1 // + root
	c.childKey = make([]uint32, 0, n-1)
	edgeParent := make([]int32, 0, n-1)
	order := make([]*nodeInfo, 1, n) // order[v] = info of node v (order[0] = nil root)

	nextID := int32(1)
	for l := 1; l <= maxDepth; l++ {
		level := byLen[l]
		// Parent IDs are already assigned (level l-1); sort by (parent, symbol).
		sort.Slice(level, func(i, j int) bool {
			pi, pj := parentID(nodes, level[i]), parentID(nodes, level[j])
			if pi != pj {
				return pi < pj
			}
			return symbol(level[i]) < symbol(level[j])
		})
		for _, key := range level {
			ni := nodes[key]
			ni.id = nextID
			nextID++
			order = append(order, ni)
			// Edges arrive in (parent, symbol) order across the whole build
			// because every level-l parent ID is smaller than every
			// level-(l+1) parent ID — that global ordering is what makes the
			// "edge e leads to node e+1" layout invariant hold.
			c.childKey = append(c.childKey, symbol(key))
			edgeParent = append(edgeParent, parentID(nodes, key))
		}
	}
	// CSR offsets: count edges per parent, then prefix-sum. Edges are
	// parent-sorted, so each node's children form one contiguous range.
	c.childStart = make([]int32, n+1)
	for _, p := range edgeParent {
		c.childStart[p+1]++
	}
	for v := 1; v <= n; v++ {
		c.childStart[v] += c.childStart[v-1]
	}

	c.nodes = n
	c.evidence = make([]uint64, n)
	c.occ = make([]uint64, n)
	c.startOcc = make([]uint64, n)
	c.floor = make([]float64, n)
	c.folStart = make([]int32, 1, n+1)
	for v := 1; v < n; v++ {
		ni := order[v]
		c.evidence[v] = ni.mask
		c.occ[v] = ni.occ
		c.startOcc[v] = ni.start
		var ids []uint32
		var counts []uint64
		if ni.dist != nil {
			qs := ni.dist.Queries() // ascending ID
			ids = make([]uint32, len(qs))
			counts = make([]uint64, len(qs))
			for j, q := range qs {
				ids[j] = uint32(q)
				counts[j] = ni.dist.Count(q)
			}
		}
		c.appendFollowers(v, ids, counts)
	}
	c.folStart = append(c.folStart, int32(len(c.folIDSorted)))
	c.initScratch()
}

// parentID resolves a key's parent node (the key minus its oldest query).
func parentID(nodes map[string]*nodeInfo, key string) int32 {
	if len(key) == 4 {
		return 0
	}
	return nodes[key[4:]].id
}

// symbol is the edge label: the key's oldest query ID (leading 4 bytes).
func symbol(key string) uint32 {
	return uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
}

// appendFollowers installs node v's follower arrays from its ID-ascending
// (ids, counts) pairs, reproducing Dist.SmoothedP's arithmetic exactly:
// z = 1 + u/|Q| with u unobserved queries, observed probability c/total/z,
// unobserved floor (1/|Q|)/z. Nodes must be appended in ID order; Read uses
// the same path so compiled and reloaded models are bit-identical.
func (c *Model) appendFollowers(v int, ids []uint32, counts []uint64) {
	if v != len(c.folStart) {
		panic("compiled: followers appended out of node order")
	}
	c.folStart = append(c.folStart, int32(len(c.folIDSorted))) // folStart[v]
	support := len(ids)
	if support == 0 {
		return
	}
	var total uint64
	for _, cnt := range counts {
		total += cnt
	}
	u := c.vocab - support
	if u < 0 {
		u = 0
	}
	z := 1 + float64(u)/float64(c.vocab)
	c.floor[v] = 1 / float64(c.vocab) / z

	base := len(c.folIDSorted)
	c.folIDSorted = append(c.folIDSorted, ids...)
	c.folCount = append(c.folCount, counts...)
	for _, cnt := range counts {
		c.folPSorted = append(c.folPSorted, float64(cnt)/float64(total)/z)
	}
	// Ranked view: count descending, ID ascending — the frozen TopN order.
	perm := make([]int, support)
	for j := range perm {
		perm[j] = j
	}
	sort.Slice(perm, func(a, b int) bool {
		if counts[perm[a]] != counts[perm[b]] {
			return counts[perm[a]] > counts[perm[b]]
		}
		return ids[perm[a]] < ids[perm[b]]
	})
	for _, j := range perm {
		c.folIDRanked = append(c.folIDRanked, ids[j])
		c.folPRanked = append(c.folPRanked, c.folPSorted[base+j])
	}
}

// Name implements model.Predictor.
func (c *Model) Name() string {
	if c.Quantised() {
		return "MVMM (compiled, quantised)"
	}
	return "MVMM (compiled)"
}

// Components reports the number of mixture components baked in.
func (c *Model) Components() int { return c.k }

// Vocab reports the smoothing vocabulary size |Q|.
func (c *Model) Vocab() int { return c.vocab }

// Depth reports the deepest stored suffix length.
func (c *Model) Depth() int { return c.depth }

// Nodes reports the merged trie size excluding the root — the realised
// version of the paper's Table VII single-PST deployment estimate.
func (c *Model) Nodes() int { return c.nodes - 1 }

// Followers reports the total follower entries across all nodes.
func (c *Model) Followers() int { return int(c.folStart[len(c.folStart)-1]) }

// Exact reports whether the model carries the full float64 probabilities and
// raw counts (models built by Compile or loaded from CPS1/CPS3). Only exact
// models can be serialised to the CPS1 and CPS3 layouts; quantised models
// must be re-encoded with AppendFlat4 or recompiled from the mixture.
func (c *Model) Exact() bool { return !c.Quantised() }

// Quantised reports whether follower probabilities are served from the
// fixed-point CPS4 representation (bounded-error dequantisation) rather than
// the exact float64 arrays.
func (c *Model) Quantised() bool { return c.quantised }

// Per-node accessors bridging the exact (wide) and quantised (narrow) array
// representations; the nil check resolves to the populated one. The branch
// predicts perfectly — a model is one or the other for its whole lifetime.

func (c *Model) evidenceAt(v int32) uint64 {
	if c.evidence != nil {
		return c.evidence[v]
	}
	return uint64(c.evidence16[v])
}

func (c *Model) occAt(v int32) uint64 {
	if c.occ != nil {
		return c.occ[v]
	}
	return uint64(c.occ32[v])
}

func (c *Model) startOccAt(v int32) uint64 {
	if c.startOcc != nil {
		return c.startOcc[v]
	}
	return uint64(c.startOcc32[v])
}

func (c *Model) floorAt(v int32) float64 {
	if c.floor != nil {
		return c.floor[v]
	}
	return float64(c.floor32[v])
}
