package compiled

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
)

// mustCompact round-trips a model through the CPS5 encoding in the given
// view mode, checking the size accounting on the way.
func mustCompact(t testing.TB, c *Model, probs8 bool, mode ViewMode) *Model {
	t.Helper()
	blob, err := c.AppendFlat5(nil, probs8)
	if err != nil {
		t.Fatalf("AppendFlat5(probs8=%v): %v", probs8, err)
	}
	if int64(len(blob)) != c.Flat5Size(probs8) {
		t.Fatalf("Flat5Size(probs8=%v) = %d, blob is %d bytes", probs8, c.Flat5Size(probs8), len(blob))
	}
	m, err := FromBytes(blob, mode)
	if err != nil {
		t.Fatalf("FromBytes(CPS5): %v", err)
	}
	if !m.Quantised() || m.Exact() {
		t.Fatal("CPS5 load did not produce a quantised model")
	}
	return m
}

// TestFlat5BitIdenticalToCPS4: the uint16 tier reuses CPS4's per-node
// quantisation grid exactly, so a CPS5 load must serve bit-identically to a
// CPS4 load of the same exact model — the strongest form of the parity
// acceptance (rank inversions and score error inherited unchanged).
func TestFlat5BitIdenticalToCPS4(t *testing.T) {
	for seed := int64(501); seed <= 504; seed++ {
		c, sessions, vocab, rng := flatTestModel(t, seed)
		ctxs := parityContexts(rng, sessions, vocab)
		q4 := mustQuantise(t, c, ViewCopy)
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			q5 := mustCompact(t, c, false, mode)
			assertBitIdentical(t, "cps5-vs-cps4", q4, q5, ctxs, vocab, rng)
		}
	}
}

// TestFlat5ParityVsExact pins the end-to-end error contract against the
// float64 model: probabilities within quantTol, rank inversions only at
// near-ties — the same bound CPS4 promises.
func TestFlat5ParityVsExact(t *testing.T) {
	for seed := int64(511); seed <= 513; seed++ {
		c, sessions, vocab, rng := flatTestModel(t, seed)
		ctxs := parityContexts(rng, sessions, vocab)
		assertQuantParity(t, c, mustCompact(t, c, false, ViewAuto), ctxs, vocab, rng)
	}
}

// TestFlat5FromCPS4 re-encodes a CPS4-loaded model (exact probabilities
// gone, fixed-point tables only) as CPS5: the stored values are re-emitted
// verbatim, so serving stays bit-identical.
func TestFlat5FromCPS4(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 521)
	q4 := mustQuantise(t, c, ViewCopy)
	q5 := mustCompact(t, q4, false, ViewCopy)
	assertBitIdentical(t, "cps4-reencoded", q4, q5, parityContexts(rng, sessions, vocab), vocab, rng)
}

// TestFlat5RoundTripStable: view and copy loads behave identically, and a
// CPS5-loaded model re-encodes to the byte-identical blob (nothing drifts
// across save/load generations).
func TestFlat5RoundTripStable(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 531)
	blob, err := c.AppendFlat5(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	viewed, err := FromBytes(blob, ViewAuto)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := FromBytes(blob, ViewCopy)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := parityContexts(rng, sessions, vocab)
	assertBitIdentical(t, "view-vs-copy", copied, viewed, ctxs, vocab, rng)

	for label, m := range map[string]*Model{"viewed": viewed, "copied": copied} {
		again, err := m.AppendFlat5(nil, false)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", label, err)
		}
		if !bytes.Equal(blob, again) {
			t.Fatalf("%s: CPS5 re-encode is not byte-identical (%d vs %d bytes)", label, len(blob), len(again))
		}
	}

	// WriteFlat5 must emit the same bytes as AppendFlat5.
	var buf bytes.Buffer
	n, err := c.WriteFlat5(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(blob)) || !bytes.Equal(buf.Bytes(), blob) {
		t.Fatalf("WriteFlat5 wrote %d bytes, AppendFlat5 %d; equal=%v", n, len(blob), bytes.Equal(buf.Bytes(), blob))
	}
}

// TestFlat5SizeReduction: delta+varint edges must undercut CPS4's fixed-
// width arrays on every seeded corpus (the 0.8 production ratio is gated in
// BENCH_serving.json on the benchmark model).
func TestFlat5SizeReduction(t *testing.T) {
	for _, seed := range []int64{541, 547, 557} {
		c, _, _, _ := flatTestModel(t, seed)
		cps4, cps5 := c.Flat4Size(), c.Flat5Size(false)
		if cps5 >= cps4 {
			t.Fatalf("seed %d: CPS5 %d bytes >= CPS4 %d bytes", seed, cps5, cps4)
		}
		t.Logf("seed %d: cps5/cps4 = %.3f (%d / %d bytes)", seed, float64(cps5)/float64(cps4), cps5, cps4)
	}
}

// TestFlat5Probs8Parity: when the coarse uint8 tier is accepted, ranking
// must agree with the uint16 tier except at CPS4-grid near-ties (the
// encoder refuses anything coarser), and probabilities must stay within the
// uint8 half-step bound.
func TestFlat5Probs8Parity(t *testing.T) {
	// Zipf corpora almost always refuse the coarse tier (their tails
	// collapse), so the acceptance path runs on a crafted corpus whose
	// follower probabilities are spaced far wider than a uint8 level.
	c, ctxs := probs8TestModel(t)
	blob, err := c.AppendFlat5(nil, true)
	if err != nil {
		t.Fatalf("uint8 tier refused a well-separated distribution: %v", err)
	}
	q8, err := FromBytes(blob, ViewAuto)
	if err != nil {
		t.Fatal(err)
	}
	q4 := mustQuantise(t, c, ViewCopy)
	// The uint8 grid step is maxP/255, so scores can be off by up to half
	// of that (~2e-3 for maxP near 1) plus mixture smoothing slack.
	const tol8 = 3e-3
	for _, ctx := range ctxs {
		want := q4.Predict(ctx, 5)
		got := q8.Predict(ctx, 5)
		if len(want) != len(got) {
			t.Fatalf("ctx %v: u16 %d predictions, u8 %d", ctx, len(want), len(got))
		}
		for i := range want {
			if got[i].Query != want[i].Query {
				pw, pg := q4.Prob(ctx, want[i].Query), q4.Prob(ctx, got[i].Query)
				if diff := pw - pg; diff > 2*quantTol {
					t.Fatalf("ctx %v rank %d: u8 swapped %d over %d, u16 scores %g apart (not a near-tie)",
						ctx, i, got[i].Query, want[i].Query, diff)
				}
			}
			if diff := got[i].Score - want[i].Score; diff > tol8 || diff < -tol8 {
				t.Fatalf("ctx %v rank %d: u8 score off by %g", ctx, i, diff)
			}
		}
	}
	// A uint8-loaded model re-encodes its own tier verbatim.
	again, err := q8.AppendFlat5(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("uint8 re-encode not byte-identical")
	}
	// The coarse blob must undercut the uint16 one.
	if s8, s16 := c.Flat5Size(true), c.Flat5Size(false); s8 >= s16 {
		t.Fatalf("uint8 blob %d bytes >= uint16 blob %d bytes", s8, s16)
	}
}

// probs8TestModel builds a model whose follower probabilities are spaced
// far wider than a uint8 quantisation level, so the coarse tier is
// accepted, along with evaluation contexts covering its paths.
func probs8TestModel(t testing.TB) (*Model, []query.Seq) {
	t.Helper()
	sessions := []query.Session{
		{Queries: query.Seq{0, 1}, Count: 100},
		{Queries: query.Seq{0, 2}, Count: 60},
		{Queries: query.Seq{0, 3}, Count: 25},
		{Queries: query.Seq{1, 2}, Count: 80},
		{Queries: query.Seq{1, 4}, Count: 40},
		{Queries: query.Seq{2, 3, 4}, Count: 50},
		{Queries: query.Seq{3, 5}, Count: 30},
		{Queries: query.Seq{4, 5, 1}, Count: 20},
	}
	query.SortSessions(sessions)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.05}, 6,
		markov.MVMMOptions{TrainSample: 50, NewtonIters: 3})
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	var ctxs []query.Seq
	for _, s := range sessions {
		for l := 1; l <= len(s.Queries); l++ {
			ctxs = append(ctxs, s.Queries[:l])
		}
	}
	ctxs = append(ctxs, query.Seq{5, 0}, nil)
	return c, ctxs
}

// TestFlat5Probs8Refusal: a distribution with many ranked followers spaced
// wider than the CPS4 grid but narrower than a uint8 level must be refused
// — collapsing them would reorder ranks beyond the promised bound.
func TestFlat5Probs8Refusal(t *testing.T) {
	// One dominant follower fixes maxP; hundreds of near-equal tails spaced
	// ~1e-5 apart (> maxP/65535, < maxP/255) force level collisions.
	vocab := 260
	var sessions []query.Session
	sessions = append(sessions, query.Session{Queries: query.Seq{0, 1}, Count: 50000})
	for j := 2; j < 250; j++ {
		sessions = append(sessions, query.Session{
			Queries: query.Seq{0, query.ID(j)},
			Count:   uint64(5000 - 4*j),
		})
	}
	query.SortSessions(sessions)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0}, vocab,
		markov.MVMMOptions{TrainSample: 100, NewtonIters: 3})
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendFlat5(nil, true); !errors.Is(err, ErrUnquantisable) {
		t.Fatalf("uint8 tier on a rank-collapsing distribution: err = %v, want ErrUnquantisable", err)
	}
	// The uint16 tier carries the same distribution without complaint.
	if _, err := c.AppendFlat5(nil, false); err != nil {
		t.Fatalf("uint16 tier refused the same model: %v", err)
	}
}

// TestAppendFlat4RefusesCPS5: a CPS5-loaded model keeps no ID-sorted
// follower array, so the CPS4 encoder must refuse it loudly (re-encode with
// AppendFlat5 instead).
func TestAppendFlat4RefusesCPS5(t *testing.T) {
	c, _, _, _ := flatTestModel(t, 571)
	q5 := mustCompact(t, c, false, ViewCopy)
	if _, err := q5.AppendFlat4(nil); !errors.Is(err, ErrUnquantisable) {
		t.Fatalf("AppendFlat4 on a CPS5-loaded model: err = %v, want ErrUnquantisable", err)
	}
}

// TestFlat5BatchParity: batched descent over a CPS5 model — sequential and
// parallel at several worker counts — must match per-context Predict calls
// bit for bit, with exactly one emit per index.
func TestFlat5BatchParity(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 577)
	q5 := mustCompact(t, c, false, ViewAuto)
	ctxs := parityContexts(rng, sessions, vocab)
	assertBatchParity(t, q5, ctxs, rng)

	ns := make([]int, len(ctxs))
	for i := range ns {
		ns[i] = 1 + rng.Intn(8)
	}
	want := make([][]model.Prediction, len(ctxs))
	for i := range ctxs {
		want[i] = q5.Predict(ctxs[i], ns[i])
	}
	for _, workers := range []int{0, 2, 3, 8} {
		emitted := make([]int, len(ctxs))
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		q5.PredictBatchParallel(ctxs, ns, workers, func(i int, preds []model.Prediction) {
			<-mu
			emitted[i]++
			if len(preds) != len(want[i]) {
				t.Errorf("workers=%d ctx %d: %d predictions, want %d", workers, i, len(preds), len(want[i]))
			} else {
				for j := range preds {
					if preds[j] != want[i][j] {
						t.Errorf("workers=%d ctx %d rank %d: %v, want %v", workers, i, j, preds[j], want[i][j])
						break
					}
				}
			}
			mu <- struct{}{}
		})
		for i, n := range emitted {
			if n != 1 {
				t.Fatalf("workers=%d: ctx %d emitted %d times", workers, i, n)
			}
		}
	}
}

// TestFlat5RejectsCorruption mirrors the CPS3/CPS4 robustness tables:
// truncations fail in both view modes, every byte flip fails the ViewCopy
// CRC, and flips that survive ViewAuto's structural validation must never
// panic when the model is exercised.
func TestFlat5RejectsCorruption(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 587)
	good, err := c.AppendFlat5(nil, false)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{0, 3, flatHeaderSize - 1, compactArraysStart - 1, len(good) / 3, len(good) - 1} {
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			if _, err := FromBytes(good[:n], mode); err == nil {
				t.Fatalf("truncation to %d bytes (mode %d) went undetected", n, mode)
			}
		}
	}

	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		if _, err := FromBytes(bad, ViewCopy); err == nil {
			t.Fatalf("trial %d: corrupted blob passed ViewCopy", trial)
		}
	}

	ctxs := parityContexts(rng, sessions, vocab)
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		m, err := FromBytes(bad, ViewAuto)
		if err != nil {
			continue
		}
		for _, ctx := range ctxs[:10] {
			m.Predict(ctx, 5)
			if len(ctx) > 0 {
				m.Prob(ctx, ctx[len(ctx)-1])
			}
		}
	}
}

// FuzzFlat5Decode: arbitrary bytes through the CPS5 decoder must error or
// serve, never panic — in both view modes (the varint regions are the new
// attack surface; truncated or over-long encodings must be caught).
func FuzzFlat5Decode(f *testing.F) {
	c, _, _, _ := flatTestModel(f, 593)
	good, err := c.AppendFlat5(nil, false)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:compactArraysStart+7])
	f.Add([]byte("CPS5 but nonsense"))
	good8, err8 := c.AppendFlat5(nil, true)
	if err8 == nil {
		f.Add(good8)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			m, err := FromBytes(data, mode)
			if err != nil {
				continue
			}
			m.Predict(query.Seq{1, 2}, 5)
			m.Prob(query.Seq{2}, 1)
		}
	})
}

// TestFlat5ZeroAllocs: steady-state prediction on a CPS5 model must remain
// allocation-free — the lazy follower-ID decode reuses the pooled scratch
// arena.
func TestFlat5ZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	c, sessions, vocab, rng := flatTestModel(t, 599)
	q5 := mustCompact(t, c, false, ViewAuto)
	ctxs := parityContexts(rng, sessions, vocab)
	buf := make([]model.Prediction, 0, 32)
	for _, ctx := range ctxs {
		buf = q5.AppendPredictions(buf[:0], ctx, 5)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		ctx := ctxs[i%len(ctxs)]
		buf = q5.AppendPredictions(buf[:0], ctx, 5)
		if len(ctx) > 0 {
			_ = q5.Prob(ctx, ctx[len(ctx)-1])
		}
		i++
	})
	if allocs > 0.05 {
		t.Fatalf("steady-state CPS5 predict allocates %.2f times per op, want 0", allocs)
	}
}
