package compiled

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
)

// quantTol is the asserted ceiling on quantisation error. The format bound
// is qstep/2 ≤ 1/(2·65535) ≈ 7.7e-6 per node, and mixture weights and
// escape chains multiply to ≤ 1, so scores and probabilities stay within
// it; the ceiling leaves slack for float32 step rounding.
const quantTol = 2e-5

// mustQuantise round-trips an exact model through the CPS4 encoding in the
// given view mode.
func mustQuantise(t testing.TB, c *Model, mode ViewMode) *Model {
	t.Helper()
	blob, err := c.AppendFlat4(nil)
	if err != nil {
		t.Fatalf("AppendFlat4: %v", err)
	}
	if int64(len(blob)) != c.Flat4Size() {
		t.Fatalf("Flat4Size = %d, blob is %d bytes", c.Flat4Size(), len(blob))
	}
	q, err := FromBytes(blob, mode)
	if err != nil {
		t.Fatalf("FromBytes(CPS4): %v", err)
	}
	if !q.Quantised() || q.Exact() {
		t.Fatal("CPS4 load did not produce a quantised model")
	}
	return q
}

// assertQuantParity checks the quantised model against the exact one under
// the CPS4 error contract: probabilities within quantTol, prediction lists
// of identical length whose rank disagreements only involve candidates
// whose exact scores are within 2·quantTol of each other (near-ties), and
// identical coverage.
func assertQuantParity(t *testing.T, exact, quant *Model, ctxs []query.Seq, vocab int, rng *rand.Rand) {
	t.Helper()
	for _, ctx := range ctxs {
		for _, n := range []int{1, 5, 10} {
			want := exact.Predict(ctx, n)
			got := quant.Predict(ctx, n)
			if len(want) != len(got) {
				t.Fatalf("ctx %v n=%d: exact %d predictions, quantised %d", ctx, n, len(want), len(got))
			}
			for i := range want {
				if got[i].Query != want[i].Query {
					pw := exact.Prob(ctx, want[i].Query)
					pg := exact.Prob(ctx, got[i].Query)
					if diff := math.Abs(pw - pg); diff > 2*quantTol {
						t.Fatalf("ctx %v n=%d rank %d: quantised ranked %d over %d but exact scores differ by %g (not a near-tie)",
							ctx, n, i, got[i].Query, want[i].Query, diff)
					}
				}
				if diff := math.Abs(got[i].Score - exact.Prob(ctx, got[i].Query)); diff > quantTol {
					t.Fatalf("ctx %v n=%d rank %d: quantised score off by %g (> %g)", ctx, n, i, diff, quantTol)
				}
			}
		}
		if exact.Covers(ctx) != quant.Covers(ctx) {
			t.Fatalf("ctx %v: coverage mismatch exact=%v quantised=%v", ctx, exact.Covers(ctx), quant.Covers(ctx))
		}
		for i := 0; i < 5; i++ {
			q := query.ID(rng.Intn(vocab + 2))
			pw, pg := exact.Prob(ctx, q), quant.Prob(ctx, q)
			if diff := math.Abs(pw - pg); diff > quantTol {
				t.Fatalf("ctx %v q=%d: prob diff %g (exact %v, quantised %v)", ctx, q, diff, pw, pg)
			}
		}
	}
}

// TestQuantParityRandomCorpora is the CPS4 correctness property: across
// seeded random corpora, the quantised model must stay within the bounded
// error contract of the float64 path — top-10 rank agreement modulo
// near-ties, probabilities within quantTol.
func TestQuantParityRandomCorpora(t *testing.T) {
	for seed := int64(101); seed <= 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vocab := 20 + rng.Intn(60)
		sessions := randomCorpus(rng, vocab, 300+rng.Intn(1200))
		m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.01, 0.05, 0.1}, vocab,
			markov.MVMMOptions{TrainSample: 200, NewtonIters: 8})
		c, err := Compile(m)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ctxs := parityContexts(rng, sessions, vocab)
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			assertQuantParity(t, c, mustQuantise(t, c, mode), ctxs, vocab, rng)
		}
	}
}

// TestQuantRoundTripStable: view and copy loads of one blob must behave
// bit-identically, and re-encoding a quantised model must reproduce the
// blob byte for byte (the dequantisation tables are exact, so nothing
// drifts across save/load generations).
func TestQuantRoundTripStable(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 211)
	blob, err := c.AppendFlat4(nil)
	if err != nil {
		t.Fatal(err)
	}
	viewed, err := FromBytes(blob, ViewAuto)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := FromBytes(blob, ViewCopy)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := parityContexts(rng, sessions, vocab)
	assertBitIdentical(t, "view-vs-copy", viewed, copied, ctxs, vocab, rng)
	re, err := copied.AppendFlat4(nil)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(blob, re) {
		t.Fatal("CPS4 re-encode of a quantised model is not byte-identical")
	}
	var buf bytes.Buffer
	if _, err := c.WriteFlat4(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), blob) {
		t.Fatal("WriteFlat4 and AppendFlat4 diverge")
	}
}

// TestQuantBatchParity: the batched descent must be bit-identical to single
// Predict calls on a quantised model too (shared scratch, same arrays).
func TestQuantBatchParity(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 223)
	q := mustQuantise(t, c, ViewAuto)
	assertBatchParity(t, q, parityContexts(rng, sessions, vocab), rng)
	_ = vocab
}

// TestQuantSizeReduction: the quantised blob must be dramatically smaller
// than the exact CPS3 blob — the reason CPS4 exists. The benchmark model's
// ≥40% gate lives in BENCH_serving.json; the toy corpora here must already
// clear 35%.
func TestQuantSizeReduction(t *testing.T) {
	for seed := int64(301); seed <= 303; seed++ {
		c, _, _, _ := flatTestModel(t, seed)
		cps3 := c.FlatSize()
		cps4 := c.Flat4Size()
		if ratio := float64(cps4) / float64(cps3); ratio > 0.65 {
			t.Fatalf("seed %d: CPS4 %d bytes is %.1f%% of CPS3 %d bytes, want <= 65%%",
				seed, cps4, 100*ratio, cps3)
		}
	}
}

// TestQuantWideWidths exercises the wide variants of the narrow arrays: a
// mixture with more than 16 components keeps uint64 evidence masks, and
// session counts above 2^32 keep uint64 occurrence arrays.
func TestQuantWideWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	vocab := 25
	sessions := randomCorpus(rng, vocab, 400)
	eps := make([]float64, 18)
	for i := range eps {
		eps[i] = float64(i) * 0.005
	}
	m := markov.NewMVMMFromEpsilons(sessions, eps, vocab,
		markov.MVMMOptions{TrainSample: 100, NewtonIters: 4})
	c, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if evW, _ := c.quantWidths(); evW != 8 {
		t.Fatalf("evidence width %d for %d components, want 8", evW, c.Components())
	}
	q := mustQuantise(t, c, ViewCopy)
	assertQuantParity(t, c, q, parityContexts(rng, sessions, vocab)[:80], vocab, rng)

	// Huge session counts force 8-byte occurrence arrays.
	big := []query.Session{
		{Queries: query.Seq{1, 2}, Count: 1 << 33},
		{Queries: query.Seq{1, 3}, Count: 7},
		{Queries: query.Seq{2, 3, 4}, Count: 1 << 34},
	}
	mb := markov.NewMVMMFromEpsilons(big, []float64{0.0, 0.05}, 6, markov.MVMMOptions{NewtonIters: 3})
	cb, err := Compile(mb)
	if err != nil {
		t.Fatal(err)
	}
	if _, occW := cb.quantWidths(); occW != 8 {
		t.Fatalf("occurrence width %d for 2^34 counts, want 8", occW)
	}
	qb := mustQuantise(t, cb, ViewCopy)
	assertQuantParity(t, cb, qb, []query.Seq{{1}, {2}, {1, 2}, {3, 2, 1}, {4, 5}}, 6, rng)
}

// TestAppendFlat4Unquantisable: a node with more followers than a 16-bit
// rank index can address must fail with ErrUnquantisable and leave dst
// untouched (len 0 here) — core.saveFlat keys its CPS3 fallback on that.
func TestAppendFlat4Unquantisable(t *testing.T) {
	const support = quantSteps + 1
	c := &Model{
		k: 1, vocab: support + 10, depth: 1, nodes: 2,
		sigma: []float64{1}, maxLen: []int{0},
		childStart: []int32{0, 1, 1}, childKey: []uint32{1},
		evidence: []uint64{0, 1}, occ: []uint64{0, 0}, startOcc: []uint64{0, 0},
		floor:    []float64{0, 1e-6},
		folStart: []int32{0, 0, support},
	}
	c.folIDSorted = make([]uint32, support)
	c.folIDRanked = make([]uint32, support)
	c.folPSorted = make([]float64, support)
	c.folCount = make([]uint64, support)
	for i := range c.folIDSorted {
		c.folIDSorted[i] = uint32(i)
		c.folIDRanked[i] = uint32(i)
		c.folPSorted[i] = 1.0 / support
		c.folCount[i] = 1
	}
	blob, err := c.AppendFlat4(nil)
	if !errors.Is(err, ErrUnquantisable) {
		t.Fatalf("err = %v, want ErrUnquantisable", err)
	}
	if len(blob) != 0 {
		t.Fatalf("failed AppendFlat4 returned %d bytes, want the untouched dst", len(blob))
	}
}

// TestQuantRejectsCorruption mirrors the CPS3 robustness table: truncations
// fail in both view modes, every byte flip fails the ViewCopy CRC, and
// flips that survive ViewAuto's structural validation must never panic when
// the model is exercised (defensive clamping in pooling and descent).
func TestQuantRejectsCorruption(t *testing.T) {
	c, sessions, vocab, rng := flatTestModel(t, 409)
	good, err := c.AppendFlat4(nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{0, 3, flatHeaderSize - 1, quantArraysStart - 1, len(good) / 3, len(good) - 1} {
		for _, mode := range []ViewMode{ViewAuto, ViewCopy} {
			if _, err := FromBytes(good[:n], mode); err == nil {
				t.Fatalf("truncation to %d bytes (mode %d) went undetected", n, mode)
			}
		}
	}

	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		if _, err := FromBytes(bad, ViewCopy); err == nil {
			t.Fatalf("trial %d: corrupted blob passed ViewCopy", trial)
		}
	}

	ctxs := parityContexts(rng, sessions, vocab)
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		m, err := FromBytes(bad, ViewAuto)
		if err != nil {
			continue
		}
		for _, ctx := range ctxs[:10] {
			m.Predict(ctx, 5)
			if len(ctx) > 0 {
				m.Prob(ctx, ctx[len(ctx)-1])
			}
		}
	}
}

// TestQuantisedCannotWriteExactForms: the exact CPS1/CPS3 encoders must
// refuse a quantised model loudly (its raw counts are gone) instead of
// writing garbage.
func TestQuantisedCannotWriteExactForms(t *testing.T) {
	c, _, _, _ := flatTestModel(t, 419)
	q := mustQuantise(t, c, ViewCopy)
	if _, err := q.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo on a quantised model succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendFlat on a quantised model did not panic")
		}
	}()
	q.AppendFlat(nil)
}

// TestQuantZeroAllocs: steady-state prediction on a quantised model must
// stay allocation-free — the narrow arrays are read in place.
func TestQuantZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	c, sessions, vocab, rng := flatTestModel(t, 421)
	q := mustQuantise(t, c, ViewAuto)
	ctxs := parityContexts(rng, sessions, vocab)
	buf := make([]model.Prediction, 0, 32)
	for _, ctx := range ctxs {
		buf = q.AppendPredictions(buf[:0], ctx, 5)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		ctx := ctxs[i%len(ctxs)]
		buf = q.AppendPredictions(buf[:0], ctx, 5)
		if len(ctx) > 0 {
			_ = q.Prob(ctx, ctx[len(ctx)-1])
		}
		i++
	})
	if allocs > 0.05 {
		t.Fatalf("steady-state quantised predict allocates %.2f times per op, want 0", allocs)
	}
}
