package compiled

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
)

// randomCorpus generates a seeded synthetic training set with power-law-ish
// query popularity and session lengths 1..6, the shape real query logs have.
func randomCorpus(rng *rand.Rand, vocab, nSessions int) []query.Session {
	zipf := rand.NewZipf(rng, 1.3, 1.5, uint64(vocab-1))
	raw := make(map[string]uint64)
	for s := 0; s < nSessions; s++ {
		l := 1 + rng.Intn(6)
		seq := make(query.Seq, l)
		for i := range seq {
			seq[i] = query.ID(zipf.Uint64())
		}
		raw[seq.Key()] += 1 + uint64(rng.Intn(20))
	}
	sessions := make([]query.Session, 0, len(raw))
	for k, c := range raw {
		sessions = append(sessions, query.Session{Queries: query.SeqFromKey(k), Count: c})
	}
	query.SortSessions(sessions)
	return sessions
}

// parityContexts derives the evaluation contexts: every proper prefix of the
// training sessions (covered paths), random perturbations (partly covered),
// and adversarial shapes — unknown IDs, overlong contexts, empty-ish ones.
func parityContexts(rng *rand.Rand, sessions []query.Session, vocab int) []query.Seq {
	var ctxs []query.Seq
	for _, s := range sessions {
		for l := 1; l <= len(s.Queries); l++ {
			ctxs = append(ctxs, s.Queries[:l])
		}
	}
	for i := 0; i < 200; i++ {
		l := 1 + rng.Intn(8)
		seq := make(query.Seq, l)
		for j := range seq {
			seq[j] = query.ID(rng.Intn(vocab + 3)) // some IDs outside the vocab
		}
		ctxs = append(ctxs, seq)
	}
	long := make(query.Seq, 40)
	for j := range long {
		long[j] = query.ID(rng.Intn(vocab))
	}
	ctxs = append(ctxs, long, nil)
	return ctxs
}

// assertParity checks that the compiled model reproduces the interpreted
// mixture on every context: identical prediction IDs in identical order with
// scores within 1e-12, identical Prob values within 1e-12, identical
// coverage.
func assertParity(t *testing.T, m *markov.MVMM, c *Model, ctxs []query.Seq, vocab int, rng *rand.Rand) {
	t.Helper()
	for _, ctx := range ctxs {
		for _, n := range []int{1, 3, 5, 17} {
			want := m.Predict(ctx, n)
			got := c.Predict(ctx, n)
			if len(want) != len(got) {
				t.Fatalf("ctx %v n=%d: interpreted %d predictions, compiled %d\nwant %v\ngot  %v",
					ctx, n, len(want), len(got), want, got)
			}
			for i := range want {
				if want[i].Query != got[i].Query {
					t.Fatalf("ctx %v n=%d rank %d: interpreted %d, compiled %d\nwant %v\ngot  %v",
						ctx, n, i, want[i].Query, got[i].Query, want, got)
				}
				if diff := math.Abs(want[i].Score - got[i].Score); diff > 1e-12 {
					t.Fatalf("ctx %v n=%d rank %d: score diff %g (interpreted %v, compiled %v)",
						ctx, n, i, diff, want[i].Score, got[i].Score)
				}
			}
		}
		if m.Covers(ctx) != c.Covers(ctx) {
			t.Fatalf("ctx %v: coverage mismatch interpreted=%v compiled=%v", ctx, m.Covers(ctx), c.Covers(ctx))
		}
		for i := 0; i < 5; i++ {
			q := query.ID(rng.Intn(vocab + 2))
			pw, pg := m.Prob(ctx, q), c.Prob(ctx, q)
			if diff := math.Abs(pw - pg); diff > 1e-12 {
				t.Fatalf("ctx %v q=%d: prob diff %g (interpreted %v, compiled %v)", ctx, q, diff, pw, pg)
			}
		}
	}
	assertBatchParity(t, c, ctxs, rng)
}

// assertBatchParity checks that the batched descent is bit-identical to
// per-context Predict calls, across varying per-context n.
func assertBatchParity(t *testing.T, c *Model, ctxs []query.Seq, rng *rand.Rand) {
	t.Helper()
	ns := make([]int, len(ctxs))
	for i := range ns {
		ns[i] = []int{1, 3, 5, 17}[rng.Intn(4)]
	}
	seen := make([]bool, len(ctxs))
	c.PredictBatch(ctxs, ns, func(i int, preds []model.Prediction) {
		if seen[i] {
			t.Fatalf("batch emitted context %d twice", i)
		}
		seen[i] = true
		want := c.Predict(ctxs[i], ns[i])
		if len(want) != len(preds) {
			t.Fatalf("ctx %v n=%d: batch %d predictions, single %d", ctxs[i], ns[i], len(preds), len(want))
		}
		for j := range want {
			if want[j] != preds[j] { // bit-exact, not approximate
				t.Fatalf("ctx %v n=%d rank %d: batch %v, single %v", ctxs[i], ns[i], j, preds[j], want[j])
			}
		}
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("batch never emitted context %d", i)
		}
	}
}

// TestCompiledParityRandomCorpora is the property test behind the compiled
// model's correctness claim: across seeded random corpora and mixture
// shapes, CompiledModel.Predict/Prob must exactly reproduce the interpreted
// MVMM — same IDs, same order, scores within 1e-12.
func TestCompiledParityRandomCorpora(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vocab := 20 + rng.Intn(60)
		sessions := randomCorpus(rng, vocab, 300+rng.Intn(1200))
		m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.01, 0.05, 0.1}, vocab,
			markov.MVMMOptions{TrainSample: 200, NewtonIters: 8})
		c, err := Compile(m)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		assertParity(t, m, c, parityContexts(rng, sessions, vocab), vocab, rng)
	}
}

// TestCompiledParityMixedBounds compiles a mixture whose components use
// different context bounds D — separately built escape tables with different
// window limits — exercising the per-component length gating of the merged
// escape data.
func TestCompiledParityMixedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vocab := 30
	sessions := randomCorpus(rng, vocab, 800)
	m := markov.NewMVMM(sessions, []markov.VMMConfig{
		{Epsilon: 0.0, D: 2, Vocab: vocab},
		{Epsilon: 0.02, D: 3, Vocab: vocab},
		{Epsilon: 0.05, Vocab: vocab}, // unbounded
	}, markov.MVMMOptions{TrainSample: 200, NewtonIters: 8})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	assertParity(t, m, c, parityContexts(rng, sessions, vocab), vocab, rng)
}

// TestCompiledParityFixedSigma covers the ablation mixture (uniform Gaussian
// widths instead of the learned Eq. 9 solution).
func TestCompiledParityFixedSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := 25
	sessions := randomCorpus(rng, vocab, 600)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.03, 0.08}, vocab,
		markov.MVMMOptions{FixedSigma: 1.5})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	assertParity(t, m, c, parityContexts(rng, sessions, vocab), vocab, rng)
}

// TestCompiledRoundTrip serializes and reloads a compiled model and checks
// the reloaded form is bit-identical on predictions and probabilities (Read
// rebuilds probabilities through the same arithmetic as Compile).
func TestCompiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := 35
	sessions := randomCorpus(rng, vocab, 900)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.05, 0.1}, vocab,
		markov.MVMMOptions{TrainSample: 150, NewtonIters: 6})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	r, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if r.Nodes() != c.Nodes() || r.Followers() != c.Followers() || r.Depth() != c.Depth() ||
		r.Components() != c.Components() || r.Vocab() != c.Vocab() {
		t.Fatalf("reloaded shape differs: nodes %d/%d followers %d/%d depth %d/%d",
			r.Nodes(), c.Nodes(), r.Followers(), c.Followers(), r.Depth(), c.Depth())
	}
	for _, ctx := range parityContexts(rng, sessions, vocab) {
		a := c.Predict(ctx, 5)
		b := r.Predict(ctx, 5)
		if len(a) != len(b) {
			t.Fatalf("ctx %v: %d vs %d predictions after reload", ctx, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] { // bit-exact, not approximate
				t.Fatalf("ctx %v rank %d: %v vs %v after reload", ctx, i, a[i], b[i])
			}
		}
		q := query.ID(rng.Intn(vocab))
		if pa, pb := c.Prob(ctx, q), r.Prob(ctx, q); pa != pb {
			t.Fatalf("ctx %v q=%d: prob %v vs %v after reload", ctx, q, pa, pb)
		}
	}
}

// TestCompiledReadRejectsCorruption flips bytes in a serialized model and
// expects Read to fail loudly rather than serve garbage.
func TestCompiledReadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sessions := randomCorpus(rng, 20, 300)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.1}, 20,
		markov.MVMMOptions{TrainSample: 50, NewtonIters: 3})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	good := buf.Bytes()
	for _, pos := range []int{0, 5, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x5a
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	if _, err := Read(bytes.NewReader(good[:len(good)/3])); err == nil {
		t.Fatal("truncated stream went undetected")
	}
}

// TestCompileRejectsVocabMismatch: components smoothing over different
// vocabularies cannot share one flat node payload.
func TestCompileRejectsVocabMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sessions := randomCorpus(rng, 20, 300)
	m := markov.NewMVMM(sessions, []markov.VMMConfig{
		{Epsilon: 0.0, Vocab: 20},
		{Epsilon: 0.1, Vocab: 25},
	}, markov.MVMMOptions{TrainSample: 50, NewtonIters: 3})
	if _, err := Compile(m); err == nil {
		t.Fatal("vocab mismatch compiled without error")
	}
}

// TestCompiledNodesCoverUnion: the merged trie must hold at least the
// union-PST node count the paper's Table VII estimates (escape windows and
// closure fillers can only add to it).
func TestCompiledNodesCoverUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sessions := randomCorpus(rng, 30, 700)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.05, 0.1}, 30,
		markov.MVMMOptions{TrainSample: 100, NewtonIters: 5})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if c.Nodes() < m.UnionNodes() {
		t.Fatalf("compiled trie has %d nodes, union estimate is %d", c.Nodes(), m.UnionNodes())
	}
}

// TestPredictZeroAllocs verifies the headline property: steady-state
// prediction through AppendPredictions and Prob allocates nothing once the
// scratch pool is warm.
func TestPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	rng := rand.New(rand.NewSource(23))
	vocab := 40
	sessions := randomCorpus(rng, vocab, 1000)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.01, 0.05, 0.1}, vocab,
		markov.MVMMOptions{TrainSample: 100, NewtonIters: 5})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctxs := parityContexts(rng, sessions, vocab)
	buf := make([]model.Prediction, 0, 32)
	for _, ctx := range ctxs { // warm the pool and grow scratch to steady state
		buf = c.AppendPredictions(buf[:0], ctx, 5)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		ctx := ctxs[i%len(ctxs)]
		buf = c.AppendPredictions(buf[:0], ctx, 5)
		if len(ctx) > 0 {
			_ = c.Prob(ctx, ctx[len(ctx)-1])
		}
		i++
	})
	// A GC between runs can momentarily empty the sync.Pool and force one
	// scratch refill; tolerate that but nothing per-call.
	if allocs > 0.05 {
		t.Fatalf("steady-state predict allocates %.2f times per op, want 0", allocs)
	}
}

// TestPredictBatchZeroAllocs: the batched descent itself must not allocate —
// all per-batch state (ordering, descent path, candidate scoring, output
// buffer) lives in the pooled scratch.
func TestPredictBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	rng := rand.New(rand.NewSource(29))
	vocab := 40
	sessions := randomCorpus(rng, vocab, 1000)
	m := markov.NewMVMMFromEpsilons(sessions, []float64{0.0, 0.01, 0.05, 0.1}, vocab,
		markov.MVMMOptions{TrainSample: 100, NewtonIters: 5})
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctxs := parityContexts(rng, sessions, vocab)
	if len(ctxs) > 64 {
		ctxs = ctxs[:64]
	}
	ns := make([]int, len(ctxs))
	for i := range ns {
		ns[i] = 5
	}
	sink := 0
	emit := func(i int, preds []model.Prediction) { sink += len(preds) }
	c.PredictBatch(ctxs, ns, emit) // warm the pool to steady state
	allocs := testing.AllocsPerRun(100, func() {
		c.PredictBatch(ctxs, ns, emit)
	})
	if allocs > 0.05 {
		t.Fatalf("steady-state batch predict allocates %.2f times per op, want 0 (sink %d)", allocs, sink)
	}
}
