//go:build linux

package compiled

import "syscall"

// madviseWillNeed asks the kernel to read the mapping ahead asynchronously
// (MADV_WILLNEED): sequential readahead instead of per-page demand faults on
// the serving path's first touches.
func madviseWillNeed(mapping []byte) error {
	if len(mapping) == 0 {
		return nil
	}
	return syscall.Madvise(mapping, syscall.MADV_WILLNEED)
}

// mlockRange pins the mapping's pages in memory so the trie can never be
// evicted under pressure. Subject to RLIMIT_MEMLOCK; callers treat failure
// as a degraded (demand-paged) success.
func mlockRange(mapping []byte) error {
	if len(mapping) == 0 {
		return nil
	}
	return syscall.Mlock(mapping)
}
