package compiled

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"repro/internal/store"
)

// Compact-edge flat (CPS5) encoding — the delta/varint tier below CPS4.
//
// CPS4 already narrowed every per-node array to its needed width; what it
// still pays full price for are the two uint32 arrays that dominate the blob
// on real models: the follower-ID lists and the fixed-width CSR offset
// arrays. CPS5 attacks exactly those. Follower IDs within a node are already
// stored in ascending order, and query IDs are assigned by training-log
// frequency, so the gaps between consecutive IDs are small: CPS5 stores each
// node's follower list as a varint first ID followed by varint deltas.
// Likewise the childStart/folStart CSR offset arrays (strictly derivable
// from per-node counts) become varint count streams, and the child edge keys
// (symbol-sorted per node) become first-key + deltas. An opt-in uint8
// probability tier halves the fixed-point array on top of CPS4's uint16 —
// with the same per-node float32 step and exact IEEE dequantisation, refused
// via ErrUnquantisable when collapsing to 256 levels would perturb a node's
// ranked order by more than the CPS4 grid (see AppendFlat5).
//
// Varint data cannot be viewed zero-copy, so CPS5 splits the load:
//
//   - the CSR skeleton (child offsets, child keys, follower offsets, the
//     per-node byte extents of the follower-ID groups) is decoded eagerly
//     into heap slices — descent needs random access, and these streams are
//     the small part of the blob;
//   - the follower-ID region — the bulk — stays varint-packed (aliased out
//     of the mapping on little-endian platforms, copied otherwise) and is
//     decoded per matched node at serve time into pooled scratch, keeping
//     Predict/PredictInto at zero steady-state allocations;
//   - the fixed-width payload arrays (steps, fixed-point probabilities,
//     ranked views, evidence, occurrences, floors) keep CPS4's zero-copy
//     view semantics.
//
// Layout (all integers little-endian, varints in Go's binary.Uvarint form):
//
//	  0  "CPS5" magic
//	  4  uint32 layout version (1)
//	  8  uint64 blob length (including this header)
//	 16  uint32 k, uint32 vocab
//	 24  uint32 depth, uint32 node count n (root included)
//	 32  uint64 edge count, uint64 follower count
//	 48  uint32 CRC-32 (IEEE) of blob[64:]
//	 52  uint8 evidence element width (2 or 8)
//	 53  uint8 occurrence element width (4 or 8)
//	 54  uint8 probability element width (1 or 2)
//	 55  9 reserved zero bytes
//	 64  array table: 14 x { uint64 byte offset, uint64 count }
//	288  the arrays, each 8-byte aligned
//
// For fixed-width arrays the table count is the element count; for the five
// varint regions it is the region's byte length. As with CPS3/CPS4, ViewCopy
// loads verify the CRC; zero-copy loads skip it and rely on structural
// validation plus defensive clamping — a corrupted payload (including a
// truncated varint stream, which the serve-time decoder pads) can misrank
// but cannot panic or index out of bounds.
const (
	compactMagic       = "CPS5"
	compactVersion     = 1
	compactArrayCount  = 14
	compactArraysStart = flatHeaderSize + compactArrayCount*16 // 288, 8-byte aligned
)

// Array-table indices of the CPS5 layout, in on-disk order. The *V entries
// are varint regions (table count = byte length).
const (
	f5Sigma = iota
	f5MaxLen
	f5Evidence
	f5Occ
	f5StartOcc
	f5Floor
	f5Step
	f5FolQ
	f5FolRank
	f5ChildCntV
	f5ChildKeyV
	f5FolCntV
	f5FolLenV
	f5FolIDV
)

// quant8Steps is the opt-in coarse fixed-point resolution: probabilities on
// the grid {0, step, ..., 255·step} with step = maxP/quant8Steps.
const quant8Steps = 255

func compactCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: CPS5 %s", store.ErrCorrupt, fmt.Sprintf(format, args...))
}

// compactProbW reports the on-disk probability width AppendFlat5 will use:
// models already loaded from CPS5 re-emit their stored tier (byte-stable
// round trips; the probs8 request cannot be honoured without the discarded
// raw statistics), everything else encodes uint16 by default and uint8 on
// request.
func (c *Model) compactProbW(probs8 bool) int {
	if c.folIDVar != nil {
		if c.folQ8 != nil {
			return 1
		}
		return 2
	}
	if probs8 {
		return 1
	}
	return 2
}

// compactRegions builds the five varint regions of the CPS5 layout. Models
// loaded from CPS5 copy their follower-ID region verbatim; exact and
// CPS4-loaded models delta-encode from the ID-sorted follower arrays.
func (c *Model) compactRegions() (childCnt, childKey, folCnt, folLen, folID []byte) {
	n := c.nodes
	for v := 0; v < n; v++ {
		childCnt = binary.AppendUvarint(childCnt, uint64(c.childStart[v+1]-c.childStart[v]))
		prev := uint64(0)
		for e := c.childStart[v]; e < c.childStart[v+1]; e++ {
			key := uint64(c.childKey[e])
			if e == c.childStart[v] {
				childKey = binary.AppendUvarint(childKey, key)
			} else {
				childKey = binary.AppendUvarint(childKey, key-prev)
			}
			prev = key
		}
		folCnt = binary.AppendUvarint(folCnt, uint64(c.folStart[v+1]-c.folStart[v]))
	}
	if c.folIDVar != nil {
		for v := 0; v < n; v++ {
			folLen = binary.AppendUvarint(folLen, uint64(c.folOff[v+1]-c.folOff[v]))
		}
		folID = c.folIDVar
		return
	}
	for v := 0; v < n; v++ {
		before := len(folID)
		prev := uint64(0)
		for j := c.folStart[v]; j < c.folStart[v+1]; j++ {
			id := uint64(c.folIDSorted[j])
			if j == c.folStart[v] {
				folID = binary.AppendUvarint(folID, id)
			} else {
				folID = binary.AppendUvarint(folID, id-prev)
			}
			prev = id
		}
		folLen = binary.AppendUvarint(folLen, uint64(len(folID)-before))
	}
	return
}

// compactCounts returns the table count and on-disk element width of every
// CPS5 array (varint regions report their byte length with width 1).
func (c *Model) compactCounts(probs8 bool, regions [5][]byte) (counts, sizes [compactArrayCount]int) {
	n := c.nodes
	f := c.Followers()
	evW, occW := c.quantWidths()
	probW := c.compactProbW(probs8)
	counts = [compactArrayCount]int{
		c.k, c.k,
		n, n, n, n, n,
		f, f,
		len(regions[0]), len(regions[1]), len(regions[2]), len(regions[3]), len(regions[4]),
	}
	sizes = [compactArrayCount]int{8, 8, evW, occW, occW, 4, 4, probW, 2, 1, 1, 1, 1, 1}
	return counts, sizes
}

// compactLayout assigns each array its 8-byte-aligned offset and returns the
// total blob size.
func compactLayout(counts, sizes [compactArrayCount]int) (offs [compactArrayCount]uint64, total uint64) {
	off := uint64(compactArraysStart)
	for i := range counts {
		off = (off + 7) &^ 7
		offs[i] = off
		off += uint64(counts[i]) * uint64(sizes[i])
	}
	return offs, (off + 7) &^ 7
}

// Flat5Size returns the exact byte length of the model's CPS5 encoding with
// the requested probability tier (uint8 when probs8, uint16 otherwise).
func (c *Model) Flat5Size(probs8 bool) int64 {
	childCnt, childKey, folCnt, folLen, folID := c.compactRegions()
	counts, sizes := c.compactCounts(probs8, [5][]byte{childCnt, childKey, folCnt, folLen, folID})
	_, total := compactLayout(counts, sizes)
	return int64(total)
}

// AppendFlat5 appends the model's CPS5 compact encoding to dst and returns
// the extended slice. Exact models are quantised on the fly (on CPS4's
// uint16 grid by default, so CPS5 probabilities dequantise to the exact
// values a CPS4 encoding of the same model would serve); probs8 requests the
// coarse uint8 tier instead. Already-quantised models re-emit their stored
// fixed-point values — CPS4-loaded models on the uint16 tier (or re-graded
// to uint8 on request), CPS5-loaded models on whichever tier they carry
// (probs8 is ignored; the raw statistics needed to re-grade are gone) — so
// load → save round trips are byte-identical.
//
// Fails with ErrUnquantisable when the statistics do not fit: a node with
// more than 65535 followers, a float32 step underflow, or — uint8 tier
// only — a node where collapsing to 256 levels would merge two ranked
// followers whose probabilities differ by more than the CPS4 grid step
// (maxP/65535), i.e. where the coarse tier would reorder beyond the error
// bound CPS4 already promises. Callers then fall back to CPS4 (and from
// there to exact CPS3).
func (c *Model) AppendFlat5(dst []byte, probs8 bool) ([]byte, error) {
	childCnt, childKeyV, folCnt, folLen, folID := c.compactRegions()
	regions := [5][]byte{childCnt, childKeyV, folCnt, folLen, folID}
	counts, sizes := c.compactCounts(probs8, regions)
	offs, total := compactLayout(counts, sizes)
	evW, occW, probW := sizes[f5Evidence], sizes[f5Occ], sizes[f5FolQ]
	base := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[base:]
	le := binary.LittleEndian

	copy(b, compactMagic)
	le.PutUint32(b[4:], compactVersion)
	le.PutUint64(b[8:], total)
	le.PutUint32(b[16:], uint32(c.k))
	le.PutUint32(b[20:], uint32(c.vocab))
	le.PutUint32(b[24:], uint32(c.depth))
	le.PutUint32(b[28:], uint32(c.nodes))
	le.PutUint64(b[32:], uint64(len(c.childKey)))
	le.PutUint64(b[40:], uint64(c.Followers()))
	b[52] = byte(evW)
	b[53] = byte(occW)
	b[54] = byte(probW)
	for i := range offs {
		le.PutUint64(b[flatHeaderSize+16*i:], offs[i])
		le.PutUint64(b[flatHeaderSize+16*i+8:], uint64(counts[i]))
	}

	for i, v := range c.sigma {
		le.PutUint64(b[offs[f5Sigma]+8*uint64(i):], math.Float64bits(v))
	}
	for i, v := range c.maxLen {
		le.PutUint64(b[offs[f5MaxLen]+8*uint64(i):], uint64(v))
	}
	for v := 0; v < c.nodes; v++ {
		ev := c.evidenceAt(int32(v))
		if evW == 2 {
			le.PutUint16(b[offs[f5Evidence]+2*uint64(v):], uint16(ev))
		} else {
			le.PutUint64(b[offs[f5Evidence]+8*uint64(v):], ev)
		}
		occ, start := c.occAt(int32(v)), c.startOccAt(int32(v))
		if occW == 4 {
			le.PutUint32(b[offs[f5Occ]+4*uint64(v):], uint32(occ))
			le.PutUint32(b[offs[f5StartOcc]+4*uint64(v):], uint32(start))
		} else {
			le.PutUint64(b[offs[f5Occ]+8*uint64(v):], occ)
			le.PutUint64(b[offs[f5StartOcc]+8*uint64(v):], start)
		}
		le.PutUint32(b[offs[f5Floor]+4*uint64(v):], math.Float32bits(float32(c.floorAt(int32(v)))))
	}
	for i, r := range regions {
		copy(b[offs[f5ChildCntV+i]:], r)
	}
	if err := c.putCompactQuantised(b, offs, probW); err != nil {
		return dst[:base], err
	}

	le.PutUint32(b[48:], crc32.ChecksumIEEE(b[flatHeaderSize:]))
	return dst, nil
}

// putCompactQuantised fills the step, folQ and folRank arrays of a CPS5
// blob: copied verbatim from an already-quantised model carrying the target
// width, computed from the (exact or dequantised) probabilities otherwise.
func (c *Model) putCompactQuantised(b []byte, offs [compactArrayCount]uint64, probW int) error {
	le := binary.LittleEndian
	verbatim := c.quantised && ((probW == 2 && c.folQ8 == nil) || (probW == 1 && c.folQ8 != nil))
	if verbatim {
		for v := 0; v < c.nodes; v++ {
			le.PutUint32(b[offs[f5Step]+4*uint64(v):], math.Float32bits(c.qstep[v]))
		}
		if probW == 2 {
			for i, q := range c.folQSorted {
				le.PutUint16(b[offs[f5FolQ]+2*uint64(i):], q)
			}
		} else {
			copy(b[offs[f5FolQ]:], c.folQ8)
		}
		for i, r := range c.folRankIdx {
			le.PutUint16(b[offs[f5FolRank]+2*uint64(i):], r)
		}
		return nil
	}
	// probAt reads the probability at sorted index j of node v from whichever
	// representation the model carries: exact float64, or the stored
	// fixed-point value dequantised exactly as serving would.
	probAt := func(v int, j int32) float64 {
		if c.folPSorted != nil {
			return c.folPSorted[j]
		}
		return float64(c.qstep[v]) * float64(c.folQSorted[j])
	}
	steps := quantSteps
	if probW == 1 {
		steps = quant8Steps
	}
	for v := 0; v < c.nodes; v++ {
		lo, hi := c.folStart[v], c.folStart[v+1]
		support := int(hi - lo)
		if support == 0 {
			continue // step stays 0.0
		}
		if support > quantSteps {
			return fmt.Errorf("%w: node %d has %d followers, rank indices are 16-bit", ErrUnquantisable, v, support)
		}
		maxP := 0.0
		for j := lo; j < hi; j++ {
			if p := probAt(v, j); p > maxP {
				maxP = p
			}
		}
		step := float32(maxP / float64(steps))
		if step == 0 && maxP > 0 {
			return fmt.Errorf("%w: node %d max probability %g underflows the float32 step", ErrUnquantisable, v, maxP)
		}
		le.PutUint32(b[offs[f5Step]+4*uint64(v):], math.Float32bits(step))
		for j := lo; j < hi; j++ {
			q := math.Round(probAt(v, j) / float64(step))
			if q > float64(steps) {
				q = float64(steps)
			}
			if probW == 2 {
				le.PutUint16(b[offs[f5FolQ]+2*uint64(j):], uint16(q))
			} else {
				b[offs[f5FolQ]+uint64(j)] = byte(q)
			}
		}
		// Ranked view as local indices into the node's ID-sorted range, and —
		// uint8 tier only — the rank-agreement check: adjacent ranked
		// followers that collapse to one coarse level must already have been
		// within the CPS4 grid step of each other, otherwise the coarse tier
		// would swap ranks beyond the promised error bound.
		var ids []uint32
		if c.folIDSorted != nil {
			ids = c.folIDSorted[lo:hi]
		} else {
			ids = c.appendFollowerIDs(make([]uint32, 0, support), int32(v))
		}
		grid := maxP / quantSteps
		for r := int32(0); r < int32(support); r++ {
			var id uint32
			if c.folIDRanked != nil {
				id = c.folIDRanked[lo+r]
			} else {
				idx := lo + int32(c.folRankIdx[lo+r])
				if idx >= hi {
					idx = lo
				}
				id = ids[idx-lo]
			}
			idx := sort.Search(support, func(i int) bool { return ids[i] >= id })
			le.PutUint16(b[offs[f5FolRank]+2*uint64(lo+r):], uint16(idx))
			if probW == 1 && r > 0 {
				pPrev := probAt(v, lo+searchID(ids, c.rankedID(v, lo, r-1)))
				p := probAt(v, lo+int32(idx))
				qPrev := math.Round(pPrev / float64(step))
				q := math.Round(p / float64(step))
				if qPrev == q && pPrev-p > grid {
					return fmt.Errorf("%w: node %d ranked followers %d and %d collapse to one uint8 level %g apart",
						ErrUnquantisable, v, r-1, r, pPrev-p)
				}
			}
		}
	}
	return nil
}

// rankedID resolves the r-th ranked follower ID of node v (lo is the node's
// follower base), bridging the exact and quantised ranked representations.
func (c *Model) rankedID(v int, lo, r int32) uint32 {
	if c.folIDRanked != nil {
		return c.folIDRanked[lo+r]
	}
	idx := lo + int32(c.folRankIdx[lo+r])
	if idx >= c.folStart[v+1] {
		idx = lo
	}
	return c.folIDSorted[idx]
}

// searchID returns the position of id in the ascending slice ids (which must
// contain it — encoder-side use only).
func searchID(ids []uint32, id uint32) int32 {
	return int32(sort.Search(len(ids), func(i int) bool { return ids[i] >= id }))
}

// WriteFlat5 writes the CPS5 encoding (uint16 probability tier) to w.
func (c *Model) WriteFlat5(w io.Writer) (int64, error) {
	blob, err := c.AppendFlat5(nil, false)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(blob)
	return int64(n), err
}

// decodeUvarints reads exactly count uvarints from b, appending them to dst.
// Fails on truncation, overlong encodings that overflow, or leftover bytes.
func decodeUvarints(dst []uint64, b []byte, count int, what string) ([]uint64, error) {
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, compactCorrupt("%s stream truncated at value %d of %d", what, i, count)
		}
		b = b[n:]
		dst = append(dst, v)
	}
	if len(b) != 0 {
		return nil, compactCorrupt("%s stream carries %d trailing bytes", what, len(b))
	}
	return dst, nil
}

// fromBytes5 materialises a quantised Model from a CPS5 blob. The caller
// (fromBytes) has already matched the magic. The CSR skeleton is decoded
// eagerly (descent needs random access); the varint follower-ID region is
// retained packed — aliased from data when viewing, copied otherwise — and
// decoded per node at serve time.
func fromBytes5(data []byte, mode ViewMode) (*Model, bool, error) {
	if len(data) < compactArraysStart {
		return nil, false, compactCorrupt("blob of %d bytes is shorter than the header", len(data))
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[4:]); v != compactVersion {
		return nil, false, compactCorrupt("unsupported layout version %d", v)
	}
	if bl := le.Uint64(data[8:]); bl != uint64(len(data)) {
		return nil, false, compactCorrupt("header claims %d bytes, blob has %d (truncated?)", bl, len(data))
	}
	c := &Model{
		k:         int(le.Uint32(data[16:])),
		vocab:     int(le.Uint32(data[20:])),
		depth:     int(le.Uint32(data[24:])),
		quantised: true,
	}
	n := int(le.Uint32(data[28:]))
	edges := le.Uint64(data[32:])
	fols := le.Uint64(data[40:])
	evW, occW, probW := int(data[52]), int(data[53]), int(data[54])
	if c.k <= 0 || c.k > maxComponents {
		return nil, false, compactCorrupt("implausible component count %d", c.k)
	}
	if c.vocab <= 0 {
		return nil, false, compactCorrupt("implausible vocab %d", c.vocab)
	}
	if n <= 0 || uint64(n-1) != edges {
		return nil, false, compactCorrupt("%d edges for %d nodes", edges, n)
	}
	if fols > uint64(len(data)) { // each follower entry occupies >= 1 byte
		return nil, false, compactCorrupt("implausible follower count %d", fols)
	}
	if (evW != 2 && evW != 8) || (evW == 2 && c.k > 16) {
		return nil, false, compactCorrupt("evidence width %d for %d components", evW, c.k)
	}
	if occW != 4 && occW != 8 {
		return nil, false, compactCorrupt("occurrence width %d", occW)
	}
	if probW != 1 && probW != 2 {
		return nil, false, compactCorrupt("probability width %d", probW)
	}
	c.nodes = n

	// Fixed-width arrays have a known element count; varint regions carry
	// their byte length in the table (bounded only by the blob).
	want := [compactArrayCount]uint64{
		uint64(c.k), uint64(c.k),
		uint64(n), uint64(n), uint64(n), uint64(n), uint64(n),
		fols, fols,
		0, 0, 0, 0, 0,
	}
	sizes := [compactArrayCount]int{8, 8, evW, occW, occW, 4, 4, probW, 2, 1, 1, 1, 1, 1}
	var arr [compactArrayCount][]byte
	for i := 0; i < compactArrayCount; i++ {
		off := le.Uint64(data[flatHeaderSize+16*i:])
		cnt := le.Uint64(data[flatHeaderSize+16*i+8:])
		if i < f5ChildCntV && cnt != want[i] {
			return nil, false, compactCorrupt("array %d holds %d elements, header implies %d", i, cnt, want[i])
		}
		bytes := cnt * uint64(sizes[i])
		if off%8 != 0 || off < compactArraysStart || off > uint64(len(data)) || bytes > uint64(len(data))-off {
			return nil, false, compactCorrupt("array %d at [%d, %d+%d) escapes the %d-byte blob", i, off, off, bytes, len(data))
		}
		arr[i] = data[off : off+bytes]
	}

	viewed := mode == ViewAuto && canZeroCopy(data)
	if !viewed {
		if got, wantCRC := crc32.ChecksumIEEE(data[flatHeaderSize:]), le.Uint32(data[48:]); got != wantCRC {
			return nil, false, compactCorrupt("CRC mismatch %08x != %08x", got, wantCRC)
		}
	}

	c.sigma = decodeF64(arr[f5Sigma])
	c.maxLen = make([]int, c.k)
	for i := range c.maxLen {
		v := le.Uint64(arr[f5MaxLen][8*i:])
		if v > math.MaxInt32 {
			return nil, false, compactCorrupt("component %d window bound %d overflows", i, v)
		}
		c.maxLen[i] = int(v)
	}
	for i, s := range c.sigma {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, false, compactCorrupt("component %d sigma is not finite", i)
		}
	}

	// CSR skeleton: counts to prefix sums, delta streams to absolute keys.
	vals, err := decodeUvarints(make([]uint64, 0, n), arr[f5ChildCntV], n, "child-count")
	if err != nil {
		return nil, false, err
	}
	c.childStart = make([]int32, n+1)
	var sum uint64
	for v, cnt := range vals {
		sum += cnt
		if sum > edges {
			return nil, false, compactCorrupt("child counts overflow %d edges at node %d", edges, v)
		}
		c.childStart[v+1] = int32(sum)
	}
	if sum != edges {
		return nil, false, compactCorrupt("child counts cover %d of %d edges", sum, edges)
	}
	vals, err = decodeUvarints(vals[:0], arr[f5ChildKeyV], int(edges), "child-key")
	if err != nil {
		return nil, false, err
	}
	c.childKey = make([]uint32, edges)
	for v := 0; v < n; v++ {
		var key uint64
		for e := c.childStart[v]; e < c.childStart[v+1]; e++ {
			if e == c.childStart[v] {
				key = vals[e]
			} else {
				key += vals[e]
			}
			c.childKey[e] = uint32(key)
		}
	}
	vals, err = decodeUvarints(vals[:0], arr[f5FolCntV], n, "follower-count")
	if err != nil {
		return nil, false, err
	}
	c.folStart = make([]int32, n+1)
	sum = 0
	for v, cnt := range vals {
		sum += cnt
		if sum > fols {
			return nil, false, compactCorrupt("follower counts overflow %d entries at node %d", fols, v)
		}
		c.folStart[v+1] = int32(sum)
	}
	if sum != fols {
		return nil, false, compactCorrupt("follower counts cover %d of %d entries", sum, fols)
	}
	vals, err = decodeUvarints(vals[:0], arr[f5FolLenV], n, "follower-extent")
	if err != nil {
		return nil, false, err
	}
	c.folOff = make([]int32, n+1)
	sum = 0
	for v, l := range vals {
		sum += l
		if sum > uint64(len(arr[f5FolIDV])) {
			return nil, false, compactCorrupt("follower extents overflow the %d-byte ID region at node %d", len(arr[f5FolIDV]), v)
		}
		c.folOff[v+1] = int32(sum)
	}
	if sum != uint64(len(arr[f5FolIDV])) {
		return nil, false, compactCorrupt("follower extents cover %d of %d ID-region bytes", sum, len(arr[f5FolIDV]))
	}

	if viewed {
		c.floor32 = viewF32(arr[f5Floor])
		c.qstep = viewF32(arr[f5Step])
		c.folRankIdx = viewU16(arr[f5FolRank])
		c.folIDVar = arr[f5FolIDV]
		if probW == 2 {
			c.folQSorted = viewU16(arr[f5FolQ])
		} else {
			c.folQ8 = arr[f5FolQ]
		}
		if evW == 2 {
			c.evidence16 = viewU16(arr[f5Evidence])
		} else {
			c.evidence = viewU64(arr[f5Evidence])
		}
		if occW == 4 {
			c.occ32 = viewU32(arr[f5Occ])
			c.startOcc32 = viewU32(arr[f5StartOcc])
		} else {
			c.occ = viewU64(arr[f5Occ])
			c.startOcc = viewU64(arr[f5StartOcc])
		}
	} else {
		c.floor32 = decodeF32(arr[f5Floor])
		c.qstep = decodeF32(arr[f5Step])
		c.folRankIdx = decodeU16(arr[f5FolRank])
		c.folIDVar = append([]byte(nil), arr[f5FolIDV]...)
		if probW == 2 {
			c.folQSorted = decodeU16(arr[f5FolQ])
		} else {
			c.folQ8 = append([]byte(nil), arr[f5FolQ]...)
		}
		if evW == 2 {
			c.evidence16 = decodeU16(arr[f5Evidence])
		} else {
			c.evidence = decodeU64(arr[f5Evidence])
		}
		if occW == 4 {
			c.occ32 = decodeU32(arr[f5Occ])
			c.startOcc32 = decodeU32(arr[f5StartOcc])
		} else {
			c.occ = decodeU64(arr[f5Occ])
			c.startOcc = decodeU64(arr[f5StartOcc])
		}
	}
	// An empty follower-ID region still needs a non-nil sentinel: folIDVar
	// is the CPS5 discriminator throughout the serving path.
	if c.folIDVar == nil {
		c.folIDVar = make([]byte, 0)
	}

	if err := c.validateStructure(edges, fols); err != nil {
		return nil, false, err
	}
	c.initScratch()
	return c, viewed, nil
}

// appendFollowerIDs decodes node v's varint-packed follower IDs (first ID,
// then positive deltas) from the CPS5 region, appending them to dst. A
// truncated or overlong stream — possible only in a corrupted blob loaded
// without its CRC check — pads with the running ID: the node misranks, but
// every access stays in bounds and the decoded length always matches the
// node's follower count.
func (c *Model) appendFollowerIDs(dst []uint32, v int32) []uint32 {
	cnt := int(c.folStart[v+1] - c.folStart[v])
	b := c.folIDVar[c.folOff[v]:c.folOff[v+1]]
	var id uint32
	for i := 0; i < cnt; i++ {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			dst = append(dst, id)
			continue
		}
		b = b[n:]
		if i == 0 {
			id = uint32(d)
		} else {
			id += uint32(d)
		}
		dst = append(dst, id)
	}
	return dst
}
