package compiled

import (
	"math/bits"
	"slices"
	"sync"

	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
)

// scratch holds every per-request buffer Predict and Prob need, recycled
// through a sync.Pool so the steady-state prediction path performs zero heap
// allocations.
type scratch struct {
	path     []int32   // descent path; path[l-1] = node of the length-l suffix
	matched  []int32   // per component: matched suffix length (0 = uncovered)
	w        []float64 // per component: normalised Eq. (4) weight
	chain    []float64 // per component: Eq. (5) escape-chain product
	valIdx   []int32   // per component: index into the distinct-node arrays
	distLen  []int32   // distinct matched suffix lengths
	distNode []int32   // distinct matched node IDs
	vals     []float64 // per distinct node: smoothed P of the current candidate
	cands    []uint32  // pooled candidate IDs (sorted, deduplicated)
	scores   []float64 // candidate scores, parallel to cands
	heap     []int32   // bounded top-N selection heap (candidate indices)

	// CPS5 follower-ID decode arena: the varint-packed follower lists of
	// the distinct matched nodes, decoded once per prediction. folDecOff is
	// parallel to distNode (folDecOff[j]..folDecOff[j+1] bounds node j's
	// IDs in folDec); both stay empty on non-CPS5 models.
	folDec    []uint32
	folDecOff []int32

	// Batch state (PredictBatch only).
	sorter ctxSorter          // descent-order permutation of the batch
	bpreds []model.Prediction // per-context output buffer, reused across emits
}

type scratchPool struct{ p sync.Pool }

func (c *Model) initScratch() {
	k, depth := c.k, c.depth
	c.scratch.p.New = func() any {
		return &scratch{
			path:      make([]int32, 0, depth),
			matched:   make([]int32, k),
			w:         make([]float64, k),
			chain:     make([]float64, k),
			valIdx:    make([]int32, k),
			distLen:   make([]int32, 0, k),
			distNode:  make([]int32, 0, k),
			vals:      make([]float64, k),
			cands:     make([]uint32, 0, 256),
			scores:    make([]float64, 0, 256),
			heap:      make([]int32, 0, 64),
			folDec:    make([]uint32, 0, 256),
			folDecOff: make([]int32, 0, k+1),
			bpreds:    make([]model.Prediction, 0, 16),
		}
	}
}

// child returns the node reached from v over edge symbol sym, or -1. Children
// are symbol-sorted, and the BFS layout guarantees edge e leads to node e+1.
func (c *Model) child(v int32, sym uint32) int32 {
	lo, hi := c.childStart[v], c.childStart[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.childKey[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.childStart[v+1] && c.childKey[lo] == sym {
		return lo + 1
	}
	return -1
}

// descend walks ctx newest-to-oldest from the root, filling s.path with the
// node of every stored suffix (path[l-1] = suffix of length l). The deepest
// entry is the longest suffix of ctx present in the merged trie.
func (c *Model) descend(s *scratch, ctx query.Seq) {
	s.path = s.path[:0]
	v := int32(0)
	for j := len(ctx) - 1; j >= 0; j-- {
		nxt := c.child(v, uint32(ctx[j]))
		if nxt < 0 {
			return
		}
		s.path = append(s.path, nxt)
		v = nxt
	}
}

// match assigns every component its deepest path node carrying that
// component's evidence bit — the MatchState of all K components in one
// reverse sweep of the descent path — and computes the normalised mixture
// weights. It reports whether any component matched with nonzero weight.
func (c *Model) match(s *scratch, ctxLen int) bool {
	for i := range s.matched {
		s.matched[i] = 0
	}
	var assigned uint64
	full := ^uint64(0) >> (64 - uint(c.k))
	for p := len(s.path); p >= 1 && assigned != full; p-- {
		// Masking with full makes stray evidence bits >= k (possible only in
		// a corrupted flat file) harmless instead of an index panic.
		ev := c.evidenceAt(s.path[p-1]) & full
		fresh := ev &^ assigned
		for fresh != 0 {
			i := bits.TrailingZeros64(fresh)
			fresh &= fresh - 1
			s.matched[i] = int32(p)
		}
		assigned |= ev
	}
	var sum float64
	for i := 0; i < c.k; i++ {
		s.w[i] = 0
		if s.matched[i] == 0 {
			continue
		}
		s.w[i] = markov.Gaussian(float64(ctxLen-int(s.matched[i])), c.sigma[i])
		sum += s.w[i]
	}
	if sum <= 0 {
		return false
	}
	for i := range s.w {
		s.w[i] /= sum
	}
	return true
}

// escapeFactor is Eq. (6) for the length-l suffix of the context: the
// probability of escaping from it to the length-(l-1) suffix, read off the
// descent path. ml is the component's window-length bound — a bounded
// component never counted windows longer than ml, so those lengths behave as
// unobserved (occurrence zero ⇒ factor 1).
func (c *Model) escapeFactor(s *scratch, l, ml int) float64 {
	sl := l - 1 // the suffix being escaped to
	if sl > len(s.path) || (ml > 0 && sl > ml) {
		return 1
	}
	v := s.path[sl-1]
	occ := c.occAt(v)
	if occ == 0 {
		return 1
	}
	start := c.startOccAt(v)
	if start == 0 {
		return 1 / float64(occ+1)
	}
	return float64(start) / float64(occ)
}

// prepare runs the shared front half of Predict and Prob: descend, match,
// weight, build each weighted component's escape-chain product, and collect
// the distinct matched nodes. Returns false when the mixture has nothing to
// say about the context.
func (c *Model) prepare(s *scratch, ctx query.Seq) bool {
	c.descend(s, ctx)
	return c.prepareMatched(s, len(ctx))
}

// prepareMatched is prepare after the descent: PredictBatch descends
// incrementally (sharing path prefixes across the batch) and enters here.
func (c *Model) prepareMatched(s *scratch, ctxLen int) bool {
	if len(s.path) == 0 || !c.match(s, ctxLen) {
		return false
	}
	s.distLen = s.distLen[:0]
	s.distNode = s.distNode[:0]
	for i := 0; i < c.k; i++ {
		if s.w[i] == 0 {
			continue
		}
		// Escape chain: factors from just above the matched state up to the
		// full context, multiplied innermost-first to mirror the interpreted
		// recursion's association order.
		prod := 1.0
		for l := int(s.matched[i]) + 1; l <= ctxLen; l++ {
			prod = c.escapeFactor(s, l, c.maxLen[i]) * prod
		}
		s.chain[i] = prod
		idx := int32(-1)
		for j, dl := range s.distLen {
			if dl == s.matched[i] {
				idx = int32(j)
				break
			}
		}
		if idx < 0 {
			idx = int32(len(s.distLen))
			s.distLen = append(s.distLen, s.matched[i])
			s.distNode = append(s.distNode, s.path[s.matched[i]-1])
		}
		s.valIdx[i] = idx
	}
	if c.folIDVar != nil {
		// CPS5: decode each distinct matched node's varint-packed follower
		// IDs once into the scratch arena; candidate pooling and every
		// score lookup for this prediction then read the decoded forms.
		s.folDec = s.folDec[:0]
		s.folDecOff = append(s.folDecOff[:0], 0)
		for _, v := range s.distNode {
			s.folDec = c.appendFollowerIDs(s.folDec, v)
			s.folDecOff = append(s.folDecOff, int32(len(s.folDec)))
		}
	}
	return true
}

// smoothedAt is Dist.SmoothedP on the compiled node: binary search the
// ID-sorted followers, falling back to the node's precomputed uniform floor.
// On quantised models the stored fixed-point value is dequantised through
// the node's step — exact to the CPS4 encoding, within maxP(v)/65535 of the
// float64 probability it encodes.
func (c *Model) smoothedAt(v int32, q uint32) float64 {
	lo, hi := c.folStart[v], c.folStart[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.folIDSorted[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.folStart[v+1] && c.folIDSorted[lo] == q {
		if c.folPSorted != nil {
			return c.folPSorted[lo]
		}
		return float64(c.qstep[v]) * float64(c.folQSorted[lo])
	}
	return c.floorAt(v)
}

// smoothedDec is smoothedAt for CPS5 models: the binary search runs over
// the decoded follower IDs of distinct-node j in the scratch arena, and the
// fixed-point probability is read at the matching sorted offset (uint8 or
// uint16 tier) and dequantised through the node's step.
func (c *Model) smoothedDec(s *scratch, j int, v int32, q uint32) float64 {
	ids := s.folDec[s.folDecOff[j]:s.folDecOff[j+1]]
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == q {
		i := c.folStart[v] + int32(lo)
		if c.folQ8 != nil {
			return float64(c.qstep[v]) * float64(c.folQ8[i])
		}
		return float64(c.qstep[v]) * float64(c.folQSorted[i])
	}
	return c.floorAt(v)
}

// score computes the mixture score Σ_D w_D · P̂_D(q|ctx) for one candidate,
// accumulating per component in index order (the interpreted summation
// order) while sharing each distinct matched node's probability lookup.
func (c *Model) score(s *scratch, q uint32) float64 {
	if c.folIDVar != nil {
		for j, v := range s.distNode {
			s.vals[j] = c.smoothedDec(s, j, v, q)
		}
	} else {
		for j, v := range s.distNode {
			s.vals[j] = c.smoothedAt(v, q)
		}
	}
	var sum float64
	for i := 0; i < c.k; i++ {
		if s.w[i] == 0 {
			continue
		}
		sum += s.w[i] * (s.chain[i] * s.vals[s.valIdx[i]])
	}
	return sum
}

// better reports whether candidate a outranks candidate b under the output
// order: score descending, ID ascending on ties.
func (s *scratch) better(a, b int32) bool {
	if s.scores[a] != s.scores[b] {
		return s.scores[a] > s.scores[b]
	}
	return s.cands[a] < s.cands[b]
}

// siftDown restores the min-heap (worst candidate at the top) rooted at i.
func (s *scratch) siftDown(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		worst := l
		if r := l + 1; r < n && s.better(s.heap[worst], s.heap[r]) {
			worst = r
		}
		if s.better(s.heap[worst], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[worst] = s.heap[worst], s.heap[i]
		i = worst
	}
}

// AppendPredictions appends up to topN ranked predictions for ctx to dst and
// returns the extended slice. With a recycled dst it allocates nothing: all
// intermediate state comes from the model's scratch pool and the top-N
// selection uses a bounded heap rather than sorting every candidate.
func (c *Model) AppendPredictions(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction {
	if len(ctx) == 0 || topN <= 0 {
		return dst
	}
	s := c.scratch.p.Get().(*scratch)
	defer c.scratch.p.Put(s)
	c.descend(s, ctx)
	return c.appendRanked(s, dst, len(ctx), topN)
}

// appendRanked is the back half of AppendPredictions, entered with the
// descent path already in s.path (PredictBatch shares descents and calls in
// here directly): match, score the pooled candidates, select the top N.
func (c *Model) appendRanked(s *scratch, dst []model.Prediction, ctxLen, topN int) []model.Prediction {
	if !c.prepareMatched(s, ctxLen) {
		return dst
	}

	// Candidate pool: the top 4·topN ranked followers of every distinct
	// matched state (the interpreted Predict's TopN(topN*4) union), sorted
	// and deduplicated in place. Exact models store the ranked IDs directly;
	// quantised models store the ranked view as indices into the node's
	// ID-sorted range (clamped defensively — a corrupted CPS4 payload loaded
	// without a CRC check may misrank but must not index out of bounds).
	s.cands = s.cands[:0]
	lim := int32(4 * topN)
	for dj, v := range s.distNode {
		lo, hi := c.folStart[v], c.folStart[v+1]
		if hi-lo > lim {
			hi = lo + lim
		}
		if c.folIDRanked != nil {
			s.cands = append(s.cands, c.folIDRanked[lo:hi]...)
			continue
		}
		if c.folIDVar != nil {
			// CPS5: rank indices are local offsets into the node's decoded
			// ID list in the scratch arena (clamped like the CPS4 path).
			ids := s.folDec[s.folDecOff[dj]:s.folDecOff[dj+1]]
			for j := lo; j < hi; j++ {
				idx := int(c.folRankIdx[j])
				if idx >= len(ids) {
					idx = 0
				}
				s.cands = append(s.cands, ids[idx])
			}
			continue
		}
		for j := lo; j < hi; j++ {
			idx := c.folStart[v] + int32(c.folRankIdx[j])
			if idx >= c.folStart[v+1] {
				idx = lo
			}
			s.cands = append(s.cands, c.folIDSorted[idx])
		}
	}
	if len(s.cands) == 0 {
		return dst
	}
	slices.Sort(s.cands)
	uniq := s.cands[:1]
	for _, q := range s.cands[1:] {
		if q != uniq[len(uniq)-1] {
			uniq = append(uniq, q)
		}
	}
	s.cands = uniq

	s.scores = s.scores[:0]
	for _, q := range s.cands {
		s.scores = append(s.scores, c.score(s, q))
	}

	// Bounded selection: a min-heap of the best topN seen so far, worst at
	// the root, then drain it back-to-front into rank order.
	s.heap = s.heap[:0]
	for i := range s.cands {
		idx := int32(i)
		if len(s.heap) < topN {
			s.heap = append(s.heap, idx)
			for j := len(s.heap) - 1; j > 0; {
				parent := (j - 1) / 2
				if s.better(s.heap[parent], s.heap[j]) {
					s.heap[parent], s.heap[j] = s.heap[j], s.heap[parent]
					j = parent
				} else {
					break
				}
			}
		} else if s.better(idx, s.heap[0]) {
			s.heap[0] = idx
			s.siftDown(0)
		}
	}
	base := len(dst)
	for range s.heap {
		dst = append(dst, model.Prediction{})
	}
	for out := len(s.heap) - 1; out >= 0; out-- {
		last := len(s.heap) - 1
		worst := s.heap[0]
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		s.siftDown(0)
		dst[base+out] = model.Prediction{Query: query.ID(s.cands[worst]), Score: s.scores[worst]}
	}
	return dst
}

// Predict implements model.Predictor. Serving paths should prefer
// AppendPredictions with a recycled buffer; this convenience form allocates
// the result slice.
func (c *Model) Predict(ctx query.Seq, topN int) []model.Prediction {
	out := c.AppendPredictions(nil, ctx, topN)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Prob implements model.Predictor: the weighted mixture of the components'
// escape-chain probabilities (Eq. 2), allocation-free.
func (c *Model) Prob(ctx query.Seq, q query.ID) float64 {
	if len(ctx) == 0 {
		return 0
	}
	s := c.scratch.p.Get().(*scratch)
	defer c.scratch.p.Put(s)
	if !c.prepare(s, ctx) {
		return 0
	}
	return c.score(s, uint32(q))
}

// Covers implements model.Predictor: whether any component stores a suffix
// of ctx with prediction evidence.
func (c *Model) Covers(ctx query.Seq) bool {
	if len(ctx) == 0 {
		return false
	}
	s := c.scratch.p.Get().(*scratch)
	defer c.scratch.p.Put(s)
	c.descend(s, ctx)
	for _, v := range s.path {
		if c.evidenceAt(v) != 0 {
			return true
		}
	}
	return false
}

var _ model.Predictor = (*Model)(nil)
