package compiled

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"strings"

	"repro/internal/store"
)

// Flat (CPS3) encoding — the mmap-able compiled-model layout.
//
// Unlike the varint CPS1 stream (WriteTo/Read), which must be decoded node
// by node into freshly allocated slices, CPS3 stores every CSR array of the
// Model as a contiguous run of fixed-width little-endian values at an
// 8-byte-aligned offset. Loading is therefore not decoding at all: when the
// blob sits at a page-aligned file offset it is syscall.Mmap'd and the
// arrays are aliased straight out of the mapping (zero copies, zero
// allocations proportional to model size, pages shared read-only across
// every process serving the same file and faulted in lazily by the kernel).
// On big-endian or mmap-less platforms the same blob is decoded portably —
// without unsafe — into heap slices.
//
// Layout (all integers little-endian):
//
//	  0  "CPS3" magic
//	  4  uint32 layout version (1)
//	  8  uint64 blob length (including this header)
//	 16  uint32 k, uint32 vocab
//	 24  uint32 depth, uint32 node count n (root included)
//	 32  uint64 edge count, uint64 follower count
//	 48  uint32 CRC-32 (IEEE) of blob[64:]
//	 52  12 reserved zero bytes
//	 64  array table: 14 x { uint64 byte offset, uint64 element count }
//	288  the arrays, each 8-byte aligned
//
// The CRC is verified by ViewCopy loads (and therefore by every load on
// platforms without zero-copy support). ViewAuto zero-copy loads skip it —
// checksumming would fault in every page, defeating lazy loading — and rely
// on the structural validation below plus defensive masking in the descent
// (see Model.match): a corrupted payload can misrank, but it cannot panic
// or index out of bounds.
const (
	flatMagic       = "CPS3"
	flatVersion     = 1
	flatHeaderSize  = 64
	flatArrayCount  = 14
	flatArraysStart = flatHeaderSize + flatArrayCount*16 // 288, 8-byte aligned
)

// Array-table indices, in on-disk order.
const (
	faSigma = iota
	faMaxLen
	faChildStart
	faChildKey
	faEvidence
	faOcc
	faStartOcc
	faFloor
	faFolStart
	faFolIDRanked
	faFolPRanked
	faFolIDSorted
	faFolPSorted
	faFolCount
)

// flatElemSize[i] is the on-disk element width of array i.
var flatElemSize = [flatArrayCount]int{8, 8, 4, 4, 8, 8, 8, 8, 4, 4, 8, 4, 8, 8}

// ErrMmapUnsupported reports that this platform cannot memory-map model
// files; callers fall back to heap decoding.
var ErrMmapUnsupported = errors.New("compiled: mmap not supported on this platform")

// ViewMode selects how FromBytes materialises the model from a CPS3 blob.
type ViewMode int

const (
	// ViewAuto aliases the arrays directly out of the blob when the platform
	// is little-endian and the blob is 8-byte aligned (always true for
	// mmap'd data), falling back to ViewCopy otherwise. The blob must stay
	// alive and unmodified for the model's lifetime.
	ViewAuto ViewMode = iota
	// ViewCopy decodes into fresh heap slices with binary.LittleEndian and
	// verifies the blob's CRC; the blob may be discarded afterwards.
	ViewCopy
)

func (c *Model) flatCounts() [flatArrayCount]int {
	n := c.nodes
	f := len(c.folIDSorted)
	return [flatArrayCount]int{
		c.k, c.k, n + 1, len(c.childKey),
		n, n, n, n,
		n + 1, f, f, f, f, f,
	}
}

// flatLayout assigns each array its 8-byte-aligned offset and returns the
// total blob size.
func flatLayout(counts [flatArrayCount]int) (offs [flatArrayCount]uint64, total uint64) {
	off := uint64(flatArraysStart)
	for i, cnt := range counts {
		off = (off + 7) &^ 7
		offs[i] = off
		off += uint64(cnt) * uint64(flatElemSize[i])
	}
	return offs, (off + 7) &^ 7
}

// FlatSize returns the exact byte length of the model's CPS3 encoding.
func (c *Model) FlatSize() int64 {
	_, total := flatLayout(c.flatCounts())
	return int64(total)
}

// AppendFlat appends the model's CPS3 encoding to dst and returns the
// extended slice. Callers that persist it for mmap loading must place the
// blob at a page-aligned file offset (core.Save's V003 layout pads for
// this); FromBytes itself only needs 8-byte alignment. CPS3 stores exact
// float64 probabilities and raw counts, so the model must be exact; callers
// holding a quantised model recompile from the mixture first (core.SaveAs
// does this automatically).
func (c *Model) AppendFlat(dst []byte) []byte {
	if c.Quantised() {
		panic("compiled: AppendFlat on a quantised model (CPS3 needs exact probabilities; recompile from the mixture)")
	}
	counts := c.flatCounts()
	offs, total := flatLayout(counts)
	base := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[base:]
	le := binary.LittleEndian

	copy(b, flatMagic)
	le.PutUint32(b[4:], flatVersion)
	le.PutUint64(b[8:], total)
	le.PutUint32(b[16:], uint32(c.k))
	le.PutUint32(b[20:], uint32(c.vocab))
	le.PutUint32(b[24:], uint32(c.depth))
	le.PutUint32(b[28:], uint32(len(c.evidence)))
	le.PutUint64(b[32:], uint64(len(c.childKey)))
	le.PutUint64(b[40:], uint64(len(c.folIDSorted)))
	for i := range offs {
		le.PutUint64(b[flatHeaderSize+16*i:], offs[i])
		le.PutUint64(b[flatHeaderSize+16*i+8:], uint64(counts[i]))
	}

	putF64 := func(a int, vals []float64) {
		for i, v := range vals {
			le.PutUint64(b[offs[a]+8*uint64(i):], math.Float64bits(v))
		}
	}
	putU64 := func(a int, vals []uint64) {
		for i, v := range vals {
			le.PutUint64(b[offs[a]+8*uint64(i):], v)
		}
	}
	putI32 := func(a int, vals []int32) {
		for i, v := range vals {
			le.PutUint32(b[offs[a]+4*uint64(i):], uint32(v))
		}
	}
	putU32 := func(a int, vals []uint32) {
		for i, v := range vals {
			le.PutUint32(b[offs[a]+4*uint64(i):], v)
		}
	}
	putF64(faSigma, c.sigma)
	for i, v := range c.maxLen {
		le.PutUint64(b[offs[faMaxLen]+8*uint64(i):], uint64(v))
	}
	putI32(faChildStart, c.childStart)
	putU32(faChildKey, c.childKey)
	putU64(faEvidence, c.evidence)
	putU64(faOcc, c.occ)
	putU64(faStartOcc, c.startOcc)
	putF64(faFloor, c.floor)
	putI32(faFolStart, c.folStart)
	putU32(faFolIDRanked, c.folIDRanked)
	putF64(faFolPRanked, c.folPRanked)
	putU32(faFolIDSorted, c.folIDSorted)
	putF64(faFolPSorted, c.folPSorted)
	putU64(faFolCount, c.folCount)

	le.PutUint32(b[48:], crc32.ChecksumIEEE(b[flatHeaderSize:]))
	return dst
}

// WriteFlat writes the CPS3 encoding to w.
func (c *Model) WriteFlat(w io.Writer) (int64, error) {
	blob := c.AppendFlat(nil)
	n, err := w.Write(blob)
	return int64(n), err
}

func flatCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: CPS3 %s", store.ErrCorrupt, fmt.Sprintf(format, args...))
}

// FromBytes materialises a Model from a flat blob produced by AppendFlat
// (CPS3, exact), AppendFlat4 (CPS4, quantised) or AppendFlat5 (CPS5,
// compact); the leading magic selects the decoder. Corrupted or truncated
// blobs fail with an error wrapping store.ErrCorrupt; they never panic.
func FromBytes(data []byte, mode ViewMode) (*Model, error) {
	m, _, err := fromBytes(data, mode)
	return m, err
}

// fromBytes additionally reports whether the returned model aliases data
// (zero-copy view) rather than owning heap copies.
func fromBytes(data []byte, mode ViewMode) (*Model, bool, error) {
	if len(data) >= 4 && string(data[:4]) == quantMagic {
		return fromBytes4(data, mode)
	}
	if len(data) >= 4 && string(data[:4]) == compactMagic {
		return fromBytes5(data, mode)
	}
	if len(data) < flatArraysStart {
		return nil, false, flatCorrupt("blob of %d bytes is shorter than the header", len(data))
	}
	if string(data[:4]) != flatMagic {
		return nil, false, flatCorrupt("magic %q, want %q", data[:4], flatMagic)
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[4:]); v != flatVersion {
		return nil, false, flatCorrupt("unsupported layout version %d", v)
	}
	if bl := le.Uint64(data[8:]); bl != uint64(len(data)) {
		return nil, false, flatCorrupt("header claims %d bytes, blob has %d (truncated?)", bl, len(data))
	}
	c := &Model{
		k:     int(le.Uint32(data[16:])),
		vocab: int(le.Uint32(data[20:])),
		depth: int(le.Uint32(data[24:])),
	}
	n := int(le.Uint32(data[28:]))
	edges := le.Uint64(data[32:])
	fols := le.Uint64(data[40:])
	if c.k <= 0 || c.k > maxComponents {
		return nil, false, flatCorrupt("implausible component count %d", c.k)
	}
	if c.vocab <= 0 {
		return nil, false, flatCorrupt("implausible vocab %d", c.vocab)
	}
	if n <= 0 || uint64(n-1) != edges {
		return nil, false, flatCorrupt("%d edges for %d nodes", edges, n)
	}
	if fols > uint64(len(data)) { // each follower entry occupies >= 4 bytes
		return nil, false, flatCorrupt("implausible follower count %d", fols)
	}
	c.nodes = n

	want := [flatArrayCount]uint64{
		uint64(c.k), uint64(c.k), uint64(n + 1), edges,
		uint64(n), uint64(n), uint64(n), uint64(n),
		uint64(n + 1), fols, fols, fols, fols, fols,
	}
	var arr [flatArrayCount][]byte
	for i := 0; i < flatArrayCount; i++ {
		off := le.Uint64(data[flatHeaderSize+16*i:])
		cnt := le.Uint64(data[flatHeaderSize+16*i+8:])
		if cnt != want[i] {
			return nil, false, flatCorrupt("array %d holds %d elements, header implies %d", i, cnt, want[i])
		}
		bytes := cnt * uint64(flatElemSize[i])
		if off%8 != 0 || off < flatArraysStart || off > uint64(len(data)) || bytes > uint64(len(data))-off {
			return nil, false, flatCorrupt("array %d at [%d, %d+%d) escapes the %d-byte blob", i, off, off, bytes, len(data))
		}
		arr[i] = data[off : off+bytes]
	}

	viewed := mode == ViewAuto && canZeroCopy(data)
	if !viewed {
		if got, wantCRC := crc32.ChecksumIEEE(data[flatHeaderSize:]), le.Uint32(data[48:]); got != wantCRC {
			return nil, false, flatCorrupt("CRC mismatch %08x != %08x", got, wantCRC)
		}
	}

	// The tiny per-component arrays are always decoded (their in-memory types
	// are platform-dependent and they are read once per prediction anyway).
	c.sigma = decodeF64(arr[faSigma])
	c.maxLen = make([]int, c.k)
	for i := range c.maxLen {
		v := le.Uint64(arr[faMaxLen][8*i:])
		if v > math.MaxInt32 {
			return nil, false, flatCorrupt("component %d window bound %d overflows", i, v)
		}
		c.maxLen[i] = int(v)
	}
	for i, s := range c.sigma {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, false, flatCorrupt("component %d sigma is not finite", i)
		}
	}

	if viewed {
		c.childStart = viewI32(arr[faChildStart])
		c.childKey = viewU32(arr[faChildKey])
		c.evidence = viewU64(arr[faEvidence])
		c.occ = viewU64(arr[faOcc])
		c.startOcc = viewU64(arr[faStartOcc])
		c.floor = viewF64(arr[faFloor])
		c.folStart = viewI32(arr[faFolStart])
		c.folIDRanked = viewU32(arr[faFolIDRanked])
		c.folPRanked = viewF64(arr[faFolPRanked])
		c.folIDSorted = viewU32(arr[faFolIDSorted])
		c.folPSorted = viewF64(arr[faFolPSorted])
		c.folCount = viewU64(arr[faFolCount])
	} else {
		c.childStart = decodeI32(arr[faChildStart])
		c.childKey = decodeU32(arr[faChildKey])
		c.evidence = decodeU64(arr[faEvidence])
		c.occ = decodeU64(arr[faOcc])
		c.startOcc = decodeU64(arr[faStartOcc])
		c.floor = decodeF64(arr[faFloor])
		c.folStart = decodeI32(arr[faFolStart])
		c.folIDRanked = decodeU32(arr[faFolIDRanked])
		c.folPRanked = decodeF64(arr[faFolPRanked])
		c.folIDSorted = decodeU32(arr[faFolIDSorted])
		c.folPSorted = decodeF64(arr[faFolPSorted])
		c.folCount = decodeU64(arr[faFolCount])
	}

	// Structural invariants the descent indexes through. With these checked,
	// arbitrary payload corruption can misrank but cannot index out of range.
	if err := c.validateStructure(edges, fols); err != nil {
		return nil, false, err
	}
	c.initScratch()
	return c, viewed, nil
}

func (c *Model) validateStructure(edges, fols uint64) error {
	cs := c.childStart
	if cs[0] != 0 || uint64(cs[len(cs)-1]) != edges {
		return flatCorrupt("child offsets cover %d of %d edges", cs[len(cs)-1], edges)
	}
	for v := 1; v < len(cs); v++ {
		if cs[v] < cs[v-1] {
			return flatCorrupt("child offsets not monotone at node %d", v-1)
		}
	}
	fs := c.folStart
	if fs[0] != 0 || uint64(fs[len(fs)-1]) != fols {
		return flatCorrupt("follower offsets cover %d of %d entries", fs[len(fs)-1], fols)
	}
	for v := 1; v < len(fs); v++ {
		if fs[v] < fs[v-1] {
			return flatCorrupt("follower offsets not monotone at node %d", v-1)
		}
	}
	return nil
}

// Portable little-endian decoders: the unsafe-free path every platform can
// take, and the only path on big-endian machines.

func decodeU16(b []byte) []uint16 {
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

func decodeF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeU64(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// MapAdvice requests best-effort kernel paging hints for an OpenMmapAdvised
// mapping. Hints are advisory by design: a kernel that refuses one (old
// version, RLIMIT_MEMLOCK) degrades to plain demand paging, never to an
// error — the outcome is recorded on the model (MapAdvice) so operators can
// see what actually took effect.
type MapAdvice struct {
	// WillNeed issues madvise(MADV_WILLNEED): the kernel starts reading the
	// whole blob ahead asynchronously, converting the lazy first-touch page
	// faults of a fresh mmap into sequential readahead — the cold-start
	// latency spike of the first few thousand requests disappears.
	WillNeed bool
	// Lock issues mlock(2) on the mapping: trie pages can never be evicted
	// under memory pressure, bounding tail latency on loaded hosts. Requires
	// RLIMIT_MEMLOCK headroom; failure is recorded, not fatal.
	Lock bool
}

// OpenMmap memory-maps the flat compiled blob (CPS3, quantised CPS4 or
// compact CPS5 — dispatched on the blob's own magic) stored at [offset, offset+length) of
// the file at path and returns a Model whose arrays alias the mapping: the
// zero-copy cold-start path. The mapping is released when the model is
// garbage-collected, or eagerly via Release. Returns ErrMmapUnsupported on
// platforms without mmap (callers fall back to heap decoding).
func OpenMmap(path string, offset, length int64) (*Model, error) {
	return OpenMmapAdvised(path, offset, length, MapAdvice{})
}

// OpenMmapAdvised is OpenMmap with kernel paging hints applied to the
// resulting mapping (no-ops when adv is the zero value). The applied-hint
// summary is readable via Model.MapAdvice.
func OpenMmapAdvised(path string, offset, length int64, adv MapAdvice) (*Model, error) {
	if !mmapSupported {
		return nil, ErrMmapUnsupported
	}
	if offset < 0 || length < flatArraysStart {
		return nil, flatCorrupt("blob window [%d, +%d) is implausible", offset, length)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	// Touching mapped pages past EOF raises SIGBUS, not an error — reject
	// truncated files up front.
	if fi, err := f.Stat(); err != nil {
		return nil, err
	} else if offset+length > fi.Size() {
		return nil, flatCorrupt("blob window [%d, +%d) overruns the %d-byte file", offset, length, fi.Size())
	}
	window, mapping, err := mmapRange(f, offset, length)
	if err != nil {
		return nil, fmt.Errorf("compiled: mmap %s: %w", path, err)
	}
	m, viewed, err := fromBytes(window, ViewAuto)
	if err != nil || !viewed {
		// Decode error, or the platform copied the arrays to the heap anyway
		// (big-endian): the mapping is not needed beyond this call.
		merr := munmapRange(mapping)
		if err != nil {
			return nil, err
		}
		if merr != nil {
			return nil, merr
		}
		return m, nil
	}
	m.release = mapping
	m.cleanup = runtime.AddCleanup(m, func(mp []byte) { _ = munmapRange(mp) }, mapping)
	m.mapAdvice = applyMapAdvice(mapping, adv)
	return m, nil
}

// applyMapAdvice issues the requested hints against the mapping and returns
// a human-readable summary of what took effect (for LoadInfo / healthz),
// e.g. "willneed,mlock" or "willneed,mlock:operation not permitted". Empty
// when nothing was requested.
func applyMapAdvice(mapping []byte, adv MapAdvice) string {
	var parts []string
	if adv.WillNeed {
		if err := madviseWillNeed(mapping); err != nil {
			parts = append(parts, "willneed:"+err.Error())
		} else {
			parts = append(parts, "willneed")
		}
	}
	if adv.Lock {
		if err := mlockRange(mapping); err != nil {
			parts = append(parts, "mlock:"+err.Error())
		} else {
			parts = append(parts, "mlock")
		}
	}
	return strings.Join(parts, ",")
}

// MapAdvice reports the kernel paging hints applied to this model's mapping
// ("" for heap models or mappings opened without hints); hints that failed
// carry the error after a colon.
func (c *Model) MapAdvice() string { return c.mapAdvice }

// Release eagerly unmaps the file backing of a model returned by OpenMmap
// (a no-op for compiled or heap-decoded models). The model must not be used
// afterwards.
func (c *Model) Release() error {
	c.releaseOnce.Do(func() {
		if c.release == nil {
			return
		}
		c.cleanup.Stop()
		c.releaseErr = munmapRange(c.release)
		c.release = nil
	})
	return c.releaseErr
}
