package hmm

import (
	"math"
	"testing"

	"repro/internal/query"
)

// twoIntentSessions builds data with two clearly separable latent intents:
// intent A emits queries {0,1,2}, intent B emits {5,6,7}, and sessions stay
// within one intent.
func twoIntentSessions() []query.Session {
	return []query.Session{
		{Queries: query.Seq{0, 1, 2}, Count: 40},
		{Queries: query.Seq{1, 0, 2}, Count: 30},
		{Queries: query.Seq{2, 1}, Count: 25},
		{Queries: query.Seq{0, 2}, Count: 20},
		{Queries: query.Seq{5, 6, 7}, Count: 40},
		{Queries: query.Seq{6, 5, 7}, Count: 30},
		{Queries: query.Seq{7, 6}, Count: 25},
		{Queries: query.Seq{5, 7}, Count: 20},
	}
}

func trainSmall(t *testing.T) *Model {
	t.Helper()
	m, err := Train(twoIntentSessions(), Config{States: 4, Iterations: 30, Vocab: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{States: 0, Vocab: 5}); err == nil {
		t.Error("accepted zero states")
	}
	if _, err := Train(nil, Config{States: 2, Vocab: 0}); err == nil {
		t.Error("accepted zero vocab")
	}
}

func TestEMLikelihoodNonDecreasing(t *testing.T) {
	m := trainSmall(t)
	ll := m.LogLikelihoods()
	if len(ll) < 2 {
		t.Fatalf("EM ran %d iterations", len(ll))
	}
	for i := 1; i < len(ll); i++ {
		if ll[i] < ll[i-1]-1e-6 {
			t.Fatalf("EM likelihood decreased at iteration %d: %v -> %v", i, ll[i-1], ll[i])
		}
	}
}

func TestHMMSeparatesIntents(t *testing.T) {
	m := trainSmall(t)
	// Given intent-A context, intent-A queries should dominate predictions.
	top := m.Predict(query.Seq{0, 1}, 3)
	if len(top) == 0 {
		t.Fatal("no predictions")
	}
	for _, p := range top {
		if p.Query >= 5 {
			t.Fatalf("intent-A context predicted intent-B query %d: %v", p.Query, top)
		}
	}
	// And vice versa.
	top = m.Predict(query.Seq{5, 6}, 3)
	for _, p := range top {
		if p.Query <= 2 {
			t.Fatalf("intent-B context predicted intent-A query %d: %v", p.Query, top)
		}
	}
}

func TestHMMProbFavoursSameIntent(t *testing.T) {
	m := trainSmall(t)
	pSame := m.Prob(query.Seq{0, 1}, 2)
	pCross := m.Prob(query.Seq{0, 1}, 7)
	if pSame <= pCross {
		t.Fatalf("P(same-intent)=%v <= P(cross-intent)=%v", pSame, pCross)
	}
}

func TestHMMProbIsDistribution(t *testing.T) {
	m := trainSmall(t)
	var sum float64
	for q := query.ID(0); q < 8; q++ {
		p := m.Prob(query.Seq{0, 1}, q)
		if p < 0 {
			t.Fatalf("negative probability for %d", q)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("next-query probabilities sum to %v", sum)
	}
}

func TestHMMCoverage(t *testing.T) {
	m := trainSmall(t)
	if m.Covers(nil) {
		t.Fatal("empty context covered")
	}
	if !m.Covers(query.Seq{1}) {
		t.Fatal("seen query not covered")
	}
	if m.Covers(query.Seq{3}) { // ID 3 never occurs in training
		t.Fatal("unseen query covered")
	}
	if m.Covers(query.Seq{99}) {
		t.Fatal("out-of-vocab query covered")
	}
	if m.Predict(query.Seq{99}, 5) != nil {
		t.Fatal("uncovered context produced predictions")
	}
}

func TestHMMDeterministicGivenSeed(t *testing.T) {
	cfg := Config{States: 4, Iterations: 10, Vocab: 8, Seed: 11}
	a, err := Train(twoIntentSessions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Train(twoIntentSessions(), cfg)
	pa := a.Predict(query.Seq{0, 1}, 3)
	pb := b.Predict(query.Seq{0, 1}, 3)
	if len(pa) != len(pb) {
		t.Fatal("prediction counts differ across identical seeds")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prediction %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestHMMHandlesOutOfVocabContext(t *testing.T) {
	m := trainSmall(t)
	// An unknown query inside the context must not panic or zero the pass.
	top := m.Predict(query.Seq{999, 0, 1}, 3)
	if len(top) == 0 {
		t.Fatal("context with OOV prefix produced no predictions")
	}
}

func TestForwardBackwardGammaNormalised(t *testing.T) {
	m := trainSmall(t)
	obs := query.Seq{0, 1, 2}
	alpha, beta, _ := m.forwardBackward(obs)
	for t2 := range obs {
		var g float64
		for i := 0; i < m.k; i++ {
			g += alpha[t2][i] * beta[t2][i]
		}
		if math.Abs(g-1) > 1e-9 {
			t.Fatalf("gamma at step %d sums to %v", t2, g)
		}
	}
}

func TestRowsAreDistributions(t *testing.T) {
	m := trainSmall(t)
	checkDist := func(name string, row []float64) {
		t.Helper()
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("%s has negative entry", name)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s sums to %v", name, sum)
		}
	}
	checkDist("pi", m.pi)
	for i := 0; i < m.k; i++ {
		checkDist("trans row", m.trans[i])
		checkDist("emit row", m.emit[i])
	}
}

func TestStatesAccessor(t *testing.T) {
	m := trainSmall(t)
	if m.States() != 4 {
		t.Fatalf("States = %d", m.States())
	}
	if m.Name() != "HMM (4 states)" {
		t.Fatalf("Name = %q", m.Name())
	}
}
