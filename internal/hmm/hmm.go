// Package hmm implements the paper's named future-work extension
// (Sec. VI): a Hidden Markov Model over query sessions whose hidden states
// represent latent user intent ("an underlying semantic concept"). Queries
// are observations emitted by intent states; intent evolves by a Markov
// chain. Training is Baum-Welch (EM) over frequency-weighted sessions with
// per-step scaling; prediction marginalises the next observation over the
// posterior next-state distribution.
//
// The extension experiment (cmd/experiments -ext / the bench harness)
// answers the paper's open question — "it remains to be seen whether more
// sophisticated models can further raise the performance bar" — on the
// synthetic substrate.
package hmm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/query"
)

// Config controls HMM training.
type Config struct {
	// States is the number of hidden intent states.
	States int
	// Iterations bounds the Baum-Welch EM iterations.
	Iterations int
	// Vocab is |Q|; observations are query IDs in [0, Vocab).
	Vocab int
	// Seed initialises the random parameter draw.
	Seed int64
	// MaxSessions caps the training sample (most frequent first) since EM
	// is the most expensive trainer in the repository. 0 = all.
	MaxSessions int
}

// DefaultConfig returns a small, fast intent model.
func DefaultConfig(vocab int) Config {
	return Config{States: 16, Iterations: 12, Vocab: vocab, Seed: 7, MaxSessions: 4000}
}

// Model is a trained discrete HMM.
type Model struct {
	k, vocab int
	pi       []float64   // initial state distribution, length k
	trans    [][]float64 // k×k state transitions
	emit     [][]float64 // k×vocab emission probabilities
	seen     []bool      // queries observed in training
	// topEmit caches each state's highest-emission queries for fast TopN.
	topEmit [][]query.ID
	// logLik records the per-iteration training log10-likelihood, for the
	// EM monotonicity guarantee (and its test).
	logLik []float64
	// scratch pools PredictInto working sets (forward-pass vectors and the
	// candidate pool) — the per-arm scratch pool behind the zero-allocation
	// serving contract.
	scratch sync.Pool
}

// Train fits an HMM by Baum-Welch over aggregated sessions.
func Train(sessions []query.Session, cfg Config) (*Model, error) {
	if cfg.States < 1 || cfg.Vocab < 1 {
		return nil, fmt.Errorf("hmm: invalid config %+v", cfg)
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	sample := trainingSample(sessions, cfg.MaxSessions)
	m := &Model{k: cfg.States, vocab: cfg.Vocab, seen: make([]bool, cfg.Vocab)}
	for _, s := range sample {
		for _, q := range s.Queries {
			if int(q) < cfg.Vocab {
				m.seen[q] = true
			}
		}
	}
	m.randomInit(rand.New(rand.NewSource(cfg.Seed)))
	for it := 0; it < cfg.Iterations; it++ {
		ll := m.emStep(sample)
		m.logLik = append(m.logLik, ll)
		// Converged: relative improvement below 1e-6.
		if it > 0 && math.Abs(ll-m.logLik[it-1]) < 1e-6*(1+math.Abs(ll)) {
			break
		}
	}
	m.buildTopEmit(64)
	return m, nil
}

func trainingSample(sessions []query.Session, max int) []query.Session {
	multi := make([]query.Session, 0, len(sessions))
	for _, s := range sessions {
		if len(s.Queries) >= 2 {
			multi = append(multi, s)
		}
	}
	query.SortSessions(multi)
	if max > 0 && len(multi) > max {
		multi = multi[:max]
	}
	return multi
}

func (m *Model) randomInit(rng *rand.Rand) {
	m.pi = randDist(rng, m.k)
	m.trans = make([][]float64, m.k)
	m.emit = make([][]float64, m.k)
	for i := 0; i < m.k; i++ {
		m.trans[i] = randDist(rng, m.k)
		// Emissions start near-uniform over *seen* queries with jitter so
		// states can specialise; unseen queries get a tiny floor.
		row := make([]float64, m.vocab)
		var sum float64
		for q := range row {
			v := 1e-4
			if m.seen[q] {
				v = 1 + rng.Float64()
			}
			row[q] = v
			sum += v
		}
		for q := range row {
			row[q] /= sum
		}
		m.emit[i] = row
	}
}

func randDist(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	var sum float64
	for i := range d {
		d[i] = 0.5 + rng.Float64()
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// emStep runs one scaled Baum-Welch iteration and returns the (weighted)
// log10-likelihood of the sample under the pre-update parameters.
func (m *Model) emStep(sample []query.Session) float64 {
	k := m.k
	piAcc := make([]float64, k)
	transAcc := make([][]float64, k)
	emitAcc := make([][]float64, k)
	for i := 0; i < k; i++ {
		transAcc[i] = make([]float64, k)
		emitAcc[i] = make([]float64, m.vocab)
	}
	var ll float64

	for _, s := range sample {
		obs := s.Queries
		w := float64(s.Count)
		T := len(obs)
		alpha, beta, scale := m.forwardBackward(obs)
		for t := 0; t < T; t++ {
			if scale[t] > 0 {
				ll += w * math.Log10(1/scale[t])
			}
		}
		// γ_t(i) ∝ α_t(i) β_t(i); with scaled α/β the product is already
		// normalised per t.
		for t := 0; t < T; t++ {
			q := int(obs[t])
			for i := 0; i < k; i++ {
				g := alpha[t][i] * beta[t][i]
				if t == 0 {
					piAcc[i] += w * g
				}
				if q < m.vocab {
					emitAcc[i][q] += w * g
				}
			}
		}
		// ξ_t(i,j) ∝ α_t(i) a_ij b_j(o_{t+1}) β_{t+1}(j) · c_{t+1}.
		for t := 0; t < T-1; t++ {
			q := int(obs[t+1])
			var b []float64
			if q < m.vocab {
				b = nil // use emit row below
			}
			_ = b
			for i := 0; i < k; i++ {
				ai := alpha[t][i]
				if ai == 0 {
					continue
				}
				for j := 0; j < k; j++ {
					e := m.emitProb(j, obs[t+1])
					xi := ai * m.trans[i][j] * e * beta[t+1][j] * scale[t+1]
					transAcc[i][j] += w * xi
				}
			}
		}
	}

	// M-step with small smoothing so no probability hits exactly zero.
	const eps = 1e-9
	normalizeInto(m.pi, piAcc, eps)
	for i := 0; i < k; i++ {
		normalizeInto(m.trans[i], transAcc[i], eps)
		normalizeInto(m.emit[i], emitAcc[i], eps)
	}
	return ll
}

func normalizeInto(dst, acc []float64, eps float64) {
	var sum float64
	for i := range acc {
		acc[i] += eps
		sum += acc[i]
	}
	if sum == 0 {
		return
	}
	for i := range acc {
		dst[i] = acc[i] / sum
	}
}

// emitProb returns b_i(q) with a uniform floor for out-of-vocabulary
// observations so unseen queries do not zero the whole forward pass.
func (m *Model) emitProb(state int, q query.ID) float64 {
	if int(q) < m.vocab {
		return m.emit[state][q]
	}
	return 1 / float64(m.vocab)
}

// forwardBackward returns scaled α, β and the per-step scale factors c_t
// (Rabiner's convention: ĉα sums to 1 per step; c_t = 1/Σ unscaled).
func (m *Model) forwardBackward(obs query.Seq) (alpha, beta [][]float64, scale []float64) {
	T := len(obs)
	k := m.k
	alpha = make([][]float64, T)
	beta = make([][]float64, T)
	scale = make([]float64, T)
	for t := 0; t < T; t++ {
		alpha[t] = make([]float64, k)
		beta[t] = make([]float64, k)
	}
	// Forward.
	var sum float64
	for i := 0; i < k; i++ {
		alpha[0][i] = m.pi[i] * m.emitProb(i, obs[0])
		sum += alpha[0][i]
	}
	scale[0] = safeInv(sum)
	for i := 0; i < k; i++ {
		alpha[0][i] *= scale[0]
	}
	for t := 1; t < T; t++ {
		sum = 0
		for j := 0; j < k; j++ {
			var a float64
			for i := 0; i < k; i++ {
				a += alpha[t-1][i] * m.trans[i][j]
			}
			alpha[t][j] = a * m.emitProb(j, obs[t])
			sum += alpha[t][j]
		}
		scale[t] = safeInv(sum)
		for j := 0; j < k; j++ {
			alpha[t][j] *= scale[t]
		}
	}
	// Backward, sharing the forward scales.
	for i := 0; i < k; i++ {
		beta[T-1][i] = scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < k; i++ {
			var b float64
			for j := 0; j < k; j++ {
				b += m.trans[i][j] * m.emitProb(j, obs[t+1]) * beta[t+1][j]
			}
			beta[t][i] = b * scale[t]
		}
	}
	// Normalise γ denominators: α_t β_t / Σ_i α_t β_t. The shared-scale
	// convention makes Σ_i α_t(i)β_t(i) = scale[t]·P-ish; renormalise
	// exactly to keep the M-step well-conditioned.
	for t := 0; t < T; t++ {
		var g float64
		for i := 0; i < k; i++ {
			g += alpha[t][i] * beta[t][i]
		}
		if g > 0 {
			for i := 0; i < k; i++ {
				beta[t][i] /= g
			}
		}
	}
	return alpha, beta, scale
}

func safeInv(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 / x
}

func (m *Model) buildTopEmit(cap int) {
	m.topEmit = make([][]query.ID, m.k)
	for i := 0; i < m.k; i++ {
		ids := make([]query.ID, 0, m.vocab)
		for q := 0; q < m.vocab; q++ {
			if m.seen[q] {
				ids = append(ids, query.ID(q))
			}
		}
		sort.Slice(ids, func(a, b int) bool {
			ea, eb := m.emit[i][ids[a]], m.emit[i][ids[b]]
			if ea != eb {
				return ea > eb
			}
			return ids[a] < ids[b]
		})
		if len(ids) > cap {
			ids = ids[:cap]
		}
		m.topEmit[i] = ids
	}
}

// nextStateDist returns P(z_{t+1} | context) from a scaled forward pass.
func (m *Model) nextStateDist(ctx query.Seq) []float64 {
	alpha := make([]float64, m.k)
	var sum float64
	for i := 0; i < m.k; i++ {
		alpha[i] = m.pi[i] * m.emitProb(i, ctx[0])
		sum += alpha[i]
	}
	norm(alpha, sum)
	tmp := make([]float64, m.k)
	for t := 1; t < len(ctx); t++ {
		sum = 0
		for j := 0; j < m.k; j++ {
			var a float64
			for i := 0; i < m.k; i++ {
				a += alpha[i] * m.trans[i][j]
			}
			tmp[j] = a * m.emitProb(j, ctx[t])
			sum += tmp[j]
		}
		copy(alpha, tmp)
		norm(alpha, sum)
	}
	next := make([]float64, m.k)
	for j := 0; j < m.k; j++ {
		var p float64
		for i := 0; i < m.k; i++ {
			p += alpha[i] * m.trans[i][j]
		}
		next[j] = p
	}
	return next
}

func norm(v []float64, sum float64) {
	if sum <= 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// Name implements model.Predictor.
func (m *Model) Name() string { return fmt.Sprintf("HMM (%d states)", m.k) }

// Covers implements model.Predictor: the context's last query must have been
// observed in training.
func (m *Model) Covers(ctx query.Seq) bool {
	if len(ctx) == 0 {
		return false
	}
	last := int(ctx.Last())
	return last < m.vocab && m.seen[last]
}

// Predict implements model.Predictor: pool each probable next state's top
// emissions and score them by the exact marginal Σ_z P(z|ctx)·b_z(q). It is
// PredictInto with a fresh output slice (evaluation convenience; serving
// goes through PredictInto and recycled buffers).
func (m *Model) Predict(ctx query.Seq, topN int) []model.Prediction {
	out := m.PredictInto(nil, ctx, topN)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Prob implements model.Predictor: the exact next-observation marginal.
func (m *Model) Prob(ctx query.Seq, q query.ID) float64 {
	if len(ctx) == 0 || int(q) >= m.vocab {
		return 0
	}
	next := m.nextStateDist(ctx)
	var p float64
	for i, w := range next {
		p += w * m.emit[i][q]
	}
	return p
}

// LogLikelihoods returns the EM training trajectory (log10 likelihood per
// iteration) — non-decreasing by the EM guarantee.
func (m *Model) LogLikelihoods() []float64 {
	return append([]float64(nil), m.logLik...)
}

// States returns the number of hidden states.
func (m *Model) States() int { return m.k }

var _ model.Predictor = (*Model)(nil)
