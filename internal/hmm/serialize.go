package hmm

import (
	"fmt"
	"io"

	"repro/internal/store"
)

// magicHMM tags a serialized HMM payload (inside a QRECF001 container or
// standalone).
const magicHMM = "HMMQ"

// WriteTo serializes the trained model — dimensions, π, transition and
// emission matrices, the seen mask and the EM trajectory. It implements
// io.WriterTo so the model can ride in a core family container and be
// measured by store.Footprint.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	sw := store.NewWriter(w)
	sw.Magic(magicHMM)
	sw.Int(m.k)
	sw.Int(m.vocab)
	for _, v := range m.pi {
		sw.Float64(v)
	}
	for i := 0; i < m.k; i++ {
		for _, v := range m.trans[i] {
			sw.Float64(v)
		}
	}
	for i := 0; i < m.k; i++ {
		for _, v := range m.emit[i] {
			sw.Float64(v)
		}
	}
	seen := make([]byte, m.vocab)
	for q, s := range m.seen {
		if s {
			seen[q] = 1
		}
	}
	sw.Bytes(seen)
	sw.Int(len(m.logLik))
	for _, v := range m.logLik {
		sw.Float64(v)
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// Read decodes a model written by WriteTo and rebuilds the derived
// per-state top-emission index, leaving the model ready to serve.
func Read(rd io.Reader) (*Model, error) {
	sr := store.NewReader(rd)
	sr.Magic(magicHMM)
	k := sr.Int()
	vocab := sr.Int()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if k < 1 || vocab < 1 || k > 1<<16 {
		return nil, fmt.Errorf("hmm: implausible dimensions %d states × %d vocab: %w", k, vocab, store.ErrCorrupt)
	}
	m := &Model{k: k, vocab: vocab}
	m.pi = make([]float64, k)
	for i := range m.pi {
		m.pi[i] = sr.Float64()
	}
	m.trans = make([][]float64, k)
	for i := range m.trans {
		row := make([]float64, k)
		for j := range row {
			row[j] = sr.Float64()
		}
		m.trans[i] = row
	}
	m.emit = make([][]float64, k)
	for i := range m.emit {
		row := make([]float64, vocab)
		for j := range row {
			row[j] = sr.Float64()
		}
		m.emit[i] = row
	}
	seen := sr.Bytes()
	if sr.Err() == nil && len(seen) != vocab {
		return nil, fmt.Errorf("hmm: seen mask of %d bytes, want %d: %w", len(seen), vocab, store.ErrCorrupt)
	}
	m.seen = make([]bool, vocab)
	for q, b := range seen {
		m.seen[q] = b != 0
	}
	n := sr.Int()
	if n > 1<<20 {
		return nil, fmt.Errorf("hmm: implausible EM trajectory of %d entries: %w", n, store.ErrCorrupt)
	}
	m.logLik = make([]float64, n)
	for i := range m.logLik {
		m.logLik[i] = sr.Float64()
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	m.buildTopEmit(64)
	return m, nil
}
