package hmm

import (
	"sort"

	"repro/internal/compiled"
	"repro/internal/model"
	"repro/internal/query"
)

// predictScratch is the per-call working set of PredictInto: forward-pass
// vectors, the candidate pool and its dedup index. Instances are recycled
// through the model's scratch pool, so a serving arm performs no allocations
// in steady state (the map reuses its buckets across calls once grown).
type predictScratch struct {
	alpha, tmp, next []float64
	cand             []model.Prediction
	seen             map[query.ID]int32
}

// Len/Less/Swap sort the candidate pool by descending score, ascending ID —
// the same order Predict uses. Implementing sort.Interface on the pooled
// scratch keeps sort.Sort allocation-free (the interface holds a pointer).
func (s *predictScratch) Len() int      { return len(s.cand) }
func (s *predictScratch) Swap(i, j int) { s.cand[i], s.cand[j] = s.cand[j], s.cand[i] }
func (s *predictScratch) Less(i, j int) bool {
	if s.cand[i].Score != s.cand[j].Score {
		return s.cand[i].Score > s.cand[j].Score
	}
	return s.cand[i].Query < s.cand[j].Query
}

func (m *Model) getScratch() *predictScratch {
	if s, ok := m.scratch.Get().(*predictScratch); ok {
		s.cand = s.cand[:0]
		clear(s.seen)
		return s
	}
	return &predictScratch{
		alpha: make([]float64, m.k),
		tmp:   make([]float64, m.k),
		next:  make([]float64, m.k),
		cand:  make([]model.Prediction, 0, 256),
		seen:  make(map[query.ID]int32, 256),
	}
}

// nextStateDistInto is nextStateDist computed into pooled scratch: the scaled
// forward pass over ctx followed by one transition step, leaving
// P(z_{t+1} | ctx) in s.next.
func (m *Model) nextStateDistInto(s *predictScratch, ctx query.Seq) {
	alpha, tmp := s.alpha, s.tmp
	var sum float64
	for i := 0; i < m.k; i++ {
		alpha[i] = m.pi[i] * m.emitProb(i, ctx[0])
		sum += alpha[i]
	}
	norm(alpha, sum)
	for t := 1; t < len(ctx); t++ {
		sum = 0
		for j := 0; j < m.k; j++ {
			var a float64
			for i := 0; i < m.k; i++ {
				a += alpha[i] * m.trans[i][j]
			}
			tmp[j] = a * m.emitProb(j, ctx[t])
			sum += tmp[j]
		}
		copy(alpha, tmp)
		norm(alpha, sum)
	}
	for j := 0; j < m.k; j++ {
		var p float64
		for i := 0; i < m.k; i++ {
			p += alpha[i] * m.trans[i][j]
		}
		s.next[j] = p
	}
}

// PredictInto implements compiled.Predictor: the exact marginal ranking of
// Predict — pool each probable next state's top emissions, score by
// Σ_z P(z|ctx)·b_z(q) — computed entirely in pooled scratch and appended to
// dst. With a recycled dst this is the zero-allocation HMM serving path
// (gated by BenchmarkPredictHMM).
func (m *Model) PredictInto(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction {
	if topN <= 0 || !m.Covers(ctx) {
		return dst
	}
	s := m.getScratch()
	m.nextStateDistInto(s, ctx)
	for i, p := range s.next {
		if p < minStateWeight {
			continue
		}
		limit := 4 * topN
		if limit > len(m.topEmit[i]) {
			limit = len(m.topEmit[i])
		}
		for _, q := range m.topEmit[i][:limit] {
			if _, ok := s.seen[q]; ok {
				continue
			}
			s.seen[q] = int32(len(s.cand))
			var score float64
			for j, w := range s.next {
				score += w * m.emit[j][q]
			}
			s.cand = append(s.cand, model.Prediction{Query: q, Score: score})
		}
	}
	sort.Sort(s)
	n := topN
	if n > len(s.cand) {
		n = len(s.cand)
	}
	dst = append(dst, s.cand[:n]...)
	m.scratch.Put(s)
	return dst
}

// minStateWeight prunes the candidate pool to states carrying at least this
// much posterior mass (matching Predict's threshold).
const minStateWeight = 0.02

// Shape implements compiled.Predictor.
func (m *Model) Shape() compiled.Shape {
	return compiled.Shape{
		Family:    compiled.FamilyHMM,
		Label:     m.Name(),
		Vocab:     m.vocab,
		States:    m.k,
		Depth:     0, // the forward pass consumes the whole context
		ZeroAlloc: true,
	}
}

var _ compiled.Predictor = (*Model)(nil)
