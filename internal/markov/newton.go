package markov

import "math"

// mixObjective is the MVMM weight-learning objective of Eq. (9): maximise
//
//	F(σ) = Σ_T P(X_T) · log Σ_D N(d_TD; σ_D) · P̂_D(X_T)
//
// over the per-component Gaussian widths σ. pT holds the empirical sequence
// probabilities P(X_T); d[T][D] the edit distance between sequence T and
// component D's matched state; pD[T][D] the component's generative
// probability of the sequence.
type mixObjective struct {
	pT []float64
	d  [][]float64
	pD [][]float64
}

const (
	sigmaMin = 0.05
	sigmaMax = 50.0
	probEps  = 1e-300
)

// gaussian evaluates the 1-D Gaussian density of Eq. (4).
func gaussian(d, sigma float64) float64 {
	return math.Exp(-d*d/(2*sigma*sigma)) / (sigma * math.Sqrt(2*math.Pi))
}

// Gaussian exposes the Eq. (4) mixture-weight density. The compiled serving
// model must reproduce the mixture's weights bit-for-bit, so it evaluates the
// exact same function rather than a reimplementation.
func Gaussian(d, sigma float64) float64 { return gaussian(d, sigma) }

// F evaluates the objective.
func (o *mixObjective) F(sigma []float64) float64 {
	var f float64
	for t := range o.pT {
		var s float64
		for k, sg := range sigma {
			s += gaussian(o.d[t][k], sg) * o.pD[t][k]
		}
		if s < probEps {
			s = probEps
		}
		f += o.pT[t] * math.Log10(s)
	}
	return f
}

// Grad evaluates ∂F/∂σ analytically:
// ∂g/∂σ = g·(d²/σ³ − 1/σ), so each term contributes
// p_T · g·P·(d²/σ³ − 1/σ) / S_T (up to the log10 constant, which scales the
// whole gradient uniformly and is therefore irrelevant to the optimum).
func (o *mixObjective) Grad(sigma []float64) []float64 {
	g := make([]float64, len(sigma))
	ln10 := math.Ln10
	for t := range o.pT {
		var s float64
		terms := make([]float64, len(sigma))
		for k, sg := range sigma {
			terms[k] = gaussian(o.d[t][k], sg) * o.pD[t][k]
			s += terms[k]
		}
		if s < probEps {
			s = probEps
		}
		for k, sg := range sigma {
			dd := o.d[t][k]
			g[k] += o.pT[t] * terms[k] * (dd*dd/(sg*sg*sg) - 1/sg) / (s * ln10)
		}
	}
	return g
}

// hessian approximates the Hessian of F via central differences of the
// analytic gradient. K is at most ~11 in practice, so the O(K²) cost is
// negligible next to computing pD.
func (o *mixObjective) hessian(sigma []float64) [][]float64 {
	k := len(sigma)
	h := make([][]float64, k)
	const eps = 1e-4
	for i := 0; i < k; i++ {
		sp := append([]float64(nil), sigma...)
		sm := append([]float64(nil), sigma...)
		sp[i] += eps
		sm[i] -= eps
		gp := o.Grad(sp)
		gm := o.Grad(sm)
		h[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			h[i][j] = (gp[j] - gm[j]) / (2 * eps)
		}
	}
	return h
}

// solveLinear solves H·x = b by Gaussian elimination with partial pivoting.
// It returns false when H is (numerically) singular.
func solveLinear(h [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append(append([]float64(nil), h[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		x[i] = a[i][n]
		for j := i + 1; j < n; j++ {
			x[i] -= a[i][j] * x[j]
		}
		x[i] /= a[i][i]
	}
	return x, true
}

func clampSigma(s []float64) {
	for i := range s {
		if s[i] < sigmaMin {
			s[i] = sigmaMin
		}
		if s[i] > sigmaMax {
			s[i] = sigmaMax
		}
		if math.IsNaN(s[i]) {
			s[i] = 1
		}
	}
}

// NewtonMaximize runs the Eq. (10) iteration σ ← σ − H⁻¹∇F with a
// backtracking line-search safeguard: when the Newton direction does not
// improve F (the objective is only locally well-behaved), it falls back to
// a damped gradient-ascent step. σ is kept in [sigmaMin, sigmaMax].
func (o *mixObjective) NewtonMaximize(init []float64, iters int) []float64 {
	sigma := append([]float64(nil), init...)
	clampSigma(sigma)
	f := o.F(sigma)
	for it := 0; it < iters; it++ {
		grad := o.Grad(sigma)
		var dir []float64
		if step, ok := solveLinear(o.hessian(sigma), grad); ok {
			// Newton step for maximisation: σ - H⁻¹∇ (H is negative
			// definite near the maximum, making -H⁻¹∇ an ascent direction).
			dir = make([]float64, len(step))
			for i := range step {
				dir[i] = -step[i]
			}
			// If the Newton direction is not an ascent direction, discard.
			var dot float64
			for i := range dir {
				dot += dir[i] * grad[i]
			}
			if dot <= 0 {
				dir = nil
			}
		}
		if dir == nil {
			dir = append([]float64(nil), grad...)
		}
		// Backtracking line search on F.
		improved := false
		stepSize := 1.0
		for ls := 0; ls < 20; ls++ {
			trial := make([]float64, len(sigma))
			for i := range sigma {
				trial[i] = sigma[i] + stepSize*dir[i]
			}
			clampSigma(trial)
			if ft := o.F(trial); ft > f+1e-15 {
				sigma, f = trial, ft
				improved = true
				break
			}
			stepSize /= 2
		}
		if !improved {
			break
		}
	}
	return sigma
}
