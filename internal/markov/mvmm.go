package markov

import (
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/textutil"
)

// MVMMOptions controls mixture construction and weight learning.
type MVMMOptions struct {
	// TrainSample caps the number of (most frequent) aggregated sessions
	// used as the X_T sample when learning σ. 0 defaults to 2000.
	TrainSample int
	// NewtonIters bounds the Eq. (10) iterations. 0 defaults to 30.
	NewtonIters int
	// Parallel trains the component VMMs concurrently (the paper notes the
	// K models "can be independently trained in parallel").
	Parallel bool
	// FixedSigma, when positive, skips σ learning and gives every
	// component the same Gaussian width — the ablation baseline for the
	// learned Eq. (9) weights.
	FixedSigma float64
}

func (o MVMMOptions) withDefaults() MVMMOptions {
	if o.TrainSample <= 0 {
		o.TrainSample = 2000
	}
	if o.NewtonIters <= 0 {
		o.NewtonIters = 30
	}
	return o
}

// MVMM is the paper's Mixture Variable Memory Markov model (Sec. IV.C):
// a linearly weighted combination of K VMM components with per-component
// Gaussian weights over the edit distance between the online user context
// and each component's best-matching state (Eq. 4), with the σ parameters
// learned by minimising the KL redundancy (Eqs. 7–10).
type MVMM struct {
	comps []*VMM
	sigma []float64
	vocab int
}

// DefaultEpsilons reproduces the paper's experimental mixture: eleven VMM
// components with ε ∈ {0.0, 0.01, ..., 0.1}.
func DefaultEpsilons() []float64 {
	eps := make([]float64, 11)
	for i := range eps {
		eps[i] = float64(i) * 0.01
	}
	return eps
}

// NewMVMM trains a mixture over one VMM per config, then learns the mixing
// parameters from the training data itself. When every component shares the
// same context bound D (the usual case — the paper varies ε only), the
// stage-(a) candidate statistics and escape table are built once and shared
// across all K components, which keeps the K-fold training cost linear in
// the data.
func NewMVMM(sessions []query.Session, configs []VMMConfig, opt MVMMOptions) *MVMM {
	opt = opt.withDefaults()
	comps := make([]*VMM, len(configs))

	sharedD := len(configs) > 0
	for i := 1; i < len(configs); i++ {
		if configs[i].D != configs[0].D {
			sharedD = false
		}
	}
	train := func(i int, c *candidates) {
		cfg := configs[i]
		if cfg.Vocab <= 0 {
			cfg.Vocab = guessVocab(sessions)
		}
		if c != nil {
			comps[i] = growVMM(c, cfg)
			comps[i].freeze()
		} else {
			comps[i] = NewVMM(sessions, cfg)
		}
	}
	var shared *candidates
	if sharedD {
		shared = buildCandidates(sessions, configs[0].D)
		shared.freezeAll() // safe concurrent growth from shared statistics
	}
	if opt.Parallel {
		var wg sync.WaitGroup
		for i := range configs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				train(i, shared)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range configs {
			train(i, shared)
		}
	}
	vocab := 0
	for _, c := range comps {
		if c.cfg.Vocab > vocab {
			vocab = c.cfg.Vocab
		}
	}
	m := &MVMM{comps: comps, vocab: vocab}
	if opt.FixedSigma > 0 {
		m.sigma = make([]float64, len(comps))
		for i := range m.sigma {
			m.sigma[i] = opt.FixedSigma
		}
	} else {
		m.sigma = m.learnSigma(sessions, opt)
	}
	return m
}

// NewMVMMFromEpsilons is the convenience constructor matching the paper's
// setup: one unbounded VMM per ε value.
func NewMVMMFromEpsilons(sessions []query.Session, epsilons []float64, vocab int, opt MVMMOptions) *MVMM {
	configs := make([]VMMConfig, len(epsilons))
	for i, e := range epsilons {
		configs[i] = VMMConfig{Epsilon: e, Vocab: vocab}
	}
	return NewMVMM(sessions, configs, opt)
}

// learnSigma builds the Eq. (9) objective from a sample of training
// sequences and maximises it with the Newton iteration.
func (m *MVMM) learnSigma(sessions []query.Session, opt MVMMOptions) []float64 {
	k := len(m.comps)
	sigma := make([]float64, k)
	for i := range sigma {
		sigma[i] = 1
	}
	// Sample: the most frequent multi-query sessions, whose empirical
	// probabilities dominate the redundancy integral.
	sample := make([]query.Session, 0, opt.TrainSample)
	sorted := append([]query.Session(nil), sessions...)
	query.SortSessions(sorted)
	var mass uint64
	for _, s := range sorted {
		if len(s.Queries) < 2 {
			continue
		}
		sample = append(sample, s)
		mass += s.Count
		if len(sample) >= opt.TrainSample {
			break
		}
	}
	if len(sample) == 0 || mass == 0 {
		return sigma
	}
	obj := &mixObjective{
		pT: make([]float64, len(sample)),
		d:  make([][]float64, len(sample)),
		pD: make([][]float64, len(sample)),
	}
	for t, s := range sample {
		obj.pT[t] = float64(s.Count) / float64(mass)
		obj.d[t] = make([]float64, k)
		obj.pD[t] = make([]float64, k)
		for i, c := range m.comps {
			state, _, ok := c.MatchState(s.Queries)
			if ok {
				obj.d[t][i] = float64(textutil.SuffixDistance(s.Queries, state))
			} else {
				obj.d[t][i] = float64(len(s.Queries))
			}
			obj.pD[t][i] = c.GenProb(s.Queries)
		}
	}
	return obj.NewtonMaximize(sigma, opt.NewtonIters)
}

// Name implements model.Predictor.
func (m *MVMM) Name() string { return "MVMM" }

// Components exposes the trained VMM components.
func (m *MVMM) Components() []*VMM { return m.comps }

// Sigmas returns the learned Gaussian widths, one per component.
func (m *MVMM) Sigmas() []float64 { return append([]float64(nil), m.sigma...) }

// matchAll runs every component's MatchState exactly once, returning each
// component's matched-state distribution (nil when uncovered) alongside the
// normalised Eq. (4) mixing weights. Predict and Prob both consume the same
// single walk — previously each re-matched all K components a second time.
func (m *MVMM) matchAll(ctx query.Seq) ([]*Dist, []float64) {
	dists := make([]*Dist, len(m.comps))
	w := make([]float64, len(m.comps))
	var sum float64
	for i, c := range m.comps {
		state, d, ok := c.MatchState(ctx)
		if !ok {
			continue
		}
		dists[i] = d
		dist := float64(textutil.SuffixDistance(ctx, state))
		w[i] = gaussian(dist, m.sigma[i])
		sum += w[i]
	}
	if sum > 0 {
		for i := range w {
			w[i] /= sum
		}
	}
	return dists, w
}

// weights computes the normalised Eq. (4) mixing weights for a context:
// each component's Gaussian density at the edit distance between the context
// and that component's matched state. Components that cannot match at all
// receive zero weight.
func (m *MVMM) weights(ctx query.Seq) []float64 {
	_, w := m.matchAll(ctx)
	return w
}

// Predict implements model.Predictor: pool each component's candidates from
// its matched state, score every candidate by the weighted escape-chain
// generative probability Σ_D w_D · P̂_D(q|ctx), and re-rank (Sec. IV.C.3).
func (m *MVMM) Predict(ctx query.Seq, topN int) []model.Prediction {
	if len(ctx) == 0 || topN <= 0 {
		return nil
	}
	dists, w := m.matchAll(ctx)
	cands := make(map[query.ID]struct{})
	any := false
	for i := range m.comps {
		if w[i] == 0 || dists[i] == nil {
			continue
		}
		any = true
		for _, p := range dists[i].TopN(topN * 4) {
			cands[p.Query] = struct{}{}
		}
	}
	if !any || len(cands) == 0 {
		return nil
	}
	out := make([]model.Prediction, 0, len(cands))
	for q := range cands {
		var score float64
		for i, c := range m.comps {
			if w[i] == 0 {
				continue
			}
			score += w[i] * c.ProbEscape(ctx, q)
		}
		out = append(out, model.Prediction{Query: q, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Query < out[j].Query
	})
	if len(out) > topN {
		out = out[:topN]
	}
	return out
}

// Prob implements model.Predictor as the weighted mixture of the
// components' escape-chain probabilities (Eq. 2).
func (m *MVMM) Prob(ctx query.Seq, q query.ID) float64 {
	w := m.weights(ctx)
	var p float64
	for i, c := range m.comps {
		if w[i] == 0 {
			continue
		}
		p += w[i] * c.ProbEscape(ctx, q)
	}
	return p
}

// Covers implements model.Predictor. Coverage equals that of any single
// component (and of Adjacency) thanks to the suffix partial-match strategy
// (Fig. 10's observation).
func (m *MVMM) Covers(ctx query.Seq) bool {
	for _, c := range m.comps {
		if c.Covers(ctx) {
			return true
		}
	}
	return false
}

// UnionNodes returns the number of distinct PST nodes across all components
// — the paper's single-tree deployment estimate for Table VII ("we can
// actually combine all into a single PST"). internal/compiled realises that
// estimate as the merged flat trie, and Table VII's compiled rows report
// the resulting CPS3/CPS4 blob bytes exactly (a test pins them to
// len(AppendFlat)); this count remains the node-level view.
func (m *MVMM) UnionNodes() int {
	union := make(map[string]struct{})
	for _, c := range m.comps {
		for k := range c.nodeKeys() {
			union[k] = struct{}{}
		}
	}
	return len(union)
}

var _ model.Predictor = (*MVMM)(nil)
