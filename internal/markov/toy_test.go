package markov

import (
	"math"
	"testing"

	"repro/internal/query"
)

// paperToySessions reproduces Table II exactly: Q = {q0, q1} and the eight
// aggregated training sessions with their frequencies. We intern q0 as ID 0
// and q1 as ID 1.
func paperToySessions() []query.Session {
	q0, q1 := query.ID(0), query.ID(1)
	return []query.Session{
		{Queries: query.Seq{q1, q0, q0}, Count: 3},
		{Queries: query.Seq{q1, q0, q1}, Count: 7},
		{Queries: query.Seq{q0, q1, q0}, Count: 1},
		{Queries: query.Seq{q0, q1, q1}, Count: 1},
		{Queries: query.Seq{q0, q0}, Count: 78},
		{Queries: query.Seq{q1, q0}, Count: 5},
		{Queries: query.Seq{q1, q1}, Count: 3},
		{Queries: query.Seq{q0}, Count: 10},
	}
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %.6f, want %.6f (±%g)", name, got, want, tol)
	}
}

// TestPaperToyExampleCandidateProbabilities checks the stage-(a) counts the
// paper reports: P(q0 | [q1, q0]) = 3/10.
func TestPaperToyExampleCandidateProbabilities(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	q0, q1 := query.ID(0), query.ID(1)

	// State q1q0 must be in the tree (the paper's S = {q1q0, q0, q1}).
	_, d, ok := m.MatchState(query.Seq{q1, q0})
	if !ok {
		t.Fatal("state q1q0 not matched")
	}
	approx(t, "P(q0|q1q0)", d.P(q0), 0.3, 1e-9)
	approx(t, "P(q1|q1q0)", d.P(q1), 0.7, 1e-9)
}

// TestPaperToyExampleKLValues verifies the two divergences the paper prints
// in stage (b): D_KL(q0 || q1q0) = 0.3449 and D_KL(q1 || q0q1) = 0.0837,
// both in log base 10, both measured from the parent's distribution to the
// child's.
func TestPaperToyExampleKLValues(t *testing.T) {
	q0, q1 := query.ID(0), query.ID(1)
	sessions := paperToySessions()

	// Rebuild the candidate distributions by hand (they are what stage (b)
	// compares): followers of q0, q1, q1q0 and q0q1 across all sessions.
	count := func(ctx query.Seq) *Dist {
		d := NewDist()
		for _, s := range sessions {
			for i := 1; i < len(s.Queries); i++ {
				k := len(ctx)
				if i >= k && s.Queries[i-k:i].Equal(ctx) {
					d.Add(s.Queries[i], s.Count)
				}
			}
		}
		return d
	}
	dQ0 := count(query.Seq{q0})
	dQ1 := count(query.Seq{q1})
	dQ1Q0 := count(query.Seq{q1, q0})
	dQ0Q1 := count(query.Seq{q0, q1})

	// Sanity: the paper's footing — q0 is followed 90 times (81×q0, 9×q1),
	// q1 20 times (16×q0, 4×q1).
	if dQ0.Total() != 90 || dQ0.Count(q0) != 81 {
		t.Fatalf("followers of q0: total=%d q0=%d, want 90/81", dQ0.Total(), dQ0.Count(q0))
	}
	if dQ1.Total() != 20 || dQ1.Count(q0) != 16 {
		t.Fatalf("followers of q1: total=%d q0=%d, want 20/16", dQ1.Total(), dQ1.Count(q0))
	}

	approx(t, "DKL(q0||q1q0)", klSmoothed(dQ0, dQ1Q0, 2), 0.3449, 5e-4)
	approx(t, "DKL(q1||q0q1)", klSmoothed(dQ1, dQ0Q1, 2), 0.0837, 5e-4)
}

// TestPaperToyExampleTreeStates checks stage (b)'s outcome with ε = 0.1:
// S = {q1q0, q0, q1} — q0q1 is pruned (KL 0.0837 < 0.1) while q1q0 is kept
// (KL 0.3449 > 0.1).
func TestPaperToyExampleTreeStates(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	q0, q1 := query.ID(0), query.ID(1)

	if m.NumNodes() != 3 {
		t.Fatalf("PST has %d nodes, want 3 (q0, q1, q1q0)", m.NumNodes())
	}
	for _, want := range []query.Seq{{q0}, {q1}, {q1, q0}} {
		if _, ok := m.nodes[want.Key()]; !ok {
			t.Fatalf("state %v missing from PST", want)
		}
	}
	if _, ok := m.nodes[(query.Seq{q0, q1}).Key()]; ok {
		t.Fatal("state q0q1 should have been pruned at ε = 0.1")
	}
}

// TestPaperToyExampleSequenceProbability reproduces the Sec. IV.B.2 walk:
// the probability of [q0, q1, q0, q1, q1, q0] is
// 1 × 0.1 × 0.8 × 0.7 × 0.2 × 0.8, with states e, q0, q1, q1q0, q1, q1.
func TestPaperToyExampleSequenceProbability(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	q0, q1 := query.ID(0), query.ID(1)
	seq := query.Seq{q0, q1, q0, q1, q1, q0}

	wantSteps := []float64{0.1, 0.8, 0.7, 0.2, 0.8}
	wantStates := []query.Seq{{q0}, {q1}, {q1, q0}, {q1}, {q1}}
	p := 1.0
	for i := 1; i < len(seq); i++ {
		ctx := seq[:i]
		state, d, ok := m.MatchState(ctx)
		if !ok {
			t.Fatalf("step %d: context %v unmatched", i, ctx)
		}
		if !state.Equal(wantStates[i-1]) {
			t.Fatalf("step %d: matched state %v, want %v", i, state, wantStates[i-1])
		}
		step := d.SmoothedP(seq[i], 2)
		approx(t, "step probability", step, wantSteps[i-1], 1e-9)
		p *= step
	}
	approx(t, "sequence probability", p, 0.1*0.8*0.7*0.2*0.8, 1e-12)
}

// TestPaperToyExampleRecommendations reproduces the Sec. IV.B.2
// recommendation walk: after q0 recommend q0; after [q1, q0] recommend q1.
func TestPaperToyExampleRecommendations(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	q0, q1 := query.ID(0), query.ID(1)

	top := m.Predict(query.Seq{q0}, 1)
	if len(top) != 1 || top[0].Query != q0 {
		t.Fatalf("Predict([q0]) = %v, want q0", top)
	}
	top = m.Predict(query.Seq{q1, q0}, 1)
	if len(top) != 1 || top[0].Query != q1 {
		t.Fatalf("Predict([q1,q0]) = %v, want q1", top)
	}
}

// TestPaperToyExampleRootPrior checks node e of Fig. 3: the prior is the
// marginal query distribution (187 q0 vs 31 q1 occurrences).
func TestPaperToyExampleRootPrior(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	q0, q1 := query.ID(0), query.ID(1)
	if m.Root().Total() != 218 {
		t.Fatalf("root total = %d, want 218", m.Root().Total())
	}
	if m.Root().Count(q0) != 187 || m.Root().Count(q1) != 31 {
		t.Fatalf("root counts = %d/%d, want 187/31", m.Root().Count(q0), m.Root().Count(q1))
	}
}

// TestPaperToyExampleEntropy reproduces the Sec. I.A entropy illustration:
// a (0.6, 0.4) follower split has prediction entropy ~0.29 and a (0.9, 0.1)
// split ~0.14, both in log base 10.
func TestPaperToyExampleEntropy(t *testing.T) {
	d := NewDist()
	d.Add(0, 60)
	d.Add(1, 40)
	approx(t, "entropy(0.6,0.4)", d.Entropy(), 0.29, 0.005)

	d2 := NewDist()
	d2.Add(0, 9)
	d2.Add(1, 1)
	approx(t, "entropy(0.9,0.1)", d2.Entropy(), 0.14, 0.005)
}

// TestToyEpsilonExtremes verifies the Fig. 4 extremes: ε = +Inf keeps only
// length-1 states (the Adjacency degeneration) while ε = 0 grows every
// observed context.
func TestToyEpsilonExtremes(t *testing.T) {
	adj := NewVMM(paperToySessions(), VMMConfig{Epsilon: math.Inf(1), D: 2, Vocab: 2})
	if adj.Depth() != 1 {
		t.Fatalf("ε=+Inf depth = %d, want 1", adj.Depth())
	}
	full := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0, D: 2, Vocab: 2})
	// Candidates with evidence: q0, q1, q1q0, q0q1 — all must be present.
	if full.NumNodes() != 4 {
		t.Fatalf("ε=0 nodes = %d, want 4", full.NumNodes())
	}
}
