package markov

import (
	"math"
	"testing"

	"repro/internal/query"
)

func ngramTrainingSessions() []query.Session {
	// [1,2,3] x10, [1,2,4] x5, [2,3] x8, [7] x3 (singleton: no evidence).
	return []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 10},
		{Queries: query.Seq{1, 2, 4}, Count: 5},
		{Queries: query.Seq{2, 3}, Count: 8},
		{Queries: query.Seq{7}, Count: 3},
	}
}

func TestNGramExactContextPrediction(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	top := m.Predict(query.Seq{1, 2}, 5)
	if len(top) != 2 {
		t.Fatalf("predictions = %v", top)
	}
	if top[0].Query != 3 || top[1].Query != 4 {
		t.Fatalf("ranking = %v, want 3 then 4", top)
	}
	if math.Abs(top[0].Score-10.0/15) > 1e-12 {
		t.Fatalf("score = %v", top[0].Score)
	}
}

func TestNGramUsesFullContextOnly(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	// [9, 1, 2] never occurred verbatim even though its suffix [1,2] did:
	// the naive model sticks to the maximum-length context and fails.
	if m.Covers(query.Seq{9, 1, 2}) {
		t.Fatal("N-gram should not cover an unseen full context")
	}
	if got := m.Predict(query.Seq{9, 1, 2}, 5); got != nil {
		t.Fatalf("Predict on uncovered context = %v", got)
	}
	if p := m.Prob(query.Seq{9, 1, 2}, 3); p != 0 {
		t.Fatalf("Prob on uncovered context = %v", p)
	}
}

func TestNGramPrefixFromSessionStart(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	// Per Sec. V.A.5, training contexts are prefixes from the session
	// start: [2] -> 3 has support 8 from session [2,3], and the [2]
	// context inside [1,2,3] does NOT contribute (that evidence belongs to
	// the full prefix [1,2]).
	if p := m.Prob(query.Seq{2}, 3); math.Abs(p-1.0) > 1e-9 {
		// Followers of prefix [2]: only 3 (x8); vocab smoothing with both
		// outcomes unobserved except 3.
		if p <= 0 {
			t.Fatalf("Prob([2]->3) = %v", p)
		}
	}
	d := m.dist(query.Seq{2})
	if d.Total() != 8 {
		t.Fatalf("prefix [2] support = %d, want 8 (session-start only)", d.Total())
	}
}

func TestNGramEmptyContextNotCovered(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	if m.Covers(nil) {
		t.Fatal("empty context should not be covered")
	}
}

func TestNGramMaxOrderAndStates(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	if m.MaxOrder() != 3 {
		t.Fatalf("MaxOrder = %d, want 3", m.MaxOrder())
	}
	// States: [1], [1,2], [2] -> 3 distinct prefixes.
	if m.NumStates() != 3 {
		t.Fatalf("NumStates = %d, want 3", m.NumStates())
	}
}

func TestNGramSingletonSessionsIgnored(t *testing.T) {
	m := NewNGram([]query.Session{{Queries: query.Seq{7}, Count: 100}}, 1)
	if m.NumStates() != 0 {
		t.Fatalf("singleton sessions created %d states", m.NumStates())
	}
}

func TestNGramSupportWeighting(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	d := m.dist(query.Seq{1})
	if d.Total() != 15 || d.Count(2) != 15 {
		t.Fatalf("prefix [1]: total=%d count(2)=%d, want 15/15", d.Total(), d.Count(2))
	}
}
