package markov

import (
	"bytes"
	"testing"

	"repro/internal/query"
	"repro/internal/store"
)

func TestNGramSerializeRoundTrip(t *testing.T) {
	m := NewNGram(ngramTrainingSessions(), 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNGram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != m.NumStates() || got.MaxOrder() != m.MaxOrder() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.NumStates(), got.MaxOrder(), m.NumStates(), m.MaxOrder())
	}
	for _, ctx := range []query.Seq{{1}, {1, 2}, {2}} {
		a, b := m.Predict(ctx, 5), got.Predict(ctx, 5)
		if len(a) != len(b) {
			t.Fatalf("prediction count differs on %v", ctx)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("prediction %d differs on %v: %v vs %v", i, ctx, a[i], b[i])
			}
		}
	}
}

func TestVMMSerializeRoundTrip(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVMM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != m.NumNodes() || got.Depth() != m.Depth() {
		t.Fatalf("tree shape mismatch")
	}
	if got.Config() != m.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config(), m.Config())
	}
	seq := query.Seq{0, 1, 0, 1, 1, 0}
	for i := 1; i < len(seq); i++ {
		a := m.Prob(seq[:i], seq[i])
		b := got.Prob(seq[:i], seq[i])
		if a != b {
			t.Fatalf("step %d prob differs: %v vs %v", i, a, b)
		}
		if ea, eb := m.ProbEscape(seq[:i], seq[i]), got.ProbEscape(seq[:i], seq[i]); ea != eb {
			t.Fatalf("step %d escape prob differs: %v vs %v", i, ea, eb)
		}
	}
}

func TestMVMMSerializeRoundTrip(t *testing.T) {
	m := NewMVMMFromEpsilons(mvmmSessions(), []float64{0.0, 0.05}, 10,
		MVMMOptions{TrainSample: 50, NewtonIters: 5})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMVMM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Components()) != 2 {
		t.Fatalf("components = %d", len(got.Components()))
	}
	sa, sb := m.Sigmas(), got.Sigmas()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sigma %d differs: %v vs %v", i, sa[i], sb[i])
		}
	}
	for _, ctx := range []query.Seq{{1, 2}, {4, 2}, {2}} {
		a, b := m.Predict(ctx, 3), got.Predict(ctx, 3)
		if len(a) != len(b) {
			t.Fatalf("prediction count differs on %v", ctx)
		}
		for i := range a {
			if a[i].Query != b[i].Query {
				t.Fatalf("prediction differs on %v: %v vs %v", ctx, a, b)
			}
		}
	}
}

func TestReadVMMRejectsCorruptStream(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadVMM(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt VMM stream accepted")
	}
}

func TestReadNGramRejectsWrongMagic(t *testing.T) {
	m := NewVMM(paperToySessions(), VMMConfig{Epsilon: 0.1, Vocab: 2})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadNGram(&buf); err == nil {
		t.Fatal("VMM stream accepted as N-gram")
	}
}

func TestFootprintOrderingMatchesModelSize(t *testing.T) {
	sessions := mvmmSessions()
	full := NewVMM(sessions, VMMConfig{Epsilon: 0, Vocab: 10})
	pruned := NewVMM(sessions, VMMConfig{Epsilon: 0.5, Vocab: 10})
	fFull, err := store.Footprint(full)
	if err != nil {
		t.Fatal(err)
	}
	fPruned, err := store.Footprint(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if fFull < fPruned {
		t.Fatalf("full tree footprint %d < pruned %d", fFull, fPruned)
	}
}

func TestDistSerializeRoundTrip(t *testing.T) {
	d := NewDist()
	d.Add(3, 10)
	d.Add(1, 5)
	var buf bytes.Buffer
	sw := store.NewWriter(&buf)
	WriteDist(sw, d)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	sr := store.NewReader(&buf)
	got := ReadDist(sr)
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Total() != 15 || got.Count(3) != 10 || got.Count(1) != 5 {
		t.Fatalf("round trip dist = %+v", got)
	}
}
