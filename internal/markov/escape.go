package markov

import "repro/internal/query"

// EscapeTable holds the window-occurrence counts behind the paper's context
// escape mechanism (Sec. IV.C.2(b), Eq. 6). For every query-sequence window
// s' observed in training it records how often s' occurred anywhere
// (Σ_q |[q,s']| + |[e,s']|) and how often at the very start of a session
// (|[e,s']|).
type EscapeTable struct {
	occ      map[string]uint64
	startOcc map[string]uint64
	maxLen   int
}

// NewEscapeTable counts windows of length 1..maxLen over aggregated
// sessions. maxLen <= 0 means unbounded (every window).
func NewEscapeTable(sessions []query.Session, maxLen int) *EscapeTable {
	t := &EscapeTable{
		occ:      make(map[string]uint64),
		startOcc: make(map[string]uint64),
		maxLen:   maxLen,
	}
	for _, s := range sessions {
		l := len(s.Queries)
		for j := 0; j < l; j++ {
			limit := l - j
			if maxLen > 0 && limit > maxLen {
				limit = maxLen
			}
			for k := 1; k <= limit; k++ {
				key := s.Queries[j : j+k].Key()
				t.occ[key] += s.Count
				if j == 0 {
					t.startOcc[key] += s.Count
				}
			}
		}
	}
	return t
}

// Occurrences returns how often the window s was observed anywhere.
func (t *EscapeTable) Occurrences(s query.Seq) uint64 { return t.occ[s.Key()] }

// StartOccurrences returns how often s was observed at a session start.
func (t *EscapeTable) StartOccurrences(s query.Seq) uint64 { return t.startOcc[s.Key()] }

// Escape returns P̂(escape | s) for an unobserved context s = [q1, ..., ql]:
// the probability that q1 is "new" and prediction should fall back to the
// suffix [q2, ..., ql]. Per Eq. (6) this is
//
//	|[e, s']| / (Σ_q |[q, s']| + |[e, s']|)
//
// with s' the suffix. Two guards keep the recursion well-defined on sparse
// data: when s' itself was never observed the escape is 1 (no evidence to
// penalise with), and a zero numerator is floored at 1/(occ+1) so a single
// unobserved prefix cannot zero out the whole generative probability — the
// paper's escape exists to *penalise* partial matches, not to veto them.
func (t *EscapeTable) Escape(s query.Seq) float64 {
	suf := s.Suffix()
	if len(suf) == 0 {
		// Escaping from a single unmatched query: an uninformative prior.
		return 0.5
	}
	occ := t.occ[suf.Key()]
	if occ == 0 {
		return 1
	}
	start := t.startOcc[suf.Key()]
	if start == 0 {
		return 1 / float64(occ+1)
	}
	return float64(start) / float64(occ)
}

// escapeKey is Escape over a context pre-encoded in the Seq.Key layout; the
// suffix is the key minus its leading 4 bytes, looked up without allocating.
func (t *EscapeTable) escapeKey(b []byte) float64 {
	suf := b[4:]
	if len(suf) == 0 {
		return 0.5
	}
	occ := t.occ[string(suf)]
	if occ == 0 {
		return 1
	}
	start := t.startOcc[string(suf)]
	if start == 0 {
		return 1 / float64(occ+1)
	}
	return float64(start) / float64(occ)
}

// Len reports the number of distinct windows tracked.
func (t *EscapeTable) Len() int { return len(t.occ) }

// MaxLen reports the window-length bound the table was counted with.
func (t *EscapeTable) MaxLen() int { return t.maxLen }

// ForEachWindow visits every tracked window with its occurrence counts, in
// unspecified order. Used by the compiled-model builder to merge the
// per-component tables into the flat trie.
func (t *EscapeTable) ForEachWindow(f func(key string, occ, startOcc uint64)) {
	for k, o := range t.occ {
		f(k, o, t.startOcc[k])
	}
}
