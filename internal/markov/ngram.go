package markov

import (
	"repro/internal/model"
	"repro/internal/query"
)

// NGram is the paper's naive variable-length N-gram model (Sec. IV.A):
// a series of fixed-order MLE models, one per context length, that always
// uses the *full* observed context [q1, ..., qi-1] — no back-off. A context
// not seen verbatim in training is simply not covered (the model's Table VI
// reason 4), which is what collapses its coverage beyond length 3 (Fig. 11).
type NGram struct {
	// states maps an encoded full-prefix context to its follower
	// distribution. Contexts of different lengths live in the same map;
	// the key encodes the length implicitly (4 bytes per query).
	states map[string]*Dist
	vocab  int
	maxN   int
}

// NewNGram trains the variable-length N-gram family from aggregated training
// sessions, using the Sec. V.A.5 context derivation: each session prefix
// [q1..qi-1] contributes its aggregated frequency as support for predicting
// qi. vocab is |Q| for smoothing.
func NewNGram(sessions []query.Session, vocab int) *NGram {
	m := &NGram{states: make(map[string]*Dist), vocab: vocab}
	for _, s := range sessions {
		for i := 1; i < len(s.Queries); i++ {
			k := s.Queries[:i].Key()
			d := m.states[k]
			if d == nil {
				d = NewDist()
				m.states[k] = d
			}
			d.Add(s.Queries[i], s.Count)
			if i+1 > m.maxN {
				m.maxN = i + 1
			}
		}
	}
	m.freeze()
	return m
}

// freeze precomputes rankings for concurrent prediction.
func (m *NGram) freeze() {
	for _, d := range m.states {
		d.Freeze()
	}
}

// Name implements model.Predictor.
func (m *NGram) Name() string { return "N-gram" }

// MaxOrder returns the largest trained N (context length + 1).
func (m *NGram) MaxOrder() int { return m.maxN }

// NumStates returns the number of trained contexts across all orders.
func (m *NGram) NumStates() int { return len(m.states) }

// dist returns the follower distribution of the exact context, or nil.
func (m *NGram) dist(ctx query.Seq) *Dist {
	if len(ctx) == 0 {
		return nil
	}
	return m.states[ctx.Key()]
}

// Predict implements model.Predictor. Only an exact match of the full
// context yields predictions.
func (m *NGram) Predict(ctx query.Seq, topN int) []model.Prediction {
	d := m.dist(ctx)
	if d == nil {
		return nil
	}
	return d.TopN(topN)
}

// Prob implements model.Predictor with the paper's 1/|Q| smoothing applied
// within covered contexts.
func (m *NGram) Prob(ctx query.Seq, q query.ID) float64 {
	d := m.dist(ctx)
	if d == nil {
		return 0
	}
	return d.SmoothedP(q, m.vocab)
}

// Covers implements model.Predictor.
func (m *NGram) Covers(ctx query.Seq) bool {
	return m.dist(ctx) != nil
}

var _ model.Predictor = (*NGram)(nil)
