package markov

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/query"
)

// VMMConfig parameterises Prediction-Suffix-Tree learning (Sec. IV.B.1).
type VMMConfig struct {
	// Epsilon is the PST growth threshold: a context node s is added when
	// the KL divergence between its parent's predictive distribution and
	// its own exceeds Epsilon. Epsilon <= 0 grows the full tree (the
	// paper's "VMM (0.0)" / infinitely-bounded extreme of Fig. 4);
	// Epsilon = +Inf degenerates to the Adjacency 2-gram.
	Epsilon float64
	// D bounds the maximum context length (PST depth). 0 means unbounded.
	D int
	// MinSupport filters candidate contexts observed fewer than this many
	// times ("a user threshold could be set to filter those infrequent
	// training sequences"). 0 keeps everything.
	MinSupport uint64
	// Vocab is |Q|, used for the stage-(c) 1/|Q| smoothing.
	Vocab int
}

// VMM is a Variable Memory Markov model learned as a Prediction Suffix Tree.
// States are suffix contexts; prediction walks to the deepest suffix of the
// user context present in the tree (O(D) online, Sec. IV.B.2).
type VMM struct {
	cfg   VMMConfig
	nodes map[string]*Dist // suffix key -> follower distribution
	root  *Dist            // the empty-context prior (node e)
	esc   *EscapeTable
	depth int // deepest stored node
}

// NewVMM learns a VMM from aggregated training sessions via the three-stage
// PST algorithm of Sec. IV.B.1:
//
//	(a) extract candidate suffixes with conditional follower counts,
//	(b) grow the tree: all length-1 contexts, plus longer contexts whose
//	    predictive distribution diverges from their parent's by more than
//	    Epsilon (suffix-closed),
//	(c) smooth unobserved events with a uniform 1/|Q| floor (applied lazily
//	    in Prob).
func NewVMM(sessions []query.Session, cfg VMMConfig) *VMM {
	if cfg.Vocab <= 0 {
		cfg.Vocab = guessVocab(sessions)
	}
	c := buildCandidates(sessions, cfg.D)
	m := growVMM(c, cfg)
	m.freeze()
	return m
}

// candidates is the shared output of PST stage (a): the conditional
// follower counts of every suffix context, the root prior, the escape
// table, and the depth-sorted candidate keys. Mixture training builds it
// once and grows every component from it (the paper: the K models "can be
// independently trained in parallel" — they share all sufficient
// statistics).
type candidates struct {
	cand  map[string]*Dist
	keys  []string // sorted by depth then key
	root  *Dist
	esc   *EscapeTable
	plogp map[string]float64 // cached Σ p̃ log10 p̃ per parent
}

// buildCandidates runs stage (a) over the training sessions with context
// bound D (0 = unbounded).
func buildCandidates(sessions []query.Session, d int) *candidates {
	c := &candidates{cand: make(map[string]*Dist), root: NewDist(), plogp: make(map[string]float64)}
	maxSess := 0
	for _, s := range sessions {
		l := len(s.Queries)
		if l > maxSess {
			maxSess = l
		}
		for i := 1; i < l; i++ {
			next := s.Queries[i]
			c.root.Add(next, s.Count)
			limit := i
			if d > 0 && limit > d {
				limit = d
			}
			for k := 1; k <= limit; k++ {
				key := s.Queries[i-k : i].Key()
				dist := c.cand[key]
				if dist == nil {
					dist = NewDist()
					c.cand[key] = dist
				}
				dist.Add(next, s.Count)
			}
		}
		// The root prior also counts first queries so that P(q|e) reflects
		// the marginal query distribution (Fig. 3's node e).
		if l > 0 {
			c.root.Add(s.Queries[0], s.Count)
		}
	}
	c.keys = make([]string, 0, len(c.cand))
	for k := range c.cand {
		c.keys = append(c.keys, k)
	}
	sort.Slice(c.keys, func(i, j int) bool {
		if len(c.keys[i]) != len(c.keys[j]) {
			return len(c.keys[i]) < len(c.keys[j])
		}
		return c.keys[i] < c.keys[j]
	})
	escLen := d
	if escLen <= 0 {
		escLen = maxSess
	}
	c.esc = NewEscapeTable(sessions, escLen)
	return c
}

// freezeAll precomputes rankings and the per-parent Σ p̃ log10 p̃ cache so
// multiple components can grow from the shared candidates concurrently
// without mutating them.
func (c *candidates) freezeAll() {
	c.root.Freeze()
	for k, d := range c.cand {
		d.Freeze()
		c.plogp[k] = sumPLogP(d)
	}
}

func (c *candidates) parentStats(key string) (*Dist, float64) {
	parent := c.cand[key]
	if parent == nil {
		return c.root, sumPLogP(c.root)
	}
	sum, ok := c.plogp[key]
	if !ok {
		// Sequential path: compute and cache lazily. The concurrent path
		// pre-populates the cache via freezeAll.
		sum = sumPLogP(parent)
		c.plogp[key] = sum
	}
	return parent, sum
}

// growVMM runs stage (b) — depth-ordered ε growth with suffix closure —
// over shared candidates. It does not freeze the result; NewVMM and
// NewMVMM handle freezing.
func growVMM(c *candidates, cfg VMMConfig) *VMM {
	m := &VMM{cfg: cfg, nodes: make(map[string]*Dist), root: c.root, esc: c.esc}
	for _, k := range c.keys {
		d := c.cand[k]
		if d.Total() < cfg.MinSupport {
			continue
		}
		depth := len(k) / 4
		if depth == 1 {
			m.addNode(k, d, 1)
			continue
		}
		if _, already := m.nodes[k]; already {
			continue
		}
		grow := cfg.Epsilon <= 0 // ε = 0 grows the full tree; skip the KL
		if !grow {
			parent, sum := c.parentStats(k[4:]) // drop the oldest query
			grow = klSmoothedFast(parent, d, cfg.Vocab, sum) > cfg.Epsilon
		}
		if grow {
			// Suffix closure: add s and every suffix of s.
			for sk := k; len(sk) > 0; sk = sk[4:] {
				if _, ok := m.nodes[sk]; ok {
					continue
				}
				sd := c.cand[sk]
				if sd == nil {
					sd = NewDist()
				}
				m.addNode(sk, sd, len(sk)/4)
			}
		}
	}
	return m
}

// freeze precomputes every node's TopN ranking so predictions are safe for
// concurrent callers.
func (m *VMM) freeze() {
	m.root.Freeze()
	for _, d := range m.nodes {
		d.Freeze()
	}
}

func (m *VMM) addNode(key string, d *Dist, depth int) {
	m.nodes[key] = d
	if depth > m.depth {
		m.depth = depth
	}
}

func guessVocab(sessions []query.Session) int {
	seen := make(map[query.ID]struct{})
	for _, s := range sessions {
		for _, q := range s.Queries {
			seen[q] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return 1
	}
	return len(seen)
}

// sumPLogP returns Σ_q p̃(q)·log10 p̃(q) over the MLE distribution — the
// per-parent cache that makes klSmoothedFast O(child support).
func sumPLogP(d *Dist) float64 {
	if d.total == 0 {
		return 0
	}
	var s float64
	tot := float64(d.total)
	for _, c := range d.counts {
		p := float64(c) / tot
		s += p * math.Log10(p)
	}
	return s
}

// klSmoothedFast computes D_KL(parent || child) over the stage-(c) smoothed
// distributions in O(|child support|), given sumPP = sumPLogP(parent).
// It is algebraically identical to klSmoothed: queries in the child's
// support are handled term by term; the parent-only remainder collapses to
// sumPP minus the overlap (all smoothed-child terms there share the same
// 1/|Q| floor); queries unobserved in both share one closed-form term.
func klSmoothedFast(parent, child *Dist, vocab int, sumPP float64) float64 {
	if parent.total == 0 || child.total == 0 {
		return math.Inf(1)
	}
	zp := 1 + float64(vocab-parent.Support())/float64(vocab)
	zc := 1 + float64(vocab-child.Support())/float64(vocab)
	floorP := 1 / float64(vocab) / zp
	floorC := 1 / float64(vocab) / zc
	ptot := float64(parent.total)
	ctot := float64(child.total)

	var kl float64
	overlapPLogP := 0.0 // Σ_{q∈C∩P} p̃ log10 p̃
	overlapMass := 0.0  // Σ_{q∈C∩P} p̃
	inParent := 0       // |C∩P|
	for q, cc := range child.counts {
		c := float64(cc) / ctot / zc
		if pc, ok := parent.counts[q]; ok {
			pt := float64(pc) / ptot
			p := pt / zp
			kl += p * math.Log10(p/c)
			overlapPLogP += pt * math.Log10(pt)
			overlapMass += pt
			inParent++
		} else {
			kl += floorP * math.Log10(floorP/c)
		}
	}
	// Parent-support queries outside the child's support: child assigns the
	// uniform floor, so Σ p·log10(p/floorC) expands around the cached sum.
	restPLogP := sumPP - overlapPLogP
	restMass := 1 - overlapMass
	if restMass > 1e-15 {
		kl += (restPLogP - restMass*(math.Log10(zp)+math.Log10(floorC))) / zp
	}
	// Queries unobserved in both distributions.
	u := vocab - parent.Support() - (child.Support() - inParent)
	if u > 0 {
		kl += float64(u) * floorP * math.Log10(zc/zp)
	}
	return kl
}

// klSmoothed computes D_KL(parent || child) in log10 over the stage-(c)
// smoothed distributions, in O(union support) time: queries unobserved in
// both distributions share a closed-form term. Kept as the reference
// implementation for klSmoothedFast (see the equivalence property test).
func klSmoothed(parent, child *Dist, vocab int) float64 {
	if parent.Total() == 0 || child.Total() == 0 {
		return math.Inf(1)
	}
	union := make(map[query.ID]struct{}, parent.Support()+child.Support())
	for _, q := range parent.Queries() {
		union[q] = struct{}{}
	}
	for _, q := range child.Queries() {
		union[q] = struct{}{}
	}
	var kl float64
	for q := range union {
		p := parent.SmoothedP(q, vocab)
		c := child.SmoothedP(q, vocab)
		if p == 0 {
			continue
		}
		kl += p * math.Log10(p/c)
	}
	u := vocab - len(union)
	if u > 0 {
		zp := 1 + float64(vocab-parent.Support())/float64(vocab)
		zc := 1 + float64(vocab-child.Support())/float64(vocab)
		pu := 1 / float64(vocab) / zp
		kl += float64(u) * pu * math.Log10(zc/zp)
	}
	return kl
}

// Name implements model.Predictor.
func (m *VMM) Name() string {
	if m.cfg.D > 0 {
		return fmt.Sprintf("%d-bounded VMM (%.2g)", m.cfg.D, m.cfg.Epsilon)
	}
	return fmt.Sprintf("VMM (%.2g)", m.cfg.Epsilon)
}

// Config returns the training configuration.
func (m *VMM) Config() VMMConfig { return m.cfg }

// NumNodes returns the PST size excluding the root. Table VII
// (internal/experiments) reports this interpreted tree's serialized bytes
// alongside the compiled CPS3/CPS4 serving blobs the deployment actually
// maps; the node count is the Sec. V.F.2 size quote.
func (m *VMM) NumNodes() int { return len(m.nodes) }

// Depth returns the deepest stored context length.
func (m *VMM) Depth() int { return m.depth }

// Escape exposes the escape table (shared with the MVMM mixture).
func (m *VMM) Escape() *EscapeTable { return m.esc }

// Root returns the empty-context prior distribution (node e).
func (m *VMM) Root() *Dist { return m.root }

// ForEachNode visits every stored PST node (suffix key in the Seq.Key
// layout plus its follower distribution) in unspecified order. Used by the
// compiled-model builder to merge components into a single flat trie.
func (m *VMM) ForEachNode(f func(key string, d *Dist)) {
	for k, d := range m.nodes {
		f(k, d)
	}
}

// nodeKeys returns all stored suffix keys; used by the union-PST node
// accounting behind Table VII (the estimate internal/compiled realises as
// the merged single tree).
func (m *VMM) nodeKeys() map[string]struct{} {
	out := make(map[string]struct{}, len(m.nodes))
	for k := range m.nodes {
		out[k] = struct{}{}
	}
	return out
}

// matchKeyBuf is the stack-allocated scratch for suffix-key encoding on the
// prediction hot path: contexts up to 64 queries deep walk the tree without
// heap allocation (deeper ones fall back to a transient buffer).
const matchKeyBuf = 64 * 4

// appendSeqKey encodes s in the Seq.Key layout (4 bytes per ID, big-endian)
// into dst without the string conversion, so suffix lookups can index the
// node map via the zero-copy map[string(b)] idiom.
func appendSeqKey(dst []byte, s query.Seq) []byte {
	for _, q := range s {
		dst = append(dst, byte(q>>24), byte(q>>16), byte(q>>8), byte(q))
	}
	return dst
}

// MatchState returns the deepest suffix of ctx stored in the tree with
// prediction evidence, and whether any such state exists. The empty state is
// returned only when ctx itself is empty. The walk is allocation-free: the
// tail of ctx is encoded once into a stack buffer and every suffix key is a
// trailing slice of it.
func (m *VMM) MatchState(ctx query.Seq) (query.Seq, *Dist, bool) {
	start := len(ctx)
	if m.depth < start {
		start = m.depth
	}
	if start == 0 {
		return nil, nil, false
	}
	var arr [matchKeyBuf]byte
	b := appendSeqKey(arr[:0], ctx[len(ctx)-start:])
	for k := start; k >= 1; k-- {
		if d, ok := m.nodes[string(b[len(b)-4*k:])]; ok && d.Total() > 0 {
			return ctx[len(ctx)-k:], d, true
		}
	}
	return nil, nil, false
}

// Predict implements model.Predictor: rank the followers of the deepest
// matching suffix state.
func (m *VMM) Predict(ctx query.Seq, topN int) []model.Prediction {
	if len(ctx) == 0 {
		return nil
	}
	_, d, ok := m.MatchState(ctx)
	if !ok {
		return nil
	}
	return d.TopN(topN)
}

// Prob implements model.Predictor using the deepest matching state with
// 1/|Q| smoothing. Uncovered contexts return 0.
func (m *VMM) Prob(ctx query.Seq, q query.ID) float64 {
	if len(ctx) == 0 {
		return m.root.SmoothedP(q, m.cfg.Vocab)
	}
	_, d, ok := m.MatchState(ctx)
	if !ok {
		return 0
	}
	return d.SmoothedP(q, m.cfg.Vocab)
}

// ProbEscape estimates P̂(q | ctx) via the recursive context-escape chain of
// Eq. (5): exact states answer directly; unobserved contexts pay the Eq. (6)
// escape penalty and recurse on their suffix. This is the generative
// probability used inside the MVMM mixture.
func (m *VMM) ProbEscape(ctx query.Seq, q query.ID) float64 {
	if len(ctx) == 0 {
		return m.root.SmoothedP(q, m.cfg.Vocab)
	}
	var arr [matchKeyBuf]byte
	b := appendSeqKey(arr[:0], ctx)
	return m.probEscapeKey(b, q)
}

// probEscapeKey is the escape-chain recursion over the pre-encoded context
// key: each level drops the oldest query (the leading 4 key bytes), so the
// whole chain reuses one buffer and performs zero-copy map lookups.
func (m *VMM) probEscapeKey(b []byte, q query.ID) float64 {
	if len(b) == 0 {
		return m.root.SmoothedP(q, m.cfg.Vocab)
	}
	if d, ok := m.nodes[string(b)]; ok && d.Total() > 0 {
		return d.SmoothedP(q, m.cfg.Vocab)
	}
	return m.esc.escapeKey(b) * m.probEscapeKey(b[4:], q)
}

// GenProb returns the escape-chain generative probability of an entire
// query sequence per Eq. (3): Π_i P̂(q_i | [q_1..q_{i-1}]), with the first
// query given (footnote 3).
func (m *VMM) GenProb(s query.Seq) float64 {
	p := 1.0
	for i := 1; i < len(s); i++ {
		p *= m.ProbEscape(s[:i], s[i])
	}
	return p
}

// Covers implements model.Predictor.
func (m *VMM) Covers(ctx query.Seq) bool {
	if len(ctx) == 0 {
		return false
	}
	_, _, ok := m.MatchState(ctx)
	return ok
}

var _ model.Predictor = (*VMM)(nil)
