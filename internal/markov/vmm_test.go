package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func vmmTrainingSessions() []query.Session {
	return []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 20},
		{Queries: query.Seq{4, 2, 5}, Count: 20},
		{Queries: query.Seq{2, 3}, Count: 10},
		{Queries: query.Seq{6, 1, 2, 3}, Count: 4},
		{Queries: query.Seq{9}, Count: 7},
	}
}

func TestVMMBackTracksAlongSuffixes(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0.01, Vocab: 10})
	// Context [8, 1, 2] was never seen, but its suffix [1, 2] was: the VMM
	// must back off and predict 3 (the follower of [1,2]).
	top := m.Predict(query.Seq{8, 1, 2}, 1)
	if len(top) != 1 || top[0].Query != 3 {
		t.Fatalf("Predict([8,1,2]) = %v, want 3", top)
	}
}

func TestVMMContextDisambiguation(t *testing.T) {
	// The "Indonesia => Java" effect: followers of 2 depend on what
	// preceded it. After [1,2] the answer is 3; after [4,2] it is 5.
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0.01, Vocab: 10})
	if top := m.Predict(query.Seq{1, 2}, 1); len(top) != 1 || top[0].Query != 3 {
		t.Fatalf("Predict([1,2]) = %v, want 3", top)
	}
	if top := m.Predict(query.Seq{4, 2}, 1); len(top) != 1 || top[0].Query != 5 {
		t.Fatalf("Predict([4,2]) = %v, want 5", top)
	}
}

func TestVMMDBoundCapsDepth(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, D: 2, Vocab: 10})
	if m.Depth() > 2 {
		t.Fatalf("depth = %d exceeds bound 2", m.Depth())
	}
	unbounded := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, Vocab: 10})
	if unbounded.Depth() < 3 {
		t.Fatalf("unbounded depth = %d, want >= 3", unbounded.Depth())
	}
}

func TestVMMMinSupportFilters(t *testing.T) {
	strict := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, MinSupport: 5, Vocab: 10})
	// The contexts only supported by the frequency-4 session must be gone.
	if _, ok := strict.nodes[(query.Seq{6, 1, 2}).Key()]; ok {
		t.Fatal("low-support context survived MinSupport filter")
	}
	loose := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, Vocab: 10})
	if loose.NumNodes() <= strict.NumNodes() {
		t.Fatalf("filtering did not shrink the tree: %d vs %d", strict.NumNodes(), loose.NumNodes())
	}
}

func TestVMMSuffixClosure(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, Vocab: 10})
	// PST invariant: if a context is in the tree, all its suffixes are too.
	for k := range m.nodes {
		for sk := k[4:]; len(sk) > 0; sk = sk[4:] {
			if _, ok := m.nodes[sk]; !ok {
				t.Fatalf("suffix closure violated: %v present but suffix %v missing",
					query.SeqFromKey(k), query.SeqFromKey(sk))
			}
		}
	}
}

func TestVMMCoversMatchesLastQueryEvidence(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0.05, Vocab: 10})
	// Query 3 only ever appears at session ends: no follower evidence.
	if m.Covers(query.Seq{3}) {
		t.Fatal("query with no followers should not be covered")
	}
	// Query 9 only appears in a singleton session.
	if m.Covers(query.Seq{9}) {
		t.Fatal("singleton-only query should not be covered")
	}
	if !m.Covers(query.Seq{3, 2}) { // last query 2 has followers
		t.Fatal("context ending in a trained query should be covered")
	}
	if m.Covers(nil) {
		t.Fatal("empty context should not be covered")
	}
}

func TestVMMProbSmoothedAndNormalised(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0.01, Vocab: 10})
	ctx := query.Seq{1, 2}
	var sum float64
	for q := query.ID(0); q < 10; q++ {
		p := m.Prob(ctx, q)
		if p < 0 {
			t.Fatalf("negative probability for %d", q)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if p := m.Prob(query.Seq{999}, 1); p != 0 {
		t.Fatalf("Prob on uncovered context = %v", p)
	}
}

func TestVMMRootProbIsPrior(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0.01, Vocab: 10})
	if p := m.Prob(nil, 2); p <= 0 {
		t.Fatalf("root prior for query 2 = %v", p)
	}
}

func TestEscapeTableCounts(t *testing.T) {
	sessions := []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 4},
		{Queries: query.Seq{2, 3}, Count: 6},
	}
	et := NewEscapeTable(sessions, 0)
	// Window [2,3] occurs in both sessions: 4 + 6 = 10 occurrences,
	// 6 of them at a session start.
	if occ := et.Occurrences(query.Seq{2, 3}); occ != 10 {
		t.Fatalf("occ([2,3]) = %d, want 10", occ)
	}
	if so := et.StartOccurrences(query.Seq{2, 3}); so != 6 {
		t.Fatalf("startOcc([2,3]) = %d, want 6", so)
	}
	if occ := et.Occurrences(query.Seq{1}); occ != 4 {
		t.Fatalf("occ([1]) = %d, want 4", occ)
	}
}

func TestEscapeTableMaxLen(t *testing.T) {
	sessions := []query.Session{{Queries: query.Seq{1, 2, 3, 4}, Count: 1}}
	et := NewEscapeTable(sessions, 2)
	if et.Occurrences(query.Seq{1, 2, 3}) != 0 {
		t.Fatal("window longer than maxLen was counted")
	}
	if et.Occurrences(query.Seq{2, 3}) != 1 {
		t.Fatal("window within maxLen missing")
	}
}

func TestEscapeProbabilityEq6(t *testing.T) {
	sessions := []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 4}, // [2,3] preceded by 1
		{Queries: query.Seq{2, 3}, Count: 6},    // [2,3] at start
	}
	et := NewEscapeTable(sessions, 0)
	// Escape from unobserved [9, 2, 3]: suffix [2, 3] occurred 10 times,
	// 6 at a start. Eq. (6): 6/10.
	if e := et.Escape(query.Seq{9, 2, 3}); math.Abs(e-0.6) > 1e-12 {
		t.Fatalf("escape = %v, want 0.6", e)
	}
	// Suffix never observed: escape 1 (no evidence to penalise with).
	if e := et.Escape(query.Seq{9, 8, 7}); e != 1 {
		t.Fatalf("escape with unknown suffix = %v, want 1", e)
	}
	// Suffix observed but never at a start: floored, not zero.
	et2 := NewEscapeTable([]query.Session{{Queries: query.Seq{1, 2, 3}, Count: 5}}, 0)
	e := et2.Escape(query.Seq{9, 2, 3}) // suffix [2,3] occurs 5x, never at start
	if e <= 0 || e >= 1 {
		t.Fatalf("floored escape = %v, want in (0,1)", e)
	}
	// Single-query escape: uninformative prior.
	if e := et.Escape(query.Seq{42}); e != 0.5 {
		t.Fatalf("singleton escape = %v, want 0.5", e)
	}
}

func TestVMMProbEscapeChains(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, Vocab: 10})
	// Exact state: escape-free.
	pExact := m.ProbEscape(query.Seq{1, 2}, 3)
	if math.Abs(pExact-m.Prob(query.Seq{1, 2}, 3)) > 1e-12 {
		t.Fatalf("exact-state ProbEscape %v != Prob %v", pExact, m.Prob(query.Seq{1, 2}, 3))
	}
	// Unobserved prefix: penalised relative to the matched suffix alone.
	pEsc := m.ProbEscape(query.Seq{8, 1, 2}, 3)
	if pEsc <= 0 {
		t.Fatal("escape chain zeroed the probability")
	}
	if pEsc > pExact {
		t.Fatalf("escape did not penalise: %v > %v", pEsc, pExact)
	}
}

func TestVMMGenProb(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, Vocab: 10})
	s := query.Seq{1, 2, 3}
	want := m.ProbEscape(query.Seq{1}, 2) * m.ProbEscape(query.Seq{1, 2}, 3)
	if got := m.GenProb(s); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GenProb = %v, want %v", got, want)
	}
	if p := m.GenProb(query.Seq{5}); p != 1 {
		t.Fatalf("GenProb of single query = %v, want 1 (first query given)", p)
	}
}

func TestVMMGenProbInUnitInterval(t *testing.T) {
	m := NewVMM(vmmTrainingSessions(), VMMConfig{Epsilon: 0, Vocab: 10})
	f := func(raw []uint8) bool {
		if len(raw) > 6 {
			raw = raw[:6]
		}
		s := make(query.Seq, len(raw))
		for i, v := range raw {
			s[i] = query.ID(v % 12)
		}
		p := m.GenProb(s)
		return p >= 0 && p <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVMMNameVariants(t *testing.T) {
	bounded := NewVMM(nil, VMMConfig{Epsilon: 0.1, D: 2, Vocab: 2})
	if bounded.Name() != "2-bounded VMM (0.1)" {
		t.Fatalf("Name = %q", bounded.Name())
	}
	unbounded := NewVMM(nil, VMMConfig{Epsilon: 0.05, Vocab: 2})
	if unbounded.Name() != "VMM (0.05)" {
		t.Fatalf("Name = %q", unbounded.Name())
	}
}

func TestVMMEmptyTraining(t *testing.T) {
	m := NewVMM(nil, VMMConfig{Epsilon: 0.05})
	if m.Covers(query.Seq{1}) {
		t.Fatal("empty model claims coverage")
	}
	if got := m.Predict(query.Seq{1}, 5); got != nil {
		t.Fatalf("empty model predicted %v", got)
	}
}

func TestVMMEpsilonMonotoneTreeSize(t *testing.T) {
	sessions := vmmTrainingSessions()
	sizes := []int{}
	for _, eps := range []float64{0.0, 0.05, 0.2, math.Inf(1)} {
		m := NewVMM(sessions, VMMConfig{Epsilon: eps, Vocab: 10})
		sizes = append(sizes, m.NumNodes())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("tree size not monotone in ε: %v", sizes)
		}
	}
}

func TestKLSmoothedFastMatchesReference(t *testing.T) {
	f := func(pc, cc [6]uint8, extra uint8) bool {
		parent, child := NewDist(), NewDist()
		for i := 0; i < 6; i++ {
			if pc[i] > 0 {
				parent.Add(query.ID(i), uint64(pc[i]))
			}
			// Child support is a subset-ish of parent's plus one novel query.
			if cc[i] > 0 && i%2 == 0 {
				child.Add(query.ID(i), uint64(cc[i]))
			}
		}
		if extra > 0 {
			child.Add(99, uint64(extra))
		}
		if parent.Total() == 0 || child.Total() == 0 {
			return true
		}
		vocab := 120
		want := klSmoothed(parent, child, vocab)
		got := klSmoothedFast(parent, child, vocab, sumPLogP(parent))
		return math.Abs(want-got) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
