// Package markov implements the paper's three sequential prediction models:
// the naive variable-length N-gram (Sec. IV.A), the Variable Memory Markov
// model learned as a Prediction Suffix Tree (Sec. IV.B), and the paper's
// contribution, the Mixture Variable Memory Markov model (Sec. IV.C) with
// its context-escape mechanism and Newton-learned Gaussian mixture weights.
//
// All probabilities and entropies use log base 10, following the paper's
// footnote 2.
package markov

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/query"
)

// Dist is a sparse empirical distribution over next queries: the observed
// counts of each query following some context. Dist is not safe for
// concurrent mutation; the models build distributions fully during training
// and only read them at prediction time.
type Dist struct {
	counts map[query.ID]uint64
	total  uint64
	// ranked memoizes the count-descending order for TopN, built by Freeze
	// after training (prediction workloads call TopN on the same hot
	// distributions millions of times). TopN never writes it, so frozen
	// distributions are safe for concurrent readers.
	ranked []query.ID
}

// NewDist returns an empty distribution.
func NewDist() *Dist {
	return &Dist{counts: make(map[query.ID]uint64)}
}

// Add records n observations of q.
func (d *Dist) Add(q query.ID, n uint64) {
	d.counts[q] += n
	d.total += n
	d.ranked = nil
}

// Total returns the number of observations.
func (d *Dist) Total() uint64 { return d.total }

// Support returns the number of distinct observed queries.
func (d *Dist) Support() int { return len(d.counts) }

// Count returns the raw count of q.
func (d *Dist) Count(q query.ID) uint64 { return d.counts[q] }

// P returns the maximum-likelihood estimate of q's probability, 0 when the
// distribution is empty.
func (d *Dist) P(q query.ID) float64 {
	if d.total == 0 {
		return 0
	}
	return float64(d.counts[q]) / float64(d.total)
}

// SmoothedP returns q's probability under the paper's stage-(c) smoothing:
// unobserved queries receive a uniform floor of 1/|Q| before normalisation,
// so observed queries keep P_mle/Z and unobserved ones get (1/|Q|)/Z with
// Z = 1 + u/|Q| where u is the number of unobserved queries. When every
// query is observed this reduces exactly to the MLE, matching the paper's
// toy example where "no unobserved events exist".
func (d *Dist) SmoothedP(q query.ID, vocab int) float64 {
	if d.total == 0 || vocab <= 0 {
		return 0
	}
	u := vocab - len(d.counts)
	if u < 0 {
		u = 0
	}
	z := 1 + float64(u)/float64(vocab)
	if c, ok := d.counts[q]; ok {
		return float64(c) / float64(d.total) / z
	}
	return 1 / float64(vocab) / z
}

// computeRanked returns the count-descending, ID-tie-broken query order.
func (d *Dist) computeRanked() []query.ID {
	r := make([]query.ID, 0, len(d.counts))
	for q := range d.counts {
		r = append(r, q)
	}
	sort.Slice(r, func(i, j int) bool {
		ci, cj := d.counts[r[i]], d.counts[r[j]]
		if ci != cj {
			return ci > cj
		}
		return r[i] < r[j]
	})
	return r
}

// Freeze precomputes the TopN ranking. Models call it once after training so
// concurrent predictions never mutate shared state.
func (d *Dist) Freeze() {
	if d.ranked == nil && len(d.counts) > 0 {
		d.ranked = d.computeRanked()
	}
}

// TopN returns the n most probable observed queries by MLE, ranked by count
// descending with ID tie-break for determinism. On a frozen distribution
// this reads the cached ranking; otherwise it sorts locally without
// mutating the receiver, so TopN is always safe for concurrent callers.
func (d *Dist) TopN(n int) []model.Prediction {
	if n <= 0 || d.total == 0 {
		return nil
	}
	top := d.ranked
	if top == nil {
		top = d.computeRanked()
	}
	if len(top) > n {
		top = top[:n]
	}
	out := make([]model.Prediction, len(top))
	for i, q := range top {
		out[i] = model.Prediction{Query: q, Score: float64(d.counts[q]) / float64(d.total)}
	}
	return out
}

// AppendTopN appends the n most frequent next queries to dst and returns
// the extended slice — the zero-allocation variant of TopN for frozen
// distributions (serving arms freeze at load time; an unfrozen distribution
// falls back to ranking on the fly). With a recycled dst of sufficient
// capacity the frozen path performs no allocations.
func (d *Dist) AppendTopN(dst []model.Prediction, n int) []model.Prediction {
	if n <= 0 || d.total == 0 {
		return dst
	}
	top := d.ranked
	if top == nil {
		top = d.computeRanked()
	}
	if len(top) > n {
		top = top[:n]
	}
	for _, q := range top {
		dst = append(dst, model.Prediction{Query: q, Score: float64(d.counts[q]) / float64(d.total)})
	}
	return dst
}

// Entropy returns the prediction entropy -Σ p log10 p of the distribution,
// the measure behind the paper's Fig. 2 (e.g. (0.6, 0.4) -> 0.29).
func (d *Dist) Entropy() float64 {
	if d.total == 0 {
		return 0
	}
	var h float64
	for _, c := range d.counts {
		p := float64(c) / float64(d.total)
		h -= p * math.Log10(p)
	}
	return h
}

// KLFrom returns D_KL(d || other) in log base 10, treating both as MLE
// distributions. Terms where d assigns zero probability contribute nothing;
// terms where other assigns zero probability but d does not yield +Inf,
// which callers treat as "always grow".
func (d *Dist) KLFrom(other *Dist) float64 {
	if d.total == 0 {
		return 0
	}
	var kl float64
	for q, c := range d.counts {
		p := float64(c) / float64(d.total)
		qp := other.P(q)
		if qp == 0 {
			return math.Inf(1)
		}
		kl += p * math.Log10(p/qp)
	}
	return kl
}

// ForEachCount visits every observed (query, count) pair in unspecified
// order without allocating; used by the compiled-model builder to verify
// that components agree on a shared node's follower counts.
func (d *Dist) ForEachCount(f func(q query.ID, c uint64)) {
	for q, c := range d.counts {
		f(q, c)
	}
}

// Queries returns the observed queries in deterministic (ascending ID)
// order; used by serialisation.
func (d *Dist) Queries() []query.ID {
	out := make([]query.ID, 0, len(d.counts))
	for q := range d.counts {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
