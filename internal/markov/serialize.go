package markov

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/query"
	"repro/internal/store"
)

// Serialization magics.
const (
	magicNGram = "NGRM"
	magicVMM   = "VMMT"
	magicMVMM  = "MVMX"
	magicDist  = "DIST"
	magicEsc   = "ESCT"
)

// WriteDist encodes a distribution; exported for the pairwise package.
func WriteDist(w *store.Writer, d *Dist) {
	w.Magic(magicDist)
	w.Int(d.Support())
	for _, q := range d.Queries() {
		w.Uvarint(uint64(q))
		w.Uvarint(d.counts[q])
	}
}

// ReadDist decodes a distribution written by WriteDist.
func ReadDist(r *store.Reader) *Dist {
	r.Magic(magicDist)
	n := r.Int()
	d := NewDist()
	for i := 0; i < n; i++ {
		q := query.ID(r.Uvarint())
		c := r.Uvarint()
		if r.Err() != nil {
			return d
		}
		d.Add(q, c)
	}
	return d
}

func sortedKeys(m map[string]*Dist) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTo serializes the N-gram model. It implements io.WriterTo.
func (m *NGram) WriteTo(w io.Writer) (int64, error) {
	sw := store.NewWriter(w)
	sw.Magic(magicNGram)
	sw.Int(m.vocab)
	sw.Int(m.maxN)
	sw.Int(len(m.states))
	for _, k := range sortedKeys(m.states) {
		sw.String(k)
		WriteDist(sw, m.states[k])
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// ReadNGram decodes a model written by (*NGram).WriteTo.
func ReadNGram(r io.Reader) (*NGram, error) {
	sr := store.NewReader(r)
	sr.Magic(magicNGram)
	m := &NGram{states: make(map[string]*Dist)}
	m.vocab = sr.Int()
	m.maxN = sr.Int()
	n := sr.Int()
	for i := 0; i < n && sr.Err() == nil; i++ {
		k := sr.String()
		m.states[k] = ReadDist(sr)
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	m.freeze()
	return m, nil
}

func writeEscape(sw *store.Writer, t *EscapeTable) {
	sw.Magic(magicEsc)
	sw.Int(t.maxLen)
	keys := make([]string, 0, len(t.occ))
	for k := range t.occ {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sw.Int(len(keys))
	for _, k := range keys {
		sw.String(k)
		sw.Uvarint(t.occ[k])
		sw.Uvarint(t.startOcc[k])
	}
}

func readEscape(sr *store.Reader) *EscapeTable {
	sr.Magic(magicEsc)
	t := &EscapeTable{occ: make(map[string]uint64), startOcc: make(map[string]uint64)}
	t.maxLen = sr.Int()
	n := sr.Int()
	for i := 0; i < n && sr.Err() == nil; i++ {
		k := sr.String()
		t.occ[k] = sr.Uvarint()
		if s := sr.Uvarint(); s > 0 {
			t.startOcc[k] = s
		}
	}
	return t
}

func (m *VMM) writeBody(sw *store.Writer) {
	sw.Magic(magicVMM)
	sw.Float64(m.cfg.Epsilon)
	sw.Int(m.cfg.D)
	sw.Uvarint(m.cfg.MinSupport)
	sw.Int(m.cfg.Vocab)
	sw.Int(m.depth)
	WriteDist(sw, m.root)
	sw.Int(len(m.nodes))
	for _, k := range sortedKeys(m.nodes) {
		sw.String(k)
		WriteDist(sw, m.nodes[k])
	}
	writeEscape(sw, m.esc)
}

func readVMMBody(sr *store.Reader) *VMM {
	sr.Magic(magicVMM)
	m := &VMM{nodes: make(map[string]*Dist)}
	m.cfg.Epsilon = sr.Float64()
	m.cfg.D = sr.Int()
	m.cfg.MinSupport = sr.Uvarint()
	m.cfg.Vocab = sr.Int()
	m.depth = sr.Int()
	m.root = ReadDist(sr)
	n := sr.Int()
	for i := 0; i < n && sr.Err() == nil; i++ {
		k := sr.String()
		m.nodes[k] = ReadDist(sr)
	}
	m.esc = readEscape(sr)
	return m
}

// WriteTo serializes the VMM (tree, root prior and escape table).
func (m *VMM) WriteTo(w io.Writer) (int64, error) {
	sw := store.NewWriter(w)
	m.writeBody(sw)
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// ReadVMM decodes a model written by (*VMM).WriteTo.
func ReadVMM(r io.Reader) (*VMM, error) {
	sr := store.NewReader(r)
	m := readVMMBody(sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	m.freeze()
	return m, nil
}

// WriteTo serializes the mixture: every component plus the learned sigmas.
func (m *MVMM) WriteTo(w io.Writer) (int64, error) {
	sw := store.NewWriter(w)
	sw.Magic(magicMVMM)
	sw.Int(len(m.comps))
	for _, c := range m.comps {
		c.writeBody(sw)
	}
	for _, s := range m.sigma {
		sw.Float64(s)
	}
	sw.Int(m.vocab)
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// ReadMVMM decodes a mixture written by (*MVMM).WriteTo.
func ReadMVMM(r io.Reader) (*MVMM, error) {
	sr := store.NewReader(r)
	sr.Magic(magicMVMM)
	k := sr.Int()
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if k > 1024 {
		return nil, fmt.Errorf("store: implausible component count %d", k)
	}
	m := &MVMM{comps: make([]*VMM, k), sigma: make([]float64, k)}
	for i := 0; i < k && sr.Err() == nil; i++ {
		m.comps[i] = readVMMBody(sr)
	}
	for i := 0; i < k && sr.Err() == nil; i++ {
		m.sigma[i] = sr.Float64()
	}
	m.vocab = sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	for _, c := range m.comps {
		c.freeze()
	}
	return m, nil
}
