package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

func TestDistBasics(t *testing.T) {
	d := NewDist()
	if d.Total() != 0 || d.Support() != 0 {
		t.Fatal("fresh dist not empty")
	}
	d.Add(1, 3)
	d.Add(2, 1)
	d.Add(1, 2)
	if d.Total() != 6 || d.Support() != 2 {
		t.Fatalf("total=%d support=%d", d.Total(), d.Support())
	}
	if d.Count(1) != 5 {
		t.Fatalf("Count(1) = %d", d.Count(1))
	}
	if p := d.P(1); math.Abs(p-5.0/6) > 1e-12 {
		t.Fatalf("P(1) = %v", p)
	}
	if p := d.P(99); p != 0 {
		t.Fatalf("P(absent) = %v", p)
	}
}

func TestDistPEmptyIsZero(t *testing.T) {
	if p := NewDist().P(1); p != 0 {
		t.Fatalf("P on empty = %v", p)
	}
}

func TestDistTopNRankingAndTieBreak(t *testing.T) {
	d := NewDist()
	d.Add(5, 10)
	d.Add(3, 10) // tie with 5: lower ID first
	d.Add(7, 30)
	d.Add(9, 1)
	top := d.TopN(3)
	if len(top) != 3 {
		t.Fatalf("TopN(3) returned %d", len(top))
	}
	if top[0].Query != 7 || top[1].Query != 3 || top[2].Query != 5 {
		t.Fatalf("order = %v", top)
	}
	if math.Abs(top[0].Score-30.0/51) > 1e-12 {
		t.Fatalf("score = %v", top[0].Score)
	}
	if got := d.TopN(0); got != nil {
		t.Fatalf("TopN(0) = %v", got)
	}
	if got := NewDist().TopN(5); got != nil {
		t.Fatalf("TopN on empty = %v", got)
	}
}

func TestSmoothedPReducesToMLEWhenFullyObserved(t *testing.T) {
	d := NewDist()
	d.Add(0, 3)
	d.Add(1, 7)
	// vocab = 2, both observed: no smoothing mass.
	if p := d.SmoothedP(0, 2); math.Abs(p-0.3) > 1e-12 {
		t.Fatalf("SmoothedP(0) = %v, want 0.3", p)
	}
}

func TestSmoothedPFloorsUnobserved(t *testing.T) {
	d := NewDist()
	d.Add(0, 10)
	vocab := 100
	pu := d.SmoothedP(42, vocab)
	if pu <= 0 {
		t.Fatal("unobserved query got zero probability")
	}
	// Unobserved floor is (1/V)/Z.
	z := 1 + float64(vocab-1)/float64(vocab)
	if math.Abs(pu-(1.0/float64(vocab))/z) > 1e-12 {
		t.Fatalf("floor = %v", pu)
	}
	if d.SmoothedP(0, vocab) <= pu {
		t.Fatal("observed query not above the floor")
	}
}

func TestSmoothedPSumsToOne(t *testing.T) {
	f := func(counts []uint8, vocabRaw uint8) bool {
		d := NewDist()
		for i, c := range counts {
			if i >= 20 {
				break
			}
			if c > 0 {
				d.Add(query.ID(i), uint64(c))
			}
		}
		if d.Total() == 0 {
			return true
		}
		// Every observed ID lies in [0, 20), so vocab >= 20 guarantees the
		// summation loop covers the whole support (SmoothedP assumes IDs are
		// dense below vocab; a smaller vocab would skip observed IDs when a
		// zero count leaves a hole in the ID range).
		vocab := 20 + int(vocabRaw%30)
		var sum float64
		for q := 0; q < vocab; q++ {
			sum += d.SmoothedP(query.ID(q), vocab)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyProperties(t *testing.T) {
	// Deterministic distribution: entropy 0.
	d := NewDist()
	d.Add(1, 100)
	if h := d.Entropy(); h != 0 {
		t.Fatalf("deterministic entropy = %v", h)
	}
	// Uniform over k outcomes: entropy log10(k), the maximum.
	u := NewDist()
	for q := query.ID(0); q < 10; q++ {
		u.Add(q, 7)
	}
	if h := u.Entropy(); math.Abs(h-1) > 1e-12 { // log10(10) = 1
		t.Fatalf("uniform entropy = %v, want 1", h)
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		d := NewDist()
		for i, c := range counts {
			if i >= 16 {
				break
			}
			if c > 0 {
				d.Add(query.ID(i), uint64(c))
			}
		}
		h := d.Entropy()
		if h < 0 {
			return false
		}
		if d.Support() > 0 {
			return h <= math.Log10(float64(d.Support()))+1e-9
		}
		return h == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKLFromProperties(t *testing.T) {
	p := NewDist()
	p.Add(0, 9)
	p.Add(1, 1)
	if kl := p.KLFrom(p); math.Abs(kl) > 1e-12 {
		t.Fatalf("KL(p||p) = %v", kl)
	}
	q := NewDist()
	q.Add(0, 3)
	q.Add(1, 7)
	if kl := p.KLFrom(q); kl <= 0 {
		t.Fatalf("KL(p||q) = %v, want > 0", kl)
	}
	// q lacks support for one of p's outcomes: infinite divergence.
	r := NewDist()
	r.Add(0, 5)
	if kl := p.KLFrom(r); !math.IsInf(kl, 1) {
		t.Fatalf("KL with missing support = %v, want +Inf", kl)
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		p, q := NewDist(), NewDist()
		for i := 0; i < 4; i++ {
			p.Add(query.ID(i), uint64(a[i])+1) // +1 keeps full support
			q.Add(query.ID(i), uint64(b[i])+1)
		}
		return p.KLFrom(q) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistQueriesSorted(t *testing.T) {
	d := NewDist()
	for _, q := range []query.ID{9, 2, 5} {
		d.Add(q, 1)
	}
	got := d.Queries()
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("Queries = %v", got)
	}
}

func TestKLSmoothedSelfIsZero(t *testing.T) {
	d := NewDist()
	d.Add(0, 4)
	d.Add(1, 6)
	if kl := klSmoothed(d, d, 100); math.Abs(kl) > 1e-12 {
		t.Fatalf("klSmoothed(d,d) = %v", kl)
	}
}

func TestKLSmoothedFiniteOnDisjointSupport(t *testing.T) {
	p := NewDist()
	p.Add(0, 5)
	q := NewDist()
	q.Add(1, 5)
	kl := klSmoothed(p, q, 50)
	if math.IsInf(kl, 0) || math.IsNaN(kl) {
		t.Fatalf("klSmoothed on disjoint support = %v, want finite", kl)
	}
	if kl <= 0 {
		t.Fatalf("klSmoothed on disjoint support = %v, want > 0", kl)
	}
}
