package markov

import (
	"math"
	"testing"

	"repro/internal/query"
)

func mvmmSessions() []query.Session {
	return []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 30},
		{Queries: query.Seq{4, 2, 5}, Count: 30},
		{Queries: query.Seq{2, 3}, Count: 15},
		{Queries: query.Seq{1, 2, 3, 6}, Count: 8},
		{Queries: query.Seq{7, 8}, Count: 12},
	}
}

func newTestMVMM(t *testing.T) *MVMM {
	t.Helper()
	return NewMVMMFromEpsilons(mvmmSessions(), []float64{0.0, 0.05, 0.1}, 10,
		MVMMOptions{TrainSample: 100, NewtonIters: 10})
}

func TestMVMMPredictRanksByMixture(t *testing.T) {
	m := newTestMVMM(t)
	top := m.Predict(query.Seq{1, 2}, 3)
	if len(top) == 0 {
		t.Fatal("no predictions")
	}
	if top[0].Query != 3 {
		t.Fatalf("top prediction = %v, want 3", top[0])
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("predictions not sorted: %v", top)
		}
	}
}

func TestMVMMAdaptsToContext(t *testing.T) {
	m := newTestMVMM(t)
	if top := m.Predict(query.Seq{4, 2}, 1); len(top) != 1 || top[0].Query != 5 {
		t.Fatalf("Predict([4,2]) = %v, want 5", top)
	}
	if top := m.Predict(query.Seq{1, 2}, 1); len(top) != 1 || top[0].Query != 3 {
		t.Fatalf("Predict([1,2]) = %v, want 3", top)
	}
}

func TestMVMMCoverageEqualsComponents(t *testing.T) {
	m := newTestMVMM(t)
	contexts := []query.Seq{{2}, {9, 2}, {3}, {99}, nil}
	for _, ctx := range contexts {
		compCovers := false
		for _, c := range m.Components() {
			if c.Covers(ctx) {
				compCovers = true
			}
		}
		if m.Covers(ctx) != compCovers {
			t.Fatalf("coverage mismatch on %v: mixture=%v components=%v", ctx, m.Covers(ctx), compCovers)
		}
	}
}

func TestMVMMProbIsConvexCombination(t *testing.T) {
	m := newTestMVMM(t)
	ctx := query.Seq{1, 2}
	q := query.ID(3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.Components() {
		p := c.ProbEscape(ctx, q)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	got := m.Prob(ctx, q)
	if got < lo-1e-12 || got > hi+1e-12 {
		t.Fatalf("mixture prob %v outside component range [%v, %v]", got, lo, hi)
	}
}

func TestMVMMWeightsNormalised(t *testing.T) {
	m := newTestMVMM(t)
	w := m.weights(query.Seq{1, 2})
	var sum float64
	for _, x := range w {
		if x < 0 {
			t.Fatalf("negative weight: %v", w)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Uncoverable context: all weights zero.
	w0 := m.weights(query.Seq{99})
	for _, x := range w0 {
		if x != 0 {
			t.Fatalf("uncovered context got weight %v", x)
		}
	}
}

func TestMVMMSigmasLearnedAndPositive(t *testing.T) {
	m := newTestMVMM(t)
	sig := m.Sigmas()
	if len(sig) != 3 {
		t.Fatalf("sigmas = %v", sig)
	}
	for _, s := range sig {
		if s < sigmaMin || s > sigmaMax {
			t.Fatalf("sigma %v outside [%v, %v]", s, sigmaMin, sigmaMax)
		}
	}
}

func TestMVMMUnionNodesAtMostSum(t *testing.T) {
	m := newTestMVMM(t)
	sum := 0
	maxNodes := 0
	for _, c := range m.Components() {
		sum += c.NumNodes()
		if c.NumNodes() > maxNodes {
			maxNodes = c.NumNodes()
		}
	}
	u := m.UnionNodes()
	if u > sum || u < maxNodes {
		t.Fatalf("union nodes %d outside [max=%d, sum=%d]", u, maxNodes, sum)
	}
	// Components are nested by ε, so the union equals the largest (ε=0).
	if u != maxNodes {
		t.Fatalf("union = %d, want %d (the ε=0 full tree)", u, maxNodes)
	}
}

func TestMVMMParallelTrainingEquivalent(t *testing.T) {
	seq := NewMVMMFromEpsilons(mvmmSessions(), []float64{0.0, 0.1}, 10,
		MVMMOptions{TrainSample: 100, NewtonIters: 5})
	par := NewMVMM(mvmmSessions(), []VMMConfig{
		{Epsilon: 0.0, Vocab: 10},
		{Epsilon: 0.1, Vocab: 10},
	}, MVMMOptions{TrainSample: 100, NewtonIters: 5, Parallel: true})
	for _, ctx := range []query.Seq{{1, 2}, {4, 2}, {2}} {
		a := seq.Predict(ctx, 3)
		b := par.Predict(ctx, 3)
		if len(a) != len(b) {
			t.Fatalf("parallel vs sequential differ on %v: %v vs %v", ctx, a, b)
		}
		for i := range a {
			if a[i].Query != b[i].Query {
				t.Fatalf("parallel vs sequential rank %d differ: %v vs %v", i, a, b)
			}
		}
	}
}

func TestMVMMEmptyContext(t *testing.T) {
	m := newTestMVMM(t)
	if m.Predict(nil, 5) != nil {
		t.Fatal("empty context produced predictions")
	}
	if m.Covers(nil) {
		t.Fatal("empty context covered")
	}
}

func TestDefaultEpsilons(t *testing.T) {
	eps := DefaultEpsilons()
	if len(eps) != 11 {
		t.Fatalf("len = %d, want 11", len(eps))
	}
	if eps[0] != 0 || math.Abs(eps[10]-0.1) > 1e-12 {
		t.Fatalf("range = [%v, %v], want [0, 0.1]", eps[0], eps[10])
	}
}

func TestGaussianDensity(t *testing.T) {
	// Peak at d=0 is 1/(σ√2π).
	if g := gaussian(0, 1); math.Abs(g-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("gaussian(0,1) = %v", g)
	}
	// Monotone decreasing in |d|.
	if gaussian(1, 1) <= gaussian(2, 1) {
		t.Fatal("gaussian not decreasing in distance")
	}
	// Wider σ is flatter at the peak.
	if gaussian(0, 2) >= gaussian(0, 1) {
		t.Fatal("gaussian peak not decreasing in sigma")
	}
}

func TestNewtonMaximizeImprovesObjective(t *testing.T) {
	// Two components: sequences at distance 0 favour component 0 with
	// small σ; sequences at distance 2 favour component 1 with larger σ.
	obj := &mixObjective{
		pT: []float64{0.5, 0.5},
		d:  [][]float64{{0, 0}, {2, 2}},
		pD: [][]float64{{0.9, 0.1}, {0.1, 0.9}},
	}
	init := []float64{1, 1}
	f0 := obj.F(init)
	sol := obj.NewtonMaximize(init, 30)
	if f1 := obj.F(sol); f1 < f0-1e-12 {
		t.Fatalf("Newton worsened objective: %v -> %v", f0, f1)
	}
	for _, s := range sol {
		if s < sigmaMin || s > sigmaMax {
			t.Fatalf("sigma escaped bounds: %v", sol)
		}
	}
}

func TestNewtonGradientMatchesNumeric(t *testing.T) {
	obj := &mixObjective{
		pT: []float64{0.3, 0.7},
		d:  [][]float64{{0, 1}, {2, 0}},
		pD: [][]float64{{0.5, 0.2}, {0.1, 0.8}},
	}
	sigma := []float64{0.8, 1.7}
	grad := obj.Grad(sigma)
	const eps = 1e-6
	for i := range sigma {
		sp := append([]float64(nil), sigma...)
		sm := append([]float64(nil), sigma...)
		sp[i] += eps
		sm[i] -= eps
		num := (obj.F(sp) - obj.F(sm)) / (2 * eps)
		if math.Abs(num-grad[i]) > 1e-5 {
			t.Fatalf("gradient[%d] = %v, numeric %v", i, grad[i], num)
		}
	}
}

func TestSolveLinear(t *testing.T) {
	h := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinear(h, b)
	if !ok {
		t.Fatal("solver reported singular")
	}
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
	if _, ok := solveLinear([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); ok {
		t.Fatal("singular system not detected")
	}
}
