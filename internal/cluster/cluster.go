// Package cluster implements the related-work family the paper argues
// against (Sec. II): cluster-based query recommendation from click-through
// data (Beeferman & Berger; Wen et al.; Baeza-Yates et al.). Queries sharing
// clicked URLs are grouped — here by single-link agglomeration over cosine
// similarity of URL click vectors, restricted to query pairs that share at
// least one URL (the bipartite graph keeps this sparse) — and queries from
// the same cluster are recommended for each other, ranked by popularity.
//
// The paper's critique is observable in the experiments: cluster-based
// suggestions are *similar* queries (good replacements) rather than the
// queries a user asks *next*, so their NDCG against next-query ground truth
// trails even the pair-wise baselines.
package cluster

import (
	"io"
	"math"
	"sort"

	"repro/internal/logfmt"
	"repro/internal/model"
	"repro/internal/query"
)

// Config controls click-through clustering.
type Config struct {
	// MinSimilarity is the cosine threshold for linking two queries.
	MinSimilarity float64
	// MinClicks drops queries with fewer total clicks (noise).
	MinClicks uint64
}

// DefaultConfig mirrors the usual "share a meaningful fraction of clicks"
// setting of the click-through literature.
func DefaultConfig() Config {
	return Config{MinSimilarity: 0.5, MinClicks: 2}
}

// ClickGraph is the query–URL bipartite click graph accumulated from a raw
// log.
type ClickGraph struct {
	dict   *query.Dict
	clicks map[query.ID]map[string]uint64 // query -> URL -> count
	total  map[query.ID]uint64            // query submission counts
}

// NewClickGraph returns an empty graph interning into dict.
func NewClickGraph(dict *query.Dict) *ClickGraph {
	return &ClickGraph{
		dict:   dict,
		clicks: make(map[query.ID]map[string]uint64),
		total:  make(map[query.ID]uint64),
	}
}

// Add feeds one raw log record.
func (g *ClickGraph) Add(rec logfmt.Record) {
	id := g.dict.Intern(rec.Query)
	g.total[id]++
	if len(rec.Clicks) == 0 {
		return
	}
	m := g.clicks[id]
	if m == nil {
		m = make(map[string]uint64)
		g.clicks[id] = m
	}
	for _, c := range rec.Clicks {
		m[c.URL]++
	}
}

// AddAll drains a record stream.
func (g *ClickGraph) AddAll(r *logfmt.Reader) error {
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		g.Add(rec)
	}
}

// NumQueries reports how many distinct queries have been observed.
func (g *ClickGraph) NumQueries() int { return len(g.total) }

// cosine computes the cosine similarity of two URL count vectors.
func cosine(a, b map[string]uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot, na, nb float64
	for u, ca := range a {
		na += float64(ca) * float64(ca)
		if cb, ok := b[u]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	for _, cb := range b {
		nb += float64(cb) * float64(cb)
	}
	if dot == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Recommender groups queries into click-through clusters and recommends
// same-cluster queries ranked by popularity.
type Recommender struct {
	cfg      Config
	cluster  map[query.ID]int
	members  map[int][]query.ID // popularity-ranked per cluster
	popular  map[query.ID]uint64
	totals   map[int]uint64 // summed member popularity per cluster
	clusters int
}

// Build clusters the click graph.
func Build(g *ClickGraph, cfg Config) *Recommender {
	if cfg.MinSimilarity <= 0 {
		cfg.MinSimilarity = DefaultConfig().MinSimilarity
	}
	// Candidate queries with enough click evidence.
	var ids []query.ID
	for id, urls := range g.clicks {
		var n uint64
		for _, c := range urls {
			n += c
		}
		if n >= cfg.MinClicks {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Inverted URL index: only pairs sharing a URL can link.
	byURL := make(map[string][]query.ID)
	for _, id := range ids {
		for u := range g.clicks[id] {
			byURL[u] = append(byURL[u], id)
		}
	}

	uf := newUnionFind(ids)
	for _, sharers := range byURL {
		for i := 1; i < len(sharers); i++ {
			a, b := sharers[0], sharers[i]
			if uf.find(a) == uf.find(b) {
				continue
			}
			if cosine(g.clicks[a], g.clicks[b]) >= cfg.MinSimilarity {
				uf.union(a, b)
			}
		}
	}

	r := &Recommender{
		cfg:     cfg,
		cluster: make(map[query.ID]int),
		members: make(map[int][]query.ID),
		popular: g.total,
	}
	rootIdx := make(map[query.ID]int)
	for _, id := range ids {
		root := uf.find(id)
		ci, ok := rootIdx[root]
		if !ok {
			ci = r.clusters
			r.clusters++
			rootIdx[root] = ci
		}
		r.cluster[id] = ci
		r.members[ci] = append(r.members[ci], id)
	}
	for ci := range r.members {
		ms := r.members[ci]
		sort.Slice(ms, func(i, j int) bool {
			if g.total[ms[i]] != g.total[ms[j]] {
				return g.total[ms[i]] > g.total[ms[j]]
			}
			return ms[i] < ms[j]
		})
	}
	r.buildTotals()
	return r
}

// buildTotals caches each cluster's summed member popularity — the Predict
// score denominator — so the serving path does not walk the member list
// twice.
func (r *Recommender) buildTotals() {
	r.totals = make(map[int]uint64, len(r.members))
	for ci, ms := range r.members {
		var total uint64
		for _, m := range ms {
			total += r.popular[m]
		}
		r.totals[ci] = total
	}
}

// NumClusters reports the number of clusters formed.
func (r *Recommender) NumClusters() int { return r.clusters }

// ClusterOf returns the cluster index of q, or -1.
func (r *Recommender) ClusterOf(q query.ID) int {
	if ci, ok := r.cluster[q]; ok {
		return ci
	}
	return -1
}

// Name implements model.Predictor.
func (r *Recommender) Name() string { return "Cluster" }

// Covers implements model.Predictor: the last query must be in a cluster
// with at least one other member.
func (r *Recommender) Covers(ctx query.Seq) bool {
	if len(ctx) == 0 {
		return false
	}
	ci, ok := r.cluster[ctx.Last()]
	return ok && len(r.members[ci]) > 1
}

// Predict implements model.Predictor: same-cluster queries by popularity,
// excluding the query itself. It is PredictInto with a fresh output slice.
func (r *Recommender) Predict(ctx query.Seq, topN int) []model.Prediction {
	out := r.PredictInto(nil, ctx, topN)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Prob implements model.Predictor.
func (r *Recommender) Prob(ctx query.Seq, q query.ID) float64 {
	if !r.Covers(ctx) {
		return 0
	}
	ci := r.cluster[ctx.Last()]
	if ck, ok := r.cluster[q]; !ok || ck != ci {
		return 0
	}
	total := r.totals[ci]
	if total == 0 {
		return 0
	}
	return float64(r.popular[q]) / float64(total)
}

var _ model.Predictor = (*Recommender)(nil)

// unionFind over query IDs.
type unionFind struct {
	parent map[query.ID]query.ID
	rank   map[query.ID]int
}

func newUnionFind(ids []query.ID) *unionFind {
	uf := &unionFind{parent: make(map[query.ID]query.ID, len(ids)), rank: make(map[query.ID]int)}
	for _, id := range ids {
		uf.parent[id] = id
	}
	return uf
}

func (uf *unionFind) find(x query.ID) query.ID {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b query.ID) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
