package cluster

import (
	"repro/internal/compiled"
	"repro/internal/model"
	"repro/internal/query"
)

// PredictInto implements compiled.Predictor: same-cluster queries by
// popularity, appended to dst. The member lists are popularity-ranked at
// build time and cluster totals are cached, so the call is a map lookup plus
// one pass over at most topN+1 members — no allocations with a recycled dst.
func (r *Recommender) PredictInto(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction {
	if topN <= 0 || !r.Covers(ctx) {
		return dst
	}
	last := ctx.Last()
	ci := r.cluster[last]
	total := r.totals[ci]
	if total == 0 {
		return dst
	}
	taken := 0
	for _, m := range r.members[ci] {
		if m == last {
			continue
		}
		dst = append(dst, model.Prediction{Query: m, Score: float64(r.popular[m]) / float64(total)})
		taken++
		if taken == topN {
			break
		}
	}
	return dst
}

// Shape implements compiled.Predictor.
func (r *Recommender) Shape() compiled.Shape {
	return compiled.Shape{
		Family:    compiled.FamilyCluster,
		Label:     r.Name(),
		Vocab:     len(r.popular),
		States:    r.clusters,
		Depth:     1, // conditions on the last query's cluster only
		ZeroAlloc: true,
	}
}

var _ compiled.Predictor = (*Recommender)(nil)
