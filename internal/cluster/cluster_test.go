package cluster

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

var t0 = time.Date(2026, 4, 1, 12, 0, 0, 0, time.UTC)

func rec(q string, urls ...string) logfmt.Record {
	r := logfmt.Record{MachineID: "m", Query: q, Time: t0}
	for _, u := range urls {
		r.Clicks = append(r.Clicks, logfmt.Click{URL: u, Time: t0.Add(time.Second)})
	}
	return r
}

// buildGraph creates two clean click clusters:
// {java, java language, sun java} -> java.example
// {kidney stones, kidney pain}    -> health.example
func buildGraph(t *testing.T) (*ClickGraph, *query.Dict) {
	t.Helper()
	d := query.NewDict()
	g := NewClickGraph(d)
	for i := 0; i < 5; i++ {
		g.Add(rec("java", "java.example/a", "java.example/b"))
		g.Add(rec("java language", "java.example/a"))
		g.Add(rec("sun java", "java.example/b"))
		g.Add(rec("kidney stones", "health.example/k"))
		g.Add(rec("kidney pain", "health.example/k"))
	}
	g.Add(rec("no clicks at all"))
	return g, d
}

func TestClickGraphCounts(t *testing.T) {
	g, _ := buildGraph(t)
	if g.NumQueries() != 6 {
		t.Fatalf("NumQueries = %d, want 6", g.NumQueries())
	}
}

func TestClusteringGroupsByClicks(t *testing.T) {
	g, d := buildGraph(t)
	r := Build(g, DefaultConfig())
	java, _ := d.Lookup("java")
	lang, _ := d.Lookup("java language")
	sun, _ := d.Lookup("sun java")
	kidney, _ := d.Lookup("kidney stones")
	pain, _ := d.Lookup("kidney pain")

	if r.ClusterOf(java) != r.ClusterOf(lang) || r.ClusterOf(java) != r.ClusterOf(sun) {
		t.Fatal("java-family queries not clustered together")
	}
	if r.ClusterOf(kidney) != r.ClusterOf(pain) {
		t.Fatal("kidney queries not clustered together")
	}
	if r.ClusterOf(java) == r.ClusterOf(kidney) {
		t.Fatal("unrelated clusters merged")
	}
	if r.NumClusters() < 2 {
		t.Fatalf("clusters = %d", r.NumClusters())
	}
}

func TestClusterRecommendations(t *testing.T) {
	g, d := buildGraph(t)
	r := Build(g, DefaultConfig())
	java, _ := d.Lookup("java")
	top := r.Predict(query.Seq{java}, 5)
	if len(top) == 0 {
		t.Fatal("no recommendations")
	}
	for _, p := range top {
		if p.Query == java {
			t.Fatal("recommended the query itself")
		}
		s := d.String(p.Query)
		if !strings.Contains(s, "java") {
			t.Fatalf("cross-cluster recommendation %q", s)
		}
	}
}

func TestClusterCoverage(t *testing.T) {
	g, d := buildGraph(t)
	r := Build(g, DefaultConfig())
	noClicks, _ := d.Lookup("no clicks at all")
	if r.Covers(query.Seq{noClicks}) {
		t.Fatal("click-less query covered")
	}
	if r.Covers(nil) {
		t.Fatal("empty context covered")
	}
	java, _ := d.Lookup("java")
	if !r.Covers(query.Seq{java}) {
		t.Fatal("clustered query not covered")
	}
}

func TestClusterProb(t *testing.T) {
	g, d := buildGraph(t)
	r := Build(g, DefaultConfig())
	java, _ := d.Lookup("java")
	kidney, _ := d.Lookup("kidney stones")
	lang, _ := d.Lookup("java language")
	if p := r.Prob(query.Seq{java}, lang); p <= 0 {
		t.Fatalf("same-cluster prob = %v", p)
	}
	if p := r.Prob(query.Seq{java}, kidney); p != 0 {
		t.Fatalf("cross-cluster prob = %v", p)
	}
}

func TestCosine(t *testing.T) {
	a := map[string]uint64{"u": 3, "v": 4}
	if got := cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine(a,a) = %v", got)
	}
	b := map[string]uint64{"w": 7}
	if got := cosine(a, b); got != 0 {
		t.Fatalf("disjoint cosine = %v", got)
	}
	if got := cosine(nil, a); got != 0 {
		t.Fatalf("empty cosine = %v", got)
	}
	// Symmetry.
	c := map[string]uint64{"u": 1, "w": 2}
	if math.Abs(cosine(a, c)-cosine(c, a)) > 1e-12 {
		t.Fatal("cosine not symmetric")
	}
}

func TestAddAllFromStream(t *testing.T) {
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i := 0; i < 3; i++ {
		if err := w.Write(rec("streamed", "s.example/x")); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	d := query.NewDict()
	g := NewClickGraph(d)
	if err := g.AddAll(logfmt.NewReader(strings.NewReader(sb.String()))); err != nil {
		t.Fatal(err)
	}
	if g.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d", g.NumQueries())
	}
}

func TestMinClicksFilters(t *testing.T) {
	d := query.NewDict()
	g := NewClickGraph(d)
	g.Add(rec("rare", "r.example/x")) // one click only
	r := Build(g, Config{MinSimilarity: 0.5, MinClicks: 2})
	rare, _ := d.Lookup("rare")
	if r.ClusterOf(rare) != -1 {
		t.Fatal("under-clicked query entered a cluster")
	}
}

func TestUnionFind(t *testing.T) {
	ids := []query.ID{1, 2, 3, 4}
	uf := newUnionFind(ids)
	uf.union(1, 2)
	uf.union(3, 4)
	if uf.find(1) != uf.find(2) || uf.find(3) != uf.find(4) {
		t.Fatal("union failed")
	}
	if uf.find(1) == uf.find(3) {
		t.Fatal("separate sets merged")
	}
	uf.union(2, 3)
	if uf.find(1) != uf.find(4) {
		t.Fatal("transitive union failed")
	}
}
