package cluster

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/query"
	"repro/internal/store"
)

// magicCluster tags a serialized cluster model payload.
const magicCluster = "CLSQ"

// WriteTo serializes the clustering — config, cluster assignments and query
// popularity. Member rankings and cluster totals are derived, so only the
// two maps are persisted. It implements io.WriterTo for the core family
// container and store.Footprint.
func (r *Recommender) WriteTo(w io.Writer) (int64, error) {
	sw := store.NewWriter(w)
	sw.Magic(magicCluster)
	sw.Float64(r.cfg.MinSimilarity)
	sw.Uvarint(r.cfg.MinClicks)
	sw.Int(r.clusters)
	sw.Int(len(r.cluster))
	for _, id := range sortedIDs(r.cluster) {
		sw.Uvarint(uint64(id))
		sw.Int(r.cluster[id])
	}
	sw.Int(len(r.popular))
	ids := make([]query.ID, 0, len(r.popular))
	for id := range r.popular {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sw.Uvarint(uint64(id))
		sw.Uvarint(r.popular[id])
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

func sortedIDs(m map[query.ID]int) []query.ID {
	ids := make([]query.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Read decodes a model written by WriteTo and rebuilds the popularity-ranked
// member lists and cluster totals, leaving the recommender ready to serve.
func Read(rd io.Reader) (*Recommender, error) {
	sr := store.NewReader(rd)
	sr.Magic(magicCluster)
	r := &Recommender{
		cluster: make(map[query.ID]int),
		members: make(map[int][]query.ID),
		popular: make(map[query.ID]uint64),
	}
	r.cfg.MinSimilarity = sr.Float64()
	r.cfg.MinClicks = sr.Uvarint()
	r.clusters = sr.Int()
	n := sr.Int()
	for i := 0; i < n && sr.Err() == nil; i++ {
		id := query.ID(sr.Uvarint())
		ci := sr.Int()
		if ci >= r.clusters {
			return nil, fmt.Errorf("cluster: member of cluster %d with only %d clusters: %w", ci, r.clusters, store.ErrCorrupt)
		}
		r.cluster[id] = ci
		r.members[ci] = append(r.members[ci], id)
	}
	n = sr.Int()
	for i := 0; i < n && sr.Err() == nil; i++ {
		id := query.ID(sr.Uvarint())
		r.popular[id] = sr.Uvarint()
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	for ci := range r.members {
		ms := r.members[ci]
		sort.Slice(ms, func(i, j int) bool {
			if r.popular[ms[i]] != r.popular[ms[j]] {
				return r.popular[ms[i]] > r.popular[ms[j]]
			}
			return ms[i] < ms[j]
		})
	}
	r.buildTotals()
	return r, nil
}
