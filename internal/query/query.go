// Package query defines the fundamental vocabulary types used throughout the
// reproduction: interned query identifiers, query sequences, and search
// sessions. All prediction models operate on compact integer IDs rather than
// raw strings; the Dict type provides the bidirectional mapping.
package query

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ID is a compact interned identifier for a unique query string.
// IDs are dense: the first interned query receives ID 0, the next 1, and so
// on, which lets downstream models use IDs as slice indices.
type ID uint32

// Invalid is returned by lookups that fail to resolve a query string.
const Invalid ID = ^ID(0)

// Dict is a bidirectional, concurrency-safe mapping between query strings and
// dense IDs. The zero value is not usable; construct with NewDict.
type Dict struct {
	mu   sync.RWMutex
	ids  map[string]ID
	strs []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]ID)}
}

// Intern returns the ID for q, assigning a fresh one if q has never been
// seen. Query strings are normalised (lower-cased, whitespace-collapsed)
// before interning so that "Kidney  Stones " and "kidney stones" share an ID,
// mirroring standard query-log canonicalisation.
func (d *Dict) Intern(q string) ID {
	q = Normalize(q)
	d.mu.RLock()
	id, ok := d.ids[q]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[q]; ok {
		return id
	}
	id = ID(len(d.strs))
	d.ids[q] = id
	d.strs = append(d.strs, q)
	return id
}

// Lookup resolves a query string to its ID without interning.
// The second return value reports whether the query was known.
func (d *Dict) Lookup(q string) (ID, bool) {
	q = Normalize(q)
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[q]
	return id, ok
}

// LookupBytes is Lookup for a query held in a byte slice. When the bytes are
// already in normalised form (lower-case ASCII, single internal spaces — the
// common case for real query traffic) the map is probed directly with Go's
// allocation-free []byte-key lookup; anything else takes the string path so
// normalisation semantics match Lookup exactly.
func (d *Dict) LookupBytes(q []byte) (ID, bool) {
	if !normalizedASCII(q) {
		return d.Lookup(string(q))
	}
	d.mu.RLock()
	id, ok := d.ids[string(q)] // conversion in the index expression: no alloc
	d.mu.RUnlock()
	return id, ok
}

// normalizedASCII reports whether Normalize would return q unchanged without
// needing Unicode case mapping: pure ASCII with no upper-case letters, no
// non-space whitespace (\t \n \v \f \r — everything TrimSpace and Fields
// treat as space), and no leading/trailing/doubled spaces. Non-ASCII bytes
// fail the test (they could be part of an upper-case rune).
func normalizedASCII(q []byte) bool {
	for i := 0; i < len(q); i++ {
		c := q[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 0x80, c >= '\t' && c <= '\r':
			return false
		case c == ' ':
			if i == 0 || i == len(q)-1 || q[i-1] == ' ' {
				return false
			}
		}
	}
	return true
}

// Hash returns a stable fingerprint of the dictionary's ID assignment: an
// FNV-1a hash over the interned strings in ID order, length-framed so
// ("ab","c") and ("a","bc") differ. Two dictionaries assign identical IDs to
// identical strings iff their hashes match (modulo hash collisions), which is
// what the serving layer's reload compatibility check and the fleet router's
// shared-context interning rely on.
func (d *Dict) Hash() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range d.strs {
		n := len(s)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(n >> shift))
			h *= prime64
		}
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	return h
}

// Extends reports whether d is an ID-preserving extension of base: every ID
// interned in base maps to the same string in d (base's string table is a
// prefix of d's). Interned contexts, ID-keyed cache keys and sticky routing
// hashes built against base therefore remain valid against d — the notion of
// "dictionary compatibility" the hot-reload path enforces. Every dictionary
// extends itself and the empty dictionary.
func (d *Dict) Extends(base *Dict) bool {
	if d == base {
		return true
	}
	// Snapshot base first; RLocks never exclude each other so the ordering is
	// only about not holding both locks at once.
	base.mu.RLock()
	prefix := base.strs
	n := len(prefix)
	base.mu.RUnlock()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.strs) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if d.strs[i] != prefix[i] {
			return false
		}
	}
	return true
}

// String returns the query string for id, or "" if id is out of range.
func (d *Dict) String(id ID) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.strs) {
		return ""
	}
	return d.strs[id]
}

// Len reports the number of unique queries interned so far (|Q|).
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs)
}

// Strings returns a copy of all interned query strings in ID order.
func (d *Dict) Strings() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.strs))
	copy(out, d.strs)
	return out
}

// Normalize canonicalises a raw query string: lower-case, trim, and collapse
// internal whitespace runs to single spaces.
func Normalize(q string) string {
	q = strings.ToLower(strings.TrimSpace(q))
	if !strings.ContainsAny(q, "\t\n\r") && !strings.Contains(q, "  ") {
		return q
	}
	return strings.Join(strings.Fields(q), " ")
}

// Seq is a sequence of queries — the paper's s = [q1, ..., ql].
// A nil or empty Seq is the empty sequence e.
type Seq []ID

// Empty reports whether s is the empty sequence e.
func (s Seq) Empty() bool { return len(s) == 0 }

// Len returns |s|, the number of queries in the sequence.
func (s Seq) Len() int { return len(s) }

// Last returns the final query of the sequence.
// It panics when called on the empty sequence.
func (s Seq) Last() ID {
	if len(s) == 0 {
		panic("query: Last on empty sequence")
	}
	return s[len(s)-1]
}

// Suffix returns the suffix of s obtained by dropping the first query,
// i.e. [q2, ..., ql]. The suffix of a 1-element or empty sequence is e.
func (s Seq) Suffix() Seq {
	if len(s) <= 1 {
		return nil
	}
	return s[1:]
}

// Tail returns the longest suffix of s with length at most n.
func (s Seq) Tail(n int) Seq {
	if n <= 0 {
		return nil
	}
	if len(s) <= n {
		return s
	}
	return s[len(s)-n:]
}

// HasSuffix reports whether suf is a suffix of s.
func (s Seq) HasSuffix(suf Seq) bool {
	if len(suf) > len(s) {
		return false
	}
	off := len(s) - len(suf)
	for i, q := range suf {
		if s[off+i] != q {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality of two sequences.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a fresh copy of s that does not alias the receiver.
func (s Seq) Clone() Seq {
	if s == nil {
		return nil
	}
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Append returns a new sequence equal to s with q appended. The receiver is
// never mutated, making Append safe for deriving contexts from shared slices.
func (s Seq) Append(q ID) Seq {
	out := make(Seq, len(s)+1)
	copy(out, s)
	out[len(s)] = q
	return out
}

// Key encodes the sequence into a compact string usable as a map key.
// The encoding is 4 bytes per ID, big-endian, so distinct sequences always
// map to distinct keys and keys sort in sequence order.
func (s Seq) Key() string {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, 4*len(s))
	for i, q := range s {
		b[4*i] = byte(q >> 24)
		b[4*i+1] = byte(q >> 16)
		b[4*i+2] = byte(q >> 8)
		b[4*i+3] = byte(q)
	}
	return string(b)
}

// SeqFromKey decodes a key produced by Seq.Key back into a sequence.
// It returns nil for the empty key.
func SeqFromKey(k string) Seq {
	if len(k) == 0 {
		return nil
	}
	if len(k)%4 != 0 {
		panic(fmt.Sprintf("query: malformed sequence key of length %d", len(k)))
	}
	s := make(Seq, len(k)/4)
	for i := range s {
		s[i] = ID(k[4*i])<<24 | ID(k[4*i+1])<<16 | ID(k[4*i+2])<<8 | ID(k[4*i+3])
	}
	return s
}

// Format renders the sequence as human-readable text using dict, joining
// queries with the paper's " => " arrow.
func (s Seq) Format(dict *Dict) string {
	if len(s) == 0 {
		return "<empty>"
	}
	parts := make([]string, len(s))
	for i, q := range s {
		parts[i] = dict.String(q)
	}
	return strings.Join(parts, " => ")
}

// Session is one segmented search session: an ordered query sequence plus the
// number of times the identical sequence was observed (after aggregation).
type Session struct {
	Queries Seq
	Count   uint64
}

// SortSessions orders sessions by descending count, breaking ties by the
// lexicographic order of their encoded keys so output is deterministic.
func SortSessions(ss []Session) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Count != ss[j].Count {
			return ss[i].Count > ss[j].Count
		}
		return ss[i].Queries.Key() < ss[j].Queries.Key()
	})
}
