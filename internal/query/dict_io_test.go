package query

import (
	"bytes"
	"testing"
)

func TestDictSerializeRoundTrip(t *testing.T) {
	d := NewDict()
	ids := []ID{d.Intern("alpha"), d.Intern("beta query"), d.Intern("gamma")}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), d.Len())
	}
	for i, id := range ids {
		if got.String(id) != d.String(id) {
			t.Fatalf("ID %d maps to %q, want %q", i, got.String(id), d.String(id))
		}
	}
}

func TestReadDictRejectsGarbage(t *testing.T) {
	if _, err := ReadDict(bytes.NewReader([]byte("not a dict at all"))); err == nil {
		t.Fatal("garbage accepted as dictionary")
	}
}
