package query

import (
	"io"

	"repro/internal/store"
)

const magicDict = "QDIC"

// WriteTo serializes the dictionary in ID order. It implements io.WriterTo.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	strs := make([]string, len(d.strs))
	copy(strs, d.strs)
	d.mu.RUnlock()

	sw := store.NewWriter(w)
	sw.Magic(magicDict)
	sw.Int(len(strs))
	for _, s := range strs {
		sw.String(s)
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// ReadDict decodes a dictionary written by WriteTo, preserving IDs.
func ReadDict(r io.Reader) (*Dict, error) {
	sr := store.NewReader(r)
	sr.Magic(magicDict)
	n := sr.Int()
	d := NewDict()
	for i := 0; i < n && sr.Err() == nil; i++ {
		d.Intern(sr.String())
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	return d, nil
}
