package query

import (
	"testing"
	"testing/quick"
)

func TestDictInternAssignsDenseIDs(t *testing.T) {
	d := NewDict()
	a := d.Intern("java")
	b := d.Intern("java island")
	c := d.Intern("sun java")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("expected dense IDs 0,1,2; got %d,%d,%d", a, b, c)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestDictInternIsIdempotent(t *testing.T) {
	d := NewDict()
	a := d.Intern("nokia n73")
	b := d.Intern("nokia n73")
	if a != b {
		t.Fatalf("re-interning changed ID: %d vs %d", a, b)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDictNormalizesBeforeInterning(t *testing.T) {
	d := NewDict()
	a := d.Intern("  Kidney  Stones ")
	b := d.Intern("kidney stones")
	if a != b {
		t.Fatalf("normalised variants got distinct IDs %d and %d", a, b)
	}
	if got := d.String(a); got != "kidney stones" {
		t.Fatalf("String(%d) = %q, want %q", a, got, "kidney stones")
	}
}

func TestDictLookupDoesNotIntern(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("unseen"); ok {
		t.Fatal("Lookup reported an unseen query as known")
	}
	if d.Len() != 0 {
		t.Fatalf("Lookup interned the query; Len = %d", d.Len())
	}
	id := d.Intern("seen")
	got, ok := d.Lookup("seen")
	if !ok || got != id {
		t.Fatalf("Lookup(seen) = %d,%v; want %d,true", got, ok, id)
	}
}

func TestDictStringOutOfRange(t *testing.T) {
	d := NewDict()
	if s := d.String(99); s != "" {
		t.Fatalf("String(99) on empty dict = %q, want empty", s)
	}
	if s := d.String(Invalid); s != "" {
		t.Fatalf("String(Invalid) = %q, want empty", s)
	}
}

func TestDictStringsReturnsIDOrder(t *testing.T) {
	d := NewDict()
	in := []string{"smtp", "pop3", "imap"}
	for _, q := range in {
		d.Intern(q)
	}
	got := d.Strings()
	if len(got) != len(in) {
		t.Fatalf("Strings returned %d entries, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Strings[%d] = %q, want %q", i, got[i], in[i])
		}
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	done := make(chan ID, 64)
	for i := 0; i < 64; i++ {
		go func() { done <- d.Intern("concurrent query") }()
	}
	first := <-done
	for i := 1; i < 64; i++ {
		if id := <-done; id != first {
			t.Fatalf("concurrent interning produced distinct IDs %d and %d", first, id)
		}
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after concurrent interning of one query", d.Len())
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Google", "google"},
		{"  o2   mobile  phones ", "o2 mobile phones"},
		{"a\tb", "a b"},
		{"already clean", "already clean"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeqSuffixAndTail(t *testing.T) {
	s := Seq{1, 2, 3, 4}
	if got := s.Suffix(); !got.Equal(Seq{2, 3, 4}) {
		t.Fatalf("Suffix = %v", got)
	}
	if got := (Seq{7}).Suffix(); got != nil {
		t.Fatalf("Suffix of 1-element seq = %v, want nil", got)
	}
	if got := s.Tail(2); !got.Equal(Seq{3, 4}) {
		t.Fatalf("Tail(2) = %v", got)
	}
	if got := s.Tail(0); got != nil {
		t.Fatalf("Tail(0) = %v, want nil", got)
	}
	if got := s.Tail(10); !got.Equal(s) {
		t.Fatalf("Tail(10) = %v, want whole sequence", got)
	}
}

func TestSeqHasSuffix(t *testing.T) {
	s := Seq{5, 6, 7}
	for _, suf := range []Seq{nil, {7}, {6, 7}, {5, 6, 7}} {
		if !s.HasSuffix(suf) {
			t.Errorf("HasSuffix(%v) = false, want true", suf)
		}
	}
	for _, suf := range []Seq{Seq{5}, Seq{5, 6}, Seq{7, 7}, Seq{1, 5, 6, 7}} {
		if s.HasSuffix(suf) {
			t.Errorf("HasSuffix(%v) = true, want false", suf)
		}
	}
}

func TestSeqAppendDoesNotMutate(t *testing.T) {
	s := Seq{1, 2}
	u := s.Append(3)
	v := s.Append(4)
	if !u.Equal(Seq{1, 2, 3}) || !v.Equal(Seq{1, 2, 4}) {
		t.Fatalf("Append aliasing: u=%v v=%v", u, v)
	}
	if !s.Equal(Seq{1, 2}) {
		t.Fatalf("receiver mutated: %v", s)
	}
}

func TestSeqLastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Last on empty sequence did not panic")
		}
	}()
	Seq{}.Last()
}

func TestSeqKeyRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		s := make(Seq, len(raw))
		for i, v := range raw {
			s[i] = ID(v)
		}
		dec := SeqFromKey(s.Key())
		if len(s) == 0 {
			return dec == nil
		}
		return dec.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqKeyInjective(t *testing.T) {
	f := func(a, b []uint32) bool {
		sa := make(Seq, len(a))
		for i, v := range a {
			sa[i] = ID(v)
		}
		sb := make(Seq, len(b))
		for i, v := range b {
			sb[i] = ID(v)
		}
		if sa.Key() == sb.Key() {
			return sa.Equal(sb)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqFromKeyPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SeqFromKey on misaligned key did not panic")
		}
	}()
	SeqFromKey("abc")
}

func TestSeqFormat(t *testing.T) {
	d := NewDict()
	s := Seq{d.Intern("o2"), d.Intern("o2 mobile"), d.Intern("o2 mobile phones")}
	want := "o2 => o2 mobile => o2 mobile phones"
	if got := s.Format(d); got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
	if got := Seq(nil).Format(d); got != "<empty>" {
		t.Fatalf("Format(empty) = %q", got)
	}
}

func TestSortSessions(t *testing.T) {
	ss := []Session{
		{Queries: Seq{3}, Count: 5},
		{Queries: Seq{1}, Count: 9},
		{Queries: Seq{2}, Count: 5},
	}
	SortSessions(ss)
	if ss[0].Count != 9 {
		t.Fatalf("first session count = %d, want 9", ss[0].Count)
	}
	// Equal counts tie-break on encoded key: ID 2 sorts before ID 3.
	if !ss[1].Queries.Equal(Seq{2}) || !ss[2].Queries.Equal(Seq{3}) {
		t.Fatalf("tie-break order wrong: %v then %v", ss[1].Queries, ss[2].Queries)
	}
}

func TestSeqCloneIndependence(t *testing.T) {
	s := Seq{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone aliases the receiver")
	}
	if Seq(nil).Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

// TestLookupBytesMatchesLookup: the byte-slice fast path must resolve every
// input exactly like the string path, including ones needing normalisation
// (upper case, exotic whitespace, Unicode) and ones that do not.
func TestLookupBytesMatchesLookup(t *testing.T) {
	d := NewDict()
	d.Intern("kidney stones")
	d.Intern("nokia n73")
	d.Intern("héllo")
	inputs := []string{
		"kidney stones", "Kidney Stones", " kidney stones ", "kidney  stones",
		"kidney\tstones", "kidney\vstones", "kidney\fstones",
		"kidney stones\f", "\vkidney stones", "nokia n73", "HÉLLO", "héllo",
		"unknown", "", " ", "a\x01b",
	}
	for _, in := range inputs {
		wantID, wantOK := d.Lookup(in)
		gotID, gotOK := d.LookupBytes([]byte(in))
		if wantID != gotID || wantOK != gotOK {
			t.Errorf("LookupBytes(%q) = (%v, %v), Lookup = (%v, %v)", in, gotID, gotOK, wantID, wantOK)
		}
	}
}

// TestDictHashExtends: Hash must fingerprint the ID assignment (order
// matters, framing prevents boundary aliasing) and Extends must accept
// exactly the ID-preserving prefix relation the reload compatibility check
// is built on.
func TestDictHashExtends(t *testing.T) {
	a := NewDict()
	a.Intern("o2")
	a.Intern("o2 mobile")

	same := NewDict()
	same.Intern("o2")
	same.Intern("o2 mobile")
	if a.Hash() != same.Hash() {
		t.Fatal("identical dictionaries hash differently")
	}

	reordered := NewDict()
	reordered.Intern("o2 mobile")
	reordered.Intern("o2")
	if a.Hash() == reordered.Hash() {
		t.Fatal("reordered IDs must change the hash")
	}

	framed := NewDict()
	framed.Intern("o")
	framed.Intern("2o2 mobile")
	if a.Hash() == framed.Hash() {
		t.Fatal("length framing failed: shifted string boundaries collide")
	}

	ext := NewDict()
	ext.Intern("o2")
	ext.Intern("o2 mobile")
	ext.Intern("smtp")
	if !ext.Extends(a) {
		t.Fatal("superset with preserved IDs must extend the base")
	}
	if a.Extends(ext) {
		t.Fatal("a shorter dictionary cannot extend its extension")
	}
	if !a.Extends(a) {
		t.Fatal("a dictionary must extend itself")
	}
	if !a.Extends(NewDict()) {
		t.Fatal("every dictionary extends the empty dictionary")
	}
	if ext.Extends(reordered) {
		t.Fatal("permuted IDs must not count as an extension")
	}
	if a.Hash() == ext.Hash() {
		t.Fatal("extension must still change the hash")
	}
}
