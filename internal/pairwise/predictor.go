package pairwise

import (
	"repro/internal/compiled"
	"repro/internal/model"
	"repro/internal/query"
)

// PredictInto implements compiled.Predictor for the Adjacency baseline: the
// follower distribution of the context's last query, appended from its
// frozen ranking — no allocations with a recycled dst.
func (m *Adjacency) PredictInto(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction {
	d := m.dist(ctx)
	if d == nil {
		return dst
	}
	return d.AppendTopN(dst, topN)
}

// Shape implements compiled.Predictor.
func (m *Adjacency) Shape() compiled.Shape {
	return compiled.Shape{
		Family:    compiled.FamilyAdjacency,
		Label:     m.Name(),
		Vocab:     m.vocab,
		States:    len(m.follow),
		Depth:     1,
		ZeroAlloc: true,
	}
}

// PredictInto implements compiled.Predictor for the Co-occurrence baseline.
func (m *Cooccurrence) PredictInto(dst []model.Prediction, ctx query.Seq, topN int) []model.Prediction {
	d := m.dist(ctx)
	if d == nil {
		return dst
	}
	return d.AppendTopN(dst, topN)
}

// Shape implements compiled.Predictor.
func (m *Cooccurrence) Shape() compiled.Shape {
	return compiled.Shape{
		Family:    compiled.FamilyCooccurrence,
		Label:     m.Name(),
		Vocab:     m.vocab,
		States:    len(m.with),
		Depth:     1,
		ZeroAlloc: true,
	}
}

var (
	_ compiled.Predictor = (*Adjacency)(nil)
	_ compiled.Predictor = (*Cooccurrence)(nil)
)
