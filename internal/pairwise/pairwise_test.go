package pairwise

import (
	"math"
	"testing"

	"repro/internal/query"
)

func trainingSessions() []query.Session {
	return []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 10},
		{Queries: query.Seq{1, 4}, Count: 5},
		{Queries: query.Seq{2, 3}, Count: 8},
		{Queries: query.Seq{7}, Count: 3}, // singleton: invisible to both models
	}
}

func TestAdjacencyRanksImmediateFollowers(t *testing.T) {
	m := NewAdjacency(trainingSessions(), 8)
	top := m.Predict(query.Seq{1}, 5)
	if len(top) != 2 {
		t.Fatalf("predictions = %v", top)
	}
	// Followers of 1: 2 (x10), 4 (x5).
	if top[0].Query != 2 || top[1].Query != 4 {
		t.Fatalf("ranking = %v", top)
	}
	if math.Abs(top[0].Score-10.0/15) > 1e-12 {
		t.Fatalf("score = %v", top[0].Score)
	}
}

func TestAdjacencyUsesOnlyLastQuery(t *testing.T) {
	m := NewAdjacency(trainingSessions(), 8)
	long := m.Predict(query.Seq{9, 9, 9, 1}, 5)
	short := m.Predict(query.Seq{1}, 5)
	if len(long) != len(short) {
		t.Fatalf("context length changed adjacency predictions: %v vs %v", long, short)
	}
	for i := range long {
		if long[i].Query != short[i].Query {
			t.Fatalf("adjacency depends on more than the last query")
		}
	}
}

func TestAdjacencyOrderSensitive(t *testing.T) {
	m := NewAdjacency(trainingSessions(), 8)
	// 3 only appears in final positions: no followers, not covered.
	if m.Covers(query.Seq{3}) {
		t.Fatal("query with no followers should not be covered by Adjacency")
	}
}

func TestCooccurrenceIgnoresOrder(t *testing.T) {
	m := NewCooccurrence(trainingSessions(), 8)
	// 3 co-occurs with 1 and 2 even though it is always last: covered.
	if !m.Covers(query.Seq{3}) {
		t.Fatal("Co-occurrence should cover final-position queries")
	}
	top := m.Predict(query.Seq{3}, 5)
	// Co-occurring with 3: 2 (10+8=18), 1 (10).
	if len(top) != 2 || top[0].Query != 2 || top[1].Query != 1 {
		t.Fatalf("co-occurrence ranking = %v", top)
	}
}

func TestCooccurrenceCoverageSupersetOfAdjacency(t *testing.T) {
	adj := NewAdjacency(trainingSessions(), 8)
	co := NewCooccurrence(trainingSessions(), 8)
	for q := query.ID(0); q < 10; q++ {
		ctx := query.Seq{q}
		if adj.Covers(ctx) && !co.Covers(ctx) {
			t.Fatalf("Adjacency covers %v but Co-occurrence does not", ctx)
		}
	}
}

func TestPairwiseSingletonSessionsExcluded(t *testing.T) {
	adj := NewAdjacency(trainingSessions(), 8)
	co := NewCooccurrence(trainingSessions(), 8)
	if adj.Covers(query.Seq{7}) || co.Covers(query.Seq{7}) {
		t.Fatal("singleton-session query covered (Table VI reason 2)")
	}
}

func TestPairwiseEmptyContext(t *testing.T) {
	adj := NewAdjacency(trainingSessions(), 8)
	co := NewCooccurrence(trainingSessions(), 8)
	if adj.Covers(nil) || co.Covers(nil) {
		t.Fatal("empty context covered")
	}
	if adj.Predict(nil, 5) != nil || co.Predict(nil, 5) != nil {
		t.Fatal("empty context produced predictions")
	}
	if adj.Prob(nil, 1) != 0 || co.Prob(nil, 1) != 0 {
		t.Fatal("empty context has nonzero probability")
	}
}

func TestPairwiseProbSmoothing(t *testing.T) {
	m := NewAdjacency(trainingSessions(), 8)
	if p := m.Prob(query.Seq{1}, 6); p <= 0 {
		t.Fatalf("unobserved follower prob = %v, want smoothed > 0", p)
	}
	var sum float64
	for q := query.ID(0); q < 8; q++ {
		sum += m.Prob(query.Seq{1}, q)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("smoothed probabilities sum to %v", sum)
	}
}

func TestNumStates(t *testing.T) {
	adj := NewAdjacency(trainingSessions(), 8)
	// Queries with followers: 1, 2.
	if adj.NumStates() != 2 {
		t.Fatalf("Adjacency states = %d, want 2", adj.NumStates())
	}
	co := NewCooccurrence(trainingSessions(), 8)
	// Queries in multi-query sessions: 1, 2, 3, 4.
	if co.NumStates() != 4 {
		t.Fatalf("Co-occurrence states = %d, want 4", co.NumStates())
	}
}

func TestCooccurrenceWeighting(t *testing.T) {
	m := NewCooccurrence(trainingSessions(), 8)
	top := m.Predict(query.Seq{2}, 5)
	// Co-occurring with 2: 3 (10+8=18), 1 (10).
	if top[0].Query != 3 || top[1].Query != 1 {
		t.Fatalf("ranking = %v", top)
	}
}
