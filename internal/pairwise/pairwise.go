// Package pairwise implements the paper's two baseline recommenders
// (Sec. V.B): Adjacency, which ranks queries that immediately follow the
// user's last query in training sessions (Jones et al.), and Co-occurrence,
// which ranks queries co-occurring with the last query anywhere in the same
// session regardless of order (Huang et al.). Both look at a single
// preceding query only — the limitation the sequential models address.
package pairwise

import (
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/query"
)

// Adjacency recommends the queries most frequently observed immediately
// after the context's last query. It is exactly the 2-gram degeneration of
// the variable-length N-gram model (Sec. IV.A).
type Adjacency struct {
	follow map[query.ID]*markov.Dist
	vocab  int
}

// NewAdjacency trains the Adjacency baseline from aggregated sessions.
func NewAdjacency(sessions []query.Session, vocab int) *Adjacency {
	m := &Adjacency{follow: make(map[query.ID]*markov.Dist), vocab: vocab}
	for _, s := range sessions {
		for i := 1; i < len(s.Queries); i++ {
			prev := s.Queries[i-1]
			d := m.follow[prev]
			if d == nil {
				d = markov.NewDist()
				m.follow[prev] = d
			}
			d.Add(s.Queries[i], s.Count)
		}
	}
	freeze(m.follow)
	return m
}

// freeze precomputes rankings so predictions are safe for concurrent use.
func freeze(m map[query.ID]*markov.Dist) {
	for _, d := range m {
		d.Freeze()
	}
}

// Name implements model.Predictor. "Adjacency" is the stable display name
// (table rows, /v1/models, X-Serve-Arm); the arm identifier is
// compiled.FamilyAdjacency.
func (m *Adjacency) Name() string { return "Adjacency" }

func (m *Adjacency) dist(ctx query.Seq) *markov.Dist {
	if len(ctx) == 0 {
		return nil
	}
	return m.follow[ctx.Last()]
}

// Predict implements model.Predictor using only the last query of ctx.
func (m *Adjacency) Predict(ctx query.Seq, topN int) []model.Prediction {
	d := m.dist(ctx)
	if d == nil {
		return nil
	}
	return d.TopN(topN)
}

// Prob implements model.Predictor.
func (m *Adjacency) Prob(ctx query.Seq, q query.ID) float64 {
	d := m.dist(ctx)
	if d == nil {
		return 0
	}
	return d.SmoothedP(q, m.vocab)
}

// Covers implements model.Predictor.
func (m *Adjacency) Covers(ctx query.Seq) bool { return m.dist(ctx) != nil }

// NumStates returns the number of queries with follower evidence.
func (m *Adjacency) NumStates() int { return len(m.follow) }

// Co-occurrence ranks queries by how often they appear in the same session
// as the context's last query, in any order and at any distance. Its
// coverage is the highest of all methods (a query needs only to appear in
// some multi-query session) but it ignores sequence information entirely.
type Cooccurrence struct {
	with  map[query.ID]*markov.Dist
	vocab int
}

// NewCooccurrence trains the Co-occurrence baseline. For every unordered
// pair of distinct positions (i, j) in a session, query at i is recorded as
// co-occurring with query at j and vice versa, weighted by the session's
// aggregated frequency.
func NewCooccurrence(sessions []query.Session, vocab int) *Cooccurrence {
	m := &Cooccurrence{with: make(map[query.ID]*markov.Dist), vocab: vocab}
	for _, s := range sessions {
		qs := s.Queries
		for i := 0; i < len(qs); i++ {
			for j := 0; j < len(qs); j++ {
				if i == j {
					continue
				}
				d := m.with[qs[i]]
				if d == nil {
					d = markov.NewDist()
					m.with[qs[i]] = d
				}
				d.Add(qs[j], s.Count)
			}
		}
	}
	freeze(m.with)
	return m
}

// Name implements model.Predictor. "Co-occurrence" is the stable display
// name; the arm identifier is compiled.FamilyCooccurrence.
func (m *Cooccurrence) Name() string { return "Co-occurrence" }

func (m *Cooccurrence) dist(ctx query.Seq) *markov.Dist {
	if len(ctx) == 0 {
		return nil
	}
	return m.with[ctx.Last()]
}

// Predict implements model.Predictor.
func (m *Cooccurrence) Predict(ctx query.Seq, topN int) []model.Prediction {
	d := m.dist(ctx)
	if d == nil {
		return nil
	}
	return d.TopN(topN)
}

// Prob implements model.Predictor.
func (m *Cooccurrence) Prob(ctx query.Seq, q query.ID) float64 {
	d := m.dist(ctx)
	if d == nil {
		return 0
	}
	return d.SmoothedP(q, m.vocab)
}

// Covers implements model.Predictor.
func (m *Cooccurrence) Covers(ctx query.Seq) bool { return m.dist(ctx) != nil }

// NumStates returns the number of queries with co-occurrence evidence.
func (m *Cooccurrence) NumStates() int { return len(m.with) }

var (
	_ model.Predictor = (*Adjacency)(nil)
	_ model.Predictor = (*Cooccurrence)(nil)
)
