package pairwise

import (
	"bytes"
	"testing"

	"repro/internal/query"
)

func TestAdjacencySerializeRoundTrip(t *testing.T) {
	m := NewAdjacency(trainingSessions(), 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != m.NumStates() {
		t.Fatalf("states = %d, want %d", got.NumStates(), m.NumStates())
	}
	for q := query.ID(0); q < 8; q++ {
		a, b := m.Predict(query.Seq{q}, 5), got.Predict(query.Seq{q}, 5)
		if len(a) != len(b) {
			t.Fatalf("prediction count differs for %d", q)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("prediction differs for %d: %v vs %v", q, a, b)
			}
		}
	}
}

func TestCooccurrenceSerializeRoundTrip(t *testing.T) {
	m := NewCooccurrence(trainingSessions(), 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCooccurrence(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != m.NumStates() {
		t.Fatalf("states = %d, want %d", got.NumStates(), m.NumStates())
	}
	top := got.Predict(query.Seq{3}, 5)
	want := m.Predict(query.Seq{3}, 5)
	if len(top) != len(want) || top[0] != want[0] {
		t.Fatalf("predictions differ: %v vs %v", top, want)
	}
}

func TestCrossFormatRejected(t *testing.T) {
	m := NewAdjacency(trainingSessions(), 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCooccurrence(&buf); err == nil {
		t.Fatal("adjacency stream accepted as co-occurrence")
	}
}
