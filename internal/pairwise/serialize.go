package pairwise

import (
	"io"
	"sort"

	"repro/internal/markov"
	"repro/internal/query"
	"repro/internal/store"
)

const (
	magicAdj = "ADJQ"
	magicCo  = "COOC"
)

func writePairwise(w io.Writer, magic string, vocab int, m map[query.ID]*markov.Dist) (int64, error) {
	sw := store.NewWriter(w)
	sw.Magic(magic)
	sw.Int(vocab)
	keys := make([]query.ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sw.Int(len(keys))
	for _, k := range keys {
		sw.Uvarint(uint64(k))
		markov.WriteDist(sw, m[k])
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

func readPairwise(r io.Reader, magic string) (int, map[query.ID]*markov.Dist, error) {
	sr := store.NewReader(r)
	sr.Magic(magic)
	vocab := sr.Int()
	n := sr.Int()
	m := make(map[query.ID]*markov.Dist, n)
	for i := 0; i < n && sr.Err() == nil; i++ {
		k := query.ID(sr.Uvarint())
		m[k] = markov.ReadDist(sr)
	}
	if err := sr.Err(); err != nil {
		return 0, nil, err
	}
	if err := sr.Close(); err != nil {
		return 0, nil, err
	}
	return vocab, m, nil
}

// WriteTo serializes the Adjacency model.
func (m *Adjacency) WriteTo(w io.Writer) (int64, error) {
	return writePairwise(w, magicAdj, m.vocab, m.follow)
}

// ReadAdjacency decodes a model written by (*Adjacency).WriteTo.
func ReadAdjacency(r io.Reader) (*Adjacency, error) {
	vocab, follow, err := readPairwise(r, magicAdj)
	if err != nil {
		return nil, err
	}
	freeze(follow)
	return &Adjacency{follow: follow, vocab: vocab}, nil
}

// WriteTo serializes the Co-occurrence model.
func (m *Cooccurrence) WriteTo(w io.Writer) (int64, error) {
	return writePairwise(w, magicCo, m.vocab, m.with)
}

// ReadCooccurrence decodes a model written by (*Cooccurrence).WriteTo.
func ReadCooccurrence(r io.Reader) (*Cooccurrence, error) {
	vocab, with, err := readPairwise(r, magicCo)
	if err != nil {
		return nil, err
	}
	freeze(with)
	return &Cooccurrence{with: with, vocab: vocab}, nil
}
