package stream

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/loggen"
)

// smallGen returns a deterministic traffic generator over a compact universe —
// enough vocabulary drift and machine interleaving to exercise segmentation,
// small enough to run hundreds of replay trials.
func smallGen(t *testing.T, seed int64) *loggen.Generator {
	t.Helper()
	cfg := loggen.DefaultConfig()
	cfg.Universe = loggen.UniverseConfig{
		Topics: 12, RootsPerTopic: 4, ChainDepth: 2,
		SynonymFrac: 0.3, Universals: 6, Generics: 4, Seed: seed,
	}
	cfg.Machines = 25
	cfg.Seed = seed
	g, err := loggen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// writeTraffic expands n generated sessions into a raw query log file and
// returns its path.
func writeTraffic(t *testing.T, g *loggen.Generator, dir string, n int) string {
	t.Helper()
	path := filepath.Join(dir, "queries.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	wr := logfmt.NewWriter(f)
	if _, err := g.GenerateRecords(n, wr.Write); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// drain steps the ingester until the tail yields no more complete records.
func drain(t *testing.T, ing *Ingester) {
	t.Helper()
	for {
		progressed, err := ing.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			return
		}
	}
}

// dumpCounts renders the canonical count table.
func dumpCounts(t *testing.T, inc *core.Incremental) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := inc.DumpCounts(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func crashCfg(logPath, walPath, modelPath string) Config {
	return Config{
		LogPath:           logPath,
		WALPath:           walPath,
		ModelPath:         modelPath,
		Train:             core.Config{ReductionThreshold: 0, SessionGap: 30 * time.Minute},
		SegmentRecords:    16,
		RecompileSessions: 25,
	}
}

// TestCrashReplayEveryCutPoint is the crash table: the ingester is "killed"
// at every stage boundary of the write-ahead protocol — mid segment append
// (torn record), after a segment append but before the counts moved, after a
// model save but before its commit record, mid commit append, and right after
// a commit — by replaying a byte-prefix of the uninterrupted run's write-log.
// Every restart must converge to count tables and trainer dictionaries
// byte-identical to the uninterrupted run's.
//
// The prefix construction is exhaustive where it matters: every record
// boundary of the full write-log is a clean-kill trial, and several cuts
// inside each record are torn-kill trials. Because appends are sequential and
// deterministic, a prefix of the full log IS the write-log state some crash
// could have left behind (O_APPEND writes land in order; a lost suffix is
// exactly a truncation).
func TestCrashReplayEveryCutPoint(t *testing.T) {
	dir := t.TempDir()
	logPath := writeTraffic(t, smallGen(t, 7), dir, 120)

	// Uninterrupted reference run.
	refWAL := filepath.Join(dir, "ref.wal")
	ref, err := NewIngester(crashCfg(logPath, refWAL, filepath.Join(dir, "ref-model.bin")))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, ref)
	wantCounts := dumpCounts(t, ref.Incremental())
	wantModel := ref.Incremental().Snapshot()
	refStatus := ref.Status()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if refStatus.Sessions < 50 || refStatus.Recompiles == 0 {
		t.Fatalf("reference run too small to be meaningful: %+v", refStatus)
	}

	fullWAL, err := os.ReadFile(refWAL)
	if err != nil {
		t.Fatal(err)
	}

	// Enumerate the full write-log's record boundaries and types.
	type cutPoint struct {
		at   int64
		name string
	}
	var cuts []cutPoint
	typeName := map[byte]string{recHeader: "header", recSegment: "segment", recCommit: "commit"}
	off := 0
	for off < len(fullWAL) {
		typ, _, n, ok := readFrame(fullWAL[off:])
		if !ok {
			t.Fatalf("reference write-log unreadable at byte %d", off)
		}
		if typ != recHeader {
			// Clean kill exactly after this record lands...
			cuts = append(cuts, cutPoint{int64(off + n), fmt.Sprintf("after %s@%d", typeName[typ], off)})
			// ...and torn kills inside it: first byte of the frame (header
			// half-written) and one byte short of complete (payload torn).
			for _, d := range []int{1, n - 1} {
				if d > 0 && d < n {
					cuts = append(cuts, cutPoint{int64(off + d), fmt.Sprintf("torn %s@%d+%d", typeName[typ], off, d)})
				}
			}
		}
		off += n
	}
	if len(cuts) < 15 {
		t.Fatalf("only %d cut points — traffic too small for a meaningful table", len(cuts))
	}

	for i, cut := range cuts {
		// A fresh write-log holding exactly the bytes a crash at this point
		// would have left, then a restart that drains the same source log.
		crashDir := t.TempDir()
		walPath := filepath.Join(crashDir, "crash.wal")
		if err := os.WriteFile(walPath, fullWAL[:cut.at], 0o644); err != nil {
			t.Fatal(err)
		}
		ing, err := NewIngester(crashCfg(logPath, walPath, filepath.Join(crashDir, "model.bin")))
		if err != nil {
			t.Fatalf("cut %d (%s): restart: %v", i, cut.name, err)
		}
		drain(t, ing)
		got := dumpCounts(t, ing.Incremental())
		if !bytes.Equal(got, wantCounts) {
			t.Fatalf("cut %d (%s): count table diverged from uninterrupted run\n got %d bytes\nwant %d bytes",
				i, cut.name, len(got), len(wantCounts))
		}
		// The trainer dictionary must match byte-for-byte too (same hash ⇒
		// same strings in the same ID order), or a post-crash recompile would
		// break the fleet's dict-extends push compatibility. Snapshotting
		// trains a model, so sample every fourth cut plus the final one.
		if i%4 == 0 || i == len(cuts)-1 {
			if h1, h2 := ing.Incremental().Snapshot().Dict().Hash(), wantModel.Dict().Hash(); h1 != h2 {
				t.Fatalf("cut %d (%s): trainer dictionary diverged: %016x != %016x", i, cut.name, h1, h2)
			}
		}
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("crash table: %d cut points, %d sessions, %d recompiles in reference run",
		len(cuts), refStatus.Sessions, refStatus.Recompiles)
}

// TestCrashReplayReportsReplayedState: a restart surfaces what recovery did —
// how many tentative segments were re-applied and how many torn bytes were
// discarded — so operators can see recovery happened.
func TestCrashReplayReportsReplayedState(t *testing.T) {
	dir := t.TempDir()
	logPath := writeTraffic(t, smallGen(t, 11), dir, 60)
	walPath := filepath.Join(dir, "ingest.wal")

	ing, err := NewIngester(crashCfg(logPath, walPath, filepath.Join(dir, "model.bin")))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, ing)
	first := ing.Status()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if first.Replayed != 0 || first.Segments == 0 {
		t.Fatalf("fresh run status = %+v", first)
	}

	// Tear the last record and restart.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	ing2, err := NewIngester(crashCfg(logPath, walPath, filepath.Join(dir, "model.bin")))
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	st := ing2.Status()
	// Cutting 4 bytes tears the final record; truncation discards that whole
	// record (its frame can no longer be read), so TornTailBytes covers it.
	if st.Replayed == 0 || st.TornTailBytes == 0 {
		t.Fatalf("restart status = %+v, want replayed entries and torn bytes", st)
	}
	drain(t, ing2)
	if got, want := ing2.Status().Sessions, first.Sessions; got != want {
		t.Fatalf("sessions after torn restart = %d, want %d", got, want)
	}
}

// TestIngestResumeAcrossGrowingLog: the tailer survives the source log
// growing between drains — the steady-state "writer appends, ingester
// follows" loop — and a restart mid-stream picks up where the write-log says.
func TestIngestResumeAcrossGrowingLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "queries.log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wr := logfmt.NewWriter(f)
	g := smallGen(t, 3)

	cfg := crashCfg(logPath, filepath.Join(dir, "ingest.wal"), filepath.Join(dir, "model.bin"))
	ing, err := NewIngester(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Idle tail: no records yet.
	if progressed, err := ing.Step(); err != nil || progressed {
		t.Fatalf("Step on empty log = (%v, %v), want (false, nil)", progressed, err)
	}

	if _, err := g.GenerateRecords(40, wr.Write); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	drain(t, ing)
	mid := ing.Status()
	if mid.Sessions == 0 {
		t.Fatal("no sessions ingested from first traffic burst")
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// More traffic lands while the ingester is down; the restart must resume
	// from the recorded offset, not re-read from zero.
	if _, err := g.GenerateRecords(40, wr.Write); err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	ing2, err := NewIngester(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	if got := ing2.Status().LogOffset; got != mid.LogOffset {
		t.Fatalf("restart resume offset = %d, want %d", got, mid.LogOffset)
	}
	drain(t, ing2)
	end := ing2.Status()
	if end.Sessions <= mid.Sessions || end.LogOffset <= mid.LogOffset {
		t.Fatalf("second burst not ingested: mid %+v, end %+v", mid, end)
	}
}
