package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/logfmt"
	"repro/internal/loggen"
	"repro/internal/serve"
)

// TestLoopStreamToServing is the headline end-to-end test of the closed
// loop: live traffic streams into a query log, the ingester tails it behind
// the write-log, recompiles snapshots and pushes them at a real serving fleet
// over HTTP as a weight-0 shadow challenger, and the ramp scheduler walks the
// challenger up to live weight and promotes it — after which the fleet serves
// queries from vocabulary that did not exist when the seed model was trained.
//
//	loggen → queries.log → Ingester (WAL) → POST /v1/reload?model=challenger
//	       → shadow scoring → Ramp → promotion → new vocabulary served
func TestLoopStreamToServing(t *testing.T) {
	dir := t.TempDir()

	// ---- Seed: train the champion on pre-drift traffic only. Late-onset
	// topics stay locked, so their vocabulary is absent from the seed model.
	cfg := loggen.DefaultConfig()
	cfg.Universe = loggen.UniverseConfig{
		Topics: 12, RootsPerTopic: 4, ChainDepth: 2,
		SynonymFrac: 0.3, Universals: 6, Generics: 4, Seed: 21,
	}
	cfg.Machines = 25
	cfg.LateTopicEvery = 3
	cfg.Seed = 21
	g, err := loggen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainCfg := core.Config{ReductionThreshold: 0, SessionGap: 30 * time.Minute}
	seedInc := core.NewIncremental(nil, trainCfg)
	for _, ls := range g.GenerateSessions(150) {
		seedInc.AddStrings([][]string{ls.Queries})
	}
	seedPath := filepath.Join(dir, "seed.bin")
	if _, err := seedInc.SnapshotTo(seedPath); err != nil {
		t.Fatal(err)
	}

	// ---- Fleet: champion serves all traffic; challenger is declared at
	// weight 0 (shadow) and reloads from the path the ingester snapshots to.
	champ, err := core.LoadAnyPath(seedPath, core.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chalSeed, err := core.LoadAnyPath(seedPath, core.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "challenger.bin")
	reg := fleet.NewRegistry(0)
	if _, err := reg.Add("champion", champ, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("challenger", chalSeed, func() (core.Recommender, error) {
		return core.LoadAnyPath(modelPath, core.LoadOptions{})
	}); err != nil {
		t.Fatal(err)
	}
	rt, err := fleet.NewRouter(reg,
		fleet.ArmSpec{Name: "champion", Weight: 100},
		fleet.ArmSpec{Name: "challenger", Weight: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var ing *Ingester
	handler := serve.New(champ, serve.Options{
		DefaultN: 5,
		Fleet:    rt,
		IngestStatus: func() any {
			if ing == nil {
				return Status{}
			}
			return ing.Status()
		},
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// ---- Live traffic: the same generator enters the test phase, unlocking
	// late topics — the post-training query-trend drift. Every record goes to
	// the log the ingester tails.
	g.EnterTestPhase()
	logPath := filepath.Join(dir, "queries.log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	liveSessions, logBytes := writeLiveTraffic(t, g, f, 150)
	t.Logf("live traffic: %d sessions, %d log bytes", len(liveSessions), logBytes)

	// New-vocabulary probes: multi-query sessions (from the early part of the
	// stream, so they complete before the last push) whose first query the
	// seed model has never seen.
	var probes []string
	for _, ls := range liveSessions[:100] {
		if len(ls.Queries) < 2 {
			continue
		}
		if _, known := champ.Dict().Lookup(ls.Queries[0]); !known {
			probes = append(probes, ls.Queries[0])
		}
	}
	if len(probes) < 3 {
		t.Fatalf("only %d new-vocabulary probe sessions in live traffic — raise drift", len(probes))
	}

	// Before the loop runs, the fleet cannot serve any probe: the query is
	// not in the interning base, so the context interns to nothing.
	for _, q := range probes {
		if n := suggestCount(t, srv.URL, q); n != 0 {
			t.Fatalf("probe %q served %d suggestions by the seed model — not new vocabulary", q, n)
		}
	}

	// ---- Ramp: armed by the first push, walks 5 → 25 and promotes. Created
	// before ingestion so the push's generation change is observed.
	ramp, err := fleet.NewRamp(rt, "challenger", fleet.RampPolicy{
		Steps:      []uint32{5, 25},
		Hold:       time.Millisecond,
		MinSamples: 8,
		Promote:    true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// ---- Ingest: tail the log through the write-log, recompile every 30
	// sessions, push snapshots at the serving fleet over real HTTP.
	genBefore := rt.Arm(1).Slot().State().Gen
	baseBefore := rt.BaseDictHash()
	ing, err = NewIngester(Config{
		LogPath:           logPath,
		WALPath:           filepath.Join(dir, "ingest.wal"),
		ModelPath:         modelPath,
		BaseVocab:         champ.Dict().Strings(),
		Train:             trainCfg,
		SegmentRecords:    16,
		RecompileSessions: 30,
		Push: func(path string) error {
			resp, err := http.Post(srv.URL+"/v1/reload?model=challenger", "", nil)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("reload: HTTP %d", resp.StatusCode)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	drain(t, ing)

	st := ing.Status()
	if st.Recompiles == 0 || st.Pushes == 0 || st.PushErrors != 0 {
		t.Fatalf("ingestion made no pushes: %+v", st)
	}
	if gen := rt.Arm(1).Slot().State().Gen; gen <= genBefore {
		t.Fatalf("challenger generation = %d, want > %d after %d pushes", gen, genBefore, st.Pushes)
	}
	if rt.Arm(1).Weight() != 0 {
		t.Fatal("challenger has live weight before the ramp ticked")
	}
	if rt.BaseDictHash() != baseBefore {
		t.Fatal("interning base advanced before promotion — champion still owns it")
	}
	// The streamed challenger must extend the champion's dictionary (the
	// push went through the compatibility gate, not around it).
	if !rt.Arm(1).Slot().State().Rec.Dict().Extends(champ.Dict()) {
		t.Fatal("challenger dictionary does not extend the champion's")
	}

	// /v1/ingest exposes the loop's state through the serving process.
	var ingStatus Status
	resp, err := http.Get(srv.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ingStatus); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ingStatus.Sessions != st.Sessions || ingStatus.Pushes != st.Pushes {
		t.Fatalf("/v1/ingest = %+v, want %+v", ingStatus, st)
	}

	// ---- Ramp to promotion: serve champion-vocabulary traffic so the async
	// shadow scorer accumulates samples, tick the scheduler, and watch the
	// challenger walk 0 → 5 → 25 → champion.
	var feed []string
	for _, q := range champ.Dict().Strings() {
		feed = append(feed, q)
		if len(feed) == 32 {
			break
		}
	}
	sawLiveWeight := false
	deadline := time.Now().Add(15 * time.Second)
	var rampSt fleet.RampStatus
	for {
		for _, q := range feed {
			suggestCount(t, srv.URL, q)
		}
		rampSt = ramp.Tick(time.Now())
		if rampSt.Frozen {
			t.Fatalf("ramp froze: %s", rampSt.Reason)
		}
		if w := rt.Arm(1).Weight(); w > 0 {
			sawLiveWeight = true
		}
		if rampSt.Promotions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ramp never promoted: %+v, shadow samples %d", rampSt, shadowSamples(rt))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawLiveWeight {
		t.Fatal("challenger was promoted without ever holding live weight mid-ramp")
	}

	// ---- After promotion: the champion slot carries the streamed model, the
	// interning base advanced, and the new vocabulary is servable. At least
	// one probe must yield actual suggestions (its session was ingested), and
	// every probe must now intern.
	if rt.BaseDictHash() == baseBefore {
		t.Fatal("interning base did not advance on promotion")
	}
	served := 0
	for _, q := range probes {
		if suggestCount(t, srv.URL, q) > 0 {
			served++
		}
	}
	if served == 0 {
		t.Fatalf("no probe out of %d served suggestions after promotion", len(probes))
	}
	t.Logf("loop closed: %d sessions ingested, %d pushes, ramp %+v, %d/%d new-vocabulary probes served",
		st.Sessions, st.Pushes, rampSt, served, len(probes))
}

// writeLiveTraffic streams n generated sessions into w as logfmt records and
// returns the labeled ground truth and byte count.
func writeLiveTraffic(t *testing.T, g *loggen.Generator, f *os.File, n int) ([]loggen.LabeledSession, int64) {
	t.Helper()
	wr := logfmt.NewWriter(f)
	sessions, err := g.GenerateRecords(n, wr.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	off, err := f.Seek(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return sessions, off
}

// suggestCount GETs /suggest?q=<q> and returns how many suggestions came back.
func suggestCount(t *testing.T, base, q string) int {
	t.Helper()
	resp, err := http.Get(base + "/suggest?q=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr serve.SuggestResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("suggest %q: %v", q, err)
	}
	return len(sr.Suggestions)
}

func shadowSamples(rt *fleet.Router) uint64 {
	if s, ok := rt.ShadowStatsFor("challenger"); ok {
		return s.Samples
	}
	return 0
}
