// Package stream closes the training side of the serving loop: it tails a
// growing query log, folds completed sessions into an incremental count
// store (core.Incremental), persists every step in a durable append-only
// write-log first (the Bayou discipline: tentative entries, committed when a
// recompile lands, replayed after a crash), recompiles snapshots in the
// background and pushes them at the fleet as weight-0 shadow challengers.
// The companion fleet.Ramp then walks the challenger's weight up on its
// shadow divergence metrics. See ARCHITECTURE.md §7 for the byte format and
// the tentative/committed state machine.
package stream

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/session"
)

// Write-log record types. A well-formed log is one header record followed by
// any interleaving of segment and commit records.
const (
	recHeader  byte = 1 // WALHeader: identifies the base vocabulary and gap
	recSegment byte = 2 // SegmentEntry: tentative — counts applied, model not yet
	recCommit  byte = 3 // CommitEntry: segments <= Seq are in a saved model
)

// maxWALRecord bounds one record's payload; anything larger is corruption,
// not data (a segment entry is a few KB).
const maxWALRecord = 64 << 20

// ErrWALCorrupt reports an unreadable write-log prefix — the header record
// itself is missing or damaged, so nothing can be replayed. A damaged suffix
// is not an error: it is truncated as a torn tail (crash mid-append).
var ErrWALCorrupt = errors.New("stream: write-log corrupt")

// ErrWALMismatch reports a write-log whose header does not match the
// ingester's configuration — it belongs to a different base model or gap and
// replaying it would corrupt the counts.
var ErrWALMismatch = errors.New("stream: write-log belongs to a different configuration")

// WALHeader is the first record of every write-log: the fingerprint of the
// base vocabulary counts are built over, and the session gap. Replay refuses
// a log written under a different configuration.
type WALHeader struct {
	BaseDictHash uint64 `json:"base_dict_hash"`
	GapNanos     int64  `json:"gap_nanos"`
}

// SegmentEntry is one tentative ingestion step, appended BEFORE its sessions
// are applied to the in-memory counts (write-ahead): replaying entries in
// order reproduces the exact count table and trainer dictionary. Completed
// carries the sessions closed in this step as query strings in completion
// order (string, not ID, so the entry is self-contained); Open checkpoints
// the still-in-flight sessions so a crash between entries loses nothing;
// LogOffset is the source-log byte offset after the records of this step —
// the resume point. Latest is the event-time watermark (the latest record
// timestamp seen so far): expiry decisions depend on it, so it must survive a
// crash exactly rather than be under-approximated from the open sessions.
type SegmentEntry struct {
	Seq       uint64                     `json:"seq"`
	LogOffset int64                      `json:"log_offset"`
	Latest    time.Time                  `json:"latest"`
	Completed [][]string                 `json:"completed,omitempty"`
	Open      []session.OpenSessionState `json:"open,omitempty"`
}

// CommitEntry marks every segment with Seq' <= Seq as committed: a model
// snapshot containing exactly those sessions was durably saved at ModelPath.
// Counts are not re-applied on replay commits — the commit's meaning is "a
// recompile landed", not "more data".
type CommitEntry struct {
	Seq       uint64 `json:"seq"`
	ModelPath string `json:"model_path"`
	Sessions  uint64 `json:"sessions"` // total sessions in the committed snapshot
}

// WALState is what replaying a write-log yields: the entries to re-apply and
// the positions to resume from.
type WALState struct {
	Header       WALHeader
	Segments     []SegmentEntry // in append order; re-apply Completed to the counts
	LastSeq      uint64         // highest segment seq (0 = none)
	CommittedSeq uint64         // highest committed segment seq (0 = none)
	LastCommit   CommitEntry    // zero value when CommittedSeq == 0
	LogOffset    int64          // source-log resume offset (0 = start)
	Latest       time.Time      // event-time watermark at the last segment
	Open         []session.OpenSessionState
	Truncated    int64 // torn-tail bytes discarded on open (0 = clean shutdown)
}

// WAL is the append side of the write-log. Appends are sequential writes to
// an O_APPEND-opened file; commits additionally fsync, so a committed
// recompile survives power loss while tentative segments ride on the OS
// buffer (a lost tentative suffix replays as "re-read the source log from the
// last surviving offset" — the source log is the ground truth).
type WAL struct {
	f    *os.File
	path string
	buf  []byte
}

// frame layout: [1 type][4 payload len LE][4 CRC32(payload) LE][payload].
const frameHead = 9

// OpenWAL opens (or creates) the write-log at path and replays it. A fresh
// file gets the header record written immediately. An existing file must
// carry a matching header (ErrWALMismatch otherwise); a damaged or
// half-written suffix — a crash mid-append — is truncated away and reported
// in WALState.Truncated. The returned WAL is positioned for appending.
func OpenWAL(path string, hdr WALHeader) (*WAL, *WALState, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: opening write-log: %w", err)
	}
	w := &WAL{f: f, path: path}
	st, err := w.replay(hdr)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, st, nil
}

// replay scans the whole file, validates the header, collects entries and
// truncates any torn tail. On return the file offset is at the end.
func (w *WAL) replay(want WALHeader) (*WALState, error) {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return nil, fmt.Errorf("stream: reading write-log: %w", err)
	}
	st := &WALState{Header: want}
	if len(data) == 0 {
		// Fresh log: the header record goes first, before anything else.
		if err := w.append(recHeader, want); err != nil {
			return nil, err
		}
		return st, nil
	}

	off := 0
	sawHeader := false
	for off < len(data) {
		typ, payload, n, ok := readFrame(data[off:])
		if !ok {
			break // torn tail: truncate below
		}
		if !sawHeader {
			if typ != recHeader {
				return nil, fmt.Errorf("%w: first record type %d, want header", ErrWALCorrupt, typ)
			}
			var got WALHeader
			if err := json.Unmarshal(payload, &got); err != nil {
				return nil, fmt.Errorf("%w: header: %v", ErrWALCorrupt, err)
			}
			if got != want {
				return nil, fmt.Errorf("%w: header %+v, want %+v", ErrWALMismatch, got, want)
			}
			sawHeader = true
			off += n
			continue
		}
		switch typ {
		case recSegment:
			var e SegmentEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				return nil, fmt.Errorf("%w: segment at byte %d: %v", ErrWALCorrupt, off, err)
			}
			st.Segments = append(st.Segments, e)
			st.LastSeq = e.Seq
			st.LogOffset = e.LogOffset
			st.Latest = e.Latest
			st.Open = e.Open
		case recCommit:
			var e CommitEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				return nil, fmt.Errorf("%w: commit at byte %d: %v", ErrWALCorrupt, off, err)
			}
			st.CommittedSeq = e.Seq
			st.LastCommit = e
		default:
			return nil, fmt.Errorf("%w: unknown record type %d at byte %d", ErrWALCorrupt, typ, off)
		}
		off += n
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: no intact header record", ErrWALCorrupt)
	}
	if off < len(data) {
		// Torn tail (crash mid-append): discard the unreadable suffix so the
		// log is a clean prefix of intact records again.
		st.Truncated = int64(len(data) - off)
		if err := w.f.Truncate(int64(off)); err != nil {
			return nil, fmt.Errorf("stream: truncating torn write-log tail: %w", err)
		}
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return nil, fmt.Errorf("stream: seeking write-log end: %w", err)
	}
	return st, nil
}

// readFrame decodes one record at the head of data. ok is false when data
// holds no complete, checksum-intact record (torn tail).
func readFrame(data []byte) (typ byte, payload []byte, n int, ok bool) {
	if len(data) < frameHead {
		return 0, nil, 0, false
	}
	typ = data[0]
	plen := binary.LittleEndian.Uint32(data[1:5])
	crc := binary.LittleEndian.Uint32(data[5:9])
	if plen > maxWALRecord || frameHead+int(plen) > len(data) {
		return 0, nil, 0, false
	}
	payload = data[frameHead : frameHead+int(plen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, 0, false
	}
	return typ, payload, frameHead + int(plen), true
}

// append marshals v and writes one framed record.
func (w *WAL) append(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("stream: encoding write-log record: %w", err)
	}
	if len(payload) > maxWALRecord {
		return fmt.Errorf("stream: write-log record %d bytes exceeds limit", len(payload))
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, typ)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("stream: appending write-log record: %w", err)
	}
	return nil
}

// AppendSegment appends one tentative segment entry. Call BEFORE applying the
// entry's sessions to the in-memory counts — write-ahead, so a crash between
// the two replays the entry instead of losing it.
func (w *WAL) AppendSegment(e SegmentEntry) error { return w.append(recSegment, e) }

// AppendCommit appends a commit record and fsyncs: the committed snapshot and
// the fact of its existence survive power loss together.
func (w *WAL) AppendCommit(e CommitEntry) error {
	if err := w.append(recCommit, e); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("stream: syncing write-log commit: %w", err)
	}
	return nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close releases the underlying file.
func (w *WAL) Close() error { return w.f.Close() }
