package stream

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/session"
)

var testHeader = WALHeader{BaseDictHash: 0xdeadbeef, GapNanos: int64(30 * time.Minute)}

func testWAL(t *testing.T) (string, *WAL, *WALState) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, st, err := OpenWAL(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	return path, w, st
}

func seg(seq uint64, off int64, completed ...[]string) SegmentEntry {
	return SegmentEntry{
		Seq:       seq,
		LogOffset: off,
		Latest:    time.Date(2026, 3, 1, 12, 0, int(seq), 0, time.UTC),
		Completed: completed,
		Open: []session.OpenSessionState{{
			Machine: "m1",
			Last:    time.Date(2026, 3, 1, 12, 0, int(seq), 0, time.UTC),
			Queries: []string{"open q"},
		}},
	}
}

// TestWALRoundTrip: appended segments and commits replay back exactly, with
// the resume positions tracking the latest entries.
func TestWALRoundTrip(t *testing.T) {
	path, w, st := testWAL(t)
	if st.LastSeq != 0 || st.CommittedSeq != 0 || len(st.Segments) != 0 {
		t.Fatalf("fresh WAL state = %+v", st)
	}

	entries := []SegmentEntry{
		seg(1, 100, []string{"free mp3", "free music"}),
		seg(2, 250),
		seg(3, 400, []string{"napster"}, []string{"kazaa", "kazaa lite"}),
	}
	for _, e := range entries[:2] {
		if err := w.AppendSegment(e); err != nil {
			t.Fatal(err)
		}
	}
	commit := CommitEntry{Seq: 2, ModelPath: "model.bin", Sessions: 1}
	if err := w.AppendCommit(commit); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSegment(entries[2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st2, err := OpenWAL(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(st2.Segments, entries) {
		t.Fatalf("replayed segments:\n got %+v\nwant %+v", st2.Segments, entries)
	}
	if st2.LastSeq != 3 || st2.CommittedSeq != 2 || st2.LogOffset != 400 || st2.Truncated != 0 {
		t.Fatalf("replayed state = %+v", st2)
	}
	if st2.LastCommit != commit {
		t.Fatalf("replayed commit = %+v, want %+v", st2.LastCommit, commit)
	}
	if !st2.Latest.Equal(entries[2].Latest) {
		t.Fatalf("replayed watermark = %v, want %v", st2.Latest, entries[2].Latest)
	}
	if len(st2.Open) != 1 || st2.Open[0].Machine != "m1" {
		t.Fatalf("replayed open sessions = %+v", st2.Open)
	}
}

// TestWALTornTailTruncation: cutting the file at EVERY byte position inside
// the last record must replay the intact prefix and truncate the rest — the
// crash-mid-append recovery path, exhaustively.
func TestWALTornTailTruncation(t *testing.T) {
	path, w, _ := testWAL(t)
	if err := w.AppendSegment(seg(1, 100, []string{"free mp3"})); err != nil {
		t.Fatal(err)
	}
	data1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := int64(len(data1)) // header + segment 1
	if err := w.AppendSegment(seg(2, 200, []string{"napster"})); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intact + 1; cut < int64(len(full)); cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, st, err := OpenWAL(torn, testHeader)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(st.Segments) != 1 || st.LastSeq != 1 || st.LogOffset != 100 {
			t.Fatalf("cut at %d: replayed %+v", cut, st)
		}
		if st.Truncated != cut-intact {
			t.Fatalf("cut at %d: truncated %d bytes, want %d", cut, st.Truncated, cut-intact)
		}
		// The torn bytes are physically gone: appending a fresh record and
		// replaying again yields seg 1 + the new record, no corruption.
		if err := w2.AppendSegment(seg(2, 300)); err != nil {
			t.Fatalf("cut at %d: append after truncate: %v", cut, err)
		}
		w2.Close()
		w3, st3, err := OpenWAL(torn, testHeader)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if len(st3.Segments) != 2 || st3.LogOffset != 300 || st3.Truncated != 0 {
			t.Fatalf("cut at %d: post-repair replay %+v", cut, st3)
		}
		w3.Close()
	}
}

// TestWALHeaderMismatch: a log written under a different base dictionary or
// gap is refused, not silently replayed.
func TestWALHeaderMismatch(t *testing.T) {
	path, w, _ := testWAL(t)
	w.Close()

	for _, hdr := range []WALHeader{
		{BaseDictHash: testHeader.BaseDictHash + 1, GapNanos: testHeader.GapNanos},
		{BaseDictHash: testHeader.BaseDictHash, GapNanos: testHeader.GapNanos * 2},
	} {
		if _, _, err := OpenWAL(path, hdr); !errors.Is(err, ErrWALMismatch) {
			t.Fatalf("OpenWAL with header %+v: err = %v, want ErrWALMismatch", hdr, err)
		}
	}
}

// TestWALCorruptHeader: damage inside the first record is unrecoverable — no
// torn-tail truncation can save a log whose header is gone.
func TestWALCorruptHeader(t *testing.T) {
	path, w, _ := testWAL(t)
	if err := w.AppendSegment(seg(1, 100)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHead+2] ^= 0xff // flip a byte inside the header payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, testHeader); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("corrupt header: err = %v, want ErrWALCorrupt", err)
	}
}

// TestWALCommitIsDurabilityBarrier: a commit record fsyncs, so a torn tail
// can never reach back past the last commit.
func TestWALCommitIsDurabilityBarrier(t *testing.T) {
	path, w, _ := testWAL(t)
	if err := w.AppendSegment(seg(1, 100, []string{"free mp3"})); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCommit(CommitEntry{Seq: 1, ModelPath: "m.bin", Sessions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSegment(seg(2, 200)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut inside the post-commit segment: the commit must survive replay.
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, st, err := OpenWAL(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st.CommittedSeq != 1 || st.LastCommit.ModelPath != "m.bin" {
		t.Fatalf("post-commit torn tail lost the commit: %+v", st)
	}
	if st.LastSeq != 1 || st.Truncated == 0 {
		t.Fatalf("torn segment not truncated: %+v", st)
	}
}
