package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/logfmt"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/session"
)

// Config configures an Ingester.
type Config struct {
	// LogPath is the growing source query log (logfmt records) to tail.
	LogPath string
	// WALPath is the durable write-log; created if absent, replayed if
	// present.
	WALPath string
	// ModelPath is where recompiled snapshots are atomically saved.
	ModelPath string
	// BaseVocab seeds the trainer dictionary — pass the champion model's
	// Dict().Strings() so every snapshot's dictionary extends the champion's
	// (the fleet's reload-compatibility requirement). May be nil.
	BaseVocab []string
	// Train configures snapshot training. Train.SessionGap doubles as the
	// segmentation gap (0 = the 30-minute rule).
	Train core.Config
	// SegmentRecords caps the records folded into one write-log segment
	// entry; <= 0 selects 256. A smaller cap bounds replay-loss (the
	// tentative window), a larger one amortises the append.
	SegmentRecords int
	// RecompileSessions triggers a background recompile once this many new
	// sessions accumulated since the last one; <= 0 selects 64.
	RecompileSessions uint64
	// Push, when set, is invoked after each committed recompile with the
	// snapshot path — cmd/ingest POSTs /v1/reload?model=<challenger> here.
	// A push failure is recorded and retried after the next recompile; it
	// does not stop ingestion.
	Push func(modelPath string) error
	// Obs, when set, receives the loop's histograms (ingest_segment_us,
	// ingest_recompile_us) and progress counters for Prometheus exposition.
	Obs *obs.Registry
	// Tracer, when set, retains one forced trace per productive Step —
	// fold / wal-append / recompile / push child spans — so slow ingest
	// steps are inspectable the same way slow requests are. Idle steps
	// (no new records) are abandoned, not retained.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.SegmentRecords <= 0 {
		c.SegmentRecords = 256
	}
	if c.RecompileSessions == 0 {
		c.RecompileSessions = 64
	}
	if c.Train.SessionGap <= 0 {
		c.Train.SessionGap = session.DefaultGap
	}
	return c
}

// Status is one observation of the ingestion loop, served by /v1/ingest.
type Status struct {
	LogOffset     int64  `json:"log_offset"`      // bytes of source log durably consumed
	Segments      uint64 `json:"segments"`        // write-log segment entries appended
	CommittedSeq  uint64 `json:"committed_seq"`   // highest segment covered by a recompile
	Sessions      uint64 `json:"sessions"`        // completed sessions counted
	OpenSessions  int    `json:"open_sessions"`   // in-flight sessions
	Vocab         int    `json:"vocab"`           // trainer dictionary size
	Recompiles    uint64 `json:"recompiles"`      // snapshots trained and saved
	Pushes        uint64 `json:"pushes"`          // successful fleet pushes
	PushErrors    uint64 `json:"push_errors"`     // failed fleet pushes
	Replayed      uint64 `json:"replayed"`        // segment entries replayed at startup
	TornTailBytes int64  `json:"torn_tail_bytes"` // write-log bytes discarded at startup
	LastModelPath string `json:"last_model_path,omitempty"`
	LastError     string `json:"last_error,omitempty"`
}

// Ingester is the streaming ingestion loop: tail the source log, segment into
// sessions, write-ahead-log every step, fold counts into a core.Incremental,
// recompile and push on a session-count trigger.
//
// The loop is single-threaded by design — Step performs one bounded unit of
// work and Run drives it from one goroutine — but Status may be read from any
// goroutine (the /v1/ingest endpoint).
//
// Determinism contract (what makes crash recovery exact): the segmenter
// interns into a private scratch dictionary that is never used for training;
// completed sessions cross into the trainer as strings, in completion order,
// only after their segment entry is durably appended. Replaying the write-log
// therefore reproduces the trainer's dictionary and counts byte-for-byte, and
// the source log is re-read only past the last recorded offset — no session
// is double-counted or lost.
type Ingester struct {
	cfg Config
	wal *WAL
	inc *core.Incremental

	src     *os.File
	rd      *logfmt.Reader
	seg     *session.Segmenter
	segDict *query.Dict // segmenter scratch dict — never trains
	latest  time.Time   // event time: latest record timestamp seen

	seq                  uint64 // last appended segment seq
	committed            uint64
	sessionsSinceCompile uint64
	baseOffset           int64 // source-log offset already consumed at startup

	tracer        *obs.Tracer    // nil when tracing is off
	histSegment   *obs.Histogram // productive Step durations
	histRecompile *obs.Histogram // recompile+commit durations

	mu     sync.Mutex // guards the Status snapshot fields below
	status Status
}

// NewIngester opens (replaying if present) the write-log, restores the
// in-flight session state, seeks the source log to the resume offset and
// returns a loop ready to Step. The source log file must exist (create it
// empty first when generating traffic into it).
func NewIngester(cfg Config) (*Ingester, error) {
	cfg = cfg.withDefaults()

	baseDict := query.NewDict()
	for _, q := range cfg.BaseVocab {
		baseDict.Intern(q)
	}
	wal, st, err := OpenWAL(cfg.WALPath, WALHeader{
		BaseDictHash: baseDict.Hash(),
		GapNanos:     int64(cfg.Train.SessionGap),
	})
	if err != nil {
		return nil, err
	}

	ing := &Ingester{
		cfg:       cfg,
		wal:       wal,
		inc:       core.NewIncremental(cfg.BaseVocab, cfg.Train),
		segDict:   query.NewDict(),
		seq:       st.LastSeq,
		committed: st.CommittedSeq,
	}
	ing.seg = session.NewSegmenter(ing.segDict, cfg.Train.SessionGap)

	// Replay: re-apply every segment entry's completed sessions in append
	// order (reproducing the exact trainer dictionary), restore the open
	// sessions of the latest entry, and remember how much source log is
	// already consumed.
	var replayed uint64
	for _, e := range st.Segments {
		ing.inc.AddStrings(e.Completed)
		replayed++
	}
	ing.seg.RestoreOpen(st.Open)
	ing.latest = st.Latest
	ing.baseOffset = st.LogOffset
	ing.sessionsSinceCompile = ing.inc.Sessions() - st.LastCommit.Sessions

	src, err := os.Open(cfg.LogPath)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("stream: opening source log: %w", err)
	}
	if _, err := src.Seek(st.LogOffset, io.SeekStart); err != nil {
		src.Close()
		wal.Close()
		return nil, fmt.Errorf("stream: seeking source log to %d: %w", st.LogOffset, err)
	}
	ing.src = src
	ing.rd = logfmt.NewReader(src)

	ing.tracer = cfg.Tracer
	if cfg.Obs != nil {
		ing.histSegment = cfg.Obs.Histogram("ingest_segment_us")
		ing.histRecompile = cfg.Obs.Histogram("ingest_recompile_us")
		cfg.Obs.CounterFunc("ingest_segments_total", func() uint64 { return ing.Status().Segments })
		cfg.Obs.CounterFunc("ingest_sessions_total", func() uint64 { return ing.Status().Sessions })
		cfg.Obs.CounterFunc("ingest_recompiles_total", func() uint64 { return ing.Status().Recompiles })
		cfg.Obs.CounterFunc("ingest_pushes_total", func() uint64 { return ing.Status().Pushes })
		cfg.Obs.CounterFunc("ingest_push_errors_total", func() uint64 { return ing.Status().PushErrors })
		cfg.Obs.GaugeFunc("ingest_vocab", func() float64 { return float64(ing.Status().Vocab) })
		cfg.Obs.GaugeFunc("ingest_open_sessions", func() float64 { return float64(ing.Status().OpenSessions) })
		cfg.Obs.GaugeFunc("ingest_log_offset_bytes", func() float64 { return float64(ing.Status().LogOffset) })
	}

	ing.mu.Lock()
	ing.status = Status{
		LogOffset:     st.LogOffset,
		Segments:      st.LastSeq,
		CommittedSeq:  st.CommittedSeq,
		Sessions:      ing.inc.Sessions(),
		OpenSessions:  ing.seg.OpenCount(),
		Vocab:         ing.inc.VocabSize(),
		Replayed:      replayed,
		TornTailBytes: st.Truncated,
		LastModelPath: st.LastCommit.ModelPath,
	}
	ing.mu.Unlock()
	return ing, nil
}

// Incremental exposes the trainer's count store (tests diff canonical count
// dumps through it).
func (ing *Ingester) Incremental() *core.Incremental { return ing.inc }

// Status returns a consistent snapshot of the loop's counters.
func (ing *Ingester) Status() Status {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.status
}

func (ing *Ingester) setError(err error) {
	ing.mu.Lock()
	ing.status.LastError = err.Error()
	ing.mu.Unlock()
}

// Step performs one bounded unit of work: read up to SegmentRecords records
// from the tail, close expired sessions, append one tentative segment entry
// and fold it into the counts, then recompile/commit/push if the session
// trigger fired. It returns progressed=false when the tail had no complete
// new records (sleep and retry). A torn final line in the source log is the
// retryable "writer mid-append" state, not an error; an oversized line is
// fatal (corrupt source log).
func (ing *Ingester) Step() (progressed bool, err error) {
	// A trace per productive step: the loop is single-threaded, so the trace
	// is mutated only here, satisfying the Trace goroutine contract. Idle
	// polls are abandoned — retaining thousands of empty traces would flush
	// the interesting ones out of the ring.
	var tr *obs.Trace
	if ing.tracer != nil {
		tr = ing.tracer.Start()
	}
	stepStart := time.Now()
	read := 0
	for read < ing.cfg.SegmentRecords {
		rec, rerr := ing.rd.Read()
		if rerr != nil {
			if rerr == io.EOF || errors.Is(rerr, logfmt.ErrTornLine) {
				break // caught up with the writer (possibly mid-line)
			}
			ing.setError(rerr)
			if tr != nil {
				tr.Force()
				ing.tracer.Finish(tr, true)
			}
			return false, fmt.Errorf("stream: source log: %w", rerr)
		}
		ing.seg.Add(rec)
		if rec.Time.After(ing.latest) {
			ing.latest = rec.Time
		}
		read++
	}
	if read == 0 {
		if tr != nil {
			ing.tracer.Abandon(tr)
		}
		return false, nil
	}
	if tr != nil {
		tr.Record("read", 0, time.Since(stepStart).Microseconds(), obs.NoShard, "ok")
	}

	// Event-time expiry: sessions idle past the gap at the latest observed
	// timestamp are complete. Deterministic on replay, unlike wall clock.
	ing.seg.Expire(ing.latest)
	completed := ing.takeCompletedStrings()

	// Write-ahead: the segment entry is durable before the counts move.
	ing.seq++
	entry := SegmentEntry{
		Seq:       ing.seq,
		LogOffset: ing.baseOffset + ing.rd.Offset(),
		Latest:    ing.latest,
		Completed: completed,
		Open:      ing.seg.OpenState(),
	}
	walStart := time.Now()
	if err := ing.wal.AppendSegment(entry); err != nil {
		ing.seq--
		ing.setError(err)
		if tr != nil {
			tr.Record("wal-append", walStart.Sub(stepStart).Microseconds(),
				time.Since(walStart).Microseconds(), obs.NoShard, "error")
			tr.Force()
			ing.tracer.Finish(tr, true)
		}
		return false, err
	}
	if tr != nil {
		tr.Record("wal-append", walStart.Sub(stepStart).Microseconds(),
			time.Since(walStart).Microseconds(), obs.NoShard, "ok")
	}
	foldStart := time.Now()
	ing.inc.AddStrings(completed)
	ing.sessionsSinceCompile += uint64(len(completed))
	if tr != nil {
		tr.Record("fold", foldStart.Sub(stepStart).Microseconds(),
			time.Since(foldStart).Microseconds(), obs.NoShard, "ok")
	}

	ing.mu.Lock()
	ing.status.LogOffset = entry.LogOffset
	ing.status.Segments = ing.seq
	ing.status.Sessions = ing.inc.Sessions()
	ing.status.OpenSessions = ing.seg.OpenCount()
	ing.status.Vocab = ing.inc.VocabSize()
	ing.mu.Unlock()

	if ing.sessionsSinceCompile >= ing.cfg.RecompileSessions {
		if err := ing.recompile(tr, stepStart); err != nil {
			ing.setError(err)
			if ing.histSegment != nil {
				ing.histSegment.Record(time.Since(stepStart).Microseconds())
			}
			if tr != nil {
				tr.Force()
				ing.tracer.Finish(tr, true)
			}
			return true, err
		}
	}
	if ing.histSegment != nil {
		ing.histSegment.Record(time.Since(stepStart).Microseconds())
	}
	if tr != nil {
		tr.Force()
		ing.tracer.Finish(tr, false)
	}
	return true, nil
}

// takeCompletedStrings drains the segmenter's completed sessions, converting
// scratch-dictionary IDs back to strings (the trainer-facing, self-contained
// form the write-log records).
func (ing *Ingester) takeCompletedStrings() [][]string {
	done := ing.seg.TakeCompleted()
	if len(done) == 0 {
		return nil
	}
	out := make([][]string, len(done))
	for i, s := range done {
		qs := make([]string, len(s))
		for j, id := range s {
			qs[j] = ing.segDict.String(id)
		}
		out[i] = qs
	}
	return out
}

// recompile snapshots the counts into a saved model, appends the commit
// record (marking every appended segment committed) and pushes the snapshot
// at the fleet. Ordering matters for crash safety: model save, then commit
// append (fsynced), then push — a crash between any two replays into the same
// state or a benign re-push. tr (nil when tracing is off) receives
// "recompile" and "push" child spans offset against stepStart, the
// enclosing Step trace's origin.
func (ing *Ingester) recompile(tr *obs.Trace, stepStart time.Time) error {
	compileStart := time.Now()
	record := func(name string, from time.Time, outcome string) {
		if tr != nil {
			tr.Record(name, from.Sub(stepStart).Microseconds(),
				time.Since(from).Microseconds(), obs.NoShard, outcome)
		}
	}
	if _, err := ing.inc.SnapshotTo(ing.cfg.ModelPath); err != nil {
		record("recompile", compileStart, "error")
		return err
	}
	commit := CommitEntry{Seq: ing.seq, ModelPath: ing.cfg.ModelPath, Sessions: ing.inc.Sessions()}
	if err := ing.wal.AppendCommit(commit); err != nil {
		record("recompile", compileStart, "error")
		return err
	}
	ing.committed = ing.seq
	ing.sessionsSinceCompile = 0
	record("recompile", compileStart, "ok")
	if ing.histRecompile != nil {
		ing.histRecompile.Record(time.Since(compileStart).Microseconds())
	}

	ing.mu.Lock()
	ing.status.CommittedSeq = ing.committed
	ing.status.Recompiles++
	ing.status.LastModelPath = ing.cfg.ModelPath
	ing.mu.Unlock()

	if ing.cfg.Push != nil {
		pushStart := time.Now()
		if err := ing.cfg.Push(ing.cfg.ModelPath); err != nil {
			record("push", pushStart, "error")
			ing.mu.Lock()
			ing.status.PushErrors++
			ing.status.LastError = "push: " + err.Error()
			ing.mu.Unlock()
			return nil // push failures are retried after the next recompile
		}
		record("push", pushStart, "ok")
		ing.mu.Lock()
		ing.status.Pushes++
		ing.mu.Unlock()
	}
	return nil
}

// Run drives Step until the context ends, sleeping poll between idle checks
// of the tail. Step errors other than source-log corruption are transient
// (disk full on the WAL, say) and retried after poll; corruption stops the
// loop.
func (ing *Ingester) Run(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		progressed, err := ing.Step()
		if err != nil && errors.Is(err, logfmt.ErrOversizedLine) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !progressed || err != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
		}
	}
}

// Close releases the write-log and source log files. The Ingester must not be
// stepped afterwards.
func (ing *Ingester) Close() error {
	err1 := ing.wal.Close()
	err2 := ing.src.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
