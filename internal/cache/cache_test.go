package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

func TestGetPutAndCounters(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 10) // update
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("updated Get(a) = %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// A capacity of 1 entry per shard lets us exercise eviction
	// deterministically by hammering keys that land in the same shard.
	c := New[int](shardCount) // 1 per shard
	s := c.shard("x")
	// Find three keys that map to the same shard as "x".
	keys := []string{"x"}
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == s {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1) // evicts keys[0]
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("LRU entry not evicted")
	}
	if v, ok := c.Get(keys[1]); !ok || v != 1 {
		t.Fatal("fresh entry missing")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestLRUPromotionOnGet(t *testing.T) {
	c := New[int](shardCount * 2) // 2 per shard
	s := c.shard("x")
	keys := []string{"x"}
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("p%d", i)
		if c.shard(k) == s {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0)
	c.Put(keys[1], 1)
	c.Get(keys[0])    // promote oldest
	c.Put(keys[2], 2) // should evict keys[1], not keys[0]
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("promoted entry was evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("unpromoted entry survived")
	}
}

func TestPurge(t *testing.T) {
	c := New[string](128)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), "v")
	}
	if c.Len() != 50 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("entry survived purge")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("impossible value")
				}
				if i%50 == 0 && g == 0 {
					c.Purge()
				}
				_ = c.Len()
				_ = c.Stats()
			}
		}(g)
	}
	wg.Wait()
}

func testRecommender(t testing.TB) core.Recommender {
	t.Helper()
	d := query.NewDict()
	a, b, c := d.Intern("o2"), d.Intern("o2 mobile"), d.Intern("o2 mobile phones")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b, c})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

// TestSuggestCacheEquivalence: cached answers must be identical to what the
// recommender computes directly, on hit and on miss.
func TestSuggestCacheEquivalence(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(128)
	ctx := []string{"o2"}
	want := core.Recommend(rec, ctx, 5)

	miss := sc.Recommend(1, rec, ctx, 5)
	hit := sc.Recommend(1, rec, ctx, 5)
	for name, got := range map[string][]core.Suggestion{"miss": miss, "hit": hit} {
		if len(got) != len(want) {
			t.Fatalf("%s: %d suggestions, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: suggestion %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
	st := sc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestSuggestCacheKeying: distinct n, distinct contexts and distinct model
// generations must never share an entry; normalised spellings must.
func TestSuggestCacheKeying(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(128)

	sc.Recommend(1, rec, []string{"o2"}, 5)
	if got := sc.Recommend(1, rec, []string{"o2"}, 1); len(got) != 1 {
		t.Fatalf("n=1 after n=5 returned %d suggestions", len(got))
	}
	if h := sc.Stats().Hits; h != 0 {
		t.Fatalf("different n produced a hit (%d)", h)
	}
	// Normalised duplicate context: same interned IDs, so it must hit.
	sc.Recommend(1, rec, []string{"  O2 "}, 5)
	if h := sc.Stats().Hits; h != 1 {
		t.Fatalf("normalised duplicate missed (hits=%d)", h)
	}
	// New generation: same context must miss again.
	sc.Recommend(2, rec, []string{"o2"}, 5)
	if h := sc.Stats().Hits; h != 1 {
		t.Fatalf("new generation produced a stale hit (hits=%d)", h)
	}
}

func TestSuggestCacheEmptyContext(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(16)
	if got := sc.Recommend(1, rec, nil, 5); got != nil {
		t.Fatalf("empty context = %v", got)
	}
	if got := sc.Recommend(1, rec, []string{"never seen"}, 5); got != nil {
		t.Fatalf("unknown context = %v", got)
	}
}

func TestSuggestCacheConcurrent(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(64)
	want := core.Recommend(rec, []string{"o2"}, 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				got := sc.Recommend(1, rec, []string{"o2"}, 5)
				if len(got) != len(want) || got[0] != want[0] {
					t.Error("concurrent cached recommendation diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	st := sc.Stats()
	if st.Hits+st.Misses != 8*300 {
		t.Fatalf("lookup count = %d, want %d", st.Hits+st.Misses, 8*300)
	}
}

// TestSuggestCacheSlotIsolation: the slot dimension of the key must keep a
// fleet of models sharing one LRU from ever answering across slots, while
// repeated lookups within one slot still hit.
func TestSuggestCacheSlotIsolation(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(128)
	ctx := core.InternContext(rec.Dict(), []string{"o2"})

	a := sc.RecommendSlot(1, 1, rec, ctx, 5)
	if h := sc.Stats().Hits; h != 0 {
		t.Fatalf("first slot-1 lookup hit (%d)", h)
	}
	// Same slot, same generation: hit, and the shared slice comes back.
	b := sc.RecommendSlot(1, 1, rec, ctx, 5)
	if h := sc.Stats().Hits; h != 1 {
		t.Fatalf("slot-1 repeat missed (hits=%d)", h)
	}
	if &a[0] != &b[0] {
		t.Fatal("slot hit did not return the cached slice")
	}
	// Different slot, same (gen, ctx, n): must miss.
	sc.RecommendSlot(2, 1, rec, ctx, 5)
	if h := sc.Stats().Hits; h != 1 {
		t.Fatalf("slot 2 hit slot 1's entry (hits=%d)", h)
	}
	// Slot 0 is the slot-less methods' key space: RecommendInterned must hit
	// what RecommendSlot(0, ...) stored and vice versa.
	sc.RecommendSlot(0, 1, rec, ctx, 5)
	sc.RecommendInterned(1, rec, ctx, 5)
	if h := sc.Stats().Hits; h != 2 {
		t.Fatalf("slot-less lookup missed slot 0's entry (hits=%d)", h)
	}
	// Bumping only the slot's generation must invalidate only that slot.
	sc.RecommendSlot(1, 2, rec, ctx, 5)
	if h := sc.Stats().Hits; h != 2 {
		t.Fatalf("stale generation answered after slot bump (hits=%d)", h)
	}
}

// TestSuggestCacheBatchSlot: the pre-interned batch entry point must resolve
// hits from the slot's key space and score only the misses.
func TestSuggestCacheBatchSlot(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(128)
	ctxA := core.InternContext(rec.Dict(), []string{"o2"})
	ctxB := core.InternContext(rec.Dict(), []string{"o2", "o2 mobile"})

	warm := sc.RecommendSlot(3, 1, rec, ctxA, 5)
	out := make([][]core.Suggestion, 3)
	sc.RecommendBatchSlot(3, 1, rec, []query.Seq{ctxA, ctxB, nil}, []int{5, 5, 5}, out)
	if len(out[0]) == 0 || &out[0][0] != &warm[0] {
		t.Fatal("batch did not reuse the slot's cached entry")
	}
	if len(out[1]) == 0 {
		t.Fatal("batch miss produced no suggestions")
	}
	if out[2] != nil {
		t.Fatalf("empty context produced %v", out[2])
	}
	// The batch's miss must now be a hit for the single-context path.
	hit := sc.RecommendSlot(3, 1, rec, ctxB, 5)
	if &hit[0] != &out[1][0] {
		t.Fatal("batch miss was not inserted under the slot key")
	}
}
