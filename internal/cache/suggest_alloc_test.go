package cache

import (
	"testing"

	"repro/internal/core"
)

// TestSuggestCacheHitZeroAllocs pins the satellite property: a warm cache
// hit — key build, shard probe, LRU promotion — allocates nothing at all.
func TestSuggestCacheHitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless")
	}
	rec := testRecommender(t)
	sc := NewSuggestCache(128)
	ctx := []string{"o2", "o2 mobile"}
	sc.Recommend(1, rec, ctx, 5) // warm: populate entry + pool
	allocs := testing.AllocsPerRun(200, func() {
		if got := sc.Recommend(1, rec, ctx, 5); len(got) == 0 {
			t.Fatal("hit returned nothing")
		}
	})
	if allocs > 0.05 {
		t.Fatalf("cache hit allocates %.2f times per op, want 0", allocs)
	}

	ictx := core.InternContext(rec.Dict(), ctx)
	allocs = testing.AllocsPerRun(200, func() {
		if got := sc.RecommendInterned(1, rec, ictx, 5); len(got) == 0 {
			t.Fatal("interned hit returned nothing")
		}
	})
	if allocs > 0.05 {
		t.Fatalf("interned cache hit allocates %.2f times per op, want 0", allocs)
	}
}

// TestRecommendBatchEquivalence: the batched front must agree with the
// single-context front on hits, misses, unknown and empty contexts, and its
// entries must be shared with subsequent single lookups.
func TestRecommendBatchEquivalence(t *testing.T) {
	rec := testRecommender(t)
	sc := NewSuggestCache(128)
	contexts := [][]string{
		{"o2"},
		{"o2", "o2 mobile"},
		{"never seen"},
		{},
		{"o2"}, // duplicate of [0] with a different n
	}
	ns := []int{5, 1, 5, 5, 2}
	out := make([][]core.Suggestion, len(contexts))
	sc.RecommendBatch(1, rec, contexts, ns, out)
	for i := range contexts {
		want := core.RecommendIDs(rec, core.InternContext(rec.Dict(), contexts[i]), ns[i])
		if len(out[i]) != len(want) {
			t.Fatalf("item %d: batch %d suggestions, direct %d", i, len(out[i]), len(want))
		}
		for j := range want {
			if out[i][j] != want[j] {
				t.Fatalf("item %d rank %d: %+v vs %+v", i, j, out[i][j], want[j])
			}
		}
	}
	// The batch populated the cache: single lookups must now hit.
	st := sc.Stats()
	sc.Recommend(1, rec, []string{"o2"}, 5)
	if got := sc.Stats().Hits; got != st.Hits+1 {
		t.Fatalf("single lookup after batch missed (hits %d -> %d)", st.Hits, got)
	}
	// And a second identical batch is all hits.
	out2 := make([][]core.Suggestion, len(contexts))
	before := sc.Stats().Misses
	sc.RecommendBatch(1, rec, contexts, ns, out2)
	if got := sc.Stats().Misses; got != before {
		t.Fatalf("repeat batch missed (%d -> %d)", before, got)
	}
}
