// Package cache provides the serving layer's result cache: a sharded,
// mutex-striped LRU keyed on compact binary strings, sized for the
// read-heavy, highly skewed traffic of online query recommendation (the
// aggregated-session frequencies follow a power law — Fig. 6 — so a small
// cache absorbs most of the head).
//
// The generic Cache[V] is the mechanism; SuggestCache is the policy that
// fronts core.Recommender.Recommend with interned-context keys.
//
// Invariants the serving layer relies on:
//
//   - Keys embed the model generation (and suggestion count), so a hot
//     reload can never serve results computed against an old model; Purge
//     on swap only releases memory early.
//   - Cached suggestion slices are shared across callers and must be
//     treated as immutable.
//   - The hit path allocates nothing: GetBytes looks up by a pooled byte
//     key without materialising a string, which is what keeps the cached
//     /suggest path at 0 allocs/op.
//   - Shards are independently locked; concurrent readers of different
//     contexts never contend on one mutex.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// shardCount stripes the LRU across independently locked shards so
// concurrent readers on different contexts never contend. Must be a power
// of two.
const shardCount = 32

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// HitRate returns Hits / (Hits + Misses), 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded LRU from string keys to values of type V. All methods
// are safe for concurrent use. Values are returned as stored: callers that
// cache slices or pointers must treat them as immutable.
type Cache[V any] struct {
	shards    [shardCount]shard[V]
	capacity  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

type entry[V any] struct {
	key string
	val V
}

// New returns a Cache holding at most capacity entries overall (rounded up
// to a multiple of the shard count, minimum one entry per shard).
func New[V any](capacity int) *Cache[V] {
	perShard := (capacity + shardCount - 1) / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[V]{capacity: perShard * shardCount}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			items: make(map[string]*list.Element),
			order: list.New(),
			cap:   perShard,
		}
	}
	return c
}

// fnv1a hashes the key to pick a shard. Inlined (rather than hash/fnv) to
// keep the hot path allocation-free.
func fnv1a(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// fnv1aBytes is fnv1a over a byte-slice key; kept as a separate copy so both
// entry points stay inlinable (a generic or conversion-based version defeats
// either inlining or the no-alloc guarantee).
func fnv1aBytes(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

func (c *Cache[V]) shardBytes(key []byte) *shard[V] {
	return &c.shards[fnv1aBytes(key)&(shardCount-1)]
}

// Get returns the cached value for key, promoting it to most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*entry[V]).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// GetBytes is Get for a key held in a (typically pooled) byte slice. The
// conversion to string happens inside the map index expression, which the
// compiler compiles to an allocation-free lookup — this is what makes cache
// hits zero-allocation end to end. The key is not retained.
func (c *Cache[V]) GetBytes(key []byte) (V, bool) {
	s := c.shardBytes(key)
	s.mu.Lock()
	el, ok := s.items[string(key)]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*entry[V]).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores key -> v, evicting the shard's least recently used entry when
// the shard is full. Storing an existing key updates its value and promotes
// it.
func (c *Cache[V]) Put(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = v
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := false
	if s.order.Len() >= s.cap {
		back := s.order.Back()
		if back != nil {
			delete(s.items, back.Value.(*entry[V]).key)
			s.order.Remove(back)
			evicted = true
		}
	}
	s.items[key] = s.order.PushFront(&entry[V]{key: key, val: v})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached entries across all shards.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry. Counters are preserved: a purge (e.g. on model
// reload) is an operational event, not a statistics reset.
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Stats snapshots the effectiveness counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.capacity,
	}
}
