package cache

import (
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// SuggestCache fronts core.Recommender suggestions with a sharded LRU keyed
// on the interned context IDs (not the raw strings), the requested
// suggestion count, a caller-supplied model generation, and a slot
// identifier. Keying on IDs means spelling-normalised duplicates ("O2
// Mobile" vs "o2 mobile") share one entry, and the generation keeps entries
// computed against a hot-swapped old model from ever answering for the new
// one.
//
// The slot dimension lets a multi-model registry (internal/fleet) front all
// of its models with one cache: every slot carries its own generation
// counter, entries from different slots can never collide, and — because
// sticky routing sends each context to one slot — LRU capacity is shared in
// proportion to actual per-model traffic instead of being statically split.
// Single-model callers use the slot-less methods, which serve slot 0.
//
// Cached suggestion slices are shared between callers and must be treated
// as immutable.
type SuggestCache struct {
	lru *Cache[[]core.Suggestion]
	// bufs pools the per-request context/key scratch so the hot (hit) path
	// does not allocate.
	bufs sync.Pool
}

type suggestBuf struct {
	ctx query.Seq
	key []byte
}

// DefaultCapacity is the cache size used when callers pass a non-positive
// capacity.
const DefaultCapacity = 1 << 14

// NewSuggestCache returns a SuggestCache holding about capacity result
// entries (<= 0 selects DefaultCapacity).
func NewSuggestCache(capacity int) *SuggestCache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &SuggestCache{
		lru: New[[]core.Suggestion](capacity),
		bufs: sync.Pool{New: func() any {
			return &suggestBuf{ctx: make(query.Seq, 0, 16), key: make([]byte, 0, 64)}
		}},
	}
}

// Recommend answers context with up to n suggestions, consulting the cache
// before delegating to core.RecommendIDs. gen is the serving layer's model
// generation: bump it on every hot reload so stale entries can never match.
// Hits are allocation-free: the key is built in a pooled buffer and probed
// with the cache's byte-key lookup, never materialised as a string.
func (sc *SuggestCache) Recommend(gen uint64, rec core.Recommender, context []string, n int) []core.Suggestion {
	buf := sc.bufs.Get().(*suggestBuf)
	defer sc.putBuf(buf)
	buf.ctx = core.AppendContext(rec.Dict(), buf.ctx[:0], context)
	if len(buf.ctx) == 0 {
		return nil
	}
	out, _ := sc.recommendKeyed(0, gen, rec, buf, buf.ctx, n)
	return out
}

// RecommendInterned is Recommend for an already-interned context — the HTTP
// fast path, which interns once per request and reuses the IDs for both the
// cache key and the prediction.
func (sc *SuggestCache) RecommendInterned(gen uint64, rec core.Recommender, ctx query.Seq, n int) []core.Suggestion {
	out, _ := sc.RecommendSlotHit(0, gen, rec, ctx, n)
	return out
}

// RecommendInternedHit is RecommendInterned plus a hit flag, so the serving
// layer can attribute the request's latency to the cache-lookup stage (hit)
// or the predict-descent stage (miss) without a second key probe.
func (sc *SuggestCache) RecommendInternedHit(gen uint64, rec core.Recommender, ctx query.Seq, n int) ([]core.Suggestion, bool) {
	return sc.RecommendSlotHit(0, gen, rec, ctx, n)
}

// RecommendSlot is RecommendInterned inside a named registry slot: the slot
// ID joins the cache key, so a fleet of models shares one LRU without any
// cross-model key collisions. (gen is the slot's own generation counter.)
func (sc *SuggestCache) RecommendSlot(slot uint32, gen uint64, rec core.Recommender, ctx query.Seq, n int) []core.Suggestion {
	out, _ := sc.RecommendSlotHit(slot, gen, rec, ctx, n)
	return out
}

// RecommendSlotHit is RecommendSlot plus a hit flag (see
// RecommendInternedHit).
func (sc *SuggestCache) RecommendSlotHit(slot uint32, gen uint64, rec core.Recommender, ctx query.Seq, n int) ([]core.Suggestion, bool) {
	if len(ctx) == 0 {
		return nil, false
	}
	buf := sc.bufs.Get().(*suggestBuf)
	defer sc.putBuf(buf)
	return sc.recommendKeyed(slot, gen, rec, buf, ctx, n)
}

func (sc *SuggestCache) putBuf(buf *suggestBuf) {
	buf.ctx = buf.ctx[:0]
	buf.key = buf.key[:0]
	sc.bufs.Put(buf)
}

// recommendKeyed runs the keyed lookup-or-compute, reporting whether the
// answer came from the cache. The key string is only allocated on a miss,
// where it is retained by the LRU.
func (sc *SuggestCache) recommendKeyed(slot uint32, gen uint64, rec core.Recommender, buf *suggestBuf, ctx query.Seq, n int) ([]core.Suggestion, bool) {
	buf.key = appendSuggestKey(buf.key[:0], slot, gen, ctx, n)
	if v, ok := sc.lru.GetBytes(buf.key); ok {
		return v, true
	}
	out := core.RecommendIDs(rec, ctx, n)
	sc.lru.Put(string(buf.key), out)
	return out, false
}

// RecommendBatch answers every (contexts[i], ns[i]) pair into out[i] (which
// must be len(contexts) long). Hits and empty contexts are resolved from the
// cache exactly like Recommend; all misses are then scored through one
// shared-scratch batched trie descent (core.RecommendBatchIDs) and inserted.
func (sc *SuggestCache) RecommendBatch(gen uint64, rec core.Recommender, contexts [][]string, ns []int, out [][]core.Suggestion) {
	buf := sc.bufs.Get().(*suggestBuf)
	defer sc.putBuf(buf)
	var (
		missCtx []query.Seq
		missKey []string
		missN   []int
		missIdx []int
	)
	for i, context := range contexts {
		out[i] = nil
		buf.ctx = core.AppendContext(rec.Dict(), buf.ctx[:0], context)
		if len(buf.ctx) == 0 {
			continue
		}
		buf.key = appendSuggestKey(buf.key[:0], 0, gen, buf.ctx, ns[i])
		if v, ok := sc.lru.GetBytes(buf.key); ok {
			out[i] = v
			continue
		}
		missCtx = append(missCtx, buf.ctx.Clone())
		missKey = append(missKey, string(buf.key))
		missN = append(missN, ns[i])
		missIdx = append(missIdx, i)
	}
	if len(missCtx) == 0 {
		return
	}
	res := rec.RecommendBatchIDs(missCtx, missN)
	for j, i := range missIdx {
		out[i] = res[j]
		sc.lru.Put(missKey[j], res[j])
	}
}

// RecommendBatchSlot answers every (ctxs[i], ns[i]) pair into out[i] (which
// must be len(ctxs) long) inside one registry slot, for contexts that are
// already interned — the fleet batch path, which interns once with the
// router's shared base dictionary before routing each item to its arm. Hits
// come from the shared LRU under the slot's key space; all misses are scored
// through one batched trie descent against rec and inserted. ctxs entries
// may live in recycled buffers: the miss path clones before retaining.
func (sc *SuggestCache) RecommendBatchSlot(slot uint32, gen uint64, rec core.Recommender, ctxs []query.Seq, ns []int, out [][]core.Suggestion) {
	buf := sc.bufs.Get().(*suggestBuf)
	defer sc.putBuf(buf)
	var (
		missCtx []query.Seq
		missKey []string
		missN   []int
		missIdx []int
	)
	for i, ctx := range ctxs {
		out[i] = nil
		if len(ctx) == 0 {
			continue
		}
		buf.key = appendSuggestKey(buf.key[:0], slot, gen, ctx, ns[i])
		if v, ok := sc.lru.GetBytes(buf.key); ok {
			out[i] = v
			continue
		}
		missCtx = append(missCtx, ctx.Clone())
		missKey = append(missKey, string(buf.key))
		missN = append(missN, ns[i])
		missIdx = append(missIdx, i)
	}
	if len(missCtx) == 0 {
		return
	}
	res := rec.RecommendBatchIDs(missCtx, missN)
	for j, i := range missIdx {
		out[i] = res[j]
		sc.lru.Put(missKey[j], res[j])
	}
}

// appendSuggestKey encodes (slot, gen, n, ctx) into dst: 4 bytes of slot ID,
// 8 bytes of generation, 4 bytes of n, then 4 bytes per context ID (the
// Seq.Key layout). Every entry point shares this one layout, so keys from
// different (slot, generation) pairs can never alias.
func appendSuggestKey(dst []byte, slot uint32, gen uint64, ctx query.Seq, n int) []byte {
	dst = append(dst,
		byte(slot>>24), byte(slot>>16), byte(slot>>8), byte(slot),
		byte(gen>>56), byte(gen>>48), byte(gen>>40), byte(gen>>32),
		byte(gen>>24), byte(gen>>16), byte(gen>>8), byte(gen),
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	for _, q := range ctx {
		dst = append(dst, byte(q>>24), byte(q>>16), byte(q>>8), byte(q))
	}
	return dst
}

// Purge drops all entries (used after model hot reload to release the old
// generation's memory; correctness does not depend on it).
func (sc *SuggestCache) Purge() { sc.lru.Purge() }

// Stats snapshots hit/miss/eviction counters.
func (sc *SuggestCache) Stats() Stats { return sc.lru.Stats() }
