// Package session implements the paper's data-preparation pipeline
// (Sec. V.A): segmentation of raw logs into sessions by the 30-minute rule,
// aggregation of identical sessions across users, frequency-threshold data
// reduction, derivation of training contexts, ground-truth construction for
// the test window, and the summary statistics behind Table IV and
// Figs. 5–7.
package session

import (
	"io"
	"sort"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

// DefaultGap is the session-segmentation threshold: the paper adopts the
// 30-minute rule convention (White et al.; Jansen et al.).
const DefaultGap = 30 * time.Minute

// Segmenter groups a stream of raw log records into sessions. Records are
// keyed by machine ID; a new session starts whenever more than Gap elapses
// between the last activity (query or URL click) and the next query from the
// same machine.
type Segmenter struct {
	Gap  time.Duration
	Dict *query.Dict

	open map[string]*openSession
	done []query.Seq
}

type openSession struct {
	queries query.Seq
	last    time.Time // last activity: query submission or click
}

// NewSegmenter returns a Segmenter interning queries into dict. A zero Gap
// defaults to the 30-minute rule.
func NewSegmenter(dict *query.Dict, gap time.Duration) *Segmenter {
	if gap <= 0 {
		gap = DefaultGap
	}
	return &Segmenter{Gap: gap, Dict: dict, open: make(map[string]*openSession)}
}

// Add feeds one record. Records for a given machine must arrive in
// chronological order (the natural order of a log); different machines may
// interleave arbitrarily.
func (s *Segmenter) Add(rec logfmt.Record) {
	id := s.Dict.Intern(rec.Query)
	cur := s.open[rec.MachineID]
	if cur != nil && rec.Time.Sub(cur.last) > s.Gap {
		s.done = append(s.done, cur.queries)
		cur = nil
	}
	if cur == nil {
		cur = &openSession{}
		s.open[rec.MachineID] = cur
	}
	cur.queries = append(cur.queries, id)
	cur.last = rec.Time
	for _, c := range rec.Clicks {
		if c.Time.After(cur.last) {
			cur.last = c.Time
		}
	}
}

// Flush closes all open sessions and returns every completed session in a
// deterministic order. The Segmenter can be reused afterwards.
func (s *Segmenter) Flush() []query.Seq {
	keys := make([]string, 0, len(s.open))
	for m := range s.open {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	for _, m := range keys {
		s.done = append(s.done, s.open[m].queries)
	}
	out := s.done
	s.done = nil
	s.open = make(map[string]*openSession)
	return out
}

// TakeCompleted drains only the sessions that have been closed by a gap so
// far, leaving in-flight sessions open. It is the streaming counterpart of
// Flush: a tailer calls it after each batch of records to harvest finished
// sessions without cutting sessions that may still receive queries.
func (s *Segmenter) TakeCompleted() []query.Seq {
	out := s.done
	s.done = nil
	return out
}

// Expire closes every open session whose last activity is more than Gap
// before now, moving it to the completed set in deterministic (machine-key
// sorted) order. now is event time — typically the timestamp of the latest
// record observed — not wall clock, so replaying a log yields the same
// session boundaries as tailing it live.
func (s *Segmenter) Expire(now time.Time) {
	var keys []string
	for m, cur := range s.open {
		if now.Sub(cur.last) > s.Gap {
			keys = append(keys, m)
		}
	}
	sort.Strings(keys)
	for _, m := range keys {
		s.done = append(s.done, s.open[m].queries)
		delete(s.open, m)
	}
}

// OpenSessionState is the exported state of one in-flight session: the
// machine it belongs to, its last-activity time, and its queries as strings
// (ID-independent, so the state survives into a process with a different
// dictionary). Used by the ingestion write-log to checkpoint sessions that
// span a crash.
type OpenSessionState struct {
	Machine string    `json:"machine"`
	Last    time.Time `json:"last"`
	Queries []string  `json:"queries"`
}

// OpenState exports every in-flight session, sorted by machine key.
func (s *Segmenter) OpenState() []OpenSessionState {
	keys := make([]string, 0, len(s.open))
	for m := range s.open {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	out := make([]OpenSessionState, 0, len(keys))
	for _, m := range keys {
		cur := s.open[m]
		qs := make([]string, len(cur.queries))
		for i, id := range cur.queries {
			qs[i] = s.Dict.String(id)
		}
		out = append(out, OpenSessionState{Machine: m, Last: cur.last, Queries: qs})
	}
	return out
}

// RestoreOpen reinstates sessions previously exported by OpenState,
// interning their queries in the given slice order (callers that need
// dictionary determinism must pass states in the same order they were
// exported). Existing open sessions for the same machines are replaced.
func (s *Segmenter) RestoreOpen(states []OpenSessionState) {
	for _, st := range states {
		cur := &openSession{last: st.Last, queries: make(query.Seq, len(st.Queries))}
		for i, q := range st.Queries {
			cur.queries[i] = s.Dict.Intern(q)
		}
		s.open[st.Machine] = cur
	}
}

// OpenCount reports the number of in-flight sessions.
func (s *Segmenter) OpenCount() int { return len(s.open) }

// SegmentReader drains a record stream into segmented sessions.
func SegmentReader(r *logfmt.Reader, dict *query.Dict, gap time.Duration) ([]query.Seq, error) {
	seg := NewSegmenter(dict, gap)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		seg.Add(rec)
	}
	return seg.Flush(), nil
}
