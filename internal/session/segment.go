// Package session implements the paper's data-preparation pipeline
// (Sec. V.A): segmentation of raw logs into sessions by the 30-minute rule,
// aggregation of identical sessions across users, frequency-threshold data
// reduction, derivation of training contexts, ground-truth construction for
// the test window, and the summary statistics behind Table IV and
// Figs. 5–7.
package session

import (
	"io"
	"sort"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

// DefaultGap is the session-segmentation threshold: the paper adopts the
// 30-minute rule convention (White et al.; Jansen et al.).
const DefaultGap = 30 * time.Minute

// Segmenter groups a stream of raw log records into sessions. Records are
// keyed by machine ID; a new session starts whenever more than Gap elapses
// between the last activity (query or URL click) and the next query from the
// same machine.
type Segmenter struct {
	Gap  time.Duration
	Dict *query.Dict

	open map[string]*openSession
	done []query.Seq
}

type openSession struct {
	queries query.Seq
	last    time.Time // last activity: query submission or click
}

// NewSegmenter returns a Segmenter interning queries into dict. A zero Gap
// defaults to the 30-minute rule.
func NewSegmenter(dict *query.Dict, gap time.Duration) *Segmenter {
	if gap <= 0 {
		gap = DefaultGap
	}
	return &Segmenter{Gap: gap, Dict: dict, open: make(map[string]*openSession)}
}

// Add feeds one record. Records for a given machine must arrive in
// chronological order (the natural order of a log); different machines may
// interleave arbitrarily.
func (s *Segmenter) Add(rec logfmt.Record) {
	id := s.Dict.Intern(rec.Query)
	cur := s.open[rec.MachineID]
	if cur != nil && rec.Time.Sub(cur.last) > s.Gap {
		s.done = append(s.done, cur.queries)
		cur = nil
	}
	if cur == nil {
		cur = &openSession{}
		s.open[rec.MachineID] = cur
	}
	cur.queries = append(cur.queries, id)
	cur.last = rec.Time
	for _, c := range rec.Clicks {
		if c.Time.After(cur.last) {
			cur.last = c.Time
		}
	}
}

// Flush closes all open sessions and returns every completed session in a
// deterministic order. The Segmenter can be reused afterwards.
func (s *Segmenter) Flush() []query.Seq {
	keys := make([]string, 0, len(s.open))
	for m := range s.open {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	for _, m := range keys {
		s.done = append(s.done, s.open[m].queries)
	}
	out := s.done
	s.done = nil
	s.open = make(map[string]*openSession)
	return out
}

// SegmentReader drains a record stream into segmented sessions.
func SegmentReader(r *logfmt.Reader, dict *query.Dict, gap time.Duration) ([]query.Seq, error) {
	seg := NewSegmenter(dict, gap)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		seg.Add(rec)
	}
	return seg.Flush(), nil
}
