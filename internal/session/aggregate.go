package session

import (
	"sort"

	"repro/internal/query"
)

// Aggregate merges identical sessions from different users into
// (sequence, frequency) pairs — Sec. V.A.3. Output is ordered by descending
// frequency with a deterministic tie-break.
func Aggregate(sessions []query.Seq) []query.Session {
	counts := make(map[string]uint64, len(sessions))
	for _, s := range sessions {
		counts[s.Key()]++
	}
	out := make([]query.Session, 0, len(counts))
	for k, c := range counts {
		out = append(out, query.Session{Queries: query.SeqFromKey(k), Count: c})
	}
	query.SortSessions(out)
	return out
}

// Reduce applies the paper's data reduction (Sec. V.A.4): aggregated
// sessions with frequency <= threshold are discarded as rare/erroneous.
// The paper uses threshold 5, which removed ~40% of aggregated sessions and
// retained ~60% of raw sessions. Reduce returns the retained sessions plus
// the retained fraction of raw session mass.
func Reduce(agg []query.Session, threshold uint64) (kept []query.Session, retainedMass float64) {
	var total, retained uint64
	kept = make([]query.Session, 0, len(agg))
	for _, s := range agg {
		total += s.Count
		if s.Count > threshold {
			kept = append(kept, s)
			retained += s.Count
		}
	}
	if total == 0 {
		return kept, 0
	}
	return kept, float64(retained) / float64(total)
}

// Context is one training example derived from an aggregated session: the
// sequence of preceding queries, the next query to predict, and the support
// (the aggregated session's frequency) — Sec. V.A.5.
type Context struct {
	Prefix  query.Seq
	Next    query.ID
	Support uint64
}

// DeriveContexts expands aggregated sessions into training contexts.
// A session [q1..q5] with frequency 10 yields the four contexts
// ([q1]→q2, [q1,q2]→q3, ...), each with support 10. Contexts identical in
// (prefix, next) are aggregated across sessions.
func DeriveContexts(sessions []query.Session) []Context {
	type key struct {
		prefix string
		next   query.ID
	}
	acc := make(map[key]uint64)
	for _, s := range sessions {
		for i := 1; i < len(s.Queries); i++ {
			k := key{prefix: s.Queries[:i].Key(), next: s.Queries[i]}
			acc[k] += s.Count
		}
	}
	out := make([]Context, 0, len(acc))
	for k, c := range acc {
		out = append(out, Context{Prefix: query.SeqFromKey(k.prefix), Next: k.next, Support: c})
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].Prefix.Key(), out[j].Prefix.Key()
		if ki != kj {
			return ki < kj
		}
		return out[i].Next < out[j].Next
	})
	return out
}

// GroundTruth maps a test context prefix to the ranked list of queries that
// actually followed it in the test window — Sec. V.A.6. Rank 0 is the most
// frequent follower; at most TopN entries are kept.
type GroundTruth struct {
	TopN    int
	follows map[string][]query.ID
}

// BuildGroundTruth constructs ground truth from aggregated test sessions.
// For every prefix observed in the test data, followers are ranked by their
// aggregated frequency (descending, ties broken by ID for determinism) and
// truncated to topN (the paper uses n = 5).
func BuildGroundTruth(testSessions []query.Session, topN int) *GroundTruth {
	if topN <= 0 {
		topN = 5
	}
	freq := make(map[string]map[query.ID]uint64)
	for _, s := range testSessions {
		for i := 1; i < len(s.Queries); i++ {
			k := s.Queries[:i].Key()
			m := freq[k]
			if m == nil {
				m = make(map[query.ID]uint64)
				freq[k] = m
			}
			m[s.Queries[i]] += s.Count
		}
	}
	gt := &GroundTruth{TopN: topN, follows: make(map[string][]query.ID, len(freq))}
	for k, m := range freq {
		type qc struct {
			q query.ID
			c uint64
		}
		list := make([]qc, 0, len(m))
		for q, c := range m {
			list = append(list, qc{q, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].c != list[j].c {
				return list[i].c > list[j].c
			}
			return list[i].q < list[j].q
		})
		if len(list) > topN {
			list = list[:topN]
		}
		ids := make([]query.ID, len(list))
		for i, e := range list {
			ids[i] = e.q
		}
		gt.follows[k] = ids
	}
	return gt
}

// Lookup returns the ranked ground-truth followers for a prefix, or nil when
// the prefix never occurred in the test window.
func (gt *GroundTruth) Lookup(prefix query.Seq) []query.ID {
	return gt.follows[prefix.Key()]
}

// Rating returns the paper's NDCG rating of query q in the context prefix:
// 5 for the top ground-truth follower, 4 for the second, ... 1 for the
// fifth, and 0 beyond the top list or when unseen.
func (gt *GroundTruth) Rating(prefix query.Seq, q query.ID) int {
	for i, g := range gt.follows[prefix.Key()] {
		if g == q {
			r := gt.TopN - i
			if r < 0 {
				return 0
			}
			return r
		}
	}
	return 0
}

// Contexts returns every ground-truth prefix, optionally filtered to a given
// prefix length (0 = all), in deterministic order.
func (gt *GroundTruth) Contexts(length int) []query.Seq {
	keys := make([]string, 0, len(gt.follows))
	for k := range gt.follows {
		if length > 0 && len(k) != 4*length {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]query.Seq, len(keys))
	for i, k := range keys {
		out[i] = query.SeqFromKey(k)
	}
	return out
}

// Len reports the number of distinct ground-truth prefixes.
func (gt *GroundTruth) Len() int { return len(gt.follows) }
