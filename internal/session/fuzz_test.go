package session

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

// FuzzSegmenterAdd feeds arbitrary (possibly time-disordered) record streams
// through a Segmenter with interleaved TakeCompleted/Expire calls and checks
// the structural invariants a downstream trainer relies on: no panics, no
// empty sessions, and exact query conservation — every record added comes
// back in exactly one session, never dropped, never duplicated.
func FuzzSegmenterAdd(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 128, 64, 32})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dict := query.NewDict()
		seg := NewSegmenter(dict, 5*time.Minute)
		clock := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
		added, harvested := 0, 0
		take := func(batch []query.Seq) {
			for _, s := range batch {
				if len(s) == 0 {
					t.Fatal("empty session emitted")
				}
				harvested += len(s)
			}
		}
		for i := 0; i+3 <= len(data); i += 3 {
			// int8 delta: time can move backwards — the segmenter must not
			// panic or lose records on disordered input.
			clock = clock.Add(time.Duration(int8(data[i+2])) * 20 * time.Second)
			r := logfmt.Record{
				MachineID: "m" + strconv.Itoa(int(data[i]%8)),
				Query:     "q" + strconv.Itoa(int(data[i+1]%16)),
				Time:      clock,
			}
			if data[i+1]%4 == 0 {
				r.Clicks = []logfmt.Click{{URL: "u", Time: clock.Add(time.Minute)}}
			}
			seg.Add(r)
			added++
			switch {
			case i%21 == 0:
				take(seg.TakeCompleted())
			case i%33 == 0:
				seg.Expire(clock)
			}
		}
		// Checkpoint round-trip mid-stream state, then drain everything.
		states := seg.OpenState()
		for _, st := range states {
			if len(st.Queries) == 0 {
				t.Fatal("open session with no queries")
			}
		}
		seg2 := NewSegmenter(query.NewDict(), 5*time.Minute)
		seg2.RestoreOpen(states)
		if seg2.OpenCount() != seg.OpenCount() {
			t.Fatalf("restored OpenCount %d != %d", seg2.OpenCount(), seg.OpenCount())
		}
		take(seg.Flush())
		if harvested != added {
			t.Fatalf("conservation violated: added %d queries, harvested %d", added, harvested)
		}
		if seg.OpenCount() != 0 {
			t.Fatalf("OpenCount after Flush = %d", seg.OpenCount())
		}
	})
}
