package session

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

var base = time.Date(2026, 2, 1, 9, 0, 0, 0, time.UTC)

func rec(machine, q string, at time.Time, clicks ...logfmt.Click) logfmt.Record {
	return logfmt.Record{MachineID: machine, Query: q, Time: at, Clicks: clicks}
}

func TestSegmenterSplitsOn30MinuteGap(t *testing.T) {
	d := query.NewDict()
	seg := NewSegmenter(d, 0)
	seg.Add(rec("m1", "a", base))
	seg.Add(rec("m1", "b", base.Add(5*time.Minute)))
	seg.Add(rec("m1", "c", base.Add(5*time.Minute+31*time.Minute))) // > 30 min later
	got := seg.Flush()
	if len(got) != 2 {
		t.Fatalf("sessions = %d, want 2", len(got))
	}
	if got[0].Len() != 2 || got[1].Len() != 1 {
		t.Fatalf("session lengths %d,%d want 2,1", got[0].Len(), got[1].Len())
	}
}

func TestSegmenterExactly30MinutesDoesNotSplit(t *testing.T) {
	d := query.NewDict()
	seg := NewSegmenter(d, 0)
	seg.Add(rec("m1", "a", base))
	seg.Add(rec("m1", "b", base.Add(30*time.Minute))) // rule is "more than 30 min"
	got := seg.Flush()
	if len(got) != 1 || got[0].Len() != 2 {
		t.Fatalf("got %d sessions, first len %d; want one session of 2", len(got), got[0].Len())
	}
}

func TestSegmenterClickExtendsSession(t *testing.T) {
	d := query.NewDict()
	seg := NewSegmenter(d, 0)
	// Query at t0, click at t0+20min, next query at t0+45min: the gap since
	// last *activity* is 25 min, so the session continues (the paper cuts
	// "between an issued query and URL click").
	seg.Add(rec("m1", "a", base, logfmt.Click{URL: "u", Time: base.Add(20 * time.Minute)}))
	seg.Add(rec("m1", "b", base.Add(45*time.Minute)))
	got := seg.Flush()
	if len(got) != 1 || got[0].Len() != 2 {
		t.Fatalf("click did not extend session: %d sessions", len(got))
	}
}

func TestSegmenterMachinesAreIndependent(t *testing.T) {
	d := query.NewDict()
	seg := NewSegmenter(d, 0)
	seg.Add(rec("m1", "a", base))
	seg.Add(rec("m2", "x", base.Add(time.Minute)))
	seg.Add(rec("m1", "b", base.Add(2*time.Minute)))
	seg.Add(rec("m2", "y", base.Add(3*time.Minute)))
	got := seg.Flush()
	if len(got) != 2 {
		t.Fatalf("sessions = %d, want 2", len(got))
	}
	for _, s := range got {
		if s.Len() != 2 {
			t.Fatalf("interleaved machines corrupted sessions: %v", got)
		}
	}
}

func TestSegmenterFlushResets(t *testing.T) {
	d := query.NewDict()
	seg := NewSegmenter(d, 0)
	seg.Add(rec("m1", "a", base))
	if n := len(seg.Flush()); n != 1 {
		t.Fatalf("first flush = %d sessions", n)
	}
	if n := len(seg.Flush()); n != 0 {
		t.Fatalf("second flush = %d sessions, want 0", n)
	}
}

func TestSegmentReader(t *testing.T) {
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i, q := range []string{"sign language", "learn sign language"} {
		if err := w.Write(rec("m9", q, base.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	d := query.NewDict()
	got, err := SegmentReader(logfmt.NewReader(strings.NewReader(sb.String())), d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len() != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0].Format(d) != "sign language => learn sign language" {
		t.Fatalf("session = %q", got[0].Format(d))
	}
}

func TestAggregateMergesIdenticalSessions(t *testing.T) {
	ss := []query.Seq{{1, 2}, {1, 2}, {3}, {1, 2, 3}}
	agg := Aggregate(ss)
	if len(agg) != 3 {
		t.Fatalf("aggregated = %d, want 3", len(agg))
	}
	if !agg[0].Queries.Equal(query.Seq{1, 2}) || agg[0].Count != 2 {
		t.Fatalf("top aggregated session = %+v", agg[0])
	}
}

func TestReduceThreshold(t *testing.T) {
	agg := []query.Session{
		{Queries: query.Seq{1}, Count: 100},
		{Queries: query.Seq{2}, Count: 6},
		{Queries: query.Seq{3}, Count: 5}, // <= 5: dropped
		{Queries: query.Seq{4}, Count: 1}, // dropped
	}
	kept, mass := Reduce(agg, 5)
	if len(kept) != 2 {
		t.Fatalf("kept %d sessions, want 2", len(kept))
	}
	want := float64(106) / float64(112)
	if mass < want-1e-9 || mass > want+1e-9 {
		t.Fatalf("retained mass = %v, want %v", mass, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	kept, mass := Reduce(nil, 5)
	if len(kept) != 0 || mass != 0 {
		t.Fatalf("Reduce(nil) = %v, %v", kept, mass)
	}
}

func TestDeriveContextsPaperExample(t *testing.T) {
	// Sec. V.A.5: [q1..q5] with frequency 10 yields 4 contexts each with
	// support 10.
	agg := []query.Session{{Queries: query.Seq{1, 2, 3, 4, 5}, Count: 10}}
	ctxs := DeriveContexts(agg)
	if len(ctxs) != 4 {
		t.Fatalf("contexts = %d, want 4", len(ctxs))
	}
	for i, c := range ctxs {
		if c.Support != 10 {
			t.Fatalf("context %d support = %d, want 10", i, c.Support)
		}
		if c.Prefix.Len() != i+1 {
			t.Fatalf("context %d prefix length = %d, want %d", i, c.Prefix.Len(), i+1)
		}
		if c.Next != query.ID(i+2) {
			t.Fatalf("context %d next = %d, want %d", i, c.Next, i+2)
		}
	}
}

func TestDeriveContextsAggregatesAcrossSessions(t *testing.T) {
	agg := []query.Session{
		{Queries: query.Seq{1, 2}, Count: 3},
		{Queries: query.Seq{1, 2, 9}, Count: 4},
	}
	ctxs := DeriveContexts(agg)
	var found bool
	for _, c := range ctxs {
		if c.Prefix.Equal(query.Seq{1}) && c.Next == 2 {
			found = true
			if c.Support != 7 {
				t.Fatalf("support = %d, want 7 (3+4)", c.Support)
			}
		}
	}
	if !found {
		t.Fatal("missing aggregated context [1]->2")
	}
}

func TestDeriveContextsSkipsSingletons(t *testing.T) {
	ctxs := DeriveContexts([]query.Session{{Queries: query.Seq{42}, Count: 5}})
	if len(ctxs) != 0 {
		t.Fatalf("singleton session produced %d contexts", len(ctxs))
	}
}

func TestGroundTruthRanking(t *testing.T) {
	// Prefix [1] followed by 2 (x60), 3 (x40), 4 (x5).
	agg := []query.Session{
		{Queries: query.Seq{1, 2}, Count: 60},
		{Queries: query.Seq{1, 3}, Count: 40},
		{Queries: query.Seq{1, 4}, Count: 5},
	}
	gt := BuildGroundTruth(agg, 5)
	got := gt.Lookup(query.Seq{1})
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("ground truth = %v", got)
	}
	if r := gt.Rating(query.Seq{1}, 2); r != 5 {
		t.Fatalf("rating(top) = %d, want 5", r)
	}
	if r := gt.Rating(query.Seq{1}, 3); r != 4 {
		t.Fatalf("rating(second) = %d, want 4", r)
	}
	if r := gt.Rating(query.Seq{1}, 99); r != 0 {
		t.Fatalf("rating(absent) = %d, want 0", r)
	}
	if gt.Lookup(query.Seq{9}) != nil {
		t.Fatal("unknown prefix returned ground truth")
	}
}

func TestGroundTruthTruncatesToTopN(t *testing.T) {
	var agg []query.Session
	for q := query.ID(2); q < 12; q++ {
		agg = append(agg, query.Session{Queries: query.Seq{1, q}, Count: uint64(20 - q)})
	}
	gt := BuildGroundTruth(agg, 5)
	if got := gt.Lookup(query.Seq{1}); len(got) != 5 {
		t.Fatalf("top list length = %d, want 5", len(got))
	}
}

func TestGroundTruthContextsByLength(t *testing.T) {
	agg := []query.Session{
		{Queries: query.Seq{1, 2, 3}, Count: 10},
		{Queries: query.Seq{4, 5}, Count: 10},
	}
	gt := BuildGroundTruth(agg, 5)
	if n := len(gt.Contexts(0)); n != 3 { // [1], [1,2], [4]
		t.Fatalf("all contexts = %d, want 3", n)
	}
	if n := len(gt.Contexts(1)); n != 2 {
		t.Fatalf("length-1 contexts = %d, want 2", n)
	}
	if n := len(gt.Contexts(2)); n != 1 {
		t.Fatalf("length-2 contexts = %d, want 1", n)
	}
	if gt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", gt.Len())
	}
}

func TestCollectStats(t *testing.T) {
	agg := []query.Session{
		{Queries: query.Seq{1, 2}, Count: 10},
		{Queries: query.Seq{3}, Count: 5},
		{Queries: query.Seq{1, 2, 3}, Count: 2},
	}
	st := Collect(agg)
	if st.Sessions != 17 {
		t.Fatalf("Sessions = %d, want 17", st.Sessions)
	}
	if st.Searches != 10*2+5*1+2*3 {
		t.Fatalf("Searches = %d", st.Searches)
	}
	if st.UniqueQueries != 3 {
		t.Fatalf("UniqueQueries = %d, want 3", st.UniqueQueries)
	}
	lengths, counts := st.LengthBuckets()
	if len(lengths) != 3 || lengths[0] != 1 || counts[0] != 5 {
		t.Fatalf("buckets = %v %v", lengths, counts)
	}
	wantMean := float64(st.Searches) / 17
	if st.MeanLength() != wantMean {
		t.Fatalf("MeanLength = %v, want %v", st.MeanLength(), wantMean)
	}
}

func TestCollectEmpty(t *testing.T) {
	st := Collect(nil)
	if st.MeanLength() != 0 {
		t.Fatalf("MeanLength on empty = %v", st.MeanLength())
	}
}

func TestPowerLawFitOnExactPowerLaw(t *testing.T) {
	// freq(rank) = 1000 * rank^-1: slope should be ~ -1, R² ~ 1.
	freqs := make([]uint64, 100)
	for i := range freqs {
		freqs[i] = uint64(1000 / (i + 1))
	}
	slope, r2 := PowerLawFit(freqs)
	if slope > -0.9 || slope < -1.1 {
		t.Fatalf("slope = %v, want ~-1", slope)
	}
	if r2 < 0.98 {
		t.Fatalf("R² = %v, want ~1", r2)
	}
}

func TestPowerLawFitDegenerate(t *testing.T) {
	if s, r := PowerLawFit(nil); s != 0 || r != 0 {
		t.Fatalf("empty fit = %v,%v", s, r)
	}
	if s, r := PowerLawFit([]uint64{7}); s != 0 || r != 0 {
		t.Fatalf("single-point fit = %v,%v", s, r)
	}
}

func TestRankFrequencySorted(t *testing.T) {
	agg := []query.Session{
		{Queries: query.Seq{1}, Count: 3},
		{Queries: query.Seq{2}, Count: 9},
		{Queries: query.Seq{3}, Count: 5},
	}
	rf := RankFrequency(agg)
	if rf[0] != 9 || rf[1] != 5 || rf[2] != 3 {
		t.Fatalf("RankFrequency = %v", rf)
	}
}

func TestAggregateConservesMass(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		if len(raw) > 50 {
			raw = raw[:50]
		}
		var sessions []query.Seq
		for _, r := range raw {
			l := int(r[0])%3 + 1
			s := make(query.Seq, l)
			for i := 0; i < l; i++ {
				s[i] = query.ID(r[i] % 6)
			}
			sessions = append(sessions, s)
		}
		agg := Aggregate(sessions)
		var mass uint64
		for _, a := range agg {
			mass += a.Count
		}
		return int(mass) == len(sessions)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveContextsSupportConservation(t *testing.T) {
	// Each session of length l contributes (l-1)·count total context
	// support; DeriveContexts must conserve it exactly.
	f := func(raw [][4]uint8, counts []uint8) bool {
		if len(raw) > 30 {
			raw = raw[:30]
		}
		var agg []query.Session
		var want uint64
		seen := map[string]bool{}
		for i, r := range raw {
			l := int(r[0])%4 + 1
			s := make(query.Seq, l)
			for j := 0; j < l; j++ {
				s[j] = query.ID(r[j] % 5)
			}
			if seen[s.Key()] {
				continue // aggregated input must have unique sequences
			}
			seen[s.Key()] = true
			c := uint64(1)
			if i < len(counts) {
				c = uint64(counts[i])%9 + 1
			}
			agg = append(agg, query.Session{Queries: s, Count: c})
			if l >= 2 {
				want += uint64(l-1) * c
			}
		}
		var got uint64
		for _, ctx := range DeriveContexts(agg) {
			got += ctx.Support
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceNeverIncreasesSessions(t *testing.T) {
	f := func(counts []uint8, th uint8) bool {
		var agg []query.Session
		for i, c := range counts {
			if i > 40 {
				break
			}
			agg = append(agg, query.Session{Queries: query.Seq{query.ID(i)}, Count: uint64(c) + 1})
		}
		kept, mass := Reduce(agg, uint64(th))
		if len(kept) > len(agg) || mass < 0 || mass > 1 {
			return false
		}
		for _, s := range kept {
			if s.Count <= uint64(th) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
