package session

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

func TestTakeCompletedLeavesOpenSessions(t *testing.T) {
	base := time.Date(2026, 2, 1, 9, 0, 0, 0, time.UTC)
	seg := NewSegmenter(query.NewDict(), 10*time.Minute)
	seg.Add(rec("m1", "a", base))
	seg.Add(rec("m1", "b", base.Add(time.Minute)))
	seg.Add(rec("m1", "c", base.Add(30*time.Minute))) // gap > 10m closes {a,b}
	seg.Add(rec("m2", "x", base))

	got := seg.TakeCompleted()
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("TakeCompleted = %v, want one 2-query session", got)
	}
	if seg.OpenCount() != 2 {
		t.Fatalf("OpenCount = %d, want 2 (m1 and m2 still open)", seg.OpenCount())
	}
	if again := seg.TakeCompleted(); len(again) != 0 {
		t.Fatalf("second TakeCompleted = %v, want empty", again)
	}
	// Flush still closes the remainder.
	rest := seg.Flush()
	if len(rest) != 2 {
		t.Fatalf("Flush = %v, want the 2 open sessions", rest)
	}
}

func TestExpireClosesIdleSessionsDeterministically(t *testing.T) {
	base := time.Date(2026, 2, 1, 9, 0, 0, 0, time.UTC)
	mk := func() *Segmenter {
		seg := NewSegmenter(query.NewDict(), 10*time.Minute)
		seg.Add(rec("zz", "z1", base))
		seg.Add(rec("aa", "a1", base.Add(time.Minute)))
		seg.Add(rec("mm", "m1", base.Add(20*time.Minute)))
		return seg
	}

	seg := mk()
	seg.Expire(base.Add(21 * time.Minute)) // zz idle 21m, aa idle 20m → both close; mm idle 1m stays
	done := seg.TakeCompleted()
	if len(done) != 2 {
		t.Fatalf("expired %d sessions, want 2", len(done))
	}
	if seg.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", seg.OpenCount())
	}

	// Deterministic order: machine-key sorted, independent of map iteration.
	for i := 0; i < 5; i++ {
		other := mk()
		other.Expire(base.Add(21 * time.Minute))
		if !reflect.DeepEqual(other.TakeCompleted(), done) {
			t.Fatal("Expire order differs across runs")
		}
	}

	// Expiry is event-time: a now before all activity closes nothing.
	idle := mk()
	idle.Expire(base)
	if got := idle.TakeCompleted(); len(got) != 0 {
		t.Fatalf("Expire(base) closed %d sessions, want 0", len(got))
	}
}

func TestOpenStateRoundTrip(t *testing.T) {
	base := time.Date(2026, 2, 1, 9, 0, 0, 0, time.UTC)
	dict := query.NewDict()
	seg := NewSegmenter(dict, 10*time.Minute)
	seg.Add(rec("m2", "beta", base))
	seg.Add(rec("m1", "alpha", base.Add(time.Minute)))
	seg.Add(rec("m1", "gamma", base.Add(2*time.Minute)))
	click := rec("m2", "delta", base.Add(3*time.Minute))
	click.Clicks = []logfmt.Click{{URL: "u", Time: base.Add(5 * time.Minute)}}
	seg.Add(click)

	states := seg.OpenState()
	if len(states) != 2 || states[0].Machine != "m1" || states[1].Machine != "m2" {
		t.Fatalf("OpenState machines = %+v, want sorted m1,m2", states)
	}
	if !reflect.DeepEqual(states[0].Queries, []string{"alpha", "gamma"}) {
		t.Fatalf("m1 queries = %v", states[0].Queries)
	}
	// Clicks extend last-activity: m2's Last must be the click time.
	if !states[1].Last.Equal(base.Add(5 * time.Minute)) {
		t.Fatalf("m2 Last = %v, want click time", states[1].Last)
	}

	// Restore into a fresh segmenter with a fresh dict; behavior must match:
	// a record within Gap of the restored Last continues the session.
	d2 := query.NewDict()
	seg2 := NewSegmenter(d2, 10*time.Minute)
	seg2.RestoreOpen(states)
	if seg2.OpenCount() != 2 {
		t.Fatalf("restored OpenCount = %d, want 2", seg2.OpenCount())
	}
	seg2.Add(rec("m2", "epsilon", base.Add(9*time.Minute)))
	seg2.Add(rec("m1", "zeta", base.Add(30*time.Minute))) // > Gap after m1's Last → split
	done := seg2.TakeCompleted()
	if len(done) != 1 {
		t.Fatalf("TakeCompleted after restore = %d sessions, want 1 (m1 split)", len(done))
	}
	closedStrings := make([]string, len(done[0]))
	for i, id := range done[0] {
		closedStrings[i] = d2.String(id)
	}
	if !reflect.DeepEqual(closedStrings, []string{"alpha", "gamma"}) {
		t.Fatalf("restored m1 session = %v", closedStrings)
	}
	final := seg2.Flush()
	if len(final) != 2 {
		t.Fatalf("final Flush = %d sessions, want 2", len(final))
	}
}
