package session

import (
	"math"
	"sort"

	"repro/internal/query"
)

// Stats summarises a session collection in the shape of the paper's
// Table IV and the histograms of Figs. 5–7.
type Stats struct {
	Sessions      uint64 // total session occurrences (Table IV "# Sessions")
	Searches      uint64 // total query submissions (Table IV "# Searches")
	UniqueQueries int    // |Q| over the collection
	LengthHist    map[int]uint64
}

// Collect computes statistics over aggregated sessions.
func Collect(agg []query.Session) Stats {
	st := Stats{LengthHist: make(map[int]uint64)}
	uniq := make(map[query.ID]struct{})
	for _, s := range agg {
		st.Sessions += s.Count
		st.Searches += s.Count * uint64(len(s.Queries))
		st.LengthHist[len(s.Queries)] += s.Count
		for _, q := range s.Queries {
			uniq[q] = struct{}{}
		}
	}
	st.UniqueQueries = len(uniq)
	return st
}

// MeanLength returns the average session length — the paper cites empirical
// estimates of 2–3 queries per session.
func (s Stats) MeanLength() float64 {
	if s.Sessions == 0 {
		return 0
	}
	return float64(s.Searches) / float64(s.Sessions)
}

// LengthBuckets returns (length, count) pairs sorted by length, for
// rendering the Fig. 5 / Fig. 7 histograms.
func (s Stats) LengthBuckets() (lengths []int, counts []uint64) {
	for l := range s.LengthHist {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	counts = make([]uint64, len(lengths))
	for i, l := range lengths {
		counts[i] = s.LengthHist[l]
	}
	return lengths, counts
}

// RankFrequency returns aggregated session frequencies in descending order —
// the data behind Fig. 6's rank/frequency power-law plot.
func RankFrequency(agg []query.Session) []uint64 {
	out := make([]uint64, len(agg))
	for i, s := range agg {
		out[i] = s.Count
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// PowerLawFit fits log10(freq) = a + b*log10(rank) by least squares over the
// rank/frequency curve and returns the slope b and the coefficient of
// determination R². A strongly negative slope with high R² is the Fig. 6
// power-law signature.
func PowerLawFit(freqs []uint64) (slope, r2 float64) {
	var xs, ys []float64
	for i, f := range freqs {
		if f == 0 {
			continue
		}
		xs = append(xs, math.Log10(float64(i+1)))
		ys = append(ys, math.Log10(float64(f)))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	// R² from the correlation coefficient.
	den2 := math.Sqrt(den) * math.Sqrt(n*syy-sy*sy)
	if den2 == 0 {
		return slope, 1
	}
	r := (n*sxy - sx*sy) / den2
	return slope, r * r
}
