package fleet_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/serve"
)

// ringNDJSONLine is one streamed router response line.
type ringNDJSONLine struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result"`
	Error  json.RawMessage `json:"error"`
}

// readRingNDJSON collects an NDJSON stream into per-index lines, enforcing
// exactly-once coverage of [0,want).
func readRingNDJSON(t *testing.T, rd io.Reader, want int) []ringNDJSONLine {
	t.Helper()
	lines := make([]ringNDJSONLine, want)
	seen := make([]bool, want)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var ln ringNDJSONLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("line %d: %v: %s", n, err, sc.Bytes())
		}
		if ln.Index < 0 || ln.Index >= want || seen[ln.Index] {
			t.Fatalf("line %d: bad or duplicate index %d", n, ln.Index)
		}
		seen[ln.Index] = true
		lines[ln.Index] = ln
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("streamed %d lines, want %d", n, want)
	}
	return lines
}

// TestRingBatchStreamParity: the router's streamed NDJSON response must
// carry, for every item, the same result bytes (modulo took_us) as the
// buffered merge of the identical batch — only the framing and arrival
// order differ.
func TestRingBatchStreamParity(t *testing.T) {
	rec := shardTestRec(t)
	router := newLoopbackRing(t, rec, 3)
	ringSrv := httptest.NewServer(router)
	defer ringSrv.Close()

	body := `{"requests":[{"context":["o2"]},{"context":["nokia n73"],"n":1},{"context":["o2","o2 mobile"]},{"context":["never seen"]},{"context":["nokia n73"]}]}`
	resp, err := http.Post(ringSrv.URL+"/suggest/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buffered struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&buffered); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Results) != 5 {
		t.Fatalf("buffered results = %d, want 5", len(buffered.Results))
	}

	sresp, err := http.Post(ringSrv.URL+"/v1/suggest/batch?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	for i, ln := range readRingNDJSON(t, sresp.Body, 5) {
		if ln.Error != nil {
			t.Fatalf("item %d carries an error: %s", i, ln.Error)
		}
		if got, want := stripTook(ln.Result), stripTook(buffered.Results[i]); got != want {
			t.Fatalf("item %d:\nstream:   %s\nbuffered: %s", i, got, want)
		}
	}
}

// TestRingBatchStreamShardFailure: once the streaming 200 is committed, a
// failing shard must surface as {"index":N,"error":{...}} lines for its
// items — every index still answered exactly once — instead of a 502.
func TestRingBatchStreamShardFailure(t *testing.T) {
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shard down", http.StatusInternalServerError)
	})
	router, err := fleet.NewShardRouter(fleet.NewRing(2, 0), fleet.NewLoopbackTransport(boom, boom))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(router)
	defer srv.Close()

	body := `{"requests":[{"context":["o2"]},{"context":["nokia n73"]},{"context":["o2","o2 mobile"]}]}`
	resp, err := http.Post(srv.URL+"/suggest/batch?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200 (errors travel as lines)", resp.StatusCode)
	}
	for i, ln := range readRingNDJSON(t, resp.Body, 3) {
		if ln.Error == nil {
			t.Fatalf("item %d: expected an error line, got result %s", i, ln.Result)
		}
		var e struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(ln.Error, &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != "bad_gateway" || !strings.Contains(e.Message, "shard") {
			t.Fatalf("item %d error = %+v", i, e)
		}
	}

	// The buffered path reports the same failure as one 502.
	bresp, err := http.Post(srv.URL+"/suggest/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadGateway {
		t.Fatalf("buffered status = %d, want 502", bresp.StatusCode)
	}
}

// TestHTTPTransportStream runs the streamed batch over real HTTP shard
// servers, checking the flushing path end to end (httptest's server wraps a
// real http.Flusher).
func TestHTTPTransportStream(t *testing.T) {
	rec := shardTestRec(t)
	var urls []string
	for i := 0; i < 2; i++ {
		s := httptest.NewServer(serve.NewHandler(rec, 5))
		defer s.Close()
		urls = append(urls, s.URL)
	}
	tr, err := fleet.NewHTTPTransport(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := fleet.NewShardRouter(fleet.NewRing(2, 0), tr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(router)
	defer srv.Close()

	body := `{"requests":[{"context":["o2"]},{"context":["nokia n73"]},{"context":["o2","o2 mobile"]}]}`
	resp, err := http.Post(srv.URL+"/v1/suggest/batch?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	for i, ln := range readRingNDJSON(t, resp.Body, 3) {
		if ln.Error != nil {
			t.Fatalf("item %d carries an error: %s", i, ln.Error)
		}
		var item struct {
			Context     []string          `json:"context"`
			Suggestions []json.RawMessage `json:"suggestions"`
		}
		if err := json.Unmarshal(ln.Result, &item); err != nil {
			t.Fatal(err)
		}
		if len(item.Context) == 0 {
			t.Fatalf("item %d: empty context echo: %s", i, ln.Result)
		}
	}
}
