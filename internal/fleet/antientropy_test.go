package fleet_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/serve"
)

// TestAdminStateMerge pins the reconciliation rule: higher version wins,
// lower loses, and equal versions with different values resolve the same way
// regardless of merge order (the Bayou convergence property), counted as a
// conflict.
func TestAdminStateMerge(t *testing.T) {
	e := func(key string, v uint64, val string) fleet.AdminEntry {
		return fleet.AdminEntry{Key: key, Version: v, Value: json.RawMessage(val)}
	}
	a := fleet.NewAdminState()
	if !a.Put(e("k", 1, `"old"`)) {
		t.Fatal("first put rejected")
	}
	if a.Put(e("k", 1, `"old"`)) {
		t.Fatal("identical entry re-applied")
	}
	if !a.Put(e("k", 2, `"new"`)) {
		t.Fatal("newer version rejected")
	}
	if a.Put(e("k", 1, `"stale"`)) {
		t.Fatal("stale version applied")
	}
	if got := a.Snapshot(); len(got) != 1 || string(got[0].Value) != `"new"` || got[0].Version != 2 {
		t.Fatalf("snapshot = %+v", got)
	}

	// Convergence: two states receiving the same equal-version conflicting
	// entries in opposite orders must agree.
	x, y := fleet.NewAdminState(), fleet.NewAdminState()
	x.Merge([]fleet.AdminEntry{e("c", 5, `"aaa"`)})
	x.Merge([]fleet.AdminEntry{e("c", 5, `"zzz"`)})
	y.Merge([]fleet.AdminEntry{e("c", 5, `"zzz"`)})
	y.Merge([]fleet.AdminEntry{e("c", 5, `"aaa"`)})
	xs, ys := x.Snapshot(), y.Snapshot()
	if string(xs[0].Value) != string(ys[0].Value) {
		t.Fatalf("divergence: %s vs %s", xs[0].Value, ys[0].Value)
	}
	if x.Stats().Conflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

// TestAntiEntropyPeerPull is the Bayou scenario end to end: router A fronts
// reloadable shards and learns their generations first-hand after a reload;
// router B cannot reach any shard's admin surface, but pulling A via
// anti-entropy gives it the same reconciled view — B answers admin reads
// after a peer performed the reload.
func TestAntiEntropyPeerPull(t *testing.T) {
	rec := shardTestRec(t)
	handlers := make([]http.Handler, 2)
	for i := range handlers {
		handlers[i] = serve.New(rec, serve.Options{
			DefaultN:   5,
			ReloadFunc: func() (core.Recommender, error) { return shardTestRec(t), nil },
		})
	}
	routerA, err := fleet.NewShardRouter(fleet.NewRing(2, 0), fleet.NewLoopbackTransport(handlers...))
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(routerA)
	defer srvA.Close()

	// B's shards refuse admin reads: everything it knows must come from A.
	deaf := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "admin disabled", http.StatusInternalServerError)
	})
	routerB, err := fleet.NewShardRouter(fleet.NewRing(2, 0), fleet.NewLoopbackTransport(deaf, deaf))
	if err != nil {
		t.Fatal(err)
	}
	routerB.SetPeers([]string{srvA.URL}, nil)

	// Reload through A: the broadcast itself refreshes A's admin state.
	resp, err := http.Post(srvA.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload via A: status %d", resp.StatusCode)
	}

	genOf := func(entries []fleet.AdminEntry, key string) uint64 {
		for _, e := range entries {
			if e.Key == key {
				var rows []struct {
					Generation uint64 `json:"generation"`
				}
				if err := json.Unmarshal(e.Value, &rows); err != nil || len(rows) == 0 {
					t.Fatalf("entry %s: %v: %s", key, err, e.Value)
				}
				return rows[0].Generation
			}
		}
		t.Fatalf("no entry %s in %+v", key, entries)
		return 0
	}
	if got := genOf(routerA.Admin().Snapshot(), "shard/0/models"); got != 2 {
		t.Fatalf("A sees generation %d after reload, want 2", got)
	}

	// One sweep on B: nothing first-hand (its shards 500), everything via A.
	if applied := routerB.SweepOnce(context.Background()); applied == 0 {
		t.Fatal("B's sweep applied nothing")
	}
	if got := genOf(routerB.Admin().Snapshot(), "shard/0/models"); got != 2 {
		t.Fatalf("B sees generation %d after peer pull, want 2", got)
	}
	st := routerB.Admin().Stats()
	if st.Sweeps != 1 || st.Merges == 0 {
		t.Fatalf("B stats = %+v", st)
	}

	// B's /v1/fleet serves the reconciled entries to the next peer over.
	srvB := httptest.NewServer(routerB)
	defer srvB.Close()
	raw, _, code := getBody(t, srvB.URL+"/v1/fleet")
	if code != http.StatusOK {
		t.Fatalf("/v1/fleet status %d", code)
	}
	var doc fleet.FleetStateResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if genOf(doc.Entries, "shard/1/models") != 2 {
		t.Fatalf("B's /v1/fleet misses the reload: %s", raw)
	}

	// A second reload through A advances the version; B's periodic loop
	// converges without being told.
	resp, err = http.Post(srvA.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	stop := routerB.StartAntiEntropy(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for genOf(routerB.Admin().Snapshot(), "shard/0/models") != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("B never converged: %+v", routerB.Admin().Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
