// Package fleet is the multi-model routing subsystem in front of the serving
// layer — the machinery the paper's deployment scenario actually needs when
// fresh MVMM models, retrained on new query logs, must be rolled out against
// the incumbent under live traffic from millions of users.
//
// Three pieces compose:
//
//   - Registry: several named, versioned core.Recommender slots, each
//     atomically hot-swappable (the same atomic-pointer discipline as
//     single-model serving) with its own generation counter over one shared
//     slot-keyed result cache (internal/cache).
//   - Router: deterministic A/B traffic splitting by FNV-1a hash of the
//     interned context — sticky, weight-proportional assignment with per-arm
//     serving metrics — plus shadow arms (weight 0) that are scored
//     asynchronously against the champion's answer to measure divergence
//     (top-1 mismatch rate, rank overlap) without touching serving latency.
//   - Ring + transports (ring.go, shard.go): a consistent-hash ring with
//     virtual nodes that fans /suggest and /suggest/batch traffic out to N
//     backend replicas, either in-process (loopback) or over HTTP.
//
// Invariants:
//
//   - Every arm's dictionary must be an ID-preserving extension
//     (query.Dict.Extends) of the router's base dictionary — the champion's
//     at construction. Contexts are interned once against the base
//     dictionary, so the routing hash, the sticky assignment and the cache
//     keys are model-independent, and the interned IDs remain valid in every
//     arm. Slot swaps enforce the same relation (ErrDictIncompatible
//     otherwise), which is what keeps in-flight interned contexts from being
//     silently misrouted across a reload.
//   - Route is allocation-free and lock-free: arms are fixed at construction
//     and model state is read through one atomic pointer per slot.
//   - Shadow scoring never blocks the serving goroutine: jobs are handed to
//     a single worker over a bounded queue and dropped (counted) when it is
//     full.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
)

// ErrDictIncompatible reports a slot swap whose replacement model's
// dictionary is not an ID-preserving extension of the dictionary the slot's
// interned contexts, cache keys and sticky routing hashes were built
// against. Serving such a model would silently misroute IDs; callers should
// surface the hashes (HTTP 409) and let the operator force a full restart
// instead.
type ErrDictIncompatible struct {
	Slot    string // slot name
	OldHash uint64 // query.Dict.Hash of the currently served dictionary
	NewHash uint64 // hash of the rejected replacement dictionary
}

// Error implements error.
func (e *ErrDictIncompatible) Error() string {
	return fmt.Sprintf("fleet: model for slot %q has an incompatible dictionary (serving dict %016x, new dict %016x): interned contexts would be misrouted",
		e.Slot, e.OldHash, e.NewHash)
}

// SlotState is one consistent (model, generation) view of a slot. The
// generation joins every cache key, so results computed against a swapped-out
// model can never answer for its replacement.
type SlotState struct {
	Rec core.Recommender
	Gen uint64
}

// Slot is one named model in the registry. The served model sits behind an
// atomic pointer (reads never lock); swaps serialise on a per-slot mutex.
type Slot struct {
	name   string
	id     uint32 // cache key-space ID, dense from 0 in registration order
	state  atomic.Pointer[SlotState]
	mu     sync.Mutex // serialises Swap/Reload
	loader func() (core.Recommender, error)
	reg    *Registry
}

// Name returns the slot's registry name.
func (s *Slot) Name() string { return s.name }

// ID returns the slot's dense cache key-space identifier.
func (s *Slot) ID() uint32 { return s.id }

// State returns the slot's current (model, generation) pair. The result is
// immutable; callers must use one State result for a whole request.
func (s *Slot) State() *SlotState { return s.state.Load() }

// Swap atomically replaces the slot's model and bumps its generation,
// enforcing dictionary compatibility: the new model's dictionary must be an
// ID-preserving extension of the current one (see ErrDictIncompatible). force
// bypasses the check for operator-confirmed full replacements. The shared
// cache is purged either way — stale entries could never answer (generation
// keying) but their memory is released early. Returns the new generation.
func (s *Slot) Swap(rec core.Recommender, force bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.state.Load()
	if !force && !rec.Dict().Extends(old.Rec.Dict()) {
		return 0, &ErrDictIncompatible{
			Slot:    s.name,
			OldHash: old.Rec.Dict().Hash(),
			NewHash: rec.Dict().Hash(),
		}
	}
	next := &SlotState{Rec: rec, Gen: old.Gen + 1}
	s.state.Store(next)
	s.reg.cache.Purge()
	return next.Gen, nil
}

// Reload invokes the slot's configured loader and swaps the result in under
// the compatibility rules of Swap. Returns an error when no loader was
// configured (slots registered from an in-memory model only).
func (s *Slot) Reload(force bool) (uint64, error) {
	if s.loader == nil {
		return 0, fmt.Errorf("fleet: slot %q has no loader configured", s.name)
	}
	rec, err := s.loader()
	if err != nil {
		return 0, fmt.Errorf("fleet: reloading slot %q: %w", s.name, err)
	}
	return s.Swap(rec, force)
}

// Registry holds the fleet's named model slots and the one slot-keyed result
// cache they share. Slots are fixed after construction (registration is not
// concurrency-safe and happens at startup); the models inside them hot-swap
// freely at runtime.
type Registry struct {
	slots  []*Slot
	byName map[string]*Slot
	cache  *cache.SuggestCache
}

// NewRegistry returns an empty registry whose slots will share one result
// cache of about cacheCapacity entries (<= 0 selects the cache default).
func NewRegistry(cacheCapacity int) *Registry {
	return &Registry{
		byName: make(map[string]*Slot),
		cache:  cache.NewSuggestCache(cacheCapacity),
	}
}

// Add registers a named model with an optional loader for reload-by-name and
// returns its slot. Names must be unique and non-empty; registration happens
// at startup, before the registry serves traffic.
func (g *Registry) Add(name string, rec core.Recommender, loader func() (core.Recommender, error)) (*Slot, error) {
	if name == "" {
		return nil, errors.New("fleet: empty slot name")
	}
	if rec == nil {
		return nil, fmt.Errorf("fleet: nil model for slot %q", name)
	}
	if _, dup := g.byName[name]; dup {
		return nil, fmt.Errorf("fleet: duplicate slot name %q", name)
	}
	s := &Slot{name: name, id: uint32(len(g.slots)), loader: loader, reg: g}
	s.state.Store(&SlotState{Rec: rec, Gen: 1})
	g.slots = append(g.slots, s)
	g.byName[name] = s
	return s, nil
}

// Slot returns the named slot, or nil when unknown.
func (g *Registry) Slot(name string) *Slot { return g.byName[name] }

// Slots returns the registered slots in registration order. The slice is
// shared; callers must not mutate it.
func (g *Registry) Slots() []*Slot { return g.slots }

// Cache returns the registry's shared slot-keyed result cache.
func (g *Registry) Cache() *cache.SuggestCache { return g.cache }
