package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// RampPolicy configures the automatic challenger weight schedule. The ramp
// only ever moves a challenger's weight — the champion's declared weight is
// never touched — so the worst a bad policy can do is park the challenger at
// zero.
type RampPolicy struct {
	// Steps is the ascending weight schedule the challenger walks once its
	// shadow measurements clear the guard, e.g. {1, 5, 25}.
	Steps []uint32
	// Hold is the minimum time spent at each step before advancing.
	Hold time.Duration
	// MinSamples gates the first step: the challenger must have been shadow-
	// scored at least this often (post generation reset) before taking
	// traffic.
	MinSamples uint64
	// Divergence guard: the ramp freezes (weight back to zero) when the
	// challenger's shadow stats cross any of these thresholds. Zero values
	// disable the corresponding check.
	MaxTop1Mismatch float64 // freeze when Top1MismatchRate exceeds this
	MinRankOverlap  float64 // freeze when MeanRankOverlap falls below this
	MinCoverage     float64 // freeze when Coverage falls below this
	// Promote swaps the challenger's model into the champion slot after the
	// final step's hold elapses, advancing the interning base so newly learned
	// vocabulary becomes servable. Without it the ramp parks at the last step.
	Promote bool
}

// validate rejects policies the state machine cannot run.
func (p RampPolicy) validate() error {
	if len(p.Steps) == 0 {
		return errors.New("fleet: ramp policy needs at least one step")
	}
	var prev uint32
	for _, w := range p.Steps {
		if w == 0 {
			return errors.New("fleet: ramp steps must be positive")
		}
		if w < prev {
			return errors.New("fleet: ramp steps must be non-decreasing")
		}
		prev = w
	}
	return nil
}

// RampStatus is one observation of the ramp state machine, surfaced through
// /v1/ingest.
type RampStatus struct {
	Arm        string       `json:"arm"`
	Armed      bool         `json:"armed"` // a challenger generation is being ramped
	Step       int          `json:"step"`  // -1 = shadow-only (not yet taking traffic)
	Weight     uint32       `json:"weight"`
	Frozen     bool         `json:"frozen"`
	Reason     string       `json:"reason,omitempty"` // why the ramp froze
	Generation uint64       `json:"generation"`       // challenger slot generation being ramped
	Promotions uint64       `json:"promotions"`
	Shadow     *ShadowStats `json:"shadow,omitempty"`
	StepSince  time.Time    `json:"step_since"`
}

// Ramp walks one challenger arm's weight up a RampPolicy schedule, driven by
// the arm's live shadow divergence measurements. It is a deterministic state
// machine over explicit timestamps: tests drive Tick directly, production
// runs it from a ticker goroutine via Start.
//
// Lifecycle per challenger generation: the ramp idles until the challenger
// slot's generation changes (an ingestion push landed); it then resets the
// slot's shadow counters and waits for MinSamples clean measurements; walks
// weight through Steps, holding each for Hold while re-checking the guard
// every tick; and finally (with Promote) swaps the challenger into the
// champion slot, returns its weight to zero and goes back to idle. A guard
// violation at any point zeroes the weight and freezes the ramp until a new
// generation arrives or an operator calls Unfreeze.
type Ramp struct {
	rt  *Router
	arm string
	pol RampPolicy

	// statsFn is rt.ShadowStatsFor in production; tests substitute a stub to
	// drive the state machine deterministically.
	statsFn func(string) (ShadowStats, bool)

	mu         sync.Mutex
	armed      bool
	step       int // -1 = shadow-only
	frozen     bool
	reason     string
	lastGen    uint64
	stepSince  time.Time
	promotions uint64

	// Observability (optional, via SetObservability): transition counters
	// and a tracer into which each transition is force-retained, so ramp
	// decisions — rare and always interesting — are inspectable on
	// /v1/traces next to the request traces.
	tracer      *obs.Tracer
	cSteps      *obs.Counter
	cFreezes    *obs.Counter
	cPromotions *obs.Counter

	stopOnce sync.Once
	stopCh   chan struct{}
}

// SetObservability wires the ramp's transition counters into reg
// (ramp_steps_total, ramp_freezes_total, ramp_promotions_total) and retains
// one forced trace per transition in tracer. Either argument may be nil.
// Call before Start; the fields are not synchronised against a running
// ticker.
func (r *Ramp) SetObservability(reg *obs.Registry, tracer *obs.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg != nil {
		r.cSteps = reg.Counter("ramp_steps_total")
		r.cFreezes = reg.Counter("ramp_freezes_total")
		r.cPromotions = reg.Counter("ramp_promotions_total")
	}
	r.tracer = tracer
}

// noteTransition records one ramp state transition: a bump on c (when
// wired) and a forced single-event trace attributing the transition to the
// schedule step index. Callers hold r.mu.
func (r *Ramp) noteTransition(c *obs.Counter, outcome string, step int) {
	if c != nil {
		c.Inc()
	}
	if r.tracer == nil {
		return
	}
	tr := r.tracer.Start()
	tr.Event("ramp", step, outcome)
	tr.Force()
	r.tracer.Finish(tr, false)
}

// NewRamp builds a ramp for the named challenger arm (any declared arm except
// the champion). The current slot generation is taken as already-handled:
// ramping starts with the next push into the slot.
func NewRamp(rt *Router, arm string, pol RampPolicy) (*Ramp, error) {
	if err := pol.validate(); err != nil {
		return nil, err
	}
	var target *Arm
	for _, a := range rt.arms[1:] {
		if a.header[0] == arm {
			target = a
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("fleet: ramp target %q is not a non-champion arm", arm)
	}
	return &Ramp{
		rt:      rt,
		arm:     arm,
		pol:     pol,
		statsFn: rt.ShadowStatsFor,
		step:    -1,
		lastGen: target.slot.State().Gen,
		stopCh:  make(chan struct{}),
	}, nil
}

// armRef returns the challenger arm (set membership was validated at
// construction).
func (r *Ramp) armRef() *Arm {
	for _, a := range r.rt.arms {
		if a.header[0] == r.arm {
			return a
		}
	}
	return nil
}

// Tick advances the state machine one observation at the given time and
// returns the resulting status. now is event time: production passes
// time.Now(), tests pass a synthetic clock.
func (r *Ramp) Tick(now time.Time) RampStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	arm := r.armRef()

	// New challenger generation: restart the ramp from shadow-only, clearing
	// any freeze — the frozen verdict belonged to the previous generation.
	if gen := arm.slot.State().Gen; gen != r.lastGen {
		r.lastGen = gen
		r.armed = true
		r.step = -1
		r.frozen = false
		r.reason = ""
		r.stepSince = now
		_ = r.rt.SetWeight(r.arm, 0)
		r.rt.ResetShadow(r.arm)
		r.noteTransition(nil, "start", -1)
		return r.statusLocked()
	}
	if !r.armed || r.frozen {
		return r.statusLocked()
	}

	stats, ok := r.statsFn(r.arm)
	if ok && stats.Samples >= r.pol.MinSamples {
		if why := r.pol.breach(stats); why != "" {
			r.frozen = true
			r.reason = why
			frozeAt := r.step
			r.step = -1
			_ = r.rt.SetWeight(r.arm, 0)
			r.noteTransition(r.cFreezes, "freeze", frozeAt)
			return r.statusLocked()
		}
	}

	switch {
	case r.step == -1:
		if ok && stats.Samples >= r.pol.MinSamples {
			r.step = 0
			r.stepSince = now
			_ = r.rt.SetWeight(r.arm, r.pol.Steps[0])
			r.noteTransition(r.cSteps, "advance", 0)
		}
	case now.Sub(r.stepSince) >= r.pol.Hold:
		if r.step+1 < len(r.pol.Steps) {
			r.step++
			r.stepSince = now
			_ = r.rt.SetWeight(r.arm, r.pol.Steps[r.step])
			r.noteTransition(r.cSteps, "advance", r.step)
		} else if r.pol.Promote {
			if err := r.rt.Promote(r.arm); err != nil {
				r.frozen = true
				r.reason = "promote failed: " + err.Error()
				frozeAt := r.step
				r.step = -1
				_ = r.rt.SetWeight(r.arm, 0)
				r.noteTransition(r.cFreezes, "freeze", frozeAt)
			} else {
				r.promotions++
				r.armed = false
				finalStep := r.step
				r.step = -1
				r.stepSince = now
				r.noteTransition(r.cPromotions, "promote", finalStep)
			}
		}
	}
	return r.statusLocked()
}

// breach returns a human-readable reason when stats violate the guard, or "".
func (p RampPolicy) breach(s ShadowStats) string {
	if p.MaxTop1Mismatch > 0 && s.Top1MismatchRate > p.MaxTop1Mismatch {
		return fmt.Sprintf("top1 mismatch %.3f > %.3f", s.Top1MismatchRate, p.MaxTop1Mismatch)
	}
	if p.MinRankOverlap > 0 && s.MeanRankOverlap < p.MinRankOverlap {
		return fmt.Sprintf("rank overlap %.3f < %.3f", s.MeanRankOverlap, p.MinRankOverlap)
	}
	if p.MinCoverage > 0 && s.Coverage < p.MinCoverage {
		return fmt.Sprintf("coverage %.3f < %.3f", s.Coverage, p.MinCoverage)
	}
	return ""
}

// Unfreeze clears a frozen verdict so the current generation may ramp again —
// the operator override after investigating a divergence report.
func (r *Ramp) Unfreeze() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frozen = false
	r.reason = ""
}

// Status reports the current ramp state without advancing it.
func (r *Ramp) Status() RampStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked()
}

func (r *Ramp) statusLocked() RampStatus {
	st := RampStatus{
		Arm:        r.arm,
		Armed:      r.armed,
		Step:       r.step,
		Weight:     r.armRef().Weight(),
		Frozen:     r.frozen,
		Reason:     r.reason,
		Generation: r.lastGen,
		Promotions: r.promotions,
		StepSince:  r.stepSince,
	}
	if s, ok := r.statsFn(r.arm); ok {
		st.Shadow = &s
	}
	return st
}

// Start runs the ramp from a background ticker until Stop. Tick cadence
// bounds how quickly the schedule can advance; Hold should be a multiple of
// it.
func (r *Ramp) Start(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case now := <-t.C:
				r.Tick(now)
			}
		}
	}()
}

// Stop terminates the Start goroutine. Idempotent.
func (r *Ramp) Stop() { r.stopOnce.Do(func() { close(r.stopCh) }) }
