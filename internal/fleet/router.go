package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
)

// ArmSpec declares one routing arm when building a Router: the registry slot
// it serves from and its initial traffic weight. Weight 0 marks a shadow arm:
// it starts with no live traffic but is scored asynchronously against the
// champion's answers (divergence metrics, cache warming) — and, unlike in the
// original immutable router, it can later be walked up to live weight via
// SetWeight (the auto-ramp path) without rebuilding the router.
type ArmSpec struct {
	Name   string
	Weight uint32
}

// Arm is one routing arm. Arms exist for every declared spec, including
// currently weight-0 ones; only arms with positive weight receive live
// traffic (see Route).
type Arm struct {
	slot   *Slot
	weight atomic.Uint32 // current traffic weight, adjusted by SetWeight

	// header is the pre-built X-Serve-Arm header value; assigning a shared
	// slice into the response header map keeps the hot path allocation-free
	// (same trick as the serving layer's content-type).
	header []string

	// rerank is the arm's optional second-stage ranking hook (nil = off, the
	// default); set once at startup via Router.SetRerank.
	rerank Reranker

	requests atomic.Uint64
	// lat is the arm's full-history latency histogram: lock-free recording,
	// bounded-error p50/p99/p999, and mergeable across arms (the fleet-wide
	// distribution is the bucket-wise sum — see Router.MergeLatency).
	lat obs.Histogram
}

// Slot returns the registry slot this arm serves from.
func (a *Arm) Slot() *Slot { return a.slot }

// Weight returns the arm's current traffic weight.
func (a *Arm) Weight() uint32 { return a.weight.Load() }

// HeaderValue returns the shared pre-built header slice carrying the arm's
// name, for allocation-free `w.Header()["X-Serve-Arm"] = ...` assignment.
func (a *Arm) HeaderValue() []string { return a.header }

// routeTable is the immutable weight snapshot Route reads: cumulative bounds
// over the arms that currently carry positive weight. Rebuilt by SetWeight
// and swapped in atomically, so Route stays lock- and allocation-free while
// weights change underneath it.
type routeTable struct {
	total uint64   // sum of live weights
	cum   []uint64 // cumulative weight bound (exclusive) per live entry
	idx   []int    // arms index of each live entry
}

// Router splits suggestion traffic across registry slots: weighted sticky
// A/B assignment by hash of the interned context, with optional shadow arms
// scored off the serving path. Construction validates that every arm's
// dictionary extends the base (first) arm's, so one interning is valid
// everywhere. The arm set is fixed at construction but weights are dynamic
// (SetWeight, Promote — the auto-ramp path); all methods are safe for
// unbounded concurrent use.
type Router struct {
	reg  *Registry
	arms []*Arm // all declared arms, declaration order; arms[0] is the champion

	// mu serialises weight changes; the serving path never takes it.
	mu    sync.Mutex
	table atomic.Pointer[routeTable]

	// baseDict is the interning base: initially the champion's dictionary at
	// construction, advanced by RefreshBase after champion reloads (only when
	// every arm still extends the candidate — the soundness condition for
	// sharing one interning across arms).
	baseDict atomic.Pointer[query.Dict]
	shadows  *shadower // nil when no shadow arms
}

// NewRouter builds a router over registry slots. specs declares the arms in
// order; the first spec is the champion, whose dictionary becomes the base
// every context is interned against, and which must carry a positive weight.
// Weight-0 specs are shadow arms: scored asynchronously from construction,
// and routable later once SetWeight raises them. Every arm's dictionary
// must extend the champion's (ErrDictIncompatible otherwise) — the property
// that keeps one interned context valid, sticky and cache-consistent across
// all arms.
func NewRouter(reg *Registry, specs ...ArmSpec) (*Router, error) {
	if len(specs) == 0 {
		return nil, errors.New("fleet: router needs at least one arm")
	}
	if specs[0].Weight == 0 {
		return nil, errors.New("fleet: champion (first) arm needs positive weight")
	}
	champion := reg.Slot(specs[0].Name)
	if champion == nil {
		return nil, fmt.Errorf("fleet: unknown slot %q", specs[0].Name)
	}
	// Only the dictionary is retained (the old model itself is not kept
	// alive); RefreshBase advances it after champion reloads.
	rt := &Router{reg: reg}
	baseDict := champion.State().Rec.Dict()
	rt.baseDict.Store(baseDict)
	var shadowSlots []*Slot
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		slot := reg.Slot(spec.Name)
		if slot == nil {
			return nil, fmt.Errorf("fleet: unknown slot %q", spec.Name)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("fleet: duplicate arm %q", spec.Name)
		}
		seen[spec.Name] = true
		if d := slot.State().Rec.Dict(); !d.Extends(baseDict) {
			return nil, &ErrDictIncompatible{Slot: spec.Name, OldHash: baseDict.Hash(), NewHash: d.Hash()}
		}
		a := &Arm{slot: slot, header: []string{spec.Name}}
		a.weight.Store(spec.Weight)
		rt.arms = append(rt.arms, a)
		if spec.Weight == 0 {
			shadowSlots = append(shadowSlots, slot)
		}
	}
	rt.table.Store(rt.buildTable())
	if len(shadowSlots) > 0 {
		rt.shadows = newShadower(reg, shadowSlots)
	}
	return rt, nil
}

// buildTable snapshots current arm weights into a fresh route table.
func (rt *Router) buildTable() *routeTable {
	t := &routeTable{}
	for i, a := range rt.arms {
		w := uint64(a.weight.Load())
		if w == 0 {
			continue
		}
		t.total += w
		t.cum = append(t.cum, t.total)
		t.idx = append(t.idx, i)
	}
	return t
}

// SetWeight changes one arm's traffic weight and atomically installs the new
// routing table. Raising a declared-shadow arm above zero starts serving it
// live traffic (it keeps being shadow-scored); the call fails if the arm is
// unknown or if the change would leave the router with zero total weight.
// Sticky assignment is preserved for contexts whose bucket stays within an
// unchanged prefix of the weight vector — the usual case when only the
// trailing challenger's weight moves.
func (rt *Router) SetWeight(name string, weight uint32) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var arm *Arm
	for _, a := range rt.arms {
		if a.header[0] == name {
			arm = a
			break
		}
	}
	if arm == nil {
		return fmt.Errorf("fleet: unknown arm %q", name)
	}
	old := arm.weight.Load()
	arm.weight.Store(weight)
	t := rt.buildTable()
	if t.total == 0 {
		arm.weight.Store(old)
		return errors.New("fleet: refusing weight change leaving zero total weight")
	}
	rt.table.Store(t)
	return nil
}

// Registry returns the router's slot registry.
func (rt *Router) Registry() *Registry { return rt.reg }

// Arms returns every declared arm in declaration order (the champion first),
// including arms whose current weight is zero. The slice is shared; callers
// must not mutate it.
func (rt *Router) Arms() []*Arm { return rt.arms }

// LiveArms reports how many arms currently carry live traffic (weight > 0).
func (rt *Router) LiveArms() int { return len(rt.table.Load().idx) }

// ShadowSlots returns the slots scored in shadow mode, or nil.
func (rt *Router) ShadowSlots() []*Slot {
	if rt.shadows == nil {
		return nil
	}
	return rt.shadows.slots
}

// AppendContextBytes interns a context held as raw byte slices against the
// router's base dictionary — the one interning a fleet request performs
// (queries outside the base vocabulary are dropped, exactly like
// single-model serving drops unknown queries). IDs are appended to dst (a
// pooled buffer on the hot path).
func (rt *Router) AppendContextBytes(dst query.Seq, context [][]byte) query.Seq {
	d := rt.baseDict.Load()
	for _, q := range context {
		if id, ok := d.LookupBytes(q); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// AppendContext is AppendContextBytes for string contexts (the batch path).
func (rt *Router) AppendContext(dst query.Seq, context []string) query.Seq {
	d := rt.baseDict.Load()
	for _, q := range context {
		if id, ok := d.Lookup(q); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// RefreshBase advances the interning base to the champion slot's current
// dictionary so vocabulary added by a champion reload becomes servable.
// The advance happens only when every arm and shadow slot still extends the
// candidate — the condition under which one interning stays valid in every
// model; otherwise the router keeps interning against the old base (still
// sound: every slot swap preserved its extension of it) and returns
// ErrDictIncompatible naming the lagging slot. Callers invoke it after
// reloading fleet slots; serving continues uninterrupted either way.
func (rt *Router) RefreshBase() error {
	next := rt.arms[0].slot.State().Rec.Dict()
	if next == rt.baseDict.Load() {
		return nil
	}
	check := func(s *Slot) error {
		if d := s.State().Rec.Dict(); !d.Extends(next) {
			return &ErrDictIncompatible{Slot: s.name, OldHash: next.Hash(), NewHash: d.Hash()}
		}
		return nil
	}
	for _, a := range rt.arms {
		if err := check(a.slot); err != nil {
			return err
		}
	}
	if rt.shadows != nil {
		for _, s := range rt.shadows.slots {
			if err := check(s); err != nil {
				return err
			}
		}
	}
	rt.baseDict.Store(next)
	return nil
}

// BaseDictHash fingerprints the current interning base (see /models).
func (rt *Router) BaseDictHash() uint64 { return rt.baseDict.Load().Hash() }

// HashSeq returns the routing hash of an interned context: FNV-1a over the
// IDs' big-endian bytes. The hash is a pure function of the interned context,
// which is what makes arm assignment sticky across requests and processes.
func HashSeq(ctx query.Seq) uint64 {
	h := uint64(fnvOffset64)
	for _, q := range ctx {
		for shift := 24; shift >= 0; shift -= 8 {
			h ^= uint64(byte(q >> shift))
			h *= fnvPrime64
		}
	}
	return h
}

// Route returns the arm index serving the interned context: the hash picks a
// bucket in [0, totalWeight) and the live arm owning that bucket wins, so
// assignment is deterministic (sticky) and weight-proportional under any
// fixed weight vector. Empty contexts go to the champion. Route reads one
// atomic weight-table snapshot and is allocation-free.
func (rt *Router) Route(ctx query.Seq) int {
	if len(ctx) == 0 {
		return 0
	}
	t := rt.table.Load()
	if len(t.idx) == 1 {
		return t.idx[0]
	}
	bucket := HashSeq(ctx) % t.total
	// Live arms are few (2-4): a linear scan over cumulative bounds beats
	// binary search's branch misses.
	for i, c := range t.cum {
		if bucket < c {
			return t.idx[i]
		}
	}
	return t.idx[len(t.idx)-1] // unreachable: bucket < total == last cum
}

// Arm returns the live arm at index i (as returned by Route).
func (rt *Router) Arm(i int) *Arm { return rt.arms[i] }

// RecordServe attributes one served request to arm i: per-arm request count
// and latency sample, the raw material for offline A/B comparison of the
// arms' logged answer quality and latency.
func (rt *Router) RecordServe(i int, tookMicros int64) {
	a := rt.arms[i]
	a.requests.Add(1)
	a.lat.Record(tookMicros)
}

// MergeLatency merges every arm's latency histogram into dst — the
// fleet-wide serving latency distribution, computed by bucket-wise addition
// (the mergeable-histogram property; no sample window is lost).
func (rt *Router) MergeLatency(dst *obs.Histogram) {
	for _, a := range rt.arms {
		dst.Merge(&a.lat)
	}
}

// RegisterObs exposes the router's per-arm instruments through reg: each
// arm's latency histogram and request counter appear in the Prometheus
// exposition under fleet_arm_<name>_*.
func (rt *Router) RegisterObs(reg *obs.Registry) {
	for _, a := range rt.arms {
		a := a
		reg.RegisterHistogram("fleet_arm_"+a.header[0]+"_latency_us", &a.lat)
		reg.CounterFunc("fleet_arm_"+a.header[0]+"_requests_total", a.requests.Load)
	}
}

// Shadow hands the served request to the shadow scorer, if any: every
// configured shadow slot will asynchronously answer the same (context, n)
// and record its divergence from the champion-side answer. Non-blocking; a
// full queue drops the sample (counted). champion is the answer served to
// the user — a cache-owned immutable slice.
func (rt *Router) Shadow(ctx query.Seq, n int, champion []core.Suggestion) {
	if rt.shadows == nil {
		return
	}
	rt.shadows.enqueue(ctx, n, champion)
}

// ShadowStats snapshots the divergence counters per shadow slot, nil when no
// shadow arms are configured.
func (rt *Router) ShadowStats() []ShadowStats {
	if rt.shadows == nil {
		return nil
	}
	return rt.shadows.stats()
}

// Close stops the shadow worker, if any. The router must not be handed new
// shadow work after Close; live routing keeps working.
func (rt *Router) Close() {
	if rt.shadows != nil {
		rt.shadows.close()
	}
}

// ArmStats is one live arm's /metrics and /models slice. Latency quantiles
// come from the arm's full-history histogram (upper-bounded estimates, at
// most 1/32 relative error, never under-reported).
type ArmStats struct {
	Name       string  `json:"name"`
	Weight     uint32  `json:"weight"`
	Share      float64 `json:"share"` // weight / total weight
	Requests   uint64  `json:"requests"`
	P50Micros  int64   `json:"latency_p50_us"`
	P99Micros  int64   `json:"latency_p99_us"`
	P999Micros int64   `json:"latency_p999_us"`
	MaxMicros  int64   `json:"latency_max_us"`
}

// ArmStats snapshots the per-arm serving counters in arm order. Share is
// computed against the current routing table's total, so a ramping arm's
// traffic fraction is visible as it moves.
func (rt *Router) ArmStats() []ArmStats {
	total := rt.table.Load().total
	out := make([]ArmStats, len(rt.arms))
	for i, a := range rt.arms {
		w := a.weight.Load()
		out[i] = ArmStats{
			Name:       a.header[0],
			Weight:     w,
			Share:      float64(w) / float64(total),
			Requests:   a.requests.Load(),
			P50Micros:  a.lat.Quantile(0.50),
			P99Micros:  a.lat.Quantile(0.99),
			P999Micros: a.lat.Quantile(0.999),
			MaxMicros:  a.lat.Max(),
		}
	}
	return out
}

// ShadowStatsFor returns the divergence snapshot of one shadow slot by name.
func (rt *Router) ShadowStatsFor(name string) (ShadowStats, bool) {
	if rt.shadows == nil {
		return ShadowStats{}, false
	}
	return rt.shadows.statsFor(name)
}

// ResetShadow zeroes one shadow slot's divergence counters — called when a
// new challenger generation lands in the slot, so ramp decisions never mix
// measurements across generations.
func (rt *Router) ResetShadow(name string) {
	if rt.shadows != nil {
		rt.shadows.reset(name)
	}
}

// Promote installs the named challenger arm's current model as the champion:
// the champion slot swaps to the challenger's recommender (normal dict-extends
// rules apply), the challenger's weight returns to zero, its shadow counters
// reset, and the interning base advances so vocabulary the challenger learned
// becomes servable. The challenger slot itself is untouched — the next
// ingestion push lands there and the ramp starts over.
func (rt *Router) Promote(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var arm *Arm
	for _, a := range rt.arms[1:] {
		if a.header[0] == name {
			arm = a
			break
		}
	}
	if arm == nil {
		return fmt.Errorf("fleet: unknown challenger arm %q", name)
	}
	rec := arm.slot.State().Rec
	if _, err := rt.arms[0].slot.Swap(rec, false); err != nil {
		return fmt.Errorf("fleet: promoting %q: %w", name, err)
	}
	arm.weight.Store(0)
	rt.table.Store(rt.buildTable())
	if rt.shadows != nil {
		rt.shadows.reset(name)
	}
	return rt.RefreshBase()
}
