package fleet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

// trainRec builds a tiny recommender over base vocabulary (o2 …) plus any
// extra queries interned after it, trained on sessions over the extra
// vocabulary when given (so "challenger" models answer differently), the
// base chain otherwise.
func trainRec(t testing.TB, extra ...string) core.Recommender {
	t.Helper()
	d := query.NewDict()
	a, b, c := d.Intern("o2"), d.Intern("o2 mobile"), d.Intern("o2 mobile phones")
	var ids []query.ID
	for _, q := range extra {
		ids = append(ids, d.Intern(q))
	}
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b, c})
		if len(ids) >= 2 {
			// Give the extended model its own behaviour: after o2, it has
			// also seen the extra chain.
			s := append(query.Seq{a}, ids...)
			sessions = append(sessions, s)
		}
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

// permutedRec trains a model whose dictionary assigns the base vocabulary
// different IDs — the incompatible-reload case.
func permutedRec(t testing.TB) core.Recommender {
	t.Helper()
	d := query.NewDict()
	c, b, a := d.Intern("o2 mobile phones"), d.Intern("o2 mobile"), d.Intern("o2")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b, c})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

func newTestRouter(t testing.TB, wChamp, wChal uint32) (*Registry, *Router) {
	t.Helper()
	reg := NewRegistry(1 << 10)
	if _, err := reg.Add("champion", trainRec(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("challenger", trainRec(t, "smtp", "pop3"), nil); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(reg,
		ArmSpec{Name: "champion", Weight: wChamp},
		ArmSpec{Name: "challenger", Weight: wChal})
	if err != nil {
		t.Fatal(err)
	}
	return reg, rt
}

// TestRouteDeterministicAndProportional is the A/B assignment property test:
// over 1e5 random contexts, assignment must be (a) sticky — identical on
// every re-evaluation — and (b) weight-proportional within ±1%.
func TestRouteDeterministicAndProportional(t *testing.T) {
	_, rt := newTestRouter(t, 90, 10)
	defer rt.Close()

	const contexts = 100000
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, len(rt.Arms()))
	ctx := make(query.Seq, 0, 4)
	for i := 0; i < contexts; i++ {
		ctx = ctx[:0]
		for l := 1 + rng.Intn(4); l > 0; l-- {
			ctx = append(ctx, query.ID(rng.Intn(1<<20)))
		}
		arm := rt.Route(ctx)
		for rep := 0; rep < 3; rep++ {
			if rt.Route(ctx) != arm {
				t.Fatalf("assignment of %v is not sticky", ctx)
			}
		}
		counts[arm]++
	}
	champShare := float64(counts[0]) / contexts
	if champShare < 0.89 || champShare > 0.91 {
		t.Fatalf("champion share = %.4f, want 0.90 ± 0.01 (counts %v)", champShare, counts)
	}
}

// TestRouteEmptyAndSingleArm: empty contexts and single-arm routers always
// serve the champion.
func TestRouteEmptyAndSingleArm(t *testing.T) {
	reg := NewRegistry(64)
	if _, err := reg.Add("only", trainRec(t), nil); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(reg, ArmSpec{Name: "only", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := rt.Route(query.Seq{query.ID(i)}); got != 0 {
			t.Fatalf("single-arm route = %d", got)
		}
	}
	_, rt2 := newTestRouter(t, 1, 1)
	defer rt2.Close()
	if got := rt2.Route(nil); got != 0 {
		t.Fatalf("empty context routed to arm %d, want champion", got)
	}
}

// TestRouterRejectsIncompatibleArm: an arm whose dictionary does not extend
// the champion's must be rejected at construction.
func TestRouterRejectsIncompatibleArm(t *testing.T) {
	reg := NewRegistry(64)
	if _, err := reg.Add("champion", trainRec(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("permuted", permutedRec(t), nil); err != nil {
		t.Fatal(err)
	}
	_, err := NewRouter(reg,
		ArmSpec{Name: "champion", Weight: 1},
		ArmSpec{Name: "permuted", Weight: 1})
	var dictErr *ErrDictIncompatible
	if !errors.As(err, &dictErr) {
		t.Fatalf("err = %v, want ErrDictIncompatible", err)
	}
	if dictErr.OldHash == dictErr.NewHash {
		t.Fatal("error must carry distinct dictionary hashes")
	}
}

// TestSlotSwapDictCompat: a slot swap must reject dictionary permutations
// (ErrDictIncompatible with both hashes), accept ID-preserving extensions,
// and accept anything under force.
func TestSlotSwapDictCompat(t *testing.T) {
	reg := NewRegistry(64)
	slot, err := reg.Add("m", trainRec(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slot.Swap(permutedRec(t), false); err == nil {
		t.Fatal("permuted dictionary swap succeeded")
	} else {
		var dictErr *ErrDictIncompatible
		if !errors.As(err, &dictErr) || dictErr.Slot != "m" {
			t.Fatalf("err = %v", err)
		}
	}
	if slot.State().Gen != 1 {
		t.Fatalf("generation moved on rejected swap: %d", slot.State().Gen)
	}
	if gen, err := slot.Swap(trainRec(t, "smtp"), false); err != nil || gen != 2 {
		t.Fatalf("extension swap = (%d, %v)", gen, err)
	}
	if gen, err := slot.Swap(permutedRec(t), true); err != nil || gen != 3 {
		t.Fatalf("forced swap = (%d, %v)", gen, err)
	}
}

// TestConcurrentSwapAndRoute hammers routing + serving through the registry
// while another goroutine swaps the challenger slot, under -race: readers
// must always observe a consistent (model, generation) pair and routing must
// stay stable throughout.
func TestConcurrentSwapAndRoute(t *testing.T) {
	reg, rt := newTestRouter(t, 3, 1)
	defer rt.Close()
	chal := reg.Slot("challenger")

	ctxs := make([]query.Seq, 64)
	rng := rand.New(rand.NewSource(11))
	for i := range ctxs {
		ctxs[i] = query.Seq{query.ID(rng.Intn(1 << 16)), query.ID(rng.Intn(1 << 16))}
	}
	want := make([]int, len(ctxs))
	for i, ctx := range ctxs {
		want[i] = rt.Route(ctx)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := (i + g) % len(ctxs)
				arm := rt.Route(ctxs[idx])
				if arm != want[idx] {
					t.Errorf("assignment changed under swaps: ctx %d -> arm %d, want %d", idx, arm, want[idx])
					return
				}
				slot := rt.Arm(arm).Slot()
				st := slot.State()
				reg.Cache().RecommendSlot(slot.ID(), st.Gen, st.Rec, ctxs[idx], 5)
				rt.RecordServe(arm, 1)
			}
		}(g)
	}
	for i := 0; i < 25; i++ {
		if _, err := chal.Swap(trainRec(t, "smtp", "pop3"), false); err != nil {
			t.Error(err)
			break
		}
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := chal.State().Gen; got != 26 {
		t.Fatalf("challenger generation = %d, want 26", got)
	}
}

// TestShadowNeverBlocks: with no worker draining the queue, enqueueing far
// past the queue depth must return promptly (dropping and counting the
// overflow) instead of ever blocking the caller — the serving goroutine's
// latency guarantee.
func TestShadowNeverBlocks(t *testing.T) {
	reg := NewRegistry(64)
	slot, err := reg.Add("chal", trainRec(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built shadower with no worker goroutine: the queue can only fill.
	sh := &shadower{
		reg:   reg,
		slots: []*Slot{slot},
		jobs:  make(chan *shadowJob, shadowQueueDepth),
		div:   make([]shadowCounters, 1),
		done:  make(chan struct{}),
	}
	sh.pool.New = func() any { return &shadowJob{ctx: make(query.Seq, 0, 16)} }

	const extra = 50
	start := time.Now()
	for i := 0; i < shadowQueueDepth+extra; i++ {
		sh.enqueue(query.Seq{1, 2}, 5, nil)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("enqueue stalled for %s", took)
	}
	if got := sh.dropped.Load(); got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}
}

// TestShadowDivergence runs real shadow scoring: a shadow slot holding the
// identical model must converge to zero top-1 mismatch and full rank
// overlap; a genuinely different model must register divergence.
func TestShadowDivergence(t *testing.T) {
	reg := NewRegistry(1 << 10)
	if _, err := reg.Add("champion", trainRec(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("twin", trainRec(t), nil); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(reg,
		ArmSpec{Name: "champion", Weight: 1},
		ArmSpec{Name: "twin", Weight: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.LiveArms() != 1 || len(rt.Arms()) != 2 || len(rt.ShadowSlots()) != 1 {
		t.Fatalf("live = %d, arms = %d, shadows = %d", rt.LiveArms(), len(rt.Arms()), len(rt.ShadowSlots()))
	}

	champ := rt.Arm(0).Slot()
	ctx := core.InternContext(champ.State().Rec.Dict(), []string{"o2"})
	const samples = 32
	for i := 0; i < samples; i++ {
		st := champ.State()
		recs := reg.Cache().RecommendSlot(champ.ID(), st.Gen, st.Rec, ctx, 5)
		rt.Shadow(ctx, 5, recs)
	}
	deadline := time.Now().Add(5 * time.Second)
	var stats []ShadowStats
	for {
		stats = rt.ShadowStats()
		if len(stats) == 1 && stats[0].Samples+stats[0].Dropped >= samples {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow worker processed %+v of %d samples", stats, samples)
		}
		time.Sleep(time.Millisecond)
	}
	if stats[0].Samples == 0 {
		t.Fatalf("all shadow samples dropped: %+v", stats[0])
	}
	if stats[0].Top1MismatchRate != 0 || stats[0].MeanRankOverlap != 1 {
		t.Fatalf("identical model diverged: %+v", stats[0])
	}
}

// TestRingDistributionAndStability: virtual nodes must split the keyspace
// near-evenly, lookups must be deterministic across independently built
// rings, and growing the ring by one shard must remap only a minority of
// contexts (the consistent-hashing property; modulo sharding remaps ~3/4).
func TestRingDistributionAndStability(t *testing.T) {
	const shards, probes = 3, 20000
	r := NewRing(shards, 0)
	r2 := NewRing(shards, 0)
	grown := NewRing(shards+1, 0)

	rng := rand.New(rand.NewSource(5))
	counts := make([]int, shards)
	moved := 0
	for i := 0; i < probes; i++ {
		h := rng.Uint64()
		s := r.Lookup(h)
		if s2 := r2.Lookup(h); s2 != s {
			t.Fatalf("independently built rings disagree: %d vs %d", s, s2)
		}
		counts[s]++
		if g := grown.Lookup(h); g != s {
			if g != shards {
				t.Fatalf("hash %x moved between surviving shards %d -> %d", h, s, g)
			}
			moved++
		}
	}
	for s, c := range counts {
		share := float64(c) / probes
		if share < 0.15 || share > 0.55 {
			t.Fatalf("shard %d owns %.3f of the keyspace (counts %v)", s, share, counts)
		}
	}
	movedShare := float64(moved) / probes
	if movedShare > 0.5 {
		t.Fatalf("adding one shard remapped %.3f of contexts", movedShare)
	}
	if moved == 0 {
		t.Fatal("adding one shard remapped nothing: ring is not hashing")
	}
}

// TestHashRawMatchesStringContext: the GET-path streaming percent-decoding
// hash must agree with the batch path's hash of the decoded strings, so one
// context always lands on one shard regardless of entry point or encoding.
func TestHashRawMatchesStringContext(t *testing.T) {
	cases := []struct {
		raw string
		ctx []string
	}{
		{"q=nokia+n73", []string{"nokia n73"}},
		{"q=nokia%20n73", []string{"nokia n73"}},
		{"q=o2&q=o2+mobile&n=5", []string{"o2", "o2 mobile"}},
		{"n=3&q=a%2Bb", []string{"a+b"}},
		{"q=", []string{""}},
		{"q=%e4%b8%ad", []string{"中"}},
	}
	for _, c := range cases {
		if got, want := hashRawQueryContext(c.raw), hashStringContext(c.ctx); got != want {
			t.Errorf("hash(%q) = %x, hash(%v) = %x", c.raw, got, c.ctx, want)
		}
	}
	// Boundary aliasing: ["ab"] vs ["a","b"] must differ.
	if hashStringContext([]string{"ab"}) == hashStringContext([]string{"a", "b"}) {
		t.Fatal("context boundary aliasing")
	}
}
