package fleet

import (
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual node count used when callers
// pass a non-positive value: enough points that the keyspace split stays
// within a few percent of even for small rings, cheap enough that ring
// construction is trivial.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a shard.
type ringPoint struct {
	hash  uint64
	shard uint16
}

// Ring is a consistent-hash ring mapping context hashes to shard replicas.
// Each shard owns many virtual nodes, so (a) the keyspace splits near-evenly
// and (b) adding or removing one replica only remaps the ~1/N of contexts
// whose arcs it owned, leaving every other replica's result cache and mapped
// trie pages warm — the property plain modulo sharding lacks. Immutable
// after construction; Lookup is lock- and allocation-free.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

// NewRing builds a ring of n shards with vnodes virtual nodes each
// (<= 0 selects DefaultVirtualNodes). Virtual node positions derive from an
// FNV-1a hash of the (shard, vnode) pair, so every process building a ring
// of the same size agrees on the mapping — routers can be replicated.
func NewRing(n, vnodes int) *Ring {
	if n < 1 {
		n = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{points: make([]ringPoint, 0, n*vnodes), shards: n}
	var key [8]byte
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			key[0], key[1], key[2], key[3] = byte(s>>24), byte(s>>16), byte(s>>8), byte(s)
			key[4], key[5], key[6], key[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
			// FNV alone has weak high-bit avalanche on short structured keys
			// and ring positions are compared over all 64 bits, so finalise
			// with a full-width mixer or the points cluster.
			r.points = append(r.points, ringPoint{hash: mix64(fnv1a64(key[:])), shard: uint16(s)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding points tie-break on shard so construction stays
		// deterministic across processes.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shard replicas on the ring.
func (r *Ring) Shards() int { return r.shards }

// LookupN appends the ordered preference list for a context hash to dst: up
// to n distinct shards, walking clockwise from the probe point. The first
// element is exactly Lookup(h) — the primary — and each further element is
// the shard whose virtual node is met next on the circle, so every process
// building the same ring agrees on the whole list, not just the primary.
// The walk is lock- and allocation-free when dst has capacity n.
func (r *Ring) LookupN(h uint64, n int, dst []int) []int {
	if n > r.shards {
		n = r.shards
	}
	if n < 1 {
		n = 1
	}
	h = mix64(h)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	// Small n and small shard counts: a linear membership scan over the
	// collected prefix beats any set structure.
	start := len(dst)
	for probes := 0; probes < len(pts) && len(dst)-start < n; probes++ {
		s := int(pts[(i+probes)%len(pts)].shard)
		seen := false
		for _, got := range dst[start:] {
			if got == s {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, s)
		}
	}
	return dst
}

// Lookup maps a context hash to its owning shard: the probe is finalised
// with the same full-width mixer as the virtual nodes (context hashes are
// FNV too), then the first virtual node at or clockwise of it wins (wrapping
// to the first point past the top of the circle).
func (r *Ring) Lookup(h uint64) int {
	h = mix64(h)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return int(pts[i].shard)
}

// mix64 is the 64-bit murmur3 finaliser: a bijective avalanche over all 64
// bits, applied to FNV outputs before they are used as ring positions.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// FNV-1a parameters shared by every hash in this package (virtual-node
// positions, the A/B routing hash, and the shard-key hashes, whose GET and
// batch variants must agree byte for byte).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a64 hashes b with FNV-1a.
func fnv1a64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}
