package fleet

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/query"
)

// shadowQueueDepth bounds the shadow job queue. Shadow scoring is a sampled
// measurement, not a guarantee: when the challenger cannot keep up, samples
// are dropped (and counted) rather than ever back-pressuring the serving
// goroutine.
const shadowQueueDepth = 1024

// shadowJob carries one served request to the shadow worker. Jobs are pooled
// and their context buffer recycled, so steady-state enqueueing does not
// allocate. champion is the cache-owned immutable slice that answered the
// live request.
type shadowJob struct {
	ctx      query.Seq
	n        int
	champion []core.Suggestion
}

// shadowCounters aggregates one shadow slot's divergence measurements.
// overlapMilliSum accumulates rank overlap scaled by 1000 so the mean stays
// an atomic integer.
type shadowCounters struct {
	samples         atomic.Uint64
	covered         atomic.Uint64
	top1Mismatches  atomic.Uint64
	overlapMilliSum atomic.Uint64
}

// ShadowStats is one shadow slot's divergence snapshot, exposed through
// /models and /metrics: how often the challenger's top suggestion differs
// from the champion's, and how much of the served top-N list the two models
// share on average. Family names the challenger's model family (HMM,
// cluster, pairwise, MVMM) and Coverage its answer rate, so the /v1/metrics
// shadow block reads as a live cross-family comparison table — the online
// counterpart of the paper's offline ranking comparison, computable without
// ever serving the challenger.
type ShadowStats struct {
	Name             string  `json:"name"`
	Family           string  `json:"family,omitempty"`
	Samples          uint64  `json:"samples"`
	Dropped          uint64  `json:"dropped"`
	Coverage         float64 `json:"coverage"`
	Top1MismatchRate float64 `json:"top1_mismatch_rate"`
	MeanRankOverlap  float64 `json:"mean_rank_overlap"`
}

// shadower owns the asynchronous challenger scoring: a bounded queue, one
// worker goroutine, and per-slot divergence counters. One worker is enough —
// shadow load equals live load at most, and sampling (dropping) under burst
// is the design, not a failure.
type shadower struct {
	reg     *Registry
	slots   []*Slot
	jobs    chan *shadowJob
	pool    sync.Pool
	dropped atomic.Uint64
	div     []shadowCounters // indexed like slots
	done    chan struct{}
	once    sync.Once
}

func newShadower(reg *Registry, slots []*Slot) *shadower {
	sh := &shadower{
		reg:   reg,
		slots: slots,
		jobs:  make(chan *shadowJob, shadowQueueDepth),
		div:   make([]shadowCounters, len(slots)),
		done:  make(chan struct{}),
	}
	sh.pool.New = func() any { return &shadowJob{ctx: make(query.Seq, 0, 16)} }
	go sh.run()
	return sh
}

// enqueue hands a served request to the worker without ever blocking: when
// the queue is full the sample is dropped and counted. The context lives in
// a pooled request buffer upstream, so it is copied into the job's own
// recycled buffer first.
func (sh *shadower) enqueue(ctx query.Seq, n int, champion []core.Suggestion) {
	job := sh.pool.Get().(*shadowJob)
	job.ctx = append(job.ctx[:0], ctx...)
	job.n = n
	job.champion = champion
	select {
	case sh.jobs <- job:
	default:
		sh.dropped.Add(1)
		sh.release(job)
	}
}

func (sh *shadower) release(job *shadowJob) {
	job.champion = nil // do not retain result slices in the pool
	sh.pool.Put(job)
}

func (sh *shadower) close() {
	sh.once.Do(func() { close(sh.done) })
}

// run is the worker loop: score every queued request against every shadow
// slot through the shared cache (which doubles as cache warming for the
// challenger) and fold the divergence into the counters.
func (sh *shadower) run() {
	for {
		select {
		case <-sh.done:
			return
		case job := <-sh.jobs:
			for i, slot := range sh.slots {
				st := slot.State()
				got := sh.reg.cache.RecommendSlot(slot.id, st.Gen, st.Rec, job.ctx, job.n)
				sh.record(&sh.div[i], job.champion, got)
			}
			sh.release(job)
		}
	}
}

// record folds one (champion, challenger) answer pair into the counters:
// top-1 mismatch (do the models disagree on the single suggestion a user is
// most likely to click?) and rank overlap (the Jaccard-style share of the
// union of the two top-N lists both models produced).
func (sh *shadower) record(c *shadowCounters, champion, got []core.Suggestion) {
	c.samples.Add(1)
	if len(got) > 0 {
		c.covered.Add(1)
	}
	if top1Mismatch(champion, got) {
		c.top1Mismatches.Add(1)
	}
	c.overlapMilliSum.Add(uint64(rankOverlapMilli(champion, got)))
}

// top1Mismatch reports whether the two answers disagree about the top
// suggestion. Two empty answers agree; one-sided emptiness disagrees.
func top1Mismatch(a, b []core.Suggestion) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) != len(b)
	}
	return a[0].Query != b[0].Query
}

// rankOverlapMilli returns 1000 * |A ∩ B| / max(|A|, |B|) over the two
// suggestion lists' query sets — 1000 when the models surface the same
// result set (in any order), 0 when they share nothing. Lists are tiny
// (N ≈ 5), so the quadratic scan beats building sets.
func rankOverlapMilli(a, b []core.Suggestion) int {
	if len(a) == 0 && len(b) == 0 {
		return 1000
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	shared := 0
	for _, x := range a {
		for _, y := range b {
			if x.Query == y.Query {
				shared++
				break
			}
		}
	}
	return 1000 * shared / max
}

// statRow snapshots one slot's counters into a ShadowStats row.
func (sh *shadower) statRow(i int) ShadowStats {
	slot := sh.slots[i]
	n := sh.div[i].samples.Load()
	s := ShadowStats{Name: slot.name, Samples: n, Dropped: sh.dropped.Load()}
	if p := slot.State().Rec.Predictor(); p != nil {
		s.Family = p.Shape().Family
	}
	if n > 0 {
		s.Coverage = float64(sh.div[i].covered.Load()) / float64(n)
		s.Top1MismatchRate = float64(sh.div[i].top1Mismatches.Load()) / float64(n)
		s.MeanRankOverlap = float64(sh.div[i].overlapMilliSum.Load()) / (1000 * float64(n))
	}
	return s
}

// stats snapshots the per-slot divergence counters. Dropped samples are a
// queue-wide count reported on every row.
func (sh *shadower) stats() []ShadowStats {
	out := make([]ShadowStats, len(sh.slots))
	for i := range sh.slots {
		out[i] = sh.statRow(i)
	}
	return out
}

// statsFor returns the row of one shadow slot by name.
func (sh *shadower) statsFor(name string) (ShadowStats, bool) {
	for i, slot := range sh.slots {
		if slot.name == name {
			return sh.statRow(i), true
		}
	}
	return ShadowStats{}, false
}

// reset zeroes one slot's divergence counters (new challenger generation:
// stale measurements must not steer the ramp). The queue-wide dropped count
// is left alone.
func (sh *shadower) reset(name string) {
	for i, slot := range sh.slots {
		if slot.name == name {
			sh.div[i].samples.Store(0)
			sh.div[i].covered.Store(0)
			sh.div[i].top1Mismatches.Store(0)
			sh.div[i].overlapMilliSum.Store(0)
			return
		}
	}
}
