package fleet

import (
	"sync/atomic"
	"time"
)

// Shard health tracking: a per-shard circuit breaker fed by live traffic.
// Every routed attempt reports its outcome here; after FailThreshold
// consecutive failures the shard is ejected (state open) and the preference
// walk skips it, so traffic self-heals onto the replicas without any config
// change. After ProbeAfter one request is allowed through as a half-open
// probe — success closes the breaker and restores the shard to the walk,
// failure re-opens it for another ProbeAfter window. All transitions are
// lock-free: the serving path only ever reads three atomics per shard.

// Health states of one shard breaker.
const (
	healthClosed   = int32(iota) // healthy, serving
	healthOpen                   // ejected after consecutive failures
	healthHalfOpen               // one probe in flight
)

// healthStateNames maps breaker states to their /metrics strings.
var healthStateNames = [...]string{"healthy", "ejected", "probing"}

// DefaultFailThreshold is the consecutive-failure count that ejects a shard
// when RouterOptions.FailThreshold is zero.
const DefaultFailThreshold = 3

// DefaultProbeAfter is the ejection cool-down before a half-open probe when
// RouterOptions.ProbeAfter is zero.
const DefaultProbeAfter = time.Second

// shardHealth is one shard's breaker. The zero value is a closed (healthy)
// breaker.
type shardHealth struct {
	state       atomic.Int32 // healthClosed / healthOpen / healthHalfOpen
	consecFails atomic.Int32
	openedAt    atomic.Int64 // unix nanos of the last ejection

	successes atomic.Uint64
	failures  atomic.Uint64
	ejections atomic.Uint64
}

// healthConfig bundles the breaker thresholds shared by a router's shards.
type healthConfig struct {
	failThreshold int32
	probeAfter    time.Duration
}

func (c healthConfig) withDefaults() healthConfig {
	if c.failThreshold <= 0 {
		c.failThreshold = DefaultFailThreshold
	}
	if c.probeAfter <= 0 {
		c.probeAfter = DefaultProbeAfter
	}
	return c
}

// available reports whether the preference walk may send this shard live
// traffic right now. An open breaker whose cool-down has elapsed admits
// exactly one caller (the half-open probe); everyone else keeps skipping the
// shard until the probe reports back.
func (h *shardHealth) available(cfg healthConfig, now time.Time) bool {
	switch h.state.Load() {
	case healthClosed:
		return true
	case healthOpen:
		if now.UnixNano()-h.openedAt.Load() < int64(cfg.probeAfter) {
			return false
		}
		// One winner flips open → half-open and carries the probe.
		return h.state.CompareAndSwap(healthOpen, healthHalfOpen)
	default: // healthHalfOpen: a probe is already in flight
		return false
	}
}

// releaseProbe hands back a half-open probe claim that ended up carrying no
// traffic (the batch planner claims availability per round before it knows
// whether any items group onto the shard). Without the release the breaker
// would stay half-open forever, with every caller skipping the shard.
func (h *shardHealth) releaseProbe() {
	h.state.CompareAndSwap(healthHalfOpen, healthOpen)
}

// recordSuccess closes the breaker: the shard answered, whatever state the
// breaker was in.
func (h *shardHealth) recordSuccess() {
	h.successes.Add(1)
	h.consecFails.Store(0)
	if h.state.Load() != healthClosed {
		h.state.Store(healthClosed)
	}
}

// recordFailure counts one failed attempt and ejects the shard when the
// consecutive-failure threshold is reached (or immediately when the failure
// was the half-open probe).
func (h *shardHealth) recordFailure(cfg healthConfig, now time.Time) {
	h.failures.Add(1)
	n := h.consecFails.Add(1)
	if h.state.CompareAndSwap(healthHalfOpen, healthOpen) {
		// Failed probe: back to ejected for another cool-down window.
		h.openedAt.Store(now.UnixNano())
		return
	}
	if n >= cfg.failThreshold && h.state.CompareAndSwap(healthClosed, healthOpen) {
		h.openedAt.Store(now.UnixNano())
		h.ejections.Add(1)
	}
}

// ShardHealthStats is one shard's breaker snapshot in /v1/metrics and
// /healthz.
type ShardHealthStats struct {
	Shard               int    `json:"shard"`
	State               string `json:"state"` // "healthy", "ejected" or "probing"
	ConsecutiveFailures int32  `json:"consecutive_failures"`
	Successes           uint64 `json:"successes"`
	Failures            uint64 `json:"failures"`
	Ejections           uint64 `json:"ejections"`
}

// snapshot reads the breaker counters for metrics reporting.
func (h *shardHealth) snapshot(shard int) ShardHealthStats {
	st := h.state.Load()
	if st < 0 || int(st) >= len(healthStateNames) {
		st = healthClosed
	}
	return ShardHealthStats{
		Shard:               shard,
		State:               healthStateNames[st],
		ConsecutiveFailures: h.consecFails.Load(),
		Successes:           h.successes.Load(),
		Failures:            h.failures.Load(),
		Ejections:           h.ejections.Load(),
	}
}
