package fleet

import (
	"fmt"

	"repro/internal/jsonspan"
)

// The batch fan-out never decodes batch items: it splits the "requests" and
// "results" arrays into raw byte spans with internal/jsonspan and forwards
// them verbatim. The one semantic piece it needs — hashing each item's
// context strings for ring lookup — streams the unescaped bytes straight
// into the FNV state below, so routing a 64-item batch allocates nothing.

// hashJSONContext returns hashStringContext of the "context" array inside the
// batch item span without decoding it. Items without a context hash as empty
// (the shard will reject them with a proper 400 — routing just has to be
// deterministic).
func hashJSONContext(item []byte) (uint64, error) {
	h := uint64(fnvOffset64)
	v, err := jsonspan.FindKey(item, 0, "context")
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return h, nil
	}
	v = jsonspan.SkipSpace(item, v)
	if v >= len(item) || item[v] != '[' {
		// Non-array context: let the shard produce the real error.
		return h, nil
	}
	i := v + 1
	for {
		i = jsonspan.SkipSpace(item, i)
		if i >= len(item) {
			return 0, fmt.Errorf("unterminated context array")
		}
		if item[i] == ']' {
			return h, nil
		}
		if item[i] == ',' {
			i++
			continue
		}
		if item[i] != '"' {
			return h, nil // non-string element: shard's problem
		}
		end, err := jsonspan.SkipString(item, i)
		if err != nil {
			return 0, err
		}
		h = hashJSONStringInto(h, item[i+1:end-1])
		h ^= 0xFF
		h *= fnvPrime64
		i = end
	}
}

// hashJSONStringInto mixes the unescaped bytes of a JSON string body (the
// token without its quotes) into the FNV state. The escape-free fast path
// touches no memory but the token; escaped tokens are unescaped into a stack
// buffer chunk by chunk.
func hashJSONStringInto(h uint64, tok []byte) uint64 {
	i := 0
	for i < len(tok) && tok[i] != '\\' {
		h ^= uint64(tok[i])
		h *= fnvPrime64
		i++
	}
	if i == len(tok) {
		return h
	}
	var buf [64]byte
	for _, c := range jsonspan.AppendUnescaped(buf[:0], tok[i:]) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}
