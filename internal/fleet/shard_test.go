package fleet_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/query"
	"repro/internal/serve"
)

func shardTestRec(t testing.TB) core.Recommender {
	t.Helper()
	d := query.NewDict()
	a, b, c := d.Intern("o2"), d.Intern("o2 mobile"), d.Intern("o2 mobile phones")
	x, y := d.Intern("nokia n73"), d.Intern("nokia n73 themes")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b, c}, query.Seq{x, y})
	}
	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 50
	cfg.Mixture.NewtonIters = 3
	return core.TrainFromSessions(d, sessions, cfg)
}

// tookRE strips the request-timing members, the only legitimately
// nondeterministic bytes in a /suggest response.
var tookRE = regexp.MustCompile(`"took_us":\d+`)

func stripTook(body []byte) string {
	return tookRE.ReplaceAllString(string(body), `"took_us":X`)
}

func getBody(t *testing.T, url string) ([]byte, http.Header, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw, resp.Header, resp.StatusCode
}

// newLoopbackRing builds a 3-shard loopback ring over handlers sharing one
// model — the in-process deployment of the consistent-hash fan-out.
func newLoopbackRing(t *testing.T, rec core.Recommender, shards int) *fleet.ShardRouter {
	t.Helper()
	handlers := make([]http.Handler, shards)
	for i := range handlers {
		handlers[i] = serve.NewHandler(rec, 5)
	}
	router, err := fleet.NewShardRouter(fleet.NewRing(shards, 0), fleet.NewLoopbackTransport(handlers...))
	if err != nil {
		t.Fatal(err)
	}
	return router
}

// TestLoopbackRingByteIdentical is the acceptance check for the shard ring:
// a 3-shard loopback ring must answer /suggest with byte-identical bodies to
// direct single-model serving (modulo the timing member), label each
// response with its shard, and route each context to exactly one sticky
// shard that /route agrees with.
func TestLoopbackRingByteIdentical(t *testing.T) {
	rec := shardTestRec(t)
	direct := httptest.NewServer(serve.NewHandler(rec, 5))
	defer direct.Close()
	router := newLoopbackRing(t, rec, 3)
	ringSrv := httptest.NewServer(router)
	defer ringSrv.Close()

	queries := []string{
		"q=o2", "q=o2+mobile", "q=o2&q=o2+mobile", "q=nokia+n73",
		"q=nokia%20n73&n=2", "q=o2+mobile+phones&q=o2", "q=unknown+stuff",
		"q=o2&n=1",
	}
	shardsSeen := map[string]bool{}
	for _, qs := range queries {
		wantBody, _, wantCode := getBody(t, direct.URL+"/suggest?"+qs)
		gotBody, hdr, gotCode := getBody(t, ringSrv.URL+"/suggest?"+qs)
		if wantCode != gotCode {
			t.Fatalf("%s: status %d vs %d", qs, gotCode, wantCode)
		}
		if stripTook(gotBody) != stripTook(wantBody) {
			t.Fatalf("%s:\nring:   %s\ndirect: %s", qs, gotBody, wantBody)
		}
		shard := hdr.Get("X-Serve-Shard")
		if shard == "" {
			t.Fatalf("%s: missing X-Serve-Shard", qs)
		}
		shardsSeen[shard] = true

		// Stickiness: replay must hit the same shard, and /route must agree.
		for rep := 0; rep < 2; rep++ {
			_, hdr2, _ := getBody(t, ringSrv.URL+"/suggest?"+qs)
			if got := hdr2.Get("X-Serve-Shard"); got != shard {
				t.Fatalf("%s flapped shards: %s then %s", qs, shard, got)
			}
		}
		raw, _, _ := getBody(t, ringSrv.URL+"/route?"+qs)
		var ri fleet.RouteResponse
		if err := json.Unmarshal(raw, &ri); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ri.Shard) != shard {
			t.Fatalf("%s: /route says shard %d but %s served", qs, ri.Shard, shard)
		}
	}
	if len(shardsSeen) < 2 {
		t.Fatalf("8 distinct contexts all landed on shards %v", shardsSeen)
	}
}

// TestRingBatchFanout: a batch spanning several shards must come back
// complete, in order, and with the same suggestions the direct handler
// produces.
func TestRingBatchFanout(t *testing.T) {
	rec := shardTestRec(t)
	direct := httptest.NewServer(serve.NewHandler(rec, 5))
	defer direct.Close()
	router := newLoopbackRing(t, rec, 3)
	ringSrv := httptest.NewServer(router)
	defer ringSrv.Close()

	body := `{"requests":[{"context":["o2"]},{"context":["nokia n73"],"n":1},{"context":["o2","o2 mobile"]},{"context":["never seen"]}]}`
	post := func(url string) serve.BatchResponse {
		resp, err := http.Post(url+"/suggest/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, raw)
		}
		var out serve.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want, got := post(direct.URL), post(ringSrv.URL)
	if len(got.Results) != len(want.Results) {
		t.Fatalf("ring answered %d results, direct %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if len(got.Results[i].Context) != len(want.Results[i].Context) {
			t.Fatalf("result %d context mismatch", i)
		}
		ws, gs := want.Results[i].Suggestions, got.Results[i].Suggestions
		if len(ws) != len(gs) {
			t.Fatalf("result %d: ring %d suggestions, direct %d", i, len(gs), len(ws))
		}
		for j := range ws {
			if ws[j] != gs[j] {
				t.Fatalf("result %d suggestion %d: ring %+v, direct %+v", i, j, gs[j], ws[j])
			}
		}
	}

	// Router metrics: the batch counted, fan-outs happened, and shard
	// counters sum to the routed contexts.
	raw, _, _ := getBody(t, ringSrv.URL+"/metrics")
	var m fleet.ShardRouterMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.BatchRequests != 1 || m.BatchFanouts == 0 {
		t.Fatalf("router metrics = %+v", m)
	}
	var sum uint64
	for _, c := range m.ContextsPerShard {
		sum += c
	}
	if sum != 4 {
		t.Fatalf("per-shard contexts sum to %d, want 4 (%+v)", sum, m)
	}
}

// TestHTTPTransportFanout runs the same ring over real HTTP shard servers —
// the distributed deployment — and checks a GET and a cross-shard batch
// against direct serving.
func TestHTTPTransportFanout(t *testing.T) {
	rec := shardTestRec(t)
	direct := httptest.NewServer(serve.NewHandler(rec, 5))
	defer direct.Close()

	var urls []string
	for i := 0; i < 3; i++ {
		s := httptest.NewServer(serve.NewHandler(rec, 5))
		defer s.Close()
		urls = append(urls, s.URL)
	}
	tr, err := fleet.NewHTTPTransport(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	router, err := fleet.NewShardRouter(fleet.NewRing(3, 0), tr)
	if err != nil {
		t.Fatal(err)
	}
	ringSrv := httptest.NewServer(router)
	defer ringSrv.Close()

	for _, qs := range []string{"q=o2", "q=nokia+n73&n=2", "q=o2&q=o2+mobile"} {
		wantBody, _, _ := getBody(t, direct.URL+"/suggest?"+qs)
		gotBody, _, code := getBody(t, ringSrv.URL+"/suggest?"+qs)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", qs, code)
		}
		if stripTook(gotBody) != stripTook(wantBody) {
			t.Fatalf("%s:\nring:   %s\ndirect: %s", qs, gotBody, wantBody)
		}
	}

	body := `{"requests":[{"context":["o2"]},{"context":["nokia n73"]},{"context":["o2","o2 mobile"]}]}`
	resp, err := http.Post(ringSrv.URL+"/suggest/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("HTTP fan-out answered %d of 3", len(out.Results))
	}
	if len(out.Results[0].Suggestions) == 0 || out.Results[0].Suggestions[0].Query != "o2 mobile" {
		t.Fatalf("results[0] = %+v", out.Results[0])
	}
	if len(out.Results[1].Suggestions) == 0 || out.Results[1].Suggestions[0].Query != "nokia n73 themes" {
		t.Fatalf("results[1] = %+v", out.Results[1])
	}
}

// TestRingReloadBroadcast: POST /reload on the router must fan out to every
// shard and report per-shard outcomes; the shard handlers' generations all
// move.
func TestRingReloadBroadcast(t *testing.T) {
	rec := shardTestRec(t)
	handlers := make([]*serve.Handler, 3)
	asHTTP := make([]http.Handler, 3)
	for i := range handlers {
		handlers[i] = serve.New(rec, serve.Options{
			DefaultN:   5,
			ReloadFunc: func() (core.Recommender, error) { return shardTestRec(t), nil },
		})
		asHTTP[i] = handlers[i]
	}
	router, err := fleet.NewShardRouter(fleet.NewRing(3, 0), fleet.NewLoopbackTransport(asHTTP...))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(router)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out fleet.ShardReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broadcast reload status %d: %+v", resp.StatusCode, out)
	}
	if len(out.Shards) != 3 {
		t.Fatalf("broadcast covered %d of 3 shards", len(out.Shards))
	}
	for _, res := range out.Shards {
		if res.Status != http.StatusOK {
			t.Fatalf("shard %d reload = %+v", res.Shard, res)
		}
	}
	for i, h := range handlers {
		if got := h.Generation(); got != 2 {
			t.Fatalf("shard %d generation = %d, want 2", i, got)
		}
	}

	// A ring whose shards cannot reload must not answer a blanket 200.
	bare := make([]http.Handler, 2)
	for i := range bare {
		bare[i] = serve.NewHandler(rec, 5)
	}
	router2, err := fleet.NewShardRouter(fleet.NewRing(2, 0), fleet.NewLoopbackTransport(bare...))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(router2)
	defer srv2.Close()
	resp, err = http.Post(srv2.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unreloadable ring broadcast status = %d, want 501", resp.StatusCode)
	}
}

// TestRingBatchLimitMatchesShards: the router must reject oversized batches
// itself (400) rather than advertising a limit its shards would refuse and
// answering 502.
func TestRingBatchLimitMatchesShards(t *testing.T) {
	rec := shardTestRec(t)
	router := newLoopbackRing(t, rec, 3)
	srv := httptest.NewServer(router)
	defer srv.Close()

	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i < 257; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"context":["o2"]}`)
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(srv.URL+"/suggest/batch", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized ring batch status = %d, want 400", resp.StatusCode)
	}
	// A full-size (256-item) batch must succeed even if skewed to one shard.
	sb.Reset()
	sb.WriteString(`{"requests":[`)
	for i := 0; i < 256; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"context":["o2"]}`)
	}
	sb.WriteString(`]}`)
	resp, err = http.Post(srv.URL+"/suggest/batch", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-size ring batch status = %d, want 200", resp.StatusCode)
	}
}
