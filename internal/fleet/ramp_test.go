package fleet

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/query"
)

// routeShares routes n random contexts and returns the fraction landing on
// each arm index.
func routeShares(rt *Router, n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, len(rt.Arms()))
	ctx := make(query.Seq, 0, 4)
	for i := 0; i < n; i++ {
		ctx = ctx[:0]
		for l := 1 + rng.Intn(4); l > 0; l-- {
			ctx = append(ctx, query.ID(rng.Intn(1<<20)))
		}
		counts[rt.Route(ctx)]++
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

func TestSetWeightRedistributesTraffic(t *testing.T) {
	_, rt := newTestRouter(t, 3, 1)
	defer rt.Close()

	if s := routeShares(rt, 40000); s[0] < 0.73 || s[0] > 0.77 {
		t.Fatalf("initial champion share = %.3f, want ~0.75", s[0])
	}
	if err := rt.SetWeight("challenger", 3); err != nil {
		t.Fatal(err)
	}
	if s := routeShares(rt, 40000); s[0] < 0.47 || s[0] > 0.53 {
		t.Fatalf("post-SetWeight champion share = %.3f, want ~0.50", s[0])
	}
	// Weight changes must not break stickiness under a fixed vector.
	ctx := query.Seq{42, 7}
	arm := rt.Route(ctx)
	for i := 0; i < 10; i++ {
		if rt.Route(ctx) != arm {
			t.Fatal("assignment not sticky after SetWeight")
		}
	}

	if err := rt.SetWeight("nope", 1); err == nil {
		t.Fatal("SetWeight accepted unknown arm")
	}
	if err := rt.SetWeight("champion", 0); err != nil {
		t.Fatalf("zeroing champion with live challenger: %v", err)
	}
	if err := rt.SetWeight("challenger", 0); err == nil {
		t.Fatal("SetWeight accepted zero total weight")
	}
	// The refused change must leave the previous table serving.
	if rt.LiveArms() != 1 || rt.Arm(1).Weight() != 3 {
		t.Fatalf("refused change mutated state: live=%d w=%d", rt.LiveArms(), rt.Arm(1).Weight())
	}
}

func TestSetWeightActivatesDeclaredShadowArm(t *testing.T) {
	_, rt := newTestRouter(t, 1, 0)
	defer rt.Close()

	if rt.LiveArms() != 1 || len(rt.ShadowSlots()) != 1 {
		t.Fatalf("live=%d shadows=%d, want 1/1", rt.LiveArms(), len(rt.ShadowSlots()))
	}
	if s := routeShares(rt, 5000); s[1] != 0 {
		t.Fatalf("weight-0 arm received traffic: %v", s)
	}
	if err := rt.SetWeight("challenger", 1); err != nil {
		t.Fatal(err)
	}
	if s := routeShares(rt, 40000); s[1] < 0.45 || s[1] > 0.55 {
		t.Fatalf("activated shadow arm share = %.3f, want ~0.5", s[1])
	}
	// Ramping does not remove the arm from the shadow scorer.
	if len(rt.ShadowSlots()) != 1 {
		t.Fatal("activated arm dropped from shadow scoring")
	}
}

// rampHarness wires a router with a weight-0 challenger, a ramp with a stub
// stats feed, and a synthetic clock.
type rampHarness struct {
	reg   *Registry
	rt    *Router
	ramp  *Ramp
	stats ShadowStats
	ok    bool
	now   time.Time
}

func newRampHarness(t *testing.T, pol RampPolicy) *rampHarness {
	t.Helper()
	reg, rt := newTestRouter(t, 100, 0)
	t.Cleanup(rt.Close)
	ramp, err := NewRamp(rt, "challenger", pol)
	if err != nil {
		t.Fatal(err)
	}
	h := &rampHarness{reg: reg, rt: rt, ramp: ramp, now: time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)}
	ramp.statsFn = func(string) (ShadowStats, bool) { return h.stats, h.ok }
	return h
}

func (h *rampHarness) tick(d time.Duration) RampStatus {
	h.now = h.now.Add(d)
	return h.ramp.Tick(h.now)
}

// push lands a new challenger generation, as an ingestion reload would.
func (h *rampHarness) push(t *testing.T) {
	t.Helper()
	if _, err := h.rt.Arm(1).Slot().Swap(trainRec(t, "smtp", "pop3"), false); err != nil {
		t.Fatal(err)
	}
}

func TestRampWalksScheduleAndPromotes(t *testing.T) {
	pol := RampPolicy{
		Steps: []uint32{1, 10}, Hold: 10 * time.Second, MinSamples: 5,
		MaxTop1Mismatch: 0.5, MinRankOverlap: 0.3, MinCoverage: 0.2,
		Promote: true,
	}
	h := newRampHarness(t, pol)

	// Idle until a generation lands: many ticks change nothing.
	for i := 0; i < 3; i++ {
		if st := h.tick(time.Minute); st.Armed || st.Weight != 0 {
			t.Fatalf("ramp moved before any push: %+v", st)
		}
	}

	h.push(t)
	if st := h.tick(time.Second); !st.Armed || st.Step != -1 || st.Weight != 0 {
		t.Fatalf("after push: %+v", st)
	}

	// Too few shadow samples: stays shadow-only.
	h.ok, h.stats = true, ShadowStats{Samples: 3, Coverage: 1, MeanRankOverlap: 1}
	if st := h.tick(time.Second); st.Step != -1 {
		t.Fatalf("ramped on %d samples: %+v", h.stats.Samples, st)
	}

	// Healthy stats: first step.
	h.stats = ShadowStats{Samples: 20, Coverage: 1, MeanRankOverlap: 0.9, Top1MismatchRate: 0.1}
	if st := h.tick(time.Second); st.Step != 0 || st.Weight != 1 {
		t.Fatalf("first step: %+v", st)
	}
	// Hold not elapsed: no advance.
	if st := h.tick(5 * time.Second); st.Step != 0 {
		t.Fatalf("advanced before hold: %+v", st)
	}
	// Hold elapsed: second step.
	if st := h.tick(6 * time.Second); st.Step != 1 || st.Weight != 10 {
		t.Fatalf("second step: %+v", st)
	}

	baseBefore := h.rt.BaseDictHash()
	champGenBefore := h.rt.Arm(0).Slot().State().Gen
	if st := h.tick(11 * time.Second); st.Promotions != 1 || st.Armed || st.Weight != 0 {
		t.Fatalf("promotion: %+v", st)
	}
	if gen := h.rt.Arm(0).Slot().State().Gen; gen != champGenBefore+1 {
		t.Fatalf("champion gen = %d, want %d", gen, champGenBefore+1)
	}
	if h.rt.BaseDictHash() == baseBefore {
		t.Fatal("interning base did not advance on promotion")
	}
	// Challenger vocabulary is now servable through the champion.
	if _, ok := h.rt.Arm(0).Slot().State().Rec.Dict().Lookup("smtp"); !ok {
		t.Fatal("promoted champion lacks challenger vocabulary")
	}
	// Back to idle: nothing moves without a fresh push.
	if st := h.tick(time.Hour); st.Armed || st.Weight != 0 {
		t.Fatalf("ramp restarted without a push: %+v", st)
	}
}

func TestRampFreezesOnDivergenceAndRecovers(t *testing.T) {
	pol := RampPolicy{
		Steps: []uint32{5}, Hold: time.Second, MinSamples: 5,
		MaxTop1Mismatch: 0.3,
	}
	h := newRampHarness(t, pol)
	h.push(t)
	h.tick(time.Second)

	h.ok, h.stats = true, ShadowStats{Samples: 50, Top1MismatchRate: 0.8, Coverage: 1, MeanRankOverlap: 1}
	st := h.tick(time.Second)
	if !st.Frozen || st.Weight != 0 || !strings.Contains(st.Reason, "top1 mismatch") {
		t.Fatalf("no freeze on divergence: %+v", st)
	}
	// Frozen means frozen: healthy stats alone do not resume.
	h.stats = ShadowStats{Samples: 100, Top1MismatchRate: 0.0, Coverage: 1, MeanRankOverlap: 1}
	if st := h.tick(time.Minute); !st.Frozen || st.Weight != 0 {
		t.Fatalf("frozen ramp resumed by itself: %+v", st)
	}

	// Operator override resumes the current generation.
	h.ramp.Unfreeze()
	if st := h.tick(time.Second); st.Frozen || st.Step != 0 || st.Weight != 5 {
		t.Fatalf("after Unfreeze: %+v", st)
	}

	// A freeze followed by a new generation also resumes (fresh verdict).
	h.stats = ShadowStats{Samples: 50, Top1MismatchRate: 0.9, Coverage: 1, MeanRankOverlap: 1}
	if st := h.tick(time.Second); !st.Frozen {
		t.Fatalf("no re-freeze: %+v", st)
	}
	h.push(t)
	if st := h.tick(time.Second); st.Frozen || !st.Armed {
		t.Fatalf("new generation did not clear freeze: %+v", st)
	}
}

func TestRampPolicyValidation(t *testing.T) {
	_, rt := newTestRouter(t, 1, 0)
	defer rt.Close()
	if _, err := NewRamp(rt, "challenger", RampPolicy{}); err == nil {
		t.Fatal("accepted empty schedule")
	}
	if _, err := NewRamp(rt, "challenger", RampPolicy{Steps: []uint32{5, 1}}); err == nil {
		t.Fatal("accepted decreasing schedule")
	}
	if _, err := NewRamp(rt, "challenger", RampPolicy{Steps: []uint32{0}}); err == nil {
		t.Fatal("accepted zero step")
	}
	if _, err := NewRamp(rt, "champion", RampPolicy{Steps: []uint32{1}}); err == nil {
		t.Fatal("accepted champion as ramp target")
	}
	if _, err := NewRamp(rt, "ghost", RampPolicy{Steps: []uint32{1}}); err == nil {
		t.Fatal("accepted unknown arm")
	}
}
