package fleet

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/pairwise"
	"repro/internal/query"
)

// Reranker reorders an arm's top-N answer before it is returned to the user
// — the optional second-stage ranking hook (off by default, configured per
// arm with Router.SetRerank and surfaced in /v1/models).
//
// Rerank appends the reordered suggestions to dst and returns the extended
// slice. recs is a cache-owned immutable slice: implementations must copy,
// never reorder in place. Implementations must be safe for concurrent use
// and allocation-free with a recycled dst (the serving layer pools it).
type Reranker interface {
	// Name identifies the reranker in /v1/models.
	Name() string
	Rerank(ctx query.Seq, recs []core.Suggestion, dst []core.Suggestion) []core.Suggestion
}

// DefaultRerankLambda is the pairwise blend weight when none is configured:
// the base model's order dominates and adjacency evidence breaks ties and
// promotes strong immediate-follower candidates.
const DefaultRerankLambda = 0.3

// PairwiseReranker reorders suggestions by blending the base model's
// normalised score with the pairwise adjacency probability of each candidate
// following the context's last query:
//
//	blend = (1-λ)·score/maxScore + λ·P_adj(q | last)
//
// The suggestion payload keeps the base model's scores — the blend only
// decides order, so reranking never changes what the scores mean.
type PairwiseReranker struct {
	adj    *pairwise.Adjacency
	dict   *query.Dict
	lambda float64
	pool   sync.Pool // *[]float64 blend scratch
}

// NewPairwiseReranker builds a reranker over a trained adjacency model whose
// query IDs were interned against dict (the fleet's base dictionary).
// lambda in (0,1] weights the adjacency evidence; <= 0 selects
// DefaultRerankLambda.
func NewPairwiseReranker(adj *pairwise.Adjacency, dict *query.Dict, lambda float64) (*PairwiseReranker, error) {
	if adj == nil {
		return nil, errors.New("fleet: nil adjacency model for reranker")
	}
	if dict == nil {
		return nil, errors.New("fleet: nil dictionary for reranker")
	}
	if lambda <= 0 {
		lambda = DefaultRerankLambda
	}
	if lambda > 1 {
		return nil, fmt.Errorf("fleet: rerank lambda %v outside (0,1]", lambda)
	}
	return &PairwiseReranker{adj: adj, dict: dict, lambda: lambda}, nil
}

// Name implements Reranker.
func (r *PairwiseReranker) Name() string {
	return fmt.Sprintf("%s(lambda=%.2f)", "pairwise", r.lambda)
}

// Rerank implements Reranker: copy recs into dst, blend-score each
// candidate, stable-sort the copy by descending blend. The blend scratch is
// pooled and the sort is an in-place insertion sort (top-N is small), so a
// recycled dst makes the call allocation-free — gated by
// BenchmarkRerankPairwise.
func (r *PairwiseReranker) Rerank(ctx query.Seq, recs []core.Suggestion, dst []core.Suggestion) []core.Suggestion {
	start := len(dst)
	dst = append(dst, recs...)
	if len(recs) < 2 || len(ctx) == 0 {
		return dst
	}
	bufp, _ := r.pool.Get().(*[]float64)
	if bufp == nil {
		b := make([]float64, 0, 64)
		bufp = &b
	}
	blend := (*bufp)[:0]
	maxScore := recs[0].Score // recs arrive ranked; recs[0] carries the max
	if maxScore <= 0 {
		maxScore = 1
	}
	for _, rec := range recs {
		var pair float64
		if id, ok := r.dict.Lookup(rec.Query); ok {
			pair = r.adj.Prob(ctx, id)
		}
		blend = append(blend, (1-r.lambda)*(rec.Score/maxScore)+r.lambda*pair)
	}
	out := dst[start:]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && blend[j] > blend[j-1]; j-- {
			blend[j], blend[j-1] = blend[j-1], blend[j]
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	*bufp = blend[:0]
	r.pool.Put(bufp)
	return dst
}

var _ Reranker = (*PairwiseReranker)(nil)

// SetRerank attaches a reranker to the named live arm. Configuration happens
// at startup, before the router serves traffic (assignment is not
// synchronised with in-flight requests); shadow slots cannot rerank (their
// answers are never served).
func (rt *Router) SetRerank(arm string, rk Reranker) error {
	for _, a := range rt.arms {
		if a.header[0] == arm {
			a.rerank = rk
			return nil
		}
	}
	return fmt.Errorf("fleet: no live arm %q to attach reranker to", arm)
}

// Reranker returns the arm's configured reranker, nil when reranking is off
// (the default).
func (a *Arm) Reranker() Reranker { return a.rerank }
