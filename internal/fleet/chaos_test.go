package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/serve"
)

// chaosTransport wraps a fleet.Transport with fault injection: shards can be
// killed outright (down), made to fail their next N exchanges (failN — the
// "killed mid-batch" primitive), or slowed (delay, cancellable via ctx so
// hedged losers stop early). Faults flip at runtime under the mutex, so a
// test can kill a shard between a baseline run and a failover run, or
// mid-stream from another goroutine.
type chaosTransport struct {
	inner fleet.Transport

	mu    sync.Mutex
	down  map[int]bool
	failN map[int]int
	delay map[int]time.Duration
	calls map[int]int
}

func newChaosTransport(inner fleet.Transport) *chaosTransport {
	return &chaosTransport{
		inner: inner,
		down:  make(map[int]bool),
		failN: make(map[int]int),
		delay: make(map[int]time.Duration),
		calls: make(map[int]int),
	}
}

func (c *chaosTransport) Shards() int { return c.inner.Shards() }

// setDown kills or revives a shard.
func (c *chaosTransport) setDown(shard int, down bool) {
	c.mu.Lock()
	c.down[shard] = down
	c.mu.Unlock()
}

// failNext makes the shard's next n exchanges fail, then recover.
func (c *chaosTransport) failNext(shard, n int) {
	c.mu.Lock()
	c.failN[shard] = n
	c.mu.Unlock()
}

// setDelay slows every exchange to the shard.
func (c *chaosTransport) setDelay(shard int, d time.Duration) {
	c.mu.Lock()
	c.delay[shard] = d
	c.mu.Unlock()
}

func (c *chaosTransport) callCount(shard int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[shard]
}

func (c *chaosTransport) Exchange(ctx context.Context, shard int, method, path string, body, respBuf []byte) (int, []byte, error) {
	c.mu.Lock()
	c.calls[shard]++
	down := c.down[shard]
	fail := false
	if c.failN[shard] > 0 {
		c.failN[shard]--
		fail = true
	}
	d := c.delay[shard]
	c.mu.Unlock()
	if down || fail {
		return 0, respBuf, fmt.Errorf("chaos: shard %d connection refused", shard)
	}
	if d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return 0, respBuf, ctx.Err()
		}
	}
	return c.inner.Exchange(ctx, shard, method, path, body, respBuf)
}

// newChaosRing builds an R-replicated loopback ring behind a chaos transport.
// Backoff sleeps are disabled so failover rounds run at test speed.
func newChaosRing(t *testing.T, shards int, opts fleet.RouterOptions) (*fleet.ShardRouter, *chaosTransport) {
	t.Helper()
	rec := shardTestRec(t)
	handlers := make([]http.Handler, shards)
	for i := range handlers {
		handlers[i] = serve.NewHandler(rec, 5)
	}
	chaos := newChaosTransport(fleet.NewLoopbackTransport(handlers...))
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = -1
	}
	router, err := fleet.NewShardRouterOpts(fleet.NewRing(shards, 0), chaos, opts)
	if err != nil {
		t.Fatal(err)
	}
	return router, chaos
}

// TestRingLookupN pins the preference-list contract: the first element is
// exactly Lookup, all elements are distinct, independently built rings agree
// on the whole list, and n is capped at the shard count.
func TestRingLookupN(t *testing.T) {
	r1, r2 := fleet.NewRing(5, 0), fleet.NewRing(5, 0)
	for h := uint64(0); h < 2000; h += 17 {
		prefs := r1.LookupN(h, 3, nil)
		if len(prefs) != 3 {
			t.Fatalf("h=%d: %d prefs, want 3", h, len(prefs))
		}
		if prefs[0] != r1.Lookup(h) {
			t.Fatalf("h=%d: primary %d != Lookup %d", h, prefs[0], r1.Lookup(h))
		}
		seen := map[int]bool{}
		for _, s := range prefs {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("h=%d: bad or duplicate shard in %v", h, prefs)
			}
			seen[s] = true
		}
		other := r2.LookupN(h, 3, nil)
		for i := range prefs {
			if prefs[i] != other[i] {
				t.Fatalf("h=%d: rings disagree: %v vs %v", h, prefs, other)
			}
		}
	}
	if got := r1.LookupN(42, 99, nil); len(got) != 5 {
		t.Fatalf("n beyond ring size gave %d prefs, want 5", len(got))
	}
}

// chaosBatchBody spans all three shards of the test ring.
const chaosBatchBody = `{"requests":[{"context":["o2"]},{"context":["nokia n73"],"n":1},{"context":["o2","o2 mobile"]},{"context":["never seen"]},{"context":["nokia n73"]},{"context":["o2 mobile phones","o2"]}]}`

var chaosGETQueries = []string{
	"q=o2", "q=o2+mobile", "q=o2&q=o2+mobile", "q=nokia+n73",
	"q=nokia%20n73&n=2", "q=o2+mobile+phones&q=o2", "q=unknown+stuff", "q=o2&n=1",
}

// TestChaosShardKillMidBatchR2 is the issue's acceptance scenario: at R=2
// with one shard killed mid-batch, /suggest and /suggest/batch (buffered and
// ?stream=1) must return byte-identical bodies to the healthy topology with
// zero 5xx — the failover absorbs the fault invisibly.
func TestChaosShardKillMidBatchR2(t *testing.T) {
	router, chaos := newChaosRing(t, 3, fleet.RouterOptions{Replicas: 2})
	srv := httptest.NewServer(router)
	defer srv.Close()

	// Healthy baselines.
	getWant := make([]string, len(chaosGETQueries))
	for i, qs := range chaosGETQueries {
		body, _, code := getBody(t, srv.URL+"/suggest?"+qs)
		if code != http.StatusOK {
			t.Fatalf("healthy GET %s: status %d", qs, code)
		}
		getWant[i] = stripTook(body)
	}
	post := func(path string) ([]byte, int) {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(chaosBatchBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw, resp.StatusCode
	}
	bufWant, code := post("/suggest/batch")
	if code != http.StatusOK {
		t.Fatalf("healthy buffered batch: status %d", code)
	}
	streamWantRaw, code := post("/suggest/batch?stream=1")
	if code != http.StatusOK {
		t.Fatalf("healthy stream batch: status %d", code)
	}
	streamWant := readRingNDJSON(t, strings.NewReader(string(streamWantRaw)), 6)

	// Kill one shard "mid-batch": its next exchange fails (the sub-batch in
	// flight), then the shard stays down for everything after.
	const victim = 0
	chaos.failNext(victim, 1)
	chaos.setDown(victim, false)
	gotBuf, code := post("/suggest/batch")
	if code != http.StatusOK {
		t.Fatalf("mid-batch kill: buffered status %d: %s", code, gotBuf)
	}
	if stripTook(gotBuf) != stripTook(bufWant) {
		t.Fatalf("mid-batch kill changed the buffered body:\ngot:  %s\nwant: %s", gotBuf, bufWant)
	}
	chaos.setDown(victim, true)

	// GETs: every query, repeated, must stay 200 and byte-identical.
	for rep := 0; rep < 3; rep++ {
		for i, qs := range chaosGETQueries {
			body, _, code := getBody(t, srv.URL+"/suggest?"+qs)
			if code != http.StatusOK {
				t.Fatalf("shard-down GET %s: status %d: %s", qs, code, body)
			}
			if stripTook(body) != getWant[i] {
				t.Fatalf("shard-down GET %s changed:\ngot:  %s\nwant: %s", qs, stripTook(body), getWant[i])
			}
		}
	}
	// Buffered batch: 200 and byte-identical with the shard hard-down.
	gotBuf, code = post("/suggest/batch")
	if code != http.StatusOK {
		t.Fatalf("shard-down buffered batch: status %d: %s", code, gotBuf)
	}
	if stripTook(gotBuf) != stripTook(bufWant) {
		t.Fatalf("shard-down buffered body changed:\ngot:  %s\nwant: %s", gotBuf, bufWant)
	}
	// Streamed batch: same per-index result bytes, no error lines.
	gotStreamRaw, code := post("/suggest/batch?stream=1")
	if code != http.StatusOK {
		t.Fatalf("shard-down stream batch: status %d", code)
	}
	for i, ln := range readRingNDJSON(t, strings.NewReader(string(gotStreamRaw)), 6) {
		if ln.Error != nil {
			t.Fatalf("shard-down stream item %d carries an error: %s", i, ln.Error)
		}
		if got, want := stripTook(ln.Result), stripTook(streamWant[i].Result); got != want {
			t.Fatalf("shard-down stream item %d changed:\ngot:  %s\nwant: %s", i, got, want)
		}
	}

	// The failure policy did real work and says so in /v1/metrics.
	raw, _, _ := getBody(t, srv.URL+"/v1/metrics")
	var m fleet.ShardRouterMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Replicas != 2 {
		t.Fatalf("metrics replicas = %d, want 2", m.Replicas)
	}
	if m.Retries == 0 || m.Failovers == 0 {
		t.Fatalf("expected nonzero retries and failovers after chaos: %+v", m)
	}
	if len(m.ShardHealth) != 3 || m.ShardHealth[victim].Failures == 0 {
		t.Fatalf("shard health missing the victim's failures: %+v", m.ShardHealth)
	}

	// /healthz reports the ejected shard but stays ok (quorum healthy).
	raw, _, _ = getBody(t, srv.URL+"/healthz")
	var h fleet.ShardRouterHealth
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Replicas != 2 || h.ShardsHealthy < 2 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestChaosStreamFailoverByteIdentical kills the primary of a streamed
// batch's first sub-batch mid-stream at R=2: the emitted NDJSON lines must
// be byte-identical to the healthy run (modulo took_us) — no error lines, no
// duplicate indices (readRingNDJSON enforces exactly-once coverage).
func TestChaosStreamFailoverByteIdentical(t *testing.T) {
	router, chaos := newChaosRing(t, 3, fleet.RouterOptions{Replicas: 2})
	srv := httptest.NewServer(router)
	defer srv.Close()

	post := func() []ringNDJSONLine {
		resp, err := http.Post(srv.URL+"/v1/suggest/batch?stream=1", "application/json", strings.NewReader(chaosBatchBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status = %d", resp.StatusCode)
		}
		return readRingNDJSON(t, resp.Body, 6)
	}
	want := post()

	// Find a shard that actually carries items of this batch and kill it for
	// exactly the next sub-batch it receives — the primary dies mid-stream,
	// after the 200 is committed and other shards' lines are flushing.
	victim := -1
	for s := 0; s < 3; s++ {
		if chaos.callCount(s) > 0 {
			victim = s
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard carried batch traffic")
	}
	chaos.failNext(victim, 1)
	got := post()
	for i := range want {
		if got[i].Error != nil {
			t.Fatalf("failover stream item %d carries an error: %s", i, got[i].Error)
		}
		if stripTook(got[i].Result) != stripTook(want[i].Result) {
			t.Fatalf("failover stream item %d changed:\ngot:  %s\nwant: %s",
				i, stripTook(got[i].Result), stripTook(want[i].Result))
		}
	}

	// At R=1 the same kill has no replica to walk to: the stream degrades to
	// error lines for the victim's items — but still answers every index
	// exactly once and never a 5xx.
	router1, chaos1 := newChaosRing(t, 3, fleet.RouterOptions{Replicas: 1})
	srv1 := httptest.NewServer(router1)
	defer srv1.Close()
	resp, err := http.Post(srv1.URL+"/v1/suggest/batch?stream=1", "application/json", strings.NewReader(chaosBatchBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	victim1 := -1
	for s := 0; s < 3; s++ {
		if chaos1.callCount(s) > 0 {
			victim1 = s
			break
		}
	}
	chaos1.failNext(victim1, 1)
	resp, err = http.Post(srv1.URL+"/v1/suggest/batch?stream=1", "application/json", strings.NewReader(chaosBatchBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("R=1 stream status = %d, want 200", resp.StatusCode)
	}
	sawError := false
	for _, ln := range readRingNDJSON(t, resp.Body, 6) {
		if ln.Error != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("R=1 mid-stream kill produced no error lines — fault was not injected")
	}
}

// TestChaosReloadStormDuringFanout hammers the ring with concurrent reload
// broadcasts while batches and GETs are in flight at R=2: no request may see
// a 5xx, and every batch stays byte-identical. Run under -race (make chaos),
// this is also the fan-out's concurrency audit.
func TestChaosReloadStormDuringFanout(t *testing.T) {
	router, chaos := newChaosRing(t, 3, fleet.RouterOptions{Replicas: 2})
	srv := httptest.NewServer(router)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/suggest/batch", "application/json", strings.NewReader(chaosBatchBody))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Reload storm: the shards can't reload (501) but the broadcast still
	// exercises the admin path concurrently with the fan-out; sprinkle
	// transient shard failures so failover runs during the storm too.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(srv.URL+"/v1/reload", "", nil)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Transient faults on a single shard only: at R=2 every item always has
	// one clean replica, so zero 5xx is a real invariant (faulting two shards
	// at once could legitimately exhaust an item's whole preference list).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			chaos.failNext(0, 1)
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(srv.URL+"/suggest/batch", "application/json", strings.NewReader(chaosBatchBody))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= http.StatusInternalServerError {
					errs <- fmt.Errorf("batch during storm: status %d: %s", resp.StatusCode, raw)
					return
				}
				if resp.StatusCode == http.StatusOK && stripTook(raw) != stripTook(want) {
					errs <- fmt.Errorf("batch during storm changed:\ngot:  %s\nwant: %s", raw, want)
					return
				}
				body, _, code := getBody(t, srv.URL+"/suggest?q=o2")
				if code >= http.StatusInternalServerError {
					errs <- fmt.Errorf("GET during storm: status %d: %s", code, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestChaosFlappingShard drives a shard through the breaker's full cycle:
// consecutive failures eject it ("ejected" in /healthz, traffic routed
// around it), the cool-down admits a half-open probe, and a healthy probe
// restores it to the walk ("healthy" again, serving traffic).
func TestChaosFlappingShard(t *testing.T) {
	router, chaos := newChaosRing(t, 3, fleet.RouterOptions{
		Replicas:      2,
		FailThreshold: 3,
		ProbeAfter:    20 * time.Millisecond,
	})
	srv := httptest.NewServer(router)
	defer srv.Close()

	healthOf := func(shard int) fleet.ShardHealthStats {
		raw, _, _ := getBody(t, srv.URL+"/healthz")
		var h fleet.ShardRouterHealth
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatal(err)
		}
		return h.ShardHealth[shard]
	}

	const victim = 1
	chaos.setDown(victim, true)
	// Push traffic until the victim accumulates FailThreshold consecutive
	// failures; every request still answers 200 off the surviving replica.
	for i := 0; i < 30 && healthOf(victim).State != "ejected"; i++ {
		for _, qs := range chaosGETQueries {
			if _, _, code := getBody(t, srv.URL+"/suggest?"+qs); code != http.StatusOK {
				t.Fatalf("GET %s during flap: status %d", qs, code)
			}
		}
	}
	if st := healthOf(victim); st.State != "ejected" || st.Ejections == 0 {
		t.Fatalf("victim never ejected: %+v", st)
	}

	// Ejected: the preference walk must skip it — no more transport calls.
	before := chaos.callCount(victim)
	for _, qs := range chaosGETQueries {
		getBody(t, srv.URL+"/suggest?"+qs)
	}
	if got := chaos.callCount(victim); got != before {
		t.Fatalf("ejected shard still saw %d calls", got-before)
	}

	// Revive, wait out the cool-down: the next touch probes and recovers.
	chaos.setDown(victim, false)
	time.Sleep(25 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for healthOf(victim).State != "healthy" {
		if time.Now().After(deadline) {
			t.Fatalf("victim never recovered: %+v", healthOf(victim))
		}
		for _, qs := range chaosGETQueries {
			if _, _, code := getBody(t, srv.URL+"/suggest?"+qs); code != http.StatusOK {
				t.Fatalf("GET %s during recovery: status %d", qs, code)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Recovered: the shard serves again.
	before = chaos.callCount(victim)
	for rep := 0; rep < 3; rep++ {
		for _, qs := range chaosGETQueries {
			getBody(t, srv.URL+"/suggest?"+qs)
		}
	}
	if chaos.callCount(victim) == before {
		t.Fatal("recovered shard got no traffic")
	}
}

// TestChaosGETHedge slows one shard far past the hedge delay: a GET whose
// primary is the slow shard must be answered by the hedged replica (first
// success wins), flagged X-Serve-Hedge: won, and counted in hedges_won.
func TestChaosGETHedge(t *testing.T) {
	router, chaos := newChaosRing(t, 3, fleet.RouterOptions{
		Replicas:   2,
		HedgeAfter: 2 * time.Millisecond,
	})
	srv := httptest.NewServer(router)
	defer srv.Close()

	// Find a query whose primary we can slow down.
	raw, _, _ := getBody(t, srv.URL+"/v1/route?q=o2")
	var ri fleet.RouteResponse
	if err := json.Unmarshal(raw, &ri); err != nil {
		t.Fatal(err)
	}
	if len(ri.Replicas) != 2 {
		t.Fatalf("route replicas = %v, want 2", ri.Replicas)
	}
	chaos.setDelay(ri.Shard, 250*time.Millisecond)

	body, hdr, code := getBody(t, srv.URL+"/suggest?q=o2")
	if code != http.StatusOK {
		t.Fatalf("hedged GET status %d: %s", code, body)
	}
	if got := hdr.Get("X-Serve-Shard"); got != fmt.Sprint(ri.Replicas[1]) {
		t.Fatalf("hedged GET served by shard %s, want replica %d", got, ri.Replicas[1])
	}
	if hdr.Get("X-Serve-Hedge") != "won" {
		t.Fatalf("missing X-Serve-Hedge: won (headers %v)", hdr)
	}
	if hdr.Get("X-Serve-Attempts") != "2" {
		t.Fatalf("X-Serve-Attempts = %q, want 2", hdr.Get("X-Serve-Attempts"))
	}
	raw, _, _ = getBody(t, srv.URL+"/v1/metrics")
	var m fleet.ShardRouterMetrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Hedges == 0 || m.HedgesWon == 0 {
		t.Fatalf("hedge counters not moving: %+v", m)
	}
}

// TestChaosStrandedProbeRelease reproduces the hedge-race probe strand: an
// ejected shard's half-open probe claim rides on a GET attempt that loses the
// hedge race and is cancelled before it reports back. The loser drain must
// hand the claim back (or close the breaker when the loser genuinely
// answered) — without the release the breaker sticks at "probing" forever,
// every preference walk skips the shard, and it can never recover.
func TestChaosStrandedProbeRelease(t *testing.T) {
	router, chaos := newChaosRing(t, 2, fleet.RouterOptions{
		Replicas:      2,
		FailThreshold: 1,
		ProbeAfter:    5 * time.Millisecond,
		HedgeAfter:    100 * time.Microsecond,
	})
	srv := httptest.NewServer(router)
	defer srv.Close()

	healthOf := func(shard int) fleet.ShardHealthStats {
		raw, _, _ := getBody(t, srv.URL+"/healthz")
		var h fleet.ShardRouterHealth
		if err := json.Unmarshal(raw, &h); err != nil {
			t.Fatal(err)
		}
		return h.ShardHealth[shard]
	}

	// Find a query whose primary is shard 0, so its half-open probes ride
	// primary GET attempts that a fast hedge to shard 1 can beat.
	query := ""
	for _, qs := range chaosGETQueries {
		raw, _, _ := getBody(t, srv.URL+"/v1/route?"+qs)
		var ri fleet.RouteResponse
		if err := json.Unmarshal(raw, &ri); err != nil {
			t.Fatal(err)
		}
		if ri.Shard == 0 {
			query = qs
			break
		}
	}
	if query == "" {
		t.Fatal("no chaos query routes to shard 0")
	}

	// Eject shard 0: with FailThreshold 1 a single refused connection opens
	// the breaker, and the request still answers off the replica.
	chaos.setDown(0, true)
	if _, _, code := getBody(t, srv.URL+"/suggest?"+query); code != http.StatusOK {
		t.Fatalf("GET with primary down: status %d", code)
	}
	if st := healthOf(0); st.State != "ejected" {
		t.Fatalf("shard 0 not ejected after failure: %+v", st)
	}

	// Revive it slow. The next GET's preference walk claims the half-open
	// probe and rides it on the primary attempt; the 100µs hedge to shard 1
	// answers first and the probe-carrying loser is cancelled mid-delay.
	// (callCount is no proof here: pick()'s fail-open second pass can still
	// hedge onto a stranded shard, so the count grows either way.)
	chaos.setDown(0, false)
	chaos.setDelay(0, 50*time.Millisecond)
	time.Sleep(6 * time.Millisecond) // past the ejection cool-down

	for i := 0; i < 10; i++ {
		if _, _, code := getBody(t, srv.URL+"/suggest?"+query); code != http.StatusOK {
			t.Fatalf("GET during slow probing: status %d", code)
		}
	}
	// Quiesce: cancelled losers return immediately (the chaos delay is
	// ctx-cancellable) and the drain hands claims back within the sleep. A
	// breaker still reading "probing" with no probe in flight is stranded —
	// the released claim reads "ejected" (or "healthy" if a probe won).
	time.Sleep(50 * time.Millisecond)
	if st := healthOf(0); st.State == "probing" {
		t.Fatalf("probe claim stranded after losers drained: %+v", st)
	}

	// Drop the delay: the next probe answers before the hedge and closes the
	// breaker (or lands as a successful loser, which also closes it).
	chaos.setDelay(0, 0)
	deadline := time.Now().Add(2 * time.Second)
	for healthOf(0).State != "healthy" {
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never recovered: %+v", healthOf(0))
		}
		getBody(t, srv.URL+"/suggest?"+query)
		time.Sleep(time.Millisecond)
	}
}

// routerTraces fetches and decodes the router's GET /v1/traces endpoint.
func routerTraces(t *testing.T, base string) map[string]obs.TraceView {
	t.Helper()
	raw, _, code := getBody(t, base+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces status %d: %s", code, raw)
	}
	var resp struct {
		SlowThresholdMicros int64           `json:"slow_threshold_us"`
		Count               int             `json:"count"`
		Traces              []obs.TraceView `json:"traces"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]obs.TraceView, len(resp.Traces))
	for _, v := range resp.Traces {
		byID[v.ID] = v
	}
	return byID
}

// spanUnionMicros returns the total length of the union of the span
// intervals [start, start+dur). Hedged attempts overlap, so a naive sum can
// exceed the trace total; the union cannot.
func spanUnionMicros(spans []obs.SpanView) int64 {
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, len(spans))
	for _, s := range spans {
		ivs = append(ivs, iv{s.StartMicros, s.StartMicros + s.DurMicros})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var total, hi int64
	hi = -1
	for _, v := range ivs {
		if v.lo > hi {
			total += v.hi - v.lo
			hi = v.hi
		} else if v.hi > hi {
			total += v.hi - hi
			hi = v.hi
		}
	}
	return total
}

// TestChaosTraceHedgedFailover drives one hedged GET (slow primary, hedge
// wins) and one failed-over GET (dead primary, second replica answers) and
// asserts the router's /v1/traces shows both requests with per-attempt
// "shard" child spans carrying the shard IDs and outcomes, plus the
// hedge-fire annotation — and that the spans stay inside the recorded
// total (as an interval union: hedged attempts overlap in time).
func TestChaosTraceHedgedFailover(t *testing.T) {
	router, chaos := newChaosRing(t, 3, fleet.RouterOptions{
		Replicas:   2,
		HedgeAfter: 2 * time.Millisecond,
	})
	srv := httptest.NewServer(router)
	defer srv.Close()

	raw, _, _ := getBody(t, srv.URL+"/v1/route?q=o2")
	var ri fleet.RouteResponse
	if err := json.Unmarshal(raw, &ri); err != nil {
		t.Fatal(err)
	}
	primary, backup := ri.Shard, ri.Replicas[1]

	// Hedged: the primary is slow, the 2ms hedge to the backup wins, the
	// primary attempt is cancelled on the way out.
	chaos.setDelay(primary, 250*time.Millisecond)
	body, hdr, code := getBody(t, srv.URL+"/suggest?q=o2")
	if code != http.StatusOK {
		t.Fatalf("hedged GET status %d: %s", code, body)
	}
	hedgeID := hdr.Get("X-Trace-Id")
	chaos.setDelay(primary, 0)

	// Failed-over: the primary refuses outright, the walk retries the backup.
	chaos.setDown(primary, true)
	body, hdr, code = getBody(t, srv.URL+"/suggest?q=o2")
	if code != http.StatusOK {
		t.Fatalf("failed-over GET status %d: %s", code, body)
	}
	failoverID := hdr.Get("X-Trace-Id")
	chaos.setDown(primary, false)

	if len(hedgeID) != 16 || len(failoverID) != 16 {
		t.Fatalf("trace IDs = %q, %q; want 16 hex chars each", hedgeID, failoverID)
	}
	traces := routerTraces(t, srv.URL)

	// outcomesOf collects shard-span outcomes keyed by shard ID.
	outcomesOf := func(v obs.TraceView) map[int][]string {
		out := make(map[int][]string)
		for _, s := range v.Spans {
			if s.Name == "shard" {
				out[s.Shard] = append(out[s.Shard], s.Outcome)
			}
		}
		return out
	}
	hasOutcome := func(m map[int][]string, shard int, want string) bool {
		for _, o := range m[shard] {
			if o == want {
				return true
			}
		}
		return false
	}

	hv, ok := traces[hedgeID]
	if !ok {
		t.Fatalf("hedged trace %s not retained (have %d traces)", hedgeID, len(traces))
	}
	ho := outcomesOf(hv)
	if len(ho) < 2 {
		t.Fatalf("hedged trace has shard spans for %d shards, want 2: %+v", len(ho), hv.Spans)
	}
	if !hasOutcome(ho, primary, "cancelled") {
		t.Fatalf("hedged trace: primary %d not cancelled: %+v", primary, hv.Spans)
	}
	if !hasOutcome(ho, backup, "hedge-won") {
		t.Fatalf("hedged trace: backup %d did not win the hedge: %+v", backup, hv.Spans)
	}
	sawFire := false
	for _, s := range hv.Spans {
		if s.Name == "hedge-fire" && s.Shard == backup && s.Outcome == "fired" {
			sawFire = true
		}
	}
	if !sawFire {
		t.Fatalf("hedged trace missing hedge-fire event: %+v", hv.Spans)
	}
	// Attempts overlap, so check the interval union, not the sum. Allow the
	// microsecond truncation of independent clock reads.
	if got := spanUnionMicros(hv.Spans); got > hv.TotalMicros+5 {
		t.Fatalf("hedged trace span union %dus exceeds total %dus", got, hv.TotalMicros)
	}

	fv, ok := traces[failoverID]
	if !ok {
		t.Fatalf("failed-over trace %s not retained (have %d traces)", failoverID, len(traces))
	}
	fo := outcomesOf(fv)
	if !hasOutcome(fo, primary, "error") {
		t.Fatalf("failed-over trace: primary %d did not error: %+v", primary, fv.Spans)
	}
	if !hasOutcome(fo, backup, "ok") {
		t.Fatalf("failed-over trace: backup %d did not answer: %+v", backup, fv.Spans)
	}
	if got := spanUnionMicros(fv.Spans); got > fv.TotalMicros+5 {
		t.Fatalf("failed-over trace span union %dus exceeds total %dus", got, fv.TotalMicros)
	}
}
