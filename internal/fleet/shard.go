package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jsonspan"
	"repro/internal/obs"
)

// Transport carries a routed request to a shard replica. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Exchange sends method + path (query string included) to the given
	// shard under ctx — the deadline/cancellation carrier of the failover
	// and hedging machinery. body may be nil (GETs). The response body is
	// appended to respBuf (which may be a recycled pooled buffer, possibly
	// nil) and returned; the caller owns it and the transport must not
	// retain or reuse it after returning.
	Exchange(ctx context.Context, shard int, method, path string, body, respBuf []byte) (status int, resp []byte, err error)
	// Shards returns the number of replicas the transport can reach.
	Shards() int
}

// LoopbackTransport routes to in-process shard handlers — N serving handlers
// (typically sharing one mmapped model) behind one router in a single
// process. It is the zero-infrastructure deployment of the ring: the routing
// behaviour, stickiness and cache partitioning are identical to the HTTP
// transport, so a single process can validate a sharding plan before it is
// distributed.
type LoopbackTransport struct {
	handlers []http.Handler
	scratch  sync.Pool // *loopbackScratch
}

// NewLoopbackTransport builds a loopback transport over in-process handlers,
// one per shard.
func NewLoopbackTransport(handlers ...http.Handler) *LoopbackTransport {
	return &LoopbackTransport{handlers: handlers}
}

// Shards implements Transport.
func (t *LoopbackTransport) Shards() int { return len(t.handlers) }

// loopbackScratch is one pooled synthetic request/response pair: the
// http.Request, its URL, the body reader and the response recorder are all
// built once and reset per exchange, so the steady-state loopback fan-out
// allocates nothing per sub-request.
type loopbackScratch struct {
	req  http.Request
	url  url.URL
	rd   bytes.Reader
	resp bufferedResponse
}

// nopCloseReader adapts the scratch body reader to http.Request.Body.
type nopCloseReader struct{ *bytes.Reader }

func (nopCloseReader) Close() error { return nil }

// Exchange implements Transport by synthesising an in-process request from a
// pooled scratch. Loopback calls run the handler synchronously in the
// calling goroutine; ctx deadlines are not enforced mid-handler (in-process
// handlers are trusted not to hang), but a ctx already cancelled on entry
// short-circuits so expired hedge losers never run.
func (t *LoopbackTransport) Exchange(ctx context.Context, shard int, method, path string, body, respBuf []byte) (int, []byte, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, respBuf, err
		}
	}
	s, _ := t.scratch.Get().(*loopbackScratch)
	if s == nil {
		s = &loopbackScratch{}
		s.req.Proto = "HTTP/1.1"
		s.req.ProtoMajor, s.req.ProtoMinor = 1, 1
		s.req.Header = http.Header{"Content-Type": {"application/json"}}
		s.req.URL = &s.url
		s.req.Body = nopCloseReader{&s.rd}
		s.resp.header = make(http.Header, 4)
	}
	s.req.Method = method
	s.url.Path = path
	s.url.RawQuery = ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		s.url.Path, s.url.RawQuery = path[:i], path[i+1:]
	}
	s.rd.Reset(body)
	s.req.ContentLength = int64(len(body))
	s.resp.code = 0
	s.resp.body = respBuf
	clear(s.resp.header)
	// Propagate the router's trace ID so the shard's own trace adopts it and
	// a request can be followed across layers. The scratch header is pooled:
	// the value must be removed again before the scratch is recycled, or a
	// later un-traced exchange would replay a stale ID.
	if hv := obs.TraceHeaderFromContext(ctx); hv != nil {
		s.req.Header["X-Trace-Id"] = hv
	}
	t.handlers[shard].ServeHTTP(&s.resp, &s.req)
	delete(s.req.Header, "X-Trace-Id")
	status, out := s.resp.status(), s.resp.body
	s.resp.body = nil // caller owns the buffer now
	t.scratch.Put(s)
	return status, out, nil
}

// bufferedResponse is a minimal in-memory http.ResponseWriter for loopback
// exchanges; the body accumulates in a caller-owned byte slice.
type bufferedResponse struct {
	code   int
	header http.Header
	body   []byte
}

func (r *bufferedResponse) Header() http.Header { return r.header }

func (r *bufferedResponse) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *bufferedResponse) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.body = append(r.body, p...)
	return len(p), nil
}

func (r *bufferedResponse) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// HTTPTransport routes to shard replicas over HTTP — the distributed
// deployment, where each shard is a `cmd/serve -role shard` process.
type HTTPTransport struct {
	bases  []*url.URL
	client *http.Client
}

// DefaultTransportTimeout bounds a whole shard exchange (dial, request,
// response read) when NewHTTPTransport builds its own client. Per-attempt
// deadlines from RouterOptions.ShardTimeout cut it shorter via ctx.
const DefaultTransportTimeout = 5 * time.Second

// defaultHTTPClient is the client NewHTTPTransport uses when the caller
// passes nil: bounded dial and response-header timeouts and a sized idle
// connection pool, so a black-holed shard ties up a connection attempt for
// seconds, not forever, and the fan-out reuses connections instead of
// re-dialing per sub-batch.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Timeout: DefaultTransportTimeout,
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   2 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: DefaultTransportTimeout,
			MaxIdleConns:          256,
			MaxIdleConnsPerHost:   64,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// NewHTTPTransport builds an HTTP transport over shard base URLs (e.g.
// "http://shard-0:8080"). client nil selects a default client with sane
// dial/response timeouts and a sized connection pool (see
// DefaultTransportTimeout); production routers may still pass their own.
func NewHTTPTransport(bases []string, client *http.Client) (*HTTPTransport, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("fleet: no shard URLs")
	}
	if client == nil {
		client = defaultHTTPClient()
	}
	t := &HTTPTransport{client: client}
	for _, b := range bases {
		u, err := url.Parse(strings.TrimSuffix(b, "/"))
		if err != nil {
			return nil, fmt.Errorf("fleet: shard URL %q: %w", b, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: shard URL %q needs a scheme and host", b)
		}
		t.bases = append(t.bases, u)
	}
	return t, nil
}

// Shards implements Transport.
func (t *HTTPTransport) Shards() int { return len(t.bases) }

// Exchange implements Transport with one HTTP request to the shard under
// ctx, reading the response into the caller's recycled buffer.
func (t *HTTPTransport) Exchange(ctx context.Context, shard int, method, path string, body, respBuf []byte) (int, []byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.bases[shard].String()+path, rd)
	if err != nil {
		return 0, respBuf, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if hv := obs.TraceHeaderFromContext(ctx); hv != nil {
		req.Header["X-Trace-Id"] = hv
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, respBuf, err
	}
	defer resp.Body.Close()
	raw, err := appendReadAll(respBuf, resp.Body)
	if err != nil {
		return 0, raw, err
	}
	return resp.StatusCode, raw, nil
}

// appendReadAll reads rd to EOF, appending to buf — io.ReadAll with a
// recycled destination.
func appendReadAll(buf []byte, rd io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// MaxReplicas caps RouterOptions.Replicas: preference lists and per-item
// attempt masks are fixed-width 8 entries, far beyond any useful replication
// factor for this workload.
const MaxReplicas = 8

// RouterOptions is the ShardRouter's failure policy: how many replicas each
// key range maps to and how the router walks them when attempts fail.
type RouterOptions struct {
	// Replicas is R, the preference-list length per key range: each context
	// maps to an ordered list of R distinct shards (Ring.LookupN) and the
	// router walks it on failure. <= 1 disables replication (the pre-R
	// behaviour); capped at min(MaxReplicas, ring size).
	Replicas int
	// ShardTimeout is the per-attempt deadline. 0 leaves attempts bounded
	// only by the transport's own client timeout.
	ShardTimeout time.Duration
	// HedgeAfter controls hedged GET requests: after this delay without an
	// answer from the primary, the next replica is fired too and the first
	// success wins (the loser is cancelled). 0 disables hedging; negative
	// derives the delay from the live attempt-latency p99 (clamped to
	// [200µs, 50ms]).
	HedgeAfter time.Duration
	// RetryBackoff is the base jittered sleep before a failover retry
	// (doubling per attempt, ±50% jitter). 0 selects 2ms; negative disables
	// the sleep.
	RetryBackoff time.Duration
	// FailThreshold is the consecutive-failure count that ejects a shard
	// from the preference walk (0 selects DefaultFailThreshold).
	FailThreshold int
	// ProbeAfter is the ejection cool-down before a half-open probe
	// (0 selects DefaultProbeAfter).
	ProbeAfter time.Duration
	// Obs, when non-nil, is the metrics registry the router records into;
	// nil gives the router a private registry. Sharing one registry with
	// in-process shard handlers (loopback deployments) merges both layers
	// into a single Prometheus exposition.
	Obs *obs.Registry
	// Tracer, when non-nil, is the request tracer the router samples into;
	// nil gives the router a private 256-trace tracer fed by its own
	// request-latency histogram.
	Tracer *obs.Tracer
}

func (o RouterOptions) withDefaults(shards int) RouterOptions {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.Replicas > MaxReplicas {
		o.Replicas = MaxReplicas
	}
	if o.Replicas > shards {
		o.Replicas = shards
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	return o
}

// ShardRouter fans suggestion traffic out to N replicas of the same model by
// consistent hash of the request context: GET /suggest forwards whole to one
// shard, POST /suggest/batch splits the batch by shard, forwards the
// sub-batches concurrently and reassembles the results in request order.
// Every replica serves the identical model, so routing choices never change
// answers — they partition the context keyspace so each replica's result
// cache and faulted-in trie pages cover only its arc.
//
// With RouterOptions.Replicas R > 1 each key range maps to an ordered
// preference list of R distinct shards and the router walks it on failure:
// per-attempt deadline, bounded retry with jittered backoff on the next
// replica, optional hedged GETs. Shard health is tracked from live traffic
// (consecutive-failure ejection, half-open probe recovery — see health.go)
// and unhealthy shards are skipped in the walk, so the ring self-heals with
// no config change and one shard down costs zero availability at R >= 2.
type ShardRouter struct {
	ring *Ring
	tr   Transport
	opts RouterOptions
	hcfg healthConfig

	health []shardHealth
	admin  *AdminState

	peerMu     sync.Mutex
	peers      []string
	peerClient *http.Client

	// shardHeader[i] is the pre-built X-Serve-Shard value for shard i;
	// attemptHeader[k] the X-Serve-Attempts value for k+1 attempts.
	shardHeader   [][]string
	attemptHeader [MaxReplicas][]string

	scratch sync.Pool // *batchScratch
	calls   sync.Pool // *shardCall
	bufs    sync.Pool // *[]byte, GET-path response buffers

	requests  atomic.Uint64
	batches   atomic.Uint64
	fanouts   atomic.Uint64 // shard sub-requests issued by batch fan-out
	retries   atomic.Uint64 // failed attempts that moved work to another replica
	failovers atomic.Uint64 // requests/items answered by a non-primary replica
	hedges    atomic.Uint64 // hedge attempts fired
	hedgesWon atomic.Uint64 // hedge attempts whose answer was served
	perShard  []atomic.Uint64

	reg        *obs.Registry
	tracer     *obs.Tracer
	attemptLat *obs.Histogram // successful attempt latencies, feeds auto hedge delay
	hedgeWait  *obs.Histogram // delays waited before firing a hedge
	reqLat     *obs.Histogram // end-to-end routed request latencies
	// hedgeCache is the cached auto hedge delay in nanoseconds, refreshed
	// from attemptLat's p99 every hedgeRefreshEvery hedgeTick increments so
	// the GET hot path never scans histogram buckets.
	hedgeCache atomic.Int64
	hedgeTick  atomic.Uint64

	maxBatch    int
	maxBodySize int64
}

// NewShardRouter builds the router over a ring and a transport of matching
// size with the default (replication-off) failure policy.
func NewShardRouter(ring *Ring, tr Transport) (*ShardRouter, error) {
	return NewShardRouterOpts(ring, tr, RouterOptions{})
}

// NewShardRouterOpts builds the router with an explicit failure policy.
func NewShardRouterOpts(ring *Ring, tr Transport, opts RouterOptions) (*ShardRouter, error) {
	if ring.Shards() != tr.Shards() {
		return nil, fmt.Errorf("fleet: ring has %d shards but transport %d", ring.Shards(), tr.Shards())
	}
	s := &ShardRouter{
		ring:        ring,
		tr:          tr,
		opts:        opts.withDefaults(ring.Shards()),
		hcfg:        healthConfig{failThreshold: int32(opts.FailThreshold), probeAfter: opts.ProbeAfter}.withDefaults(),
		health:      make([]shardHealth, ring.Shards()),
		admin:       NewAdminState(),
		shardHeader: make([][]string, ring.Shards()),
		perShard:    make([]atomic.Uint64, ring.Shards()),
		// Matches the shard handlers' default MaxBatch: the router must never
		// advertise a batch size a sub-batch could exceed (in the worst case
		// every item hashes to one shard), or valid requests turn into 502s.
		maxBatch:    256,
		maxBodySize: 1 << 22,
	}
	for i := range s.shardHeader {
		s.shardHeader[i] = []string{strconv.Itoa(i)}
	}
	for k := range s.attemptHeader {
		s.attemptHeader[k] = []string{strconv.Itoa(k + 1)}
	}
	s.reg = opts.Obs
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.attemptLat = s.reg.Histogram("router_attempt_us")
	s.hedgeWait = s.reg.Histogram("router_hedge_wait_us")
	s.reqLat = s.reg.Histogram("router_request_us")
	s.tracer = opts.Tracer
	if s.tracer == nil {
		s.tracer = obs.NewTracer(256, s.reqLat)
	}
	s.reg.CounterFunc("router_requests_total", s.requests.Load)
	s.reg.CounterFunc("router_batch_requests_total", s.batches.Load)
	s.reg.CounterFunc("router_batch_fanouts_total", s.fanouts.Load)
	s.reg.CounterFunc("router_retries_total", s.retries.Load)
	s.reg.CounterFunc("router_failovers_total", s.failovers.Load)
	s.reg.CounterFunc("router_hedges_total", s.hedges.Load)
	s.reg.CounterFunc("router_hedges_won_total", s.hedgesWon.Load)
	return s, nil
}

// Obs returns the router's metrics registry (rendered by
// /v1/metrics?format=prometheus).
func (s *ShardRouter) Obs() *obs.Registry { return s.reg }

// Tracer returns the router's request tracer (rendered by /v1/traces).
func (s *ShardRouter) Tracer() *obs.Tracer { return s.tracer }

// Ring returns the router's consistent-hash ring.
func (s *ShardRouter) Ring() *Ring { return s.ring }

// Replicas returns the effective replication factor R (after capping to the
// ring size).
func (s *ShardRouter) Replicas() int { return s.opts.Replicas }

// Admin returns the router's reconciled fleet admin state (see
// antientropy.go).
func (s *ShardRouter) Admin() *AdminState { return s.admin }

// ServeHTTP implements http.Handler: suggestion traffic is routed by context
// hash; /healthz, /metrics, /route and /fleet answer from the router itself.
// Admin endpoints live under /v1/ with the legacy unversioned paths
// redirecting, mirroring the serving layer's surface.
func (s *ShardRouter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/suggest":
		s.suggest(w, r)
	case "/suggest/batch", "/v1/suggest/batch":
		s.batch(w, r)
	case "/healthz":
		s.healthz(w)
	case "/v1/metrics":
		if wantsPrometheusFormat(r) {
			s.prometheus(w)
			return
		}
		s.metrics(w)
	case "/v1/traces":
		s.traces(w, r)
	case "/v1/route":
		s.route(w, r)
	case "/v1/reload":
		s.reload(w, r)
	case "/v1/fleet":
		s.fleetState(w, r)
	case "/metrics":
		// Prometheus scrapers conventionally hit bare /metrics and do not
		// follow redirects: serve the exposition directly in that case.
		if wantsPrometheusFormat(r) {
			s.prometheus(w)
			return
		}
		redirectV1(w, r)
	case "/route", "/fleet":
		redirectV1(w, r)
	case "/reload":
		// POST cannot follow a 301 without changing semantics: alias it.
		s.reload(w, r)
	default:
		writeErrorJSON(w, http.StatusNotFound, "not_found", "no such endpoint")
	}
}

// ShardReloadResult is one shard's slice of the router's /reload broadcast.
type ShardReloadResult struct {
	Shard    int             `json:"shard"`
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// ShardReloadResponse is the router's POST /reload payload: the broadcast's
// per-shard outcomes.
type ShardReloadResponse struct {
	Shards []ShardReloadResult `json:"shards"`
}

// reload broadcasts POST /reload (query string included, so model= and
// force= pass through) to every shard and reports each outcome. The overall
// status is 200 only when every shard answered 200; otherwise the worst
// shard status (502 for transport failures) so automation notices partial
// rollouts. A successful broadcast refreshes the router's reconciled admin
// state, so the new generations are visible on /v1/fleet (and, via
// anti-entropy, on every peer router) immediately.
func (s *ShardRouter) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	path := "/reload"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	resp := ShardReloadResponse{Shards: make([]ShardReloadResult, s.ring.Shards())}
	overall := http.StatusOK
	for shard := range resp.Shards {
		res := ShardReloadResult{Shard: shard}
		status, body, err := s.tr.Exchange(r.Context(), shard, http.MethodPost, path, nil, nil)
		if err != nil {
			res.Status = http.StatusBadGateway
			res.Error = err.Error()
		} else {
			res.Status = status
			if json.Valid(body) {
				res.Response = json.RawMessage(bytes.Clone(body))
			} else {
				res.Error = string(bytes.TrimSpace(body))
			}
		}
		if res.Status > overall {
			overall = res.Status
		}
		resp.Shards[shard] = res
	}
	s.RefreshAdmin(r.Context())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(overall)
	_ = json.NewEncoder(w).Encode(resp)
}

// getBuf leases a pooled GET-path response buffer.
func (s *ShardRouter) getBuf() []byte {
	if p, _ := s.bufs.Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, 1024)
}

// putBuf returns a GET-path response buffer to the pool.
func (s *ShardRouter) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	s.bufs.Put(&b)
}

// attemptContext derives the per-attempt context: a ShardTimeout deadline
// when configured, always cancellable so hedge losers stop early.
func (s *ShardRouter) attemptContext(parent context.Context) (context.Context, context.CancelFunc) {
	if s.opts.ShardTimeout > 0 {
		return context.WithTimeout(parent, s.opts.ShardTimeout)
	}
	return context.WithCancel(parent)
}

// backoffSleep sleeps the jittered failover backoff before retry attempt
// k >= 1: base doubling per attempt with ±50% jitter, so replicas of a
// struggling ring do not retry in lockstep.
func (s *ShardRouter) backoffSleep(k int) {
	base := s.opts.RetryBackoff
	if base <= 0 {
		return
	}
	d := base << (k - 1)
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // [d/2, 3d/2)
	time.Sleep(d)
}

// hedgeRefreshEvery is how many auto-mode hedgeDelay resolutions share one
// cached p99 scan of the attempt-latency histogram.
const hedgeRefreshEvery = 64

// hedgeDelay resolves the live hedging delay: the configured fixed value, or
// the attempt-latency p99 clamped to [200µs, 50ms] in auto mode (negative
// HedgeAfter). The auto value is cached and refreshed every
// hedgeRefreshEvery resolutions, so the hot path reads one atomic instead
// of scanning histogram buckets per request. 0 means hedging is off.
func (s *ShardRouter) hedgeDelay() time.Duration {
	ha := s.opts.HedgeAfter
	if ha >= 0 {
		return ha
	}
	if cached := s.hedgeCache.Load(); cached != 0 && s.hedgeTick.Add(1)%hedgeRefreshEvery != 0 {
		return time.Duration(cached)
	}
	d := time.Duration(s.attemptLat.Quantile(0.99)) * time.Microsecond
	const lo, hi = 200 * time.Microsecond, 50 * time.Millisecond
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	s.hedgeCache.Store(int64(d))
	return d
}

// retryable reports whether an attempt outcome should fail over to the next
// replica: transport errors and shard-side 5xx. Sub-5xx statuses are the
// shard's deterministic answer (including 4xx) — retrying cannot change
// them, and they must not poison the shard's health.
func retryable(status int, err error) bool {
	return err != nil || status >= http.StatusInternalServerError
}

// getAttempt is one in-flight GET attempt's result.
type getAttempt struct {
	pref   int // index into the preference list
	li     int // launch index: keys the attempt's cancel func and trace span
	shard  int
	status int
	body   []byte
	err    error
	hedge  bool
}

// suggest forwards the GET to the owning shard, walking the preference list
// on failure. The shard key is the FNV-1a hash of the percent-decoded q
// values (decoded streaming, no buffer), so it agrees with the batch path's
// hash of the same context strings. Responses carry X-Serve-Shard (the
// replica that answered), X-Serve-Attempts, X-Serve-Hedge (won when a
// hedged attempt's answer was served) and X-Trace-Id.
//
// Every attempt is a child span on the request trace: opened in launch (on
// the request goroutine — Trace is single-goroutine by contract), closed
// when its result is consumed, and closed as "cancelled" at finish for
// attempts whose results were abandoned to the drain goroutine. Breaker
// skips and hedge firings appear as point events, so a retained trace
// reconstructs the whole failover story: which replicas were tried, in what
// order, and why.
func (s *ShardRouter) suggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	s.requests.Add(1)
	tr := s.tracer.Start()
	if id := r.Header.Get("X-Trace-Id"); id != "" {
		tr.SetID(id)
	}
	w.Header()["X-Trace-Id"] = tr.HeaderValue()
	// The propagated header value is cloned: hedge losers may still sit in a
	// transport after this trace is finished and its pooled storage reused.
	ctx := obs.ContextWithTraceHeader(r.Context(), []string{strings.Clone(tr.ID())})
	var prefArr [MaxReplicas]int
	prefs := s.ring.LookupN(hashRawQueryContext(r.URL.RawQuery), s.opts.Replicas, prefArr[:0])
	s.perShard[prefs[0]].Add(1)

	uri := r.URL.RequestURI()
	resCh := make(chan getAttempt, len(prefs)+1)
	var cancels [MaxReplicas + 1]context.CancelFunc
	var spanIdx [MaxReplicas + 1]int
	var spanOpen [MaxReplicas + 1]bool
	var tried, skipNoted [MaxReplicas]bool
	launched, inflight := 0, 0

	// pick chooses the next untried preference, healthy shards first and
	// failing open to ejected ones when nothing healthy remains (an answer
	// from a sick replica beats a guaranteed 502). Returns -1 when the whole
	// list has been tried. A shard passed over because its breaker is open
	// is annotated once on the trace.
	pick := func() int {
		now := time.Now()
		for i, sh := range prefs {
			if tried[i] {
				continue
			}
			if s.health[sh].available(s.hcfg, now) {
				tried[i] = true
				return i
			}
			if !skipNoted[i] {
				skipNoted[i] = true
				tr.Event("breaker-skip", sh, "skipped")
			}
		}
		for i := range prefs {
			if !tried[i] {
				tried[i] = true
				return i
			}
		}
		return -1
	}
	launch := func(pref int, hedge bool) {
		actx, cancel := s.attemptContext(ctx)
		li := launched
		cancels[li] = cancel
		spanIdx[li] = tr.Begin("shard")
		spanOpen[li] = true
		tr.SetShard(spanIdx[li], prefs[pref])
		launched++
		inflight++
		shard := prefs[pref]
		go func() {
			start := time.Now()
			status, body, err := s.tr.Exchange(actx, shard, http.MethodGet, uri, nil, s.getBuf())
			if !retryable(status, err) {
				s.attemptLat.Record(time.Since(start).Microseconds())
			}
			resCh <- getAttempt{pref: pref, li: li, shard: shard, status: status, body: body, err: err, hedge: hedge}
		}()
	}
	// closeSpan closes the attempt span for a consumed result; finish closes
	// the rest as cancelled. Both run on the request goroutine.
	closeSpan := func(li int, outcome string) {
		if spanOpen[li] {
			spanOpen[li] = false
			tr.End(spanIdx[li], outcome)
		}
	}
	finish := func() {
		for i := 0; i < launched; i++ {
			cancels[i]()
			closeSpan(i, "cancelled")
		}
		if inflight > 0 {
			// Drain attempts still landing (hedge losers). A loser that
			// genuinely answered still closes its shard's breaker; a
			// cancelled or failed loser may be carrying the shard's
			// half-open probe claim, which must be handed back — otherwise
			// the breaker strands in "probing" and the shard never sees
			// traffic again. The drain goroutine never touches the trace:
			// its spans were already closed above, on the request goroutine.
			n := inflight
			go func() {
				for i := 0; i < n; i++ {
					res := <-resCh
					if !retryable(res.status, res.err) {
						s.health[res.shard].recordSuccess()
					} else {
						s.health[res.shard].releaseProbe()
					}
					s.putBuf(res.body)
				}
			}()
		}
	}

	hedge := s.hedgeDelay()
	if len(prefs) < 2 {
		hedge = 0
	}
	launch(pick(), false)
	var lastErr getAttempt
	for inflight > 0 {
		var res getAttempt
		if hedge > 0 && launched == 1 {
			t := time.NewTimer(hedge)
			select {
			case res = <-resCh:
				t.Stop()
			case <-t.C:
				if next := pick(); next >= 0 {
					s.hedges.Add(1)
					s.hedgeWait.Record(hedge.Microseconds())
					tr.Event("hedge-fire", prefs[next], "fired")
					launch(next, true)
				} else {
					hedge = 0
				}
				continue
			}
		} else {
			res = <-resCh
		}
		inflight--
		if !retryable(res.status, res.err) {
			if res.hedge {
				closeSpan(res.li, "hedge-won")
			} else {
				closeSpan(res.li, "ok")
			}
			s.health[res.shard].recordSuccess()
			if res.pref > 0 {
				s.failovers.Add(1)
			}
			if res.hedge {
				s.hedgesWon.Add(1)
			}
			finish()
			w.Header()["X-Serve-Shard"] = s.shardHeader[res.shard]
			w.Header()["X-Serve-Attempts"] = s.attemptHeader[min(launched, MaxReplicas)-1]
			if res.hedge {
				w.Header()["X-Serve-Hedge"] = hedgeWonHeaderValue
			}
			w.Header()["Content-Type"] = jsonHeaderValue
			w.WriteHeader(res.status)
			w.Write(res.body)
			s.putBuf(res.body)
			s.reqLat.Record(time.Since(tr.Start()).Microseconds())
			s.tracer.Finish(tr, false)
			return
		}
		if res.err != nil {
			closeSpan(res.li, "error")
		} else {
			closeSpan(res.li, "upstream-5xx")
		}
		s.health[res.shard].recordFailure(s.hcfg, time.Now())
		lastErr = res
		s.putBuf(res.body)
		if inflight == 0 {
			if next := pick(); next >= 0 {
				s.retries.Add(1)
				s.backoffSleep(launched)
				launch(next, false)
			}
		}
	}
	finish()
	msg := fmt.Sprintf("all %d replica(s) failed; shard %d last: ", launched, lastErr.shard)
	if lastErr.err != nil {
		msg += lastErr.err.Error()
	} else {
		msg += fmt.Sprintf("status %d", lastErr.status)
	}
	writeErrorJSON(w, http.StatusBadGateway, "bad_gateway", msg)
	s.reqLat.Record(time.Since(tr.Start()).Microseconds())
	s.tracer.Finish(tr, true)
}

// hedgeWonHeaderValue is the shared X-Serve-Hedge slice.
var hedgeWonHeaderValue = []string{"won"}

// batchScratch is the pooled working state of one batch fan-out: the raw
// body, the item spans, the per-item preference lists and attempt masks, the
// per-round scatter targets and the merged response builder. Everything is
// recycled, so a steady-state fan-out allocates only the per-shard
// goroutines.
type batchScratch struct {
	body    []byte
	spans   [][2]int // item spans within body
	prefs   []int    // stride-R preference list per item (R = effective replicas)
	tried   []uint8  // per-item bitmask over the preference list
	target  []int    // this round's shard per pending item (-1 = none)
	pending []int    // item indices awaiting service
	next    []int    // pending list being built for the next round
	failed  []int    // items that exhausted every replica
	counts  []int    // items per shard, this round
	avail   []bool   // per-shard availability, this round
	probes  []bool   // per-shard: availability was a half-open probe claim
	results [][]byte // per-item result bytes, aliasing the shardCall buffers
	calls   []*shardCall
	out     []byte // merged response body
	wg      sync.WaitGroup
}

// shardCall is one pooled sub-batch exchange: the items it carries, the
// sub-body sent to a shard, the shard's raw response, and the response's
// parsed result spans. The response buffer stays alive until the merge
// completes — results are scattered zero-copy. start/durMicros time the
// exchange; they are written by the call goroutine and read after wg.Wait
// on the request goroutine, which records the trace span retroactively.
type shardCall struct {
	shard     int
	items     []int // item indices, request order
	sub       []byte
	resp      []byte
	spans     [][2]int
	err       error
	start     time.Time
	durMicros int64
}

func (s *ShardRouter) getScratch() *batchScratch {
	b, _ := s.scratch.Get().(*batchScratch)
	if b == nil {
		b = &batchScratch{body: make([]byte, 0, 4096)}
	}
	n := s.ring.Shards()
	if len(b.counts) != n {
		b.counts = make([]int, n)
		b.avail = make([]bool, n)
		b.probes = make([]bool, n)
	}
	b.body = b.body[:0]
	b.spans = b.spans[:0]
	b.prefs = b.prefs[:0]
	b.tried = b.tried[:0]
	b.target = b.target[:0]
	b.pending = b.pending[:0]
	b.next = b.next[:0]
	b.failed = b.failed[:0]
	b.results = b.results[:0]
	b.calls = b.calls[:0]
	b.out = b.out[:0]
	return b
}

func (s *ShardRouter) putScratch(b *batchScratch) {
	for i := range b.results {
		b.results[i] = nil
	}
	s.putCalls(b)
	s.scratch.Put(b)
}

// putCalls recycles the scratch's outstanding shard calls (between rounds
// and at the end of the fan-out).
func (s *ShardRouter) putCalls(b *batchScratch) {
	for _, c := range b.calls {
		c.items = c.items[:0]
		c.sub = c.sub[:0]
		c.resp = c.resp[:0]
		c.spans = c.spans[:0]
		c.err = nil
		s.calls.Put(c)
	}
	b.calls = b.calls[:0]
}

// batch splits a POST /suggest/batch body across shards and merges the
// responses back into request order. Items travel as raw byte spans of the
// request body — the router never decodes them — and shard results are
// scattered into the merged response zero-copy from pooled per-shard
// buffers. The whole fan-out recycles its working state, which is what holds
// BenchmarkShardFanout64's alloc gate; per-item took_us values come from the
// shards and the top-level took_us stays 0 (clients sum per-result values).
//
// With replication (R > 1) the fan-out runs in rounds: round 0 groups items
// by their first healthy preference and fans out concurrently; items whose
// call failed re-group by their next untried replica for round 1, after a
// jittered backoff; and so on until served or every replica was tried. Only
// items that exhaust the whole preference list fail the request (buffered:
// 502) or degrade to error lines (streaming) — a single shard down at
// R >= 2 is absorbed invisibly, with byte-identical results, because every
// replica serves the same compiled blob.
//
// With ?stream=1 (or Accept: application/x-ndjson) the merge is skipped:
// each shard's sub-batch is written the moment it completes, one NDJSON
// line per item — {"index":N,"result":{...}} with the item bytes exactly as
// the buffered merge would have carried them — and the connection is
// flushed per sub-batch, so a client sees its first results at the latency
// of the fastest shard, not the slowest. Lines arrive in an arbitrary
// order; index is the item's position in the request.
func (s *ShardRouter) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	tr := s.tracer.Start()
	if id := r.Header.Get("X-Trace-Id"); id != "" {
		tr.SetID(id)
	}
	w.Header()["X-Trace-Id"] = tr.HeaderValue()
	ctx := obs.ContextWithTraceHeader(r.Context(), []string{strings.Clone(tr.ID())})
	// Assume the worst until a success path flips it; the deferred finish
	// then tail-samples error traces without per-return bookkeeping.
	errored := true
	defer func() {
		s.reqLat.Record(time.Since(tr.Start()).Microseconds())
		s.tracer.Finish(tr, errored)
	}()
	var err error
	if sc.body, err = appendReadAll(sc.body, http.MaxBytesReader(w, r.Body, s.maxBodySize)); err != nil {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	arr, err := jsonspan.FindKey(sc.body, 0, "requests")
	if err == nil && arr < 0 {
		err = fmt.Errorf(`missing "requests" array`)
	}
	if err == nil {
		sc.spans, err = jsonspan.AppendArraySpans(sc.spans[:0], sc.body, arr)
	}
	if err != nil {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if len(sc.spans) == 0 {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request", "empty batch: requests must contain at least one context")
		return
	}
	if len(sc.spans) > s.maxBatch {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d exceeds limit %d", len(sc.spans), s.maxBatch))
		return
	}

	// Assign each item its stride-R preference list by context hash; the
	// primary feeds the per-shard distribution counters.
	R := s.opts.Replicas
	for i, sp := range sc.spans {
		h, err := hashJSONContext(sc.body[sp[0]:sp[1]])
		if err != nil {
			writeErrorJSON(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("requests[%d]: %v", i, err))
			return
		}
		sc.prefs = s.ring.LookupN(h, R, sc.prefs)
		s.perShard[sc.prefs[i*R]].Add(1)
		sc.tried = append(sc.tried, 0)
		sc.pending = append(sc.pending, i)
	}

	stream := wantsNDJSONStream(r)
	var streamMu sync.Mutex
	var flusher http.Flusher
	if stream {
		flusher, _ = w.(http.Flusher)
		w.Header()["Content-Type"] = ndjsonHeaderValue
		w.WriteHeader(http.StatusOK)
	}

	for len(sc.results) < len(sc.spans) {
		sc.results = append(sc.results, nil)
	}
	sc.results = sc.results[:len(sc.spans)]

	var failMsg string
	for round := 0; len(sc.pending) > 0 && round < R; round++ {
		if round > 0 {
			s.backoffSleep(round)
		}
		failMsg = s.fanoutRound(ctx, w, sc, tr, R, stream, &streamMu, flusher)
	}
	for _, i := range sc.pending {
		sc.failed = append(sc.failed, i)
	}

	if stream {
		if len(sc.failed) > 0 {
			// The 200 is already on the wire: per-item error lines are the
			// only way left to report items whose every replica failed.
			streamMu.Lock()
			s.writeFailedLines(w, sc, failMsg)
			if flusher != nil {
				flusher.Flush()
			}
			streamMu.Unlock()
		} else {
			errored = false
		}
		s.batches.Add(1)
		return
	}
	if len(sc.failed) > 0 {
		if failMsg == "" {
			failMsg = "all replicas failed"
		}
		writeErrorJSON(w, http.StatusBadGateway, "bad_gateway",
			fmt.Sprintf("%d item(s) failed on every replica: %s", len(sc.failed), failMsg))
		return
	}
	s.batches.Add(1)
	errored = false

	sc.out = append(sc.out, `{"results":[`...)
	for i, res := range sc.results {
		if i > 0 {
			sc.out = append(sc.out, ',')
		}
		sc.out = append(sc.out, res...)
	}
	sc.out = append(sc.out, `],"took_us":0}`...)
	if n := s.failoversOf(sc, R); n > 0 {
		w.Header()["X-Serve-Failovers"] = []string{strconv.Itoa(n)}
	}
	w.Header()["Content-Type"] = jsonHeaderValue
	w.Write(sc.out)
}

// failoversOf counts the batch's items that were answered by a non-primary
// replica (for the X-Serve-Failovers response header).
func (s *ShardRouter) failoversOf(sc *batchScratch, R int) int {
	if R < 2 {
		return 0
	}
	n := 0
	for _, c := range sc.calls {
		if c.err != nil {
			continue
		}
		for _, i := range c.items {
			if sc.prefs[i*R] != c.shard {
				n++
			}
		}
	}
	return n
}

// fanoutRound serves one failover round: pending items are grouped by their
// next untried preference (healthy shards first, failing open when none
// are), the groups fan out concurrently, successful calls scatter results
// (or stream their lines), and failed calls push their items into the next
// round's pending list. Each completed call is recorded retroactively as a
// "shard-batch" span on tr (after wg.Wait, on the request goroutine — the
// call goroutines only stamp timings into their own shardCall). Returns the
// last failed call's message, for the final error report.
func (s *ShardRouter) fanoutRound(ctx context.Context, w http.ResponseWriter, sc *batchScratch, tr *obs.Trace, R int, stream bool, streamMu *sync.Mutex, flusher http.Flusher) string {
	// Evaluate availability once per shard per round; remember half-open
	// probe claims so unclaimed ones (no traffic grouped onto them) can be
	// released instead of stranding the breaker.
	now := time.Now()
	for sh := range s.health {
		sc.avail[sh], sc.probes[sh] = false, false
		st := s.health[sh].state.Load()
		if s.health[sh].available(s.hcfg, now) {
			sc.avail[sh] = true
			sc.probes[sh] = st == healthOpen // claim happened via open → half-open
		}
	}
	clear(sc.counts)
	sc.target = sc.target[:0]
	for _, i := range sc.pending {
		t := -1
		for k := 0; k < R; k++ {
			if sc.tried[i]&(1<<k) == 0 && sc.avail[sc.prefs[i*R+k]] {
				t = k
				break
			}
		}
		if t < 0 {
			for k := 0; k < R; k++ {
				if sc.tried[i]&(1<<k) == 0 {
					t = k
					break
				}
			}
		}
		if t < 0 {
			sc.target = append(sc.target, -1)
			continue
		}
		sc.tried[i] |= 1 << t
		sh := sc.prefs[i*R+t]
		sc.target = append(sc.target, sh)
		sc.counts[sh]++
	}
	for sh, probe := range sc.probes {
		if probe && sc.counts[sh] == 0 {
			s.health[sh].releaseProbe()
		}
	}

	// Build and fan out this round's calls. Recycled calls from the previous
	// round were already returned to the pool by the caller's classification
	// pass — see below.
	callsBefore := len(sc.calls)
	for sh, count := range sc.counts {
		if count == 0 {
			continue
		}
		s.fanouts.Add(1)
		call, _ := s.calls.Get().(*shardCall)
		if call == nil {
			call = &shardCall{}
		}
		call.shard = sh
		call.sub = append(call.sub, `{"requests":[`...)
		first := true
		for j, i := range sc.pending {
			if sc.target[j] != sh {
				continue
			}
			call.items = append(call.items, i)
			if !first {
				call.sub = append(call.sub, ',')
			}
			first = false
			sp := sc.spans[i]
			call.sub = append(call.sub, sc.body[sp[0]:sp[1]]...)
		}
		call.sub = append(call.sub, `]}`...)
		sc.calls = append(sc.calls, call)
		sc.wg.Add(1)
		go func(call *shardCall) {
			defer sc.wg.Done()
			call.start = time.Now()
			call.err = s.exchangeSubBatch(ctx, call)
			call.durMicros = time.Since(call.start).Microseconds()
			if call.err == nil {
				s.health[call.shard].recordSuccess()
				if stream {
					// Write this sub-batch's lines as soon as it lands; the
					// mutex serialises writers, the flush pushes the lines to
					// the client while slower shards are still descending.
					streamMu.Lock()
					s.writeCallLines(w, sc, call)
					if flusher != nil {
						flusher.Flush()
					}
					streamMu.Unlock()
				}
			} else {
				s.health[call.shard].recordFailure(s.hcfg, time.Now())
			}
		}(call)
	}
	sc.wg.Wait()

	// Classify: successes scatter (buffered mode), failures re-queue their
	// items for the next round.
	failMsg := ""
	sc.next = sc.next[:0]
	for j, i := range sc.pending {
		if sc.target[j] < 0 {
			sc.next = append(sc.next, i) // exhausted; caller moves it to failed
		}
	}
	for _, call := range sc.calls[callsBefore:] {
		off := call.start.Sub(tr.Start()).Microseconds()
		if call.err != nil {
			tr.Record("shard-batch", off, call.durMicros, call.shard, "error")
			failMsg = fmt.Sprintf("shard %d: %v", call.shard, call.err)
			s.retries.Add(uint64(len(call.items)))
			sc.next = append(sc.next, call.items...)
			continue
		}
		tr.Record("shard-batch", off, call.durMicros, call.shard, "ok")
		if !stream {
			for j, i := range call.items {
				sp := call.spans[j]
				sc.results[i] = call.resp[sp[0]:sp[1]]
			}
		}
	}
	sc.pending, sc.next = sc.next, sc.pending[:0]
	// Exhausted items re-queued above will find no untried preference next
	// round and fall through to failed; simpler than a second list here.
	return failMsg
}

// parseResults splits the shard response's "results" array into element
// spans inside the call's recycled span buffer.
func (c *shardCall) parseResults() error {
	arr, err := jsonspan.FindKey(c.resp, 0, "results")
	if err == nil && arr < 0 {
		err = fmt.Errorf(`missing "results" array`)
	}
	if err == nil {
		c.spans, err = jsonspan.AppendArraySpans(c.spans[:0], c.resp, arr)
	}
	if err != nil {
		return fmt.Errorf("decoding shard response: %w", err)
	}
	if len(c.spans) != len(c.items) {
		return fmt.Errorf("shard answered %d results for %d items", len(c.spans), len(c.items))
	}
	return nil
}

// exchangeSubBatch posts one shard's sub-batch and parses the result spans
// out of its response, all into the call's recycled buffers.
func (s *ShardRouter) exchangeSubBatch(ctx context.Context, call *shardCall) error {
	actx, cancel := s.attemptContext(ctx)
	defer cancel()
	status, resp, err := s.tr.Exchange(actx, call.shard, http.MethodPost, "/suggest/batch", call.sub, call.resp)
	call.resp = resp
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, bytes.TrimSpace(resp))
	}
	return call.parseResults()
}

// writeCallLines writes one completed sub-batch as NDJSON lines, one per
// item the call carried, each tagged with the item's index in the original
// request. Result bytes are the shard's item spans verbatim — the same
// bytes the buffered merge scatters — so streamed and buffered responses
// agree item for item, whichever replica answered. Callers hold the stream
// mutex, so reusing sc.out as the line builder is race-free.
func (s *ShardRouter) writeCallLines(w io.Writer, sc *batchScratch, call *shardCall) {
	sc.out = sc.out[:0]
	for j, i := range call.items {
		sp := call.spans[j]
		sc.out = append(sc.out, `{"index":`...)
		sc.out = strconv.AppendInt(sc.out, int64(i), 10)
		sc.out = append(sc.out, `,"result":`...)
		sc.out = append(sc.out, call.resp[sp[0]:sp[1]]...)
		sc.out = append(sc.out, '}', '\n')
	}
	w.Write(sc.out)
}

// writeFailedLines reports items whose every replica failed as NDJSON error
// lines — the stream's 200 is already committed, so per-item errors are the
// only channel left. Callers hold the stream mutex.
func (s *ShardRouter) writeFailedLines(w io.Writer, sc *batchScratch, failMsg string) {
	if failMsg == "" {
		failMsg = "all replicas failed"
	}
	sc.out = sc.out[:0]
	for _, i := range sc.failed {
		sc.out = append(sc.out, `{"index":`...)
		sc.out = strconv.AppendInt(sc.out, int64(i), 10)
		sc.out = append(sc.out, `,"error":{"code":"bad_gateway","message":`...)
		sc.out = strconv.AppendQuote(sc.out, failMsg)
		sc.out = append(sc.out, `}}`...)
		sc.out = append(sc.out, '\n')
	}
	w.Write(sc.out)
}

// wantsNDJSONStream reports whether a batch request opted into the
// streaming NDJSON response: ?stream=1 in the query string or an Accept
// header naming application/x-ndjson. The query string is scanned in place
// (url.Query would allocate on the hot path for every buffered request
// too).
func wantsNDJSONStream(r *http.Request) bool {
	raw := r.URL.RawQuery
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "stream=1" {
			return true
		}
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// jsonHeaderValue is the shared Content-Type slice for allocation-free
// header assignment.
var jsonHeaderValue = []string{"application/json"}

// ndjsonHeaderValue is its application/x-ndjson counterpart for streamed
// batch responses.
var ndjsonHeaderValue = []string{"application/x-ndjson"}

// redirectV1 301s a legacy unversioned admin path to its /v1/ home.
func redirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusMovedPermanently)
}

// writeErrorJSON answers a non-2xx with the consistent error envelope
// {"error":{"code","message"}} every handler in the repository uses.
func writeErrorJSON(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var buf [256]byte
	b := append(buf[:0], `{"error":{"code":`...)
	b = strconv.AppendQuote(b, code)
	b = append(b, `,"message":`...)
	b = strconv.AppendQuote(b, msg)
	b = append(b, `}}`...)
	b = append(b, '\n')
	w.Write(b)
}

// ShardRouterHealth is the shard router's /healthz payload: liveness plus
// the replication factor and every shard breaker's live state.
type ShardRouterHealth struct {
	Status        string             `json:"status"`
	Role          string             `json:"role"`
	Shards        int                `json:"shards"`
	Replicas      int                `json:"replicas"`
	ShardsHealthy int                `json:"shards_healthy"`
	ShardHealth   []ShardHealthStats `json:"shard_health"`
}

func (s *ShardRouter) healthz(w http.ResponseWriter) {
	resp := ShardRouterHealth{
		Status:   "ok",
		Role:     "router",
		Shards:   s.ring.Shards(),
		Replicas: s.opts.Replicas,
	}
	for i := range s.health {
		hs := s.health[i].snapshot(i)
		if hs.State == "healthy" {
			resp.ShardsHealthy++
		}
		resp.ShardHealth = append(resp.ShardHealth, hs)
	}
	if resp.ShardsHealthy == 0 {
		resp.Status = "degraded"
	}
	writeJSON(w, resp)
}

// ShardRouterMetrics is the shard router's /metrics payload: routed request
// counters, the per-shard distribution (contexts routed to each replica —
// near-even by construction of the ring), and the failure-policy counters:
// retries (failed attempts moved to another replica), failovers (requests
// answered by a non-primary), hedges fired/won, and each shard breaker's
// state.
type ShardRouterMetrics struct {
	Role          string `json:"role"`
	Shards        int    `json:"shards"`
	Replicas      int    `json:"replicas"`
	Requests      uint64 `json:"requests"`
	BatchRequests uint64 `json:"batch_requests"`
	BatchFanouts  uint64 `json:"batch_fanouts"`
	Retries       uint64 `json:"retries"`
	Failovers     uint64 `json:"failovers"`
	Hedges        uint64 `json:"hedges"`
	HedgesWon     uint64 `json:"hedges_won"`
	// Request* summarise end-to-end routed request latency (GET and batch);
	// Attempt* summarise successful individual shard attempts, the
	// distribution that drives the auto hedge delay.
	RequestP50Micros  int64              `json:"request_p50_us"`
	RequestP99Micros  int64              `json:"request_p99_us"`
	RequestP999Micros int64              `json:"request_p999_us"`
	RequestMaxMicros  int64              `json:"request_max_us"`
	AttemptP50Micros  int64              `json:"attempt_p50_us"`
	AttemptP99Micros  int64              `json:"attempt_p99_us"`
	AttemptP999Micros int64              `json:"attempt_p999_us"`
	AttemptMaxMicros  int64              `json:"attempt_max_us"`
	ContextsPerShard  []uint64           `json:"contexts_per_shard"`
	ShardHealth       []ShardHealthStats `json:"shard_health"`
	AntiEntropy       *AdminStateStats   `json:"anti_entropy,omitempty"`
}

func (s *ShardRouter) metrics(w http.ResponseWriter) {
	m := ShardRouterMetrics{
		Role:          "router",
		Shards:        s.ring.Shards(),
		Replicas:      s.opts.Replicas,
		Requests:      s.requests.Load(),
		BatchRequests: s.batches.Load(),
		BatchFanouts:  s.fanouts.Load(),
		Retries:       s.retries.Load(),
		Failovers:     s.failovers.Load(),
		Hedges:        s.hedges.Load(),
		HedgesWon:     s.hedgesWon.Load(),
	}
	if s.reqLat.Count() > 0 {
		m.RequestP50Micros = s.reqLat.Quantile(0.50)
		m.RequestP99Micros = s.reqLat.Quantile(0.99)
		m.RequestP999Micros = s.reqLat.Quantile(0.999)
		m.RequestMaxMicros = s.reqLat.Max()
	}
	if s.attemptLat.Count() > 0 {
		m.AttemptP50Micros = s.attemptLat.Quantile(0.50)
		m.AttemptP99Micros = s.attemptLat.Quantile(0.99)
		m.AttemptP999Micros = s.attemptLat.Quantile(0.999)
		m.AttemptMaxMicros = s.attemptLat.Max()
	}
	for i := range s.perShard {
		m.ContextsPerShard = append(m.ContextsPerShard, s.perShard[i].Load())
	}
	for i := range s.health {
		m.ShardHealth = append(m.ShardHealth, s.health[i].snapshot(i))
	}
	st := s.admin.Stats()
	m.AntiEntropy = &st
	writeJSON(w, m)
}

// RouteResponse is the /route admin payload: where a context would go,
// without serving it — the whole preference list under replication.
type RouteResponse struct {
	Hash     string `json:"context_hash"`
	Shard    int    `json:"shard"`
	Replicas []int  `json:"replicas,omitempty"`
}

// route reports the shard assignment for the context in the query string —
// the debugging endpoint for "which replicas own this context?".
func (s *ShardRouter) route(w http.ResponseWriter, r *http.Request) {
	h := hashRawQueryContext(r.URL.RawQuery)
	prefs := s.ring.LookupN(h, s.opts.Replicas, nil)
	resp := RouteResponse{Hash: fmt.Sprintf("%016x", h), Shard: prefs[0]}
	if len(prefs) > 1 {
		resp.Replicas = prefs
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// wantsPrometheusFormat reports whether the request asked for the
// Prometheus text exposition via ?format=prometheus.
func wantsPrometheusFormat(r *http.Request) bool {
	return strings.Contains(r.URL.RawQuery, "format=prometheus")
}

// routerPromContentType is the Prometheus text exposition content type,
// shared for allocation-free header assignment.
var routerPromContentType = []string{"text/plain; version=0.0.4; charset=utf-8"}

// prometheus renders the router's registry in the Prometheus text format.
func (s *ShardRouter) prometheus(w http.ResponseWriter) {
	w.Header()["Content-Type"] = routerPromContentType
	_ = s.reg.WritePrometheus(w)
}

// traces serves GET /v1/traces: the router's tail-sampled retained traces,
// newest first, filterable with ?min_us=N, ?error=1 and ?limit=N. Each
// trace shows the request's failover story: per-attempt shard spans with
// outcomes, breaker skips and hedge firings.
func (s *ShardRouter) traces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	var minMicros int64
	var onlyErrors bool
	limit := 0
	q := r.URL.Query()
	if v := q.Get("min_us"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			minMicros = n
		}
	}
	if v := q.Get("error"); v == "1" || v == "true" {
		onlyErrors = true
	}
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			limit = n
		}
	}
	views := s.tracer.Snapshot(minMicros, onlyErrors, limit)
	resp := struct {
		SlowThresholdMicros int64           `json:"slow_threshold_us,omitempty"`
		Count               int             `json:"count"`
		Traces              []obs.TraceView `json:"traces"`
	}{Count: len(views), Traces: views}
	if th := s.tracer.SlowThresholdMicros(); th < math.MaxInt64 {
		resp.SlowThresholdMicros = th
	}
	writeJSON(w, resp)
}

// hashRawQueryContext hashes the q values of a raw query string: each value
// is percent-decoded ('+' is space) streaming into the hash — no buffer —
// and terminated with a 0xFF separator so value boundaries cannot alias.
// Undecodable escapes hash the raw bytes instead (still deterministic).
// The result matches hashStringContext of the decoded values, so GET and
// batch traffic for the same context agree on the owning shard.
func hashRawQueryContext(raw string) uint64 {
	h := uint64(fnvOffset64)
	mix := func(c byte) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		key, val := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			key, val = seg[:i], seg[i+1:]
		}
		if key != "q" {
			continue
		}
		for i := 0; i < len(val); i++ {
			switch c := val[i]; c {
			case '+':
				mix(' ')
			case '%':
				if i+2 < len(val) {
					hi, okHi := unhexDigit(val[i+1])
					lo, okLo := unhexDigit(val[i+2])
					if okHi && okLo {
						mix(hi<<4 | lo)
						i += 2
						continue
					}
				}
				mix(c)
			default:
				mix(c)
			}
		}
		mix(0xFF)
	}
	return h
}

// hashStringContext hashes a decoded context — the GET path's
// hashRawQueryContext counterpart for contexts already held as strings.
func hashStringContext(context []string) uint64 {
	h := uint64(fnvOffset64)
	for _, q := range context {
		for i := 0; i < len(q); i++ {
			h ^= uint64(q[i])
			h *= fnvPrime64
		}
		h ^= 0xFF
		h *= fnvPrime64
	}
	return h
}

func unhexDigit(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
