package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/jsonspan"
)

// Transport carries a routed request to a shard replica. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Forward serves r from the given shard, writing the shard's response
	// (status, content type, body) to w — the single-request path, kept
	// streaming so the loopback case stays allocation-free.
	Forward(shard int, w http.ResponseWriter, r *http.Request)
	// Exchange posts a JSON body to path on the given shard — the batch
	// fan-out path. The response body is appended to respBuf (which may be a
	// recycled pooled buffer, possibly nil) and returned; the caller owns it
	// and the transport must not retain or reuse it after returning.
	Exchange(shard int, path string, body, respBuf []byte) (status int, resp []byte, err error)
	// Shards returns the number of replicas the transport can reach.
	Shards() int
}

// LoopbackTransport routes to in-process shard handlers — N serving handlers
// (typically sharing one mmapped model) behind one router in a single
// process. It is the zero-infrastructure deployment of the ring: the routing
// behaviour, stickiness and cache partitioning are identical to the HTTP
// transport, so a single process can validate a sharding plan before it is
// distributed.
type LoopbackTransport struct {
	handlers []http.Handler
	scratch  sync.Pool // *loopbackScratch
}

// NewLoopbackTransport builds a loopback transport over in-process handlers,
// one per shard.
func NewLoopbackTransport(handlers ...http.Handler) *LoopbackTransport {
	return &LoopbackTransport{handlers: handlers}
}

// Shards implements Transport.
func (t *LoopbackTransport) Shards() int { return len(t.handlers) }

// Forward implements Transport by calling the shard handler directly.
func (t *LoopbackTransport) Forward(shard int, w http.ResponseWriter, r *http.Request) {
	t.handlers[shard].ServeHTTP(w, r)
}

// loopbackScratch is one pooled synthetic request/response pair: the
// http.Request, its URL, the body reader and the response recorder are all
// built once and reset per exchange, so the steady-state loopback fan-out
// allocates nothing per sub-request.
type loopbackScratch struct {
	req  http.Request
	url  url.URL
	rd   bytes.Reader
	resp bufferedResponse
}

// nopCloseReader adapts the scratch body reader to http.Request.Body.
type nopCloseReader struct{ *bytes.Reader }

func (nopCloseReader) Close() error { return nil }

// Exchange implements Transport by synthesising an in-process POST from a
// pooled request scratch.
func (t *LoopbackTransport) Exchange(shard int, path string, body, respBuf []byte) (int, []byte, error) {
	s, _ := t.scratch.Get().(*loopbackScratch)
	if s == nil {
		s = &loopbackScratch{}
		s.req.Method = http.MethodPost
		s.req.Proto = "HTTP/1.1"
		s.req.ProtoMajor, s.req.ProtoMinor = 1, 1
		s.req.Header = http.Header{"Content-Type": {"application/json"}}
		s.req.URL = &s.url
		s.req.Body = nopCloseReader{&s.rd}
		s.resp.header = make(http.Header, 4)
	}
	s.url.Path = path
	s.url.RawQuery = ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		s.url.Path, s.url.RawQuery = path[:i], path[i+1:]
	}
	s.rd.Reset(body)
	s.req.ContentLength = int64(len(body))
	s.resp.code = 0
	s.resp.body = respBuf
	clear(s.resp.header)
	t.handlers[shard].ServeHTTP(&s.resp, &s.req)
	status, out := s.resp.status(), s.resp.body
	s.resp.body = nil // caller owns the buffer now
	t.scratch.Put(s)
	return status, out, nil
}

// bufferedResponse is a minimal in-memory http.ResponseWriter for loopback
// exchanges; the body accumulates in a caller-owned byte slice.
type bufferedResponse struct {
	code   int
	header http.Header
	body   []byte
}

func (r *bufferedResponse) Header() http.Header { return r.header }

func (r *bufferedResponse) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *bufferedResponse) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.body = append(r.body, p...)
	return len(p), nil
}

func (r *bufferedResponse) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// HTTPTransport routes to shard replicas over HTTP — the distributed
// deployment, where each shard is a `cmd/serve -role shard` process.
type HTTPTransport struct {
	bases  []*url.URL
	client *http.Client
}

// NewHTTPTransport builds an HTTP transport over shard base URLs (e.g.
// "http://shard-0:8080"). client nil selects http.DefaultClient; production
// routers should pass one with sane timeouts and a sized connection pool.
func NewHTTPTransport(bases []string, client *http.Client) (*HTTPTransport, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("fleet: no shard URLs")
	}
	if client == nil {
		client = http.DefaultClient
	}
	t := &HTTPTransport{client: client}
	for _, b := range bases {
		u, err := url.Parse(strings.TrimSuffix(b, "/"))
		if err != nil {
			return nil, fmt.Errorf("fleet: shard URL %q: %w", b, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: shard URL %q needs a scheme and host", b)
		}
		t.bases = append(t.bases, u)
	}
	return t, nil
}

// Shards implements Transport.
func (t *HTTPTransport) Shards() int { return len(t.bases) }

// Forward implements Transport by proxying the request to the shard and
// relaying status, content type and body. Transport failures answer 502.
func (t *HTTPTransport) Forward(shard int, w http.ResponseWriter, r *http.Request) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		t.bases[shard].String()+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := t.client.Do(out)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// Exchange implements Transport with a plain POST to the shard, reading the
// response into the caller's recycled buffer.
func (t *HTTPTransport) Exchange(shard int, path string, body, respBuf []byte) (int, []byte, error) {
	resp, err := t.client.Post(t.bases[shard].String()+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := appendReadAll(respBuf, resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// appendReadAll reads rd to EOF, appending to buf — io.ReadAll with a
// recycled destination.
func appendReadAll(buf []byte, rd io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// ShardRouter fans suggestion traffic out to N replicas of the same model by
// consistent hash of the request context: GET /suggest forwards whole to one
// shard, POST /suggest/batch splits the batch by shard, forwards the
// sub-batches concurrently and reassembles the results in request order.
// Every replica serves the identical model, so routing choices never change
// answers — they partition the context keyspace so each replica's result
// cache and faulted-in trie pages cover only its arc.
type ShardRouter struct {
	ring *Ring
	tr   Transport

	// shardHeader[i] is the pre-built X-Serve-Shard value for shard i.
	shardHeader [][]string

	scratch sync.Pool // *batchScratch
	calls   sync.Pool // *shardCall

	requests    atomic.Uint64
	batches     atomic.Uint64
	fanouts     atomic.Uint64 // shard sub-requests issued by batch fan-out
	perShard    []atomic.Uint64
	maxBatch    int
	maxBodySize int64
}

// NewShardRouter builds the router over a ring and a transport of matching
// size.
func NewShardRouter(ring *Ring, tr Transport) (*ShardRouter, error) {
	if ring.Shards() != tr.Shards() {
		return nil, fmt.Errorf("fleet: ring has %d shards but transport %d", ring.Shards(), tr.Shards())
	}
	s := &ShardRouter{
		ring:        ring,
		tr:          tr,
		shardHeader: make([][]string, ring.Shards()),
		perShard:    make([]atomic.Uint64, ring.Shards()),
		// Matches the shard handlers' default MaxBatch: the router must never
		// advertise a batch size a sub-batch could exceed (in the worst case
		// every item hashes to one shard), or valid requests turn into 502s.
		maxBatch:    256,
		maxBodySize: 1 << 22,
	}
	for i := range s.shardHeader {
		s.shardHeader[i] = []string{strconv.Itoa(i)}
	}
	return s, nil
}

// Ring returns the router's consistent-hash ring.
func (s *ShardRouter) Ring() *Ring { return s.ring }

// ServeHTTP implements http.Handler: suggestion traffic is routed by context
// hash; /healthz, /metrics and /route answer from the router itself. Admin
// endpoints live under /v1/ with the legacy unversioned paths redirecting,
// mirroring the serving layer's surface.
func (s *ShardRouter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/suggest":
		s.suggest(w, r)
	case "/suggest/batch", "/v1/suggest/batch":
		s.batch(w, r)
	case "/healthz":
		s.health(w)
	case "/v1/metrics":
		s.metrics(w)
	case "/v1/route":
		s.route(w, r)
	case "/v1/reload":
		s.reload(w, r)
	case "/metrics", "/route":
		redirectV1(w, r)
	case "/reload":
		// POST cannot follow a 301 without changing semantics: alias it.
		s.reload(w, r)
	default:
		writeErrorJSON(w, http.StatusNotFound, "not_found", "no such endpoint")
	}
}

// ShardReloadResult is one shard's slice of the router's /reload broadcast.
type ShardReloadResult struct {
	Shard    int             `json:"shard"`
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// ShardReloadResponse is the router's POST /reload payload: the broadcast's
// per-shard outcomes.
type ShardReloadResponse struct {
	Shards []ShardReloadResult `json:"shards"`
}

// reload broadcasts POST /reload (query string included, so model= and
// force= pass through) to every shard and reports each outcome. The overall
// status is 200 only when every shard answered 200; otherwise the worst
// shard status (502 for transport failures) so automation notices partial
// rollouts.
func (s *ShardRouter) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	path := "/reload"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	resp := ShardReloadResponse{Shards: make([]ShardReloadResult, s.ring.Shards())}
	overall := http.StatusOK
	for shard := range resp.Shards {
		res := ShardReloadResult{Shard: shard}
		status, body, err := s.tr.Exchange(shard, path, nil, nil)
		if err != nil {
			res.Status = http.StatusBadGateway
			res.Error = err.Error()
		} else {
			res.Status = status
			if json.Valid(body) {
				res.Response = json.RawMessage(bytes.Clone(body))
			} else {
				res.Error = string(bytes.TrimSpace(body))
			}
		}
		if res.Status > overall {
			overall = res.Status
		}
		resp.Shards[shard] = res
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(overall)
	_ = json.NewEncoder(w).Encode(resp)
}

// suggest forwards the whole GET to the owning shard. The shard key is the
// FNV-1a hash of the percent-decoded q values (decoded streaming, no
// buffer), so it agrees with the batch path's hash of the same context
// strings.
func (s *ShardRouter) suggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	shard := s.ring.Lookup(hashRawQueryContext(r.URL.RawQuery))
	s.requests.Add(1)
	s.perShard[shard].Add(1)
	w.Header()["X-Serve-Shard"] = s.shardHeader[shard]
	s.tr.Forward(shard, w, r)
}

// batchScratch is the pooled working state of one batch fan-out: the raw
// body, the item spans, the shard assignment, the scatter targets and the
// merged response builder. Everything is recycled, so a steady-state fan-out
// allocates only the per-shard goroutines.
type batchScratch struct {
	body    []byte
	spans   [][2]int // item spans within body
	shardOf []int    // owning shard per item
	counts  []int    // items per shard
	results [][]byte // per-item result bytes, aliasing the shardCall buffers
	calls   []*shardCall
	out     []byte // merged response body
	wg      sync.WaitGroup
}

// shardCall is one pooled sub-batch exchange: the sub-body sent to a shard,
// the shard's raw response, and the response's parsed result spans. The
// response buffer stays alive until the merge completes — results are
// scattered zero-copy.
type shardCall struct {
	shard int
	want  int // items in this sub-batch
	sub   []byte
	resp  []byte
	spans [][2]int
	err   error
}

func (s *ShardRouter) getScratch() *batchScratch {
	b, _ := s.scratch.Get().(*batchScratch)
	if b == nil {
		b = &batchScratch{body: make([]byte, 0, 4096)}
	}
	if len(b.counts) != s.ring.Shards() {
		b.counts = make([]int, s.ring.Shards())
	}
	b.body = b.body[:0]
	b.spans = b.spans[:0]
	b.shardOf = b.shardOf[:0]
	b.results = b.results[:0]
	b.calls = b.calls[:0]
	b.out = b.out[:0]
	clear(b.counts)
	return b
}

func (s *ShardRouter) putScratch(b *batchScratch) {
	for i := range b.results {
		b.results[i] = nil
	}
	for _, c := range b.calls {
		c.sub = c.sub[:0]
		c.resp = c.resp[:0]
		c.spans = c.spans[:0]
		c.err = nil
		s.calls.Put(c)
	}
	b.calls = b.calls[:0]
	s.scratch.Put(b)
}

// batch splits a POST /suggest/batch body across shards and merges the
// responses back into request order. Items travel as raw byte spans of the
// request body — the router never decodes them — and shard results are
// scattered into the merged response zero-copy from pooled per-shard
// buffers. The whole fan-out recycles its working state, which is what holds
// BenchmarkShardFanout64's alloc gate; per-item took_us values come from the
// shards and the top-level took_us stays 0 (clients sum per-result values).
//
// With ?stream=1 (or Accept: application/x-ndjson) the merge is skipped:
// each shard's sub-batch is written the moment it completes, one NDJSON
// line per item — {"index":N,"result":{...}} with the item bytes exactly as
// the buffered merge would have carried them — and the connection is
// flushed per sub-batch, so a client sees its first results at the latency
// of the fastest shard, not the slowest. Lines arrive in an arbitrary
// order; index is the item's position in the request. A shard failure after
// the 200 has been committed becomes {"index":N,"error":{...}} lines for
// that shard's items instead of a bad-gateway response.
func (s *ShardRouter) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	var err error
	if sc.body, err = appendReadAll(sc.body, http.MaxBytesReader(w, r.Body, s.maxBodySize)); err != nil {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	arr, err := jsonspan.FindKey(sc.body, 0, "requests")
	if err == nil && arr < 0 {
		err = fmt.Errorf(`missing "requests" array`)
	}
	if err == nil {
		sc.spans, err = jsonspan.AppendArraySpans(sc.spans[:0], sc.body, arr)
	}
	if err != nil {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if len(sc.spans) == 0 {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request", "empty batch: requests must contain at least one context")
		return
	}
	if len(sc.spans) > s.maxBatch {
		writeErrorJSON(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d exceeds limit %d", len(sc.spans), s.maxBatch))
		return
	}

	// Assign each item span its owning shard by context hash.
	for i, sp := range sc.spans {
		h, err := hashJSONContext(sc.body[sp[0]:sp[1]])
		if err != nil {
			writeErrorJSON(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("requests[%d]: %v", i, err))
			return
		}
		shard := s.ring.Lookup(h)
		sc.shardOf = append(sc.shardOf, shard)
		sc.counts[shard]++
	}

	stream := wantsNDJSONStream(r)
	var streamMu sync.Mutex
	var flusher http.Flusher
	if stream {
		flusher, _ = w.(http.Flusher)
		w.Header()["Content-Type"] = ndjsonHeaderValue
		w.WriteHeader(http.StatusOK)
	}

	// Fan the sub-batches out concurrently; each call owns pooled buffers
	// that stay alive until the merge below (or, when streaming, until its
	// lines have been written).
	for len(sc.results) < len(sc.spans) {
		sc.results = append(sc.results, nil)
	}
	sc.results = sc.results[:len(sc.spans)]
	for shard, count := range sc.counts {
		if count == 0 {
			continue
		}
		s.fanouts.Add(1)
		s.perShard[shard].Add(uint64(count))
		call, _ := s.calls.Get().(*shardCall)
		if call == nil {
			call = &shardCall{}
		}
		call.shard = shard
		call.want = count
		call.sub = append(call.sub, `{"requests":[`...)
		first := true
		for i, sp := range sc.spans {
			if sc.shardOf[i] != shard {
				continue
			}
			if !first {
				call.sub = append(call.sub, ',')
			}
			first = false
			call.sub = append(call.sub, sc.body[sp[0]:sp[1]]...)
		}
		call.sub = append(call.sub, `]}`...)
		sc.calls = append(sc.calls, call)
		sc.wg.Add(1)
		go func(call *shardCall) {
			defer sc.wg.Done()
			call.err = s.exchangeSubBatch(call)
			if stream {
				// Write this sub-batch's lines as soon as it lands; the mutex
				// serialises writers, the flush pushes the lines to the client
				// while slower shards are still descending.
				streamMu.Lock()
				s.writeCallLines(w, sc, call)
				if flusher != nil {
					flusher.Flush()
				}
				streamMu.Unlock()
			}
		}(call)
	}
	sc.wg.Wait()
	if stream {
		s.batches.Add(1)
		return
	}

	// Scatter each shard's results back to the items' original positions.
	for _, call := range sc.calls {
		if call.err != nil {
			writeErrorJSON(w, http.StatusBadGateway, "bad_gateway",
				fmt.Sprintf("shard %d: %v", call.shard, call.err))
			return
		}
		j := 0
		for i := range sc.shardOf {
			if sc.shardOf[i] != call.shard {
				continue
			}
			sp := call.spans[j]
			sc.results[i] = call.resp[sp[0]:sp[1]]
			j++
		}
	}
	s.batches.Add(1)

	sc.out = append(sc.out, `{"results":[`...)
	for i, res := range sc.results {
		if i > 0 {
			sc.out = append(sc.out, ',')
		}
		sc.out = append(sc.out, res...)
	}
	sc.out = append(sc.out, `],"took_us":0}`...)
	w.Header()["Content-Type"] = jsonHeaderValue
	w.Write(sc.out)
}

// parseResults splits the shard response's "results" array into element
// spans inside the call's recycled span buffer.
func (c *shardCall) parseResults() error {
	arr, err := jsonspan.FindKey(c.resp, 0, "results")
	if err == nil && arr < 0 {
		err = fmt.Errorf(`missing "results" array`)
	}
	if err == nil {
		c.spans, err = jsonspan.AppendArraySpans(c.spans[:0], c.resp, arr)
	}
	if err != nil {
		return fmt.Errorf("decoding shard response: %w", err)
	}
	if len(c.spans) != c.want {
		return fmt.Errorf("shard answered %d results for %d items", len(c.spans), c.want)
	}
	return nil
}

// exchangeSubBatch posts one shard's sub-batch and parses the result spans
// out of its response, all into the call's recycled buffers.
func (s *ShardRouter) exchangeSubBatch(call *shardCall) error {
	status, resp, err := s.tr.Exchange(call.shard, "/suggest/batch", call.sub, call.resp)
	call.resp = resp
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, bytes.TrimSpace(resp))
	}
	return call.parseResults()
}

// writeCallLines writes one completed sub-batch as NDJSON lines, one per
// item the call carried, each tagged with the item's index in the original
// request. Result bytes are the shard's item spans verbatim — the same
// bytes the buffered merge scatters — so streamed and buffered responses
// agree item for item. Callers hold the stream mutex, so reusing sc.out as
// the line builder is race-free.
func (s *ShardRouter) writeCallLines(w io.Writer, sc *batchScratch, call *shardCall) {
	sc.out = sc.out[:0]
	j := 0
	for i, shard := range sc.shardOf {
		if shard != call.shard {
			continue
		}
		sc.out = append(sc.out, `{"index":`...)
		sc.out = strconv.AppendInt(sc.out, int64(i), 10)
		if call.err != nil {
			// The 200 is already on the wire: per-item error lines are the
			// only way left to report the failed shard.
			sc.out = append(sc.out, `,"error":{"code":"bad_gateway","message":`...)
			sc.out = strconv.AppendQuote(sc.out, fmt.Sprintf("shard %d: %v", call.shard, call.err))
			sc.out = append(sc.out, `}}`...)
		} else {
			sp := call.spans[j]
			j++
			sc.out = append(sc.out, `,"result":`...)
			sc.out = append(sc.out, call.resp[sp[0]:sp[1]]...)
			sc.out = append(sc.out, '}')
		}
		sc.out = append(sc.out, '\n')
	}
	w.Write(sc.out)
}

// wantsNDJSONStream reports whether a batch request opted into the
// streaming NDJSON response: ?stream=1 in the query string or an Accept
// header naming application/x-ndjson. The query string is scanned in place
// (url.Query would allocate on the hot path for every buffered request
// too).
func wantsNDJSONStream(r *http.Request) bool {
	raw := r.URL.RawQuery
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "stream=1" {
			return true
		}
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// jsonHeaderValue is the shared Content-Type slice for allocation-free
// header assignment.
var jsonHeaderValue = []string{"application/json"}

// ndjsonHeaderValue is its application/x-ndjson counterpart for streamed
// batch responses.
var ndjsonHeaderValue = []string{"application/x-ndjson"}

// redirectV1 301s a legacy unversioned admin path to its /v1/ home.
func redirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusMovedPermanently)
}

// writeErrorJSON answers a non-2xx with the consistent error envelope
// {"error":{"code","message"}} every handler in the repository uses.
func writeErrorJSON(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var buf [256]byte
	b := append(buf[:0], `{"error":{"code":`...)
	b = strconv.AppendQuote(b, code)
	b = append(b, `,"message":`...)
	b = strconv.AppendQuote(b, msg)
	b = append(b, `}}`...)
	b = append(b, '\n')
	w.Write(b)
}

// ShardRouterHealth is the shard router's /healthz payload.
type ShardRouterHealth struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Shards int    `json:"shards"`
}

func (s *ShardRouter) health(w http.ResponseWriter) {
	writeJSON(w, ShardRouterHealth{Status: "ok", Role: "router", Shards: s.ring.Shards()})
}

// ShardRouterMetrics is the shard router's /metrics payload: routed request
// counters and the per-shard distribution (contexts routed to each replica —
// near-even by construction of the ring).
type ShardRouterMetrics struct {
	Role             string   `json:"role"`
	Shards           int      `json:"shards"`
	Requests         uint64   `json:"requests"`
	BatchRequests    uint64   `json:"batch_requests"`
	BatchFanouts     uint64   `json:"batch_fanouts"`
	ContextsPerShard []uint64 `json:"contexts_per_shard"`
}

func (s *ShardRouter) metrics(w http.ResponseWriter) {
	m := ShardRouterMetrics{
		Role:          "router",
		Shards:        s.ring.Shards(),
		Requests:      s.requests.Load(),
		BatchRequests: s.batches.Load(),
		BatchFanouts:  s.fanouts.Load(),
	}
	for i := range s.perShard {
		m.ContextsPerShard = append(m.ContextsPerShard, s.perShard[i].Load())
	}
	writeJSON(w, m)
}

// RouteResponse is the /route admin payload: where a context would go,
// without serving it.
type RouteResponse struct {
	Hash  string `json:"context_hash"`
	Shard int    `json:"shard"`
}

// route reports the shard assignment for the context in the query string —
// the debugging endpoint for "which replica owns this context?".
func (s *ShardRouter) route(w http.ResponseWriter, r *http.Request) {
	h := hashRawQueryContext(r.URL.RawQuery)
	writeJSON(w, RouteResponse{Hash: fmt.Sprintf("%016x", h), Shard: s.ring.Lookup(h)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// hashRawQueryContext hashes the q values of a raw query string: each value
// is percent-decoded ('+' is space) streaming into the hash — no buffer —
// and terminated with a 0xFF separator so value boundaries cannot alias.
// Undecodable escapes hash the raw bytes instead (still deterministic).
// The result matches hashStringContext of the decoded values, so GET and
// batch traffic for the same context agree on the owning shard.
func hashRawQueryContext(raw string) uint64 {
	h := uint64(fnvOffset64)
	mix := func(c byte) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		key, val := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			key, val = seg[:i], seg[i+1:]
		}
		if key != "q" {
			continue
		}
		for i := 0; i < len(val); i++ {
			switch c := val[i]; c {
			case '+':
				mix(' ')
			case '%':
				if i+2 < len(val) {
					hi, okHi := unhexDigit(val[i+1])
					lo, okLo := unhexDigit(val[i+2])
					if okHi && okLo {
						mix(hi<<4 | lo)
						i += 2
						continue
					}
				}
				mix(c)
			default:
				mix(c)
			}
		}
		mix(0xFF)
	}
	return h
}

// hashStringContext hashes a decoded context — the GET path's
// hashRawQueryContext counterpart for contexts already held as strings.
func hashStringContext(context []string) uint64 {
	h := uint64(fnvOffset64)
	for _, q := range context {
		for i := 0; i < len(q); i++ {
			h ^= uint64(q[i])
			h *= fnvPrime64
		}
		h ^= 0xFF
		h *= fnvPrime64
	}
	return h
}

func unhexDigit(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
