package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
)

// Transport carries a routed request to a shard replica. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Forward serves r from the given shard, writing the shard's response
	// (status, content type, body) to w — the single-request path, kept
	// streaming so the loopback case stays allocation-free.
	Forward(shard int, w http.ResponseWriter, r *http.Request)
	// Exchange posts a JSON body to path on the given shard and returns the
	// response — the batch fan-out path.
	Exchange(shard int, path string, body []byte) (status int, resp []byte, err error)
	// Shards returns the number of replicas the transport can reach.
	Shards() int
}

// LoopbackTransport routes to in-process shard handlers — N serving handlers
// (typically sharing one mmapped model) behind one router in a single
// process. It is the zero-infrastructure deployment of the ring: the routing
// behaviour, stickiness and cache partitioning are identical to the HTTP
// transport, so a single process can validate a sharding plan before it is
// distributed.
type LoopbackTransport struct {
	handlers []http.Handler
}

// NewLoopbackTransport builds a loopback transport over in-process handlers,
// one per shard.
func NewLoopbackTransport(handlers ...http.Handler) *LoopbackTransport {
	return &LoopbackTransport{handlers: handlers}
}

// Shards implements Transport.
func (t *LoopbackTransport) Shards() int { return len(t.handlers) }

// Forward implements Transport by calling the shard handler directly.
func (t *LoopbackTransport) Forward(shard int, w http.ResponseWriter, r *http.Request) {
	t.handlers[shard].ServeHTTP(w, r)
}

// Exchange implements Transport by synthesising an in-process POST.
func (t *LoopbackTransport) Exchange(shard int, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	rec := &bufferedResponse{header: make(http.Header, 4)}
	t.handlers[shard].ServeHTTP(rec, req)
	return rec.status(), rec.body.Bytes(), nil
}

// bufferedResponse is a minimal in-memory http.ResponseWriter for loopback
// exchanges.
type bufferedResponse struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func (r *bufferedResponse) Header() http.Header { return r.header }

func (r *bufferedResponse) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *bufferedResponse) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

func (r *bufferedResponse) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// HTTPTransport routes to shard replicas over HTTP — the distributed
// deployment, where each shard is a `cmd/serve -role shard` process.
type HTTPTransport struct {
	bases  []*url.URL
	client *http.Client
}

// NewHTTPTransport builds an HTTP transport over shard base URLs (e.g.
// "http://shard-0:8080"). client nil selects http.DefaultClient; production
// routers should pass one with sane timeouts and a sized connection pool.
func NewHTTPTransport(bases []string, client *http.Client) (*HTTPTransport, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("fleet: no shard URLs")
	}
	if client == nil {
		client = http.DefaultClient
	}
	t := &HTTPTransport{client: client}
	for _, b := range bases {
		u, err := url.Parse(strings.TrimSuffix(b, "/"))
		if err != nil {
			return nil, fmt.Errorf("fleet: shard URL %q: %w", b, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: shard URL %q needs a scheme and host", b)
		}
		t.bases = append(t.bases, u)
	}
	return t, nil
}

// Shards implements Transport.
func (t *HTTPTransport) Shards() int { return len(t.bases) }

// Forward implements Transport by proxying the request to the shard and
// relaying status, content type and body. Transport failures answer 502.
func (t *HTTPTransport) Forward(shard int, w http.ResponseWriter, r *http.Request) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		t.bases[shard].String()+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := t.client.Do(out)
	if err != nil {
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// Exchange implements Transport with a plain POST to the shard.
func (t *HTTPTransport) Exchange(shard int, path string, body []byte) (int, []byte, error) {
	resp, err := t.client.Post(t.bases[shard].String()+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// ShardRouter fans suggestion traffic out to N replicas of the same model by
// consistent hash of the request context: GET /suggest forwards whole to one
// shard, POST /suggest/batch splits the batch by shard, forwards the
// sub-batches concurrently and reassembles the results in request order.
// Every replica serves the identical model, so routing choices never change
// answers — they partition the context keyspace so each replica's result
// cache and faulted-in trie pages cover only its arc.
type ShardRouter struct {
	ring *Ring
	tr   Transport

	// shardHeader[i] is the pre-built X-Serve-Shard value for shard i.
	shardHeader [][]string

	requests    atomic.Uint64
	batches     atomic.Uint64
	fanouts     atomic.Uint64 // shard sub-requests issued by batch fan-out
	perShard    []atomic.Uint64
	maxBatch    int
	maxBodySize int64
}

// NewShardRouter builds the router over a ring and a transport of matching
// size.
func NewShardRouter(ring *Ring, tr Transport) (*ShardRouter, error) {
	if ring.Shards() != tr.Shards() {
		return nil, fmt.Errorf("fleet: ring has %d shards but transport %d", ring.Shards(), tr.Shards())
	}
	s := &ShardRouter{
		ring:        ring,
		tr:          tr,
		shardHeader: make([][]string, ring.Shards()),
		perShard:    make([]atomic.Uint64, ring.Shards()),
		// Matches the shard handlers' default MaxBatch: the router must never
		// advertise a batch size a sub-batch could exceed (in the worst case
		// every item hashes to one shard), or valid requests turn into 502s.
		maxBatch:    256,
		maxBodySize: 1 << 22,
	}
	for i := range s.shardHeader {
		s.shardHeader[i] = []string{strconv.Itoa(i)}
	}
	return s, nil
}

// Ring returns the router's consistent-hash ring.
func (s *ShardRouter) Ring() *Ring { return s.ring }

// ServeHTTP implements http.Handler: suggestion traffic is routed by context
// hash; /healthz, /metrics and /route answer from the router itself.
func (s *ShardRouter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/suggest":
		s.suggest(w, r)
	case "/suggest/batch":
		s.batch(w, r)
	case "/healthz":
		s.health(w)
	case "/metrics":
		s.metrics(w)
	case "/route":
		s.route(w, r)
	case "/reload":
		s.reload(w, r)
	default:
		http.NotFound(w, r)
	}
}

// ShardReloadResult is one shard's slice of the router's /reload broadcast.
type ShardReloadResult struct {
	Shard    int             `json:"shard"`
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// ShardReloadResponse is the router's POST /reload payload: the broadcast's
// per-shard outcomes.
type ShardReloadResponse struct {
	Shards []ShardReloadResult `json:"shards"`
}

// reload broadcasts POST /reload (query string included, so model= and
// force= pass through) to every shard and reports each outcome. The overall
// status is 200 only when every shard answered 200; otherwise the worst
// shard status (502 for transport failures) so automation notices partial
// rollouts.
func (s *ShardRouter) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	path := "/reload"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	resp := ShardReloadResponse{Shards: make([]ShardReloadResult, s.ring.Shards())}
	overall := http.StatusOK
	for shard := range resp.Shards {
		res := ShardReloadResult{Shard: shard}
		status, body, err := s.tr.Exchange(shard, path, nil)
		if err != nil {
			res.Status = http.StatusBadGateway
			res.Error = err.Error()
		} else {
			res.Status = status
			if json.Valid(body) {
				res.Response = json.RawMessage(body)
			} else {
				res.Error = string(bytes.TrimSpace(body))
			}
		}
		if res.Status > overall {
			overall = res.Status
		}
		resp.Shards[shard] = res
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(overall)
	_ = json.NewEncoder(w).Encode(resp)
}

// suggest forwards the whole GET to the owning shard. The shard key is the
// FNV-1a hash of the percent-decoded q values (decoded streaming, no
// buffer), so it agrees with the batch path's hash of the same context
// strings.
func (s *ShardRouter) suggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	shard := s.ring.Lookup(hashRawQueryContext(r.URL.RawQuery))
	s.requests.Add(1)
	s.perShard[shard].Add(1)
	w.Header()["X-Serve-Shard"] = s.shardHeader[shard]
	s.tr.Forward(shard, w, r)
}

// shardBatchItem is the slice of a batch item the router needs for hashing;
// unknown fields pass through untouched in the raw message.
type shardBatchItem struct {
	Context []string `json:"context"`
}

// batch splits a POST /suggest/batch body across shards and merges the
// responses back into request order. Items are kept as raw JSON so the
// router never re-encodes them; per-item took_us values come from the shards
// and the top-level took_us is the router's wall time for the whole fan-out.
func (s *ShardRouter) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBodySize))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req struct {
		Requests []json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Requests) == 0 {
		http.Error(w, "empty batch: requests must contain at least one context", http.StatusBadRequest)
		return
	}
	if len(req.Requests) > s.maxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), s.maxBatch), http.StatusBadRequest)
		return
	}

	// Partition items by owning shard, remembering original positions.
	perShardItems := make([][]json.RawMessage, s.ring.Shards())
	perShardIdx := make([][]int, s.ring.Shards())
	for i, item := range req.Requests {
		var it shardBatchItem
		if err := json.Unmarshal(item, &it); err != nil {
			http.Error(w, fmt.Sprintf("requests[%d]: %v", i, err), http.StatusBadRequest)
			return
		}
		shard := s.ring.Lookup(hashStringContext(it.Context))
		perShardItems[shard] = append(perShardItems[shard], item)
		perShardIdx[shard] = append(perShardIdx[shard], i)
	}

	// Fan the sub-batches out concurrently and merge by original index.
	type shardReply struct {
		shard int
		err   error
	}
	results := make([]json.RawMessage, len(req.Requests))
	replies := make(chan shardReply)
	active := 0
	for shard, items := range perShardItems {
		if len(items) == 0 {
			continue
		}
		active++
		s.fanouts.Add(1)
		s.perShard[shard].Add(uint64(len(items)))
		go func(shard int, items []json.RawMessage, idx []int) {
			err := s.forwardSubBatch(shard, items, idx, results)
			replies <- shardReply{shard: shard, err: err}
		}(shard, items, perShardIdx[shard])
	}
	var firstErr error
	for ; active > 0; active-- {
		if rep := <-replies; rep.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", rep.shard, rep.err)
		}
	}
	if firstErr != nil {
		http.Error(w, "bad gateway: "+firstErr.Error(), http.StatusBadGateway)
		return
	}
	s.batches.Add(1)

	var body bytes.Buffer
	body.Grow(len(raw))
	body.WriteString(`{"results":[`)
	for i, res := range results {
		if i > 0 {
			body.WriteByte(',')
		}
		body.Write(res)
	}
	body.WriteString(`],"took_us":`)
	// The shards already timed themselves; the router reports 0 extra rather
	// than double-counting (clients sum per-result took_us).
	body.WriteString("0")
	body.WriteByte('}')
	w.Header().Set("Content-Type", "application/json")
	w.Write(body.Bytes())
}

// forwardSubBatch sends one shard its items and scatters the returned
// results into the merged slice. Distinct goroutines write disjoint indices,
// so no lock is needed.
func (s *ShardRouter) forwardSubBatch(shard int, items []json.RawMessage, idx []int, results []json.RawMessage) error {
	var sub bytes.Buffer
	sub.WriteString(`{"requests":[`)
	for i, item := range items {
		if i > 0 {
			sub.WriteByte(',')
		}
		sub.Write(item)
	}
	sub.WriteString(`]}`)
	status, resp, err := s.tr.Exchange(shard, "/suggest/batch", sub.Bytes())
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("status %d: %s", status, bytes.TrimSpace(resp))
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(resp, &out); err != nil {
		return fmt.Errorf("decoding shard response: %w", err)
	}
	if len(out.Results) != len(idx) {
		return fmt.Errorf("shard answered %d results for %d items", len(out.Results), len(idx))
	}
	for i, res := range out.Results {
		results[idx[i]] = res
	}
	return nil
}

// ShardRouterHealth is the shard router's /healthz payload.
type ShardRouterHealth struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Shards int    `json:"shards"`
}

func (s *ShardRouter) health(w http.ResponseWriter) {
	writeJSON(w, ShardRouterHealth{Status: "ok", Role: "router", Shards: s.ring.Shards()})
}

// ShardRouterMetrics is the shard router's /metrics payload: routed request
// counters and the per-shard distribution (contexts routed to each replica —
// near-even by construction of the ring).
type ShardRouterMetrics struct {
	Role             string   `json:"role"`
	Shards           int      `json:"shards"`
	Requests         uint64   `json:"requests"`
	BatchRequests    uint64   `json:"batch_requests"`
	BatchFanouts     uint64   `json:"batch_fanouts"`
	ContextsPerShard []uint64 `json:"contexts_per_shard"`
}

func (s *ShardRouter) metrics(w http.ResponseWriter) {
	m := ShardRouterMetrics{
		Role:          "router",
		Shards:        s.ring.Shards(),
		Requests:      s.requests.Load(),
		BatchRequests: s.batches.Load(),
		BatchFanouts:  s.fanouts.Load(),
	}
	for i := range s.perShard {
		m.ContextsPerShard = append(m.ContextsPerShard, s.perShard[i].Load())
	}
	writeJSON(w, m)
}

// RouteResponse is the /route admin payload: where a context would go,
// without serving it.
type RouteResponse struct {
	Hash  string `json:"context_hash"`
	Shard int    `json:"shard"`
}

// route reports the shard assignment for the context in the query string —
// the debugging endpoint for "which replica owns this context?".
func (s *ShardRouter) route(w http.ResponseWriter, r *http.Request) {
	h := hashRawQueryContext(r.URL.RawQuery)
	writeJSON(w, RouteResponse{Hash: fmt.Sprintf("%016x", h), Shard: s.ring.Lookup(h)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// hashRawQueryContext hashes the q values of a raw query string: each value
// is percent-decoded ('+' is space) streaming into the hash — no buffer —
// and terminated with a 0xFF separator so value boundaries cannot alias.
// Undecodable escapes hash the raw bytes instead (still deterministic).
// The result matches hashStringContext of the decoded values, so GET and
// batch traffic for the same context agree on the owning shard.
func hashRawQueryContext(raw string) uint64 {
	h := uint64(fnvOffset64)
	mix := func(c byte) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		key, val := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			key, val = seg[:i], seg[i+1:]
		}
		if key != "q" {
			continue
		}
		for i := 0; i < len(val); i++ {
			switch c := val[i]; c {
			case '+':
				mix(' ')
			case '%':
				if i+2 < len(val) {
					hi, okHi := unhexDigit(val[i+1])
					lo, okLo := unhexDigit(val[i+2])
					if okHi && okLo {
						mix(hi<<4 | lo)
						i += 2
						continue
					}
				}
				mix(c)
			default:
				mix(c)
			}
		}
		mix(0xFF)
	}
	return h
}

// hashStringContext hashes a decoded context — the batch path's counterpart
// of hashRawQueryContext.
func hashStringContext(context []string) uint64 {
	h := uint64(fnvOffset64)
	for _, q := range context {
		for i := 0; i < len(q); i++ {
			h ^= uint64(q[i])
			h *= fnvPrime64
		}
		h ^= 0xFF
		h *= fnvPrime64
	}
	return h
}

func unhexDigit(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
