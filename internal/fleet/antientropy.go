package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Bayou-style anti-entropy for fleet admin state. Router replicas each hold
// an AdminState: a versioned key/value map of what the fleet looks like
// (per-shard model lists, arm weights, dict generations). A router learns
// its shards' state first-hand on reload and on periodic sweeps, and pulls
// peers' entries over GET /v1/fleet, merging with a last-writer-wins rule
// whose tie-break is deterministic — so any two routers that have exchanged
// entries converge to the same map regardless of message order, and any
// router answers admin reads correctly after a peer performed the reload.

// AdminEntry is one versioned fact in the reconciled admin state. Version is
// monotone per key at the writer (the sum of model generations for shard
// model-list entries); Value is the canonical JSON encoding of the fact.
type AdminEntry struct {
	Key     string          `json:"key"`
	Version uint64          `json:"version"`
	Value   json.RawMessage `json:"value"`
}

// AdminStateStats counts an AdminState's reconciliation activity for
// /v1/metrics.
type AdminStateStats struct {
	Entries   int    `json:"entries"`
	Sweeps    uint64 `json:"sweeps"`
	Merges    uint64 `json:"merges"`    // entries accepted from shards or peers
	Conflicts uint64 `json:"conflicts"` // equal-version, different-value merges
}

// AdminState is one router replica's reconciled view of fleet admin facts.
// Safe for concurrent use.
type AdminState struct {
	mu        sync.Mutex
	entries   map[string]AdminEntry
	sweeps    uint64
	merges    uint64
	conflicts uint64
}

// NewAdminState returns an empty admin state.
func NewAdminState() *AdminState {
	return &AdminState{entries: make(map[string]AdminEntry)}
}

// Put records a first-hand observation: the entry is applied iff it is newer
// than (or tie-break-wins against) what the state already holds. Returns
// whether the entry was applied.
func (a *AdminState) Put(e AdminEntry) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applyLocked(e)
}

// Merge folds a peer's entries in: per key, the higher version wins; equal
// versions with different values resolve deterministically (the
// lexicographically larger value wins, counted as a conflict) so replicas
// converge regardless of exchange order. Returns how many entries were
// applied.
func (a *AdminState) Merge(entries []AdminEntry) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range entries {
		if a.applyLocked(e) {
			n++
		}
	}
	return n
}

func (a *AdminState) applyLocked(e AdminEntry) bool {
	cur, ok := a.entries[e.Key]
	if ok {
		if e.Version < cur.Version {
			return false
		}
		if e.Version == cur.Version {
			c := bytes.Compare(e.Value, cur.Value)
			if c == 0 {
				return false
			}
			a.conflicts++
			if c < 0 {
				return false
			}
		}
	}
	a.entries[e.Key] = AdminEntry{Key: e.Key, Version: e.Version, Value: bytes.Clone(e.Value)}
	a.merges++
	return true
}

// Snapshot returns the entries sorted by key — the /v1/fleet payload and the
// unit peers pull during sweeps.
func (a *AdminState) Snapshot() []AdminEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AdminEntry, 0, len(a.entries))
	for _, e := range a.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats reports the state's reconciliation counters.
func (a *AdminState) Stats() AdminStateStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdminStateStats{
		Entries:   len(a.entries),
		Sweeps:    a.sweeps,
		Merges:    a.merges,
		Conflicts: a.conflicts,
	}
}

func (a *AdminState) countSweep() {
	a.mu.Lock()
	a.sweeps++
	a.mu.Unlock()
}

// adminModelRow is the canonical (order- and field-stable) projection of one
// shard model used in admin entries: just the facts anti-entropy reconciles —
// identity, generation, dict hash, routing weight, family.
type adminModelRow struct {
	Name       string `json:"name"`
	Family     string `json:"family,omitempty"`
	Weight     uint32 `json:"weight"`
	Generation uint64 `json:"generation"`
	DictHash   string `json:"dict_hash"`
}

// shardModelsDoc decodes the slice of a shard's GET /v1/models payload that
// anti-entropy projects into admin entries.
type shardModelsDoc struct {
	Models []adminModelRow `json:"models"`
}

// FleetStateResponse is the router's GET /v1/fleet payload: the reconciled
// admin entries plus the reconciliation counters. Peers pull it during
// anti-entropy sweeps.
type FleetStateResponse struct {
	Role    string          `json:"role"`
	Entries []AdminEntry    `json:"entries"`
	Stats   AdminStateStats `json:"stats"`
}

// fleetState serves GET /v1/fleet.
func (s *ShardRouter) fleetState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorJSON(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	writeJSON(w, FleetStateResponse{
		Role:    "router",
		Entries: s.admin.Snapshot(),
		Stats:   s.admin.Stats(),
	})
}

// SetPeers configures the other router replicas this router pulls admin
// state from during anti-entropy sweeps: base URLs (e.g.
// "http://router-1:8080") and the client to reach them with (nil selects the
// same defaulted client NewHTTPTransport builds).
func (s *ShardRouter) SetPeers(peers []string, client *http.Client) {
	if client == nil {
		client = defaultHTTPClient()
	}
	s.peerMu.Lock()
	s.peers = append([]string(nil), peers...)
	s.peerClient = client
	s.peerMu.Unlock()
}

// RefreshAdmin re-reads every shard's model list first-hand and folds it
// into the reconciled admin state. Entry versions are the sum of the shard's
// model generations — monotone across reloads (generations only advance and
// slots are never removed), so a stale router can never overwrite a newer
// observation. Shards that fail to answer are skipped (their last entry
// stands). Returns the number of entries applied.
func (s *ShardRouter) RefreshAdmin(ctx context.Context) int {
	applied := 0
	for shard := 0; shard < s.ring.Shards(); shard++ {
		status, body, err := s.tr.Exchange(ctx, shard, http.MethodGet, "/v1/models", nil, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var doc shardModelsDoc
		if json.Unmarshal(body, &doc) != nil {
			continue
		}
		sort.Slice(doc.Models, func(i, j int) bool { return doc.Models[i].Name < doc.Models[j].Name })
		version := uint64(0)
		for _, m := range doc.Models {
			version += m.Generation
		}
		value, err := json.Marshal(doc.Models)
		if err != nil {
			continue
		}
		if s.admin.Put(AdminEntry{
			Key:     fmt.Sprintf("shard/%d/models", shard),
			Version: version,
			Value:   value,
		}) {
			applied++
		}
	}
	return applied
}

// SweepOnce runs one anti-entropy round: refresh first-hand shard state,
// then pull each configured peer's /v1/fleet and merge. Peer failures are
// tolerated — a sweep is best-effort and the next one retries. Returns the
// number of entries applied.
func (s *ShardRouter) SweepOnce(ctx context.Context) int {
	applied := s.RefreshAdmin(ctx)
	s.peerMu.Lock()
	peers := s.peers
	client := s.peerClient
	s.peerMu.Unlock()
	for _, peer := range peers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/fleet", nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		var doc FleetStateResponse
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		applied += s.admin.Merge(doc.Entries)
	}
	s.admin.countSweep()
	return applied
}

// StartAntiEntropy launches the periodic sweep loop and returns its stop
// function. interval <= 0 selects 5s.
func (s *ShardRouter) StartAntiEntropy(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		s.SweepOnce(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.SweepOnce(ctx)
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
