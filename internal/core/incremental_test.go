package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/query"
)

func incCfg() Config {
	cfg := DefaultConfig()
	cfg.ReductionThreshold = 0 // small streams: keep everything with count > 0
	return cfg
}

var incSessions = [][]string{
	{"free mp3", "free music", "napster"},
	{"free mp3", "free music", "napster"},
	{"maps", "driving directions"},
	{"free mp3", "free music"},
	{"weather", "weather radar", "storm"},
	{"maps", "driving directions"},
}

func TestIncrementalMatchesBatchTraining(t *testing.T) {
	inc := NewIncremental(nil, incCfg())
	for _, s := range incSessions {
		inc.AddStrings([][]string{s})
	}

	// Batch reference: same sessions interned in the same order.
	dict := query.NewDict()
	var seqs []query.Seq
	for _, s := range incSessions {
		seq := make(query.Seq, len(s))
		for i, q := range s {
			seq[i] = dict.Intern(q)
		}
		seqs = append(seqs, seq)
	}
	want := TrainFromSessions(dict, seqs, incCfg())

	got := inc.Snapshot()
	if got.Dict().Hash() != want.Dict().Hash() {
		t.Fatalf("dict hash mismatch: %x vs %x", got.Dict().Hash(), want.Dict().Hash())
	}
	ctx := query.Seq{mustLookup(t, got.Dict(), "free mp3")}
	gs := got.AppendSuggestions(nil, ctx, 5)
	ws := want.AppendSuggestions(nil, ctx, 5)
	if len(gs) == 0 || len(gs) != len(ws) {
		t.Fatalf("suggestion count mismatch: %d vs %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("suggestion %d mismatch: %+v vs %+v", i, gs[i], ws[i])
		}
	}
}

func mustLookup(t *testing.T, d *query.Dict, q string) query.ID {
	t.Helper()
	id, ok := d.Lookup(q)
	if !ok {
		t.Fatalf("query %q not in dict", q)
	}
	return id
}

func TestIncrementalSnapshotExtendsBase(t *testing.T) {
	base := []string{"free mp3", "free music", "napster"}
	baseDict := query.NewDict()
	for _, q := range base {
		baseDict.Intern(q)
	}

	inc := NewIncremental(base, incCfg())
	inc.AddStrings(incSessions)
	if got := inc.Sessions(); got != uint64(len(incSessions)) {
		t.Fatalf("Sessions = %d, want %d", got, len(incSessions))
	}

	first := inc.Snapshot()
	if !first.Dict().Extends(baseDict) {
		t.Fatal("first snapshot dict does not extend the base vocabulary")
	}
	inc.AddStrings([][]string{{"brand new topic", "another new one"}})
	second := inc.Snapshot()
	if !second.Dict().Extends(first.Dict()) {
		t.Fatal("second snapshot dict does not extend the first")
	}
	if second.Dict().Len() != first.Dict().Len()+2 {
		t.Fatalf("second snapshot vocab = %d, want %d", second.Dict().Len(), first.Dict().Len()+2)
	}
}

func TestIncrementalSnapshotToRoundTrips(t *testing.T) {
	inc := NewIncremental(nil, incCfg())
	inc.AddStrings(incSessions)
	path := filepath.Join(t.TempDir(), "inc.bin")
	eng, err := inc.SnapshotTo(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dict().Hash() != eng.Dict().Hash() {
		t.Fatal("loaded snapshot dict differs from trained engine")
	}
	ctx := query.Seq{mustLookup(t, loaded.Dict(), "maps")}
	got := loaded.AppendSuggestions(nil, ctx, 3)
	if len(got) == 0 || got[0].Query != "driving directions" {
		t.Fatalf("loaded snapshot suggestions = %+v", got)
	}
}

func TestIncrementalDumpCountsDeterministic(t *testing.T) {
	a := NewIncremental(nil, incCfg())
	b := NewIncremental(nil, incCfg())
	for _, s := range incSessions {
		a.AddStrings([][]string{s})
	}
	// Same multiset added in a different batching must dump identically.
	b.AddStrings(incSessions)

	var da, db bytes.Buffer
	if err := a.DumpCounts(&da); err != nil {
		t.Fatal(err)
	}
	if err := b.DumpCounts(&db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.Bytes(), db.Bytes()) {
		t.Fatalf("dumps differ:\n%s\nvs\n%s", da.String(), db.String())
	}
	if da.Len() == 0 {
		t.Fatal("empty dump")
	}
}
