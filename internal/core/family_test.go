package core

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/compiled"
	"repro/internal/hmm"
	"repro/internal/logfmt"
	"repro/internal/pairwise"
	"repro/internal/query"
)

// familyTestData builds a tiny corpus shared by the container round-trips.
func familyTestData(t *testing.T) (*query.Dict, []query.Session) {
	t.Helper()
	d := query.NewDict()
	seq := func(queries ...string) query.Seq {
		s := make(query.Seq, len(queries))
		for i, q := range queries {
			s[i] = d.Intern(q)
		}
		return s
	}
	return d, []query.Session{
		{Queries: seq("nokia n73", "nokia n73 themes"), Count: 30},
		{Queries: seq("kidney stones", "kidney stone symptoms"), Count: 20},
	}
}

// TestFamilyContainerRoundTrip: every family survives SaveFamily →
// LoadAnyPath with identical predictions, a LoadInfo naming its family, and
// a dictionary hash equal to the training one.
func TestFamilyContainerRoundTrip(t *testing.T) {
	d, sessions := familyTestData(t)
	m, err := hmm.Train(sessions, hmm.DefaultConfig(d.Len()))
	if err != nil {
		t.Fatal(err)
	}
	g := cluster.NewClickGraph(d)
	for i := 0; i < 4; i++ {
		g.Add(logfmt.Record{Query: "nokia n73", Clicks: []logfmt.Click{{URL: "u1"}}})
		g.Add(logfmt.Record{Query: "nokia n73 themes", Clicks: []logfmt.Click{{URL: "u1"}}})
	}
	families := []struct {
		family string
		p      compiled.Predictor
	}{
		{compiled.FamilyHMM, m},
		{compiled.FamilyCluster, cluster.Build(g, cluster.DefaultConfig())},
		{compiled.FamilyAdjacency, pairwise.NewAdjacency(sessions, d.Len())},
		{compiled.FamilyCooccurrence, pairwise.NewCooccurrence(sessions, d.Len())},
	}
	for _, tc := range families {
		t.Run(tc.family, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "model.bin")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := SaveFamily(f, tc.family, d, tc.p.(io.WriterTo)); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			loaded, err := LoadAnyPath(path, LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer loaded.Close()
			if got := loaded.LoadInfo().Format; got != tc.family {
				t.Fatalf("LoadInfo.Format = %q, want %q", got, tc.family)
			}
			if loaded.Dict().Hash() != d.Hash() {
				t.Fatal("dictionary did not round-trip")
			}
			p := loaded.Predictor()
			if p == nil {
				t.Fatal("loaded family arm has no Predictor")
			}
			if p.Shape().Family != tc.family {
				t.Fatalf("Shape().Family = %q, want %q", p.Shape().Family, tc.family)
			}
			ctx := query.Seq{0} // "nokia n73"
			want := tc.p.PredictInto(nil, ctx, 5)
			got := p.PredictInto(nil, ctx, 5)
			if len(want) != len(got) {
				t.Fatalf("round-trip changed answer length: %d vs %d", len(got), len(want))
			}
			for i := range want {
				if want[i].Query != got[i].Query {
					t.Fatalf("round-trip changed rank %d: %+v vs %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSaveFamilyRejectsUnknown: the container refuses families LoadFamily
// could not dispatch.
func TestSaveFamilyRejectsUnknown(t *testing.T) {
	d, sessions := familyTestData(t)
	var buf bytes.Buffer
	if err := SaveFamily(&buf, "mvmm", d, pairwise.NewAdjacency(sessions, d.Len())); err == nil {
		t.Fatal("SaveFamily accepted the mvmm family (QRECV owns it)")
	}
	if err := SaveFamily(&buf, "markov-chain", d, pairwise.NewAdjacency(sessions, d.Len())); err == nil {
		t.Fatal("SaveFamily accepted an unknown family")
	}
}
