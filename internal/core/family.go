package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiled"
	"repro/internal/hmm"
	"repro/internal/pairwise"
	"repro/internal/query"
)

// saveMagicFamily tags the QRECF001 model-family container: a non-MVMM
// paper model (HMM, cluster, pairwise adjacency/co-occurrence) packaged with
// the dictionary it was trained against, loadable as a fleet arm. Layout:
// magic, then the same 8-byte length-prefixed sections as the QRECV
// containers — family identifier, dictionary, family payload.
const saveMagicFamily = "QRECF001"

// SaveFamily writes a QRECF001 container: family is one of the
// compiled.Family* identifiers, dict the training dictionary, payload the
// family model's serializer (its WriteTo). LoadFamily dispatches the payload
// decoder on the family string.
func SaveFamily(w io.Writer, family string, dict *query.Dict, payload io.WriterTo) error {
	switch family {
	case compiled.FamilyHMM, compiled.FamilyCluster, compiled.FamilyAdjacency, compiled.FamilyCooccurrence:
	default:
		return fmt.Errorf("core: unknown model family %q", family)
	}
	if _, err := io.WriteString(w, saveMagicFamily); err != nil {
		return err
	}
	if err := writeSection(w, "family", stringSection(family)); err != nil {
		return err
	}
	if err := writeSection(w, "dictionary", dict); err != nil {
		return err
	}
	return writeSection(w, "family payload", payload)
}

// stringSection adapts a string to the io.WriterTo writeSection expects.
type stringSection string

func (s stringSection) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, string(s))
	return int64(n), err
}

// LoadFamily restores a Recommender from a QRECF001 stream: the family
// payload is decoded by its package and lifted into the serving seam with
// FromPredictor. The returned arm reports the family identifier as its
// LoadInfo.Format.
func LoadFamily(rd io.Reader) (Recommender, error) {
	start := time.Now()
	magic := make([]byte, len(saveMagicFamily))
	if _, err := io.ReadFull(rd, magic); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	if string(magic) != saveMagicFamily {
		return nil, fmt.Errorf("core: unrecognised family file header %q", magic)
	}
	section := func(name string) (io.Reader, uint64, error) {
		var hdr [8]byte
		if _, err := io.ReadFull(rd, hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("core: reading %s header: %w", name, err)
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n > 1<<40 {
			return nil, 0, fmt.Errorf("core: implausible %s section of %d bytes", name, n)
		}
		return io.LimitReader(rd, int64(n)), n, nil
	}
	fs, n, err := section("family")
	if err != nil {
		return nil, err
	}
	var fbuf bytes.Buffer
	if _, err := io.CopyN(&fbuf, fs, int64(n)); err != nil {
		return nil, fmt.Errorf("core: reading family identifier: %w", err)
	}
	family := fbuf.String()
	ds, _, err := section("dictionary")
	if err != nil {
		return nil, err
	}
	dict, err := query.ReadDict(ds)
	if err != nil {
		return nil, fmt.Errorf("core: loading dictionary: %w", err)
	}
	ps, _, err := section("family payload")
	if err != nil {
		return nil, err
	}
	var p compiled.Predictor
	switch family {
	case compiled.FamilyHMM:
		p, err = hmm.Read(ps)
	case compiled.FamilyCluster:
		p, err = cluster.Read(ps)
	case compiled.FamilyAdjacency:
		p, err = pairwise.ReadAdjacency(ps)
	case compiled.FamilyCooccurrence:
		p, err = pairwise.ReadCooccurrence(ps)
	default:
		return nil, fmt.Errorf("core: unknown model family %q", family)
	}
	if err != nil {
		return nil, fmt.Errorf("core: loading %s model: %w", family, err)
	}
	info := LoadInfo{
		Mode:     LoadModeHeap,
		Version:  saveMagicFamily,
		Format:   family,
		Duration: time.Since(start),
	}
	return FromPredictor(dict, p, info), nil
}

// LoadAnyPath restores a serving model of any container format from disk:
// QRECF001 family containers through LoadFamily, QRECV001–004 MVMM
// containers through LoadPathWith (which mmaps V003/V004 compiled blobs).
// This is what cmd/serve's -model and -arms loading goes through, so every
// family is addressable by file path.
func LoadAnyPath(path string, opts LoadOptions) (Recommender, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(saveMagicFamily))
	if _, err := io.ReadFull(f, magic); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	if string(magic) == saveMagicFamily {
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return LoadFamily(f)
	}
	f.Close()
	return LoadPathWith(path, opts)
}
