package core

import (
	"io"
	"sync"

	"repro/internal/compiled"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/session"
)

// Recommender is the single serving seam of the repository: everything
// upstream of a model — the suggestion cache, the fleet registry and router,
// the HTTP handlers — recommends through exactly this interface and never
// learns which model family answers. Engine (the trained MVMM pipeline)
// implements it natively; FromPredictor lifts any compiled.Predictor (HMM,
// cluster, pairwise adjacency/co-occurrence) into it, which is how the
// paper's other model families become fleet arms.
//
// The historical Recommend/RecommendIDs/InternContext method sprawl lives on
// as package-level shims (Recommend, RecommendIDs, AppendContext,
// AppendContextBytes, InternContext) expressed over this interface, so there
// is one recommendation code path.
//
// Implementations must be immutable after construction: every method except
// Close is safe for unbounded concurrent callers without locking, and
// AppendSuggestions must be allocation-free with a recycled dst whenever the
// underlying Predictor advertises Shape().ZeroAlloc.
type Recommender interface {
	// Dict exposes the query dictionary contexts are interned against.
	Dict() *query.Dict
	// Predictor exposes the underlying prediction seam, or nil when the
	// implementation serves from a pre-Predictor interpreted model.
	Predictor() compiled.Predictor
	// AppendSuggestions appends up to n ranked suggestions for the interned
	// context to dst and returns the extended slice — the zero-allocation
	// serving primitive.
	AppendSuggestions(dst []Suggestion, ctx query.Seq, n int) []Suggestion
	// RecommendBatchIDs scores many interned contexts at once; results
	// align 1:1 with ctxs, nil for uncovered contexts, and each non-nil
	// slice is freshly allocated (result caches retain them).
	RecommendBatchIDs(ctxs []query.Seq, ns []int) [][]Suggestion
	// Probability estimates P̂(q | context) for the log-loss analyses.
	Probability(context []string, q string) float64
	// Stats returns training-collection statistics (zero for loaded
	// adapters that never saw the raw log).
	Stats() session.Stats
	// LoadInfo reports how the serving model materialised.
	LoadInfo() LoadInfo
	// CompiledModel exposes the flat MVMM serving form when the
	// implementation has one, nil otherwise (non-MVMM family arms).
	CompiledModel() *compiled.Model
	// Close releases resources tied to the serving model (mmap regions);
	// the recommender must not be used afterwards.
	Close() error
}

// Recommend returns up to n ranked query suggestions for the user's context
// — the queries already issued this session, oldest first. Unknown context
// queries are dropped (suffix matching and escape handle the resulting
// shorter context); an empty or fully unknown context yields no suggestions.
func Recommend(r Recommender, context []string, n int) []Suggestion {
	return RecommendIDs(r, InternContext(r.Dict(), context), n)
}

// RecommendIDs is the allocation-lean shim over AppendSuggestions: it
// accepts an already-interned context (see InternContext / AppendContext) so
// serving layers that cache on context IDs intern exactly once per request.
// The returned slice is freshly allocated (result caches retain it), nil
// when there are no suggestions; use AppendSuggestions directly to recycle
// the output buffer too.
func RecommendIDs(r Recommender, ctx query.Seq, n int) []Suggestion {
	if len(ctx) == 0 {
		return nil
	}
	out := r.AppendSuggestions(make([]Suggestion, 0, n), ctx, n)
	if len(out) == 0 {
		return nil
	}
	return out
}

// InternContext resolves the user's context strings to interned IDs,
// dropping queries unknown to the training vocabulary. The result feeds
// RecommendIDs and is the canonical cache key for a request.
func InternContext(d *query.Dict, context []string) query.Seq {
	return AppendContext(d, make(query.Seq, 0, len(context)), context)
}

// AppendContext is the zero-allocation variant of InternContext: resolved
// IDs are appended to dst (which may be a pooled buffer) and the extended
// slice is returned.
func AppendContext(d *query.Dict, dst query.Seq, context []string) query.Seq {
	for _, q := range context {
		if id, ok := d.Lookup(q); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// AppendContextBytes is AppendContext for contexts held as raw byte slices —
// the HTTP fast path, which percent-decodes query parameters into pooled
// buffers and must not materialise strings to intern them.
func AppendContextBytes(d *query.Dict, dst query.Seq, context [][]byte) query.Seq {
	for _, q := range context {
		if id, ok := d.LookupBytes(q); ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// predictorRec lifts a compiled.Predictor into the Recommender seam: one
// shared implementation serves every non-MVMM model family. Prediction
// scratch is pooled per adapter (the "per-arm scratch pool"), so arms whose
// Predictor honours the zero-alloc contract serve allocation-free.
type predictorRec struct {
	dict *query.Dict
	p    compiled.Predictor
	info LoadInfo
	bufs sync.Pool // *[]model.Prediction
}

// FromPredictor wraps a model-family Predictor as a Recommender over dict.
// The dictionary must be the one the model's query IDs were interned
// against. info describes the model's provenance for /healthz and /v1/models
// (zero value is fine for in-process construction).
func FromPredictor(dict *query.Dict, p compiled.Predictor, info LoadInfo) Recommender {
	return &predictorRec{dict: dict, p: p, info: info}
}

func (a *predictorRec) Dict() *query.Dict             { return a.dict }
func (a *predictorRec) Predictor() compiled.Predictor { return a.p }
func (a *predictorRec) LoadInfo() LoadInfo            { return a.info }
func (a *predictorRec) Stats() session.Stats          { return session.Stats{} }

// CompiledModel reports the trie when the wrapped Predictor is one (an
// MVMM arm built through FromPredictor), nil for other families.
func (a *predictorRec) CompiledModel() *compiled.Model {
	if cm, ok := a.p.(*compiled.Model); ok {
		return cm
	}
	return nil
}

func (a *predictorRec) AppendSuggestions(dst []Suggestion, ctx query.Seq, n int) []Suggestion {
	if len(ctx) == 0 || n <= 0 {
		return dst
	}
	buf, _ := a.bufs.Get().(*[]model.Prediction)
	if buf == nil {
		b := make([]model.Prediction, 0, 64)
		buf = &b
	}
	preds := a.p.PredictInto((*buf)[:0], ctx, n)
	for _, p := range preds {
		dst = append(dst, Suggestion{Query: a.dict.String(p.Query), Score: p.Score})
	}
	*buf = preds[:0]
	a.bufs.Put(buf)
	return dst
}

func (a *predictorRec) RecommendBatchIDs(ctxs []query.Seq, ns []int) [][]Suggestion {
	out := make([][]Suggestion, len(ctxs))
	for i, ctx := range ctxs {
		out[i] = RecommendIDs(a, ctx, ns[i])
	}
	return out
}

func (a *predictorRec) Probability(context []string, q string) float64 {
	id, ok := a.dict.Lookup(q)
	if !ok {
		return 0
	}
	return a.p.Prob(InternContext(a.dict, context), id)
}

// Close releases the wrapped Predictor's resources when it has any (the
// compiled trie's mmap region via Release, or any io.Closer).
func (a *predictorRec) Close() error {
	switch c := a.p.(type) {
	case interface{ Release() error }:
		return c.Release()
	case io.Closer:
		return c.Close()
	}
	return nil
}

var (
	_ Recommender = (*Engine)(nil)
	_ Recommender = (*predictorRec)(nil)
)
