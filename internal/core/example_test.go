package core_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/query"
)

// Example walks the full production lifecycle: train a recommender from
// aggregated sessions, persist it in the current QRECV004 format (quantised
// mmap-able compiled section), restore it through the fast LoadPath route,
// and serve ranked suggestions through the interned-ID API the HTTP layer
// uses. The output is asserted, so this runs in CI.
func Example() {
	// Aggregated training sessions: users who searched "nokia n73" usually
	// refined to "nokia n73 themes", occasionally to "nokia n73 review".
	dict := query.NewDict()
	seq := func(queries ...string) query.Seq {
		s := make(query.Seq, len(queries))
		for i, q := range queries {
			s[i] = dict.Intern(q)
		}
		return s
	}
	sessions := []query.Session{
		{Queries: seq("nokia n73", "nokia n73 themes"), Count: 30},
		{Queries: seq("nokia n73", "nokia n73 review"), Count: 10},
		{Queries: seq("kidney stones", "kidney stone symptoms"), Count: 20},
	}

	cfg := core.DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	rec := core.TrainFromAggregated(dict, sessions, cfg)

	// Persist (Save writes QRECV004: dictionary, interpreted mixture, and
	// the quantised CPS4 compiled section at a page-aligned offset).
	path := filepath.Join(os.TempDir(), "example-model.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	// Restore through LoadPath: on platforms with mmap the compiled section
	// is memory-mapped rather than decoded, and the interpreted mixture
	// stays on disk until first Model() use.
	loaded, err := core.LoadPath(path)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()

	// Serve: intern the user's context once (the serving layers cache on
	// the interned IDs) and ask for ranked suggestions.
	ctx := core.InternContext(loaded.Dict(), []string{"nokia n73"})
	for i, s := range core.RecommendIDs(loaded, ctx, 2) {
		fmt.Printf("%d. %s\n", i+1, s.Query)
	}
	// Output:
	// 1. nokia n73 themes
	// 2. nokia n73 review
}
