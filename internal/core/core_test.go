package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/logfmt"
	"repro/internal/query"
)

// buildLog writes a tiny raw log with two machines and repeated refinement
// sessions, repeated often enough to survive the default reduction.
func buildLog(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	base := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	emit := func(machine string, start time.Time, queries ...string) {
		for i, q := range queries {
			err := w.Write(logfmt.Record{
				MachineID: machine,
				Query:     q,
				Time:      start.Add(time.Duration(i) * time.Minute),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// 20 repetitions across two machines, separated by > 30 min.
	for i := 0; i < 10; i++ {
		at := base.Add(time.Duration(i) * time.Hour)
		emit("m1", at, "nokia n73", "nokia n73 themes")
		emit("m2", at.Add(10*time.Minute), "nokia n73", "nokia n73 themes")
	}
	for i := 0; i < 8; i++ {
		at := base.Add(time.Duration(i)*time.Hour + 30*time.Minute)
		emit("m1", at, "kidney stones", "kidney stone symptoms")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Epsilons = []float64{0.0, 0.05}
	cfg.Mixture.TrainSample = 100
	cfg.Mixture.NewtonIters = 5
	return cfg
}

func TestTrainFromLogAndRecommend(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := Recommend(rec, []string{"nokia n73"}, 5)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	if got[0].Query != "nokia n73 themes" {
		t.Fatalf("top recommendation = %q, want %q", got[0].Query, "nokia n73 themes")
	}
	if got[0].Score <= 0 {
		t.Fatalf("score = %v", got[0].Score)
	}
}

func TestRecommendEmptyOrUnknownContext(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := Recommend(rec, nil, 5); got != nil {
		t.Fatalf("empty context recommended %v", got)
	}
	if got := Recommend(rec, []string{"completely unknown query"}, 5); got != nil {
		t.Fatalf("unknown context recommended %v", got)
	}
}

func TestReductionThresholdDropsRareSessions(t *testing.T) {
	cfg := smallConfig()
	cfg.ReductionThreshold = 100 // everything is rare at this threshold
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := Recommend(rec, []string{"nokia n73"}, 5); got != nil {
		t.Fatalf("recommendations survived full reduction: %v", got)
	}
	if rec.Stats().Sessions != 0 {
		t.Fatalf("stats sessions = %d after full reduction", rec.Stats().Sessions)
	}
}

func TestProbability(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := rec.Probability([]string{"nokia n73"}, "nokia n73 themes")
	if p <= 0.5 {
		t.Fatalf("P(themes | n73) = %v, want dominant", p)
	}
	if q := rec.Probability([]string{"nokia n73"}, "never seen"); q != 0 {
		t.Fatalf("unknown target probability = %v", q)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Recommend(rec, []string{"kidney stones"}, 3)
	b := Recommend(loaded, []string{"kidney stones"}, 3)
	if len(a) != len(b) {
		t.Fatalf("recommendation counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query != b[i].Query {
			t.Fatalf("recommendation %d differs: %q vs %q", i, a[i].Query, b[i].Query)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a model file")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTrainFromSessionsDirect(t *testing.T) {
	d := query.NewDict()
	a, b := d.Intern("smtp"), d.Intern("pop3")
	var sessions []query.Seq
	for i := 0; i < 10; i++ {
		sessions = append(sessions, query.Seq{a, b})
	}
	rec := TrainFromSessions(d, sessions, smallConfig())
	got := Recommend(rec, []string{"smtp"}, 1)
	if len(got) != 1 || got[0].Query != "pop3" {
		t.Fatalf("Recommend = %v", got)
	}
	if rec.Stats().Sessions != 10 {
		t.Fatalf("Sessions = %d, want 10", rec.Stats().Sessions)
	}
	if rec.Dict() != d {
		t.Fatal("Dict accessor broken")
	}
	if rec.Model() == nil {
		t.Fatal("Model accessor broken")
	}
}

func TestInternAndRecommendIDsEquivalence(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	context := []string{"unknown filler", "nokia n73"}
	ctx := InternContext(rec.Dict(), context)
	if len(ctx) != 1 {
		t.Fatalf("InternContext kept %d IDs, want 1 (unknowns dropped)", len(ctx))
	}
	if got := AppendContext(rec.Dict(), nil, context); !got.Equal(ctx) {
		t.Fatalf("AppendContext = %v, InternContext = %v", got, ctx)
	}
	// Appending into a pre-sized buffer must reuse it.
	buf := make(query.Seq, 0, 8)
	if got := AppendContext(rec.Dict(), buf, context); &got[0] != &buf[:1][0] {
		t.Fatal("AppendContext reallocated despite spare capacity")
	}
	want := Recommend(rec, context, 5)
	got := RecommendIDs(rec, ctx, 5)
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("RecommendIDs returned %d suggestions, Recommend %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("suggestion %d: RecommendIDs %+v vs Recommend %+v", i, got[i], want[i])
		}
	}
	if got := RecommendIDs(rec, nil, 5); got != nil {
		t.Fatalf("empty interned context recommended %v", got)
	}
}

// writeV1 emits the legacy QRECV001 layout (dictionary + mixture, no
// compiled section) — the format every pre-V002 model file on disk uses.
func writeV1(t *testing.T, rec *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.WriteString(saveMagicV1); err != nil {
		t.Fatal(err)
	}
	if err := writeSection(&buf, "dictionary", rec.Dict()); err != nil {
		t.Fatal(err)
	}
	if err := writeSection(&buf, "model", rec.Model()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveAsWritesV2WithCompiledSection(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec.CompiledModel() == nil {
		t.Fatal("training did not compile the mixture")
	}
	var buf bytes.Buffer
	if err := rec.SaveAs(&buf, saveMagicV2); err != nil {
		t.Fatal(err)
	}
	if got := buf.String()[:len(saveMagicV2)]; got != saveMagicV2 {
		t.Fatalf("header = %q, want %q", got, saveMagicV2)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CompiledModel() == nil {
		t.Fatal("V002 load did not restore the compiled model")
	}
	// The persisted compiled form must be the one served, bit-identical to
	// the freshly compiled one.
	if n, l := rec.CompiledModel().Nodes(), loaded.CompiledModel().Nodes(); n != l {
		t.Fatalf("compiled trie resized across save/load: %d vs %d", n, l)
	}
	for _, ctxs := range [][]string{{"nokia n73"}, {"kidney stones"}, {"nokia n73", "nokia n73 themes"}} {
		a, b := Recommend(rec, ctxs, 5), Recommend(loaded, ctxs, 5)
		if len(a) != len(b) {
			t.Fatalf("ctx %v: %d vs %d suggestions", ctxs, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ctx %v rank %d: %+v vs %+v", ctxs, i, a[i], b[i])
			}
		}
	}
}

func TestLoadV1BackCompat(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(writeV1(t, rec)))
	if err != nil {
		t.Fatalf("loading V001 file: %v", err)
	}
	if loaded.CompiledModel() == nil {
		t.Fatal("V001 load did not compile the mixture")
	}
	for _, ctxs := range [][]string{{"nokia n73"}, {"kidney stones"}} {
		a, b := Recommend(rec, ctxs, 5), Recommend(loaded, ctxs, 5)
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("ctx %v: %d vs %d suggestions", ctxs, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("ctx %v rank %d: %+v vs %+v", ctxs, i, a[i], b[i])
			}
		}
	}
	p := loaded.Probability([]string{"nokia n73"}, "nokia n73 themes")
	if p <= 0.5 {
		t.Fatalf("V001-loaded P(themes | n73) = %v, want dominant", p)
	}
}

func TestCompiledMatchesInterpretedThroughCore(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec.CompiledModel() == nil {
		t.Fatal("no compiled model")
	}
	// Force the interpreted path on a clone sharing dict and mixture.
	interp := &Engine{dict: rec.dict, mix: rec.mix, stats: rec.stats, cfg: rec.cfg}
	for _, ctxs := range [][]string{
		{"nokia n73"}, {"kidney stones"},
		{"nokia n73", "nokia n73 themes"}, {"unknown", "nokia n73"},
	} {
		a, b := Recommend(rec, ctxs, 5), Recommend(interp, ctxs, 5)
		if len(a) != len(b) {
			t.Fatalf("ctx %v: compiled %d vs interpreted %d suggestions (%v vs %v)", ctxs, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i].Query != b[i].Query {
				t.Fatalf("ctx %v rank %d: compiled %q vs interpreted %q", ctxs, i, a[i].Query, b[i].Query)
			}
		}
	}
}

func TestAppendSuggestionsReusesBuffer(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := InternContext(rec.Dict(), []string{"nokia n73"})
	want := RecommendIDs(rec, ctx, 5)
	if len(want) == 0 {
		t.Fatal("no suggestions")
	}
	buf := make([]Suggestion, 0, 8)
	got := rec.AppendSuggestions(buf[:0], ctx, 5)
	if len(got) != len(want) {
		t.Fatalf("AppendSuggestions returned %d, RecommendIDs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("suggestion %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendSuggestions reallocated despite spare capacity")
	}
}

func TestRecommendConcurrentReaders(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := Recommend(rec, []string{"nokia n73"}, 5)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := Recommend(rec, []string{"nokia n73"}, 5)
				if len(got) != len(want) || got[0].Query != want[0].Query {
					panic("concurrent recommendation diverged")
				}
			}
		}()
	}
	wg.Wait()
}
