package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiled"
)

// quantScoreTol is the asserted ceiling on V004 score drift: the CPS4
// format bounds the absolute probability error by the per-node
// quantisation step (≤ 1/65535), and mixture weights multiply to ≤ 1.
const quantScoreTol = 2e-5

// assertCloseRecommendations compares two recommenders under the quantised
// contract: identical suggestion IDs in identical order (the test contexts
// have well-separated scores, so bounded error cannot reorder them) with
// scores within quantScoreTol.
func assertCloseRecommendations(t *testing.T, label string, exact, quant *Engine) {
	t.Helper()
	for _, ctx := range [][]string{
		{"nokia n73"}, {"kidney stones"},
		{"nokia n73", "nokia n73 themes"}, {"unknown", "nokia n73"},
	} {
		x, y := Recommend(exact, ctx, 5), Recommend(quant, ctx, 5)
		if len(x) != len(y) {
			t.Fatalf("%s: ctx %v: %d vs %d suggestions", label, ctx, len(x), len(y))
		}
		for i := range x {
			if x[i].Query != y[i].Query {
				t.Fatalf("%s: ctx %v rank %d: %q vs %q", label, ctx, i, x[i].Query, y[i].Query)
			}
			if diff := math.Abs(x[i].Score - y[i].Score); diff > quantScoreTol {
				t.Fatalf("%s: ctx %v rank %d: score drift %g > %g", label, ctx, i, diff, quantScoreTol)
			}
		}
	}
}

// TestSaveWritesV4AndLoadRestores: a V004 save (the quantised CPS4
// compiled section, now written via SaveAs) restores through the
// reader-based Load within the bounded-error contract.
func TestSaveWritesV4AndLoadRestores(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.SaveAs(&buf, saveMagicV4); err != nil {
		t.Fatal(err)
	}
	if got := buf.String()[:len(saveMagicV4)]; got != saveMagicV4 {
		t.Fatalf("header = %q, want %q", got, saveMagicV4)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cm := loaded.CompiledModel()
	if cm == nil || !cm.Quantised() {
		t.Fatalf("V004 load did not restore a quantised compiled model (%v)", cm)
	}
	if li := loaded.LoadInfo(); li.Mode != LoadModeHeap || li.Version != saveMagicV4 ||
		li.Format != "CPS4" || li.BlobBytes <= 0 {
		t.Fatalf("LoadInfo = %+v", li)
	}
	assertCloseRecommendations(t, "stream", rec, loaded)
}

// TestLoadPathMmapV4: LoadPath on a V004 file must take the mmap route,
// report the CPS4 blob it mapped, serve within the quantisation bound, and
// still expose the mixture lazily so exact formats can be re-saved.
func TestLoadPathMmapV4(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.SaveAs(f, saveMagicV4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	li := loaded.LoadInfo()
	wantMode := LoadModeMmap
	if _, merr := compiled.OpenMmap(path, 0, 1); merr == compiled.ErrMmapUnsupported {
		wantMode = LoadModeHeap
	}
	if li.Mode != wantMode || li.Version != saveMagicV4 || li.Format != "CPS4" ||
		li.BlobBytes <= 0 || li.Duration <= 0 {
		t.Fatalf("LoadInfo = %+v, want mode %q format CPS4", li, wantMode)
	}
	cm := loaded.CompiledModel()
	if cm == nil || !cm.Quantised() {
		t.Fatal("V004 LoadPath did not produce a quantised compiled model")
	}
	assertCloseRecommendations(t, "mmap", rec, loaded)
}

// TestV4BlobSmallerThanV3: a CPS4 blob must undercut the CPS3 blob even on
// this toy model, where the fixed headers dominate and dilute the ratio.
// The real ≥40% reduction claim is asserted on larger corpora in
// internal/compiled's TestQuantSizeReduction and gated on the benchmark
// model in BENCH_serving.json.
func TestV4BlobSmallerThanV3(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := rec.CompiledModel()
	if cm == nil {
		t.Fatal("no compiled model")
	}
	cps3, cps4 := cm.FlatSize(), cm.Flat4Size()
	if cps4 >= cps3 {
		t.Fatalf("CPS4 blob %d bytes >= CPS3 blob %d bytes", cps4, cps3)
	}
}

// TestQuantisedSaveAsRecompilesExactForms: a recommender serving from a
// quantised CPS4 load (whose raw counts are gone) must still write exact
// V002/V003 files by recompiling from the lazily decoded mixture, and those
// files must serve bit-identically to the original trained model.
func TestQuantisedSaveAsRecompilesExactForms(t *testing.T) {
	rec, err := TrainFromLog(strings.NewReader(buildLog(t)), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var v4 bytes.Buffer
	if err := rec.SaveAs(&v4, saveMagicV4); err != nil {
		t.Fatal(err)
	}
	quantRec, err := Load(bytes.NewReader(v4.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cm := quantRec.CompiledModel(); cm == nil || !cm.Quantised() {
		t.Fatal("V004 load is not quantised")
	}
	for _, version := range []string{saveMagicV2, saveMagicV3} {
		var buf bytes.Buffer
		if err := quantRec.SaveAs(&buf, version); err != nil {
			t.Fatalf("SaveAs(%s) from quantised model: %v", version, err)
		}
		exact, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("loading %s written from quantised model: %v", version, err)
		}
		if cm := exact.CompiledModel(); cm == nil || !cm.Exact() {
			t.Fatalf("%s round trip did not restore an exact compiled model", version)
		}
		assertSameRecommendations(t, version+"-from-quantised", rec, exact)
	}
	// And a V004 re-save of the quantised model is byte-stable from the
	// compiled section onward (the fixed-point values re-emit verbatim).
	var again bytes.Buffer
	if err := quantRec.SaveAs(&again, saveMagicV4); err != nil {
		t.Fatal(err)
	}
	reload, err := Load(bytes.NewReader(again.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertCloseRecommendations(t, "v4-resave", rec, reload)
}
